#!/usr/bin/env bash
# Knob-consistency check between docs/BENCHMARKS.md and the source tree.
#
# Fails when:
#   1. a RETRACE_* environment knob read by the source (std::getenv or
#      the strict EnvKnob* wrappers of src/support/env.h) is not
#      documented in docs/BENCHMARKS.md, or
#   2. a RETRACE_* name mentioned in docs/BENCHMARKS.md appears nowhere
#      in the repo (stale documentation).
#
# Run from the repo root: tools/check_docs_knobs.sh
set -u
cd "$(dirname "$0")/.."

doc="docs/BENCHMARKS.md"
if [ ! -f "$doc" ]; then
  echo "FAIL: $doc does not exist"
  exit 1
fi

doc_knobs=$(grep -oE 'RETRACE_[A-Z0-9_]+' "$doc" | sort -u)
src_knobs=$(grep -rhoE '(getenv|EnvKnobI64|EnvKnobBool)\("RETRACE_[A-Z0-9_]+"' \
  src bench tests tools 2>/dev/null |
  grep -oE 'RETRACE_[A-Z0-9_]+' | grep -v '^RETRACE_TEST_' | sort -u)

fail=0
for knob in $src_knobs; do
  if ! printf '%s\n' "$doc_knobs" | grep -qx "$knob"; then
    echo "FAIL: env knob $knob is read by the source but missing from $doc"
    fail=1
  fi
done
for knob in $doc_knobs; do
  if ! grep -rq "$knob" src bench tests tools CMakeLists.txt .github 2>/dev/null; then
    echo "FAIL: $doc documents $knob but nothing in the repo mentions it"
    fail=1
  fi
done

if [ "$fail" -eq 0 ]; then
  echo "OK: $doc and the source agree on every RETRACE_* knob"
fi
exit "$fail"
