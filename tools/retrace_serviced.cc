// retrace_serviced: the resident replay service daemon.
//
// Runs the replay-as-a-service stack (src/service/) as a long-lived
// process: a TCP ingest socket accepts bug-report submissions from many
// tenants, reports cluster by structural crash fingerprint, one search
// runs per cluster on a standing shard fleet (or in-process when
// --shards 1), and duplicate reports are answered from the cluster
// table without spending a run. The same socket answers health queries
// with queue depth, the cluster table, cache occupancy and fleet
// liveness.
//
// The daemon binds a fixed workload (uServer under the low-coverage
// dynamic plan — Table 3's hardest replay column) and derives the plan
// deterministically, so a submitting client running the same derivation
// produces reports this daemon's module understands. This models the
// paper's deployment: one service per shipped binary+plan, many users
// reporting crashes against it.
//
// Usage:
//   retrace_serviced serve [--listen H:P] [--shards N] [--workers N]
//                          [--queue N] [--tenant-cap N] [--cap-ms N]
//                          [--snapshot PATH]
//     Start the daemon. Prints "serving on H:P" (the bound endpoint,
//     ephemeral port resolved) on stderr when ready. --shards > 1
//     starts a standing TCP shard fleet (self-spawned loopback shard
//     processes by default; set RETRACE_SHARD_ENDPOINTS to dial waiting
//     retrace_shardd daemons instead). --snapshot loads the slice-cache
//     snapshot on start and saves it on shutdown (SIGTERM/SIGINT).
//
//   retrace_serviced submit <H:P> --exp N [--tenant T]
//     Record experiment N's crashing user run (1..5), submit the report,
//     wait for the verdict, print it.
//
//   retrace_serviced health <H:P>
//     Query and print the daemon's health stats.
//
// Auth: RETRACE_SHARD_TOKEN (when set) authenticates the *shard fleet*
// listener, same as the one-shot TCP transport. The ingest socket is
// separate and unauthenticated — front it with whatever the deployment
// trusts.
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/pipeline.h"
#include "src/dist/transport.h"
#include "src/dist/wire.h"
#include "src/workloads/scenarios.h"
#include "src/workloads/workloads.h"

namespace retrace {
namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s serve [--listen H:P] [--shards N] [--workers N] [--queue N]\n"
               "       %*s       [--tenant-cap N] [--cap-ms N] [--snapshot PATH]\n"
               "       %s submit <H:P> --exp N [--tenant T]\n"
               "       %s health <H:P>\n",
               argv0, static_cast<int>(std::strlen(argv0)), "", argv0, argv0);
  return 2;
}

// Both the daemon and its submitting clients derive the same pipeline
// and plan from the same fixed seeds: the reports a client records are
// exactly the reports the daemon's module can search. Deliberately
// env-independent (no bench scale knobs) — two processes must agree.
struct Workload {
  std::unique_ptr<Pipeline> pipeline;
  InstrumentationPlan plan;
};

Workload DeriveWorkload() {
  const WorkloadSources sources = GetWorkload("userver");
  auto built = Pipeline::FromSources(sources.app, sources.libs);
  if (!built.ok()) {
    std::fprintf(stderr, "retrace_serviced: cannot build workload: %s\n",
                 built.error().ToString().c_str());
    std::exit(1);
  }
  Workload w;
  w.pipeline = built.take();
  AnalysisConfig lc_cfg;
  lc_cfg.max_runs = 4;
  lc_cfg.seed = 17;
  const AnalysisResult lc = w.pipeline->RunDynamicAnalysis(UserverExploreSpecLC(), lc_cfg);
  w.plan = w.pipeline->MakePlan(PlanInputs::Dynamic(lc));
  return w;
}

// Signal-driven shutdown: the handler closes the ingest listener, which
// pops the accept loop; everything orderly happens after accept fails.
std::atomic<int> g_listen_fd{-1};
std::atomic<bool> g_stop{false};

void OnSignal(int) {
  g_stop.store(true);
  const int fd = g_listen_fd.exchange(-1);
  if (fd >= 0) {
    ::close(fd);
  }
}

const char* OriginWord(VerdictOrigin origin) {
  switch (origin) {
    case VerdictOrigin::kFresh:
      return "fresh";
    case VerdictOrigin::kAttached:
      return "attached";
    case VerdictOrigin::kCached:
      return "cached";
    case VerdictOrigin::kRejected:
      return "rejected";
  }
  return "rejected";
}

// One ingest connection: answer kReportSubmit with kReportVerdict (the
// Submit call blocks this thread until the cluster has its verdict —
// that is the service's contract) and kHealthQuery with kHealthStats.
void ServeConnection(int fd, ReplayService* service) {
  WireChannel chan(fd);
  std::vector<WireFrame> frames;
  while (!g_stop.load()) {
    frames.clear();
    const WireChannel::RecvStatus status = chan.Poll(500, &frames);
    if (status != WireChannel::RecvStatus::kOk) {
      return;
    }
    for (const WireFrame& frame : frames) {
      if (frame.type == WireMsg::kReportSubmit) {
        WireReportSubmit submit;
        WireReader r(frame.payload.data(), frame.payload.size());
        if (!DecodeReportSubmit(&r, &submit)) {
          return;  // Hostile or broken client; drop the connection.
        }
        const ServiceVerdict verdict = service->Submit(submit.tenant, submit.report);
        WireReportVerdict reply;
        reply.cluster = verdict.cluster;
        reply.origin = static_cast<u8>(verdict.origin);
        reply.result.result = verdict.result;
        WireWriter w;
        EncodeReportVerdict(reply, &w);
        if (!chan.Send(WireMsg::kReportVerdict, w.buf())) {
          return;
        }
      } else if (frame.type == WireMsg::kHealthQuery) {
        WireWriter w;
        EncodeHealthStats(service->HealthStats(), &w);
        if (!chan.Send(WireMsg::kHealthStats, w.buf())) {
          return;
        }
      } else {
        return;  // Protocol error.
      }
    }
  }
}

int Serve(const std::string& listen, u32 shards, u32 workers, u64 queue_cap, u64 tenant_cap,
          i64 cap_ms, const std::string& snapshot) {
  Workload workload = DeriveWorkload();

  ServiceConfig config;
  config.replay = ReplayConfig::FromEnv();  // Token, transport, search knobs.
  config.replay.num_shards = shards;
  if (workers > 0) {
    config.replay.num_workers = workers;
  }
  if (cap_ms > 0) {
    config.replay.wall_ms = cap_ms;
  }
  config.queue_capacity = queue_cap;
  config.per_tenant_cap = tenant_cap;
  config.snapshot_path = snapshot;

  auto made = workload.pipeline->MakeService(workload.plan, std::move(config));
  if (!made.ok()) {
    std::fprintf(stderr, "retrace_serviced: %s\n", made.error().ToString().c_str());
    return 1;
  }
  std::unique_ptr<ReplayService> service = made.take();
  // Start before any other thread exists: a self-spawning fleet forks.
  if (!service->Start()) {
    std::fprintf(stderr, "retrace_serviced: service failed to start\n");
    return 1;
  }

  std::string bound;
  const int listen_fd = TcpListen(listen, &bound);
  if (listen_fd < 0) {
    std::fprintf(stderr, "retrace_serviced: cannot listen on %s\n", listen.c_str());
    service->Shutdown();
    return 1;
  }
  g_listen_fd.store(listen_fd);
  struct sigaction sa = {};
  sa.sa_handler = OnSignal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  std::fprintf(stderr, "retrace_serviced: serving on %s (%u shard(s))\n", bound.c_str(),
               shards);
  std::vector<std::thread> connections;
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (g_stop.load()) {
        break;
      }
      continue;
    }
    connections.emplace_back(ServeConnection, fd, service.get());
  }
  for (std::thread& t : connections) {
    t.join();
  }
  service->Shutdown();
  std::fprintf(stderr, "retrace_serviced: stopped\n");
  return 0;
}

int Submit(const std::string& target, int experiment, const std::string& tenant) {
  Workload workload = DeriveWorkload();
  const Scenario scenario = UserverScenario(experiment);
  Pipeline::UserRunOptions options;
  options.policy = scenario.policy.get();
  auto user = workload.pipeline->RecordUserRun(scenario.spec, workload.plan, options);
  if (!user.ok() || !user.value().result.Crashed()) {
    std::fprintf(stderr, "retrace_serviced: experiment %d did not crash at the user site\n",
                 experiment);
    return 1;
  }

  const int fd = TcpConnect(target);
  if (fd < 0) {
    std::fprintf(stderr, "retrace_serviced: cannot reach daemon at %s\n", target.c_str());
    return 1;
  }
  WireChannel chan(fd);
  WireReportSubmit submit;
  submit.tenant = tenant;
  submit.report = user.take().report;
  WireWriter w;
  EncodeReportSubmit(submit, &w);
  if (!chan.Send(WireMsg::kReportSubmit, w.buf())) {
    std::fprintf(stderr, "retrace_serviced: submit failed\n");
    return 1;
  }
  // The daemon answers when the cluster has a verdict — searches can
  // legitimately take the whole per-search wall budget.
  std::vector<WireFrame> frames;
  for (;;) {
    const WireChannel::RecvStatus status = chan.Poll(1000, &frames);
    if (status != WireChannel::RecvStatus::kOk) {
      std::fprintf(stderr, "retrace_serviced: daemon went away before the verdict\n");
      return 1;
    }
    if (!frames.empty()) {
      break;
    }
  }
  if (frames[0].type != WireMsg::kReportVerdict) {
    std::fprintf(stderr, "retrace_serviced: unexpected reply frame\n");
    return 1;
  }
  WireReportVerdict verdict;
  WireReader r(frames[0].payload.data(), frames[0].payload.size());
  if (!DecodeReportVerdict(&r, &verdict)) {
    std::fprintf(stderr, "retrace_serviced: corrupt verdict\n");
    return 1;
  }
  std::printf("verdict: cluster=%016llx origin=%s reproduced=%d runs=%llu wall=%.2fs\n",
              static_cast<unsigned long long>(verdict.cluster),
              OriginWord(static_cast<VerdictOrigin>(verdict.origin)),
              verdict.result.result.reproduced ? 1 : 0,
              static_cast<unsigned long long>(verdict.result.result.stats.runs),
              verdict.result.result.wall_seconds);
  return static_cast<VerdictOrigin>(verdict.origin) == VerdictOrigin::kRejected ? 1 : 0;
}

int Health(const std::string& target) {
  const int fd = TcpConnect(target);
  if (fd < 0) {
    std::fprintf(stderr, "retrace_serviced: cannot reach daemon at %s\n", target.c_str());
    return 1;
  }
  WireChannel chan(fd);
  if (!chan.Send(WireMsg::kHealthQuery, {})) {
    return 1;
  }
  std::vector<WireFrame> frames;
  for (int spins = 0; frames.empty(); ++spins) {
    if (spins > 30 || chan.Poll(1000, &frames) != WireChannel::RecvStatus::kOk) {
      std::fprintf(stderr, "retrace_serviced: no health reply\n");
      return 1;
    }
  }
  WireHealthStats stats;
  WireReader r(frames[0].payload.data(), frames[0].payload.size());
  if (frames[0].type != WireMsg::kHealthStats || !DecodeHealthStats(&r, &stats)) {
    std::fprintf(stderr, "retrace_serviced: corrupt health reply\n");
    return 1;
  }
  std::printf("reports_ingested=%llu clusters=%llu searches_run=%llu "
              "duplicates_attached=%llu cached_verdicts=%llu rejected=%llu\n",
              static_cast<unsigned long long>(stats.reports_ingested),
              static_cast<unsigned long long>(stats.clusters),
              static_cast<unsigned long long>(stats.searches_run),
              static_cast<unsigned long long>(stats.duplicates_attached),
              static_cast<unsigned long long>(stats.cached_verdicts),
              static_cast<unsigned long long>(stats.rejected));
  std::printf("queue_depth=%llu in_flight=%llu cache_sat=%llu cache_unsat=%llu "
              "cache_evictions=%llu snapshot_loaded=%u\n",
              static_cast<unsigned long long>(stats.queue_depth),
              static_cast<unsigned long long>(stats.in_flight),
              static_cast<unsigned long long>(stats.cache_sat_entries),
              static_cast<unsigned long long>(stats.cache_unsat_entries),
              static_cast<unsigned long long>(stats.cache_evictions), stats.snapshot_loaded);
  std::printf("fleet_shards=%u fleet_live=%u fleet_jobs=%llu\n", stats.fleet_shards,
              stats.fleet_live, static_cast<unsigned long long>(stats.fleet_jobs));
  for (const WireClusterRow& row : stats.rows) {
    const char* state = row.state == 0 ? "queued" : row.state == 1 ? "running" : "solved";
    std::printf("cluster %016llx state=%s reproduced=%u reports=%llu\n",
                static_cast<unsigned long long>(row.fp), state, row.reproduced,
                static_cast<unsigned long long>(row.reports));
  }
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    return Usage(argv[0]);
  }
  const std::string mode = argv[1];

  if (mode == "serve") {
    std::string listen = "127.0.0.1:0";
    u32 shards = 1;
    u32 workers = 0;
    u64 queue_cap = 64;
    u64 tenant_cap = 16;
    i64 cap_ms = 30'000;
    std::string snapshot;
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--listen" && i + 1 < argc) {
        listen = argv[++i];
      } else if (arg == "--shards" && i + 1 < argc) {
        shards = static_cast<u32>(std::atoi(argv[++i]));
      } else if (arg == "--workers" && i + 1 < argc) {
        workers = static_cast<u32>(std::atoi(argv[++i]));
      } else if (arg == "--queue" && i + 1 < argc) {
        queue_cap = static_cast<u64>(std::atoll(argv[++i]));
      } else if (arg == "--tenant-cap" && i + 1 < argc) {
        tenant_cap = static_cast<u64>(std::atoll(argv[++i]));
      } else if (arg == "--cap-ms" && i + 1 < argc) {
        cap_ms = std::atoll(argv[++i]);
      } else if (arg == "--snapshot" && i + 1 < argc) {
        snapshot = argv[++i];
      } else {
        return Usage(argv[0]);
      }
    }
    return Serve(listen, shards, workers, queue_cap, tenant_cap, cap_ms, snapshot);
  }

  if (mode == "submit") {
    if (argc < 3) {
      return Usage(argv[0]);
    }
    const std::string target = argv[2];
    int experiment = 0;
    std::string tenant = "default";
    for (int i = 3; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--exp" && i + 1 < argc) {
        experiment = std::atoi(argv[++i]);
      } else if (arg == "--tenant" && i + 1 < argc) {
        tenant = argv[++i];
      } else {
        return Usage(argv[0]);
      }
    }
    if (experiment < 1 || experiment > 5) {
      std::fprintf(stderr, "retrace_serviced: --exp must be 1..5\n");
      return 2;
    }
    return Submit(target, experiment, tenant);
  }

  if (mode == "health") {
    if (argc != 3) {
      return Usage(argv[0]);
    }
    return Health(argv[2]);
  }

  return Usage(argv[0]);
}

}  // namespace
}  // namespace retrace

int main(int argc, char** argv) { return retrace::Main(argc, argv); }
