#!/usr/bin/env sh
# Fleet launcher: one config file starts the whole replay service —
# the retrace_serviced coordinator daemon plus any retrace_shardd shard
# daemons it should dial.
#
# Usage:
#   tools/retrace_fleet.sh <fleet.conf>
#
# The config file is sourced as shell (see tools/fleet.conf.example):
#   LISTEN=127.0.0.1:7901     ingest endpoint (report submit + health)
#   SHARDS=2                  shard fleet width (1 = in-process search)
#   SHARDD_PORTS="7911 7912"  when set, start one local
#                             `retrace_shardd --listen` per port and
#                             point the coordinator at them; when empty,
#                             the coordinator self-spawns loopback shard
#                             processes (no separate daemons needed)
#   TOKEN=...                 shared secret; exported as
#                             RETRACE_SHARD_TOKEN to every process so
#                             the fleet handshake is authenticated
#   SNAPSHOT=/path/cache.img  slice-cache snapshot (loaded on start,
#                             saved on shutdown); empty = off
#   SERVE_ARGS="--cap-ms 30000"  extra retrace_serviced serve arguments
#
# Binaries are looked up in $RETRACE_BIN (default: ./build). The script
# stays in the foreground as the service; SIGTERM/SIGINT tears the whole
# fleet down in order (coordinator first, then the shard daemons).
set -eu

if [ "$#" -ne 1 ] || [ ! -r "$1" ]; then
  echo "usage: $0 <fleet.conf>" >&2
  exit 2
fi

LISTEN=127.0.0.1:0
SHARDS=1
SHARDD_PORTS=""
TOKEN=""
SNAPSHOT=""
SERVE_ARGS=""
# shellcheck disable=SC1090
. "$1"

BIN="${RETRACE_BIN:-./build}"
for tool in retrace_serviced retrace_shardd; do
  if [ ! -x "$BIN/$tool" ]; then
    echo "retrace_fleet: $BIN/$tool not found (set RETRACE_BIN)" >&2
    exit 1
  fi
done

if [ -n "$TOKEN" ]; then
  RETRACE_SHARD_TOKEN="$TOKEN"
  export RETRACE_SHARD_TOKEN
fi

SHARDD_PIDS=""
ENDPOINTS=""
for port in $SHARDD_PORTS; do
  "$BIN/retrace_shardd" --listen "127.0.0.1:$port" &
  SHARDD_PIDS="$SHARDD_PIDS $!"
  ENDPOINTS="${ENDPOINTS:+$ENDPOINTS,}127.0.0.1:$port"
done
if [ -n "$ENDPOINTS" ]; then
  RETRACE_SHARD_ENDPOINTS="$ENDPOINTS"
  export RETRACE_SHARD_ENDPOINTS
fi

cleanup() {
  [ -n "${SERVICED_PID:-}" ] && kill "$SERVICED_PID" 2>/dev/null || true
  [ -n "${SERVICED_PID:-}" ] && wait "$SERVICED_PID" 2>/dev/null || true
  for pid in $SHARDD_PIDS; do
    kill "$pid" 2>/dev/null || true
  done
}
trap cleanup TERM INT EXIT

# shellcheck disable=SC2086
"$BIN/retrace_serviced" serve --listen "$LISTEN" --shards "$SHARDS" \
  ${SNAPSHOT:+--snapshot "$SNAPSHOT"} $SERVE_ARGS &
SERVICED_PID=$!
wait "$SERVICED_PID"
