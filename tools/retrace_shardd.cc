// retrace_shardd: remote shard daemon for the distributed replay
// scheduler's TCP transport.
//
// A replay coordinator running with ReplayConfig::transport = kTcp
// listens on host:port; this daemon joins its fleet from any machine
// that can reach it. The coordinator ships the whole job over the wire
// (program sources + instrumentation plan + bug report + search config,
// digest-checked and version-gated), the daemon rebuilds the module
// locally — lowering is deterministic, so branch ids match — runs one
// shard search, streams verdict gossip and re-balance traffic while it
// runs, and reports the result.
//
// The daemon speaks both job protocols: a one-shot coordinator ships
// kJob in the handshake (serve it, then the connection is done); a
// standing fleet (retrace_serviced) validates the join and attaches
// jobs later with kJobBegin — the daemon then serves job after job on
// the same connection, slice cache warm across them, until kJobEnd or
// the fleet closes the channel.
//
// Usage:
//   retrace_shardd <host:port>             join a coordinator; serve its
//                                          jobs until the connection
//                                          ends (one job for a one-shot
//                                          coordinator, many for a
//                                          standing fleet), then exit.
//   retrace_shardd --listen <host:port>    wait for coordinators to dial
//                                          in (ReplayConfig::
//                                          shard_endpoints); serves jobs
//                                          until killed. A coordinator
//                                          that dies mid-job (heartbeat
//                                          deadline, closed channel)
//                                          only costs that job — the
//                                          daemon goes back to listening.
//
// Auth: when the coordinator's listener is started with a shared secret
// (RETRACE_SHARD_TOKEN), set the same variable in this daemon's
// environment — the token rides the kJoin frame and a mismatch is
// refused before any job bytes ship.
// Options:
//   --workers N   override the job's worker-thread count (0 = job's
//                 value; a remote host knows its own core count best).
//   --retry N     connect mode: retry the connection up to N times with
//                 exponential backoff and jitter (a fleet launcher may
//                 start daemons before the coordinator binds its port;
//                 jitter keeps a mass daemon restart from dialing in
//                 lockstep).
//
// Exit codes (connect mode):
//   0  job served and the result delivered.
//   1  job failed (unreachable coordinator, protocol error, bad job).
//   2  usage error.
//   3  coordinator lost mid-job (crashed or went silent past the
//      heartbeat deadline) — the job is gone, but this host is healthy.
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/dist/shard.h"
#include "src/dist/transport.h"
#include "src/support/rng.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <host:port> [--workers N] [--retry N]\n"
               "       %s --listen <host:port> [--workers N]\n",
               argv0, argv0);
  return 2;
}

const char* StatusWord(retrace::ShardRunStatus status) {
  switch (status) {
    case retrace::ShardRunStatus::kOk:
      return "done";
    case retrace::ShardRunStatus::kCoordinatorLost:
      return "abandoned (coordinator lost)";
    case retrace::ShardRunStatus::kProtocolError:
      return "failed";
  }
  return "failed";
}

}  // namespace

int main(int argc, char** argv) {
  std::string target;
  bool listen_mode = false;
  unsigned workers = 0;
  int retries = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    }
    if (arg == "--listen") {
      listen_mode = true;
    } else if (arg == "--workers" && i + 1 < argc) {
      // Clamp to the wire codec's sanity cap; a negative or absurd value
      // would otherwise be rejected by the coordinator's DecodeJoin with
      // nothing to tell the operator why.
      const int parsed = std::atoi(argv[++i]);
      if (parsed < 0 || parsed > 4096) {
        std::fprintf(stderr, "retrace_shardd: --workers %d out of range [0, 4096]\n", parsed);
        return 2;
      }
      workers = static_cast<unsigned>(parsed);
    } else if (arg == "--retry" && i + 1 < argc) {
      retries = std::atoi(argv[++i]);
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage(argv[0]);
    } else if (target.empty()) {
      target = arg;
    } else {
      return Usage(argv[0]);
    }
  }
  if (target.empty()) {
    return Usage(argv[0]);
  }

  char host_buf[256] = "shardd";
  ::gethostname(host_buf, sizeof(host_buf) - 1);
  const std::string ident = std::string(host_buf) + "/" + std::to_string(::getpid());
  std::string token;
  if (const char* env_token = std::getenv("RETRACE_SHARD_TOKEN")) {
    token = env_token;
  }

  if (listen_mode) {
    std::string bound;
    const int listen_fd = retrace::TcpListen(target, &bound);
    if (listen_fd < 0) {
      std::fprintf(stderr, "retrace_shardd: cannot listen on %s\n", target.c_str());
      return 1;
    }
    std::fprintf(stderr, "retrace_shardd: waiting for coordinators on %s\n", bound.c_str());
    for (;;) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        continue;
      }
      std::fprintf(stderr, "retrace_shardd: coordinator connected, serving jobs\n");
      const retrace::ShardRunStatus status = retrace::ServeShardJobs(fd, ident, workers, token);
      std::fprintf(stderr, "retrace_shardd: connection %s\n", StatusWord(status));
      if (status == retrace::ShardRunStatus::kCoordinatorLost) {
        // The fleet died under us; the next coordinator gets a fresh
        // daemon, not an exit. This is the whole point of --listen.
        std::fprintf(stderr, "retrace_shardd: rejoining listen loop on %s\n", bound.c_str());
      }
    }
  }

  // Exponential backoff with deterministic-per-process jitter: 1s, 2s,
  // 4s, ... capped at 30s, each widened by up to +50%. A fleet of
  // daemons restarted together must not dial the coordinator in
  // lockstep forever.
  retrace::Rng jitter(static_cast<retrace::u64>(::getpid()) * 0x9e3779b97f4a7c15ull + 1);
  int fd = -1;
  for (int attempt = 0; attempt <= retries && fd < 0; ++attempt) {
    if (attempt > 0) {
      const unsigned shift = attempt - 1 < 5 ? static_cast<unsigned>(attempt - 1) : 5u;
      const retrace::u64 base_ms = std::min<retrace::u64>(1000ull << shift, 30'000);
      const retrace::u64 sleep_ms = base_ms + jitter.NextBelow(base_ms / 2 + 1);
      std::fprintf(stderr, "retrace_shardd: retrying %s in %llu ms (attempt %d/%d)\n",
                   target.c_str(), static_cast<unsigned long long>(sleep_ms), attempt, retries);
      ::usleep(static_cast<useconds_t>(sleep_ms * 1000));
    }
    fd = retrace::TcpConnect(target);
  }
  if (fd < 0) {
    std::fprintf(stderr, "retrace_shardd: cannot reach coordinator at %s\n", target.c_str());
    return 1;
  }
  std::fprintf(stderr, "retrace_shardd: joined fleet at %s as %s\n", target.c_str(),
               ident.c_str());
  const retrace::ShardRunStatus status = retrace::ServeShardJobs(fd, ident, workers, token);
  std::fprintf(stderr, "retrace_shardd: connection %s\n", StatusWord(status));
  switch (status) {
    case retrace::ShardRunStatus::kOk:
      return 0;
    case retrace::ShardRunStatus::kCoordinatorLost:
      return 3;
    case retrace::ShardRunStatus::kProtocolError:
      return 1;
  }
  return 1;
}
