// Reproducing the classic `paste -d'\' ...` crash (paper §5.2, Table 1).
//
// The paste delimiter-expansion loop walks past the terminating NUL when
// the delimiter list ends in a backslash. The example records the crash
// under all four instrumentation methods and reproduces it from each
// report, mirroring Table 1's finding that every configuration replays
// coreutils bugs in seconds.
#include <cstdio>

#include "src/core/pipeline.h"
#include "src/workloads/scenarios.h"
#include "src/workloads/workloads.h"

int main() {
  using namespace retrace;

  const WorkloadSources sources = PasteWorkload();
  auto built = Pipeline::FromSources(sources.app, sources.libs);
  if (!built.ok()) {
    std::printf("compile error: %s\n", built.error().ToString().c_str());
    return 1;
  }
  auto pipeline = built.take();

  // Pre-deployment: analyze with a benign invocation.
  const Scenario benign = CoreutilsBenignScenario("paste");
  AnalysisConfig dyn_config;
  dyn_config.max_runs = 24;
  const AnalysisResult dyn = pipeline->RunDynamicAnalysis(benign.spec, dyn_config);
  const StaticAnalysisResult stat = pipeline->RunStaticAnalysis({});

  // The user runs: paste -d\ abcdefghijklmnopqrstuvwxyz
  const Scenario bug = CoreutilsBugScenario("paste");
  std::printf("user invocation: paste -d\\ %s\n\n", bug.spec.argv[3].c_str());

  for (const InstrumentMethod method :
       {InstrumentMethod::kDynamic, InstrumentMethod::kStatic, InstrumentMethod::kDynamicStatic,
        InstrumentMethod::kAllBranches}) {
    const InstrumentationPlan plan = pipeline->MakePlan(PlanInputs::ForMethod(method, &dyn, &stat));
    const auto user = pipeline->RecordUserRun(bug.spec, plan, {}).take();
    if (!user.result.Crashed()) {
      std::printf("%-16s user run did not crash?!\n", InstrumentMethodName(method));
      continue;
    }
    const ReplayResult replay = pipeline->Reproduce(user.report, plan, ReplayConfig{}).take();
    if (!replay.reproduced) {
      std::printf("%-16s NOT reproduced within budget\n", InstrumentMethodName(method));
      continue;
    }
    std::printf("%-16s plan=%3zu locations, log=%3llu bytes -> reproduced in %llu runs; "
                "witness delimiter arg = \"%s\"\n",
                InstrumentMethodName(method), plan.NumInstrumented(),
                static_cast<unsigned long long>(user.report.stats.log_bytes),
                static_cast<unsigned long long>(replay.stats.runs),
                replay.witness_argv[2].c_str());
  }
  std::printf("\nAll four configurations reproduce the crash (paper Table 1: 1-1.5s each;\n");
  std::printf("ESD, with no branch log to follow, took 10-15s on these bugs).\n");
  return 0;
}
