// Debugging the uServer: the paper's headline tradeoff (§5.3).
//
// A web server crashes after processing private HTTP requests. The example
// compares the instrumentation methods on the same crash: how much gets
// logged at the user site versus how fast the developer reproduces the
// path. It prints a compact version of Tables 2 and 3 for one scenario.
#include <cstdio>

#include "src/core/pipeline.h"
#include "src/workloads/scenarios.h"
#include "src/workloads/workloads.h"

int main() {
  using namespace retrace;

  const WorkloadSources sources = UserverWorkload();
  auto built = Pipeline::FromSources(sources.app, sources.libs);
  if (!built.ok()) {
    std::printf("compile error: %s\n", built.error().ToString().c_str());
    return 1;
  }
  auto pipeline = built.take();
  std::printf("userver: %zu app + %zu library branch locations\n",
              pipeline->module().NumAppBranchLocations(),
              pipeline->module().NumBranchLocations() -
                  pipeline->module().NumAppBranchLocations());

  // Pre-deployment. Low coverage: a 5-byte junk request (the engine never
  // builds a full HTTP request from it). High coverage: a rich request
  // plus POST/HEAD seeds from the test suite.
  AnalysisConfig lc_config;
  lc_config.max_runs = 4;
  const AnalysisResult lc = pipeline->RunDynamicAnalysis(UserverExploreSpecLC(), lc_config);
  AnalysisConfig hc_config;
  hc_config.max_runs = 64;
  hc_config.extra_seed_models = UserverExploreSeedModels();
  const AnalysisResult hc = pipeline->RunDynamicAnalysis(UserverExploreSpec(), hc_config);
  std::printf("dynamic coverage: LC %.0f%%, HC %.0f%%\n", 100.0 * lc.Coverage(),
              100.0 * hc.Coverage());

  StaticAnalysisOptions opaque;
  opaque.analyze_library = false;  // uServer+libc is too big to merge (paper §5.3).
  const StaticAnalysisResult stat = pipeline->RunStaticAnalysis(opaque);

  // The user's workload: a POST with a private body, then a crash signal.
  const Scenario scenario = UserverScenario(3);
  std::printf("scenario: %s (private POST body; crash signal after the request)\n\n",
              scenario.name.c_str());

  struct Row {
    const char* name;
    InstrumentationPlan plan;
  };
  Row rows[] = {
      {"dynamic (lc)", pipeline->MakePlan(PlanInputs::Dynamic(lc))},
      {"dynamic (hc)", pipeline->MakePlan(PlanInputs::Dynamic(hc))},
      {"dyn+static (lc)", pipeline->MakePlan(PlanInputs::DynamicStatic(lc, stat))},
      {"dyn+static (hc)", pipeline->MakePlan(PlanInputs::DynamicStatic(hc, stat))},
      {"static", pipeline->MakePlan(PlanInputs::Static(stat))},
      {"all branches", pipeline->MakePlan(PlanInputs::AllBranches())},
  };

  std::printf("%-18s %-8s %-10s %-10s %-8s %s\n", "method", "plan", "log_bytes", "replay",
              "runs", "unlogged symbolic loc/exec");
  for (const Row& row : rows) {
    Pipeline::UserRunOptions options;
    options.policy = scenario.policy.get();
    const auto user = pipeline->RecordUserRun(scenario.spec, row.plan, options).take();
    if (!user.result.Crashed()) {
      std::printf("%-18s user run did not crash?!\n", row.name);
      continue;
    }
    ReplayConfig replay_config;
    replay_config.wall_ms = 15'000;
    const ReplayResult replay = pipeline->Reproduce(user.report, row.plan, replay_config).take();
    char replay_cell[32];
    if (replay.reproduced) {
      std::snprintf(replay_cell, sizeof(replay_cell), "%.2fs", replay.wall_seconds);
    } else {
      std::snprintf(replay_cell, sizeof(replay_cell), "inf");
    }
    std::printf("%-18s %-8zu %-10llu %-10s %-8llu %llu / %llu\n", row.name,
                row.plan.NumInstrumented(),
                static_cast<unsigned long long>(user.report.stats.log_bytes), replay_cell,
                static_cast<unsigned long long>(replay.stats.runs),
                static_cast<unsigned long long>(user.report.stats.symbolic_locations_unlogged),
                static_cast<unsigned long long>(user.report.stats.symbolic_execs_unlogged));
  }
  std::printf("\nThe combined method logs a fraction of what static logs, yet replays\n");
  std::printf("almost as fast — the paper's \"new balance\".\n");
  return 0;
}
