// Quickstart: the full bug-reporting pipeline on a small program.
//
// Walks through the paper's deployment story end to end:
//   1. compile a MiniC program,
//   2. run the pre-deployment analyses (dynamic concolic + static taint),
//   3. build the combined instrumentation plan,
//   4. simulate the user site: instrumented run, crash, bug report,
//   5. simulate the developer site: reproduce the bug from the report,
//   6. verify the synthesized witness input triggers the same crash.
#include <cstdio>

#include "src/core/pipeline.h"
#include "src/workloads/workloads.h"

namespace {

// A program with an input-guarded crash: it only fails when the first
// argument spells "go" and the second argument's first byte is > '7'.
constexpr const char* kProgram = R"(
int check(char *flag) {
  if (flag[0] == 'g' && flag[1] == 'o' && flag[2] == 0) {
    return 1;
  }
  return 0;
}

int main(int argc, char **argv) {
  if (argc < 3) {
    print_str("usage: demo FLAG LEVEL\n");
    return 1;
  }
  int armed = check(argv[1]);
  int level = mini_atoi(argv[2]);
  for (int i = 0; i < 3; i = i + 1) {
    if (armed && level > 7) {
      crash(42);
    }
  }
  print_str("all good\n");
  return 0;
}
)";

}  // namespace

int main() {
  using namespace retrace;

  // 1. Compile (the libmini library unit provides mini_atoi and friends).
  auto built = Pipeline::FromSources(kProgram, {LibminiSource()});
  if (!built.ok()) {
    std::printf("compile error: %s\n", built.error().ToString().c_str());
    return 1;
  }
  std::unique_ptr<Pipeline> pipeline = built.take();
  std::printf("compiled: %zu branch locations\n", pipeline->module().NumBranchLocations());

  // 2. Pre-deployment analyses. The dynamic analysis explores from a benign
  //    input of the same shape; the developer does not know the bug input.
  InputSpec benign;
  benign.argv = {"demo", "ab", "12"};
  benign.world.listen_fd = -1;
  AnalysisConfig dyn_config;
  dyn_config.max_runs = 32;
  const AnalysisResult dyn = pipeline->RunDynamicAnalysis(benign, dyn_config);
  const StaticAnalysisResult stat = pipeline->RunStaticAnalysis({});
  std::printf("dynamic analysis: %llu runs, %.0f%% branch coverage, %zu symbolic\n",
              static_cast<unsigned long long>(dyn.runs), 100.0 * dyn.Coverage(),
              dyn.CountLabel(BranchLabel::kSymbolic));
  std::printf("static analysis: %zu branches labeled symbolic\n", stat.NumSymbolic());

  // 3. The combined dynamic+static plan (the paper's best tradeoff).
  const InstrumentationPlan plan =
      pipeline->MakePlan(PlanInputs::DynamicStatic(dyn, stat));
  std::printf("instrumentation plan (%s): %zu of %zu branch locations\n",
              InstrumentMethodName(plan.method), plan.NumInstrumented(),
              pipeline->module().NumBranchLocations());

  // 4. User site: the user hits the bug with private input.
  InputSpec user_input;
  user_input.argv = {"demo", "go", "9314159"};
  user_input.world.listen_fd = -1;
  const auto user = pipeline->RecordUserRun(user_input, plan, {}).take();
  if (!user.result.Crashed()) {
    std::printf("unexpected: user run did not crash\n");
    return 1;
  }
  std::printf("user site: crash at %s\n", user.result.crash.ToString().c_str());
  std::printf("bug report: %llu branch-log bytes, %llu syscall-log bytes (inputs NOT shipped)\n",
              static_cast<unsigned long long>(user.report.stats.log_bytes),
              static_cast<unsigned long long>(user.report.stats.syscall_log_bytes));

  // 5. Developer site: reproduce from the report alone.
  ReplayConfig replay_config;
  const ReplayResult replay = pipeline->Reproduce(user.report, plan, replay_config).take();
  if (!replay.reproduced) {
    std::printf("reproduction failed within budget\n");
    return 1;
  }
  std::printf("reproduced in %llu runs (%.3fs): witness argv = {\"%s\", \"%s\", \"%s\"}\n",
              static_cast<unsigned long long>(replay.stats.runs), replay.wall_seconds,
              replay.witness_argv[0].c_str(), replay.witness_argv[1].c_str(),
              replay.witness_argv[2].c_str());
  std::printf("note: the witness activates the bug but is not the user's input "
              "(argv[2] was \"9314159\")\n");

  // 6. Verify.
  const bool verified = pipeline->VerifyWitness(user.report, replay.witness_cells);
  std::printf("witness verification: %s\n", verified ? "crashes at the same site" : "FAILED");
  return verified ? 0 : 1;
}
