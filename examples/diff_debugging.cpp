// Debugging diff: an input-intensive workload (paper §5.4).
//
// Both files' contents are private; the bug report carries only the
// branch bitvector, the syscall-result log, and the file *names* (which
// the world shape exposes anyway). Reproduction synthesizes a fresh pair
// of files that drives diff down the recorded path into the hunk-table
// overflow — without ever seeing the originals.
#include <cstdio>

#include "src/core/pipeline.h"
#include "src/workloads/scenarios.h"
#include "src/workloads/workloads.h"

int main() {
  using namespace retrace;

  const WorkloadSources sources = DiffWorkload();
  auto built = Pipeline::FromSources(sources.app, sources.libs);
  if (!built.ok()) {
    std::printf("compile error: %s\n", built.error().ToString().c_str());
    return 1;
  }
  auto pipeline = built.take();

  const StaticAnalysisResult stat = pipeline->RunStaticAnalysis({});
  const InstrumentationPlan plan = pipeline->MakePlan(PlanInputs::Static(stat));
  std::printf("static plan: %zu of %zu branch locations instrumented\n",
              plan.NumInstrumented(), pipeline->module().NumBranchLocations());

  const Scenario scenario = DiffScenario(1);
  const auto user = pipeline->RecordUserRun(scenario.spec, plan, {}).take();
  if (!user.result.Crashed()) {
    std::printf("diff did not crash?!\n");
    return 1;
  }
  std::printf("user site: diff a.txt b.txt crashed at %s\n",
              user.result.crash.ToString().c_str());
  std::printf("report: %llu branch-log bytes + %llu syscall-log bytes; file contents "
              "not included\n\n",
              static_cast<unsigned long long>(user.report.stats.log_bytes),
              static_cast<unsigned long long>(user.report.stats.syscall_log_bytes));

  const ReplayResult replay = pipeline->Reproduce(user.report, plan, ReplayConfig{}).take();
  if (!replay.reproduced) {
    std::printf("not reproduced within budget\n");
    return 1;
  }
  std::printf("reproduced in %llu runs (%.3fs)\n",
              static_cast<unsigned long long>(replay.stats.runs), replay.wall_seconds);

  // Show the synthesized file contents (the witness): same newline
  // structure as the originals — that is what the path constrains — but
  // different bytes elsewhere.
  const CellLayout layout = CellLayout::Build(user.report.shape);
  for (int file = 0; file < 2; ++file) {
    std::string contents;
    const StreamShape& stream = user.report.shape.world.streams[file];
    for (i64 k = 0; k < stream.length; ++k) {
      const i64 v = replay.witness_cells[layout.StreamByteCell(file, k)];
      const char c = static_cast<char>(static_cast<u8>(v));
      contents += (c == '\n') ? "\\n" : std::string(1, c);
    }
    std::printf("witness %s: %s\n", file == 0 ? "a.txt" : "b.txt", contents.c_str());
  }
  std::printf("\n(the original files never left the user machine)\n");
  return pipeline->VerifyWitness(user.report, replay.witness_cells) ? 0 : 1;
}
