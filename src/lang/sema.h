// Semantic analysis: name resolution, type checking, slot assignment.
#ifndef RETRACE_LANG_SEMA_H_
#define RETRACE_LANG_SEMA_H_

#include <memory>
#include <string>
#include <vector>

#include "src/lang/ast.h"
#include "src/support/diag.h"

namespace retrace {

// A local variable or parameter after sema: one frame slot each.
struct LocalInfo {
  std::string name;
  Type type;
  bool is_param = false;
  bool address_taken = false;  // Scalar whose address is taken -> needs a memory object.
};

struct SemaFunc {
  const FuncDecl* decl = nullptr;
  int index = -1;
  Type return_type;
  int num_params = 0;
  std::vector<LocalInfo> locals;  // Params first, then block-scoped locals.
  bool is_library = false;
};

struct GlobalInfo {
  std::string name;
  Type type;
  i64 init_value = 0;
  bool address_taken = false;
};

// The sema-checked program: owns the ASTs and all symbol tables. Input to
// IR lowering and to the static analyzer (which re-traverses the IR, not
// the AST).
struct SemaProgram {
  std::vector<std::unique_ptr<Unit>> units;
  std::vector<SemaFunc> funcs;
  std::vector<GlobalInfo> globals;
  std::vector<std::string> strings;
  int main_index = -1;

  const SemaFunc* FindFunc(std::string_view name) const;
};

// Runs semantic analysis over the given units (application + library).
Result<std::unique_ptr<SemaProgram>> Analyze(std::vector<std::unique_ptr<Unit>> units);

}  // namespace retrace

#endif  // RETRACE_LANG_SEMA_H_
