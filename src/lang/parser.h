// Recursive-descent parser for MiniC.
#ifndef RETRACE_LANG_PARSER_H_
#define RETRACE_LANG_PARSER_H_

#include <memory>
#include <string_view>

#include "src/lang/ast.h"
#include "src/support/diag.h"

namespace retrace {

// Parses one source unit. `unit_index` tags source locations; `is_library`
// marks every function in the unit as library code (the uClibc stand-in).
Result<std::unique_ptr<Unit>> Parse(std::string_view source, int unit_index, bool is_library);

}  // namespace retrace

#endif  // RETRACE_LANG_PARSER_H_
