#include "src/lang/ast.h"

#include <sstream>

namespace retrace {

Type Type::Element() const {
  Check(IsPtrLike(), "Type::Element on non-pointer type");
  if (IsArray()) {
    return base == TypeKind::kInt ? Int() : Char();
  }
  if (ptr_depth == 1) {
    return base == TypeKind::kInt ? Int() : Char();
  }
  return PtrTo(base, ptr_depth - 1);
}

Type Type::PointerTo() const {
  if (IsScalar()) {
    return PtrTo(kind, 1);
  }
  if (IsArray()) {
    return PtrTo(base, 1);
  }
  Check(IsPtr(), "Type::PointerTo on void");
  return PtrTo(base, ptr_depth + 1);
}

std::string Type::ToString() const {
  std::ostringstream os;
  switch (kind) {
    case TypeKind::kVoid: return "void";
    case TypeKind::kInt: return "int";
    case TypeKind::kChar: return "char";
    case TypeKind::kArray:
      os << (base == TypeKind::kInt ? "int" : "char") << "[" << array_size << "]";
      return os.str();
    case TypeKind::kPtr:
      os << (base == TypeKind::kInt ? "int" : "char");
      for (int i = 0; i < ptr_depth; ++i) {
        os << "*";
      }
      return os.str();
  }
  return "?";
}

}  // namespace retrace
