// Abstract syntax tree for MiniC.
//
// MiniC is the C subset the workloads are written in: int/char scalars,
// fixed-size arrays, pointers (including char** argv), functions, globals,
// short-circuit logical operators, and the usual control flow. It is rich
// enough that the paper's analyses face the same problems they face on C:
// pointer aliasing, input-dependent loops, and library/application splits.
#ifndef RETRACE_LANG_AST_H_
#define RETRACE_LANG_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "src/support/common.h"

namespace retrace {

// ----- Types -------------------------------------------------------------

enum class TypeKind { kVoid, kInt, kChar, kPtr, kArray };

// Value type. Types are small and copied by value; pointer/array element
// types are encoded by `depth` levels of indirection over a base scalar.
struct Type {
  TypeKind kind = TypeKind::kInt;
  TypeKind base = TypeKind::kInt;  // For kPtr/kArray: scalar at the bottom.
  int ptr_depth = 0;               // For kPtr: levels of indirection (>= 1).
  i64 array_size = 0;              // For kArray.

  static Type Void() { return Type{TypeKind::kVoid, TypeKind::kVoid, 0, 0}; }
  static Type Int() { return Type{TypeKind::kInt, TypeKind::kInt, 0, 0}; }
  static Type Char() { return Type{TypeKind::kChar, TypeKind::kChar, 0, 0}; }
  static Type PtrTo(TypeKind scalar, int depth) {
    return Type{TypeKind::kPtr, scalar, depth, 0};
  }
  static Type ArrayOf(TypeKind scalar, i64 size) {
    return Type{TypeKind::kArray, scalar, 0, size};
  }

  bool IsVoid() const { return kind == TypeKind::kVoid; }
  bool IsScalar() const { return kind == TypeKind::kInt || kind == TypeKind::kChar; }
  bool IsPtr() const { return kind == TypeKind::kPtr; }
  bool IsArray() const { return kind == TypeKind::kArray; }
  bool IsPtrLike() const { return IsPtr() || IsArray(); }

  // Type of *p or p[i].
  Type Element() const;
  // Type of &lvalue of this type.
  Type PointerTo() const;

  bool operator==(const Type&) const = default;
  std::string ToString() const;
};

// ----- Expressions -------------------------------------------------------

enum class ExprKind {
  kIntLit,
  kCharLit,
  kStringLit,
  kVarRef,
  kUnary,     // - ! ~ * &
  kBinary,    // arithmetic, comparison, bitwise; NOT && || (see kLogical)
  kLogical,   // && || : short-circuit, lowered to control flow
  kAssign,    // =, +=, -=, *=, /=, %=
  kIncDec,    // ++x, --x, x++, x--
  kIndex,     // a[i]
  kCall,
};

enum class UnaryOp { kNeg, kLogicalNot, kBitNot, kDeref, kAddrOf };
enum class BinaryOp {
  kAdd, kSub, kMul, kDiv, kRem,
  kBitAnd, kBitOr, kBitXor, kShl, kShr,
  kEq, kNe, kLt, kLe, kGt, kGe,
};
enum class LogicalOp { kAnd, kOr };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind kind;
  SourceLoc loc;
  Type type;  // Filled in by sema.

  // kIntLit / kCharLit
  i64 int_value = 0;
  // kStringLit
  std::string str_value;
  int string_id = -1;  // Filled in by sema: global string table index.
  // kVarRef / kCall
  std::string name;
  // Resolved by sema: see VarBinding in sema.h. kind/index pairs.
  int binding_kind = -1;  // 0 = local/param slot, 1 = global.
  int binding_index = -1;
  int callee_index = -1;   // kCall: function table index, or builtin id.
  bool callee_is_builtin = false;
  // kUnary
  UnaryOp un_op = UnaryOp::kNeg;
  // kBinary
  BinaryOp bin_op = BinaryOp::kAdd;
  // kLogical
  LogicalOp log_op = LogicalOp::kAnd;
  // kAssign: op == nullopt means plain '='; otherwise the compound base op.
  bool has_compound_op = false;
  BinaryOp compound_op = BinaryOp::kAdd;
  // kIncDec
  bool is_increment = true;
  bool is_prefix = true;

  ExprPtr lhs;               // Unary operand / binary lhs / index base / call unused.
  ExprPtr rhs;               // Binary rhs / index subscript / assign value.
  std::vector<ExprPtr> args;  // kCall arguments.
};

// ----- Statements ---------------------------------------------------------

enum class StmtKind {
  kBlock,
  kExpr,
  kVarDecl,
  kIf,
  kWhile,
  kFor,
  kReturn,
  kBreak,
  kContinue,
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  StmtKind kind;
  SourceLoc loc;

  // kVarDecl
  std::string decl_name;
  Type decl_type;
  int decl_slot = -1;  // Filled in by sema.
  ExprPtr init;        // Optional initializer (also used as kExpr's expr).

  // kIf / kWhile / kFor conditions; kReturn value.
  ExprPtr cond;
  // kFor clauses.
  StmtPtr for_init;   // kVarDecl or kExpr or null.
  ExprPtr for_step;   // Optional.

  StmtPtr then_body;  // kIf then / loop body.
  StmtPtr else_body;  // kIf else.

  std::vector<StmtPtr> body;  // kBlock statements.
};

// ----- Declarations --------------------------------------------------------

struct ParamDecl {
  std::string name;
  Type type;
  SourceLoc loc;
};

struct FuncDecl {
  std::string name;
  Type return_type;
  std::vector<ParamDecl> params;
  StmtPtr body;
  SourceLoc loc;
  bool is_library = false;  // True when declared in a library unit.
};

struct GlobalDecl {
  std::string name;
  Type type;
  i64 init_value = 0;        // Scalar initializer (constant).
  bool has_init = false;
  SourceLoc loc;
};

// One parsed source unit (a "file").
struct Unit {
  std::vector<GlobalDecl> globals;
  std::vector<std::unique_ptr<FuncDecl>> functions;
  bool is_library = false;
  int unit_index = 0;
};

}  // namespace retrace

#endif  // RETRACE_LANG_AST_H_
