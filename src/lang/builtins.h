// Builtin functions MiniC programs can call.
//
// These are the program's window onto the virtual OS (src/vos) and the
// sources of input the analyses track: argv plus the return values and
// output buffers of the input builtins. They mirror the system calls the
// paper singles out (read/select) plus the signal-delivery check the uServer
// experiments rely on.
#ifndef RETRACE_LANG_BUILTINS_H_
#define RETRACE_LANG_BUILTINS_H_

#include <optional>
#include <string_view>

namespace retrace {

enum class Builtin {
  kRead,        // int read(int fd, char *buf, int n): input source.
  kWrite,       // int write(int fd, char *buf, int n).
  kOpen,        // int open(char *path, int flags): fd or -1.
  kClose,       // int close(int fd).
  kSelectFd,    // int select_fd(int *fds, int nfds): index of ready fd, -1 if none.
  kAcceptConn,  // int accept_conn(int listen_fd): new fd or -1.
  kPollSignal,  // int poll_signal(): 1 when an async signal is pending.
  kCrash,       // void crash(int code): deterministic crash site (SIGSEGV stand-in).
  kExit,        // void exit(int code).
  kPrintInt,    // void print_int(int v).
  kPrintStr,    // void print_str(char *s).
};

inline constexpr int kNumBuiltins = 11;

// Returns the builtin for `name`, if any.
std::optional<Builtin> LookupBuiltin(std::string_view name);

const char* BuiltinName(Builtin b);

// Builtins whose return value is input-dependent (treated as symbolic
// sources by both analyses, and as loggable system calls by the recorder).
bool BuiltinReturnsInput(Builtin b);

// Builtins that fill a caller buffer with input bytes (read).
bool BuiltinFillsInputBuffer(Builtin b);

}  // namespace retrace

#endif  // RETRACE_LANG_BUILTINS_H_
