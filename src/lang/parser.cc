#include "src/lang/parser.h"

#include <utility>

#include "src/lang/lexer.h"

namespace retrace {
namespace {

class ParserImpl {
 public:
  ParserImpl(std::vector<Token> tokens, int unit_index, bool is_library)
      : tokens_(std::move(tokens)), unit_index_(unit_index), is_library_(is_library) {}

  Result<std::unique_ptr<Unit>> Run() {
    auto unit = std::make_unique<Unit>();
    unit->is_library = is_library_;
    unit->unit_index = unit_index_;
    while (!At(TokenKind::kEof)) {
      Result<bool> r = ParseTopLevel(*unit);
      if (!r.ok()) {
        return r.error();
      }
    }
    return unit;
  }

 private:
  // ----- Token helpers -----
  const Token& Cur() const { return tokens_[pos_]; }
  const Token& Ahead(size_t n) const {
    const size_t i = pos_ + n;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool At(TokenKind kind) const { return Cur().kind == kind; }
  Token Take() { return tokens_[pos_++]; }
  bool Eat(TokenKind kind) {
    if (At(kind)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Error Err(std::string message) const { return Error{std::move(message), Cur().loc}; }
  Result<Token> Expect(TokenKind kind) {
    if (!At(kind)) {
      return Err(std::string("expected ") + TokenKindName(kind) + ", found " +
                 TokenKindName(Cur().kind));
    }
    return Take();
  }

  bool AtTypeKeyword() const {
    return At(TokenKind::kKwInt) || At(TokenKind::kKwChar) || At(TokenKind::kKwVoid);
  }

  // ----- Types -----
  Result<Type> ParseBaseType() {
    TypeKind scalar;
    if (Eat(TokenKind::kKwInt)) {
      scalar = TypeKind::kInt;
    } else if (Eat(TokenKind::kKwChar)) {
      scalar = TypeKind::kChar;
    } else if (Eat(TokenKind::kKwVoid)) {
      scalar = TypeKind::kVoid;
    } else {
      return Err("expected type");
    }
    int depth = 0;
    while (Eat(TokenKind::kStar)) {
      ++depth;
    }
    if (scalar == TypeKind::kVoid) {
      if (depth != 0) {
        return Err("void pointers are not supported");
      }
      return Type::Void();
    }
    if (depth > 0) {
      return Type::PtrTo(scalar, depth);
    }
    return scalar == TypeKind::kInt ? Type::Int() : Type::Char();
  }

  // ----- Top level -----
  Result<bool> ParseTopLevel(Unit& unit) {
    if (!AtTypeKeyword()) {
      return Err("expected declaration");
    }
    Result<Type> type = ParseBaseType();
    if (!type.ok()) {
      return type.error();
    }
    Result<Token> name = Expect(TokenKind::kIdent);
    if (!name.ok()) {
      return name.error();
    }
    if (At(TokenKind::kLParen)) {
      return ParseFunction(unit, type.value(), name.value());
    }
    return ParseGlobal(unit, type.value(), name.value());
  }

  Result<bool> ParseGlobal(Unit& unit, Type type, const Token& name) {
    GlobalDecl g;
    g.name = name.text;
    g.loc = name.loc;
    g.type = type;
    if (Eat(TokenKind::kLBracket)) {
      if (!type.IsScalar()) {
        return Err("arrays of pointers are not supported");
      }
      Result<Token> size = Expect(TokenKind::kIntLit);
      if (!size.ok()) {
        return size.error();
      }
      if (size.value().int_value <= 0) {
        return Err("array size must be positive");
      }
      Result<Token> rb = Expect(TokenKind::kRBracket);
      if (!rb.ok()) {
        return rb.error();
      }
      g.type = Type::ArrayOf(type.kind, size.value().int_value);
    }
    if (Eat(TokenKind::kAssign)) {
      if (!g.type.IsScalar()) {
        return Err("only scalar globals may have initializers");
      }
      bool negate = Eat(TokenKind::kMinus);
      Result<Token> lit = At(TokenKind::kCharLit) ? Expect(TokenKind::kCharLit)
                                                  : Expect(TokenKind::kIntLit);
      if (!lit.ok()) {
        return lit.error();
      }
      g.init_value = negate ? -lit.value().int_value : lit.value().int_value;
      g.has_init = true;
    }
    Result<Token> semi = Expect(TokenKind::kSemi);
    if (!semi.ok()) {
      return semi.error();
    }
    unit.globals.push_back(std::move(g));
    return true;
  }

  Result<bool> ParseFunction(Unit& unit, Type return_type, const Token& name) {
    auto fn = std::make_unique<FuncDecl>();
    fn->name = name.text;
    fn->loc = name.loc;
    fn->return_type = return_type;
    fn->is_library = is_library_;
    Result<Token> lp = Expect(TokenKind::kLParen);
    if (!lp.ok()) {
      return lp.error();
    }
    if (!At(TokenKind::kRParen)) {
      for (;;) {
        Result<Type> ptype = ParseBaseType();
        if (!ptype.ok()) {
          return ptype.error();
        }
        if (ptype.value().IsVoid()) {
          return Err("parameters cannot be void");
        }
        Result<Token> pname = Expect(TokenKind::kIdent);
        if (!pname.ok()) {
          return pname.error();
        }
        Type final_type = ptype.value();
        if (Eat(TokenKind::kLBracket)) {
          // Array parameter syntax `t name[]` decays to a pointer.
          Result<Token> rb = Expect(TokenKind::kRBracket);
          if (!rb.ok()) {
            return rb.error();
          }
          final_type = final_type.PointerTo();
        }
        fn->params.push_back(ParamDecl{pname.value().text, final_type, pname.value().loc});
        if (!Eat(TokenKind::kComma)) {
          break;
        }
      }
    }
    Result<Token> rp = Expect(TokenKind::kRParen);
    if (!rp.ok()) {
      return rp.error();
    }
    Result<StmtPtr> body = ParseBlock();
    if (!body.ok()) {
      return body.error();
    }
    fn->body = body.take();
    unit.functions.push_back(std::move(fn));
    return true;
  }

  // ----- Statements -----
  Result<StmtPtr> ParseBlock() {
    Result<Token> lb = Expect(TokenKind::kLBrace);
    if (!lb.ok()) {
      return lb.error();
    }
    auto block = std::make_unique<Stmt>();
    block->kind = StmtKind::kBlock;
    block->loc = lb.value().loc;
    while (!At(TokenKind::kRBrace)) {
      if (At(TokenKind::kEof)) {
        return Err("unterminated block");
      }
      Result<StmtPtr> s = ParseStmt();
      if (!s.ok()) {
        return s.error();
      }
      block->body.push_back(s.take());
    }
    Take();  // '}'
    return StmtPtr(std::move(block));
  }

  Result<StmtPtr> ParseStmt() {
    if (At(TokenKind::kLBrace)) {
      return ParseBlock();
    }
    if (AtTypeKeyword()) {
      return ParseVarDecl(/*consume_semi=*/true);
    }
    const Token& tok = Cur();
    switch (tok.kind) {
      case TokenKind::kKwIf: return ParseIf();
      case TokenKind::kKwWhile: return ParseWhile();
      case TokenKind::kKwFor: return ParseFor();
      case TokenKind::kKwReturn: return ParseReturn();
      case TokenKind::kKwBreak: {
        Take();
        Result<Token> semi = Expect(TokenKind::kSemi);
        if (!semi.ok()) {
          return semi.error();
        }
        auto s = std::make_unique<Stmt>();
        s->kind = StmtKind::kBreak;
        s->loc = tok.loc;
        return StmtPtr(std::move(s));
      }
      case TokenKind::kKwContinue: {
        Take();
        Result<Token> semi = Expect(TokenKind::kSemi);
        if (!semi.ok()) {
          return semi.error();
        }
        auto s = std::make_unique<Stmt>();
        s->kind = StmtKind::kContinue;
        s->loc = tok.loc;
        return StmtPtr(std::move(s));
      }
      default: {
        Result<ExprPtr> e = ParseExpr();
        if (!e.ok()) {
          return e.error();
        }
        Result<Token> semi = Expect(TokenKind::kSemi);
        if (!semi.ok()) {
          return semi.error();
        }
        auto s = std::make_unique<Stmt>();
        s->kind = StmtKind::kExpr;
        s->loc = tok.loc;
        s->init = e.take();
        return StmtPtr(std::move(s));
      }
    }
  }

  Result<StmtPtr> ParseVarDecl(bool consume_semi) {
    const SourceLoc loc = Cur().loc;
    Result<Type> type = ParseBaseType();
    if (!type.ok()) {
      return type.error();
    }
    if (type.value().IsVoid()) {
      return Err("variables cannot be void");
    }
    Result<Token> name = Expect(TokenKind::kIdent);
    if (!name.ok()) {
      return name.error();
    }
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::kVarDecl;
    s->loc = loc;
    s->decl_name = name.value().text;
    s->decl_type = type.value();
    if (Eat(TokenKind::kLBracket)) {
      if (!type.value().IsScalar()) {
        return Err("local arrays of pointers are not supported");
      }
      Result<Token> size = Expect(TokenKind::kIntLit);
      if (!size.ok()) {
        return size.error();
      }
      if (size.value().int_value <= 0) {
        return Err("array size must be positive");
      }
      Result<Token> rb = Expect(TokenKind::kRBracket);
      if (!rb.ok()) {
        return rb.error();
      }
      s->decl_type = Type::ArrayOf(type.value().kind, size.value().int_value);
    }
    if (Eat(TokenKind::kAssign)) {
      if (s->decl_type.IsArray()) {
        return Err("array initializers are not supported");
      }
      Result<ExprPtr> init = ParseExpr();
      if (!init.ok()) {
        return init.error();
      }
      s->init = init.take();
    }
    if (consume_semi) {
      Result<Token> semi = Expect(TokenKind::kSemi);
      if (!semi.ok()) {
        return semi.error();
      }
    }
    return StmtPtr(std::move(s));
  }

  Result<StmtPtr> ParseIf() {
    const SourceLoc loc = Take().loc;  // 'if'
    Result<Token> lp = Expect(TokenKind::kLParen);
    if (!lp.ok()) {
      return lp.error();
    }
    Result<ExprPtr> cond = ParseExpr();
    if (!cond.ok()) {
      return cond.error();
    }
    Result<Token> rp = Expect(TokenKind::kRParen);
    if (!rp.ok()) {
      return rp.error();
    }
    Result<StmtPtr> then_body = ParseStmt();
    if (!then_body.ok()) {
      return then_body.error();
    }
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::kIf;
    s->loc = loc;
    s->cond = cond.take();
    s->then_body = then_body.take();
    if (Eat(TokenKind::kKwElse)) {
      Result<StmtPtr> else_body = ParseStmt();
      if (!else_body.ok()) {
        return else_body.error();
      }
      s->else_body = else_body.take();
    }
    return StmtPtr(std::move(s));
  }

  Result<StmtPtr> ParseWhile() {
    const SourceLoc loc = Take().loc;  // 'while'
    Result<Token> lp = Expect(TokenKind::kLParen);
    if (!lp.ok()) {
      return lp.error();
    }
    Result<ExprPtr> cond = ParseExpr();
    if (!cond.ok()) {
      return cond.error();
    }
    Result<Token> rp = Expect(TokenKind::kRParen);
    if (!rp.ok()) {
      return rp.error();
    }
    Result<StmtPtr> body = ParseStmt();
    if (!body.ok()) {
      return body.error();
    }
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::kWhile;
    s->loc = loc;
    s->cond = cond.take();
    s->then_body = body.take();
    return StmtPtr(std::move(s));
  }

  Result<StmtPtr> ParseFor() {
    const SourceLoc loc = Take().loc;  // 'for'
    Result<Token> lp = Expect(TokenKind::kLParen);
    if (!lp.ok()) {
      return lp.error();
    }
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::kFor;
    s->loc = loc;
    if (!At(TokenKind::kSemi)) {
      if (AtTypeKeyword()) {
        Result<StmtPtr> init = ParseVarDecl(/*consume_semi=*/false);
        if (!init.ok()) {
          return init.error();
        }
        s->for_init = init.take();
      } else {
        Result<ExprPtr> init = ParseExpr();
        if (!init.ok()) {
          return init.error();
        }
        auto init_stmt = std::make_unique<Stmt>();
        init_stmt->kind = StmtKind::kExpr;
        init_stmt->loc = loc;
        init_stmt->init = init.take();
        s->for_init = std::move(init_stmt);
      }
    }
    Result<Token> semi1 = Expect(TokenKind::kSemi);
    if (!semi1.ok()) {
      return semi1.error();
    }
    if (!At(TokenKind::kSemi)) {
      Result<ExprPtr> cond = ParseExpr();
      if (!cond.ok()) {
        return cond.error();
      }
      s->cond = cond.take();
    }
    Result<Token> semi2 = Expect(TokenKind::kSemi);
    if (!semi2.ok()) {
      return semi2.error();
    }
    if (!At(TokenKind::kRParen)) {
      Result<ExprPtr> step = ParseExpr();
      if (!step.ok()) {
        return step.error();
      }
      s->for_step = step.take();
    }
    Result<Token> rp = Expect(TokenKind::kRParen);
    if (!rp.ok()) {
      return rp.error();
    }
    Result<StmtPtr> body = ParseStmt();
    if (!body.ok()) {
      return body.error();
    }
    s->then_body = body.take();
    return StmtPtr(std::move(s));
  }

  Result<StmtPtr> ParseReturn() {
    const SourceLoc loc = Take().loc;  // 'return'
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::kReturn;
    s->loc = loc;
    if (!At(TokenKind::kSemi)) {
      Result<ExprPtr> value = ParseExpr();
      if (!value.ok()) {
        return value.error();
      }
      s->cond = value.take();
    }
    Result<Token> semi = Expect(TokenKind::kSemi);
    if (!semi.ok()) {
      return semi.error();
    }
    return StmtPtr(std::move(s));
  }

  // ----- Expressions (precedence climbing) -----
  Result<ExprPtr> ParseExpr() { return ParseAssignment(); }

  Result<ExprPtr> ParseAssignment() {
    Result<ExprPtr> lhs = ParseLogicalOr();
    if (!lhs.ok()) {
      return lhs.error();
    }
    const TokenKind k = Cur().kind;
    bool compound = false;
    BinaryOp op = BinaryOp::kAdd;
    switch (k) {
      case TokenKind::kAssign: break;
      case TokenKind::kPlusAssign: compound = true; op = BinaryOp::kAdd; break;
      case TokenKind::kMinusAssign: compound = true; op = BinaryOp::kSub; break;
      case TokenKind::kStarAssign: compound = true; op = BinaryOp::kMul; break;
      case TokenKind::kSlashAssign: compound = true; op = BinaryOp::kDiv; break;
      case TokenKind::kPercentAssign: compound = true; op = BinaryOp::kRem; break;
      default: return lhs;
    }
    const SourceLoc loc = Take().loc;
    Result<ExprPtr> rhs = ParseAssignment();
    if (!rhs.ok()) {
      return rhs.error();
    }
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kAssign;
    e->loc = loc;
    e->has_compound_op = compound;
    e->compound_op = op;
    e->lhs = lhs.take();
    e->rhs = rhs.take();
    return ExprPtr(std::move(e));
  }

  using Sub = Result<ExprPtr> (ParserImpl::*)();

  Result<ExprPtr> ParseLogicalOr() {
    Result<ExprPtr> lhs = ParseLogicalAnd();
    if (!lhs.ok()) {
      return lhs;
    }
    ExprPtr acc = lhs.take();
    while (At(TokenKind::kPipePipe)) {
      const SourceLoc loc = Take().loc;
      Result<ExprPtr> rhs = ParseLogicalAnd();
      if (!rhs.ok()) {
        return rhs.error();
      }
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kLogical;
      e->log_op = LogicalOp::kOr;
      e->loc = loc;
      e->lhs = std::move(acc);
      e->rhs = rhs.take();
      acc = std::move(e);
    }
    return acc;
  }

  Result<ExprPtr> ParseLogicalAnd() {
    Result<ExprPtr> lhs = ParseBitOr();
    if (!lhs.ok()) {
      return lhs;
    }
    ExprPtr acc = lhs.take();
    while (At(TokenKind::kAmpAmp)) {
      const SourceLoc loc = Take().loc;
      Result<ExprPtr> rhs = ParseBitOr();
      if (!rhs.ok()) {
        return rhs.error();
      }
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kLogical;
      e->log_op = LogicalOp::kAnd;
      e->loc = loc;
      e->lhs = std::move(acc);
      e->rhs = rhs.take();
      acc = std::move(e);
    }
    return acc;
  }

  Result<ExprPtr> ParseBinaryLevel(Sub next, std::initializer_list<std::pair<TokenKind, BinaryOp>> ops) {
    Result<ExprPtr> lhs = (this->*next)();
    if (!lhs.ok()) {
      return lhs;
    }
    ExprPtr acc = lhs.take();
    for (;;) {
      bool matched = false;
      for (const auto& [kind, op] : ops) {
        if (At(kind)) {
          const SourceLoc loc = Take().loc;
          Result<ExprPtr> rhs = (this->*next)();
          if (!rhs.ok()) {
            return rhs.error();
          }
          auto e = std::make_unique<Expr>();
          e->kind = ExprKind::kBinary;
          e->bin_op = op;
          e->loc = loc;
          e->lhs = std::move(acc);
          e->rhs = rhs.take();
          acc = std::move(e);
          matched = true;
          break;
        }
      }
      if (!matched) {
        return acc;
      }
    }
  }

  Result<ExprPtr> ParseBitOr() {
    return ParseBinaryLevel(&ParserImpl::ParseBitXor, {{TokenKind::kPipe, BinaryOp::kBitOr}});
  }
  Result<ExprPtr> ParseBitXor() {
    return ParseBinaryLevel(&ParserImpl::ParseBitAnd, {{TokenKind::kCaret, BinaryOp::kBitXor}});
  }
  Result<ExprPtr> ParseBitAnd() {
    return ParseBinaryLevel(&ParserImpl::ParseEquality, {{TokenKind::kAmp, BinaryOp::kBitAnd}});
  }
  Result<ExprPtr> ParseEquality() {
    return ParseBinaryLevel(&ParserImpl::ParseRelational,
                            {{TokenKind::kEq, BinaryOp::kEq}, {TokenKind::kNe, BinaryOp::kNe}});
  }
  Result<ExprPtr> ParseRelational() {
    return ParseBinaryLevel(&ParserImpl::ParseShift,
                            {{TokenKind::kLt, BinaryOp::kLt},
                             {TokenKind::kLe, BinaryOp::kLe},
                             {TokenKind::kGt, BinaryOp::kGt},
                             {TokenKind::kGe, BinaryOp::kGe}});
  }
  Result<ExprPtr> ParseShift() {
    return ParseBinaryLevel(&ParserImpl::ParseAdditive,
                            {{TokenKind::kShl, BinaryOp::kShl}, {TokenKind::kShr, BinaryOp::kShr}});
  }
  Result<ExprPtr> ParseAdditive() {
    return ParseBinaryLevel(&ParserImpl::ParseMultiplicative,
                            {{TokenKind::kPlus, BinaryOp::kAdd}, {TokenKind::kMinus, BinaryOp::kSub}});
  }
  Result<ExprPtr> ParseMultiplicative() {
    return ParseBinaryLevel(&ParserImpl::ParseUnary,
                            {{TokenKind::kStar, BinaryOp::kMul},
                             {TokenKind::kSlash, BinaryOp::kDiv},
                             {TokenKind::kPercent, BinaryOp::kRem}});
  }

  Result<ExprPtr> ParseUnary() {
    const Token& tok = Cur();
    UnaryOp op;
    switch (tok.kind) {
      case TokenKind::kMinus: op = UnaryOp::kNeg; break;
      case TokenKind::kBang: op = UnaryOp::kLogicalNot; break;
      case TokenKind::kTilde: op = UnaryOp::kBitNot; break;
      case TokenKind::kStar: op = UnaryOp::kDeref; break;
      case TokenKind::kAmp: op = UnaryOp::kAddrOf; break;
      case TokenKind::kPlusPlus:
      case TokenKind::kMinusMinus: {
        const bool inc = tok.kind == TokenKind::kPlusPlus;
        const SourceLoc loc = Take().loc;
        Result<ExprPtr> operand = ParseUnary();
        if (!operand.ok()) {
          return operand.error();
        }
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kIncDec;
        e->loc = loc;
        e->is_increment = inc;
        e->is_prefix = true;
        e->lhs = operand.take();
        return ExprPtr(std::move(e));
      }
      default:
        return ParsePostfix();
    }
    const SourceLoc loc = Take().loc;
    Result<ExprPtr> operand = ParseUnary();
    if (!operand.ok()) {
      return operand.error();
    }
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kUnary;
    e->un_op = op;
    e->loc = loc;
    e->lhs = operand.take();
    return ExprPtr(std::move(e));
  }

  Result<ExprPtr> ParsePostfix() {
    Result<ExprPtr> base = ParsePrimary();
    if (!base.ok()) {
      return base;
    }
    ExprPtr acc = base.take();
    for (;;) {
      if (At(TokenKind::kLBracket)) {
        const SourceLoc loc = Take().loc;
        Result<ExprPtr> index = ParseExpr();
        if (!index.ok()) {
          return index.error();
        }
        Result<Token> rb = Expect(TokenKind::kRBracket);
        if (!rb.ok()) {
          return rb.error();
        }
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kIndex;
        e->loc = loc;
        e->lhs = std::move(acc);
        e->rhs = index.take();
        acc = std::move(e);
      } else if (At(TokenKind::kPlusPlus) || At(TokenKind::kMinusMinus)) {
        const bool inc = At(TokenKind::kPlusPlus);
        const SourceLoc loc = Take().loc;
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kIncDec;
        e->loc = loc;
        e->is_increment = inc;
        e->is_prefix = false;
        e->lhs = std::move(acc);
        acc = std::move(e);
      } else {
        return acc;
      }
    }
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& tok = Cur();
    switch (tok.kind) {
      case TokenKind::kIntLit:
      case TokenKind::kCharLit: {
        Token t = Take();
        auto e = std::make_unique<Expr>();
        e->kind = t.kind == TokenKind::kIntLit ? ExprKind::kIntLit : ExprKind::kCharLit;
        e->loc = t.loc;
        e->int_value = t.int_value;
        return ExprPtr(std::move(e));
      }
      case TokenKind::kStringLit: {
        Token t = Take();
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kStringLit;
        e->loc = t.loc;
        e->str_value = std::move(t.text);
        return ExprPtr(std::move(e));
      }
      case TokenKind::kIdent: {
        Token t = Take();
        if (At(TokenKind::kLParen)) {
          Take();  // '('
          auto e = std::make_unique<Expr>();
          e->kind = ExprKind::kCall;
          e->loc = t.loc;
          e->name = std::move(t.text);
          if (!At(TokenKind::kRParen)) {
            for (;;) {
              Result<ExprPtr> arg = ParseExpr();
              if (!arg.ok()) {
                return arg.error();
              }
              e->args.push_back(arg.take());
              if (!Eat(TokenKind::kComma)) {
                break;
              }
            }
          }
          Result<Token> rp = Expect(TokenKind::kRParen);
          if (!rp.ok()) {
            return rp.error();
          }
          return ExprPtr(std::move(e));
        }
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kVarRef;
        e->loc = t.loc;
        e->name = std::move(t.text);
        return ExprPtr(std::move(e));
      }
      case TokenKind::kLParen: {
        Take();
        Result<ExprPtr> inner = ParseExpr();
        if (!inner.ok()) {
          return inner;
        }
        Result<Token> rp = Expect(TokenKind::kRParen);
        if (!rp.ok()) {
          return rp.error();
        }
        return inner;
      }
      default:
        return Err(std::string("unexpected token ") + TokenKindName(tok.kind));
    }
  }

  std::vector<Token> tokens_;
  int unit_index_;
  bool is_library_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::unique_ptr<Unit>> Parse(std::string_view source, int unit_index, bool is_library) {
  Result<std::vector<Token>> tokens = Lex(source, unit_index);
  if (!tokens.ok()) {
    return tokens.error();
  }
  return ParserImpl(tokens.take(), unit_index, is_library).Run();
}

}  // namespace retrace
