// Lexer for MiniC: a C subset used to express the paper's workloads.
#ifndef RETRACE_LANG_LEXER_H_
#define RETRACE_LANG_LEXER_H_

#include <string_view>
#include <vector>

#include "src/lang/token.h"
#include "src/support/diag.h"

namespace retrace {

// Tokenizes one source unit. `unit` tags every SourceLoc so diagnostics and
// branch identities can distinguish application from library code.
Result<std::vector<Token>> Lex(std::string_view source, int unit);

}  // namespace retrace

#endif  // RETRACE_LANG_LEXER_H_
