// Token definitions for the MiniC language.
#ifndef RETRACE_LANG_TOKEN_H_
#define RETRACE_LANG_TOKEN_H_

#include <string>

#include "src/support/common.h"

namespace retrace {

enum class TokenKind {
  kEof,
  kIdent,
  kIntLit,
  kCharLit,
  kStringLit,
  // Keywords.
  kKwInt,
  kKwChar,
  kKwVoid,
  kKwIf,
  kKwElse,
  kKwWhile,
  kKwFor,
  kKwReturn,
  kKwBreak,
  kKwContinue,
  // Punctuation and operators.
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kLBracket,
  kRBracket,
  kSemi,
  kComma,
  kAssign,
  kPlusAssign,
  kMinusAssign,
  kStarAssign,
  kSlashAssign,
  kPercentAssign,
  kPlusPlus,
  kMinusMinus,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kAmp,
  kAmpAmp,
  kPipe,
  kPipePipe,
  kCaret,
  kTilde,
  kBang,
  kEq,
  kNe,
  kLt,
  kGt,
  kLe,
  kGe,
  kShl,
  kShr,
};

const char* TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEof;
  SourceLoc loc;
  std::string text;  // Identifier spelling or string literal contents.
  i64 int_value = 0;  // For kIntLit / kCharLit.
};

}  // namespace retrace

#endif  // RETRACE_LANG_TOKEN_H_
