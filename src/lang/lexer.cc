#include "src/lang/lexer.h"

#include <cctype>
#include <unordered_map>

namespace retrace {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEof: return "<eof>";
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kIntLit: return "integer literal";
    case TokenKind::kCharLit: return "char literal";
    case TokenKind::kStringLit: return "string literal";
    case TokenKind::kKwInt: return "'int'";
    case TokenKind::kKwChar: return "'char'";
    case TokenKind::kKwVoid: return "'void'";
    case TokenKind::kKwIf: return "'if'";
    case TokenKind::kKwElse: return "'else'";
    case TokenKind::kKwWhile: return "'while'";
    case TokenKind::kKwFor: return "'for'";
    case TokenKind::kKwReturn: return "'return'";
    case TokenKind::kKwBreak: return "'break'";
    case TokenKind::kKwContinue: return "'continue'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kSemi: return "';'";
    case TokenKind::kComma: return "','";
    case TokenKind::kAssign: return "'='";
    case TokenKind::kPlusAssign: return "'+='";
    case TokenKind::kMinusAssign: return "'-='";
    case TokenKind::kStarAssign: return "'*='";
    case TokenKind::kSlashAssign: return "'/='";
    case TokenKind::kPercentAssign: return "'%='";
    case TokenKind::kPlusPlus: return "'++'";
    case TokenKind::kMinusMinus: return "'--'";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kPercent: return "'%'";
    case TokenKind::kAmp: return "'&'";
    case TokenKind::kAmpAmp: return "'&&'";
    case TokenKind::kPipe: return "'|'";
    case TokenKind::kPipePipe: return "'||'";
    case TokenKind::kCaret: return "'^'";
    case TokenKind::kTilde: return "'~'";
    case TokenKind::kBang: return "'!'";
    case TokenKind::kEq: return "'=='";
    case TokenKind::kNe: return "'!='";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kShl: return "'<<'";
    case TokenKind::kShr: return "'>>'";
  }
  return "<unknown>";
}

namespace {

const std::unordered_map<std::string_view, TokenKind>& Keywords() {
  static const auto* kMap = new std::unordered_map<std::string_view, TokenKind>{
      {"int", TokenKind::kKwInt},       {"char", TokenKind::kKwChar},
      {"void", TokenKind::kKwVoid},     {"if", TokenKind::kKwIf},
      {"else", TokenKind::kKwElse},     {"while", TokenKind::kKwWhile},
      {"for", TokenKind::kKwFor},       {"return", TokenKind::kKwReturn},
      {"break", TokenKind::kKwBreak},   {"continue", TokenKind::kKwContinue},
  };
  return *kMap;
}

class LexerImpl {
 public:
  LexerImpl(std::string_view source, int unit) : src_(source), unit_(unit) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> tokens;
    for (;;) {
      SkipWhitespaceAndComments();
      if (AtEnd()) {
        tokens.push_back(Make(TokenKind::kEof));
        return tokens;
      }
      Result<Token> tok = Next();
      if (!tok.ok()) {
        return tok.error();
      }
      tokens.push_back(tok.take());
    }
  }

 private:
  bool AtEnd() const { return pos_ >= src_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char Advance() {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  SourceLoc Here() const { return SourceLoc{unit_, line_, col_}; }

  Token Make(TokenKind kind) {
    Token t;
    t.kind = kind;
    t.loc = Here();
    return t;
  }

  Error Err(std::string message) { return Error{std::move(message), Here()}; }

  void SkipWhitespaceAndComments() {
    for (;;) {
      while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
        Advance();
      }
      if (Peek() == '/' && Peek(1) == '/') {
        while (!AtEnd() && Peek() != '\n') {
          Advance();
        }
        continue;
      }
      if (Peek() == '/' && Peek(1) == '*') {
        Advance();
        Advance();
        while (!AtEnd() && !(Peek() == '*' && Peek(1) == '/')) {
          Advance();
        }
        if (!AtEnd()) {
          Advance();
          Advance();
        }
        continue;
      }
      return;
    }
  }

  Result<Token> Next() {
    const SourceLoc start = Here();
    const char c = Peek();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return LexIdent(start);
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      return LexNumber(start);
    }
    if (c == '\'') {
      return LexCharLit(start);
    }
    if (c == '"') {
      return LexStringLit(start);
    }
    return LexOperator(start);
  }

  Result<Token> LexIdent(SourceLoc start) {
    std::string text;
    while (std::isalnum(static_cast<unsigned char>(Peek())) || Peek() == '_') {
      text.push_back(Advance());
    }
    Token t;
    t.loc = start;
    auto it = Keywords().find(text);
    if (it != Keywords().end()) {
      t.kind = it->second;
    } else {
      t.kind = TokenKind::kIdent;
      t.text = std::move(text);
    }
    return t;
  }

  Result<Token> LexNumber(SourceLoc start) {
    i64 value = 0;
    if (Peek() == '0' && (Peek(1) == 'x' || Peek(1) == 'X')) {
      Advance();
      Advance();
      bool any = false;
      while (std::isxdigit(static_cast<unsigned char>(Peek()))) {
        const char d = Advance();
        const i64 digit = std::isdigit(static_cast<unsigned char>(d))
                              ? d - '0'
                              : std::tolower(static_cast<unsigned char>(d)) - 'a' + 10;
        value = value * 16 + digit;
        any = true;
      }
      if (!any) {
        return Err("malformed hex literal");
      }
    } else {
      while (std::isdigit(static_cast<unsigned char>(Peek()))) {
        value = value * 10 + (Advance() - '0');
      }
    }
    Token t;
    t.kind = TokenKind::kIntLit;
    t.loc = start;
    t.int_value = value;
    return t;
  }

  Result<i64> LexEscape() {
    // Caller consumed the backslash.
    if (AtEnd()) {
      return Err("unterminated escape sequence");
    }
    const char e = Advance();
    switch (e) {
      case 'n': return i64{'\n'};
      case 't': return i64{'\t'};
      case 'r': return i64{'\r'};
      case '0': return i64{0};
      case '\\': return i64{'\\'};
      case '\'': return i64{'\''};
      case '"': return i64{'"'};
      default: return Err(std::string("unknown escape '\\") + e + "'");
    }
  }

  Result<Token> LexCharLit(SourceLoc start) {
    Advance();  // opening quote
    if (AtEnd()) {
      return Err("unterminated char literal");
    }
    i64 value = 0;
    if (Peek() == '\\') {
      Advance();
      Result<i64> esc = LexEscape();
      if (!esc.ok()) {
        return esc.error();
      }
      value = esc.value();
    } else {
      value = static_cast<unsigned char>(Advance());
    }
    if (Peek() != '\'') {
      return Err("unterminated char literal");
    }
    Advance();
    Token t;
    t.kind = TokenKind::kCharLit;
    t.loc = start;
    t.int_value = value;
    return t;
  }

  Result<Token> LexStringLit(SourceLoc start) {
    Advance();  // opening quote
    std::string text;
    for (;;) {
      if (AtEnd() || Peek() == '\n') {
        return Err("unterminated string literal");
      }
      const char c = Advance();
      if (c == '"') {
        break;
      }
      if (c == '\\') {
        Result<i64> esc = LexEscape();
        if (!esc.ok()) {
          return esc.error();
        }
        text.push_back(static_cast<char>(esc.value()));
      } else {
        text.push_back(c);
      }
    }
    Token t;
    t.kind = TokenKind::kStringLit;
    t.loc = start;
    t.text = std::move(text);
    return t;
  }

  Result<Token> LexOperator(SourceLoc start) {
    Token t;
    t.loc = start;
    const char c = Advance();
    auto two = [&](char second, TokenKind pair, TokenKind single) {
      if (Peek() == second) {
        Advance();
        t.kind = pair;
      } else {
        t.kind = single;
      }
    };
    switch (c) {
      case '(': t.kind = TokenKind::kLParen; break;
      case ')': t.kind = TokenKind::kRParen; break;
      case '{': t.kind = TokenKind::kLBrace; break;
      case '}': t.kind = TokenKind::kRBrace; break;
      case '[': t.kind = TokenKind::kLBracket; break;
      case ']': t.kind = TokenKind::kRBracket; break;
      case ';': t.kind = TokenKind::kSemi; break;
      case ',': t.kind = TokenKind::kComma; break;
      case '~': t.kind = TokenKind::kTilde; break;
      case '^': t.kind = TokenKind::kCaret; break;
      case '+':
        if (Peek() == '+') {
          Advance();
          t.kind = TokenKind::kPlusPlus;
        } else {
          two('=', TokenKind::kPlusAssign, TokenKind::kPlus);
        }
        break;
      case '-':
        if (Peek() == '-') {
          Advance();
          t.kind = TokenKind::kMinusMinus;
        } else {
          two('=', TokenKind::kMinusAssign, TokenKind::kMinus);
        }
        break;
      case '*': two('=', TokenKind::kStarAssign, TokenKind::kStar); break;
      case '/': two('=', TokenKind::kSlashAssign, TokenKind::kSlash); break;
      case '%': two('=', TokenKind::kPercentAssign, TokenKind::kPercent); break;
      case '&': two('&', TokenKind::kAmpAmp, TokenKind::kAmp); break;
      case '|': two('|', TokenKind::kPipePipe, TokenKind::kPipe); break;
      case '=': two('=', TokenKind::kEq, TokenKind::kAssign); break;
      case '!': two('=', TokenKind::kNe, TokenKind::kBang); break;
      case '<':
        if (Peek() == '<') {
          Advance();
          t.kind = TokenKind::kShl;
        } else {
          two('=', TokenKind::kLe, TokenKind::kLt);
        }
        break;
      case '>':
        if (Peek() == '>') {
          Advance();
          t.kind = TokenKind::kShr;
        } else {
          two('=', TokenKind::kGe, TokenKind::kGt);
        }
        break;
      default:
        return Err(std::string("unexpected character '") + c + "'");
    }
    return t;
  }

  std::string_view src_;
  int unit_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

}  // namespace

Result<std::vector<Token>> Lex(std::string_view source, int unit) {
  return LexerImpl(source, unit).Run();
}

}  // namespace retrace
