#include "src/lang/sema.h"

#include <unordered_map>
#include <utility>

#include "src/lang/builtins.h"

namespace retrace {

std::optional<Builtin> LookupBuiltin(std::string_view name) {
  static const auto* kMap = new std::unordered_map<std::string_view, Builtin>{
      {"read", Builtin::kRead},
      {"write", Builtin::kWrite},
      {"open", Builtin::kOpen},
      {"close", Builtin::kClose},
      {"select_fd", Builtin::kSelectFd},
      {"accept_conn", Builtin::kAcceptConn},
      {"poll_signal", Builtin::kPollSignal},
      {"crash", Builtin::kCrash},
      {"exit", Builtin::kExit},
      {"print_int", Builtin::kPrintInt},
      {"print_str", Builtin::kPrintStr},
  };
  auto it = kMap->find(name);
  if (it == kMap->end()) {
    return std::nullopt;
  }
  return it->second;
}

const char* BuiltinName(Builtin b) {
  switch (b) {
    case Builtin::kRead: return "read";
    case Builtin::kWrite: return "write";
    case Builtin::kOpen: return "open";
    case Builtin::kClose: return "close";
    case Builtin::kSelectFd: return "select_fd";
    case Builtin::kAcceptConn: return "accept_conn";
    case Builtin::kPollSignal: return "poll_signal";
    case Builtin::kCrash: return "crash";
    case Builtin::kExit: return "exit";
    case Builtin::kPrintInt: return "print_int";
    case Builtin::kPrintStr: return "print_str";
  }
  return "?";
}

bool BuiltinReturnsInput(Builtin b) {
  switch (b) {
    case Builtin::kRead:
    case Builtin::kSelectFd:
    case Builtin::kAcceptConn:
    case Builtin::kPollSignal:
      return true;
    // open() is deterministic given the world shape (the virtual FS maps
    // paths to streams), so its return value is not an input source.
    default:
      return false;
  }
}

bool BuiltinFillsInputBuffer(Builtin b) { return b == Builtin::kRead; }

const SemaFunc* SemaProgram::FindFunc(std::string_view name) const {
  for (const SemaFunc& f : funcs) {
    if (f.decl->name == name) {
      return &f;
    }
  }
  return nullptr;
}

namespace {

// Decays arrays to pointers in value contexts.
Type Decayed(const Type& t) {
  if (t.IsArray()) {
    return Type::PtrTo(t.base, 1);
  }
  return t;
}

bool AssignCompatible(const Type& dst, const Type& src) {
  const Type s = Decayed(src);
  if (dst.IsScalar()) {
    return s.IsScalar();
  }
  if (dst.IsPtr()) {
    if (s.IsPtr()) {
      return dst.base == s.base && dst.ptr_depth == s.ptr_depth;
    }
    // Null-pointer style assignment from integer constants.
    return s.IsScalar();
  }
  return false;
}

class SemaImpl {
 public:
  explicit SemaImpl(std::vector<std::unique_ptr<Unit>> units) {
    program_ = std::make_unique<SemaProgram>();
    program_->units = std::move(units);
  }

  Result<std::unique_ptr<SemaProgram>> Run() {
    // Pass 1: collect globals and function signatures.
    for (auto& unit : program_->units) {
      for (GlobalDecl& g : unit->globals) {
        if (global_index_.count(g.name) != 0) {
          return Error{"duplicate global '" + g.name + "'", g.loc};
        }
        if (LookupBuiltin(g.name).has_value()) {
          return Error{"global '" + g.name + "' shadows a builtin", g.loc};
        }
        global_index_[g.name] = static_cast<int>(program_->globals.size());
        program_->globals.push_back(GlobalInfo{g.name, g.type, g.init_value, false});
      }
      for (auto& fn : unit->functions) {
        if (func_index_.count(fn->name) != 0) {
          return Error{"duplicate function '" + fn->name + "'", fn->loc};
        }
        if (LookupBuiltin(fn->name).has_value()) {
          return Error{"function '" + fn->name + "' shadows a builtin", fn->loc};
        }
        const int index = static_cast<int>(program_->funcs.size());
        func_index_[fn->name] = index;
        SemaFunc sf;
        sf.decl = fn.get();
        sf.index = index;
        sf.return_type = fn->return_type;
        sf.num_params = static_cast<int>(fn->params.size());
        sf.is_library = fn->is_library;
        program_->funcs.push_back(std::move(sf));
      }
    }
    // Pass 2: check bodies.
    for (SemaFunc& sf : program_->funcs) {
      if (Error* e = CheckFunction(sf)) {
        return *e;
      }
    }
    auto it = func_index_.find("main");
    if (it == func_index_.end()) {
      return Error{"program has no main function", SourceLoc{}};
    }
    program_->main_index = it->second;
    const SemaFunc& main_fn = program_->funcs[it->second];
    const auto& params = main_fn.decl->params;
    const bool no_args = params.empty();
    const bool argc_argv = params.size() == 2 && params[0].type == Type::Int() &&
                           params[1].type == Type::PtrTo(TypeKind::kChar, 2);
    if (!no_args && !argc_argv) {
      return Error{"main must be 'int main()' or 'int main(int argc, char **argv)'",
                   main_fn.decl->loc};
    }
    return std::move(program_);
  }

 private:
  // Returns nullptr on success; otherwise a pointer to err_ (kept alive in
  // the member so CheckFunction helpers can use plain control flow).
  Error* Fail(std::string message, SourceLoc loc) {
    err_ = Error{std::move(message), loc};
    return &err_;
  }

  Error* CheckFunction(SemaFunc& sf) {
    cur_ = &sf;
    scopes_.clear();
    scopes_.emplace_back();
    sf.locals.clear();
    for (const ParamDecl& p : sf.decl->params) {
      if (scopes_.back().count(p.name) != 0) {
        return Fail("duplicate parameter '" + p.name + "'", p.loc);
      }
      const int slot = static_cast<int>(sf.locals.size());
      scopes_.back()[p.name] = slot;
      sf.locals.push_back(LocalInfo{p.name, p.type, true, false});
    }
    Error* e = CheckStmt(*sf.decl->body);
    cur_ = nullptr;
    return e;
  }

  Error* CheckStmt(Stmt& s) {
    switch (s.kind) {
      case StmtKind::kBlock: {
        scopes_.emplace_back();
        for (StmtPtr& child : s.body) {
          if (Error* e = CheckStmt(*child)) {
            return e;
          }
        }
        scopes_.pop_back();
        return nullptr;
      }
      case StmtKind::kVarDecl: {
        if (scopes_.back().count(s.decl_name) != 0) {
          return Fail("duplicate variable '" + s.decl_name + "'", s.loc);
        }
        if (s.init != nullptr) {
          if (Error* e = CheckExpr(*s.init)) {
            return e;
          }
          if (!AssignCompatible(s.decl_type, s.init->type)) {
            return Fail("cannot initialize " + s.decl_type.ToString() + " from " +
                            s.init->type.ToString(),
                        s.loc);
          }
        }
        const int slot = static_cast<int>(cur_->locals.size());
        s.decl_slot = slot;
        scopes_.back()[s.decl_name] = slot;
        cur_->locals.push_back(LocalInfo{s.decl_name, s.decl_type, false, false});
        return nullptr;
      }
      case StmtKind::kExpr:
        return CheckExpr(*s.init);
      case StmtKind::kIf: {
        if (Error* e = CheckCondition(*s.cond)) {
          return e;
        }
        if (Error* e = CheckStmt(*s.then_body)) {
          return e;
        }
        if (s.else_body != nullptr) {
          return CheckStmt(*s.else_body);
        }
        return nullptr;
      }
      case StmtKind::kWhile: {
        if (Error* e = CheckCondition(*s.cond)) {
          return e;
        }
        ++loop_depth_;
        Error* e = CheckStmt(*s.then_body);
        --loop_depth_;
        return e;
      }
      case StmtKind::kFor: {
        scopes_.emplace_back();
        if (s.for_init != nullptr) {
          if (Error* e = CheckStmt(*s.for_init)) {
            return e;
          }
        }
        if (s.cond != nullptr) {
          if (Error* e = CheckCondition(*s.cond)) {
            return e;
          }
        }
        if (s.for_step != nullptr) {
          if (Error* e = CheckExpr(*s.for_step)) {
            return e;
          }
        }
        ++loop_depth_;
        Error* e = CheckStmt(*s.then_body);
        --loop_depth_;
        scopes_.pop_back();
        return e;
      }
      case StmtKind::kReturn: {
        if (s.cond != nullptr) {
          if (Error* e = CheckExpr(*s.cond)) {
            return e;
          }
          if (cur_->return_type.IsVoid()) {
            return Fail("void function cannot return a value", s.loc);
          }
          if (!AssignCompatible(cur_->return_type, s.cond->type)) {
            return Fail("return type mismatch", s.loc);
          }
        } else if (!cur_->return_type.IsVoid()) {
          return Fail("non-void function must return a value", s.loc);
        }
        return nullptr;
      }
      case StmtKind::kBreak:
      case StmtKind::kContinue:
        if (loop_depth_ == 0) {
          return Fail("break/continue outside of a loop", s.loc);
        }
        return nullptr;
    }
    return Fail("unhandled statement", s.loc);
  }

  Error* CheckCondition(Expr& e) {
    if (Error* err = CheckExpr(e)) {
      return err;
    }
    const Type t = Decayed(e.type);
    if (!t.IsScalar() && !t.IsPtr()) {
      return Fail("condition must be scalar or pointer", e.loc);
    }
    return nullptr;
  }

  bool IsLvalue(const Expr& e) const {
    switch (e.kind) {
      case ExprKind::kVarRef:
        return true;
      case ExprKind::kIndex:
        return true;
      case ExprKind::kUnary:
        return e.un_op == UnaryOp::kDeref;
      default:
        return false;
    }
  }

  Error* CheckExpr(Expr& e) {
    switch (e.kind) {
      case ExprKind::kIntLit:
      case ExprKind::kCharLit:
        e.type = Type::Int();
        return nullptr;
      case ExprKind::kStringLit: {
        e.string_id = static_cast<int>(program_->strings.size());
        program_->strings.push_back(e.str_value);
        e.type = Type::PtrTo(TypeKind::kChar, 1);
        return nullptr;
      }
      case ExprKind::kVarRef: {
        for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
          auto found = it->find(e.name);
          if (found != it->end()) {
            e.binding_kind = 0;
            e.binding_index = found->second;
            e.type = cur_->locals[found->second].type;
            return nullptr;
          }
        }
        auto g = global_index_.find(e.name);
        if (g != global_index_.end()) {
          e.binding_kind = 1;
          e.binding_index = g->second;
          e.type = program_->globals[g->second].type;
          return nullptr;
        }
        return Fail("undefined variable '" + e.name + "'", e.loc);
      }
      case ExprKind::kUnary:
        return CheckUnary(e);
      case ExprKind::kBinary:
        return CheckBinary(e);
      case ExprKind::kLogical: {
        if (Error* err = CheckCondition(*e.lhs)) {
          return err;
        }
        if (Error* err = CheckCondition(*e.rhs)) {
          return err;
        }
        e.type = Type::Int();
        return nullptr;
      }
      case ExprKind::kAssign: {
        if (Error* err = CheckExpr(*e.lhs)) {
          return err;
        }
        if (!IsLvalue(*e.lhs)) {
          return Fail("left side of assignment is not an lvalue", e.loc);
        }
        if (e.lhs->type.IsArray()) {
          return Fail("cannot assign to an array", e.loc);
        }
        if (Error* err = CheckExpr(*e.rhs)) {
          return err;
        }
        if (e.has_compound_op) {
          const Type lt = e.lhs->type;
          const Type rt = Decayed(e.rhs->type);
          const bool ptr_adjust = lt.IsPtr() && rt.IsScalar() &&
                                  (e.compound_op == BinaryOp::kAdd || e.compound_op == BinaryOp::kSub);
          if (!ptr_adjust && !(lt.IsScalar() && rt.IsScalar())) {
            return Fail("invalid operands to compound assignment", e.loc);
          }
        } else if (!AssignCompatible(e.lhs->type, e.rhs->type)) {
          return Fail("cannot assign " + e.rhs->type.ToString() + " to " + e.lhs->type.ToString(),
                      e.loc);
        }
        e.type = e.lhs->type;
        return nullptr;
      }
      case ExprKind::kIncDec: {
        if (Error* err = CheckExpr(*e.lhs)) {
          return err;
        }
        if (!IsLvalue(*e.lhs) || e.lhs->type.IsArray()) {
          return Fail("operand of ++/-- must be a scalar or pointer lvalue", e.loc);
        }
        e.type = e.lhs->type;
        return nullptr;
      }
      case ExprKind::kIndex: {
        if (Error* err = CheckExpr(*e.lhs)) {
          return err;
        }
        if (Error* err = CheckExpr(*e.rhs)) {
          return err;
        }
        const Type base = Decayed(e.lhs->type);
        if (!base.IsPtr()) {
          return Fail("subscripted value is not a pointer or array", e.loc);
        }
        if (!Decayed(e.rhs->type).IsScalar()) {
          return Fail("array subscript must be an integer", e.loc);
        }
        e.type = base.Element();
        return nullptr;
      }
      case ExprKind::kCall:
        return CheckCall(e);
    }
    return Fail("unhandled expression", e.loc);
  }

  Error* CheckUnary(Expr& e) {
    if (Error* err = CheckExpr(*e.lhs)) {
      return err;
    }
    const Type operand = Decayed(e.lhs->type);
    switch (e.un_op) {
      case UnaryOp::kNeg:
      case UnaryOp::kBitNot:
        if (!operand.IsScalar()) {
          return Fail("operand must be an integer", e.loc);
        }
        e.type = Type::Int();
        return nullptr;
      case UnaryOp::kLogicalNot:
        if (!operand.IsScalar() && !operand.IsPtr()) {
          return Fail("operand must be scalar or pointer", e.loc);
        }
        e.type = Type::Int();
        return nullptr;
      case UnaryOp::kDeref:
        if (!operand.IsPtr()) {
          return Fail("cannot dereference non-pointer", e.loc);
        }
        e.type = operand.Element();
        return nullptr;
      case UnaryOp::kAddrOf: {
        if (!IsLvalue(*e.lhs)) {
          return Fail("cannot take address of rvalue", e.loc);
        }
        if (e.lhs->type.IsArray()) {
          return Fail("use the array name directly instead of &array", e.loc);
        }
        // Mark scalar variables as address-taken so lowering places them in
        // addressable memory objects.
        if (e.lhs->kind == ExprKind::kVarRef && e.lhs->type.IsScalar()) {
          if (e.lhs->binding_kind == 0) {
            cur_->locals[e.lhs->binding_index].address_taken = true;
          } else {
            program_->globals[e.lhs->binding_index].address_taken = true;
          }
        }
        e.type = e.lhs->type.PointerTo();
        return nullptr;
      }
    }
    return Fail("unhandled unary operator", e.loc);
  }

  Error* CheckBinary(Expr& e) {
    if (Error* err = CheckExpr(*e.lhs)) {
      return err;
    }
    if (Error* err = CheckExpr(*e.rhs)) {
      return err;
    }
    const Type lt = Decayed(e.lhs->type);
    const Type rt = Decayed(e.rhs->type);
    switch (e.bin_op) {
      case BinaryOp::kAdd:
        if (lt.IsPtr() && rt.IsScalar()) {
          e.type = lt;
          return nullptr;
        }
        if (lt.IsScalar() && rt.IsPtr()) {
          e.type = rt;
          return nullptr;
        }
        break;
      case BinaryOp::kSub:
        if (lt.IsPtr() && rt.IsScalar()) {
          e.type = lt;
          return nullptr;
        }
        if (lt.IsPtr() && rt.IsPtr() && lt.base == rt.base && lt.ptr_depth == rt.ptr_depth) {
          e.type = Type::Int();
          return nullptr;
        }
        break;
      case BinaryOp::kEq:
      case BinaryOp::kNe:
      case BinaryOp::kLt:
      case BinaryOp::kLe:
      case BinaryOp::kGt:
      case BinaryOp::kGe:
        if (lt.IsPtr() && rt.IsPtr()) {
          e.type = Type::Int();
          return nullptr;
        }
        if (lt.IsPtr() && rt.IsScalar()) {
          // Pointer compared against null constant.
          e.type = Type::Int();
          return nullptr;
        }
        if (lt.IsScalar() && rt.IsPtr()) {
          e.type = Type::Int();
          return nullptr;
        }
        break;
      default:
        break;
    }
    if (!lt.IsScalar() || !rt.IsScalar()) {
      return Fail("invalid operands to binary operator", e.loc);
    }
    e.type = Type::Int();
    return nullptr;
  }

  Error* CheckCall(Expr& e) {
    for (ExprPtr& arg : e.args) {
      if (Error* err = CheckExpr(*arg)) {
        return err;
      }
    }
    const std::optional<Builtin> builtin = LookupBuiltin(e.name);
    if (builtin.has_value()) {
      return CheckBuiltinCall(e, *builtin);
    }
    auto it = func_index_.find(e.name);
    if (it == func_index_.end()) {
      return Fail("call to undefined function '" + e.name + "'", e.loc);
    }
    const SemaFunc& callee = program_->funcs[it->second];
    if (e.args.size() != callee.decl->params.size()) {
      return Fail("wrong number of arguments to '" + e.name + "'", e.loc);
    }
    for (size_t i = 0; i < e.args.size(); ++i) {
      if (!AssignCompatible(callee.decl->params[i].type, e.args[i]->type)) {
        return Fail("argument type mismatch in call to '" + e.name + "'", e.loc);
      }
    }
    e.callee_index = it->second;
    e.callee_is_builtin = false;
    e.type = callee.return_type;
    return nullptr;
  }

  Error* CheckBuiltinCall(Expr& e, Builtin b) {
    auto want = [&](size_t n) -> Error* {
      if (e.args.size() != n) {
        return Fail(std::string("wrong number of arguments to builtin '") + BuiltinName(b) + "'",
                    e.loc);
      }
      return nullptr;
    };
    Error* err = nullptr;
    switch (b) {
      case Builtin::kRead:
      case Builtin::kWrite:
        err = want(3);
        e.type = Type::Int();
        break;
      case Builtin::kOpen:
        err = want(2);
        e.type = Type::Int();
        break;
      case Builtin::kClose:
      case Builtin::kCrash:
      case Builtin::kExit:
      case Builtin::kPrintInt:
        err = want(1);
        e.type = (b == Builtin::kClose) ? Type::Int() : Type::Void();
        break;
      case Builtin::kSelectFd:
        err = want(2);
        e.type = Type::Int();
        break;
      case Builtin::kAcceptConn:
        err = want(1);
        e.type = Type::Int();
        break;
      case Builtin::kPollSignal:
        err = want(0);
        e.type = Type::Int();
        break;
      case Builtin::kPrintStr:
        err = want(1);
        e.type = Type::Void();
        break;
    }
    if (err != nullptr) {
      return err;
    }
    e.callee_index = static_cast<int>(b);
    e.callee_is_builtin = true;
    return nullptr;
  }

  std::unique_ptr<SemaProgram> program_;
  std::unordered_map<std::string, int> global_index_;
  std::unordered_map<std::string, int> func_index_;
  std::vector<std::unordered_map<std::string, int>> scopes_;
  SemaFunc* cur_ = nullptr;
  int loop_depth_ = 0;
  Error err_;
};

}  // namespace

Result<std::unique_ptr<SemaProgram>> Analyze(std::vector<std::unique_ptr<Unit>> units) {
  return SemaImpl(std::move(units)).Run();
}

}  // namespace retrace
