#include "src/solver/interval.h"

#include <algorithm>

namespace retrace {

u64 Interval::Size() const {
  if (Empty()) {
    return 0;
  }
  const u64 span = static_cast<u64>(hi) - static_cast<u64>(lo);
  return span == UINT64_MAX ? UINT64_MAX : span + 1;
}

Interval Interval::Intersect(const Interval& other) const {
  return Interval{std::max(lo, other.lo), std::min(hi, other.hi)};
}

namespace {

// Matches `ref` as var or trunc(var). Truncation is treated as the identity
// for narrowing purposes, which is exact when the variable's domain is
// already within [0,255] (true for all byte cells).
bool IsVarLike(const ExprArena& arena, ExprRef ref, i32 var) {
  const ExprNode& n = arena.node(ref);
  if (n.op == ExprOp::kVar) {
    return static_cast<i32>(n.imm) == var;
  }
  if (n.op == ExprOp::kTruncChar) {
    const ExprNode& inner = arena.node(n.a);
    return inner.op == ExprOp::kVar && static_cast<i32>(inner.imm) == var;
  }
  return false;
}

// Interval implied by (var CMP k) being true.
Interval FromComparison(ExprOp op, i64 k) {
  switch (op) {
    case ExprOp::kEq: return Interval{k, k};
    case ExprOp::kLt: return Interval{INT64_MIN, k == INT64_MIN ? INT64_MIN : k - 1};
    case ExprOp::kLe: return Interval{INT64_MIN, k};
    case ExprOp::kGt: return Interval{k == INT64_MAX ? INT64_MAX : k + 1, INT64_MAX};
    case ExprOp::kGe: return Interval{k, INT64_MAX};
    default: FatalError("FromComparison: unexpected op");
  }
}

ExprOp MirrorComparison(ExprOp op) {
  switch (op) {
    case ExprOp::kLt: return ExprOp::kGt;
    case ExprOp::kLe: return ExprOp::kGe;
    case ExprOp::kGt: return ExprOp::kLt;
    case ExprOp::kGe: return ExprOp::kLe;
    default: return op;  // kEq/kNe are symmetric.
  }
}

ExprOp NegateComparison(ExprOp op) {
  switch (op) {
    case ExprOp::kEq: return ExprOp::kNe;
    case ExprOp::kNe: return ExprOp::kEq;
    case ExprOp::kLt: return ExprOp::kGe;
    case ExprOp::kLe: return ExprOp::kGt;
    case ExprOp::kGt: return ExprOp::kLe;
    case ExprOp::kGe: return ExprOp::kLt;
    default: FatalError("NegateComparison: unexpected op");
  }
}

}  // namespace

bool NarrowForConstraint(const ExprArena& arena, const Constraint& constraint, i32 var,
                         Interval* iv) {
  const ExprNode& n = arena.node(constraint.expr);

  // Shape: bare var used as a truth value.
  if (IsVarLike(arena, constraint.expr, var)) {
    if (!constraint.want_true) {
      *iv = iv->Intersect(Interval{0, 0});
      return true;
    }
    // Truthy: can only narrow if 0 is at an endpoint.
    if (iv->lo == 0) {
      iv->lo = 1;
      return true;
    }
    if (iv->hi == 0) {
      iv->hi = -1;
      return true;
    }
    return false;
  }

  // Shape: !var.
  if (n.op == ExprOp::kLogicalNot && IsVarLike(arena, n.a, var)) {
    Constraint inner{n.a, !constraint.want_true};
    return NarrowForConstraint(arena, inner, var, iv);
  }

  if (!ExprOpIsComparison(n.op)) {
    return false;
  }

  ExprOp op = n.op;
  i64 k = 0;
  if (IsVarLike(arena, n.a, var) && arena.IsConst(n.b)) {
    k = arena.ConstValue(n.b);
  } else if (IsVarLike(arena, n.b, var) && arena.IsConst(n.a)) {
    k = arena.ConstValue(n.a);
    op = MirrorComparison(op);
  } else {
    return false;
  }
  if (!constraint.want_true) {
    op = NegateComparison(op);
  }
  if (op == ExprOp::kNe) {
    // Disequalities only narrow at endpoints.
    if (iv->lo == k) {
      iv->lo = k == INT64_MAX ? INT64_MAX : k + 1;
      return true;
    }
    if (iv->hi == k) {
      iv->hi = k == INT64_MIN ? INT64_MIN : k - 1;
      return true;
    }
    return false;
  }
  *iv = iv->Intersect(FromComparison(op, k));
  return true;
}

}  // namespace retrace
