// Incremental solving layer between the replay frontier and the
// local-search solver.
//
// Pending constraint sets popped from one search share long prefixes
// (they are prefixes of the same traces, differing in the last flipped
// branch), and most constraints touch disjoint input cells. The layer
// exploits both properties:
//
//   1. Independence partitioning: union-find over shared variables splits
//      a set into connected components ("slices") that are satisfiable
//      independently; the full model is stitched from per-slice
//      sub-models. A flipped last branch only re-solves the slice it
//      touches — the untouched slices reuse their prior sub-model.
//   2. Fleet-wide slice caches: a sharded solution cache and UNSAT cache,
//      keyed by arena-independent structural fingerprints of the slice
//      (constraint structure + polarity + the domains of every variable
//      the slice mentions), shared by all workers of a search. Once any
//      worker proves a slice SAT or UNSAT, no worker solves it again.
//
// Soundness: the key covers structure, polarity and domains, so a hit is
// the *same* subproblem — a cached model is revalidated against the live
// constraints before use (a fingerprint collision therefore degrades to
// a cache miss, never to a wrong model), and UNSAT entries carry a
// second, independently-seeded fingerprint of the same content, so
// masking a SAT slice requires a simultaneous 128-bit collision. Seeds
// are deliberately excluded from the key: they steer which model the
// search finds, never whether one exists. Only sound verdicts are cached
// — kUnknown (budget-truncated) results are not.
#ifndef RETRACE_SOLVER_INCREMENTAL_H_
#define RETRACE_SOLVER_INCREMENTAL_H_

#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/solver/solver.h"

namespace retrace {

// Shared (thread-safe) SAT/UNSAT verdict store, sharded to keep the
// per-lookup critical section off the fleet's hot path. One instance
// lives per reproduction search and is shared by every worker.
class SliceCache {
 public:
  // Sub-model of one slice: (variable, value), ascending by variable.
  using SliceModel = std::vector<std::pair<i32, i64>>;

  // Returns true and fills `model` when `key` has a cached solution.
  bool LookupSat(u64 key, SliceModel* model) const;
  // Returns true when (key, check) is a proven-unsatisfiable slice.
  // `check` is the second fingerprint of the slice content; an entry only
  // matches when both agree (SAT hits are revalidated against the live
  // constraints instead, so they need no check key).
  bool LookupUnsat(u64 key, u64 check) const;

  void StoreSat(u64 key, SliceModel model);
  void StoreUnsat(u64 key, u64 check);

  // Entry counts across all shards (bench/test introspection).
  u64 sat_entries() const;
  u64 unsat_entries() const;

 private:
  static constexpr size_t kShards = 16;
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<u64, SliceModel> sat;
    std::unordered_map<u64, u64> unsat;  // key -> check fingerprint.
  };
  Shard& ShardFor(u64 key) const { return shards_[(key >> 59) % kShards]; }

  mutable Shard shards_[kShards];
};

struct IncrementalStats {
  u64 slices_total = 0;      // Slices encountered across all Solve calls.
  u64 slices_solved = 0;     // Slices actually sent to the local search.
  u64 slice_sat_hits = 0;    // Slices satisfied straight from the cache.
  u64 slice_unsat_hits = 0;  // Sets rejected straight from the UNSAT cache.
};

// Per-worker facade: partitions each incoming set, consults the shared
// caches per slice, solves only the missing slices with the wrapped
// local-search solver, and stitches the sub-models into a full model.
// Not thread-safe (wraps a thread-confined arena + solver); share the
// SliceCache across workers, not the IncrementalSolver.
class IncrementalSolver {
 public:
  // `cache` may be null: partition-only mode (no cross-call reuse).
  IncrementalSolver(const ExprArena& arena, SolverOptions options, SliceCache* cache)
      : arena_(arena), solver_(arena, options), cache_(cache) {}

  SolveResult Solve(ConstraintSpan constraints, const std::vector<Interval>& domains,
                    const std::vector<i64>& seed);

  const IncrementalStats& stats() const { return stats_; }

 private:
  // Memoized per-expression variable sets; pendings of one search name the
  // same expressions over and over.
  const std::vector<i32>& VarsOf(ExprRef expr);

  const ExprArena& arena_;
  Solver solver_;
  SliceCache* cache_;
  IncrementalStats stats_;
  std::unordered_map<ExprRef, std::vector<i32>> vars_memo_;
};

}  // namespace retrace

#endif  // RETRACE_SOLVER_INCREMENTAL_H_
