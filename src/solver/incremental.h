// Incremental solving layer between the replay frontier and the
// local-search solver.
//
// Pending constraint sets popped from one search share long prefixes
// (they are prefixes of the same traces, differing in the last flipped
// branch), and most constraints touch disjoint input cells. The layer
// exploits both properties:
//
//   1. Independence partitioning: union-find over shared variables splits
//      a set into connected components ("slices") that are satisfiable
//      independently; the full model is stitched from per-slice
//      sub-models. A flipped last branch only re-solves the slice it
//      touches — the untouched slices reuse their prior sub-model.
//   2. Fleet-wide slice caches: a sharded solution cache and UNSAT cache,
//      keyed by arena-independent structural fingerprints of the slice
//      (constraint structure + polarity + the domains of every variable
//      the slice mentions), shared by all workers of a search. Once any
//      worker proves a slice SAT or UNSAT, no worker solves it again.
//
// Soundness: the key covers structure, polarity and domains, so a hit is
// the *same* subproblem — a cached model is revalidated against the live
// constraints before use (a fingerprint collision therefore degrades to
// a cache miss, never to a wrong model), and UNSAT entries carry a
// second, independently-seeded fingerprint of the same content, so
// masking a SAT slice requires a simultaneous 128-bit collision. Seeds
// are deliberately excluded from the key: they steer which model the
// search finds, never whether one exists. Only sound verdicts are cached
// — kUnknown (budget-truncated) results are not.
#ifndef RETRACE_SOLVER_INCREMENTAL_H_
#define RETRACE_SOLVER_INCREMENTAL_H_

#include <atomic>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/solver/solver.h"

namespace retrace {

/// \brief Fleet-wide set of constraint-set fingerprints — the
/// prefix-subsumption index behind `ReplayConfig::prune_subsumed`.
///
/// The index holds the structural fingerprint of (a) every constraint
/// prefix some worker's run has *executed* and (b) every pending set
/// already published to the frontier. A pending whose fingerprint is
/// present is *subsumed*: a structurally identical set was already
/// walked (its flippable subtree was published by the run that walked
/// it) or is already queued to be solved — either way the pending's
/// crashes stay reachable through the subsumer, so the duplicate is
/// dropped at Push time instead of queued, popped, fingerprinted and
/// solved (`ReplayStats::pendings_pruned`).
///
/// **Thread safety:** every method is safe from any thread; internally
/// sharded like SliceCache, one mutex per shard. **Ownership:** owned by
/// the search that created it; must outlive every worker using it.
class FingerprintSet {
 public:
  /// Inserts `fp`. Returns true when it was absent (first sighting) —
  /// the push-side protocol is "insert; push only when new".
  bool Insert(u64 fp);
  /// Pure membership test (tests/introspection; Push-side code uses
  /// Insert's return value to keep check-and-insert atomic).
  bool Contains(u64 fp) const;
  /// Resident fingerprints across all shards.
  u64 size() const;

 private:
  static constexpr size_t kShards = 16;
  struct Shard {
    mutable std::mutex mu;
    std::unordered_set<u64> set;
  };
  Shard& ShardFor(u64 fp) const { return shards_[(fp >> 59) % kShards]; }

  mutable Shard shards_[kShards];
};

/// \brief Shared SAT/UNSAT slice-verdict store.
///
/// Sharded internally to keep the per-lookup critical section off the
/// fleet's hot path. One instance lives per reproduction search (or per
/// distributed shard process) and is shared by every worker.
///
/// **Thread safety:** every public method is safe to call concurrently
/// from any number of threads; each internal shard is guarded by its own
/// mutex. **Ownership:** the cache is owned by whoever created the search
/// (engine or shard main loop) and must outlive every `IncrementalSolver`
/// that points at it.
class SliceCache {
 public:
  /// Sub-model of one slice: (variable, value), ascending by variable.
  using SliceModel = std::vector<std::pair<i32, i64>>;

  /// A cached solution, in the wire/gossip exchange shape.
  struct SatEntry {
    u64 key = 0;
    SliceModel model;
  };
  /// A cached UNSAT verdict: primary key plus the independently-seeded
  /// check fingerprint of the same slice content.
  struct UnsatEntry {
    u64 key = 0;
    u64 check = 0;
  };

  /// \param capacity Upper bound on resident entries (SAT + UNSAT
  ///   together), approximately enforced: the bound is split evenly over
  ///   the internal shards (minimum one entry per shard), each of which
  ///   evicts least-recently-used entries independently. 0 = unbounded —
  ///   the pre-LRU behavior, bit-identical for any search that fits in
  ///   memory.
  explicit SliceCache(u64 capacity = 0);

  /// Returns true and fills `model` when `key` has a cached solution.
  /// A hit refreshes the entry's LRU position when the cache is bounded.
  bool LookupSat(u64 key, SliceModel* model) const;
  /// Returns true when (key, check) is a proven-unsatisfiable slice.
  /// `check` is the second fingerprint of the slice content; an entry only
  /// matches when both agree (SAT hits are revalidated against the live
  /// constraints instead, so they need no check key).
  bool LookupUnsat(u64 key, u64 check) const;

  /// Stores a locally proved verdict. First store wins; a duplicate store
  /// only refreshes recency. Journaled for gossip when EnableJournal()
  /// was called.
  void StoreSat(u64 key, SliceModel model);
  void StoreUnsat(u64 key, u64 check);

  /// Stores a verdict learned from another shard's gossip. Identical to
  /// Store*, except the entry is never journaled — so a verdict is
  /// re-broadcast by its prover only, never echoed around the ring.
  void MergeSat(u64 key, SliceModel model);
  void MergeUnsat(u64 key, u64 check);

  /// Switches on journaling of locally proved verdicts (off by default;
  /// the single-process engine never pays for it). Call before sharing
  /// the cache with workers.
  void EnableJournal() { journal_.store(true, std::memory_order_release); }

  /// Moves every verdict journaled since the previous drain into the
  /// output vectors (appended). The distributed shard's gossip pump calls
  /// this periodically and ships the delta to its peers.
  void DrainJournal(std::vector<SatEntry>* sat, std::vector<UnsatEntry>* unsat);

  /// Entry counts across all shards (bench/test introspection).
  u64 sat_entries() const;
  u64 unsat_entries() const;
  /// Entries dropped by the LRU bound so far (0 while unbounded).
  u64 evictions() const { return evictions_.load(std::memory_order_relaxed); }

  // ----- Cross-report retention (replay-as-a-service) -----
  //
  // A resident service keeps one cache alive across many reports. The
  // default policy is retain-everything (slice keys cover structure,
  // polarity and domains, so entries are sound across unrelated
  // reports); Clear() is the isolate-reports policy, and the snapshot
  // pair persists warmth across daemon restarts.

  /// Drops every resident entry and any undrained journal delta. The
  /// LRU bound and eviction counter survive.
  void Clear();

  /// What a snapshot save/load touched (diagnostics).
  struct SnapshotInfo {
    u64 sat_entries = 0;
    u64 unsat_entries = 0;
    u64 bytes = 0;  // Snapshot file size including the header.
  };

  /// Writes every resident verdict to `path` (via a temp file + rename,
  /// so a crashed save never leaves a torn snapshot behind). The file is
  /// versioned and digest-checked like the wire format:
  ///   | magic u32 | version u16 | reserved u16 | payload_len u64 |
  ///   | digest u64 | payload ... |
  /// False on I/O failure.
  bool SaveSnapshot(const std::string& path, SnapshotInfo* info = nullptr) const;

  /// Loads a SaveSnapshot file and merges its entries (journal-free,
  /// first-store-wins, LRU bound enforced). Rejects wrong magic or
  /// version, truncation, trailing garbage, and digest mismatch — on
  /// any rejection the cache is untouched. False on rejection or a
  /// missing/unreadable file.
  bool LoadSnapshot(const std::string& path, SnapshotInfo* info = nullptr);

 private:
  static constexpr size_t kShards = 16;
  // LRU bookkeeping: one recency list per shard, front = most recent.
  struct LruKey {
    u64 key = 0;
    bool is_sat = false;
  };
  struct SatNode {
    SliceModel model;
    std::list<LruKey>::iterator pos;  // Valid only when bounded.
  };
  struct UnsatNode {
    u64 check = 0;
    std::list<LruKey>::iterator pos;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<u64, SatNode> sat;
    std::unordered_map<u64, UnsatNode> unsat;
    std::list<LruKey> lru;
    std::vector<SatEntry> sat_journal;
    std::vector<UnsatEntry> unsat_journal;
  };
  Shard& ShardFor(u64 key) const { return shards_[(key >> 59) % kShards]; }

  void StoreSatImpl(u64 key, SliceModel model, bool journal);
  void StoreUnsatImpl(u64 key, u64 check, bool journal);
  void TouchLocked(Shard& shard, std::list<LruKey>::iterator pos) const;
  void EvictLocked(Shard& shard);

  u64 per_shard_cap_ = 0;  // 0 = unbounded.
  std::atomic<bool> journal_{false};
  mutable std::atomic<u64> evictions_{0};
  mutable Shard shards_[kShards];
};

struct IncrementalStats {
  u64 slices_total = 0;      // Slices encountered across all Solve calls.
  u64 slices_solved = 0;     // Slices actually sent to the local search.
  u64 slice_sat_hits = 0;    // Slices satisfied straight from the cache.
  u64 slice_unsat_hits = 0;  // Sets rejected straight from the UNSAT cache.
};

/// \brief Per-worker solving facade over the shared slice caches.
///
/// Partitions each incoming set, consults the shared caches per slice,
/// solves only the missing slices with the wrapped local-search solver,
/// and stitches the sub-models into a full model.
///
/// **Thread safety:** NOT thread-safe — it wraps a thread-confined arena
/// and solver. Share the `SliceCache` across workers, never the
/// `IncrementalSolver`. **Ownership:** borrows `arena` and `cache`; both
/// must outlive the solver.
class IncrementalSolver {
 public:
  /// `cache` may be null: partition-only mode (no cross-call reuse).
  IncrementalSolver(const ExprArena& arena, SolverOptions options, SliceCache* cache)
      : arena_(arena), solver_(arena, options), cache_(cache) {}

  SolveResult Solve(ConstraintSpan constraints, const std::vector<Interval>& domains,
                    const std::vector<i64>& seed);

  const IncrementalStats& stats() const { return stats_; }

 private:
  // Memoized per-expression variable sets; pendings of one search name the
  // same expressions over and over.
  const std::vector<i32>& VarsOf(ExprRef expr);

  const ExprArena& arena_;
  Solver solver_;
  SliceCache* cache_;
  IncrementalStats stats_;
  std::unordered_map<ExprRef, std::vector<i32>> vars_memo_;
};

}  // namespace retrace

#endif  // RETRACE_SOLVER_INCREMENTAL_H_
