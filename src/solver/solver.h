// Constraint solver over input cells.
//
// A "model" is an assignment of one i64 per variable id. Solving starts
// from a seed model (the concrete input of the run that produced the
// constraints — the concolic trick that keeps most constraints satisfied
// already) and repairs unsatisfied constraints by local search, falling
// back to bounded backtracking over the variables of the conflicting
// constraints. Domains are small (bytes, syscall result ranges), which the
// candidate enumeration exploits.
#ifndef RETRACE_SOLVER_SOLVER_H_
#define RETRACE_SOLVER_SOLVER_H_

#include <vector>

#include "src/solver/expr.h"
#include "src/solver/interval.h"
#include "src/support/budget.h"

namespace retrace {

enum class SolveStatus { kSat, kUnsat, kUnknown };

struct SolveResult {
  SolveStatus status = SolveStatus::kUnknown;
  std::vector<i64> model;  // Valid when status == kSat.
  u64 steps = 0;           // Search effort, for statistics.
};

struct SolverOptions {
  u64 max_steps = 2'000'000;  // Search step budget per Solve call.
  // Upper bound on exhaustive candidate enumeration per variable. Domains
  // larger than this are sampled through heuristic candidates only.
  u64 max_enumeration = 512;
};

class Solver {
 public:
  Solver(const ExprArena& arena, SolverOptions options) : arena_(arena), options_(options) {}

  // Solves `constraints` over variables with the given domains. `seed` is
  // the starting assignment; entries beyond seed.size() default to the
  // domain lower bound clamped to 0 where possible. The span form is the
  // primitive: frontier pops solve straight over a trace-prefix view
  // (optionally negating the last constraint) without copying the set.
  SolveResult Solve(ConstraintSpan constraints, const std::vector<Interval>& domains,
                    const std::vector<i64>& seed) const;
  SolveResult Solve(const std::vector<Constraint>& constraints,
                    const std::vector<Interval>& domains, const std::vector<i64>& seed) const {
    return Solve(ConstraintSpan(constraints.data(), constraints.size()), domains, seed);
  }

  // Convenience: evaluates whether `model` satisfies all constraints.
  bool Satisfies(ConstraintSpan constraints, const std::vector<i64>& model) const;
  bool Satisfies(const std::vector<Constraint>& constraints, const std::vector<i64>& model) const {
    return Satisfies(ConstraintSpan(constraints.data(), constraints.size()), model);
  }

 private:
  const ExprArena& arena_;
  SolverOptions options_;
};

}  // namespace retrace

#endif  // RETRACE_SOLVER_SOLVER_H_
