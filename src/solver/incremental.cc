#include "src/solver/incremental.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iterator>

namespace retrace {

bool FingerprintSet::Insert(u64 fp) {
  Shard& shard = ShardFor(fp);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.set.insert(fp).second;
}

bool FingerprintSet::Contains(u64 fp) const {
  const Shard& shard = ShardFor(fp);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.set.count(fp) != 0;
}

u64 FingerprintSet::size() const {
  u64 total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.set.size();
  }
  return total;
}

SliceCache::SliceCache(u64 capacity)
    : per_shard_cap_(capacity == 0 ? 0 : std::max<u64>(1, (capacity + kShards - 1) / kShards)) {}

void SliceCache::TouchLocked(Shard& shard, std::list<LruKey>::iterator pos) const {
  if (per_shard_cap_ != 0) {
    shard.lru.splice(shard.lru.begin(), shard.lru, pos);
  }
}

void SliceCache::EvictLocked(Shard& shard) {
  if (per_shard_cap_ == 0) {
    return;
  }
  while (shard.sat.size() + shard.unsat.size() > per_shard_cap_) {
    const LruKey victim = shard.lru.back();
    shard.lru.pop_back();
    if (victim.is_sat) {
      shard.sat.erase(victim.key);
    } else {
      shard.unsat.erase(victim.key);
    }
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool SliceCache::LookupSat(u64 key, SliceModel* model) const {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.sat.find(key);
  if (it == shard.sat.end()) {
    return false;
  }
  TouchLocked(shard, it->second.pos);
  *model = it->second.model;
  return true;
}

bool SliceCache::LookupUnsat(u64 key, u64 check) const {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.unsat.find(key);
  if (it == shard.unsat.end() || it->second.check != check) {
    return false;
  }
  TouchLocked(shard, it->second.pos);
  return true;
}

void SliceCache::StoreSatImpl(u64 key, SliceModel model, bool journal) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.sat.find(key);
  if (it != shard.sat.end()) {
    TouchLocked(shard, it->second.pos);  // First store wins; refresh recency.
    return;
  }
  if (journal) {
    shard.sat_journal.push_back(SatEntry{key, model});
  }
  std::list<LruKey>::iterator pos = shard.lru.end();
  if (per_shard_cap_ != 0) {
    pos = shard.lru.insert(shard.lru.begin(), LruKey{key, /*is_sat=*/true});
  }
  shard.sat.emplace(key, SatNode{std::move(model), pos});
  EvictLocked(shard);
}

void SliceCache::StoreUnsatImpl(u64 key, u64 check, bool journal) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.unsat.find(key);
  if (it != shard.unsat.end()) {
    TouchLocked(shard, it->second.pos);
    return;
  }
  if (journal) {
    shard.unsat_journal.push_back(UnsatEntry{key, check});
  }
  std::list<LruKey>::iterator pos = shard.lru.end();
  if (per_shard_cap_ != 0) {
    pos = shard.lru.insert(shard.lru.begin(), LruKey{key, /*is_sat=*/false});
  }
  shard.unsat.emplace(key, UnsatNode{check, pos});
  EvictLocked(shard);
}

void SliceCache::StoreSat(u64 key, SliceModel model) {
  StoreSatImpl(key, std::move(model), journal_.load(std::memory_order_acquire));
}

void SliceCache::StoreUnsat(u64 key, u64 check) {
  StoreUnsatImpl(key, check, journal_.load(std::memory_order_acquire));
}

void SliceCache::MergeSat(u64 key, SliceModel model) {
  StoreSatImpl(key, std::move(model), /*journal=*/false);
}

void SliceCache::MergeUnsat(u64 key, u64 check) {
  StoreUnsatImpl(key, check, /*journal=*/false);
}

void SliceCache::DrainJournal(std::vector<SatEntry>* sat, std::vector<UnsatEntry>* unsat) {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    std::move(shard.sat_journal.begin(), shard.sat_journal.end(), std::back_inserter(*sat));
    shard.sat_journal.clear();
    std::move(shard.unsat_journal.begin(), shard.unsat_journal.end(),
              std::back_inserter(*unsat));
    shard.unsat_journal.clear();
  }
}

u64 SliceCache::sat_entries() const {
  u64 n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.sat.size();
  }
  return n;
}

u64 SliceCache::unsat_entries() const {
  u64 n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.unsat.size();
  }
  return n;
}

void SliceCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.sat.clear();
    shard.unsat.clear();
    shard.lru.clear();
    shard.sat_journal.clear();
    shard.unsat_journal.clear();
  }
}

// ----- Snapshot persistence -----

namespace {

constexpr u32 kSnapshotMagic = 0x43535452u;  // "RTSC" little-endian.
constexpr u16 kSnapshotVersion = 1;
// Header: magic u32 | version u16 | reserved u16 | payload_len u64 |
// digest u64. Fixed width, little-endian, mirroring the wire framing.
constexpr size_t kSnapshotHeaderBytes = 4 + 2 + 2 + 8 + 8;
// A snapshot is a local file, but it sizes allocations on load exactly
// like a network payload would: cap it the same way (the wire layer's
// whole-payload ceiling is 1 GiB; a slice cache that big is a bug).
constexpr u64 kMaxSnapshotPayload = 1ull << 30;

void SnapPutU16(u16 v, std::vector<u8>* out) {
  out->push_back(static_cast<u8>(v & 0xff));
  out->push_back(static_cast<u8>((v >> 8) & 0xff));
}

void SnapPutU32(u32 v, std::vector<u8>* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<u8>((v >> (8 * i)) & 0xff));
  }
}

void SnapPutU64(u64 v, std::vector<u8>* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<u8>((v >> (8 * i)) & 0xff));
  }
}

// Structural digest of the payload: HashMix chain over 8-byte words,
// length-mixed so a truncated-but-zero-padded payload cannot collide.
u64 SnapshotDigest(const u8* data, size_t n) {
  u64 h = 0x5851f42d4c957f2dull;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    u64 word = 0;
    std::memcpy(&word, data + i, 8);
    h = HashMix(h, word);
  }
  u64 tail = 0;
  for (size_t j = 0; i + j < n; ++j) {
    tail |= static_cast<u64>(data[i + j]) << (8 * j);
  }
  h = HashMix(h, tail);
  return HashMix(h, static_cast<u64>(n));
}

// Bounds-checked little-endian reader over the snapshot payload; any
// overrun poisons it, so the decode loop can bail once.
struct SnapReader {
  const u8* p = nullptr;
  size_t n = 0;
  size_t off = 0;
  bool ok = true;

  bool Raw(void* out, size_t count) {
    if (!ok || n - off < count) {
      ok = false;
      return false;
    }
    std::memcpy(out, p + off, count);
    off += count;
    return true;
  }
  bool U32(u32* v) { return Raw(v, 4); }
  bool U64(u64* v) { return Raw(v, 8); }
  bool I32(i32* v) { return Raw(v, 4); }
  bool I64(i64* v) { return Raw(v, 8); }
  size_t remaining() const { return n - off; }
};

}  // namespace

bool SliceCache::SaveSnapshot(const std::string& path, SnapshotInfo* info) const {
  std::vector<u8> payload;
  u64 sat_count = 0;
  u64 unsat_count = 0;
  // Per-section counts are back-patched after the sweep; the sweep locks
  // one internal shard at a time, so a save concurrent with stores is a
  // coherent point-in-time view per shard, not fleet-wide.
  SnapPutU64(0, &payload);  // sat_count placeholder.
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [key, node] : shard.sat) {
      SnapPutU64(key, &payload);
      SnapPutU32(static_cast<u32>(node.model.size()), &payload);
      for (const auto& [var, value] : node.model) {
        SnapPutU32(static_cast<u32>(var), &payload);
        SnapPutU64(static_cast<u64>(value), &payload);
      }
      ++sat_count;
    }
  }
  SnapPutU64(0, &payload);  // unsat_count placeholder (offset noted below).
  const size_t unsat_count_off = payload.size() - 8;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [key, node] : shard.unsat) {
      SnapPutU64(key, &payload);
      SnapPutU64(node.check, &payload);
      ++unsat_count;
    }
  }
  for (int i = 0; i < 8; ++i) {
    payload[static_cast<size_t>(i)] = static_cast<u8>((sat_count >> (8 * i)) & 0xff);
    payload[unsat_count_off + static_cast<size_t>(i)] =
        static_cast<u8>((unsat_count >> (8 * i)) & 0xff);
  }

  std::vector<u8> file;
  file.reserve(kSnapshotHeaderBytes + payload.size());
  SnapPutU32(kSnapshotMagic, &file);
  SnapPutU16(kSnapshotVersion, &file);
  SnapPutU16(0, &file);
  SnapPutU64(static_cast<u64>(payload.size()), &file);
  SnapPutU64(SnapshotDigest(payload.data(), payload.size()), &file);
  file.insert(file.end(), payload.begin(), payload.end());

  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return false;
  }
  const bool wrote = std::fwrite(file.data(), 1, file.size(), f) == file.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  if (info != nullptr) {
    info->sat_entries = sat_count;
    info->unsat_entries = unsat_count;
    info->bytes = file.size();
  }
  return true;
}

bool SliceCache::LoadSnapshot(const std::string& path, SnapshotInfo* info) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return false;
  }
  std::vector<u8> file;
  u8 chunk[64 * 1024];
  size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    file.insert(file.end(), chunk, chunk + got);
    if (file.size() > kSnapshotHeaderBytes + kMaxSnapshotPayload) {
      std::fclose(f);
      return false;
    }
  }
  std::fclose(f);

  if (file.size() < kSnapshotHeaderBytes) {
    return false;
  }
  SnapReader hdr{file.data(), kSnapshotHeaderBytes, 0, true};
  u32 magic = 0;
  u32 version_reserved = 0;
  u64 payload_len = 0;
  u64 digest = 0;
  hdr.U32(&magic);
  hdr.U32(&version_reserved);
  hdr.U64(&payload_len);
  hdr.U64(&digest);
  if (!hdr.ok || magic != kSnapshotMagic || (version_reserved & 0xffffu) != kSnapshotVersion) {
    return false;
  }
  if (payload_len > kMaxSnapshotPayload ||
      file.size() - kSnapshotHeaderBytes != payload_len) {
    return false;  // Truncated or trailing garbage.
  }
  const u8* payload = file.data() + kSnapshotHeaderBytes;
  if (SnapshotDigest(payload, payload_len) != digest) {
    return false;
  }

  // Decode into staging vectors first: a payload that goes bad half-way
  // (impossible counts, short entries) must leave the cache untouched.
  SnapReader r{payload, static_cast<size_t>(payload_len), 0, true};
  u64 sat_count = 0;
  if (!r.U64(&sat_count) || sat_count > r.remaining() / 12) {
    return false;
  }
  std::vector<SatEntry> sat;
  sat.reserve(sat_count);
  for (u64 i = 0; i < sat_count; ++i) {
    SatEntry entry;
    u32 model_size = 0;
    if (!r.U64(&entry.key) || !r.U32(&model_size) || model_size > r.remaining() / 12) {
      return false;
    }
    entry.model.reserve(model_size);
    for (u32 j = 0; j < model_size; ++j) {
      i32 var = 0;
      i64 value = 0;
      if (!r.I32(&var) || !r.I64(&value)) {
        return false;
      }
      entry.model.emplace_back(var, value);
    }
    sat.push_back(std::move(entry));
  }
  u64 unsat_count = 0;
  if (!r.U64(&unsat_count) || unsat_count > r.remaining() / 16) {
    return false;
  }
  std::vector<UnsatEntry> unsat;
  unsat.reserve(unsat_count);
  for (u64 i = 0; i < unsat_count; ++i) {
    UnsatEntry entry;
    if (!r.U64(&entry.key) || !r.U64(&entry.check)) {
      return false;
    }
    unsat.push_back(entry);
  }
  if (!r.ok || r.remaining() != 0) {
    return false;
  }

  for (SatEntry& entry : sat) {
    MergeSat(entry.key, std::move(entry.model));
  }
  for (const UnsatEntry& entry : unsat) {
    MergeUnsat(entry.key, entry.check);
  }
  if (info != nullptr) {
    info->sat_entries = sat.size();
    info->unsat_entries = unsat.size();
    info->bytes = file.size();
  }
  return true;
}

const std::vector<i32>& IncrementalSolver::VarsOf(ExprRef expr) {
  auto it = vars_memo_.find(expr);
  if (it != vars_memo_.end()) {
    return it->second;
  }
  std::vector<i32> vars;
  arena_.CollectVars(expr, &vars);
  return vars_memo_.emplace(expr, std::move(vars)).first->second;
}

SolveResult IncrementalSolver::Solve(ConstraintSpan constraints,
                                     const std::vector<Interval>& domains,
                                     const std::vector<i64>& seed) {
  const size_t n = constraints.size();
  SolveResult result;

  // Union-find over constraint indices, merged through shared variables.
  std::vector<size_t> parent(n);
  for (size_t i = 0; i < n; ++i) {
    parent[i] = i;
  }
  auto find = [&](size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto unite = [&](size_t a, size_t b) { parent[find(a)] = find(b); };

  std::unordered_map<i32, size_t> var_owner;  // var -> first constraint seen.
  i32 max_var = -1;
  for (size_t i = 0; i < n; ++i) {
    for (const i32 v : VarsOf(constraints[i].expr)) {
      max_var = std::max(max_var, v);
      auto [it, fresh] = var_owner.emplace(v, i);
      if (!fresh) {
        unite(i, it->second);
      }
    }
  }

  // Constant constraints (fully folded conditions) form no slice: they
  // hold or fail regardless of any model.
  for (size_t i = 0; i < n; ++i) {
    const Constraint c = constraints[i];
    if (!VarsOf(c.expr).empty()) {
      continue;
    }
    if ((arena_.Eval(c.expr, {}) != 0) != c.want_true) {
      result.status = SolveStatus::kUnsat;
      return result;
    }
  }

  // Group constraints into slices, ordered by first appearance so slice
  // keys are deterministic for a given trace prefix.
  std::unordered_map<size_t, size_t> root_slice;
  std::vector<std::vector<size_t>> slices;
  for (size_t i = 0; i < n; ++i) {
    if (VarsOf(constraints[i].expr).empty()) {
      continue;
    }
    const size_t root = find(i);
    auto [it, fresh] = root_slice.emplace(root, slices.size());
    if (fresh) {
      slices.emplace_back();
    }
    slices[it->second].push_back(i);
  }

  // Base model: the seed clamped into domains (the same initialization the
  // monolithic solver applies), stitched over slice by slice below.
  std::vector<i64> model(std::max<size_t>(seed.size(), static_cast<size_t>(max_var) + 1), 0);
  for (size_t i = 0; i < model.size(); ++i) {
    const Interval dom = i < domains.size() ? domains[i] : Interval{0, 255};
    model[i] = std::clamp(i < seed.size() ? seed[i] : 0, dom.lo, dom.hi);
  }

  std::vector<Constraint> slice_constraints;
  std::vector<i32> slice_vars;
  for (const std::vector<size_t>& slice : slices) {
    ++stats_.slices_total;

    // Key: constraint structure + polarity in trace order, then each
    // mentioned variable with its domain (ascending, deduplicated).
    // `check` accumulates the same content from an independent seed; the
    // UNSAT cache requires both to match, so masking a SAT slice takes a
    // simultaneous 128-bit collision.
    slice_vars.clear();
    u64 key = 0x452821e638d01377ull;
    u64 check = 0xbe5466cf34e90c6cull;
    for (const size_t ci : slice) {
      const Constraint c = constraints[ci];
      const u64 expr_hash = arena_.StructuralHash(c.expr);
      key = HashMix(key, expr_hash);
      key = HashMix(key, c.want_true ? 1 : 2);
      check = HashMix(check, c.want_true ? 1 : 2);
      check = HashMix(check, expr_hash);
      const std::vector<i32>& vars = VarsOf(c.expr);
      slice_vars.insert(slice_vars.end(), vars.begin(), vars.end());
    }
    std::sort(slice_vars.begin(), slice_vars.end());
    slice_vars.erase(std::unique(slice_vars.begin(), slice_vars.end()), slice_vars.end());
    for (const i32 v : slice_vars) {
      const Interval dom =
          static_cast<size_t>(v) < domains.size() ? domains[v] : Interval{0, 255};
      key = HashMix(key, static_cast<u64>(v));
      key = dom.MixInto(key);
      check = dom.MixInto(check);
      check = HashMix(check, static_cast<u64>(v));
    }

    slice_constraints.clear();
    for (const size_t ci : slice) {
      slice_constraints.push_back(constraints[ci]);
    }

    if (cache_ != nullptr) {
      if (cache_->LookupUnsat(key, check)) {
        ++stats_.slice_unsat_hits;
        result.status = SolveStatus::kUnsat;
        result.steps = 0;
        return result;
      }
      SliceCache::SliceModel cached;
      if (cache_->LookupSat(key, &cached)) {
        for (const auto& [v, value] : cached) {
          if (static_cast<size_t>(v) < model.size()) {
            model[v] = value;
          }
        }
        // Revalidate against the live constraints: a fingerprint collision
        // (or any cache bug) degrades to a miss instead of a wrong model.
        if (solver_.Satisfies(slice_constraints, model)) {
          ++stats_.slice_sat_hits;
          continue;
        }
        for (const i32 v : slice_vars) {  // Undo the misapplied sub-model.
          if (static_cast<size_t>(v) < model.size()) {
            const Interval dom =
                static_cast<size_t>(v) < domains.size() ? domains[v] : Interval{0, 255};
            model[v] = std::clamp(static_cast<size_t>(v) < seed.size() ? seed[v] : 0, dom.lo,
                                  dom.hi);
          }
        }
      }
    }

    ++stats_.slices_solved;
    SolveResult sub = solver_.Solve(slice_constraints, domains, seed);
    result.steps += sub.steps;
    if (sub.status == SolveStatus::kUnsat) {
      if (cache_ != nullptr) {
        cache_->StoreUnsat(key, check);
      }
      result.status = SolveStatus::kUnsat;
      return result;
    }
    if (sub.status != SolveStatus::kSat) {
      result.status = SolveStatus::kUnknown;
      return result;
    }
    SliceCache::SliceModel sub_model;
    sub_model.reserve(slice_vars.size());
    for (const i32 v : slice_vars) {
      const i64 value = static_cast<size_t>(v) < sub.model.size() ? sub.model[v] : 0;
      sub_model.emplace_back(v, value);
      if (static_cast<size_t>(v) < model.size()) {
        model[v] = value;
      }
    }
    if (cache_ != nullptr) {
      cache_->StoreSat(key, std::move(sub_model));
    }
  }

  result.status = SolveStatus::kSat;
  result.model = std::move(model);
  return result;
}

}  // namespace retrace
