#include "src/solver/incremental.h"

#include <algorithm>
#include <iterator>

namespace retrace {

bool FingerprintSet::Insert(u64 fp) {
  Shard& shard = ShardFor(fp);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.set.insert(fp).second;
}

bool FingerprintSet::Contains(u64 fp) const {
  const Shard& shard = ShardFor(fp);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.set.count(fp) != 0;
}

u64 FingerprintSet::size() const {
  u64 total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.set.size();
  }
  return total;
}

SliceCache::SliceCache(u64 capacity)
    : per_shard_cap_(capacity == 0 ? 0 : std::max<u64>(1, (capacity + kShards - 1) / kShards)) {}

void SliceCache::TouchLocked(Shard& shard, std::list<LruKey>::iterator pos) const {
  if (per_shard_cap_ != 0) {
    shard.lru.splice(shard.lru.begin(), shard.lru, pos);
  }
}

void SliceCache::EvictLocked(Shard& shard) {
  if (per_shard_cap_ == 0) {
    return;
  }
  while (shard.sat.size() + shard.unsat.size() > per_shard_cap_) {
    const LruKey victim = shard.lru.back();
    shard.lru.pop_back();
    if (victim.is_sat) {
      shard.sat.erase(victim.key);
    } else {
      shard.unsat.erase(victim.key);
    }
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool SliceCache::LookupSat(u64 key, SliceModel* model) const {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.sat.find(key);
  if (it == shard.sat.end()) {
    return false;
  }
  TouchLocked(shard, it->second.pos);
  *model = it->second.model;
  return true;
}

bool SliceCache::LookupUnsat(u64 key, u64 check) const {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.unsat.find(key);
  if (it == shard.unsat.end() || it->second.check != check) {
    return false;
  }
  TouchLocked(shard, it->second.pos);
  return true;
}

void SliceCache::StoreSatImpl(u64 key, SliceModel model, bool journal) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.sat.find(key);
  if (it != shard.sat.end()) {
    TouchLocked(shard, it->second.pos);  // First store wins; refresh recency.
    return;
  }
  if (journal) {
    shard.sat_journal.push_back(SatEntry{key, model});
  }
  std::list<LruKey>::iterator pos = shard.lru.end();
  if (per_shard_cap_ != 0) {
    pos = shard.lru.insert(shard.lru.begin(), LruKey{key, /*is_sat=*/true});
  }
  shard.sat.emplace(key, SatNode{std::move(model), pos});
  EvictLocked(shard);
}

void SliceCache::StoreUnsatImpl(u64 key, u64 check, bool journal) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.unsat.find(key);
  if (it != shard.unsat.end()) {
    TouchLocked(shard, it->second.pos);
    return;
  }
  if (journal) {
    shard.unsat_journal.push_back(UnsatEntry{key, check});
  }
  std::list<LruKey>::iterator pos = shard.lru.end();
  if (per_shard_cap_ != 0) {
    pos = shard.lru.insert(shard.lru.begin(), LruKey{key, /*is_sat=*/false});
  }
  shard.unsat.emplace(key, UnsatNode{check, pos});
  EvictLocked(shard);
}

void SliceCache::StoreSat(u64 key, SliceModel model) {
  StoreSatImpl(key, std::move(model), journal_.load(std::memory_order_acquire));
}

void SliceCache::StoreUnsat(u64 key, u64 check) {
  StoreUnsatImpl(key, check, journal_.load(std::memory_order_acquire));
}

void SliceCache::MergeSat(u64 key, SliceModel model) {
  StoreSatImpl(key, std::move(model), /*journal=*/false);
}

void SliceCache::MergeUnsat(u64 key, u64 check) {
  StoreUnsatImpl(key, check, /*journal=*/false);
}

void SliceCache::DrainJournal(std::vector<SatEntry>* sat, std::vector<UnsatEntry>* unsat) {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    std::move(shard.sat_journal.begin(), shard.sat_journal.end(), std::back_inserter(*sat));
    shard.sat_journal.clear();
    std::move(shard.unsat_journal.begin(), shard.unsat_journal.end(),
              std::back_inserter(*unsat));
    shard.unsat_journal.clear();
  }
}

u64 SliceCache::sat_entries() const {
  u64 n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.sat.size();
  }
  return n;
}

u64 SliceCache::unsat_entries() const {
  u64 n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.unsat.size();
  }
  return n;
}

const std::vector<i32>& IncrementalSolver::VarsOf(ExprRef expr) {
  auto it = vars_memo_.find(expr);
  if (it != vars_memo_.end()) {
    return it->second;
  }
  std::vector<i32> vars;
  arena_.CollectVars(expr, &vars);
  return vars_memo_.emplace(expr, std::move(vars)).first->second;
}

SolveResult IncrementalSolver::Solve(ConstraintSpan constraints,
                                     const std::vector<Interval>& domains,
                                     const std::vector<i64>& seed) {
  const size_t n = constraints.size();
  SolveResult result;

  // Union-find over constraint indices, merged through shared variables.
  std::vector<size_t> parent(n);
  for (size_t i = 0; i < n; ++i) {
    parent[i] = i;
  }
  auto find = [&](size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto unite = [&](size_t a, size_t b) { parent[find(a)] = find(b); };

  std::unordered_map<i32, size_t> var_owner;  // var -> first constraint seen.
  i32 max_var = -1;
  for (size_t i = 0; i < n; ++i) {
    for (const i32 v : VarsOf(constraints[i].expr)) {
      max_var = std::max(max_var, v);
      auto [it, fresh] = var_owner.emplace(v, i);
      if (!fresh) {
        unite(i, it->second);
      }
    }
  }

  // Constant constraints (fully folded conditions) form no slice: they
  // hold or fail regardless of any model.
  for (size_t i = 0; i < n; ++i) {
    const Constraint c = constraints[i];
    if (!VarsOf(c.expr).empty()) {
      continue;
    }
    if ((arena_.Eval(c.expr, {}) != 0) != c.want_true) {
      result.status = SolveStatus::kUnsat;
      return result;
    }
  }

  // Group constraints into slices, ordered by first appearance so slice
  // keys are deterministic for a given trace prefix.
  std::unordered_map<size_t, size_t> root_slice;
  std::vector<std::vector<size_t>> slices;
  for (size_t i = 0; i < n; ++i) {
    if (VarsOf(constraints[i].expr).empty()) {
      continue;
    }
    const size_t root = find(i);
    auto [it, fresh] = root_slice.emplace(root, slices.size());
    if (fresh) {
      slices.emplace_back();
    }
    slices[it->second].push_back(i);
  }

  // Base model: the seed clamped into domains (the same initialization the
  // monolithic solver applies), stitched over slice by slice below.
  std::vector<i64> model(std::max<size_t>(seed.size(), static_cast<size_t>(max_var) + 1), 0);
  for (size_t i = 0; i < model.size(); ++i) {
    const Interval dom = i < domains.size() ? domains[i] : Interval{0, 255};
    model[i] = std::clamp(i < seed.size() ? seed[i] : 0, dom.lo, dom.hi);
  }

  std::vector<Constraint> slice_constraints;
  std::vector<i32> slice_vars;
  for (const std::vector<size_t>& slice : slices) {
    ++stats_.slices_total;

    // Key: constraint structure + polarity in trace order, then each
    // mentioned variable with its domain (ascending, deduplicated).
    // `check` accumulates the same content from an independent seed; the
    // UNSAT cache requires both to match, so masking a SAT slice takes a
    // simultaneous 128-bit collision.
    slice_vars.clear();
    u64 key = 0x452821e638d01377ull;
    u64 check = 0xbe5466cf34e90c6cull;
    for (const size_t ci : slice) {
      const Constraint c = constraints[ci];
      const u64 expr_hash = arena_.StructuralHash(c.expr);
      key = HashMix(key, expr_hash);
      key = HashMix(key, c.want_true ? 1 : 2);
      check = HashMix(check, c.want_true ? 1 : 2);
      check = HashMix(check, expr_hash);
      const std::vector<i32>& vars = VarsOf(c.expr);
      slice_vars.insert(slice_vars.end(), vars.begin(), vars.end());
    }
    std::sort(slice_vars.begin(), slice_vars.end());
    slice_vars.erase(std::unique(slice_vars.begin(), slice_vars.end()), slice_vars.end());
    for (const i32 v : slice_vars) {
      const Interval dom =
          static_cast<size_t>(v) < domains.size() ? domains[v] : Interval{0, 255};
      key = HashMix(key, static_cast<u64>(v));
      key = dom.MixInto(key);
      check = dom.MixInto(check);
      check = HashMix(check, static_cast<u64>(v));
    }

    slice_constraints.clear();
    for (const size_t ci : slice) {
      slice_constraints.push_back(constraints[ci]);
    }

    if (cache_ != nullptr) {
      if (cache_->LookupUnsat(key, check)) {
        ++stats_.slice_unsat_hits;
        result.status = SolveStatus::kUnsat;
        result.steps = 0;
        return result;
      }
      SliceCache::SliceModel cached;
      if (cache_->LookupSat(key, &cached)) {
        for (const auto& [v, value] : cached) {
          if (static_cast<size_t>(v) < model.size()) {
            model[v] = value;
          }
        }
        // Revalidate against the live constraints: a fingerprint collision
        // (or any cache bug) degrades to a miss instead of a wrong model.
        if (solver_.Satisfies(slice_constraints, model)) {
          ++stats_.slice_sat_hits;
          continue;
        }
        for (const i32 v : slice_vars) {  // Undo the misapplied sub-model.
          if (static_cast<size_t>(v) < model.size()) {
            const Interval dom =
                static_cast<size_t>(v) < domains.size() ? domains[v] : Interval{0, 255};
            model[v] = std::clamp(static_cast<size_t>(v) < seed.size() ? seed[v] : 0, dom.lo,
                                  dom.hi);
          }
        }
      }
    }

    ++stats_.slices_solved;
    SolveResult sub = solver_.Solve(slice_constraints, domains, seed);
    result.steps += sub.steps;
    if (sub.status == SolveStatus::kUnsat) {
      if (cache_ != nullptr) {
        cache_->StoreUnsat(key, check);
      }
      result.status = SolveStatus::kUnsat;
      return result;
    }
    if (sub.status != SolveStatus::kSat) {
      result.status = SolveStatus::kUnknown;
      return result;
    }
    SliceCache::SliceModel sub_model;
    sub_model.reserve(slice_vars.size());
    for (const i32 v : slice_vars) {
      const i64 value = static_cast<size_t>(v) < sub.model.size() ? sub.model[v] : 0;
      sub_model.emplace_back(v, value);
      if (static_cast<size_t>(v) < model.size()) {
        model[v] = value;
      }
    }
    if (cache_ != nullptr) {
      cache_->StoreSat(key, std::move(sub_model));
    }
  }

  result.status = SolveStatus::kSat;
  result.model = std::move(model);
  return result;
}

}  // namespace retrace
