// Integer intervals and pattern-based domain narrowing.
//
// The solver runs over input cells with small domains (argv bytes in
// [0,255], syscall results in tight ranges). Before searching, it narrows
// each variable's interval using the constraints that mention the variable
// in a directly-invertible position (var CMP const and friends). The
// backtracking search then enumerates only the remaining candidates.
#ifndef RETRACE_SOLVER_INTERVAL_H_
#define RETRACE_SOLVER_INTERVAL_H_

#include "src/solver/expr.h"
#include "src/support/common.h"

namespace retrace {

struct Interval {
  i64 lo = INT64_MIN;
  i64 hi = INT64_MAX;

  bool Empty() const { return lo > hi; }
  bool Contains(i64 v) const { return v >= lo && v <= hi; }
  // Number of values, saturating at INT64_MAX.
  u64 Size() const;
  Interval Intersect(const Interval& other) const;

  bool operator==(const Interval&) const = default;

  // Folds the interval's bounds into a running fingerprint. Slice-cache
  // keys include each variable's domain: a slice verdict (model or UNSAT)
  // is only valid for the exact domains it was proved under.
  u64 MixInto(u64 h) const {
    h = HashMix(h, static_cast<u64>(lo));
    return HashMix(h, static_cast<u64>(hi));
  }
};

// If `constraint` directly bounds `var` (shapes: var CMP k, k CMP var,
// trunc(var) CMP k, var, !var), intersects *iv with the implied interval
// and returns true. Returns false when the constraint has no directly
// invertible shape for this variable (the search handles those).
bool NarrowForConstraint(const ExprArena& arena, const Constraint& constraint, i32 var,
                         Interval* iv);

}  // namespace retrace

#endif  // RETRACE_SOLVER_INTERVAL_H_
