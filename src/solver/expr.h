// Symbolic expression DAG.
//
// Expressions are immutable nodes in an arena, referenced by index
// (ExprRef). Variables stand for input cells: argv bytes, bytes produced by
// read(), and the results of nondeterministic system calls. The interpreter
// builds shadow expressions along the concrete path; branch conditions over
// them become path constraints.
#ifndef RETRACE_SOLVER_EXPR_H_
#define RETRACE_SOLVER_EXPR_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/support/common.h"

namespace retrace {

using ExprRef = i32;
inline constexpr ExprRef kNoExpr = -1;

enum class ExprOp : u8 {
  kConst,
  kVar,
  // Binary (signed 64-bit semantics).
  kAdd, kSub, kMul, kDiv, kRem,
  kAnd, kOr, kXor, kShl, kShr,
  kEq, kNe, kLt, kLe, kGt, kGe,
  // Unary.
  kNeg, kBitNot, kLogicalNot,
  kTruncChar,  // Truncation to unsigned char on store to a char cell.
};

bool ExprOpIsBinary(ExprOp op);
bool ExprOpIsComparison(ExprOp op);
const char* ExprOpName(ExprOp op);

// Hash mixing step shared by every structural fingerprint in the solver
// (node hashes, constraint-set fingerprints, slice-cache keys). One
// formula everywhere keeps arena-side and portable-side hashes equal.
inline u64 HashMix(u64 h, u64 v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h * 0xff51afd7ed558ccdull;
}

struct ExprNode {
  ExprOp op = ExprOp::kConst;
  ExprRef a = kNoExpr;
  ExprRef b = kNoExpr;
  i64 imm = 0;  // kConst: value; kVar: variable id.

  bool operator==(const ExprNode&) const = default;
};

// Arena of hash-consed expression nodes. Node construction performs
// constant folding and light algebraic simplification, which keeps shadow
// DAGs small across millions of branch executions.
class ExprArena {
 public:
  ExprArena();

  ExprRef MkConst(i64 value);
  ExprRef MkVar(i32 var_id);
  ExprRef MkUn(ExprOp op, ExprRef a);
  ExprRef MkBin(ExprOp op, ExprRef a, ExprRef b);

  const ExprNode& node(ExprRef ref) const { return nodes_[ref]; }
  size_t size() const { return nodes_.size(); }

  bool IsConst(ExprRef ref) const { return nodes_[ref].op == ExprOp::kConst; }
  i64 ConstValue(ExprRef ref) const { return nodes_[ref].imm; }

  // Evaluates under an assignment of values to variable ids. Variables not
  // present in `assignment` (id >= size) evaluate to 0.
  i64 Eval(ExprRef ref, const std::vector<i64>& assignment) const;

  // Appends all variable ids reachable from `ref` (deduplicated).
  void CollectVars(ExprRef ref, std::vector<i32>* vars) const;
  // Appends all constants appearing in the expression.
  void CollectConsts(ExprRef ref, std::vector<i64>* consts) const;

  std::string ToString(ExprRef ref) const;

  // Arena-independent structural hash of the sub-DAG rooted at `ref`:
  // equal for structurally identical expressions built in different
  // arenas (it uses the same node mixing as FingerprintConstraints).
  // Memoized per node — nodes are immutable and refs append-only, so each
  // node is hashed at most once per arena lifetime.
  u64 StructuralHash(ExprRef ref) const;

  // Total 64-bit semantics used everywhere (interpreter shadow, solver):
  // division by zero yields 0, shifts use only the low 6 bits of the count.
  static i64 EvalBin(ExprOp op, i64 a, i64 b);
  static i64 EvalUn(ExprOp op, i64 a);

 private:
  ExprRef Intern(ExprNode node);

  std::vector<ExprNode> nodes_;
  std::unordered_map<u64, std::vector<ExprRef>> dedup_;
  mutable std::vector<u64> struct_hash_;  // 0 = not yet computed.
};

// A path constraint: `expr` must evaluate truthy (want_true) or falsy.
struct Constraint {
  ExprRef expr = kNoExpr;
  bool want_true = true;

  bool operator==(const Constraint&) const = default;
};

// Non-owning view of a constraint-set prefix with an optional negation of
// the last element — the pending-set shape of the replay frontier. Lets
// the solver walk a trace prefix directly instead of materializing a
// fresh (prefix-copied, last-negated) vector for every frontier pop. The
// view does not own the storage; it must not outlive the trace.
struct ConstraintSpan {
  const Constraint* data = nullptr;
  size_t count = 0;
  bool negate_last = false;

  ConstraintSpan() = default;
  ConstraintSpan(const Constraint* d, size_t n, bool negate = false)
      : data(d), count(n), negate_last(negate) {}

  size_t size() const { return count; }
  bool empty() const { return count == 0; }
  Constraint operator[](size_t i) const {
    Constraint c = data[i];
    if (negate_last && i + 1 == count) {
      c.want_true = !c.want_true;
    }
    return c;
  }
};

// Arena-independent snapshot of a constraint trace. The parallel replay
// scheduler publishes pending constraint sets through a shared frontier,
// and the distributed scheduler ships them between shard processes
// (src/dist/wire.h encodes exactly this struct); because every worker
// owns a private ExprArena (hash-consing is not thread-safe), the sets
// travel in this portable form and are re-interned into the consuming
// worker's arena. `nodes` is in topological order (children strictly
// precede parents); node fields a/b and Constraint::expr index into
// `nodes` instead of an arena.
struct PortableTrace {
  std::vector<ExprNode> nodes;
  std::vector<Constraint> constraints;
};

// Snapshots `constraints` (all of them) out of `arena`.
PortableTrace ExportTrace(const ExprArena& arena, const std::vector<Constraint>& constraints);

// Re-interns the nodes of `trace` into `arena` and returns constraints
// [0, len), negating the last one when `negate_last` — the pending-set
// shape of the replay frontier. Because arenas apply identical folding and
// interning rules, importing an exported trace reproduces the structure
// exactly.
std::vector<Constraint> ImportConstraints(const PortableTrace& trace, size_t len,
                                          bool negate_last, ExprArena* arena);

// Bottom-up structural hashes of every node of `trace` (children precede
// parents, so one forward pass suffices). Reusable across
// FingerprintConstraints calls on the same trace — batch siblings on the
// replay frontier share one trace, so workers memoize this per trace.
std::vector<u64> PortableNodeHashes(const PortableTrace& trace);

// Structural fingerprint of constraints [0, len) (with the optional
// negation), stable across arenas. The scheduler's shared dedup key:
// two workers whose runs produced structurally identical pending sets
// solve it only once. The node_hash overload is the per-pop hot path;
// `node_hash` must be PortableNodeHashes(trace).
u64 FingerprintConstraints(const PortableTrace& trace, size_t len, bool negate_last);
u64 FingerprintConstraints(const PortableTrace& trace, size_t len, bool negate_last,
                           const std::vector<u64>& node_hash);

// The chain primitives behind FingerprintConstraints, exposed so the
// replay engine's prefix-subsumption index can fingerprint every prefix
// of one trace in a single forward pass:
//
//   fp([0, 0))     = kConstraintFingerprintSeed
//   fp([0, i + 1)) = ExtendConstraintFingerprint(fp([0, i)), hash_i, want_i)
//
// where hash_i is the constraint expression's structural hash (arena
// StructuralHash or PortableNodeHashes entry — the two agree). A
// negate-last pending set fingerprints as the chain with the final
// step's polarity flipped, which is exactly the fingerprint of a run
// that *executed* the opposite direction at that constraint — the
// subsumption identity the pruning layer relies on.
inline constexpr u64 kConstraintFingerprintSeed = 0x13198a2e03707344ull;

inline u64 ExtendConstraintFingerprint(u64 fp, u64 expr_hash, bool want_true) {
  return HashMix(HashMix(fp, expr_hash), want_true ? 1 : 2);
}

}  // namespace retrace

#endif  // RETRACE_SOLVER_EXPR_H_
