#include "src/solver/solver.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace retrace {
namespace {

bool ConstraintHolds(const ExprArena& arena, const Constraint& c, const std::vector<i64>& model) {
  const bool truthy = arena.Eval(c.expr, model) != 0;
  return truthy == c.want_true;
}

// Search state shared by the repair loop.
struct SearchCtx {
  const ExprArena& arena;
  ConstraintSpan constraints;
  const std::vector<Interval>& domains;
  const std::vector<i64>& seed;
  // var -> indices of constraints mentioning it.
  std::unordered_map<i32, std::vector<size_t>> var_constraints;
  // constraint -> variables mentioned.
  std::vector<std::vector<i32>> constraint_vars;
  u64 steps = 0;
  u64 max_steps = 0;

  bool Budget(u64 n = 1) {
    steps += n;
    return steps <= max_steps;
  }
};

Interval NarrowedDomain(const SearchCtx& ctx, i32 var) {
  Interval iv = var < static_cast<i32>(ctx.domains.size()) ? ctx.domains[var] : Interval{0, 255};
  auto it = ctx.var_constraints.find(var);
  if (it != ctx.var_constraints.end()) {
    // Iterate narrowing to a small fixed point; each pass can expose new
    // endpoint-disequality narrowings.
    for (int pass = 0; pass < 4; ++pass) {
      Interval before = iv;
      for (size_t ci : it->second) {
        NarrowForConstraint(ctx.arena, ctx.constraints[ci], var, &iv);
        if (iv.Empty()) {
          return iv;
        }
      }
      if (before == iv) {
        break;
      }
    }
  }
  return iv;
}

// Candidate values for `var`, most promising first. Includes the seed
// value, values related to constants in the constraints that mention the
// variable, the current values of co-occurring variables (valuable for
// equality chains like a[i] == b[j]), the narrowed domain endpoints, and —
// when the narrowed domain is small — every remaining value.
std::vector<i64> CandidatesFor(const SearchCtx& ctx, i32 var, const std::vector<i64>& model,
                               const Interval& domain, u64 max_enumeration) {
  std::vector<i64> out;
  std::unordered_set<i64> dedup;
  auto add = [&](i64 v) {
    if (domain.Contains(v) && dedup.insert(v).second) {
      out.push_back(v);
    }
  };
  if (var < static_cast<i32>(ctx.seed.size())) {
    add(ctx.seed[var]);
  }
  if (var < static_cast<i32>(model.size())) {
    add(model[var]);
  }
  auto it = ctx.var_constraints.find(var);
  if (it != ctx.var_constraints.end()) {
    for (size_t ci : it->second) {
      std::vector<i64> consts;
      ctx.arena.CollectConsts(ctx.constraints[ci].expr, &consts);
      for (i64 k : consts) {
        add(k);
        add(k + 1);
        add(k - 1);
      }
      for (i32 other : ctx.constraint_vars[ci]) {
        if (other != var && other < static_cast<i32>(model.size())) {
          add(model[other]);
          add(model[other] + 1);
          add(model[other] - 1);
        }
      }
    }
  }
  add(0);
  add(1);
  add(domain.lo);
  add(domain.hi);
  if (domain.Size() <= max_enumeration) {
    for (i64 v = domain.lo; v <= domain.hi; ++v) {
      add(v);
      if (v == INT64_MAX) {
        break;
      }
    }
  }
  return out;
}

// A prepared backtracking problem: the variable order plus, per depth, the
// constraints that become fully assigned once vars[0..depth] have values
// (forward checking), and the constraints that spill outside the variable
// set (checked at the leaf against the surrounding model).
struct BacktrackPlan {
  std::vector<i32> vars;
  std::vector<std::vector<size_t>> check_at_depth;
  std::vector<size_t> leaf_extra;
};

BacktrackPlan MakeBacktrackPlan(const SearchCtx& ctx, const std::vector<i32>& vars) {
  BacktrackPlan plan;
  plan.vars = vars;
  plan.check_at_depth.resize(vars.size());
  std::unordered_map<i32, size_t> position;
  for (size_t i = 0; i < vars.size(); ++i) {
    position[vars[i]] = i;
  }
  std::unordered_set<size_t> touching;
  for (i32 v : vars) {
    auto it = ctx.var_constraints.find(v);
    if (it == ctx.var_constraints.end()) {
      continue;
    }
    touching.insert(it->second.begin(), it->second.end());
  }
  for (size_t ci : touching) {
    size_t max_depth = 0;
    bool inside = true;
    for (i32 v : ctx.constraint_vars[ci]) {
      auto it = position.find(v);
      if (it == position.end()) {
        inside = false;
        break;
      }
      max_depth = std::max(max_depth, it->second);
    }
    if (inside) {
      plan.check_at_depth[max_depth].push_back(ci);
    } else {
      plan.leaf_extra.push_back(ci);
    }
  }
  return plan;
}

// Depth-first search with forward checking. `exhaustive` is cleared
// whenever a candidate list did not cover the variable's full narrowed
// domain (then a failure is not a proof of unsatisfiability).
bool Backtrack(SearchCtx& ctx, const BacktrackPlan& plan, size_t depth, std::vector<i64>& model,
               u64 max_enumeration, bool* exhaustive) {
  if (depth == plan.vars.size()) {
    for (size_t ci : plan.leaf_extra) {
      if (!ConstraintHolds(ctx.arena, ctx.constraints[ci], model)) {
        return false;
      }
    }
    return true;
  }
  const i32 var = plan.vars[depth];
  const Interval domain = NarrowedDomain(ctx, var);
  if (domain.Empty()) {
    return false;
  }
  const std::vector<i64> candidates = CandidatesFor(ctx, var, model, domain, max_enumeration);
  if (domain.Size() > candidates.size()) {
    *exhaustive = false;
  }
  const i64 saved = var < static_cast<i32>(model.size()) ? model[var] : 0;
  for (i64 cand : candidates) {
    if (!ctx.Budget()) {
      *exhaustive = false;
      break;
    }
    model[var] = cand;
    bool pruned = false;
    for (size_t ci : plan.check_at_depth[depth]) {
      if (!ConstraintHolds(ctx.arena, ctx.constraints[ci], model)) {
        pruned = true;
        break;
      }
    }
    if (pruned) {
      continue;
    }
    if (Backtrack(ctx, plan, depth + 1, model, max_enumeration, exhaustive)) {
      return true;
    }
  }
  model[var] = saved;
  return false;
}

}  // namespace

bool Solver::Satisfies(ConstraintSpan constraints, const std::vector<i64>& model) const {
  for (size_t i = 0; i < constraints.size(); ++i) {
    if (!ConstraintHolds(arena_, constraints[i], model)) {
      return false;
    }
  }
  return true;
}

SolveResult Solver::Solve(ConstraintSpan constraints, const std::vector<Interval>& domains,
                          const std::vector<i64>& seed) const {
  SearchCtx ctx{arena_, constraints, domains, seed, {}, {}, 0, options_.max_steps};

  // Index variables per constraint.
  ctx.constraint_vars.resize(constraints.size());
  i32 max_var = -1;
  for (size_t i = 0; i < constraints.size(); ++i) {
    arena_.CollectVars(constraints[i].expr, &ctx.constraint_vars[i]);
    for (i32 v : ctx.constraint_vars[i]) {
      ctx.var_constraints[v].push_back(i);
      max_var = std::max(max_var, v);
    }
  }

  // Initial model: seed clamped into domains.
  std::vector<i64> model(std::max<size_t>(seed.size(), static_cast<size_t>(max_var) + 1), 0);
  for (size_t i = 0; i < model.size(); ++i) {
    i64 v = i < seed.size() ? seed[i] : 0;
    const Interval dom = i < domains.size() ? domains[i] : Interval{0, 255};
    v = std::clamp(v, dom.lo, dom.hi);
    model[i] = v;
  }

  SolveResult result;
  bool all_exhaustive = true;
  for (u64 round = 0; round < constraints.size() + 16; ++round) {
    // Find the first unsatisfied constraint.
    size_t unsat = constraints.size();
    for (size_t i = 0; i < constraints.size(); ++i) {
      if (!ctx.Budget()) {
        result.status = SolveStatus::kUnknown;
        result.steps = ctx.steps;
        return result;
      }
      if (!ConstraintHolds(arena_, constraints[i], model)) {
        unsat = i;
        break;
      }
    }
    if (unsat == constraints.size()) {
      result.status = SolveStatus::kSat;
      result.model = std::move(model);
      result.steps = ctx.steps;
      return result;
    }

    // Phase 1: repair just this constraint's variables.
    bool exhaustive = true;
    std::vector<i64> scratch = model;
    const BacktrackPlan local_plan = MakeBacktrackPlan(ctx, ctx.constraint_vars[unsat]);
    if (Backtrack(ctx, local_plan, 0, scratch, options_.max_enumeration, &exhaustive)) {
      model = std::move(scratch);
      continue;
    }

    // Phase 2: joint repair over the full connected component of variables
    // reachable from the unsatisfied constraint via shared constraints
    // (equality chains like a[0]==b[0]==...=='z' need every link).
    std::vector<i32> joint = ctx.constraint_vars[unsat];
    std::unordered_set<i32> joint_set(joint.begin(), joint.end());
    constexpr size_t kMaxJointVars = 24;
    bool component_truncated = false;
    for (size_t head = 0; head < joint.size(); ++head) {
      if (joint.size() > kMaxJointVars) {
        component_truncated = true;
        break;
      }
      for (size_t ci : ctx.var_constraints[joint[head]]) {
        for (i32 w : ctx.constraint_vars[ci]) {
          if (joint_set.insert(w).second) {
            joint.push_back(w);
          }
        }
      }
    }
    if (joint.size() > kMaxJointVars) {
      joint.resize(kMaxJointVars);
      component_truncated = true;
    }
    if (component_truncated) {
      exhaustive = false;
    }
    scratch = model;
    bool joint_exhaustive = true;
    const BacktrackPlan joint_plan = MakeBacktrackPlan(ctx, joint);
    if (Backtrack(ctx, joint_plan, 0, scratch, options_.max_enumeration, &joint_exhaustive)) {
      model = std::move(scratch);
      continue;
    }
    all_exhaustive = exhaustive && joint_exhaustive && all_exhaustive;

    // The constraint could not be repaired. An UNSAT verdict is only sound
    // when the search enumerated the whole cross product of the narrowed
    // domains over the complete connected component; otherwise give up
    // without a verdict.
    result.status = all_exhaustive && !component_truncated && joint_exhaustive
                        ? SolveStatus::kUnsat
                        : SolveStatus::kUnknown;
    result.steps = ctx.steps;
    return result;
  }
  result.status = SolveStatus::kUnknown;
  result.steps = ctx.steps;
  return result;
}

}  // namespace retrace
