#include "src/solver/expr.h"

#include <algorithm>
#include <functional>
#include <sstream>

namespace retrace {

bool ExprOpIsBinary(ExprOp op) {
  switch (op) {
    case ExprOp::kConst:
    case ExprOp::kVar:
    case ExprOp::kNeg:
    case ExprOp::kBitNot:
    case ExprOp::kLogicalNot:
    case ExprOp::kTruncChar:
      return false;
    default:
      return true;
  }
}

bool ExprOpIsComparison(ExprOp op) {
  switch (op) {
    case ExprOp::kEq:
    case ExprOp::kNe:
    case ExprOp::kLt:
    case ExprOp::kLe:
    case ExprOp::kGt:
    case ExprOp::kGe:
      return true;
    default:
      return false;
  }
}

const char* ExprOpName(ExprOp op) {
  switch (op) {
    case ExprOp::kConst: return "const";
    case ExprOp::kVar: return "var";
    case ExprOp::kAdd: return "+";
    case ExprOp::kSub: return "-";
    case ExprOp::kMul: return "*";
    case ExprOp::kDiv: return "/";
    case ExprOp::kRem: return "%";
    case ExprOp::kAnd: return "&";
    case ExprOp::kOr: return "|";
    case ExprOp::kXor: return "^";
    case ExprOp::kShl: return "<<";
    case ExprOp::kShr: return ">>";
    case ExprOp::kEq: return "==";
    case ExprOp::kNe: return "!=";
    case ExprOp::kLt: return "<";
    case ExprOp::kLe: return "<=";
    case ExprOp::kGt: return ">";
    case ExprOp::kGe: return ">=";
    case ExprOp::kNeg: return "neg";
    case ExprOp::kBitNot: return "~";
    case ExprOp::kLogicalNot: return "!";
    case ExprOp::kTruncChar: return "truncc";
  }
  return "?";
}

i64 ExprArena::EvalBin(ExprOp op, i64 a, i64 b) {
  switch (op) {
    case ExprOp::kAdd: return static_cast<i64>(static_cast<u64>(a) + static_cast<u64>(b));
    case ExprOp::kSub: return static_cast<i64>(static_cast<u64>(a) - static_cast<u64>(b));
    case ExprOp::kMul: return static_cast<i64>(static_cast<u64>(a) * static_cast<u64>(b));
    case ExprOp::kDiv: return b == 0 ? 0 : (a == INT64_MIN && b == -1 ? a : a / b);
    case ExprOp::kRem: return b == 0 ? 0 : (a == INT64_MIN && b == -1 ? 0 : a % b);
    case ExprOp::kAnd: return a & b;
    case ExprOp::kOr: return a | b;
    case ExprOp::kXor: return a ^ b;
    case ExprOp::kShl: return static_cast<i64>(static_cast<u64>(a) << (static_cast<u64>(b) & 63));
    case ExprOp::kShr: return a >> (static_cast<u64>(b) & 63);
    case ExprOp::kEq: return a == b ? 1 : 0;
    case ExprOp::kNe: return a != b ? 1 : 0;
    case ExprOp::kLt: return a < b ? 1 : 0;
    case ExprOp::kLe: return a <= b ? 1 : 0;
    case ExprOp::kGt: return a > b ? 1 : 0;
    case ExprOp::kGe: return a >= b ? 1 : 0;
    default:
      FatalError("EvalBin: non-binary op");
  }
}

i64 ExprArena::EvalUn(ExprOp op, i64 a) {
  switch (op) {
    case ExprOp::kNeg: return static_cast<i64>(-static_cast<u64>(a));
    case ExprOp::kBitNot: return ~a;
    case ExprOp::kLogicalNot: return a == 0 ? 1 : 0;
    case ExprOp::kTruncChar: return static_cast<i64>(static_cast<u8>(a));
    default:
      FatalError("EvalUn: non-unary op");
  }
}

ExprArena::ExprArena() { nodes_.reserve(1024); }

ExprRef ExprArena::Intern(ExprNode node) {
  u64 h = static_cast<u64>(node.op) * 0x9e3779b97f4a7c15ull;
  h ^= static_cast<u64>(node.a) + 0x517cc1b727220a95ull + (h << 6) + (h >> 2);
  h ^= static_cast<u64>(node.b) + 0x2545f4914f6cdd1dull + (h << 6) + (h >> 2);
  h ^= std::hash<i64>{}(node.imm) + (h << 6) + (h >> 2);
  auto& bucket = dedup_[h];
  for (ExprRef ref : bucket) {
    const ExprNode& existing = nodes_[ref];
    if (existing.op == node.op && existing.a == node.a && existing.b == node.b &&
        existing.imm == node.imm) {
      return ref;
    }
  }
  const ExprRef ref = static_cast<ExprRef>(nodes_.size());
  nodes_.push_back(node);
  bucket.push_back(ref);
  return ref;
}

ExprRef ExprArena::MkConst(i64 value) {
  return Intern(ExprNode{ExprOp::kConst, kNoExpr, kNoExpr, value});
}

ExprRef ExprArena::MkVar(i32 var_id) {
  return Intern(ExprNode{ExprOp::kVar, kNoExpr, kNoExpr, var_id});
}

ExprRef ExprArena::MkUn(ExprOp op, ExprRef a) {
  Check(a != kNoExpr, "MkUn: missing operand");
  if (IsConst(a)) {
    return MkConst(EvalUn(op, ConstValue(a)));
  }
  // trunc(trunc(x)) == trunc(x); !!x is not simplified (not equal to x).
  if (op == ExprOp::kTruncChar && nodes_[a].op == ExprOp::kTruncChar) {
    return a;
  }
  return Intern(ExprNode{op, a, kNoExpr, 0});
}

ExprRef ExprArena::MkBin(ExprOp op, ExprRef a, ExprRef b) {
  Check(a != kNoExpr && b != kNoExpr, "MkBin: missing operand");
  if (IsConst(a) && IsConst(b)) {
    return MkConst(EvalBin(op, ConstValue(a), ConstValue(b)));
  }
  // Light algebraic identities; keeps chains like x+0 and 1*x small.
  if (IsConst(b)) {
    const i64 v = ConstValue(b);
    if (v == 0 && (op == ExprOp::kAdd || op == ExprOp::kSub || op == ExprOp::kOr ||
                   op == ExprOp::kXor || op == ExprOp::kShl || op == ExprOp::kShr)) {
      return a;
    }
    if (v == 1 && (op == ExprOp::kMul || op == ExprOp::kDiv)) {
      return a;
    }
    if (v == 0 && (op == ExprOp::kMul || op == ExprOp::kAnd)) {
      return MkConst(0);
    }
  }
  if (IsConst(a)) {
    const i64 v = ConstValue(a);
    if (v == 0 && (op == ExprOp::kAdd || op == ExprOp::kOr || op == ExprOp::kXor)) {
      return b;
    }
    if (v == 1 && op == ExprOp::kMul) {
      return b;
    }
    if (v == 0 && (op == ExprOp::kMul || op == ExprOp::kAnd)) {
      return MkConst(0);
    }
  }
  if (a == b) {
    switch (op) {
      case ExprOp::kSub:
      case ExprOp::kXor:
        return MkConst(0);
      case ExprOp::kEq:
      case ExprOp::kLe:
      case ExprOp::kGe:
        return MkConst(1);
      case ExprOp::kNe:
      case ExprOp::kLt:
      case ExprOp::kGt:
        return MkConst(0);
      case ExprOp::kAnd:
      case ExprOp::kOr:
        return a;
      default:
        break;
    }
  }
  return Intern(ExprNode{op, a, b, 0});
}

i64 ExprArena::Eval(ExprRef ref, const std::vector<i64>& assignment) const {
  const ExprNode& n = nodes_[ref];
  switch (n.op) {
    case ExprOp::kConst:
      return n.imm;
    case ExprOp::kVar: {
      const size_t id = static_cast<size_t>(n.imm);
      return id < assignment.size() ? assignment[id] : 0;
    }
    default:
      if (ExprOpIsBinary(n.op)) {
        return EvalBin(n.op, Eval(n.a, assignment), Eval(n.b, assignment));
      }
      return EvalUn(n.op, Eval(n.a, assignment));
  }
}

void ExprArena::CollectVars(ExprRef ref, std::vector<i32>* vars) const {
  // Iterative DFS; shadow DAGs can be deep for accumulator loops.
  std::vector<ExprRef> stack{ref};
  std::vector<bool> seen(nodes_.size(), false);
  while (!stack.empty()) {
    const ExprRef cur = stack.back();
    stack.pop_back();
    if (cur == kNoExpr || seen[cur]) {
      continue;
    }
    seen[cur] = true;
    const ExprNode& n = nodes_[cur];
    if (n.op == ExprOp::kVar) {
      const i32 id = static_cast<i32>(n.imm);
      bool present = false;
      for (i32 v : *vars) {
        if (v == id) {
          present = true;
          break;
        }
      }
      if (!present) {
        vars->push_back(id);
      }
      continue;
    }
    if (n.a != kNoExpr) {
      stack.push_back(n.a);
    }
    if (n.b != kNoExpr) {
      stack.push_back(n.b);
    }
  }
}

void ExprArena::CollectConsts(ExprRef ref, std::vector<i64>* consts) const {
  std::vector<ExprRef> stack{ref};
  std::vector<bool> seen(nodes_.size(), false);
  while (!stack.empty()) {
    const ExprRef cur = stack.back();
    stack.pop_back();
    if (cur == kNoExpr || seen[cur]) {
      continue;
    }
    seen[cur] = true;
    const ExprNode& n = nodes_[cur];
    if (n.op == ExprOp::kConst) {
      consts->push_back(n.imm);
      continue;
    }
    if (n.a != kNoExpr) {
      stack.push_back(n.a);
    }
    if (n.b != kNoExpr) {
      stack.push_back(n.b);
    }
  }
}

PortableTrace ExportTrace(const ExprArena& arena, const std::vector<Constraint>& constraints) {
  PortableTrace out;
  // Work proportional to the trace's reachable set, not the arena:
  // worker arenas grow monotonically across a search, so a full-arena
  // scan per export would turn quadratic over a long run. Arena refs are
  // append-ordered (children always carry smaller refs than parents), so
  // sorting the reachable refs yields a topological order for free.
  std::unordered_map<ExprRef, ExprRef> remap;  // Doubles as the seen-set.
  std::vector<ExprRef> reachable;
  std::vector<ExprRef> stack;
  auto visit = [&](ExprRef ref) {
    if (ref != kNoExpr && remap.emplace(ref, kNoExpr).second) {
      reachable.push_back(ref);
      stack.push_back(ref);
    }
  };
  for (const Constraint& c : constraints) {
    visit(c.expr);
  }
  while (!stack.empty()) {
    const ExprNode& n = arena.node(stack.back());
    stack.pop_back();
    visit(n.a);
    visit(n.b);
  }
  std::sort(reachable.begin(), reachable.end());
  out.nodes.reserve(reachable.size());
  for (const ExprRef ref : reachable) {
    ExprNode node = arena.node(ref);
    if (node.a != kNoExpr) {
      node.a = remap.at(node.a);
    }
    if (node.b != kNoExpr) {
      node.b = remap.at(node.b);
    }
    remap[ref] = static_cast<ExprRef>(out.nodes.size());
    out.nodes.push_back(node);
  }
  out.constraints.reserve(constraints.size());
  for (const Constraint& c : constraints) {
    out.constraints.push_back(
        Constraint{c.expr == kNoExpr ? kNoExpr : remap.at(c.expr), c.want_true});
  }
  return out;
}

std::vector<Constraint> ImportConstraints(const PortableTrace& trace, size_t len,
                                          bool negate_last, ExprArena* arena) {
  Check(len <= trace.constraints.size(), "ImportConstraints: len out of range");
  // Rebuild through the public constructors so interning and folding
  // invariants hold in the target arena. Exported nodes are already in
  // canonical (folded) form, so re-interning is structure-preserving.
  std::vector<ExprRef> remap(trace.nodes.size(), kNoExpr);
  for (size_t i = 0; i < trace.nodes.size(); ++i) {
    const ExprNode& n = trace.nodes[i];
    switch (n.op) {
      case ExprOp::kConst:
        remap[i] = arena->MkConst(n.imm);
        break;
      case ExprOp::kVar:
        remap[i] = arena->MkVar(static_cast<i32>(n.imm));
        break;
      default:
        if (ExprOpIsBinary(n.op)) {
          remap[i] = arena->MkBin(n.op, remap[n.a], remap[n.b]);
        } else {
          remap[i] = arena->MkUn(n.op, remap[n.a]);
        }
    }
  }
  std::vector<Constraint> out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    const Constraint& c = trace.constraints[i];
    out.push_back(Constraint{c.expr == kNoExpr ? kNoExpr : remap[c.expr], c.want_true});
  }
  if (negate_last && !out.empty()) {
    out.back().want_true = !out.back().want_true;
  }
  return out;
}

namespace {

// Node hash shared by FingerprintConstraints (over portable nodes) and
// ExprArena::StructuralHash (over arena nodes): the two must agree so a
// slice solved from an imported trace hits cache entries produced from
// native arena expressions.
u64 NodeHash(const ExprNode& n, u64 hash_a, u64 hash_b) {
  u64 h = HashMix(0x243f6a8885a308d3ull, static_cast<u64>(n.op));
  h = HashMix(h, static_cast<u64>(n.imm));
  if (n.a != kNoExpr) {
    h = HashMix(h, hash_a);
  }
  if (n.b != kNoExpr) {
    h = HashMix(h, hash_b);
  }
  return h;
}

}  // namespace

u64 ExprArena::StructuralHash(ExprRef ref) const {
  if (struct_hash_.size() < nodes_.size()) {
    struct_hash_.resize(nodes_.size(), 0);
  }
  std::vector<ExprRef> stack{ref};
  while (!stack.empty()) {
    const ExprRef cur = stack.back();
    if (struct_hash_[cur] != 0) {
      stack.pop_back();
      continue;
    }
    const ExprNode& n = nodes_[cur];
    bool ready = true;
    if (n.a != kNoExpr && struct_hash_[n.a] == 0) {
      stack.push_back(n.a);
      ready = false;
    }
    if (n.b != kNoExpr && struct_hash_[n.b] == 0) {
      stack.push_back(n.b);
      ready = false;
    }
    if (!ready) {
      continue;
    }
    const u64 h = NodeHash(n, n.a != kNoExpr ? struct_hash_[n.a] : 0,
                           n.b != kNoExpr ? struct_hash_[n.b] : 0);
    struct_hash_[cur] = h != 0 ? h : 1;  // 0 is the not-yet-computed mark.
    stack.pop_back();
  }
  return struct_hash_[ref];
}

std::vector<u64> PortableNodeHashes(const PortableTrace& trace) {
  // Topological order guarantees children are hashed before their parents.
  std::vector<u64> node_hash(trace.nodes.size(), 0);
  for (size_t i = 0; i < trace.nodes.size(); ++i) {
    const ExprNode& n = trace.nodes[i];
    node_hash[i] = NodeHash(n, n.a != kNoExpr ? node_hash[n.a] : 0,
                            n.b != kNoExpr ? node_hash[n.b] : 0);
  }
  return node_hash;
}

u64 FingerprintConstraints(const PortableTrace& trace, size_t len, bool negate_last) {
  return FingerprintConstraints(trace, len, negate_last, PortableNodeHashes(trace));
}

u64 FingerprintConstraints(const PortableTrace& trace, size_t len, bool negate_last,
                           const std::vector<u64>& node_hash) {
  Check(len <= trace.constraints.size(), "FingerprintConstraints: len out of range");
  u64 h = kConstraintFingerprintSeed;
  for (size_t i = 0; i < len; ++i) {
    const Constraint& c = trace.constraints[i];
    bool want = c.want_true;
    if (negate_last && i + 1 == len) {
      want = !want;
    }
    h = ExtendConstraintFingerprint(h, c.expr == kNoExpr ? 0 : node_hash[c.expr], want);
  }
  return h;
}

std::string ExprArena::ToString(ExprRef ref) const {
  const ExprNode& n = nodes_[ref];
  std::ostringstream os;
  switch (n.op) {
    case ExprOp::kConst:
      os << n.imm;
      break;
    case ExprOp::kVar:
      os << "v" << n.imm;
      break;
    default:
      if (ExprOpIsBinary(n.op)) {
        os << "(" << ToString(n.a) << " " << ExprOpName(n.op) << " " << ToString(n.b) << ")";
      } else {
        os << ExprOpName(n.op) << "(" << ToString(n.a) << ")";
      }
  }
  return os.str();
}

}  // namespace retrace
