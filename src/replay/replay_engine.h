// Developer-site bug reproduction: symbolic execution guided by the
// partial branch log (paper §3).
//
// The engine performs runs with concrete inputs. At every executed branch
// the four cases of §3.1 apply:
//   1. symbolic, not instrumented  -> record the constraint; both
//      directions are explorable (pending set with the negation).
//   2. symbolic, instrumented      -> compare with the next log bit;
//      (a) match: keep going; (b) mismatch: build the constraint set that
//      forces the logged direction, push it, abort the run.
//   3. concrete, instrumented      -> compare with the next log bit;
//      (a) match: keep going; (b) mismatch: abort (an earlier wrong turn
//      at an uninstrumented symbolic branch).
//   4. concrete, not instrumented  -> keep going.
// Aborted runs pull the next pending constraint set (depth-first by
// default), solve it, and restart with the resulting input. Reproduction
// succeeds when a run crashes at the reported crash site.
#ifndef RETRACE_REPLAY_REPLAY_ENGINE_H_
#define RETRACE_REPLAY_REPLAY_ENGINE_H_

#include <string>
#include <vector>

#include "src/concolic/cellrun.h"
#include "src/core/report.h"
#include "src/solver/solver.h"
#include "src/support/rng.h"

namespace retrace {

struct ReplayConfig {
  u64 max_runs = 20'000;
  i64 wall_ms = -1;               // The paper's 1-hour allotment (scaled).
  u64 total_steps = 4'000'000'000ull;
  u64 max_steps_per_run = 100'000'000;
  SolverOptions solver;
  u64 seed = 42;                  // Initial random input.
  bool use_syscall_log = true;    // Replay logged syscall results (§3.3).
  enum class Pick { kDfs, kFifo } pick = Pick::kDfs;  // Pending-set heuristic.
};

struct ReplayStats {
  u64 runs = 0;
  u64 solver_calls = 0;
  u64 aborts_forced_direction = 0;  // Case 2b.
  u64 aborts_concrete_mismatch = 0;  // Case 3b.
  u64 aborts_log_exhausted = 0;
  u64 crashes_wrong_site = 0;
  u64 pending_peak = 0;
};

struct ReplayResult {
  bool reproduced = false;
  std::vector<std::string> witness_argv;  // Inputs that activate the bug.
  std::vector<i64> witness_cells;
  CrashSite crash;
  ReplayStats stats;
  bool budget_exhausted = false;
  double wall_seconds = 0.0;
};

class ReplayEngine {
 public:
  // `plan` must be the plan the report's binary shipped with.
  ReplayEngine(const IrModule& module, const InstrumentationPlan& plan, const BugReport& report,
               ExprArena* arena)
      : module_(module), plan_(plan), report_(report), arena_(arena) {}

  ReplayResult Reproduce(const ReplayConfig& config);

 private:
  const IrModule& module_;
  const InstrumentationPlan& plan_;
  const BugReport& report_;
  ExprArena* arena_;
};

}  // namespace retrace

#endif  // RETRACE_REPLAY_REPLAY_ENGINE_H_
