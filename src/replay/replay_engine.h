// Developer-site bug reproduction: symbolic execution guided by the
// partial branch log (paper §3).
//
// The engine performs runs with concrete inputs. At every executed branch
// the four cases of §3.1 apply:
//   1. symbolic, not instrumented  -> record the constraint; both
//      directions are explorable (pending set with the negation).
//   2. symbolic, instrumented      -> compare with the next log bit;
//      (a) match: keep going; (b) mismatch: build the constraint set that
//      forces the logged direction, push it, abort the run.
//   3. concrete, instrumented      -> compare with the next log bit;
//      (a) match: keep going; (b) mismatch: abort (an earlier wrong turn
//      at an uninstrumented symbolic branch).
//   4. concrete, not instrumented  -> keep going.
// Aborted runs pull the next pending constraint set (depth-first by
// default), solve it over a prefix view of its trace (no per-pop copy),
// and restart with the resulting input. Reproduction succeeds when a run
// crashes at the reported crash site.
//
// Three schedulers, selected by ReplayConfig:
//   - num_workers == 1, num_shards <= 1: the original sequential loop,
//     bit-identical to the pre-parallel engine when solver_cache is off.
//   - num_workers > 1: N threads with thread-confined interpreter/arena/
//     solver contexts share a work-stealing frontier, exchange pending
//     sets in arena-portable form, dedup tried sets fleet-wide, share
//     slice verdicts through a SliceCache, and cancel on first crash.
//   - num_shards > 1: the coordinator in src/dist/ forks num_shards
//     processes, each running the thread scheduler above; pending sets
//     and slice verdicts travel between them over a versioned binary
//     wire format (src/dist/wire.h).
#ifndef RETRACE_REPLAY_REPLAY_ENGINE_H_
#define RETRACE_REPLAY_REPLAY_ENGINE_H_

#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/concolic/cellrun.h"
#include "src/core/report.h"
#include "src/solver/incremental.h"
#include "src/solver/solver.h"
#include "src/support/rng.h"

namespace retrace {

/// How distributed shard processes are connected to the coordinator
/// (only consulted when ReplayConfig::num_shards > 1).
enum class ReplayTransport {
  kFork,  // fork() + socketpairs on this host (the historical default).
  kTcp,   // TCP sockets: remote hosts join via tools/retrace_shardd.
};

/// Program sources a TCP shard needs to rebuild the module on a remote
/// host (lowering is deterministic, so branch ids match the
/// coordinator's). Filled automatically by Pipeline::Reproduce; required
/// whenever transport == kTcp.
struct ReplayProgramSources {
  std::string app;
  std::vector<std::string> libs;
};

struct ReplayConfig {
  /// Builds a config from the documented RETRACE_* environment knobs
  /// (docs/BENCHMARKS.md): RETRACE_REPLAY_WORKERS, RETRACE_REPLAY_SHARDS
  /// (first entry of a comma-separated sweep list), RETRACE_REPLAY_PICK,
  /// RETRACE_EXEC_ENGINE, RETRACE_SOLVER_CACHE, RETRACE_REPLAY_PRUNE,
  /// RETRACE_REPLAY_TRANSPORT
  /// and RETRACE_GOSSIP_INTERVAL_MS. Every knob is parsed strictly
  /// (src/support/env.h): an unset knob keeps the field default, garbage
  /// prints the offending value and exits with code 2 — a replay whose
  /// configuration was silently ignored produces numbers nobody should
  /// trust. Budget fields (max_runs, wall_ms, seed) are NOT environment
  /// knobs; callers set them explicitly.
  static ReplayConfig FromEnv();

  u64 max_runs = 20'000;
  i64 wall_ms = -1;               // The paper's 1-hour allotment (scaled).
  u64 total_steps = 4'000'000'000ull;
  u64 max_steps_per_run = 100'000'000;
  SolverOptions solver;
  u64 seed = 42;                  // Initial random input.
  bool use_syscall_log = true;    // Replay logged syscall results (§3.3).
  // Pending-set heuristic. kLogBits prioritizes pendings whose prefix
  // consumed the most branch-log bits — the deepest on-log progress — the
  // bet for scenarios where DFS/FIFO drown in off-log subtrees.
  // kDirection prioritizes pendings whose constraint set *forces* the
  // most logged directions (the case-2a/2b constraints of §3.1 — the
  // observer signal behind aborts_forced_direction): unlike raw log
  // bits, concrete instrumented branches consume bits without binding
  // the solver to the log, so kDirection ranks by how hard the set
  // actually pins the run to the recorded execution.
  // kPortfolio is only meaningful with num_workers > 1: worker 0 runs
  // DFS, worker 1 FIFO, worker 2 log-bits, worker 3 direction-aware, and
  // the rest adaptive — they start as randomized DFS with per-worker
  // seeds and periodically promote themselves to whichever fixed
  // discipline is producing the best on-log-run rate
  // (aborts_forced_direction / runs) on this scenario, so one search
  // discipline's pathology does not stall the whole fleet and the best
  // one gains workers over time (ReplayStats::promotions).
  enum class Pick { kDfs, kFifo, kPortfolio, kLogBits, kDirection } pick = Pick::kDfs;
  // Concolic executions in flight *per process*. 1 = the original
  // sequential engine; 0 = one per hardware thread.
  u32 num_workers = 1;
  // Replay shard processes. <= 1 keeps everything in-process (the engine
  // above, bit-identical to its pre-distributed behavior). N > 1 forks N
  // shard processes — each running num_workers threads — from a
  // coordinator that partitions an initial pending-set frontier across
  // them, gossips slice-cache verdicts between them, and cancels the
  // fleet on the first reproduced crash (src/dist/coordinator.h). Fork
  // happens on the calling thread; call from a single-threaded context.
  u32 num_shards = 1;
  // Incremental solving layer: partition each pending set into
  // independent slices and share slice SAT/UNSAT verdicts fleet-wide
  // (src/solver/incremental.h). Off = the monolithic solver of the
  // original engine; num_workers == 1 with this off is bit-identical to
  // the pre-parallel sequential engine.
  bool solver_cache = true;
  // Upper bound on resident SliceCache entries (0 = unbounded, the
  // historical behavior). Long-horizon daemons reusing one search budget
  // across reports want a bound; evictions surface in
  // ReplayStats::slice_evictions.
  u64 slice_cache_capacity = 0;
  // Pendings a parallel worker pops (and solves) per frontier visit.
  // Batching lets sibling pendings — which share almost all slices — hit
  // the caches back to back while the worker holds its own deque's items
  // anyway; extras beyond the first never come from stealing.
  u32 solve_batch = 8;
  // Prefix-subsumption pruning: drop a pending at Push time when a
  // structurally identical constraint set was already executed by some
  // run or already published to the frontier (fleet-wide FingerprintSet;
  // ReplayStats::pendings_pruned). Sound — the pruned pending's subtree
  // stays reachable through its subsumer — but it changes run counts,
  // so it defaults off: the 1-worker legacy path is bit-identical only
  // with it off.
  bool prune_subsumed = false;
  // Execution engine for every replay run (src/exec/engine.h). kDefault
  // resolves the RETRACE_EXEC_ENGINE knob; the two engines are
  // behaviorally bit-identical, so this only moves wall-clock. Resolved
  // to a concrete engine before shipping in the kJob codec (wire v6) so
  // every shard runs the same engine as the coordinator.
  ExecEngineKind engine = ExecEngineKind::kDefault;
  // Dynamic-analysis corpus seeds: concrete input-cell models (the shape
  // of AnalysisResult::corpus / AnalysisConfig::extra_seed_models) run
  // by the fleet right after each worker's initial random input, so the
  // search radiates from exploration-discovered prefixes (deep protocol
  // byte-ladders) instead of random bytes alone. Partitioned across the
  // fleet: shard s runs seeds with index % num_shards == s, and within a
  // shard workers split that slice round-robin — no seed runs twice.
  // Ships to remote shards inside the kJob config codec. Empty (the
  // default) changes nothing.
  std::vector<std::vector<i64>> corpus_seeds;
  // ----- Distributed mode only (ignored when num_shards <= 1) -----
  // Shard transport. kFork (default) forks children over socketpairs —
  // bit-identical to the pre-transport coordinator. kTcp makes the
  // coordinator listen on `tcp_listen` and accept shard connections:
  // remote hosts join the fleet by running `retrace_shardd <host:port>`
  // against a *fixed* listen port; with `shard_endpoints` set the
  // coordinator instead dials out to daemons waiting in `retrace_shardd
  // --listen` mode; with neither — and the default ephemeral listen
  // port ":0", which no remote host could target — the coordinator
  // self-spawns local children that connect over loopback (the full TCP
  // path on one machine, used by tests/CI).
  ReplayTransport transport = ReplayTransport::kFork;
  // Coordinator listen address for kTcp, "host:port"; port 0 binds an
  // ephemeral port (loopback self-spawn and tests).
  std::string tcp_listen = "127.0.0.1:0";
  // kTcp dial-out targets: "host:port" per waiting `retrace_shardd
  // --listen` daemon. Fewer endpoints than shards leaves the remaining
  // slots to inbound connections on `tcp_listen`.
  std::vector<std::string> shard_endpoints;
  // Shard gossip pump cadence in milliseconds: how long the pump waits on
  // the coordinator socket per iteration, which bounds the latency of
  // verdict gossip, stop delivery and re-balance traffic. Clamped to
  // [1, 1000].
  int gossip_interval_ms = 20;
  // Heartbeat cadence riding the gossip pump (wire v5): the shard sends
  // kHeartbeat to the coordinator and the coordinator to every shard at
  // least this often, so silence is meaningful on an otherwise idle
  // channel. 0 disables outbound heartbeats. Ships in the kJob config.
  int heartbeat_interval_ms = 100;
  // Liveness deadline: a shard silent for this long is declared dead by
  // the coordinator (its unaccounted frontier pendings re-deal to live
  // shards); a shard that hears nothing from the coordinator for this
  // long self-terminates, so `retrace_shardd --listen` daemons never
  // orphan on a hung or partitioned coordinator. 0 disables both
  // deadlines (death is then only detected on channel close/corruption).
  int heartbeat_timeout_ms = 10'000;
  // Deterministic fault injection for the dist layer (tests/CI only):
  // comma-separated `<target>:<action><trigger>` clauses, where target is
  // `shardN` or `all`, action is `drop|delay|dup|corrupt|close|hang`, and
  // trigger is `@frameN` (the Nth frame received from that shard) or `%P`
  // (each frame with probability P percent, seeded from `seed`). Example:
  // "shard1:close@frame20,shard2:hang@frame5,all:corrupt%1". Parsed by
  // src/dist/fault.h; a malformed spec aborts loudly (exit 2, like every
  // other strict knob). Empty = no faults. Never shipped to shards.
  std::string fault_spec;
  // Program sources for kTcp (see ReplayProgramSources). Ignored by
  // kFork, which inherits the module by copy-on-write.
  ReplayProgramSources program;
  // Shared-secret auth token for the kTcp listener (RETRACE_SHARD_TOKEN,
  // wire v7). Non-empty: every joiner's kJoin must carry the same token
  // or the connection is refused before any job bytes ship. Empty: auth
  // off (trusted local setups). Never shipped inside the kJob codec —
  // the secret authenticates the channel, it must not ride it.
  std::string shard_token;
};

/// The search disciplines a portfolio fleet runs, in the index order of
/// ReplayStats::discipline_runs/discipline_on_log. kRandom is the
/// adaptive workers' starting state; promotion moves them onto one of
/// the four fixed disciplines.
enum class SearchDiscipline : u8 { kDfs = 0, kFifo, kLogBits, kDirection, kRandom };
inline constexpr size_t kNumDisciplines = 5;

inline const char* SearchDisciplineName(size_t d) {
  switch (static_cast<SearchDiscipline>(d)) {
    case SearchDiscipline::kDfs: return "dfs";
    case SearchDiscipline::kFifo: return "fifo";
    case SearchDiscipline::kLogBits: return "logbits";
    case SearchDiscipline::kDirection: return "direction";
    case SearchDiscipline::kRandom: return "random";
  }
  return "?";
}

/// Off-log death telemetry for one unlogged branch location (wire v4).
///
/// When a replay run aborts off the log (case 3b concrete mismatch, an
/// exhausted log, or a crash at the wrong site), the death is attributed
/// to the *last case-1 branch* the run executed — the most recent point
/// where the search took an unlogged turn the log could not check. A
/// branch collecting many attributed deaths is where the search is
/// blind: the refinement layer (src/instrument/refine.h) promotes such
/// branches into the plan.
struct BranchFailureCounts {
  u32 branch_id = 0;
  u64 deaths_concrete = 0;   // Case-3b aborts attributed here.
  u64 deaths_exhausted = 0;  // Log-exhausted aborts attributed here.
  u64 deaths_wrong_crash = 0;  // Wrong-site crashes attributed here.
  u64 blind_execs = 0;       // Case-1 (unlogged symbolic) executions.

  u64 Deaths() const { return deaths_concrete + deaths_exhausted + deaths_wrong_crash; }
};

/// Per-branch off-log death counts for a whole search, aggregated
/// losslessly across workers and shards (the per-branch counters sum,
/// exactly like ReplayWorkerStats into ReplayStats). Sparse and sorted
/// by branch_id — only branches with at least one case-1 execution or
/// attributed death appear.
struct ReplayFailureProfile {
  std::vector<BranchFailureCounts> branches;
  // Off-log deaths with no preceding case-1 branch in the run (the
  // divergence predates any unlogged symbolic turn — e.g. a different
  // random seed diverging at the very first instrumented branch).
  u64 deaths_unattributed = 0;

  // Losslessly folds `other` into this profile (counters sum per
  // branch id; the sparse union stays sorted).
  void Merge(const ReplayFailureProfile& other);
  const BranchFailureCounts* Find(u32 branch_id) const;
  u64 TotalDeaths() const;
  bool Empty() const { return branches.empty() && deaths_unattributed == 0; }
};

/// Counters for one worker of the parallel scheduler. The aggregate
/// ReplayStats sums these losslessly, so `stats.runs` etc. keep their
/// pre-parallel meaning at any worker count.
struct ReplayWorkerStats {
  u64 runs = 0;
  u64 solver_calls = 0;
  u64 aborts_forced_direction = 0;   // Case 2b.
  u64 aborts_concrete_mismatch = 0;  // Case 3b.
  u64 aborts_log_exhausted = 0;
  u64 crashes_wrong_site = 0;
  u64 steals = 0;        // Pending sets taken from another worker's deque.
  u64 dedup_skips = 0;   // Pending sets dropped: already tried fleet-wide.
  u64 cancelled_runs = 0;  // Runs aborted by first-crash-wins cancellation.
  // Incremental solving layer (zero when ReplayConfig::solver_cache off).
  u64 slices_solved = 0;     // Constraint slices sent to the local search.
  u64 slice_sat_hits = 0;    // Slices satisfied from the fleet-wide cache.
  u64 slice_unsat_hits = 0;  // Pendings rejected by the UNSAT cache.
  // Search-quality layer (all zero unless the matching knob is on).
  u64 pendings_pruned = 0;  // Dropped at Push by the subsumption index.
  u64 corpus_runs = 0;      // Runs seeded from ReplayConfig::corpus_seeds.
  u64 promotions = 0;       // Times this adaptive worker switched discipline.
};

/// Counters for one shard process of the distributed scheduler
/// (ReplayConfig::num_shards > 1), reported back over the wire and
/// paired with the coordinator's transport byte counts.
struct ReplayShardStats {
  u32 shard_id = 0;
  bool reproduced = false;   // This shard won the first-crash-wins race.
  u64 runs = 0;
  u64 solver_calls = 0;
  u64 pendings_seeded = 0;       // Frontier entries shipped at start.
  u64 verdicts_published = 0;    // Slice verdicts this shard gossiped out.
  u64 verdicts_imported = 0;     // Verdicts merged in from other shards.
  u64 pendings_exported = 0;     // Frontier entries carved off for starved peers.
  u64 pendings_imported = 0;     // Re-balanced entries merged into this frontier.
  u64 rebalance_rounds = 0;      // kWorkRequest cycles this shard initiated.
  u64 pendings_pruned = 0;       // Pendings this shard's subsumption index dropped.
  u64 wire_bytes_tx = 0;         // Coordinator -> shard bytes.
  u64 wire_bytes_rx = 0;         // Shard -> coordinator bytes.
  double wall_seconds = 0.0;
  // ----- Failure handling (wire v5) -----
  // This shard was declared dead mid-search (channel closed/corrupted or
  // the missed-heartbeat deadline expired) without reporting a result.
  bool lost = false;
  // Ledgered frontier pendings the coordinator re-injected into live
  // shards when *this* shard died. For lost shards `pendings_seeded` is
  // the coordinator's queue-time count (the shard never echoed one).
  u64 pendings_recovered = 0;
  // Missed-heartbeat deadline expiries the coordinator charged to this
  // shard (0 or 1 today: the first expiry declares it dead).
  u64 heartbeats_missed = 0;
};

/// Aggregate search statistics.
///
/// Single process: every counter is the lossless sum over `per_worker`.
/// Distributed (num_shards > 1): counters additionally include the
/// coordinator's scout runs (`harvest_runs` of `runs` happened in the
/// coordinator before sharding), `per_worker` concatenates every shard's
/// workers in shard order, and `per_shard` carries the per-process and
/// wire-transport breakdown.
struct ReplayStats {
  u64 runs = 0;
  u64 solver_calls = 0;
  u64 aborts_forced_direction = 0;  // Case 2b.
  u64 aborts_concrete_mismatch = 0;  // Case 3b.
  u64 aborts_log_exhausted = 0;
  u64 crashes_wrong_site = 0;
  u64 pending_peak = 0;
  u64 steals = 0;
  u64 dedup_skips = 0;
  u64 cancelled_runs = 0;
  u64 slices_solved = 0;
  u64 slice_sat_hits = 0;
  u64 slice_unsat_hits = 0;
  // Entries dropped by the slice-cache LRU bound (0 while
  // slice_cache_capacity == 0; summed over shards when distributed).
  u64 slice_evictions = 0;
  // ----- Search-quality layer (PR 5) -----
  // Pendings dropped at Push time by the prefix-subsumption index (0
  // while prune_subsumed is off; summed over workers and shards).
  u64 pendings_pruned = 0;
  // Runs whose input came from ReplayConfig::corpus_seeds.
  u64 corpus_runs = 0;
  // Adaptive-worker discipline switches under Pick::kPortfolio.
  u64 promotions = 0;
  // Per-discipline run accounting (SearchDiscipline index order):
  // completed (non-cancelled) runs attributed to the discipline whose
  // pop produced them, and how many of those ended in a forced logged
  // direction (case 2b) — the on-log rate the promotion layer ranks by.
  std::array<u64, kNumDisciplines> discipline_runs{};
  std::array<u64, kNumDisciplines> discipline_on_log{};
  // ----- Distributed mode only (all zero when num_shards <= 1) -----
  u64 harvest_runs = 0;       // Coordinator scout runs before sharding.
  u64 wire_bytes_tx = 0;      // Total bytes coordinator -> shards.
  u64 wire_bytes_rx = 0;      // Total bytes shards -> coordinator.
  u64 verdicts_gossiped = 0;  // Slice verdicts relayed between shards.
  // Frontier re-balancing (summed over shards when distributed): entries
  // exported to / imported from peers via kWorkRequest/kPendingExport,
  // and how many request cycles ran.
  u64 pendings_exported = 0;
  u64 pendings_imported = 0;
  u64 rebalance_rounds = 0;
  // ----- Failure handling (wire v5; all zero when nothing fails) -----
  // Shards declared dead mid-search (channel loss, corrupt stream, or a
  // missed-heartbeat deadline) that never reported a result.
  u64 shards_lost = 0;
  // Ownership-ledger pendings re-injected into live shards (or, with no
  // live shard left, into the in-process fallback) on shard death.
  // At-least-once: a dead shard may have already run some of them, and
  // FingerprintSet subsumption dedups the re-execution.
  u64 pendings_recovered = 0;
  // Missed-heartbeat deadline expiries across the fleet (sum of the
  // per-shard counters).
  u64 heartbeats_missed = 0;
  // The whole fleet died without a result and the coordinator fell back
  // to an in-process search on the remaining wall budget.
  bool fallback_inprocess = false;
  // Off-log death telemetry (wire v4): which unlogged branches aborted
  // runs died flipping, split by abort class. Always collected — the
  // accumulators never influence a search decision, so run counts stay
  // bit-identical to the pre-telemetry engine. Workers fold their dense
  // per-branch accumulators in here losslessly; the distributed
  // coordinator merges every shard's profile the same way.
  ReplayFailureProfile failure_profile;
  // One entry per worker (a single entry mirroring the totals when the
  // sequential engine ran). In-process: sum of any counter over
  // per_worker equals the aggregate above. Distributed: aggregates are
  // per_worker sums plus the coordinator's harvest_runs contributions.
  std::vector<ReplayWorkerStats> per_worker;
  // One entry per shard process; empty unless num_shards > 1.
  std::vector<ReplayShardStats> per_shard;
};

// Worker count that saturates the host: hardware threads clamped to
// [1, 16] (frontier contention outgrows the benefit beyond that for
// interpreter-bound runs). This is the resolution of num_workers == 0.
u32 DefaultReplayWorkers();

struct ReplayResult {
  bool reproduced = false;
  std::vector<std::string> witness_argv;  // Inputs that activate the bug.
  std::vector<i64> witness_cells;
  CrashSite crash;
  ReplayStats stats;
  bool budget_exhausted = false;
  double wall_seconds = 0.0;
};

/// A frontier entry in arena-portable form: the shape pending sets take
/// whenever they leave the producing worker's arena — onto the shared
/// in-process frontier, or across the process boundary in distributed
/// mode (encoded by src/dist/wire.h).
///
/// **Ownership:** `trace`, `seed` and `domains` are immutable shared
/// snapshots; sibling pendings of one run alias the same trace. The
/// constraint set is `trace->constraints[0, len)` with the last entry
/// negated when `negate_last`.
struct PortablePending {
  std::shared_ptr<const PortableTrace> trace;
  size_t len = 0;
  bool negate_last = false;
  std::shared_ptr<const std::vector<i64>> seed;
  std::shared_ptr<const std::vector<Interval>> domains;
  u64 priority = 0;   // Log bits the prefix consumed (Pick::kLogBits key).
  u64 dir_score = 0;  // Logged directions the set forces (Pick::kDirection key).
};

template <typename T>
class WorkStealingQueue;

/// \brief Thread-safe window into a running shard search's frontier —
/// the export hook behind distributed work re-balancing.
///
/// The shard main loop (src/dist/shard.cc) owns a FrontierPort and hands
/// it to ReproduceShard via ShardContext::port; the engine attaches its
/// live frontier on entry and detaches before tearing it down. The
/// shard's gossip pump concurrently uses the port to:
///   - Import() pendings re-balanced from loaded peers,
///   - Export() the deepest local entries for starved peers,
///   - HoldOpen()/ReleaseHold() keep a drained frontier from declaring
///     termination while a re-balance request is in flight.
///
/// **Thread safety:** every method is safe from any thread; an internal
/// mutex serializes against Attach/Detach, so calls after Detach are
/// harmless no-ops. **Ownership:** borrows the queue between Attach and
/// Detach; counters survive Detach so the engine can fold them into
/// ReplayStats.
class FrontierPort {
 public:
  /// Binds the port to a live frontier. Engine-side only.
  void Attach(WorkStealingQueue<PortablePending>* frontier, u32 num_workers);
  /// Unbinds (releasing any outstanding hold). Engine-side only; must be
  /// called before the frontier is destroyed.
  void Detach();

  /// Pushes one re-balanced pending into the frontier (worker deques
  /// round-robin). Imports that race ahead of Attach are buffered and
  /// flushed when the frontier appears, so an answer to the pump's first
  /// request can never be lost to startup timing. False only after
  /// Detach (search over) — then the pending is dropped, which costs the
  /// fleet nothing but a re-prove.
  bool Import(PortablePending pending);
  /// Carves up to `max_items` of the deepest entries for a starved peer,
  /// keeping at least ~2 per worker locally. Returns the count (0 when
  /// detached or the frontier has nothing to spare).
  size_t Export(size_t max_items, std::vector<PortablePending>* out);
  /// Resident frontier size (0 when detached).
  size_t size() const;

  /// Registers/releases an external-producer hold on the frontier: while
  /// held, a drained frontier with every worker blocked waits instead of
  /// terminating — an imported pending may still arrive. Idempotent;
  /// Detach releases an outstanding hold.
  void HoldOpen();
  void ReleaseHold();

  u64 imported() const { return imported_; }
  u64 exported() const { return exported_; }

 private:
  mutable std::mutex mu_;
  WorkStealingQueue<PortablePending>* frontier_ = nullptr;
  u32 num_workers_ = 1;
  size_t import_cursor_ = 0;
  bool held_ = false;
  bool ever_attached_ = false;
  std::vector<PortablePending> pre_attach_imports_;
  std::atomic<u64> imported_{0};
  std::atomic<u64> exported_{0};
};

/// External state injected into one distributed shard's in-process
/// search. All pointers are borrowed; the caller (the shard main loop in
/// src/dist/shard.cc) must keep them alive until ReproduceShard returns.
struct ShardContext {
  /// Frontier entries shipped by the coordinator, distributed round-robin
  /// over the workers' deques before the search starts.
  std::vector<PortablePending> seed_frontier;
  /// Shared verdict store (thread-safe); null = engine-private cache.
  /// The shard's gossip pump drains/merges it concurrently with the
  /// search.
  SliceCache* cache = nullptr;
  /// First-crash-wins across processes: when another shard reproduces
  /// the bug, the coordinator's stop message sets this flag and the
  /// engine winds down (runs abort, the frontier closes).
  const std::atomic<bool>* cancel = nullptr;
  /// Offsets every worker's rng stream so shards explore from distinct
  /// initial inputs; 0 keeps the in-process streams.
  u64 rng_stream = 0;
  /// This shard's slot and the fleet size — the corpus-seed partition key
  /// (shard s runs seeds with index % num_shards == s). The in-process
  /// defaults (0 of 1) run every seed.
  u32 shard_id = 0;
  u32 num_shards = 1;
  /// Frontier re-balance hook: when non-null, ReproduceShard attaches
  /// its live frontier here so the shard's gossip pump can import/export
  /// pendings mid-search, and folds the port's counters into
  /// ReplayStats::{pendings_imported,pendings_exported} on exit.
  FrontierPort* port = nullptr;
};

/// \brief The developer-site reproduction engine.
///
/// **Thread safety:** a ReplayEngine instance is not thread-safe; one
/// reproduction call at a time. Internally Reproduce spawns worker
/// threads (num_workers > 1) and — via src/dist/ — shard processes
/// (num_shards > 1); forking happens on the calling thread, so call from
/// a single-threaded context when num_shards > 1.
///
/// **Ownership:** borrows module/plan/report/arena; all must outlive the
/// engine. `arena` is used by the sequential path only; parallel workers
/// build private arenas (shared hash-consing is not thread-safe).
class ReplayEngine {
 public:
  /// `plan` must be the plan the report's binary shipped with.
  ReplayEngine(const IrModule& module, const InstrumentationPlan& plan, const BugReport& report,
               ExprArena* arena)
      : module_(module), plan_(plan), report_(report), arena_(arena) {}

  ReplayResult Reproduce(const ReplayConfig& config);

  /// Bounded scout search used by the distributed coordinator: runs the
  /// sequential loop for at most `max_runs` runs or until the live
  /// frontier holds at least `target_frontier` pendings, then returns the
  /// un-consumed frontier in portable form (ready to ship to shards).
  /// `out.result.reproduced` short-circuits the whole distributed search.
  struct HarvestOutput {
    ReplayResult result;
    std::vector<PortablePending> frontier;
  };
  HarvestOutput HarvestFrontier(const ReplayConfig& config, u64 max_runs,
                                size_t target_frontier);

  /// One distributed shard's in-process search: the parallel scheduler
  /// (even for num_workers == 1) with `shard`'s seed frontier, shared
  /// cache and external cancellation wired in. Exposed for src/dist/ and
  /// tests; `Reproduce` is the normal entry point.
  ReplayResult ReproduceShard(const ReplayConfig& config, ShardContext* shard);

 private:
  ReplayResult ReproduceSequential(const ReplayConfig& config);
  ReplayResult ReproduceParallel(const ReplayConfig& config, u32 num_workers,
                                 ShardContext* shard);

  const IrModule& module_;
  const InstrumentationPlan& plan_;
  const BugReport& report_;
  ExprArena* arena_;
};

}  // namespace retrace

#endif  // RETRACE_REPLAY_REPLAY_ENGINE_H_
