// Developer-site bug reproduction: symbolic execution guided by the
// partial branch log (paper §3).
//
// The engine performs runs with concrete inputs. At every executed branch
// the four cases of §3.1 apply:
//   1. symbolic, not instrumented  -> record the constraint; both
//      directions are explorable (pending set with the negation).
//   2. symbolic, instrumented      -> compare with the next log bit;
//      (a) match: keep going; (b) mismatch: build the constraint set that
//      forces the logged direction, push it, abort the run.
//   3. concrete, instrumented      -> compare with the next log bit;
//      (a) match: keep going; (b) mismatch: abort (an earlier wrong turn
//      at an uninstrumented symbolic branch).
//   4. concrete, not instrumented  -> keep going.
// Aborted runs pull the next pending constraint set (depth-first by
// default), solve it, and restart with the resulting input. Reproduction
// succeeds when a run crashes at the reported crash site.
//
// With num_workers > 1 the pending-set frontier becomes a shared
// work-stealing queue and N workers run independent concolic executions —
// each with a private interpreter, expression arena and solver (none of
// which are thread-safe), exchanging pending sets in arena-portable form.
// A shared fingerprint registry dedups constraint sets that several
// workers discover independently, and the first worker to reproduce the
// crash cancels the rest (first-crash-wins). num_workers == 1 runs the
// original sequential loop and is bit-identical to the pre-parallel
// engine.
#ifndef RETRACE_REPLAY_REPLAY_ENGINE_H_
#define RETRACE_REPLAY_REPLAY_ENGINE_H_

#include <string>
#include <vector>

#include "src/concolic/cellrun.h"
#include "src/core/report.h"
#include "src/solver/solver.h"
#include "src/support/rng.h"

namespace retrace {

struct ReplayConfig {
  u64 max_runs = 20'000;
  i64 wall_ms = -1;               // The paper's 1-hour allotment (scaled).
  u64 total_steps = 4'000'000'000ull;
  u64 max_steps_per_run = 100'000'000;
  SolverOptions solver;
  u64 seed = 42;                  // Initial random input.
  bool use_syscall_log = true;    // Replay logged syscall results (§3.3).
  // Pending-set heuristic. kLogBits prioritizes pendings whose prefix
  // consumed the most branch-log bits — the deepest on-log progress — the
  // bet for scenarios where DFS/FIFO drown in off-log subtrees.
  // kPortfolio is only meaningful with num_workers > 1: worker 0 runs
  // DFS, worker 1 FIFO, worker 2 log-bits, and the rest randomized DFS
  // with per-worker seeds, so one search discipline's pathology does not
  // stall the whole fleet.
  enum class Pick { kDfs, kFifo, kPortfolio, kLogBits } pick = Pick::kDfs;
  // Concolic executions in flight. 1 = the original sequential engine;
  // 0 = one per hardware thread.
  u32 num_workers = 1;
  // Incremental solving layer: partition each pending set into
  // independent slices and share slice SAT/UNSAT verdicts fleet-wide
  // (src/solver/incremental.h). Off = the monolithic solver of the
  // original engine; num_workers == 1 with this off is bit-identical to
  // the pre-parallel sequential engine.
  bool solver_cache = true;
  // Pendings a parallel worker pops (and solves) per frontier visit.
  // Batching lets sibling pendings — which share almost all slices — hit
  // the caches back to back while the worker holds its own deque's items
  // anyway; extras beyond the first never come from stealing.
  u32 solve_batch = 8;
};

// Counters for one worker of the parallel scheduler. The aggregate
// ReplayStats sums these losslessly, so `stats.runs` etc. keep their
// pre-parallel meaning at any worker count.
struct ReplayWorkerStats {
  u64 runs = 0;
  u64 solver_calls = 0;
  u64 aborts_forced_direction = 0;   // Case 2b.
  u64 aborts_concrete_mismatch = 0;  // Case 3b.
  u64 aborts_log_exhausted = 0;
  u64 crashes_wrong_site = 0;
  u64 steals = 0;        // Pending sets taken from another worker's deque.
  u64 dedup_skips = 0;   // Pending sets dropped: already tried fleet-wide.
  u64 cancelled_runs = 0;  // Runs aborted by first-crash-wins cancellation.
  // Incremental solving layer (zero when ReplayConfig::solver_cache off).
  u64 slices_solved = 0;     // Constraint slices sent to the local search.
  u64 slice_sat_hits = 0;    // Slices satisfied from the fleet-wide cache.
  u64 slice_unsat_hits = 0;  // Pendings rejected by the UNSAT cache.
};

struct ReplayStats {
  u64 runs = 0;
  u64 solver_calls = 0;
  u64 aborts_forced_direction = 0;  // Case 2b.
  u64 aborts_concrete_mismatch = 0;  // Case 3b.
  u64 aborts_log_exhausted = 0;
  u64 crashes_wrong_site = 0;
  u64 pending_peak = 0;
  u64 steals = 0;
  u64 dedup_skips = 0;
  u64 cancelled_runs = 0;
  u64 slices_solved = 0;
  u64 slice_sat_hits = 0;
  u64 slice_unsat_hits = 0;
  // One entry per worker (a single entry mirroring the totals when the
  // sequential engine ran). Sum of any counter over per_worker equals the
  // aggregate above.
  std::vector<ReplayWorkerStats> per_worker;
};

// Worker count that saturates the host: hardware threads clamped to
// [1, 16] (frontier contention outgrows the benefit beyond that for
// interpreter-bound runs). This is the resolution of num_workers == 0.
u32 DefaultReplayWorkers();

struct ReplayResult {
  bool reproduced = false;
  std::vector<std::string> witness_argv;  // Inputs that activate the bug.
  std::vector<i64> witness_cells;
  CrashSite crash;
  ReplayStats stats;
  bool budget_exhausted = false;
  double wall_seconds = 0.0;
};

class ReplayEngine {
 public:
  // `plan` must be the plan the report's binary shipped with. `arena` is
  // used by the sequential path only; parallel workers build private
  // arenas (shared hash-consing is not thread-safe).
  ReplayEngine(const IrModule& module, const InstrumentationPlan& plan, const BugReport& report,
               ExprArena* arena)
      : module_(module), plan_(plan), report_(report), arena_(arena) {}

  ReplayResult Reproduce(const ReplayConfig& config);

 private:
  ReplayResult ReproduceSequential(const ReplayConfig& config);
  ReplayResult ReproduceParallel(const ReplayConfig& config, u32 num_workers);

  const IrModule& module_;
  const InstrumentationPlan& plan_;
  const BugReport& report_;
  ExprArena* arena_;
};

}  // namespace retrace

#endif  // RETRACE_REPLAY_REPLAY_ENGINE_H_
