// Developer-site bug reproduction: symbolic execution guided by the
// partial branch log (paper §3).
//
// The engine performs runs with concrete inputs. At every executed branch
// the four cases of §3.1 apply:
//   1. symbolic, not instrumented  -> record the constraint; both
//      directions are explorable (pending set with the negation).
//   2. symbolic, instrumented      -> compare with the next log bit;
//      (a) match: keep going; (b) mismatch: build the constraint set that
//      forces the logged direction, push it, abort the run.
//   3. concrete, instrumented      -> compare with the next log bit;
//      (a) match: keep going; (b) mismatch: abort (an earlier wrong turn
//      at an uninstrumented symbolic branch).
//   4. concrete, not instrumented  -> keep going.
// Aborted runs pull the next pending constraint set (depth-first by
// default), solve it over a prefix view of its trace (no per-pop copy),
// and restart with the resulting input. Reproduction succeeds when a run
// crashes at the reported crash site.
//
// Three schedulers, selected by ReplayConfig:
//   - num_workers == 1, num_shards <= 1: the original sequential loop,
//     bit-identical to the pre-parallel engine when solver_cache is off.
//   - num_workers > 1: N threads with thread-confined interpreter/arena/
//     solver contexts share a work-stealing frontier, exchange pending
//     sets in arena-portable form, dedup tried sets fleet-wide, share
//     slice verdicts through a SliceCache, and cancel on first crash.
//   - num_shards > 1: the coordinator in src/dist/ forks num_shards
//     processes, each running the thread scheduler above; pending sets
//     and slice verdicts travel between them over a versioned binary
//     wire format (src/dist/wire.h).
#ifndef RETRACE_REPLAY_REPLAY_ENGINE_H_
#define RETRACE_REPLAY_REPLAY_ENGINE_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "src/concolic/cellrun.h"
#include "src/core/report.h"
#include "src/solver/incremental.h"
#include "src/solver/solver.h"
#include "src/support/rng.h"

namespace retrace {

struct ReplayConfig {
  u64 max_runs = 20'000;
  i64 wall_ms = -1;               // The paper's 1-hour allotment (scaled).
  u64 total_steps = 4'000'000'000ull;
  u64 max_steps_per_run = 100'000'000;
  SolverOptions solver;
  u64 seed = 42;                  // Initial random input.
  bool use_syscall_log = true;    // Replay logged syscall results (§3.3).
  // Pending-set heuristic. kLogBits prioritizes pendings whose prefix
  // consumed the most branch-log bits — the deepest on-log progress — the
  // bet for scenarios where DFS/FIFO drown in off-log subtrees.
  // kPortfolio is only meaningful with num_workers > 1: worker 0 runs
  // DFS, worker 1 FIFO, worker 2 log-bits, and the rest randomized DFS
  // with per-worker seeds, so one search discipline's pathology does not
  // stall the whole fleet.
  enum class Pick { kDfs, kFifo, kPortfolio, kLogBits } pick = Pick::kDfs;
  // Concolic executions in flight *per process*. 1 = the original
  // sequential engine; 0 = one per hardware thread.
  u32 num_workers = 1;
  // Replay shard processes. <= 1 keeps everything in-process (the engine
  // above, bit-identical to its pre-distributed behavior). N > 1 forks N
  // shard processes — each running num_workers threads — from a
  // coordinator that partitions an initial pending-set frontier across
  // them, gossips slice-cache verdicts between them, and cancels the
  // fleet on the first reproduced crash (src/dist/coordinator.h). Fork
  // happens on the calling thread; call from a single-threaded context.
  u32 num_shards = 1;
  // Incremental solving layer: partition each pending set into
  // independent slices and share slice SAT/UNSAT verdicts fleet-wide
  // (src/solver/incremental.h). Off = the monolithic solver of the
  // original engine; num_workers == 1 with this off is bit-identical to
  // the pre-parallel sequential engine.
  bool solver_cache = true;
  // Upper bound on resident SliceCache entries (0 = unbounded, the
  // historical behavior). Long-horizon daemons reusing one search budget
  // across reports want a bound; evictions surface in
  // ReplayStats::slice_evictions.
  u64 slice_cache_capacity = 0;
  // Pendings a parallel worker pops (and solves) per frontier visit.
  // Batching lets sibling pendings — which share almost all slices — hit
  // the caches back to back while the worker holds its own deque's items
  // anyway; extras beyond the first never come from stealing.
  u32 solve_batch = 8;
};

/// Counters for one worker of the parallel scheduler. The aggregate
/// ReplayStats sums these losslessly, so `stats.runs` etc. keep their
/// pre-parallel meaning at any worker count.
struct ReplayWorkerStats {
  u64 runs = 0;
  u64 solver_calls = 0;
  u64 aborts_forced_direction = 0;   // Case 2b.
  u64 aborts_concrete_mismatch = 0;  // Case 3b.
  u64 aborts_log_exhausted = 0;
  u64 crashes_wrong_site = 0;
  u64 steals = 0;        // Pending sets taken from another worker's deque.
  u64 dedup_skips = 0;   // Pending sets dropped: already tried fleet-wide.
  u64 cancelled_runs = 0;  // Runs aborted by first-crash-wins cancellation.
  // Incremental solving layer (zero when ReplayConfig::solver_cache off).
  u64 slices_solved = 0;     // Constraint slices sent to the local search.
  u64 slice_sat_hits = 0;    // Slices satisfied from the fleet-wide cache.
  u64 slice_unsat_hits = 0;  // Pendings rejected by the UNSAT cache.
};

/// Counters for one shard process of the distributed scheduler
/// (ReplayConfig::num_shards > 1), reported back over the wire and
/// paired with the coordinator's transport byte counts.
struct ReplayShardStats {
  u32 shard_id = 0;
  bool reproduced = false;   // This shard won the first-crash-wins race.
  u64 runs = 0;
  u64 solver_calls = 0;
  u64 pendings_seeded = 0;       // Frontier entries shipped at start.
  u64 verdicts_published = 0;    // Slice verdicts this shard gossiped out.
  u64 verdicts_imported = 0;     // Verdicts merged in from other shards.
  u64 wire_bytes_tx = 0;         // Coordinator -> shard bytes.
  u64 wire_bytes_rx = 0;         // Shard -> coordinator bytes.
  double wall_seconds = 0.0;
};

/// Aggregate search statistics.
///
/// Single process: every counter is the lossless sum over `per_worker`.
/// Distributed (num_shards > 1): counters additionally include the
/// coordinator's scout runs (`harvest_runs` of `runs` happened in the
/// coordinator before sharding), `per_worker` concatenates every shard's
/// workers in shard order, and `per_shard` carries the per-process and
/// wire-transport breakdown.
struct ReplayStats {
  u64 runs = 0;
  u64 solver_calls = 0;
  u64 aborts_forced_direction = 0;  // Case 2b.
  u64 aborts_concrete_mismatch = 0;  // Case 3b.
  u64 aborts_log_exhausted = 0;
  u64 crashes_wrong_site = 0;
  u64 pending_peak = 0;
  u64 steals = 0;
  u64 dedup_skips = 0;
  u64 cancelled_runs = 0;
  u64 slices_solved = 0;
  u64 slice_sat_hits = 0;
  u64 slice_unsat_hits = 0;
  // Entries dropped by the slice-cache LRU bound (0 while
  // slice_cache_capacity == 0; summed over shards when distributed).
  u64 slice_evictions = 0;
  // ----- Distributed mode only (all zero when num_shards <= 1) -----
  u64 harvest_runs = 0;       // Coordinator scout runs before sharding.
  u64 wire_bytes_tx = 0;      // Total bytes coordinator -> shards.
  u64 wire_bytes_rx = 0;      // Total bytes shards -> coordinator.
  u64 verdicts_gossiped = 0;  // Slice verdicts relayed between shards.
  // One entry per worker (a single entry mirroring the totals when the
  // sequential engine ran). In-process: sum of any counter over
  // per_worker equals the aggregate above. Distributed: aggregates are
  // per_worker sums plus the coordinator's harvest_runs contributions.
  std::vector<ReplayWorkerStats> per_worker;
  // One entry per shard process; empty unless num_shards > 1.
  std::vector<ReplayShardStats> per_shard;
};

// Worker count that saturates the host: hardware threads clamped to
// [1, 16] (frontier contention outgrows the benefit beyond that for
// interpreter-bound runs). This is the resolution of num_workers == 0.
u32 DefaultReplayWorkers();

struct ReplayResult {
  bool reproduced = false;
  std::vector<std::string> witness_argv;  // Inputs that activate the bug.
  std::vector<i64> witness_cells;
  CrashSite crash;
  ReplayStats stats;
  bool budget_exhausted = false;
  double wall_seconds = 0.0;
};

/// A frontier entry in arena-portable form: the shape pending sets take
/// whenever they leave the producing worker's arena — onto the shared
/// in-process frontier, or across the process boundary in distributed
/// mode (encoded by src/dist/wire.h).
///
/// **Ownership:** `trace`, `seed` and `domains` are immutable shared
/// snapshots; sibling pendings of one run alias the same trace. The
/// constraint set is `trace->constraints[0, len)` with the last entry
/// negated when `negate_last`.
struct PortablePending {
  std::shared_ptr<const PortableTrace> trace;
  size_t len = 0;
  bool negate_last = false;
  std::shared_ptr<const std::vector<i64>> seed;
  std::shared_ptr<const std::vector<Interval>> domains;
  u64 priority = 0;  // Log bits the prefix consumed (Pick::kLogBits key).
};

/// External state injected into one distributed shard's in-process
/// search. All pointers are borrowed; the caller (the shard main loop in
/// src/dist/shard.cc) must keep them alive until ReproduceShard returns.
struct ShardContext {
  /// Frontier entries shipped by the coordinator, distributed round-robin
  /// over the workers' deques before the search starts.
  std::vector<PortablePending> seed_frontier;
  /// Shared verdict store (thread-safe); null = engine-private cache.
  /// The shard's gossip pump drains/merges it concurrently with the
  /// search.
  SliceCache* cache = nullptr;
  /// First-crash-wins across processes: when another shard reproduces
  /// the bug, the coordinator's stop message sets this flag and the
  /// engine winds down (runs abort, the frontier closes).
  const std::atomic<bool>* cancel = nullptr;
  /// Offsets every worker's rng stream so shards explore from distinct
  /// initial inputs; 0 keeps the in-process streams.
  u64 rng_stream = 0;
};

/// \brief The developer-site reproduction engine.
///
/// **Thread safety:** a ReplayEngine instance is not thread-safe; one
/// reproduction call at a time. Internally Reproduce spawns worker
/// threads (num_workers > 1) and — via src/dist/ — shard processes
/// (num_shards > 1); forking happens on the calling thread, so call from
/// a single-threaded context when num_shards > 1.
///
/// **Ownership:** borrows module/plan/report/arena; all must outlive the
/// engine. `arena` is used by the sequential path only; parallel workers
/// build private arenas (shared hash-consing is not thread-safe).
class ReplayEngine {
 public:
  /// `plan` must be the plan the report's binary shipped with.
  ReplayEngine(const IrModule& module, const InstrumentationPlan& plan, const BugReport& report,
               ExprArena* arena)
      : module_(module), plan_(plan), report_(report), arena_(arena) {}

  ReplayResult Reproduce(const ReplayConfig& config);

  /// Bounded scout search used by the distributed coordinator: runs the
  /// sequential loop for at most `max_runs` runs or until the live
  /// frontier holds at least `target_frontier` pendings, then returns the
  /// un-consumed frontier in portable form (ready to ship to shards).
  /// `out.result.reproduced` short-circuits the whole distributed search.
  struct HarvestOutput {
    ReplayResult result;
    std::vector<PortablePending> frontier;
  };
  HarvestOutput HarvestFrontier(const ReplayConfig& config, u64 max_runs,
                                size_t target_frontier);

  /// One distributed shard's in-process search: the parallel scheduler
  /// (even for num_workers == 1) with `shard`'s seed frontier, shared
  /// cache and external cancellation wired in. Exposed for src/dist/ and
  /// tests; `Reproduce` is the normal entry point.
  ReplayResult ReproduceShard(const ReplayConfig& config, ShardContext* shard);

 private:
  ReplayResult ReproduceSequential(const ReplayConfig& config);
  ReplayResult ReproduceParallel(const ReplayConfig& config, u32 num_workers,
                                 ShardContext* shard);

  const IrModule& module_;
  const InstrumentationPlan& plan_;
  const BugReport& report_;
  ExprArena* arena_;
};

}  // namespace retrace

#endif  // RETRACE_REPLAY_REPLAY_ENGINE_H_
