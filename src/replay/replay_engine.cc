#include "src/replay/replay_engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_set>

#include "src/solver/incremental.h"
#include "src/support/stop_token.h"
#include "src/support/workqueue.h"

namespace retrace {
namespace {

// Branch observer implementing the four replay cases of paper §3.1.
class ReplayObserver : public BranchObserver {
 public:
  ReplayObserver(const InstrumentationPlan& plan, const BitVec& log) : plan_(plan), log_(log) {
    debug_ = std::getenv("RETRACE_DEBUG_REPLAY") != nullptr;
  }

  Action OnBranch(i32 branch_id, bool taken, ExprRef cond_shadow) override {
    const bool instrumented = plan_.Instrumented(branch_id);
    const bool symbolic = cond_shadow != kNoExpr;
    if (!instrumented) {
      if (symbolic) {
        // Case 1: both directions remain explorable.
        flippable.push_back(trace.size());
        trace.push_back(Constraint{cond_shadow, taken});
        bits_at.push_back(cursor);
      }
      // Case 4: nothing to do.
      return Action::kContinue;
    }
    if (cursor >= log_.size()) {
      // The recorded execution ended (it crashed); running past the log on
      // an instrumented branch means this path already diverged.
      log_exhausted = true;
      return Action::kAbort;
    }
    const bool logged = log_.GetBit(cursor++);
    if (symbolic) {
      if (taken == logged) {
        trace.push_back(Constraint{cond_shadow, taken});  // Case 2a.
        bits_at.push_back(cursor);
        return Action::kContinue;
      }
      // Case 2b: append the constraint forcing the *logged* direction and
      // abort; the engine pushes this set so the next input follows the log.
      trace.push_back(Constraint{cond_shadow, logged});
      bits_at.push_back(cursor);
      forced_direction = true;
      return Action::kAbort;
    }
    if (taken == logged) {
      return Action::kContinue;  // Case 3a.
    }
    concrete_mismatch = true;  // Case 3b.
    if (debug_) {
      std::fprintf(stderr, "[replay] 3b concrete mismatch branch=%d cursor=%zu taken=%d\n",
                   branch_id, cursor - 1, taken ? 1 : 0);
    }
    return Action::kAbort;
  }

  std::vector<Constraint> trace;
  // Log bits consumed when each trace entry was recorded — the priority
  // of the pending set ending at that constraint under Pick::kLogBits.
  std::vector<size_t> bits_at;
  std::vector<size_t> flippable;
  size_t cursor = 0;
  bool forced_direction = false;
  bool concrete_mismatch = false;
  bool log_exhausted = false;

 private:
  const InstrumentationPlan& plan_;
  const BitVec& log_;
  bool debug_ = false;
};

// First-crash-wins cancellation: aborts an in-flight run once another
// worker has reproduced the bug, instead of letting it finish a pointless
// multi-million-step execution.
class CancelObserver : public BranchObserver {
 public:
  explicit CancelObserver(const StopSource& stop) : stop_(stop) {}

  Action OnBranch(i32 /*branch_id*/, bool /*taken*/, ExprRef /*cond_shadow*/) override {
    return stop_.StopRequested() ? Action::kAbort : Action::kContinue;
  }

 private:
  const StopSource& stop_;
};

// Sequential frontier entry: constraints live in the engine's arena.
struct Pending {
  std::shared_ptr<std::vector<Constraint>> trace;
  size_t len = 0;           // Constraints [0, len) form the set.
  bool negate_last = false;  // Case 1 pendings negate constraint len-1.
  std::shared_ptr<std::vector<i64>> seed;
  std::shared_ptr<std::vector<Interval>> domains;
  u64 log_bits = 0;  // Log bits the prefix consumed (Pick::kLogBits key).
};

// Parallel frontier entry: constraints travel arena-independently so any
// worker can import them into its private arena. `len`/`negate_last`
// mirror Pending; `seed`/`domains` are immutable snapshots of the
// producing run.
struct ParallelPending {
  std::shared_ptr<const PortableTrace> trace;
  size_t len = 0;
  bool negate_last = false;
  std::shared_ptr<const std::vector<i64>> seed;
  std::shared_ptr<const std::vector<Interval>> domains;
};

}  // namespace

u32 DefaultReplayWorkers() {
  return std::clamp(std::thread::hardware_concurrency(), 1u, 16u);
}

ReplayResult ReplayEngine::Reproduce(const ReplayConfig& config) {
  const u32 workers = config.num_workers == 0 ? DefaultReplayWorkers() : config.num_workers;
  if (workers <= 1) {
    return ReproduceSequential(config);
  }
  return ReproduceParallel(config, workers);
}

ReplayResult ReplayEngine::ReproduceSequential(const ReplayConfig& config) {
  const auto t0 = std::chrono::steady_clock::now();
  ReplayResult result;

  CellRunner runner(module_, report_.shape);
  Budget budget = config.wall_ms > 0
                      ? Budget::StepsAndMillis(config.total_steps, config.wall_ms)
                      : Budget::Steps(config.total_steps);
  Solver solver(*arena_, config.solver);
  // Incremental layer (partition + slice caches); disabled falls back to
  // the monolithic solver — the bit-identical pre-parallel engine.
  std::unique_ptr<SliceCache> slice_cache;
  std::unique_ptr<IncrementalSolver> incremental;
  if (config.solver_cache) {
    slice_cache = std::make_unique<SliceCache>();
    incremental = std::make_unique<IncrementalSolver>(*arena_, config.solver, slice_cache.get());
  }
  Rng rng(config.seed);

  // Initial run: random printable input bytes (the developer has no input).
  std::vector<i64> initial(runner.layout().defaults().size());
  for (i64& v : initial) {
    v = rng.NextPrintable();
  }

  std::deque<Pending> pendings;
  // Under kLogBits the deque doubles as max-heap storage on log_bits (the
  // pick is fixed for the whole search), so pops stay O(log n) instead of
  // a linear scan over frontiers that reach tens of thousands of entries.
  const bool heap_pick = config.pick == ReplayConfig::Pick::kLogBits;
  auto bits_less = [](const Pending& a, const Pending& b) { return a.log_bits < b.log_bits; };
  auto publish = [&](Pending pending) {
    pendings.push_back(std::move(pending));
    if (heap_pick) {
      std::push_heap(pendings.begin(), pendings.end(), bits_less);
    }
  };
  const SyscallLog* replay_log =
      config.use_syscall_log && report_.has_syscall_log ? &report_.syscall_log : nullptr;

  // Mirrors the aggregate counters into the single worker entry, keeping
  // the per-worker view lossless at any worker count.
  auto finish = [&]() {
    if (incremental != nullptr) {
      const IncrementalStats& inc = incremental->stats();
      result.stats.slices_solved = inc.slices_solved;
      result.stats.slice_sat_hits = inc.slice_sat_hits;
      result.stats.slice_unsat_hits = inc.slice_unsat_hits;
    }
    ReplayWorkerStats worker;
    worker.runs = result.stats.runs;
    worker.solver_calls = result.stats.solver_calls;
    worker.aborts_forced_direction = result.stats.aborts_forced_direction;
    worker.aborts_concrete_mismatch = result.stats.aborts_concrete_mismatch;
    worker.aborts_log_exhausted = result.stats.aborts_log_exhausted;
    worker.crashes_wrong_site = result.stats.crashes_wrong_site;
    worker.slices_solved = result.stats.slices_solved;
    worker.slice_sat_hits = result.stats.slice_sat_hits;
    worker.slice_unsat_hits = result.stats.slice_unsat_hits;
    result.stats.per_worker = {worker};
    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  };

  // Runs one input; returns true when the bug is reproduced.
  auto do_run = [&](const std::vector<i64>& model, size_t start_depth) -> bool {
    ReplayObserver observer(plan_, report_.branch_log);
    CellRunConfig run_config;
    run_config.model = model;
    run_config.arena = arena_;
    run_config.observers = {&observer};
    run_config.replay_log = replay_log;
    run_config.max_steps = config.max_steps_per_run;
    run_config.external_budget = &budget;
    CellRunOutput out = runner.Run(run_config);
    ++result.stats.runs;

    // Reproduction requires reaching the reported crash site having
    // followed the *entire* branch log: the recorded bits end exactly at
    // the user-site crash, so a run that crashes at the same location with
    // bits left over took a shortcut (e.g. an early signal delivery) and is
    // not the recorded execution.
    if (out.result.Crashed() && out.result.crash.SameSite(report_.crash) &&
        observer.cursor == report_.branch_log.size()) {
      result.reproduced = true;
      result.crash = out.result.crash;
      result.witness_cells = out.cells;
      result.witness_argv = runner.layout().MaterializeArgv(runner.spec(), out.cells);
      return true;
    }
    if (out.result.Crashed()) {
      ++result.stats.crashes_wrong_site;
    }
    if (observer.concrete_mismatch) {
      ++result.stats.aborts_concrete_mismatch;
    }
    if (observer.log_exhausted) {
      ++result.stats.aborts_log_exhausted;
    }

    auto trace = std::make_shared<std::vector<Constraint>>(std::move(observer.trace));
    auto seed = std::make_shared<std::vector<i64>>(std::move(out.cells));
    auto domains = std::make_shared<std::vector<Interval>>(std::move(out.domains));
    // Case-1 alternatives, deepest explored first under DFS.
    for (size_t flip : observer.flippable) {
      if (flip < start_depth) {
        continue;  // Already offered by the run that generated this prefix.
      }
      publish(Pending{trace, flip + 1, /*negate_last=*/true, seed, domains,
                      observer.bits_at[flip]});
    }
    if (observer.forced_direction) {
      ++result.stats.aborts_forced_direction;
      // Highest priority: the set that steers the run back onto the log.
      publish(Pending{trace, trace->size(), /*negate_last=*/false, seed, domains,
                      observer.cursor});
    }
    result.stats.pending_peak = std::max(result.stats.pending_peak,
                                         static_cast<u64>(pendings.size()));
    return false;
  };

  if (do_run(initial, 0)) {
    finish();
    return result;
  }

  while (!pendings.empty() && result.stats.runs < config.max_runs && !budget.Exhausted()) {
    Pending pending;
    if (config.pick == ReplayConfig::Pick::kFifo) {
      pending = std::move(pendings.front());
      pendings.pop_front();
    } else if (heap_pick) {
      // Deepest on-log progress first (max-heap; tie order unspecified).
      std::pop_heap(pendings.begin(), pendings.end(), bits_less);
      pending = std::move(pendings.back());
      pendings.pop_back();
    } else {
      // kDfs; kPortfolio degenerates to DFS with a single worker.
      pending = std::move(pendings.back());
      pendings.pop_back();
    }

    // Solve over a view of the trace prefix — no per-pop copy.
    const ConstraintSpan set(pending.trace->data(), pending.len, pending.negate_last);
    ++result.stats.solver_calls;
    const SolveResult solved = incremental != nullptr
                                   ? incremental->Solve(set, *pending.domains, *pending.seed)
                                   : solver.Solve(set, *pending.domains, *pending.seed);
    if (solved.status != SolveStatus::kSat) {
      continue;
    }
    if (do_run(solved.model, pending.len)) {
      break;
    }
  }

  result.budget_exhausted = !result.reproduced;
  finish();
  return result;
}

ReplayResult ReplayEngine::ReproduceParallel(const ReplayConfig& config, u32 num_workers) {
  const auto t0 = std::chrono::steady_clock::now();
  ReplayResult result;

  // Shared scheduler state. Everything the workers share is either
  // immutable (module, plan, report), synchronized here (frontier, dedup
  // registry, winner slot), or lock-free (stop flag, run admission).
  WorkStealingQueue<ParallelPending> frontier(num_workers);
  StopSource stop;
  std::mutex winner_mu;
  bool have_winner = false;
  std::mutex dedup_mu;
  std::unordered_set<u64> tried;
  std::atomic<u64> runs_admitted{0};
  std::vector<ReplayWorkerStats> worker_stats(num_workers);
  // Fleet-wide slice verdict store: once any worker proves a slice
  // SAT/UNSAT, every worker reuses the verdict (null = layer disabled).
  std::unique_ptr<SliceCache> slice_cache;
  if (config.solver_cache) {
    slice_cache = std::make_unique<SliceCache>();
  }

  const SyscallLog* replay_log =
      config.use_syscall_log && report_.has_syscall_log ? &report_.syscall_log : nullptr;

  auto worker_fn = [&](u32 wid) {
    ReplayWorkerStats& ws = worker_stats[wid];
    // Thread-confined execution context: arena, interpreter harness and
    // solver are all single-threaded by design.
    ExprArena arena;
    CellRunner runner(module_, report_.shape);
    Solver solver(arena, config.solver);
    std::unique_ptr<IncrementalSolver> incremental;
    if (config.solver_cache) {
      incremental = std::make_unique<IncrementalSolver>(arena, config.solver, slice_cache.get());
    }
    Rng rng(config.seed + 0x9e3779b97f4a7c15ull * wid);
    const u64 step_share = std::max<u64>(1, config.total_steps / num_workers);
    Budget budget = config.wall_ms > 0 ? Budget::StepsAndMillis(step_share, config.wall_ms)
                                       : Budget::Steps(step_share);

    auto pop_order = [&]() -> PopOrder {
      switch (config.pick) {
        case ReplayConfig::Pick::kDfs:
          return PopOrder::kNewestFirst;
        case ReplayConfig::Pick::kFifo:
          return PopOrder::kOldestFirst;
        case ReplayConfig::Pick::kLogBits:
          return PopOrder::kHighestPriority;
        case ReplayConfig::Pick::kPortfolio:
          // Worker 0: DFS. Worker 1: FIFO. Worker 2: log-bits priority.
          // The rest: randomized DFS, each with a distinct stream from
          // the per-worker rng.
          if (wid == 0) {
            return PopOrder::kNewestFirst;
          }
          if (wid == 1) {
            return PopOrder::kOldestFirst;
          }
          if (wid == 2) {
            return PopOrder::kHighestPriority;
          }
          return (rng.Next() & 1) != 0 ? PopOrder::kNewestFirst : PopOrder::kOldestFirst;
      }
      return PopOrder::kNewestFirst;
    };

    // Runs one input; returns true when the search is over for this worker
    // (it reproduced the bug, or lost the race to another worker's crash).
    auto do_run = [&](const std::vector<i64>& model, size_t start_depth) -> bool {
      ReplayObserver observer(plan_, report_.branch_log);
      CancelObserver cancel(stop);
      CellRunConfig run_config;
      run_config.model = model;
      run_config.arena = &arena;
      run_config.observers = {&observer, &cancel};
      run_config.replay_log = replay_log;
      run_config.max_steps = config.max_steps_per_run;
      run_config.external_budget = &budget;
      CellRunOutput out = runner.Run(run_config);
      ++ws.runs;

      if (out.result.Crashed() && out.result.crash.SameSite(report_.crash) &&
          observer.cursor == report_.branch_log.size()) {
        std::lock_guard<std::mutex> lock(winner_mu);
        if (!have_winner) {
          have_winner = true;
          result.reproduced = true;
          result.crash = out.result.crash;
          result.witness_cells = out.cells;
          result.witness_argv = runner.layout().MaterializeArgv(runner.spec(), out.cells);
          stop.RequestStop();
          frontier.Close();
        }
        return true;
      }
      if (stop.StopRequested()) {
        // Aborted by first-crash-wins cancellation; the partial trace does
        // not describe a real divergence, so publish nothing.
        ++ws.cancelled_runs;
        return true;
      }
      if (out.result.Crashed()) {
        ++ws.crashes_wrong_site;
      }
      if (observer.concrete_mismatch) {
        ++ws.aborts_concrete_mismatch;
      }
      if (observer.log_exhausted) {
        ++ws.aborts_log_exhausted;
      }
      if (observer.forced_direction) {
        ++ws.aborts_forced_direction;
      }

      bool any_flip = false;
      for (size_t flip : observer.flippable) {
        if (flip >= start_depth) {
          any_flip = true;
          break;
        }
      }
      if (any_flip || observer.forced_direction) {
        // One export per run; all pendings of this run share the snapshot.
        auto trace = std::make_shared<const PortableTrace>(ExportTrace(arena, observer.trace));
        auto seed = std::make_shared<const std::vector<i64>>(std::move(out.cells));
        auto domains = std::make_shared<const std::vector<Interval>>(std::move(out.domains));
        // Case-1 alternatives, deepest explored first under DFS.
        for (size_t flip : observer.flippable) {
          if (flip < start_depth) {
            continue;  // Already offered by the run that generated this prefix.
          }
          frontier.Push(wid, ParallelPending{trace, flip + 1, /*negate_last=*/true, seed,
                                             domains},
                        /*priority=*/observer.bits_at[flip]);
        }
        if (observer.forced_direction) {
          // Highest priority under DFS: steers the run back onto the log.
          frontier.Push(wid, ParallelPending{trace, trace->constraints.size(),
                                             /*negate_last=*/false, seed, domains},
                        /*priority=*/observer.cursor);
        }
      }
      return false;
    };

    // Per-worker import memo: sibling pendings share the same portable
    // trace, so the full trace is re-interned into this worker's arena
    // once — and its node hashes computed once — and every pop solves
    // over a prefix view and fingerprints over the memoized hashes. No
    // per-pop import, constraint-vector copy, or whole-trace rehash.
    // Keyed by raw pointer; the keepalive vector pins every keyed trace
    // so a recycled allocation address can never alias a retired one.
    struct ImportedTrace {
      std::vector<Constraint> constraints;
      std::vector<u64> node_hash;
    };
    std::unordered_map<const PortableTrace*, ImportedTrace> import_memo;
    std::vector<std::shared_ptr<const PortableTrace>> import_keepalive;
    auto imported_trace =
        [&](const std::shared_ptr<const PortableTrace>& t) -> const ImportedTrace& {
      auto it = import_memo.find(t.get());
      if (it != import_memo.end()) {
        return it->second;
      }
      if (import_memo.size() >= 64) {  // Bound resident snapshots.
        import_memo.clear();
        import_keepalive.clear();
      }
      import_keepalive.push_back(t);
      ImportedTrace imported{
          ImportConstraints(*t, t->constraints.size(), /*negate_last=*/false, &arena),
          PortableNodeHashes(*t)};
      return import_memo.emplace(t.get(), std::move(imported)).first->second;
    };

    // Worker-private initial random input. Worker 0 draws exactly the
    // sequential engine's initial input; the others diversify the start of
    // the search.
    bool done = false;
    if (!stop.StopRequested() && !budget.Exhausted() &&
        runs_admitted.fetch_add(1) < config.max_runs) {
      std::vector<i64> initial(runner.layout().defaults().size());
      for (i64& v : initial) {
        v = rng.NextPrintable();
      }
      done = do_run(initial, 0);
    }

    // Batched frontier solves: pop up to K pendings per frontier visit and
    // solve them back to back before running any model. Sibling pendings
    // share almost every slice, so the batch's first solve warms the cache
    // for the rest; runs follow in pop order.
    const size_t batch_cap = std::max<u32>(1, config.solve_batch);
    std::vector<ParallelPending> batch;
    struct ReadyRun {
      std::vector<i64> model;
      size_t len = 0;
    };
    std::vector<ReadyRun> ready;
    while (!done && !stop.StopRequested() && !budget.Exhausted()) {
      u64 stolen = 0;
      if (!frontier.PopBatch(wid, pop_order(), batch_cap, &batch, &stolen)) {
        break;  // Frontier drained, cancelled, or run cap reached.
      }
      ws.steals += stolen;
      ready.clear();
      for (const ParallelPending& pending : batch) {
        const ImportedTrace& imported = imported_trace(pending.trace);
        const u64 fp = FingerprintConstraints(*pending.trace, pending.len, pending.negate_last,
                                              imported.node_hash);
        {
          std::lock_guard<std::mutex> lock(dedup_mu);
          if (!tried.insert(fp).second) {
            ++ws.dedup_skips;
            continue;
          }
        }
        const ConstraintSpan set(imported.constraints.data(), pending.len, pending.negate_last);
        ++ws.solver_calls;
        SolveResult solved =
            incremental != nullptr ? incremental->Solve(set, *pending.domains, *pending.seed)
                                   : solver.Solve(set, *pending.domains, *pending.seed);
        if (solved.status == SolveStatus::kSat) {
          ready.push_back(ReadyRun{std::move(solved.model), pending.len});
        }
      }
      for (ReadyRun& run : ready) {
        if (done || stop.StopRequested() || budget.Exhausted()) {
          break;
        }
        if (runs_admitted.fetch_add(1) >= config.max_runs) {
          // Global run cap: the whole search is over, not just this worker.
          frontier.Close();
          done = true;
          break;
        }
        done = do_run(run.model, run.len);
      }
    }
    if (incremental != nullptr) {
      const IncrementalStats& inc = incremental->stats();
      ws.slices_solved = inc.slices_solved;
      ws.slice_sat_hits = inc.slice_sat_hits;
      ws.slice_unsat_hits = inc.slice_unsat_hits;
    }
    frontier.Retire();
  };

  std::vector<std::thread> threads;
  threads.reserve(num_workers);
  for (u32 wid = 0; wid < num_workers; ++wid) {
    threads.emplace_back(worker_fn, wid);
  }
  for (std::thread& t : threads) {
    t.join();
  }

  // Lossless aggregation: every per-worker counter sums into exactly one
  // aggregate field.
  for (const ReplayWorkerStats& ws : worker_stats) {
    result.stats.runs += ws.runs;
    result.stats.solver_calls += ws.solver_calls;
    result.stats.aborts_forced_direction += ws.aborts_forced_direction;
    result.stats.aborts_concrete_mismatch += ws.aborts_concrete_mismatch;
    result.stats.aborts_log_exhausted += ws.aborts_log_exhausted;
    result.stats.crashes_wrong_site += ws.crashes_wrong_site;
    result.stats.steals += ws.steals;
    result.stats.dedup_skips += ws.dedup_skips;
    result.stats.cancelled_runs += ws.cancelled_runs;
    result.stats.slices_solved += ws.slices_solved;
    result.stats.slice_sat_hits += ws.slice_sat_hits;
    result.stats.slice_unsat_hits += ws.slice_unsat_hits;
  }
  result.stats.pending_peak = frontier.peak();
  result.stats.per_worker = std::move(worker_stats);

  result.budget_exhausted = !result.reproduced;
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return result;
}

}  // namespace retrace
