#include "src/replay/replay_engine.h"

#include <chrono>
#include <cstdlib>
#include <deque>
#include <memory>

namespace retrace {
namespace {

// Branch observer implementing the four replay cases of paper §3.1.
class ReplayObserver : public BranchObserver {
 public:
  ReplayObserver(const InstrumentationPlan& plan, const BitVec& log) : plan_(plan), log_(log) {
    debug_ = std::getenv("RETRACE_DEBUG_REPLAY") != nullptr;
  }

  Action OnBranch(i32 branch_id, bool taken, ExprRef cond_shadow) override {
    const bool instrumented = plan_.Instrumented(branch_id);
    const bool symbolic = cond_shadow != kNoExpr;
    if (!instrumented) {
      if (symbolic) {
        // Case 1: both directions remain explorable.
        flippable.push_back(trace.size());
        trace.push_back(Constraint{cond_shadow, taken});
      }
      // Case 4: nothing to do.
      return Action::kContinue;
    }
    if (cursor >= log_.size()) {
      // The recorded execution ended (it crashed); running past the log on
      // an instrumented branch means this path already diverged.
      log_exhausted = true;
      return Action::kAbort;
    }
    const bool logged = log_.GetBit(cursor++);
    if (symbolic) {
      if (taken == logged) {
        trace.push_back(Constraint{cond_shadow, taken});  // Case 2a.
        return Action::kContinue;
      }
      // Case 2b: append the constraint forcing the *logged* direction and
      // abort; the engine pushes this set so the next input follows the log.
      trace.push_back(Constraint{cond_shadow, logged});
      forced_direction = true;
      return Action::kAbort;
    }
    if (taken == logged) {
      return Action::kContinue;  // Case 3a.
    }
    concrete_mismatch = true;  // Case 3b.
    if (debug_) {
      std::fprintf(stderr, "[replay] 3b concrete mismatch branch=%d cursor=%zu taken=%d\n",
                   branch_id, cursor - 1, taken ? 1 : 0);
    }
    return Action::kAbort;
  }

  std::vector<Constraint> trace;
  std::vector<size_t> flippable;
  size_t cursor = 0;
  bool forced_direction = false;
  bool concrete_mismatch = false;
  bool log_exhausted = false;

 private:
  const InstrumentationPlan& plan_;
  const BitVec& log_;
  bool debug_ = false;
};

struct Pending {
  std::shared_ptr<std::vector<Constraint>> trace;
  size_t len = 0;           // Constraints [0, len) form the set.
  bool negate_last = false;  // Case 1 pendings negate constraint len-1.
  std::shared_ptr<std::vector<i64>> seed;
  std::shared_ptr<std::vector<Interval>> domains;
};

}  // namespace

ReplayResult ReplayEngine::Reproduce(const ReplayConfig& config) {
  const auto t0 = std::chrono::steady_clock::now();
  ReplayResult result;

  CellRunner runner(module_, report_.shape);
  Budget budget = config.wall_ms > 0
                      ? Budget::StepsAndMillis(config.total_steps, config.wall_ms)
                      : Budget::Steps(config.total_steps);
  Solver solver(*arena_, config.solver);
  Rng rng(config.seed);

  // Initial run: random printable input bytes (the developer has no input).
  std::vector<i64> initial(runner.layout().defaults().size());
  for (i64& v : initial) {
    v = rng.NextPrintable();
  }

  std::deque<Pending> pendings;
  const SyscallLog* replay_log =
      config.use_syscall_log && report_.has_syscall_log ? &report_.syscall_log : nullptr;

  // Runs one input; returns true when the bug is reproduced.
  auto do_run = [&](const std::vector<i64>& model, size_t start_depth) -> bool {
    ReplayObserver observer(plan_, report_.branch_log);
    CellRunConfig run_config;
    run_config.model = model;
    run_config.arena = arena_;
    run_config.observers = {&observer};
    run_config.replay_log = replay_log;
    run_config.max_steps = config.max_steps_per_run;
    run_config.external_budget = &budget;
    CellRunOutput out = runner.Run(run_config);
    ++result.stats.runs;

    // Reproduction requires reaching the reported crash site having
    // followed the *entire* branch log: the recorded bits end exactly at
    // the user-site crash, so a run that crashes at the same location with
    // bits left over took a shortcut (e.g. an early signal delivery) and is
    // not the recorded execution.
    if (out.result.Crashed() && out.result.crash.SameSite(report_.crash) &&
        observer.cursor == report_.branch_log.size()) {
      result.reproduced = true;
      result.crash = out.result.crash;
      result.witness_cells = out.cells;
      result.witness_argv = runner.layout().MaterializeArgv(runner.spec(), out.cells);
      return true;
    }
    if (out.result.Crashed()) {
      ++result.stats.crashes_wrong_site;
    }
    if (observer.concrete_mismatch) {
      ++result.stats.aborts_concrete_mismatch;
    }
    if (observer.log_exhausted) {
      ++result.stats.aborts_log_exhausted;
    }

    auto trace = std::make_shared<std::vector<Constraint>>(std::move(observer.trace));
    auto seed = std::make_shared<std::vector<i64>>(std::move(out.cells));
    auto domains = std::make_shared<std::vector<Interval>>(std::move(out.domains));
    // Case-1 alternatives, deepest explored first under DFS.
    for (size_t flip : observer.flippable) {
      if (flip < start_depth) {
        continue;  // Already offered by the run that generated this prefix.
      }
      pendings.push_back(Pending{trace, flip + 1, /*negate_last=*/true, seed, domains});
    }
    if (observer.forced_direction) {
      ++result.stats.aborts_forced_direction;
      // Highest priority: the set that steers the run back onto the log.
      pendings.push_back(Pending{trace, trace->size(), /*negate_last=*/false, seed, domains});
    }
    result.stats.pending_peak = std::max(result.stats.pending_peak,
                                         static_cast<u64>(pendings.size()));
    return false;
  };

  if (do_run(initial, 0)) {
    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    return result;
  }

  while (!pendings.empty() && result.stats.runs < config.max_runs && !budget.Exhausted()) {
    Pending pending;
    if (config.pick == ReplayConfig::Pick::kDfs) {
      pending = std::move(pendings.back());
      pendings.pop_back();
    } else {
      pending = std::move(pendings.front());
      pendings.pop_front();
    }

    std::vector<Constraint> constraints(pending.trace->begin(),
                                        pending.trace->begin() + pending.len);
    if (pending.negate_last) {
      constraints.back().want_true = !constraints.back().want_true;
    }
    ++result.stats.solver_calls;
    const SolveResult solved = solver.Solve(constraints, *pending.domains, *pending.seed);
    if (solved.status != SolveStatus::kSat) {
      continue;
    }
    if (do_run(solved.model, pending.len)) {
      break;
    }
  }

  result.budget_exhausted = !result.reproduced;
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return result;
}

}  // namespace retrace
