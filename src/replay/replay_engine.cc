#include "src/replay/replay_engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_set>

#include "src/dist/coordinator.h"
#include "src/solver/incremental.h"
#include "src/support/env.h"
#include "src/support/stop_token.h"
#include "src/support/workqueue.h"

namespace retrace {
namespace {

// Dense per-branch accumulator behind the failure-telemetry layer: one
// slot per branch location, bumped with plain array writes so telemetry
// stays invisible to the search (no allocation, no decision changes —
// run counts remain bit-identical to the pre-telemetry engine). Each
// worker owns one and folds it into the sparse aggregate profile once,
// when its search ends.
struct FailureAccum {
  explicit FailureAccum(size_t num_branches)
      : deaths_concrete(num_branches, 0),
        deaths_exhausted(num_branches, 0),
        deaths_wrong_crash(num_branches, 0),
        blind_execs(num_branches, 0) {}

  std::vector<u64> deaths_concrete;
  std::vector<u64> deaths_exhausted;
  std::vector<u64> deaths_wrong_crash;
  std::vector<u64> blind_execs;
  u64 unattributed = 0;

  void Death(i32 last_blind_branch, std::vector<u64>& cls) {
    if (last_blind_branch >= 0 && static_cast<size_t>(last_blind_branch) < cls.size()) {
      ++cls[last_blind_branch];
    } else {
      ++unattributed;
    }
  }

  // Sparse, branch-id-sorted view (the wire/merge shape).
  ReplayFailureProfile ToProfile() const {
    ReplayFailureProfile profile;
    for (size_t id = 0; id < blind_execs.size(); ++id) {
      if (blind_execs[id] == 0 && deaths_concrete[id] == 0 && deaths_exhausted[id] == 0 &&
          deaths_wrong_crash[id] == 0) {
        continue;
      }
      profile.branches.push_back(BranchFailureCounts{
          static_cast<u32>(id), deaths_concrete[id], deaths_exhausted[id],
          deaths_wrong_crash[id], blind_execs[id]});
    }
    profile.deaths_unattributed = unattributed;
    return profile;
  }
};

// Branch observer implementing the four replay cases of paper §3.1.
class ReplayObserver : public BranchObserver {
 public:
  ReplayObserver(const InstrumentationPlan& plan, const BitVec& log, FailureAccum* failures)
      : plan_(plan), log_(log), failures_(failures) {
    debug_ = std::getenv("RETRACE_DEBUG_REPLAY") != nullptr;
  }

  Action OnBranch(i32 branch_id, bool taken, ExprRef cond_shadow) override {
    return Step(branch_id, taken, cond_shadow, plan_.Instrumented(branch_id));
  }

  // The bytecode VM bakes plan membership into its branch dispatch and
  // hands it over here, skipping the per-branch bitset lookup.
  Action OnBranchCompiled(i32 branch_id, bool taken, ExprRef cond_shadow,
                          bool site_observed) override {
    return Step(branch_id, taken, cond_shadow, site_observed);
  }

  Action Step(i32 branch_id, bool taken, ExprRef cond_shadow, bool instrumented) {
    const bool symbolic = cond_shadow != kNoExpr;
    if (!instrumented) {
      if (symbolic) {
        // Case 1: both directions remain explorable. This is also where
        // the search is blind — the log cannot check the direction — so
        // the telemetry layer remembers the most recent such branch as
        // the attribution point for an off-log death later in the run.
        flippable.push_back(trace.size());
        trace.push_back(Constraint{cond_shadow, taken});
        bits_at.push_back(cursor);
        dir_at.push_back(logged_forced);
        last_blind_branch = branch_id;
        if (failures_ != nullptr && static_cast<size_t>(branch_id) <
                                        failures_->blind_execs.size()) {
          ++failures_->blind_execs[branch_id];
        }
      }
      // Case 4: nothing to do.
      return Action::kContinue;
    }
    if (cursor >= log_.size()) {
      // The recorded execution ended (it crashed); running past the log on
      // an instrumented branch means this path already diverged.
      log_exhausted = true;
      return Action::kAbort;
    }
    const bool logged = log_.GetBit(cursor++);
    if (symbolic) {
      if (taken == logged) {
        trace.push_back(Constraint{cond_shadow, taken});  // Case 2a.
        bits_at.push_back(cursor);
        dir_at.push_back(logged_forced++);
        return Action::kContinue;
      }
      // Case 2b: append the constraint forcing the *logged* direction and
      // abort; the engine pushes this set so the next input follows the log.
      trace.push_back(Constraint{cond_shadow, logged});
      bits_at.push_back(cursor);
      dir_at.push_back(logged_forced++);
      forced_direction = true;
      return Action::kAbort;
    }
    if (taken == logged) {
      return Action::kContinue;  // Case 3a.
    }
    concrete_mismatch = true;  // Case 3b.
    if (debug_) {
      std::fprintf(stderr, "[replay] 3b concrete mismatch branch=%d cursor=%zu taken=%d\n",
                   branch_id, cursor - 1, taken ? 1 : 0);
    }
    return Action::kAbort;
  }

  std::vector<Constraint> trace;
  // Log bits consumed when each trace entry was recorded — the priority
  // of the pending set ending at that constraint under Pick::kLogBits.
  std::vector<size_t> bits_at;
  // Logged directions (case-2 constraints) in the trace *before* each
  // entry — the Pick::kDirection score of a flip at that entry: how many
  // logged directions the flip's constraint set forces. A forced-
  // direction (2b) full set scores `logged_forced` itself, which counts
  // its own forcing constraint.
  std::vector<u64> dir_at;
  std::vector<size_t> flippable;
  size_t cursor = 0;
  u64 logged_forced = 0;
  bool forced_direction = false;
  bool concrete_mismatch = false;
  bool log_exhausted = false;
  // Last case-1 branch this run executed (-1: none yet) — the telemetry
  // attribution point for an off-log death.
  i32 last_blind_branch = -1;

 private:
  const InstrumentationPlan& plan_;
  const BitVec& log_;
  FailureAccum* failures_ = nullptr;
  bool debug_ = false;
};

// First-crash-wins cancellation: aborts an in-flight run once another
// worker has reproduced the bug, instead of letting it finish a pointless
// multi-million-step execution.
class CancelObserver : public BranchObserver {
 public:
  explicit CancelObserver(const StopSource& stop) : stop_(stop) {}

  Action OnBranch(i32 /*branch_id*/, bool /*taken*/, ExprRef /*cond_shadow*/) override {
    return stop_.StopRequested() ? Action::kAbort : Action::kContinue;
  }

 private:
  const StopSource& stop_;
};

// The reproduction predicate, shared verbatim by the sequential,
// parallel and scout loops (they must accept identical witnesses or the
// distributed path diverges from the in-process one). Reproduction
// requires reaching the reported crash site having consumed the *entire*
// branch log: the recorded bits end exactly at the user-site crash, so a
// run that crashes at the same location with bits left over took a
// shortcut (e.g. an early signal delivery) and is not the recorded
// execution.
bool IsReproduction(const RunResult& run, size_t log_cursor, const BugReport& report) {
  return run.Crashed() && run.crash.SameSite(report.crash) &&
         log_cursor == report.branch_log.size();
}

// Sequential frontier entry: constraints live in the engine's arena.
struct Pending {
  std::shared_ptr<std::vector<Constraint>> trace;
  size_t len = 0;           // Constraints [0, len) form the set.
  bool negate_last = false;  // Case 1 pendings negate constraint len-1.
  std::shared_ptr<std::vector<i64>> seed;
  std::shared_ptr<std::vector<Interval>> domains;
  u64 log_bits = 0;   // Log bits the prefix consumed (Pick::kLogBits key).
  u64 dir_bits = 0;   // Logged directions forced (Pick::kDirection key).
};

// Discipline a fixed (non-portfolio) pick runs — the attribution slot in
// ReplayStats::discipline_runs. kPortfolio degenerates to DFS with one
// worker, so it maps there.
SearchDiscipline DisciplineOfPick(ReplayConfig::Pick pick) {
  switch (pick) {
    case ReplayConfig::Pick::kFifo: return SearchDiscipline::kFifo;
    case ReplayConfig::Pick::kLogBits: return SearchDiscipline::kLogBits;
    case ReplayConfig::Pick::kDirection: return SearchDiscipline::kDirection;
    case ReplayConfig::Pick::kDfs:
    case ReplayConfig::Pick::kPortfolio: break;
  }
  return SearchDiscipline::kDfs;
}

// Adaptive promotion cadence: an adaptive worker re-evaluates every
// kPromoteInterval of its own runs, and a fixed discipline is eligible
// once the fleet has attributed kPromoteMinRuns runs to it.
constexpr u64 kPromoteInterval = 32;
constexpr u64 kPromoteMinRuns = 16;

// Strict enum-knob parsing for ReplayConfig::FromEnv — same contract as
// src/support/env.h: unset keeps the default, garbage exits loudly.
[[noreturn]] void BadReplayKnob(const char* name, const char* value, const char* expected) {
  std::fprintf(stderr, "%s: invalid value '%s' (expected %s)\n", name, value, expected);
  std::exit(2);
}

ReplayConfig::Pick PickFromEnv() {
  const char* env = std::getenv("RETRACE_REPLAY_PICK");
  if (env == nullptr) {
    return ReplayConfig::Pick::kDfs;
  }
  const std::string pick = env;
  if (pick == "dfs") return ReplayConfig::Pick::kDfs;
  if (pick == "fifo") return ReplayConfig::Pick::kFifo;
  if (pick == "logbits") return ReplayConfig::Pick::kLogBits;
  if (pick == "direction") return ReplayConfig::Pick::kDirection;
  if (pick == "portfolio") return ReplayConfig::Pick::kPortfolio;
  BadReplayKnob("RETRACE_REPLAY_PICK", env, "dfs|fifo|logbits|direction|portfolio");
}

ReplayTransport TransportFromEnv() {
  const char* env = std::getenv("RETRACE_REPLAY_TRANSPORT");
  if (env == nullptr) {
    return ReplayTransport::kFork;
  }
  const std::string transport = env;
  if (transport == "fork") return ReplayTransport::kFork;
  if (transport == "tcp") return ReplayTransport::kTcp;
  BadReplayKnob("RETRACE_REPLAY_TRANSPORT", env, "fork|tcp");
}

// First entry of the comma-separated RETRACE_REPLAY_SHARDS sweep list
// ("1,2,4" — benches sweep the whole list; a single config uses the
// head). The first entry must be a plain positive integer.
u32 FirstShardCountFromEnv() {
  const char* env = std::getenv("RETRACE_REPLAY_SHARDS");
  if (env == nullptr) {
    return 1;
  }
  u64 value = 0;
  const char* c = env;
  if (*c < '0' || *c > '9') {
    BadReplayKnob("RETRACE_REPLAY_SHARDS", env, "comma-separated positive shard counts");
  }
  for (; *c >= '0' && *c <= '9'; ++c) {
    value = value * 10 + static_cast<u64>(*c - '0');
    if (value > 64) {
      BadReplayKnob("RETRACE_REPLAY_SHARDS", env, "shard counts in [1, 64]");
    }
  }
  if (*c != '\0' && *c != ',') {
    BadReplayKnob("RETRACE_REPLAY_SHARDS", env, "comma-separated positive shard counts");
  }
  if (value == 0) {
    BadReplayKnob("RETRACE_REPLAY_SHARDS", env, "shard counts in [1, 64]");
  }
  return static_cast<u32>(value);
}

}  // namespace

void ReplayFailureProfile::Merge(const ReplayFailureProfile& other) {
  if (other.branches.empty()) {
    deaths_unattributed += other.deaths_unattributed;
    return;
  }
  std::vector<BranchFailureCounts> merged;
  merged.reserve(branches.size() + other.branches.size());
  size_t i = 0;
  size_t j = 0;
  while (i < branches.size() || j < other.branches.size()) {
    if (j >= other.branches.size() ||
        (i < branches.size() && branches[i].branch_id < other.branches[j].branch_id)) {
      merged.push_back(branches[i++]);
    } else if (i >= branches.size() || other.branches[j].branch_id < branches[i].branch_id) {
      merged.push_back(other.branches[j++]);
    } else {
      BranchFailureCounts sum = branches[i++];
      const BranchFailureCounts& o = other.branches[j++];
      sum.deaths_concrete += o.deaths_concrete;
      sum.deaths_exhausted += o.deaths_exhausted;
      sum.deaths_wrong_crash += o.deaths_wrong_crash;
      sum.blind_execs += o.blind_execs;
      merged.push_back(sum);
    }
  }
  branches = std::move(merged);
  deaths_unattributed += other.deaths_unattributed;
}

const BranchFailureCounts* ReplayFailureProfile::Find(u32 branch_id) const {
  auto it = std::lower_bound(
      branches.begin(), branches.end(), branch_id,
      [](const BranchFailureCounts& c, u32 id) { return c.branch_id < id; });
  return it != branches.end() && it->branch_id == branch_id ? &*it : nullptr;
}

u64 ReplayFailureProfile::TotalDeaths() const {
  u64 total = deaths_unattributed;
  for (const BranchFailureCounts& c : branches) {
    total += c.Deaths();
  }
  return total;
}

ReplayConfig ReplayConfig::FromEnv() {
  ReplayConfig config;
  config.num_workers = static_cast<u32>(EnvKnobI64("RETRACE_REPLAY_WORKERS", 1, 1, 4096));
  config.num_shards = FirstShardCountFromEnv();
  config.pick = PickFromEnv();
  config.engine = ExecEngineKindFromEnv();
  config.solver_cache = EnvKnobBool("RETRACE_SOLVER_CACHE", true);
  config.prune_subsumed = EnvKnobBool("RETRACE_REPLAY_PRUNE", false);
  config.transport = TransportFromEnv();
  config.gossip_interval_ms =
      static_cast<int>(EnvKnobI64("RETRACE_GOSSIP_INTERVAL_MS", 20, 1, 1000));
  config.heartbeat_interval_ms =
      static_cast<int>(EnvKnobI64("RETRACE_HEARTBEAT_INTERVAL_MS", 100, 0, 60'000));
  config.heartbeat_timeout_ms =
      static_cast<int>(EnvKnobI64("RETRACE_HEARTBEAT_TIMEOUT_MS", 10'000, 0, 600'000));
  // Stored raw; the coordinator parses it (src/dist/fault.h) and exits 2
  // on garbage, matching the strict contract of every other knob —
  // validating here would invert the replay -> dist layering.
  if (const char* fault = std::getenv("RETRACE_FAULT_SPEC")) {
    config.fault_spec = fault;
  }
  // Free-form shared secret; any value is valid, so no strict parse.
  if (const char* token = std::getenv("RETRACE_SHARD_TOKEN")) {
    config.shard_token = token;
  }
  // Comma-separated host:port list of waiting retrace_shardd daemons to
  // dial out to. Free-form here — the connect attempt is the validator,
  // and an unreachable endpoint already fails loudly in the transport.
  if (const char* endpoints = std::getenv("RETRACE_SHARD_ENDPOINTS")) {
    config.shard_endpoints.clear();
    std::string current;
    for (const char* c = endpoints;; ++c) {
      if (*c == ',' || *c == '\0') {
        if (!current.empty()) {
          config.shard_endpoints.push_back(current);
          current.clear();
        }
        if (*c == '\0') {
          break;
        }
      } else {
        current.push_back(*c);
      }
    }
  }
  return config;
}

u32 DefaultReplayWorkers() {
  return std::clamp(std::thread::hardware_concurrency(), 1u, 16u);
}

// ----- FrontierPort: the re-balance window into a live frontier -----
//
// Lock order: port mutex, then (inside WorkStealingQueue calls) the
// queue mutex — never the reverse, so Attach/Detach cannot deadlock
// against a pump mid-Import/Export.

void FrontierPort::Attach(WorkStealingQueue<PortablePending>* frontier, u32 num_workers) {
  std::lock_guard<std::mutex> lock(mu_);
  frontier_ = frontier;
  num_workers_ = std::max(1u, num_workers);
  ever_attached_ = true;
  // A hold acquired before the search started (the pump arms re-balancing
  // ahead of the first worker run) transfers onto the live queue.
  if (held_) {
    frontier_->AddProducer();
  }
  // Imports that raced ahead of the frontier's existence land now.
  for (PortablePending& pending : pre_attach_imports_) {
    const u64 priority = pending.priority;
    const u64 direction = pending.dir_score;
    frontier_->Push(import_cursor_++ % num_workers_, std::move(pending), priority, direction);
  }
  pre_attach_imports_.clear();
}

void FrontierPort::Detach() {
  std::lock_guard<std::mutex> lock(mu_);
  if (frontier_ != nullptr && held_) {
    frontier_->Retire();
    held_ = false;
  }
  frontier_ = nullptr;
}

bool FrontierPort::Import(PortablePending pending) {
  std::lock_guard<std::mutex> lock(mu_);
  if (frontier_ == nullptr) {
    if (ever_attached_) {
      return false;  // Search over: too late for this pending.
    }
    pre_attach_imports_.push_back(std::move(pending));
    imported_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  // A closed frontier will never be popped again (termination or run
  // cap): refusing lets the pump return the pending to the fleet
  // instead of burying it in a queue that is about to be destroyed.
  const u64 priority = pending.priority;
  const u64 direction = pending.dir_score;
  if (!frontier_->PushIfOpen(import_cursor_ % num_workers_, std::move(pending), priority,
                             direction)) {
    return false;
  }
  ++import_cursor_;
  imported_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

size_t FrontierPort::Export(size_t max_items, std::vector<PortablePending>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (frontier_ == nullptr) {
    return 0;
  }
  // Never starve ourselves to feed a peer: keep ~2 entries per worker.
  const size_t n = frontier_->ExportDeepest(max_items, 2 * num_workers_, out);
  exported_.fetch_add(n, std::memory_order_relaxed);
  return n;
}

size_t FrontierPort::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return frontier_ == nullptr ? 0 : frontier_->size();
}

void FrontierPort::HoldOpen() {
  std::lock_guard<std::mutex> lock(mu_);
  if (held_) {
    return;
  }
  held_ = true;
  if (frontier_ != nullptr) {
    frontier_->AddProducer();
  }
}

void FrontierPort::ReleaseHold() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!held_) {
    return;
  }
  held_ = false;
  if (frontier_ != nullptr) {
    frontier_->Retire();
  }
}

ReplayResult ReplayEngine::Reproduce(const ReplayConfig& config) {
  if (config.num_shards > 1) {
    // Multi-process mode: the coordinator forks shard processes, each of
    // which re-enters this engine through ReproduceShard.
    return ReproduceDistributed(module_, plan_, report_, config);
  }
  const u32 workers = config.num_workers == 0 ? DefaultReplayWorkers() : config.num_workers;
  if (workers <= 1) {
    return ReproduceSequential(config);
  }
  return ReproduceParallel(config, workers, /*shard=*/nullptr);
}

ReplayResult ReplayEngine::ReproduceShard(const ReplayConfig& config, ShardContext* shard) {
  // Even a single worker runs the parallel scheduler here: the seed
  // frontier, shared cache and external cancellation all hang off it.
  const u32 workers = std::max(1u, config.num_workers == 0 ? DefaultReplayWorkers()
                                                          : config.num_workers);
  return ReproduceParallel(config, workers, shard);
}

ReplayResult ReplayEngine::ReproduceSequential(const ReplayConfig& config) {
  const auto t0 = std::chrono::steady_clock::now();
  ReplayResult result;
  FailureAccum failures(module_.branches.size());

  CellRunner runner(module_, report_.shape);
  Budget budget = config.wall_ms > 0
                      ? Budget::StepsAndMillis(config.total_steps, config.wall_ms)
                      : Budget::Steps(config.total_steps);
  Solver solver(*arena_, config.solver);
  // Incremental layer (partition + slice caches); disabled falls back to
  // the monolithic solver — the bit-identical pre-parallel engine.
  std::unique_ptr<SliceCache> slice_cache;
  std::unique_ptr<IncrementalSolver> incremental;
  if (config.solver_cache) {
    slice_cache = std::make_unique<SliceCache>(config.slice_cache_capacity);
    incremental = std::make_unique<IncrementalSolver>(*arena_, config.solver, slice_cache.get());
  }
  Rng rng(config.seed);

  // Initial run: random printable input bytes (the developer has no input).
  std::vector<i64> initial(runner.layout().defaults().size());
  for (i64& v : initial) {
    v = rng.NextPrintable();
  }

  std::deque<Pending> pendings;
  // Under kLogBits/kDirection the deque doubles as max-heap storage on
  // the pick's key (the pick is fixed for the whole search), so pops stay
  // O(log n) instead of a linear scan over frontiers that reach tens of
  // thousands of entries.
  const bool heap_pick = config.pick == ReplayConfig::Pick::kLogBits ||
                         config.pick == ReplayConfig::Pick::kDirection;
  const bool dir_pick = config.pick == ReplayConfig::Pick::kDirection;
  auto bits_less = [dir_pick](const Pending& a, const Pending& b) {
    return (dir_pick ? a.dir_bits : a.log_bits) < (dir_pick ? b.dir_bits : b.log_bits);
  };
  // Prefix-subsumption index (prune_subsumed): fingerprints of every
  // executed constraint prefix and every published pending set.
  std::unique_ptr<FingerprintSet> subsumed;
  if (config.prune_subsumed) {
    subsumed = std::make_unique<FingerprintSet>();
  }
  auto publish = [&](Pending pending, u64 fp) {
    if (subsumed != nullptr && !subsumed->Insert(fp)) {
      ++result.stats.pendings_pruned;
      return;
    }
    pendings.push_back(std::move(pending));
    if (heap_pick) {
      std::push_heap(pendings.begin(), pendings.end(), bits_less);
    }
  };
  const SyscallLog* replay_log =
      config.use_syscall_log && report_.has_syscall_log ? &report_.syscall_log : nullptr;

  // Mirrors the aggregate counters into the single worker entry, keeping
  // the per-worker view lossless at any worker count.
  auto finish = [&]() {
    if (incremental != nullptr) {
      const IncrementalStats& inc = incremental->stats();
      result.stats.slices_solved = inc.slices_solved;
      result.stats.slice_sat_hits = inc.slice_sat_hits;
      result.stats.slice_unsat_hits = inc.slice_unsat_hits;
      result.stats.slice_evictions = slice_cache->evictions();
    }
    const size_t disc = static_cast<size_t>(DisciplineOfPick(config.pick));
    result.stats.discipline_runs[disc] = result.stats.runs;
    result.stats.discipline_on_log[disc] = result.stats.aborts_forced_direction;
    result.stats.failure_profile = failures.ToProfile();
    ReplayWorkerStats worker;
    worker.runs = result.stats.runs;
    worker.solver_calls = result.stats.solver_calls;
    worker.aborts_forced_direction = result.stats.aborts_forced_direction;
    worker.aborts_concrete_mismatch = result.stats.aborts_concrete_mismatch;
    worker.aborts_log_exhausted = result.stats.aborts_log_exhausted;
    worker.crashes_wrong_site = result.stats.crashes_wrong_site;
    worker.slices_solved = result.stats.slices_solved;
    worker.slice_sat_hits = result.stats.slice_sat_hits;
    worker.slice_unsat_hits = result.stats.slice_unsat_hits;
    worker.pendings_pruned = result.stats.pendings_pruned;
    worker.corpus_runs = result.stats.corpus_runs;
    result.stats.per_worker = {worker};
    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  };

  // Runs one input; returns true when the bug is reproduced.
  auto do_run = [&](const std::vector<i64>& model, size_t start_depth) -> bool {
    ReplayObserver observer(plan_, report_.branch_log, &failures);
    CellRunConfig run_config;
    run_config.model = model;
    run_config.arena = arena_;
    run_config.observers = {&observer};
    run_config.replay_log = replay_log;
    run_config.max_steps = config.max_steps_per_run;
    run_config.external_budget = &budget;
    run_config.engine = config.engine;
    run_config.plan = &plan_;
    CellRunOutput out = runner.Run(run_config);
    ++result.stats.runs;

    if (IsReproduction(out.result, observer.cursor, report_)) {
      result.reproduced = true;
      result.crash = out.result.crash;
      result.witness_cells = out.cells;
      result.witness_argv = runner.layout().MaterializeArgv(runner.spec(), out.cells);
      return true;
    }
    if (out.result.Crashed()) {
      ++result.stats.crashes_wrong_site;
      failures.Death(observer.last_blind_branch, failures.deaths_wrong_crash);
    }
    if (observer.concrete_mismatch) {
      ++result.stats.aborts_concrete_mismatch;
      failures.Death(observer.last_blind_branch, failures.deaths_concrete);
    }
    if (observer.log_exhausted) {
      ++result.stats.aborts_log_exhausted;
      failures.Death(observer.last_blind_branch, failures.deaths_exhausted);
    }

    auto trace = std::make_shared<std::vector<Constraint>>(std::move(observer.trace));
    auto seed = std::make_shared<std::vector<i64>>(std::move(out.cells));
    auto domains = std::make_shared<std::vector<Interval>>(std::move(out.domains));
    // Prefix fingerprints for the subsumption index: chain[i] covers
    // constraints [0, i) as stored. Every *executed* prefix enters the
    // index (a forced-direction trace's final constraint was not executed
    // in its stored polarity — it is the 2b pending set itself, inserted
    // by its own publish below).
    std::vector<u64> chain;
    if (subsumed != nullptr) {
      chain.resize(trace->size() + 1);
      chain[0] = kConstraintFingerprintSeed;
      for (size_t i = 0; i < trace->size(); ++i) {
        chain[i + 1] = ExtendConstraintFingerprint(
            chain[i], arena_->StructuralHash((*trace)[i].expr), (*trace)[i].want_true);
      }
      const size_t executed = trace->size() - (observer.forced_direction ? 1 : 0);
      for (size_t i = 1; i <= executed; ++i) {
        subsumed->Insert(chain[i]);
      }
    }
    // Case-1 alternatives, deepest explored first under DFS.
    for (size_t flip : observer.flippable) {
      if (flip < start_depth) {
        continue;  // Already offered by the run that generated this prefix.
      }
      const u64 fp = subsumed != nullptr
                         ? ExtendConstraintFingerprint(
                               chain[flip], arena_->StructuralHash((*trace)[flip].expr),
                               !(*trace)[flip].want_true)
                         : 0;
      publish(Pending{trace, flip + 1, /*negate_last=*/true, seed, domains,
                      observer.bits_at[flip], observer.dir_at[flip]},
              fp);
    }
    if (observer.forced_direction) {
      ++result.stats.aborts_forced_direction;
      // Highest priority: the set that steers the run back onto the log.
      publish(Pending{trace, trace->size(), /*negate_last=*/false, seed, domains,
                      observer.cursor, observer.logged_forced},
              subsumed != nullptr ? chain[trace->size()] : 0);
    }
    result.stats.pending_peak = std::max(result.stats.pending_peak,
                                         static_cast<u64>(pendings.size()));
    return false;
  };

  bool found = do_run(initial, 0);
  // Corpus seeds: dynamic-analysis-discovered inputs run right after the
  // initial random run, so the frontier starts from exploration's deep
  // prefixes too. Empty by default — the legacy path is untouched.
  for (const std::vector<i64>& seed_model : config.corpus_seeds) {
    if (found || result.stats.runs >= config.max_runs || budget.Exhausted()) {
      break;
    }
    ++result.stats.corpus_runs;
    found = do_run(seed_model, 0);
  }
  if (found) {
    finish();
    return result;
  }

  while (!pendings.empty() && result.stats.runs < config.max_runs && !budget.Exhausted()) {
    Pending pending;
    if (config.pick == ReplayConfig::Pick::kFifo) {
      pending = std::move(pendings.front());
      pendings.pop_front();
    } else if (heap_pick) {
      // Deepest on-log progress first (max-heap; tie order unspecified).
      std::pop_heap(pendings.begin(), pendings.end(), bits_less);
      pending = std::move(pendings.back());
      pendings.pop_back();
    } else {
      // kDfs; kPortfolio degenerates to DFS with a single worker.
      pending = std::move(pendings.back());
      pendings.pop_back();
    }

    // Solve over a view of the trace prefix — no per-pop copy.
    const ConstraintSpan set(pending.trace->data(), pending.len, pending.negate_last);
    ++result.stats.solver_calls;
    const SolveResult solved = incremental != nullptr
                                   ? incremental->Solve(set, *pending.domains, *pending.seed)
                                   : solver.Solve(set, *pending.domains, *pending.seed);
    if (solved.status != SolveStatus::kSat) {
      continue;
    }
    if (do_run(solved.model, pending.len)) {
      break;
    }
  }

  result.budget_exhausted = !result.reproduced;
  finish();
  return result;
}

ReplayResult ReplayEngine::ReproduceParallel(const ReplayConfig& config, u32 num_workers,
                                             ShardContext* shard) {
  const auto t0 = std::chrono::steady_clock::now();
  ReplayResult result;

  // Shared scheduler state. Everything the workers share is either
  // immutable (module, plan, report), synchronized here (frontier, dedup
  // registry, winner slot), or lock-free (stop flag, run admission).
  WorkStealingQueue<PortablePending> frontier(num_workers);
  StopSource stop;
  std::mutex winner_mu;
  bool have_winner = false;
  std::mutex dedup_mu;
  std::unordered_set<u64> tried;
  std::atomic<u64> runs_admitted{0};
  std::vector<ReplayWorkerStats> worker_stats(num_workers);
  // Thread-confined failure telemetry: each worker bumps its own dense
  // accumulator; the join below folds them into the aggregate profile.
  std::vector<FailureAccum> worker_failures(num_workers, FailureAccum(module_.branches.size()));
  // Fleet-wide slice verdict store: once any worker proves a slice
  // SAT/UNSAT, every worker reuses the verdict (null = layer disabled).
  // A distributed shard shares its process-wide cache instead — the
  // gossip pump merges remote verdicts into it concurrently.
  std::unique_ptr<SliceCache> owned_cache;
  SliceCache* slice_cache = shard != nullptr ? shard->cache : nullptr;
  if (slice_cache == nullptr && config.solver_cache) {
    owned_cache = std::make_unique<SliceCache>(config.slice_cache_capacity);
    slice_cache = owned_cache.get();
  }
  const u64 rng_stream = shard != nullptr ? shard->rng_stream : 0;
  // Fleet-wide prefix-subsumption index (prune_subsumed): fingerprints
  // of every executed prefix and every published pending, shared by all
  // workers so cross-worker duplicates die at Push time.
  std::unique_ptr<FingerprintSet> subsumed;
  if (config.prune_subsumed) {
    subsumed = std::make_unique<FingerprintSet>();
  }
  // Per-discipline run accounting for the adaptive promotion layer:
  // completed runs and forced-direction (on-log) aborts attributed to
  // the discipline whose pop produced the run.
  std::array<std::atomic<u64>, kNumDisciplines> disc_runs{};
  std::array<std::atomic<u64>, kNumDisciplines> disc_on_log{};

  // Coordinator-shipped frontier: distributed shards start from their
  // partition of the scout's pending sets, spread round-robin over the
  // worker deques (workers still perform their own initial random runs —
  // cross-shard search diversification is part of the speedup).
  if (shard != nullptr) {
    for (size_t i = 0; i < shard->seed_frontier.size(); ++i) {
      PortablePending pending = std::move(shard->seed_frontier[i]);
      if (subsumed != nullptr) {
        // Seed entries are unique per shard (the coordinator dealt them),
        // but indexing them lets the search prune its own rediscoveries
        // of the scout's subtrees.
        subsumed->Insert(FingerprintConstraints(*pending.trace, pending.len,
                                                pending.negate_last));
      }
      const u64 priority = pending.priority;
      const u64 direction = pending.dir_score;
      frontier.Push(i % num_workers, std::move(pending), priority, direction);
    }
    shard->seed_frontier.clear();
    // Publish the frontier to the re-balance port before any worker can
    // drain it: the gossip pump may import/export from here on.
    if (shard->port != nullptr) {
      shard->port->Attach(&frontier, num_workers);
    }
  }

  const SyscallLog* replay_log =
      config.use_syscall_log && report_.has_syscall_log ? &report_.syscall_log : nullptr;

  auto worker_fn = [&](u32 wid) {
    ReplayWorkerStats& ws = worker_stats[wid];
    FailureAccum& failures = worker_failures[wid];
    // Thread-confined execution context: arena, interpreter harness and
    // solver are all single-threaded by design.
    ExprArena arena;
    CellRunner runner(module_, report_.shape);
    Solver solver(arena, config.solver);
    std::unique_ptr<IncrementalSolver> incremental;
    if (config.solver_cache) {
      incremental = std::make_unique<IncrementalSolver>(arena, config.solver, slice_cache);
    }
    Rng rng(config.seed + 0x9e3779b97f4a7c15ull * (wid + rng_stream));
    const u64 step_share = std::max<u64>(1, config.total_steps / num_workers);
    Budget budget = config.wall_ms > 0 ? Budget::StepsAndMillis(step_share, config.wall_ms)
                                       : Budget::Steps(step_share);

    // The worker's current search discipline. Fixed picks map directly;
    // under kPortfolio workers 0-3 run the four fixed disciplines and
    // the rest start adaptive (randomized DFS/FIFO) until the promotion
    // layer moves them onto whichever fixed discipline earns the best
    // on-log-run rate.
    SearchDiscipline disc = DisciplineOfPick(config.pick);
    const bool adaptive = config.pick == ReplayConfig::Pick::kPortfolio && wid >= 4;
    if (config.pick == ReplayConfig::Pick::kPortfolio) {
      switch (wid) {
        case 0: disc = SearchDiscipline::kDfs; break;
        case 1: disc = SearchDiscipline::kFifo; break;
        case 2: disc = SearchDiscipline::kLogBits; break;
        case 3: disc = SearchDiscipline::kDirection; break;
        default: disc = SearchDiscipline::kRandom; break;
      }
    }
    auto pop_order = [&]() -> PopOrder {
      switch (disc) {
        case SearchDiscipline::kDfs:
          return PopOrder::kNewestFirst;
        case SearchDiscipline::kFifo:
          return PopOrder::kOldestFirst;
        case SearchDiscipline::kLogBits:
          return PopOrder::kHighestPriority;
        case SearchDiscipline::kDirection:
          return PopOrder::kHighestDirection;
        case SearchDiscipline::kRandom:
          return (rng.Next() & 1) != 0 ? PopOrder::kNewestFirst : PopOrder::kOldestFirst;
      }
      return PopOrder::kNewestFirst;
    };
    // Promotes an adaptive worker onto the best-earning fixed discipline
    // (on-log rate = forced-direction aborts per completed run), once
    // some fixed discipline has enough attributed runs to rank.
    auto maybe_promote = [&]() {
      SearchDiscipline best = disc;
      double best_rate = -1.0;
      for (size_t d = 0; d < static_cast<size_t>(SearchDiscipline::kRandom); ++d) {
        const u64 runs = disc_runs[d].load(std::memory_order_relaxed);
        if (runs < kPromoteMinRuns) {
          continue;
        }
        const double rate = static_cast<double>(disc_on_log[d].load(std::memory_order_relaxed)) /
                            static_cast<double>(runs);
        if (rate > best_rate) {
          best_rate = rate;
          best = static_cast<SearchDiscipline>(d);
        }
      }
      // Only a discipline that actually earns on-log runs is worth
      // switching to: an all-zero field would otherwise collapse every
      // adaptive worker onto DFS (first index) and destroy the
      // randomized diversification the portfolio exists to preserve.
      if (best_rate > 0.0 && best != disc) {
        disc = best;
        ++ws.promotions;
      }
    };

    // Runs one input; returns true when the search is over for this worker
    // (it reproduced the bug, or lost the race to another worker's crash).
    auto do_run = [&](const std::vector<i64>& model, size_t start_depth) -> bool {
      ReplayObserver observer(plan_, report_.branch_log, &failures);
      CancelObserver cancel(stop);
      CellRunConfig run_config;
      run_config.model = model;
      run_config.arena = &arena;
      run_config.observers = {&observer, &cancel};
      run_config.replay_log = replay_log;
      run_config.max_steps = config.max_steps_per_run;
      run_config.external_budget = &budget;
      run_config.engine = config.engine;
      run_config.plan = &plan_;
      CellRunOutput out = runner.Run(run_config);
      ++ws.runs;

      if (IsReproduction(out.result, observer.cursor, report_)) {
        std::lock_guard<std::mutex> lock(winner_mu);
        if (!have_winner) {
          have_winner = true;
          result.reproduced = true;
          result.crash = out.result.crash;
          result.witness_cells = out.cells;
          result.witness_argv = runner.layout().MaterializeArgv(runner.spec(), out.cells);
          stop.RequestStop();
          frontier.Close();
        }
        return true;
      }
      if (stop.StopRequested()) {
        // Aborted by first-crash-wins cancellation; the partial trace does
        // not describe a real divergence, so publish nothing.
        ++ws.cancelled_runs;
        return true;
      }
      if (out.result.Crashed()) {
        ++ws.crashes_wrong_site;
        failures.Death(observer.last_blind_branch, failures.deaths_wrong_crash);
      }
      if (observer.concrete_mismatch) {
        ++ws.aborts_concrete_mismatch;
        failures.Death(observer.last_blind_branch, failures.deaths_concrete);
      }
      if (observer.log_exhausted) {
        ++ws.aborts_log_exhausted;
        failures.Death(observer.last_blind_branch, failures.deaths_exhausted);
      }
      if (observer.forced_direction) {
        ++ws.aborts_forced_direction;
      }
      // Promotion accounting: this completed run earns (or costs) its
      // discipline's on-log rate.
      disc_runs[static_cast<size_t>(disc)].fetch_add(1, std::memory_order_relaxed);
      if (observer.forced_direction) {
        disc_on_log[static_cast<size_t>(disc)].fetch_add(1, std::memory_order_relaxed);
      }

      bool any_flip = false;
      for (size_t flip : observer.flippable) {
        if (flip >= start_depth) {
          any_flip = true;
          break;
        }
      }
      if (any_flip || observer.forced_direction) {
        // One export per run; all pendings of this run share the snapshot.
        auto trace = std::make_shared<const PortableTrace>(ExportTrace(arena, observer.trace));
        auto seed = std::make_shared<const std::vector<i64>>(std::move(out.cells));
        auto domains = std::make_shared<const std::vector<Interval>>(std::move(out.domains));
        // Prefix fingerprints for the subsumption index (chain[i] covers
        // constraints [0, i) as stored); every executed prefix enters the
        // index — a forced-direction trace's final constraint was not
        // executed in its stored polarity, so it only enters via its own
        // publish below.
        std::vector<u64> chain;
        std::vector<u64> node_hash;
        if (subsumed != nullptr) {
          node_hash = PortableNodeHashes(*trace);
          const std::vector<Constraint>& cs = trace->constraints;
          chain.resize(cs.size() + 1);
          chain[0] = kConstraintFingerprintSeed;
          for (size_t i = 0; i < cs.size(); ++i) {
            chain[i + 1] =
                ExtendConstraintFingerprint(chain[i], node_hash[cs[i].expr], cs[i].want_true);
          }
          const size_t executed = cs.size() - (observer.forced_direction ? 1 : 0);
          for (size_t i = 1; i <= executed; ++i) {
            subsumed->Insert(chain[i]);
          }
        }
        // Case-1 alternatives, deepest explored first under DFS.
        // PortablePending::priority/dir_score are the single source of
        // truth; the queue's key arguments always mirror them.
        auto publish = [&](PortablePending pending, u64 fp) {
          if (subsumed != nullptr && !subsumed->Insert(fp)) {
            ++ws.pendings_pruned;
            return;
          }
          const u64 priority = pending.priority;
          const u64 direction = pending.dir_score;
          frontier.Push(wid, std::move(pending), priority, direction);
        };
        for (size_t flip : observer.flippable) {
          if (flip < start_depth) {
            continue;  // Already offered by the run that generated this prefix.
          }
          const u64 fp = subsumed != nullptr
                             ? ExtendConstraintFingerprint(
                                   chain[flip], node_hash[trace->constraints[flip].expr],
                                   !trace->constraints[flip].want_true)
                             : 0;
          publish(PortablePending{trace, flip + 1, /*negate_last=*/true, seed, domains,
                                  observer.bits_at[flip], observer.dir_at[flip]},
                  fp);
        }
        if (observer.forced_direction) {
          // Highest priority under DFS: steers the run back onto the log.
          publish(PortablePending{trace, trace->constraints.size(), /*negate_last=*/false,
                                  seed, domains, observer.cursor, observer.logged_forced},
                  subsumed != nullptr ? chain[trace->constraints.size()] : 0);
        }
      }
      return false;
    };

    // Per-worker import memo: sibling pendings share the same portable
    // trace, so the full trace is re-interned into this worker's arena
    // once — and its node hashes computed once — and every pop solves
    // over a prefix view and fingerprints over the memoized hashes. No
    // per-pop import, constraint-vector copy, or whole-trace rehash.
    // Keyed by raw pointer; the keepalive vector pins every keyed trace
    // so a recycled allocation address can never alias a retired one.
    struct ImportedTrace {
      std::vector<Constraint> constraints;
      std::vector<u64> node_hash;
    };
    std::unordered_map<const PortableTrace*, ImportedTrace> import_memo;
    std::vector<std::shared_ptr<const PortableTrace>> import_keepalive;
    auto imported_trace =
        [&](const std::shared_ptr<const PortableTrace>& t) -> const ImportedTrace& {
      auto it = import_memo.find(t.get());
      if (it != import_memo.end()) {
        return it->second;
      }
      if (import_memo.size() >= 64) {  // Bound resident snapshots.
        import_memo.clear();
        import_keepalive.clear();
      }
      import_keepalive.push_back(t);
      ImportedTrace imported{
          ImportConstraints(*t, t->constraints.size(), /*negate_last=*/false, &arena),
          PortableNodeHashes(*t)};
      return import_memo.emplace(t.get(), std::move(imported)).first->second;
    };

    // Worker-private initial random input. Worker 0 draws exactly the
    // sequential engine's initial input; the others diversify the start of
    // the search.
    bool done = false;
    if (!stop.StopRequested() && !budget.Exhausted() &&
        runs_admitted.fetch_add(1) < config.max_runs) {
      std::vector<i64> initial(runner.layout().defaults().size());
      for (i64& v : initial) {
        v = rng.NextPrintable();
      }
      done = do_run(initial, 0);
    }

    // Corpus seeds: the fleet's slice of the dynamic-analysis corpus,
    // partitioned so no seed runs twice — shard s owns seeds with
    // index % num_shards == s, and this worker takes every num_workers-th
    // of the shard's slice.
    const u32 corpus_shard = shard != nullptr ? shard->shard_id : 0;
    const u32 corpus_shards = shard != nullptr ? std::max(1u, shard->num_shards) : 1;
    for (size_t i = 0; !done && i < config.corpus_seeds.size(); ++i) {
      if (i % corpus_shards != corpus_shard % corpus_shards ||
          (i / corpus_shards) % num_workers != wid) {
        continue;
      }
      if (stop.StopRequested() || budget.Exhausted()) {
        break;
      }
      if (runs_admitted.fetch_add(1) >= config.max_runs) {
        frontier.Close();
        done = true;
        break;
      }
      ++ws.corpus_runs;
      done = do_run(config.corpus_seeds[i], 0);
    }

    // Batched frontier solves: pop up to K pendings per frontier visit and
    // solve them back to back before running any model. Sibling pendings
    // share almost every slice, so the batch's first solve warms the cache
    // for the rest; runs follow in pop order.
    const size_t batch_cap = std::max<u32>(1, config.solve_batch);
    std::vector<PortablePending> batch;
    struct ReadyRun {
      std::vector<i64> model;
      size_t len = 0;
    };
    std::vector<ReadyRun> ready;
    u64 runs_at_last_promotion = ws.runs;
    while (!done && !stop.StopRequested() && !budget.Exhausted()) {
      if (adaptive && ws.runs - runs_at_last_promotion >= kPromoteInterval) {
        runs_at_last_promotion = ws.runs;
        maybe_promote();
      }
      u64 stolen = 0;
      if (!frontier.PopBatch(wid, pop_order(), batch_cap, &batch, &stolen)) {
        break;  // Frontier drained, cancelled, or run cap reached.
      }
      ws.steals += stolen;
      ready.clear();
      for (const PortablePending& pending : batch) {
        const ImportedTrace& imported = imported_trace(pending.trace);
        const u64 fp = FingerprintConstraints(*pending.trace, pending.len, pending.negate_last,
                                              imported.node_hash);
        {
          std::lock_guard<std::mutex> lock(dedup_mu);
          if (!tried.insert(fp).second) {
            ++ws.dedup_skips;
            continue;
          }
        }
        const ConstraintSpan set(imported.constraints.data(), pending.len, pending.negate_last);
        ++ws.solver_calls;
        SolveResult solved =
            incremental != nullptr ? incremental->Solve(set, *pending.domains, *pending.seed)
                                   : solver.Solve(set, *pending.domains, *pending.seed);
        if (solved.status == SolveStatus::kSat) {
          ready.push_back(ReadyRun{std::move(solved.model), pending.len});
        }
      }
      for (ReadyRun& run : ready) {
        if (done || stop.StopRequested() || budget.Exhausted()) {
          break;
        }
        if (runs_admitted.fetch_add(1) >= config.max_runs) {
          // Global run cap: the whole search is over, not just this worker.
          frontier.Close();
          done = true;
          break;
        }
        done = do_run(run.model, run.len);
      }
    }
    if (incremental != nullptr) {
      const IncrementalStats& inc = incremental->stats();
      ws.slices_solved = inc.slices_solved;
      ws.slice_sat_hits = inc.slice_sat_hits;
      ws.slice_unsat_hits = inc.slice_unsat_hits;
    }
    frontier.Retire();
  };

  // External first-crash-wins: a pump thread translates the coordinator's
  // cancel flag into the in-process stop + frontier close, so workers
  // blocked in Pop() wake up too. Polling at millisecond granularity is
  // negligible next to the interpreter runs it interrupts.
  std::atomic<bool> workers_done{false};
  std::thread cancel_pump;
  if (shard != nullptr && shard->cancel != nullptr) {
    const std::atomic<bool>* cancel = shard->cancel;
    cancel_pump = std::thread([&stop, &frontier, &workers_done, cancel] {
      while (!workers_done.load(std::memory_order_acquire)) {
        if (cancel->load(std::memory_order_acquire)) {
          stop.RequestStop();
          frontier.Close();
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
  }

  std::vector<std::thread> threads;
  threads.reserve(num_workers);
  for (u32 wid = 0; wid < num_workers; ++wid) {
    threads.emplace_back(worker_fn, wid);
  }
  for (std::thread& t : threads) {
    t.join();
  }
  workers_done.store(true, std::memory_order_release);
  if (cancel_pump.joinable()) {
    cancel_pump.join();
  }

  // Lossless aggregation: every per-worker counter sums into exactly one
  // aggregate field.
  for (const ReplayWorkerStats& ws : worker_stats) {
    result.stats.runs += ws.runs;
    result.stats.solver_calls += ws.solver_calls;
    result.stats.aborts_forced_direction += ws.aborts_forced_direction;
    result.stats.aborts_concrete_mismatch += ws.aborts_concrete_mismatch;
    result.stats.aborts_log_exhausted += ws.aborts_log_exhausted;
    result.stats.crashes_wrong_site += ws.crashes_wrong_site;
    result.stats.steals += ws.steals;
    result.stats.dedup_skips += ws.dedup_skips;
    result.stats.cancelled_runs += ws.cancelled_runs;
    result.stats.slices_solved += ws.slices_solved;
    result.stats.slice_sat_hits += ws.slice_sat_hits;
    result.stats.slice_unsat_hits += ws.slice_unsat_hits;
    result.stats.pendings_pruned += ws.pendings_pruned;
    result.stats.corpus_runs += ws.corpus_runs;
    result.stats.promotions += ws.promotions;
  }
  for (const FailureAccum& fa : worker_failures) {
    result.stats.failure_profile.Merge(fa.ToProfile());
  }
  for (size_t d = 0; d < kNumDisciplines; ++d) {
    result.stats.discipline_runs[d] = disc_runs[d].load(std::memory_order_relaxed);
    result.stats.discipline_on_log[d] = disc_on_log[d].load(std::memory_order_relaxed);
  }
  result.stats.pending_peak = frontier.peak();
  result.stats.per_worker = std::move(worker_stats);
  if (slice_cache != nullptr) {
    result.stats.slice_evictions = slice_cache->evictions();
  }
  if (shard != nullptr && shard->port != nullptr) {
    // Unbind before the frontier dies; the counters survive Detach.
    shard->port->Detach();
    result.stats.pendings_imported = shard->port->imported();
    result.stats.pendings_exported = shard->port->exported();
  }

  result.budget_exhausted = !result.reproduced;
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return result;
}

ReplayEngine::HarvestOutput ReplayEngine::HarvestFrontier(const ReplayConfig& config,
                                                          u64 max_runs,
                                                          size_t target_frontier) {
  const auto t0 = std::chrono::steady_clock::now();
  HarvestOutput out;
  ReplayResult& result = out.result;
  FailureAccum failures(module_.branches.size());

  CellRunner runner(module_, report_.shape);
  Budget budget = config.wall_ms > 0
                      ? Budget::StepsAndMillis(config.total_steps, config.wall_ms)
                      : Budget::Steps(config.total_steps);
  Solver solver(*arena_, config.solver);
  Rng rng(config.seed);

  std::vector<i64> initial(runner.layout().defaults().size());
  for (i64& v : initial) {
    v = rng.NextPrintable();
  }

  const SyscallLog* replay_log =
      config.use_syscall_log && report_.has_syscall_log ? &report_.syscall_log : nullptr;

  // The scout reuses the sequential frontier shape (arena-resident traces)
  // and exports whatever survives at the end.
  std::deque<Pending> pendings;

  auto do_run = [&](const std::vector<i64>& model, size_t start_depth) -> bool {
    ReplayObserver observer(plan_, report_.branch_log, &failures);
    CellRunConfig run_config;
    run_config.model = model;
    run_config.arena = arena_;
    run_config.observers = {&observer};
    run_config.replay_log = replay_log;
    run_config.max_steps = config.max_steps_per_run;
    run_config.external_budget = &budget;
    run_config.engine = config.engine;
    run_config.plan = &plan_;
    CellRunOutput run_out = runner.Run(run_config);
    ++result.stats.runs;

    if (IsReproduction(run_out.result, observer.cursor, report_)) {
      result.reproduced = true;
      result.crash = run_out.result.crash;
      result.witness_cells = run_out.cells;
      result.witness_argv = runner.layout().MaterializeArgv(runner.spec(), run_out.cells);
      return true;
    }
    if (run_out.result.Crashed()) {
      ++result.stats.crashes_wrong_site;
      failures.Death(observer.last_blind_branch, failures.deaths_wrong_crash);
    }
    if (observer.concrete_mismatch) {
      ++result.stats.aborts_concrete_mismatch;
      failures.Death(observer.last_blind_branch, failures.deaths_concrete);
    }
    if (observer.log_exhausted) {
      ++result.stats.aborts_log_exhausted;
      failures.Death(observer.last_blind_branch, failures.deaths_exhausted);
    }

    auto trace = std::make_shared<std::vector<Constraint>>(std::move(observer.trace));
    auto seed = std::make_shared<std::vector<i64>>(std::move(run_out.cells));
    auto domains = std::make_shared<std::vector<Interval>>(std::move(run_out.domains));
    for (size_t flip : observer.flippable) {
      if (flip < start_depth) {
        continue;
      }
      pendings.push_back(Pending{trace, flip + 1, /*negate_last=*/true, seed, domains,
                                 observer.bits_at[flip], observer.dir_at[flip]});
    }
    if (observer.forced_direction) {
      ++result.stats.aborts_forced_direction;
      pendings.push_back(Pending{trace, trace->size(), /*negate_last=*/false, seed, domains,
                                 observer.cursor, observer.logged_forced});
    }
    result.stats.pending_peak =
        std::max(result.stats.pending_peak, static_cast<u64>(pendings.size()));
    return false;
  };

  bool reproduced = do_run(initial, 0);
  // Keep scouting (DFS) until the frontier is wide enough to shard, the
  // scout budget runs out, or the bug falls before any shard is needed.
  while (!reproduced && !pendings.empty() && pendings.size() < target_frontier &&
         result.stats.runs < max_runs && !budget.Exhausted()) {
    Pending pending = std::move(pendings.back());
    pendings.pop_back();
    const ConstraintSpan set(pending.trace->data(), pending.len, pending.negate_last);
    ++result.stats.solver_calls;
    const SolveResult solved = solver.Solve(set, *pending.domains, *pending.seed);
    if (solved.status != SolveStatus::kSat) {
      continue;
    }
    reproduced = do_run(solved.model, pending.len);
  }

  // Export the surviving frontier arena-independently, one snapshot per
  // distinct trace (sibling pendings share it, exactly like the parallel
  // scheduler's per-run export).
  std::unordered_map<const std::vector<Constraint>*, std::shared_ptr<const PortableTrace>>
      exported;
  for (Pending& pending : pendings) {
    auto it = exported.find(pending.trace.get());
    if (it == exported.end()) {
      it = exported
               .emplace(pending.trace.get(),
                        std::make_shared<const PortableTrace>(ExportTrace(*arena_,
                                                                          *pending.trace)))
               .first;
    }
    out.frontier.push_back(PortablePending{
        it->second, pending.len, pending.negate_last,
        std::shared_ptr<const std::vector<i64>>(pending.seed),
        std::shared_ptr<const std::vector<Interval>>(pending.domains), pending.log_bits,
        pending.dir_bits});
  }

  ReplayWorkerStats worker;
  worker.runs = result.stats.runs;
  worker.solver_calls = result.stats.solver_calls;
  worker.aborts_forced_direction = result.stats.aborts_forced_direction;
  worker.aborts_concrete_mismatch = result.stats.aborts_concrete_mismatch;
  worker.aborts_log_exhausted = result.stats.aborts_log_exhausted;
  worker.crashes_wrong_site = result.stats.crashes_wrong_site;
  result.stats.per_worker = {worker};
  result.stats.failure_profile = failures.ToProfile();
  result.budget_exhausted = !result.reproduced && budget.Exhausted();
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return out;
}

}  // namespace retrace
