#include "src/ir/printer.h"

#include <sstream>

namespace retrace {
namespace {

const char* BinOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kRem: return "%";
    case BinaryOp::kBitAnd: return "&";
    case BinaryOp::kBitOr: return "|";
    case BinaryOp::kBitXor: return "^";
    case BinaryOp::kShl: return "<<";
    case BinaryOp::kShr: return ">>";
    case BinaryOp::kEq: return "==";
    case BinaryOp::kNe: return "!=";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
  }
  return "?";
}

void PrintOperand(std::ostringstream& os, const Operand& op) {
  switch (op.kind) {
    case Operand::Kind::kNone: os << "_"; break;
    case Operand::Kind::kConstInt: os << op.imm; break;
    case Operand::Kind::kSlot: os << "s" << op.index; break;
    case Operand::Kind::kGlobalSlot: os << "g" << op.index; break;
    case Operand::Kind::kObjAddr: os << "&obj" << op.index; break;
    case Operand::Kind::kFrameObjAddr: os << "&frame" << op.index; break;
  }
}

void PrintInstr(std::ostringstream& os, const IrModule& module, const Instr& instr) {
  auto operand = [&](const Operand& op) { PrintOperand(os, op); };
  switch (instr.op) {
    case Opcode::kAssign:
      operand(instr.dst);
      os << " = ";
      operand(instr.a);
      if (instr.store_char) {
        os << " (char)";
      }
      break;
    case Opcode::kBin:
      operand(instr.dst);
      os << " = ";
      operand(instr.a);
      os << " " << BinOpName(instr.bin_op) << " ";
      operand(instr.b);
      break;
    case Opcode::kUn: {
      const char* name = "?";
      switch (instr.un_op) {
        case IrUnOp::kNeg: name = "neg"; break;
        case IrUnOp::kBitNot: name = "bnot"; break;
        case IrUnOp::kLogicalNot: name = "lnot"; break;
        case IrUnOp::kTruncChar: name = "trunc"; break;
      }
      operand(instr.dst);
      os << " = " << name << " ";
      operand(instr.a);
      break;
    }
    case Opcode::kLoad:
      operand(instr.dst);
      os << " = load ";
      operand(instr.a);
      os << "[";
      operand(instr.b);
      os << "]";
      break;
    case Opcode::kStore:
      os << "store ";
      operand(instr.a);
      os << "[";
      operand(instr.b);
      os << "] = ";
      operand(instr.c);
      break;
    case Opcode::kPtrAdd:
      operand(instr.dst);
      os << " = ptradd ";
      operand(instr.a);
      os << ", ";
      operand(instr.b);
      break;
    case Opcode::kCall:
      if (!instr.dst.IsNone()) {
        operand(instr.dst);
        os << " = ";
      }
      os << "call ";
      if (instr.callee_is_builtin) {
        os << BuiltinName(static_cast<Builtin>(instr.callee));
      } else {
        os << module.funcs[instr.callee].name;
      }
      os << "(";
      for (size_t i = 0; i < instr.args.size(); ++i) {
        if (i > 0) {
          os << ", ";
        }
        operand(instr.args[i]);
      }
      os << ")";
      break;
    case Opcode::kBr:
      os << "br ";
      operand(instr.a);
      os << " ? bb" << instr.bb_true << " : bb" << instr.bb_false << "   [branch "
         << instr.branch_id << "]";
      break;
    case Opcode::kJmp:
      os << "jmp bb" << instr.bb_true;
      break;
    case Opcode::kRet:
      os << "ret";
      if (!instr.a.IsNone()) {
        os << " ";
        operand(instr.a);
      }
      break;
  }
}

}  // namespace

std::string PrintFunction(const IrModule& module, const IrFunction& fn) {
  std::ostringstream os;
  os << "func " << fn.name << " (params=" << fn.num_params << ", slots=" << fn.num_slots;
  if (fn.is_library) {
    os << ", library";
  }
  os << ")\n";
  for (size_t i = 0; i < fn.frame_objects.size(); ++i) {
    const FrameObjectInfo& obj = fn.frame_objects[i];
    os << "  frame" << i << ": " << obj.name << "[" << obj.size << "]"
       << (obj.is_char ? " char" : " int") << "\n";
  }
  for (size_t b = 0; b < fn.blocks.size(); ++b) {
    os << " bb" << b << ":\n";
    for (const Instr& instr : fn.blocks[b].instrs) {
      os << "   ";
      PrintInstr(os, module, instr);
      os << "\n";
    }
  }
  return os.str();
}

std::string PrintModule(const IrModule& module) {
  std::ostringstream os;
  for (size_t i = 0; i < module.global_scalars.size(); ++i) {
    os << "global g" << i << " = " << module.global_scalars[i].name << " (init "
       << module.global_scalars[i].init << ")\n";
  }
  for (size_t i = 0; i < module.static_objects.size(); ++i) {
    const StaticObjectInfo& obj = module.static_objects[i];
    os << "object obj" << i << " = " << obj.name << "[" << obj.size << "]"
       << (obj.is_char ? " char" : " int") << "\n";
  }
  for (const IrFunction& fn : module.funcs) {
    os << PrintFunction(module, fn);
  }
  os << module.branches.size() << " branch locations\n";
  return os.str();
}

}  // namespace retrace
