#include "src/ir/lowering.h"

#include <utility>

namespace retrace {
namespace {

// Where an lvalue lives: directly in a slot, or in memory behind a pointer.
struct Place {
  enum class Kind { kSlot, kGlobalSlot, kMem };
  Kind kind = Kind::kSlot;
  i32 slot = -1;        // kSlot / kGlobalSlot.
  Operand addr;         // kMem: pointer operand.
  Operand index;        // kMem: element index operand.
  bool is_char = false;  // Element/slot holds char: stores truncate.
};

class LoweringImpl {
 public:
  explicit LoweringImpl(const SemaProgram& program) : program_(program) {}

  Result<std::unique_ptr<IrModule>> Run() {
    module_ = std::make_unique<IrModule>();
    LowerGlobals();
    LowerStrings();
    for (const SemaFunc& sf : program_.funcs) {
      LowerFunction(sf);
    }
    module_->main_index = program_.main_index;
    return std::move(module_);
  }

 private:
  struct GlobalBinding {
    bool is_object = false;
    i32 index = -1;  // Static object index or global scalar slot.
  };

  void LowerGlobals() {
    for (const GlobalInfo& g : program_.globals) {
      GlobalBinding binding;
      if (g.type.IsArray()) {
        binding.is_object = true;
        binding.index = static_cast<i32>(module_->static_objects.size());
        StaticObjectInfo obj;
        obj.name = g.name;
        obj.size = g.type.array_size;
        obj.is_char = g.type.base == TypeKind::kChar;
        module_->static_objects.push_back(std::move(obj));
      } else if (g.address_taken && g.type.IsScalar()) {
        binding.is_object = true;
        binding.index = static_cast<i32>(module_->static_objects.size());
        StaticObjectInfo obj;
        obj.name = g.name;
        obj.size = 1;
        obj.is_char = g.type.kind == TypeKind::kChar;
        obj.init.push_back(g.init_value);
        module_->static_objects.push_back(std::move(obj));
      } else {
        binding.is_object = false;
        binding.index = static_cast<i32>(module_->global_scalars.size());
        module_->global_scalars.push_back(GlobalScalarInfo{g.name, g.init_value});
      }
      global_bindings_.push_back(binding);
    }
  }

  void LowerStrings() {
    for (const std::string& s : program_.strings) {
      StaticObjectInfo obj;
      obj.name = "$str" + std::to_string(string_objects_.size());
      obj.size = static_cast<i64>(s.size()) + 1;
      obj.is_char = true;
      obj.init.reserve(s.size() + 1);
      for (char c : s) {
        obj.init.push_back(static_cast<unsigned char>(c));
      }
      obj.init.push_back(0);
      string_objects_.push_back(static_cast<i32>(module_->static_objects.size()));
      module_->static_objects.push_back(std::move(obj));
    }
  }

  // ----- Function-level state -----

  void LowerFunction(const SemaFunc& sf) {
    IrFunction fn;
    fn.name = sf.decl->name;
    fn.index = sf.index;
    fn.num_params = sf.num_params;
    fn.return_type = sf.return_type;
    fn.is_library = sf.is_library;
    fn.num_slots = static_cast<i32>(sf.locals.size());
    for (int i = 0; i < sf.num_params; ++i) {
      fn.param_types.push_back(sf.locals[i].type);
    }
    module_->funcs.push_back(std::move(fn));
    fn_ = &module_->funcs.back();
    sema_fn_ = &sf;

    // Allocate frame objects for local arrays and address-taken scalars.
    local_frame_obj_.assign(sf.locals.size(), -1);
    for (size_t i = 0; i < sf.locals.size(); ++i) {
      const LocalInfo& local = sf.locals[i];
      if (local.type.IsArray()) {
        local_frame_obj_[i] = static_cast<i32>(fn_->frame_objects.size());
        fn_->frame_objects.push_back(FrameObjectInfo{
            local.name, local.type.array_size, local.type.base == TypeKind::kChar, -1});
      } else if (local.address_taken && local.type.IsScalar()) {
        local_frame_obj_[i] = static_cast<i32>(fn_->frame_objects.size());
        fn_->frame_objects.push_back(FrameObjectInfo{
            local.name, 1, local.type.kind == TypeKind::kChar, static_cast<i32>(i)});
      }
    }

    cur_bb_ = NewBlock();
    // Prologue: copy address-taken params into their frame objects.
    for (int i = 0; i < sf.num_params; ++i) {
      if (sf.locals[i].address_taken && sf.locals[i].type.IsScalar()) {
        Instr store;
        store.op = Opcode::kStore;
        store.loc = sf.decl->loc;
        store.a = Operand::FrameObjAddr(local_frame_obj_[i]);
        store.b = Operand::Const(0);
        store.c = Operand::Slot(static_cast<i32>(i));
        Emit(std::move(store));
      }
    }

    LowerStmt(*sf.decl->body);

    // Implicit return for control paths that fall off the end.
    if (!BlockTerminated(cur_bb_)) {
      Instr ret;
      ret.op = Opcode::kRet;
      ret.loc = sf.decl->loc;
      ret.a = sf.return_type.IsVoid() ? Operand::None() : Operand::Const(0);
      Emit(std::move(ret));
    }
    fn_ = nullptr;
    sema_fn_ = nullptr;
  }

  i32 NewBlock() {
    fn_->blocks.emplace_back();
    return static_cast<i32>(fn_->blocks.size()) - 1;
  }

  bool BlockTerminated(i32 bb) const {
    const auto& instrs = fn_->blocks[bb].instrs;
    if (instrs.empty()) {
      return false;
    }
    const Opcode op = instrs.back().op;
    return op == Opcode::kBr || op == Opcode::kJmp || op == Opcode::kRet;
  }

  void Emit(Instr instr) {
    if (BlockTerminated(cur_bb_)) {
      // Unreachable code after return/break: give it a dangling block so the
      // rest of the lowering still has somewhere to go.
      cur_bb_ = NewBlock();
    }
    fn_->blocks[cur_bb_].instrs.push_back(std::move(instr));
  }

  i32 NewTemp() { return fn_->num_slots++; }

  i32 NewBranchId(SourceLoc loc, const char* context) {
    const i32 id = static_cast<i32>(module_->branches.size());
    BranchInfo info;
    info.id = id;
    info.func = fn_->index;
    info.loc = loc;
    info.is_library = fn_->is_library;
    info.context = context;
    module_->branches.push_back(std::move(info));
    return id;
  }

  // ----- Statements -----

  void LowerStmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::kBlock:
        for (const StmtPtr& child : s.body) {
          LowerStmt(*child);
        }
        return;
      case StmtKind::kExpr:
        LowerExpr(*s.init);
        return;
      case StmtKind::kVarDecl: {
        if (s.init != nullptr) {
          const Operand value = LowerExpr(*s.init);
          const LocalInfo& local = sema_fn_->locals[s.decl_slot];
          Place place;
          if (local_frame_obj_[s.decl_slot] >= 0 && !local.type.IsArray()) {
            place.kind = Place::Kind::kMem;
            place.addr = Operand::FrameObjAddr(local_frame_obj_[s.decl_slot]);
            place.index = Operand::Const(0);
            place.is_char = local.type.kind == TypeKind::kChar;
          } else {
            place.kind = Place::Kind::kSlot;
            place.slot = s.decl_slot;
            place.is_char = local.type.kind == TypeKind::kChar;
          }
          StorePlace(place, value, s.loc);
        }
        return;
      }
      case StmtKind::kIf: {
        const i32 bb_then = NewBlock();
        const i32 bb_join = NewBlock();
        const i32 bb_else = s.else_body != nullptr ? NewBlock() : bb_join;
        LowerCondBranch(*s.cond, bb_then, bb_else);
        cur_bb_ = bb_then;
        LowerStmt(*s.then_body);
        EmitJmp(bb_join, s.loc);
        if (s.else_body != nullptr) {
          cur_bb_ = bb_else;
          LowerStmt(*s.else_body);
          EmitJmp(bb_join, s.loc);
        }
        cur_bb_ = bb_join;
        return;
      }
      case StmtKind::kWhile: {
        const i32 bb_head = NewBlock();
        const i32 bb_body = NewBlock();
        const i32 bb_exit = NewBlock();
        EmitJmp(bb_head, s.loc);
        cur_bb_ = bb_head;
        LowerCondBranch(*s.cond, bb_body, bb_exit);
        loop_stack_.push_back({bb_head, bb_exit});
        cur_bb_ = bb_body;
        LowerStmt(*s.then_body);
        EmitJmp(bb_head, s.loc);
        loop_stack_.pop_back();
        cur_bb_ = bb_exit;
        return;
      }
      case StmtKind::kFor: {
        if (s.for_init != nullptr) {
          LowerStmt(*s.for_init);
        }
        const i32 bb_head = NewBlock();
        const i32 bb_body = NewBlock();
        const i32 bb_step = NewBlock();
        const i32 bb_exit = NewBlock();
        EmitJmp(bb_head, s.loc);
        cur_bb_ = bb_head;
        if (s.cond != nullptr) {
          LowerCondBranch(*s.cond, bb_body, bb_exit);
        } else {
          EmitJmp(bb_body, s.loc);
        }
        loop_stack_.push_back({bb_step, bb_exit});
        cur_bb_ = bb_body;
        LowerStmt(*s.then_body);
        EmitJmp(bb_step, s.loc);
        loop_stack_.pop_back();
        cur_bb_ = bb_step;
        if (s.for_step != nullptr) {
          LowerExpr(*s.for_step);
        }
        EmitJmp(bb_head, s.loc);
        cur_bb_ = bb_exit;
        return;
      }
      case StmtKind::kReturn: {
        Instr ret;
        ret.op = Opcode::kRet;
        ret.loc = s.loc;
        ret.a = s.cond != nullptr ? LowerExpr(*s.cond) : Operand::None();
        Emit(std::move(ret));
        return;
      }
      case StmtKind::kBreak: {
        Check(!loop_stack_.empty(), "break outside loop survived sema");
        EmitJmp(loop_stack_.back().second, s.loc);
        return;
      }
      case StmtKind::kContinue: {
        Check(!loop_stack_.empty(), "continue outside loop survived sema");
        EmitJmp(loop_stack_.back().first, s.loc);
        return;
      }
    }
  }

  void EmitJmp(i32 target, SourceLoc loc) {
    if (BlockTerminated(cur_bb_)) {
      return;  // Unreachable fallthrough (after return/break).
    }
    Instr jmp;
    jmp.op = Opcode::kJmp;
    jmp.loc = loc;
    jmp.bb_true = target;
    Emit(std::move(jmp));
  }

  // ----- Conditions -----
  //
  // Lowers a boolean context. Logical operators expand into separate kBr
  // instructions (one branch location per operand test), and `!` simply
  // swaps the branch targets without creating a new location — the same
  // shape a C compiler produces.
  void LowerCondBranch(const Expr& e, i32 bb_true, i32 bb_false) {
    if (e.kind == ExprKind::kLogical) {
      const i32 bb_mid = NewBlock();
      if (e.log_op == LogicalOp::kAnd) {
        LowerCondBranch(*e.lhs, bb_mid, bb_false);
      } else {
        LowerCondBranch(*e.lhs, bb_true, bb_mid);
      }
      cur_bb_ = bb_mid;
      LowerCondBranch(*e.rhs, bb_true, bb_false);
      return;
    }
    if (e.kind == ExprKind::kUnary && e.un_op == UnaryOp::kLogicalNot) {
      LowerCondBranch(*e.lhs, bb_false, bb_true);
      return;
    }
    const Operand cond = LowerExpr(e);
    const char* context = "if";
    switch (e.kind) {
      case ExprKind::kBinary: context = "cmp"; break;
      case ExprKind::kCall: context = "call"; break;
      default: break;
    }
    Instr br;
    br.op = Opcode::kBr;
    br.loc = e.loc;
    br.a = cond;
    br.bb_true = bb_true;
    br.bb_false = bb_false;
    br.branch_id = NewBranchId(e.loc, context);
    Emit(std::move(br));
  }

  // ----- Places -----

  Place LowerPlace(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kVarRef: {
        Place place;
        place.is_char = e.type.kind == TypeKind::kChar;
        if (e.binding_kind == 0) {
          const i32 obj = local_frame_obj_[e.binding_index];
          if (obj >= 0 && !e.type.IsArray()) {
            place.kind = Place::Kind::kMem;
            place.addr = Operand::FrameObjAddr(obj);
            place.index = Operand::Const(0);
          } else {
            place.kind = Place::Kind::kSlot;
            place.slot = e.binding_index;
          }
        } else {
          const GlobalBinding& binding = global_bindings_[e.binding_index];
          if (binding.is_object) {
            place.kind = Place::Kind::kMem;
            place.addr = Operand::ObjAddr(binding.index);
            place.index = Operand::Const(0);
          } else {
            place.kind = Place::Kind::kGlobalSlot;
            place.slot = binding.index;
          }
        }
        return place;
      }
      case ExprKind::kIndex: {
        Place place;
        place.kind = Place::Kind::kMem;
        place.addr = LowerExpr(*e.lhs);
        place.index = LowerExpr(*e.rhs);
        place.is_char = e.type.kind == TypeKind::kChar;
        return place;
      }
      case ExprKind::kUnary: {
        Check(e.un_op == UnaryOp::kDeref, "non-deref unary place survived sema");
        Place place;
        place.kind = Place::Kind::kMem;
        place.addr = LowerExpr(*e.lhs);
        place.index = Operand::Const(0);
        place.is_char = e.type.kind == TypeKind::kChar;
        return place;
      }
      default:
        FatalError("invalid place expression survived sema");
    }
  }

  Operand LoadPlace(const Place& place, SourceLoc loc) {
    switch (place.kind) {
      case Place::Kind::kSlot:
        return Operand::Slot(place.slot);
      case Place::Kind::kGlobalSlot:
        return Operand::GlobalSlot(place.slot);
      case Place::Kind::kMem: {
        const i32 temp = NewTemp();
        Instr load;
        load.op = Opcode::kLoad;
        load.loc = loc;
        load.dst = Operand::Slot(temp);
        load.a = place.addr;
        load.b = place.index;
        Emit(std::move(load));
        return Operand::Slot(temp);
      }
    }
    FatalError("unreachable");
  }

  void StorePlace(const Place& place, Operand value, SourceLoc loc) {
    switch (place.kind) {
      case Place::Kind::kSlot:
      case Place::Kind::kGlobalSlot: {
        Instr assign;
        assign.op = Opcode::kAssign;
        assign.loc = loc;
        assign.dst = place.kind == Place::Kind::kSlot ? Operand::Slot(place.slot)
                                                      : Operand::GlobalSlot(place.slot);
        assign.a = value;
        assign.store_char = place.is_char;
        Emit(std::move(assign));
        return;
      }
      case Place::Kind::kMem: {
        Instr store;
        store.op = Opcode::kStore;
        store.loc = loc;
        store.a = place.addr;
        store.b = place.index;
        store.c = value;
        store.store_char = place.is_char;
        Emit(std::move(store));
        return;
      }
    }
  }

  // ----- Expressions -----

  Operand LowerExpr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kIntLit:
      case ExprKind::kCharLit:
        return Operand::Const(e.int_value);
      case ExprKind::kStringLit:
        return Operand::ObjAddr(string_objects_[e.string_id]);
      case ExprKind::kVarRef: {
        if (e.binding_kind == 0) {
          const i32 obj = local_frame_obj_[e.binding_index];
          if (e.type.IsArray()) {
            return Operand::FrameObjAddr(obj);
          }
          if (obj >= 0) {
            return LoadPlace(LowerPlace(e), e.loc);
          }
          return Operand::Slot(e.binding_index);
        }
        const GlobalBinding& binding = global_bindings_[e.binding_index];
        if (e.type.IsArray()) {
          return Operand::ObjAddr(binding.index);
        }
        if (binding.is_object) {
          return LoadPlace(LowerPlace(e), e.loc);
        }
        return Operand::GlobalSlot(binding.index);
      }
      case ExprKind::kUnary:
        return LowerUnary(e);
      case ExprKind::kBinary:
        return LowerBinary(e);
      case ExprKind::kLogical:
        return LowerLogicalValue(e);
      case ExprKind::kAssign:
        return LowerAssign(e);
      case ExprKind::kIncDec:
        return LowerIncDec(e);
      case ExprKind::kIndex: {
        const Place place = LowerPlace(e);
        return LoadPlace(place, e.loc);
      }
      case ExprKind::kCall:
        return LowerCall(e);
    }
    FatalError("unreachable expression kind");
  }

  Operand LowerUnary(const Expr& e) {
    switch (e.un_op) {
      case UnaryOp::kDeref:
        return LoadPlace(LowerPlace(e), e.loc);
      case UnaryOp::kAddrOf:
        return LowerAddrOf(*e.lhs);
      default:
        break;
    }
    const Operand operand = LowerExpr(*e.lhs);
    const i32 temp = NewTemp();
    Instr un;
    un.op = Opcode::kUn;
    un.loc = e.loc;
    un.dst = Operand::Slot(temp);
    un.a = operand;
    switch (e.un_op) {
      case UnaryOp::kNeg: un.un_op = IrUnOp::kNeg; break;
      case UnaryOp::kBitNot: un.un_op = IrUnOp::kBitNot; break;
      case UnaryOp::kLogicalNot: un.un_op = IrUnOp::kLogicalNot; break;
      default: FatalError("bad unary op");
    }
    Emit(std::move(un));
    return Operand::Slot(temp);
  }

  Operand LowerAddrOf(const Expr& target) {
    switch (target.kind) {
      case ExprKind::kVarRef: {
        if (target.binding_kind == 0) {
          const i32 obj = local_frame_obj_[target.binding_index];
          Check(obj >= 0, "address-taken local without frame object");
          return Operand::FrameObjAddr(obj);
        }
        const GlobalBinding& binding = global_bindings_[target.binding_index];
        Check(binding.is_object, "address-taken global without object");
        return Operand::ObjAddr(binding.index);
      }
      case ExprKind::kIndex: {
        const Operand base = LowerExpr(*target.lhs);
        const Operand index = LowerExpr(*target.rhs);
        const i32 temp = NewTemp();
        Instr add;
        add.op = Opcode::kPtrAdd;
        add.loc = target.loc;
        add.dst = Operand::Slot(temp);
        add.a = base;
        add.b = index;
        Emit(std::move(add));
        return Operand::Slot(temp);
      }
      case ExprKind::kUnary:
        Check(target.un_op == UnaryOp::kDeref, "bad &-operand survived sema");
        return LowerExpr(*target.lhs);
      default:
        FatalError("bad &-operand survived sema");
    }
  }

  Operand LowerBinary(const Expr& e) {
    const Type lt = e.lhs->type.IsArray() ? Type::PtrTo(e.lhs->type.base, 1) : e.lhs->type;
    const Type rt = e.rhs->type.IsArray() ? Type::PtrTo(e.rhs->type.base, 1) : e.rhs->type;
    const Operand a = LowerExpr(*e.lhs);
    const Operand b = LowerExpr(*e.rhs);
    // Pointer arithmetic becomes kPtrAdd; pointer difference stays kSub and
    // is resolved by the interpreter (same-object check).
    if (e.bin_op == BinaryOp::kAdd && (lt.IsPtr() || rt.IsPtr())) {
      const i32 temp = NewTemp();
      Instr add;
      add.op = Opcode::kPtrAdd;
      add.loc = e.loc;
      add.dst = Operand::Slot(temp);
      add.a = lt.IsPtr() ? a : b;
      add.b = lt.IsPtr() ? b : a;
      Emit(std::move(add));
      return Operand::Slot(temp);
    }
    if (e.bin_op == BinaryOp::kSub && lt.IsPtr() && !rt.IsPtr()) {
      const i32 neg = NewTemp();
      Instr un;
      un.op = Opcode::kUn;
      un.loc = e.loc;
      un.dst = Operand::Slot(neg);
      un.a = b;
      un.un_op = IrUnOp::kNeg;
      Emit(std::move(un));
      const i32 temp = NewTemp();
      Instr add;
      add.op = Opcode::kPtrAdd;
      add.loc = e.loc;
      add.dst = Operand::Slot(temp);
      add.a = a;
      add.b = Operand::Slot(neg);
      Emit(std::move(add));
      return Operand::Slot(temp);
    }
    const i32 temp = NewTemp();
    Instr bin;
    bin.op = Opcode::kBin;
    bin.loc = e.loc;
    bin.dst = Operand::Slot(temp);
    bin.a = a;
    bin.b = b;
    bin.bin_op = e.bin_op;
    Emit(std::move(bin));
    return Operand::Slot(temp);
  }

  Operand LowerLogicalValue(const Expr& e) {
    const i32 result = NewTemp();
    const i32 bb_true = NewBlock();
    const i32 bb_false = NewBlock();
    const i32 bb_join = NewBlock();
    LowerCondBranch(e, bb_true, bb_false);
    cur_bb_ = bb_true;
    Instr set1;
    set1.op = Opcode::kAssign;
    set1.loc = e.loc;
    set1.dst = Operand::Slot(result);
    set1.a = Operand::Const(1);
    Emit(std::move(set1));
    EmitJmp(bb_join, e.loc);
    cur_bb_ = bb_false;
    Instr set0;
    set0.op = Opcode::kAssign;
    set0.loc = e.loc;
    set0.dst = Operand::Slot(result);
    set0.a = Operand::Const(0);
    Emit(std::move(set0));
    EmitJmp(bb_join, e.loc);
    cur_bb_ = bb_join;
    return Operand::Slot(result);
  }

  Operand LowerAssign(const Expr& e) {
    const Place place = LowerPlace(*e.lhs);
    Operand value;
    if (e.has_compound_op) {
      const Operand old_value = LoadPlace(place, e.loc);
      const Operand rhs = LowerExpr(*e.rhs);
      const i32 temp = NewTemp();
      if (e.lhs->type.IsPtr()) {
        Instr add;
        add.op = Opcode::kPtrAdd;
        add.loc = e.loc;
        add.dst = Operand::Slot(temp);
        add.a = old_value;
        if (e.compound_op == BinaryOp::kSub) {
          const i32 neg = NewTemp();
          Instr un;
          un.op = Opcode::kUn;
          un.loc = e.loc;
          un.dst = Operand::Slot(neg);
          un.a = rhs;
          un.un_op = IrUnOp::kNeg;
          Emit(std::move(un));
          add.b = Operand::Slot(neg);
        } else {
          add.b = rhs;
        }
        Emit(std::move(add));
      } else {
        Instr bin;
        bin.op = Opcode::kBin;
        bin.loc = e.loc;
        bin.dst = Operand::Slot(temp);
        bin.a = old_value;
        bin.b = rhs;
        bin.bin_op = e.compound_op;
        Emit(std::move(bin));
      }
      value = Operand::Slot(temp);
    } else {
      value = LowerExpr(*e.rhs);
    }
    StorePlace(place, value, e.loc);
    return value;
  }

  Operand LowerIncDec(const Expr& e) {
    const Place place = LowerPlace(*e.lhs);
    const Operand old_value = LoadPlace(place, e.loc);
    // Copy the old value: for slot places the operand aliases the slot and
    // would observe the update.
    const i32 old_copy = NewTemp();
    Instr copy;
    copy.op = Opcode::kAssign;
    copy.loc = e.loc;
    copy.dst = Operand::Slot(old_copy);
    copy.a = old_value;
    Emit(std::move(copy));

    const i32 new_value = NewTemp();
    if (e.lhs->type.IsPtr()) {
      Instr add;
      add.op = Opcode::kPtrAdd;
      add.loc = e.loc;
      add.dst = Operand::Slot(new_value);
      add.a = Operand::Slot(old_copy);
      add.b = Operand::Const(e.is_increment ? 1 : -1);
      Emit(std::move(add));
    } else {
      Instr bin;
      bin.op = Opcode::kBin;
      bin.loc = e.loc;
      bin.dst = Operand::Slot(new_value);
      bin.a = Operand::Slot(old_copy);
      bin.b = Operand::Const(1);
      bin.bin_op = e.is_increment ? BinaryOp::kAdd : BinaryOp::kSub;
      Emit(std::move(bin));
    }
    StorePlace(place, Operand::Slot(new_value), e.loc);
    return e.is_prefix ? Operand::Slot(new_value) : Operand::Slot(old_copy);
  }

  Operand LowerCall(const Expr& e) {
    Instr call;
    call.op = Opcode::kCall;
    call.loc = e.loc;
    call.callee = e.callee_index;
    call.callee_is_builtin = e.callee_is_builtin;
    for (const ExprPtr& arg : e.args) {
      call.args.push_back(LowerExpr(*arg));
    }
    Operand result = Operand::None();
    if (!e.type.IsVoid()) {
      const i32 temp = NewTemp();
      call.dst = Operand::Slot(temp);
      result = Operand::Slot(temp);
    }
    Emit(std::move(call));
    return result;
  }

  const SemaProgram& program_;
  std::unique_ptr<IrModule> module_;
  std::vector<GlobalBinding> global_bindings_;
  std::vector<i32> string_objects_;

  IrFunction* fn_ = nullptr;
  const SemaFunc* sema_fn_ = nullptr;
  std::vector<i32> local_frame_obj_;
  i32 cur_bb_ = 0;
  std::vector<std::pair<i32, i32>> loop_stack_;  // {continue target, break target}
};

}  // namespace

Result<std::unique_ptr<IrModule>> Lower(const SemaProgram& program) {
  return LoweringImpl(program).Run();
}

}  // namespace retrace
