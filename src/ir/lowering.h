// AST -> CFG IR lowering.
#ifndef RETRACE_IR_LOWERING_H_
#define RETRACE_IR_LOWERING_H_

#include <memory>

#include "src/ir/ir.h"
#include "src/lang/sema.h"
#include "src/support/diag.h"

namespace retrace {

// Lowers a sema-checked program to IR. Every source-level conditional
// (if/while/for and each operand of && / ||) becomes a kBr instruction with
// a fresh BranchId registered in the module's branch table.
Result<std::unique_ptr<IrModule>> Lower(const SemaProgram& program);

}  // namespace retrace

#endif  // RETRACE_IR_LOWERING_H_
