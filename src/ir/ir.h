// Control-flow-graph IR for MiniC.
//
// Every conditional jump in the program is an explicit `kBr` instruction
// carrying a stable BranchId — the unit of everything the paper measures:
// branch *locations* are BranchIds, branch *executions* are dynamic
// executions of a kBr. Short-circuit && / || are lowered to separate kBr
// instructions exactly as a C compiler (or CIL) would, so they count as
// distinct branch locations.
#ifndef RETRACE_IR_IR_H_
#define RETRACE_IR_IR_H_

#include <string>
#include <vector>

#include "src/lang/ast.h"
#include "src/lang/builtins.h"
#include "src/support/common.h"

namespace retrace {

enum class Opcode {
  kAssign,   // dst <- a
  kBin,      // dst <- a bin_op b
  kUn,       // dst <- un_op a
  kLoad,     // dst <- mem[a + b]   (a: pointer, b: element index)
  kStore,    // mem[a + b] <- c
  kPtrAdd,   // dst <- a + b        (a: pointer, b: element delta)
  kCall,     // dst <- callee(args...)
  kBr,       // if a goto bb_true else bb_false   [branch_id]
  kJmp,      // goto bb_true
  kRet,      // return a (operand optional)
};

enum class IrUnOp { kNeg, kBitNot, kLogicalNot, kTruncChar };

struct Operand {
  enum class Kind {
    kNone,
    kConstInt,      // imm
    kSlot,          // frame slot `index` of the current function
    kGlobalSlot,    // module global scalar slot `index`
    kObjAddr,       // address of static object `index` (global arrays, strings)
    kFrameObjAddr,  // address of frame object `index` (local arrays, &locals)
  };
  Kind kind = Kind::kNone;
  i32 index = 0;
  i64 imm = 0;

  static Operand None() { return Operand{}; }
  static Operand Const(i64 v) { return Operand{Kind::kConstInt, 0, v}; }
  static Operand Slot(i32 i) { return Operand{Kind::kSlot, i, 0}; }
  static Operand GlobalSlot(i32 i) { return Operand{Kind::kGlobalSlot, i, 0}; }
  static Operand ObjAddr(i32 i) { return Operand{Kind::kObjAddr, i, 0}; }
  static Operand FrameObjAddr(i32 i) { return Operand{Kind::kFrameObjAddr, i, 0}; }

  bool IsNone() const { return kind == Kind::kNone; }
  bool IsConst() const { return kind == Kind::kConstInt; }
};

struct Instr {
  Opcode op = Opcode::kAssign;
  SourceLoc loc;
  Operand dst;  // kSlot or kGlobalSlot destination (kNone when unused).
  Operand a;
  Operand b;
  Operand c;
  BinaryOp bin_op = BinaryOp::kAdd;
  IrUnOp un_op = IrUnOp::kNeg;
  bool store_char = false;  // kStore/kAssign target holds chars: truncate.
  // kCall.
  i32 callee = -1;
  bool callee_is_builtin = false;
  std::vector<Operand> args;
  // kBr / kJmp.
  i32 bb_true = -1;
  i32 bb_false = -1;
  i32 branch_id = -1;
};

struct BasicBlock {
  std::vector<Instr> instrs;  // Last instruction is the terminator.
};

// A memory object allocated per function activation: local arrays and
// address-taken scalar locals (promoted so &x works).
struct FrameObjectInfo {
  std::string name;
  i64 size = 0;
  bool is_char = false;
  i32 local_slot = -1;  // Slot the object was promoted from, or -1 for arrays.
};

// A memory object with static storage duration: global arrays, address-taken
// global scalars, and string literals.
struct StaticObjectInfo {
  std::string name;
  i64 size = 0;
  bool is_char = false;
  std::vector<i64> init;  // Initial cell values (zero-filled to size).
};

struct GlobalScalarInfo {
  std::string name;
  i64 init = 0;
};

// Identity of one branch location. The `is_library` flag drives the
// application/library splits in Figure 3 and the static analyzer's
// library-opaque mode.
struct BranchInfo {
  i32 id = -1;
  i32 func = -1;
  SourceLoc loc;
  bool is_library = false;
  std::string context;  // "if", "while", "for", "&&", "||" - for diagnostics.
};

struct IrFunction {
  std::string name;
  i32 index = -1;
  int num_params = 0;
  i32 num_slots = 0;  // Params + locals + temps.
  Type return_type;
  bool is_library = false;
  std::vector<FrameObjectInfo> frame_objects;
  std::vector<BasicBlock> blocks;  // blocks[0] is the entry block.
  // Params that are pointers (used by analyses); slot i is param i.
  std::vector<Type> param_types;
};

struct IrModule {
  std::vector<IrFunction> funcs;
  std::vector<GlobalScalarInfo> global_scalars;
  std::vector<StaticObjectInfo> static_objects;
  std::vector<BranchInfo> branches;
  i32 main_index = -1;

  const IrFunction* FindFunc(std::string_view name) const;
  size_t NumBranchLocations() const { return branches.size(); }
  // Branch locations in application (non-library) code.
  size_t NumAppBranchLocations() const;
};

}  // namespace retrace

#endif  // RETRACE_IR_IR_H_
