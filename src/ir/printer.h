// Human-readable dump of the IR, for tests and debugging.
#ifndef RETRACE_IR_PRINTER_H_
#define RETRACE_IR_PRINTER_H_

#include <string>

#include "src/ir/ir.h"

namespace retrace {

std::string PrintFunction(const IrModule& module, const IrFunction& fn);
std::string PrintModule(const IrModule& module);

}  // namespace retrace

#endif  // RETRACE_IR_PRINTER_H_
