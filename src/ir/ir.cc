#include "src/ir/ir.h"

namespace retrace {

const IrFunction* IrModule::FindFunc(std::string_view name) const {
  for (const IrFunction& f : funcs) {
    if (f.name == name) {
      return &f;
    }
  }
  return nullptr;
}

size_t IrModule::NumAppBranchLocations() const {
  size_t n = 0;
  for (const BranchInfo& b : branches) {
    if (!b.is_library) {
      ++n;
    }
  }
  return n;
}

}  // namespace retrace
