#include "src/core/report.h"

namespace retrace {

InputSpec StripInput(const InputSpec& spec) {
  InputSpec out;
  out.argv.reserve(spec.argv.size());
  for (size_t i = 0; i < spec.argv.size(); ++i) {
    if (spec.ArgIsPublic(i)) {
      out.argv.push_back(spec.argv[i]);  // Program name / public arguments.
    } else {
      out.argv.push_back(std::string(spec.argv[i].size(), 'x'));
    }
  }
  out.argv_public = spec.argv_public;
  out.world = spec.world.StripContents();
  return out;
}

}  // namespace retrace
