// The bug report: everything that ships from the user site to the
// developer site when a crash occurs.
//
// Contents (paper §3.1): the partial branch bitvector, the (optional)
// system-call result log, the crash site, and the input *shape* — argument
// count/lengths and environment structure, never input bytes. The list of
// instrumented branches itself is retained by the developer from build
// time (it is a property of the shipped binary, not of the run).
#ifndef RETRACE_CORE_REPORT_H_
#define RETRACE_CORE_REPORT_H_

#include <string>

#include "src/exec/value.h"
#include "src/instrument/plan.h"
#include "src/instrument/syscall_log.h"
#include "src/support/bitvec.h"
#include "src/vos/vos.h"

namespace retrace {

struct UserSiteStats {
  u64 branch_execs = 0;              // Total branch executions in the run.
  u64 instrumented_execs = 0;        // Executions of instrumented branches.
  u64 log_bytes = 0;                 // Branch log wire size.
  u64 syscall_log_bytes = 0;
  u64 flushes = 0;                   // 4 KB buffer flushes.
  // Symbolic-branch accounting for Tables 4/7/8 (gathered by a profiling
  // shadow run; a real deployment would not compute these).
  u64 symbolic_locations_logged = 0;
  u64 symbolic_locations_unlogged = 0;
  u64 symbolic_execs_logged = 0;
  u64 symbolic_execs_unlogged = 0;
};

struct BugReport {
  InstrumentMethod method = InstrumentMethod::kAllBranches;
  BitVec branch_log;
  bool has_syscall_log = false;
  SyscallLog syscall_log;
  CrashSite crash;
  InputSpec shape;  // Privacy-stripped: lengths and structure only.
  UserSiteStats stats;
};

// Strips input contents, keeping only the shape: argv strings are replaced
// by placeholder bytes of equal length; stream bytes are dropped.
InputSpec StripInput(const InputSpec& spec);

}  // namespace retrace

#endif  // RETRACE_CORE_REPORT_H_
