// Public entry point: the full bug-reporting pipeline.
//
// Usage mirrors the paper's deployment model:
//
//   auto pipeline = Pipeline::FromSources(app_src, {libmini_src}).take();
//   // 1. Pre-deployment analyses (developer, before shipping).
//   AnalysisResult dyn = pipeline->RunDynamicAnalysis(spec, dyn_cfg);
//   StaticAnalysisResult stat = pipeline->RunStaticAnalysis({...});
//   InstrumentationPlan plan = pipeline->MakePlan(
//       InstrumentMethod::kDynamicStatic, &dyn, &stat);
//   // 2. User site: instrumented run; crash produces a bug report.
//   UserRunOutput user = pipeline->RecordUserRun(spec, plan, {...});
//   // 3. Developer site: reproduce from the report alone.
//   ReplayResult repro = pipeline->Reproduce(user.report, plan, replay_cfg);
//   // 4. Verify the witness input actually triggers the same crash.
//   bool ok = pipeline->VerifyWitness(user.report, repro.witness_cells);
#ifndef RETRACE_CORE_PIPELINE_H_
#define RETRACE_CORE_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/analysis/static_analyzer.h"
#include "src/concolic/engine.h"
#include "src/core/report.h"
#include "src/instrument/plan.h"
#include "src/instrument/recorder.h"
#include "src/ir/ir.h"
#include "src/lang/sema.h"
#include "src/replay/replay_engine.h"

namespace retrace {

class Pipeline {
 public:
  // Compiles the program. Library sources are tagged so branch accounting
  // and the static analyzer's library-opaque mode can distinguish them.
  static Result<std::unique_ptr<Pipeline>> FromSources(
      std::string_view app_source, const std::vector<std::string>& library_sources = {});

  const IrModule& module() const { return *module_; }
  const SemaProgram& program() const { return *program_; }
  ExprArena& arena() { return arena_; }

  // ----- Phase 1: pre-deployment analyses -----
  AnalysisResult RunDynamicAnalysis(const InputSpec& spec, const AnalysisConfig& config);
  StaticAnalysisResult RunStaticAnalysis(const StaticAnalysisOptions& options);
  InstrumentationPlan MakePlan(InstrumentMethod method, const AnalysisResult* dynamic_result,
                               const StaticAnalysisResult* static_result,
                               const PlanOptions& options = PlanOptions{});
  // Single profiled run for the branch-behavior figures (Fig. 1 / Fig. 3).
  AnalysisResult ProfileBranchBehavior(const InputSpec& spec, NondetPolicy* policy = nullptr);

  // ----- Phase 2: user site -----
  struct UserRunOptions {
    bool log_syscalls = true;
    NondetPolicy* policy = nullptr;
    u64 max_steps = 400'000'000;
  };
  struct UserRunOutput {
    RunResult result;
    BugReport report;  // Meaningful when result.Crashed().
    std::string stdout_text;
  };
  UserRunOutput RecordUserRun(const InputSpec& spec, const InstrumentationPlan& plan,
                              const UserRunOptions& options);

  // Wall-clock overhead measurement: runs the program `reps` times without
  // instrumentation and `reps` times with the plan's recorder, reporting
  // the best (least noisy) times plus the recorder's work counters.
  struct OverheadSample {
    double plain_seconds = 0.0;
    double instrumented_seconds = 0.0;
    u64 instrumented_execs = 0;
    u64 branch_execs = 0;
    u64 log_bytes = 0;
    u64 syscall_log_bytes = 0;
    double OverheadPercent() const {
      return plain_seconds <= 0 ? 0.0
                                : (instrumented_seconds / plain_seconds - 1.0) * 100.0;
    }
  };
  OverheadSample MeasureOverhead(const InputSpec& spec, const InstrumentationPlan& plan,
                                 NondetPolicy* policy, int reps, bool log_syscalls = true);

  // ----- Phase 3: developer site -----
  // `config.num_workers` > 1 runs the parallel replay scheduler (use
  // DefaultReplayWorkers() to saturate the host); `config.num_shards` > 1
  // additionally forks shard processes (call from a single-threaded
  // context — see src/dist/coordinator.h).
  ReplayResult Reproduce(const BugReport& report, const InstrumentationPlan& plan,
                         const ReplayConfig& config);

  // Replay worker count that saturates this host; the resolution applied
  // to ReplayConfig::num_workers == 0.
  static u32 DefaultReplayWorkers() { return retrace::DefaultReplayWorkers(); }

  // Runs the witness input concretely and checks it crashes at the
  // reported site.
  bool VerifyWitness(const BugReport& report, const std::vector<i64>& witness_cells);

 private:
  Pipeline() = default;

  std::unique_ptr<SemaProgram> program_;
  std::unique_ptr<IrModule> module_;
  // Sources this pipeline was compiled from; shipped to TCP replay
  // shards (ReplayTransport::kTcp) so remote hosts can rebuild the
  // module deterministically.
  std::string app_source_;
  std::vector<std::string> lib_sources_;
  ExprArena arena_;
};

}  // namespace retrace

#endif  // RETRACE_CORE_PIPELINE_H_
