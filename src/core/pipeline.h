// Public entry point: the full bug-reporting pipeline.
//
// Usage mirrors the paper's deployment model:
//
//   auto pipeline = Pipeline::FromSources(app_src, {libmini_src}).take();
//   // 1. Pre-deployment analyses (developer, before shipping).
//   AnalysisResult dyn = pipeline->RunDynamicAnalysis(spec, dyn_cfg);
//   StaticAnalysisResult stat = pipeline->RunStaticAnalysis({...});
//   InstrumentationPlan plan =
//       pipeline->MakePlan(PlanInputs::DynamicStatic(dyn, stat));
//   // 2. User site: instrumented run; crash produces a bug report.
//   UserRunOutput user = pipeline->RecordUserRun(spec, plan, {...}).take();
//   // 3. Developer site: reproduce from the report alone.
//   ReplayResult repro =
//       pipeline->Reproduce(user.report, plan, replay_cfg).take();
//   // 4. Verify the witness input actually triggers the same crash.
//   bool ok = pipeline->VerifyWitness(user.report, repro.witness_cells);
//
// RecordUserRun and Reproduce return Result<...>: a plan whose bitset
// does not match this module's branch count is rejected with a typed
// error instead of silently truncating the log. When the static plan
// leaves the search blind (exp 5), ReproduceAdaptive closes the paper's
// own loop: search -> mine failure telemetry -> refine the plan ->
// re-record -> re-search, round by round, under an overhead budget.
#ifndef RETRACE_CORE_PIPELINE_H_
#define RETRACE_CORE_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/analysis/static_analyzer.h"
#include "src/concolic/engine.h"
#include "src/core/report.h"
#include "src/instrument/plan.h"
#include "src/instrument/recorder.h"
#include "src/instrument/refine.h"
#include "src/ir/ir.h"
#include "src/lang/sema.h"
#include "src/replay/replay_engine.h"
#include "src/service/service.h"

namespace retrace {

class Pipeline {
 public:
  // Compiles the program. Library sources are tagged so branch accounting
  // and the static analyzer's library-opaque mode can distinguish them.
  static Result<std::unique_ptr<Pipeline>> FromSources(
      std::string_view app_source, const std::vector<std::string>& library_sources = {});

  const IrModule& module() const { return *module_; }
  const SemaProgram& program() const { return *program_; }
  ExprArena& arena() { return arena_; }

  // ----- Phase 1: pre-deployment analyses -----
  AnalysisResult RunDynamicAnalysis(const InputSpec& spec, const AnalysisConfig& config);
  StaticAnalysisResult RunStaticAnalysis(const StaticAnalysisOptions& options);
  // Builds a plan from PlanInputs (src/instrument/plan.h): the factories
  // demand exactly the analysis results each method consumes, so passing
  // no dynamic result to a dynamic plan is a compile error.
  InstrumentationPlan MakePlan(const PlanInputs& inputs,
                               const PlanOptions& options = PlanOptions{});
  // Single profiled run for the branch-behavior figures (Fig. 1 / Fig. 3).
  AnalysisResult ProfileBranchBehavior(const InputSpec& spec, NondetPolicy* policy = nullptr);

  // ----- Phase 2: user site -----
  struct UserRunOptions {
    bool log_syscalls = true;
    NondetPolicy* policy = nullptr;
    u64 max_steps = 400'000'000;
  };
  struct UserRunOutput {
    RunResult result;
    BugReport report;  // Meaningful when result.Crashed().
    std::string stdout_text;
  };
  // Errors when plan.branches.size() != module().branches.size() (a plan
  // built for a different program would silently mis-log every branch).
  Result<UserRunOutput> RecordUserRun(const InputSpec& spec, const InstrumentationPlan& plan,
                                      const UserRunOptions& options);

  // Wall-clock overhead measurement: runs the program `reps` times without
  // instrumentation and `reps` times with the plan's recorder, reporting
  // the best (least noisy) times plus the recorder's work counters.
  struct OverheadSample {
    double plain_seconds = 0.0;
    double instrumented_seconds = 0.0;
    u64 instrumented_execs = 0;
    u64 branch_execs = 0;
    u64 log_bytes = 0;
    u64 syscall_log_bytes = 0;
    double OverheadPercent() const {
      return plain_seconds <= 0 ? 0.0
                                : (instrumented_seconds / plain_seconds - 1.0) * 100.0;
    }
  };
  OverheadSample MeasureOverhead(const InputSpec& spec, const InstrumentationPlan& plan,
                                 NondetPolicy* policy, int reps, bool log_syscalls = true);

  // ----- Phase 3: developer site -----
  // `config.num_workers` > 1 runs the parallel replay scheduler (use
  // DefaultReplayWorkers() to saturate the host); `config.num_shards` > 1
  // additionally forks shard processes (call from a single-threaded
  // context — see src/dist/coordinator.h). Errors on a plan/module
  // branch-count mismatch, like RecordUserRun.
  Result<ReplayResult> Reproduce(const BugReport& report, const InstrumentationPlan& plan,
                                 const ReplayConfig& config);

  // ----- Adaptive planning: the paper's balance, closed-loop -----
  struct AdaptiveConfig {
    // The real user input. BugReport::shape is privacy-stripped, so
    // re-recording with a refined plan needs the original spec (the
    // "user site" of each round).
    InputSpec user_spec;
    UserRunOptions user_run;
    // Per-round search configuration, budget fields included — every
    // round spends up to this much.
    ReplayConfig replay;
    RefineConfig refine;
    // Refinement rounds after the initial search (>= 1).
    u32 max_rounds = 4;
    // Reps for the per-round MeasureOverhead budget check; 0 skips the
    // measurement (refine.max_overhead_percent is then not enforced).
    int overhead_reps = 0;
    // Corpus mutation (src/concolic/corpus_mutate.h): base models —
    // typically AnalysisResult::corpus — fuzzed into
    // ReplayConfig::corpus_seeds for every round's search. Zero
    // mutants_per_seed passes `corpus` through unmutated.
    std::vector<std::vector<i64>> corpus;
    u32 corpus_mutants_per_seed = 0;
    size_t corpus_max_total = 256;
    u64 mutation_seed = 7;
  };
  // One round of the adaptive loop, as reported in AdaptiveResult: the
  // search under this round's plan, then the refinement chosen from its
  // telemetry (zero added_branches on the final/converged round).
  struct AdaptiveRound {
    u32 round = 0;
    u64 runs = 0;
    double on_log_rate = 0.0;  // aborts_forced_direction / runs.
    bool reproduced = false;
    u32 plan_branches = 0;     // Instrumented locations searched this round.
    u32 added_branches = 0;
    u32 candidates = 0;
    u32 skipped_irrelevant = 0;
    u32 skipped_budget = 0;    // Additions dropped by the overhead ceiling.
    // Modeled native CPU % of the refined plan (100 = uninstrumented);
    // 0 when the budget check did not run this round.
    double predicted_overhead_percent = 0.0;
    u64 log_bytes = 0;         // Branch-log bytes of the report searched this round.
    double wall_seconds = 0.0;
  };
  struct AdaptiveResult {
    bool reproduced = false;
    // Refinement added nothing (no candidates survived the filters), so
    // the loop stopped before max_rounds.
    bool converged = false;
    ReplayResult final_result;        // Last round's search result.
    InstrumentationPlan final_plan;   // The machine-chosen plan.
    std::vector<AdaptiveRound> rounds;
  };
  // Drives search -> mine -> refine -> re-record -> re-search rounds
  // until the bug reproduces, refinement converges, or max_rounds is
  // spent. Telemetry-driven: each round's added branches come from the
  // previous search's ReplayFailureProfile, filtered by log-irrelevance
  // learning and the overhead budget. Errors on a plan/module mismatch
  // or when `user_spec` stops reproducing the crash at the user site.
  Result<AdaptiveResult> ReproduceAdaptive(const BugReport& report,
                                           const InstrumentationPlan& plan,
                                           const AdaptiveConfig& config);

  // ----- Replay-as-a-service: resident, multi-tenant -----
  // Builds a ReplayService bound to this pipeline's module: incoming
  // reports cluster by crash fingerprint, one search runs per cluster
  // (on a standing shard fleet when config.replay.num_shards > 1), and
  // duplicates get the cached verdict. Fills config.replay.program from
  // this pipeline's sources, like Reproduce does for TCP shards. The
  // caller still drives the lifecycle: Start() the returned service
  // before submitting (from a single-threaded context when the fleet
  // self-spawns — it forks). Reproduce() is unchanged; a service is
  // additive. Errors on a plan/module branch-count mismatch.
  Result<std::unique_ptr<ReplayService>> MakeService(const InstrumentationPlan& plan,
                                                     ServiceConfig config);

  // Replay worker count that saturates this host; the resolution applied
  // to ReplayConfig::num_workers == 0.
  static u32 DefaultReplayWorkers() { return retrace::DefaultReplayWorkers(); }

  // Runs the witness input concretely and checks it crashes at the
  // reported site.
  bool VerifyWitness(const BugReport& report, const std::vector<i64>& witness_cells);

 private:
  Pipeline() = default;

  // The misuse guard behind RecordUserRun/Reproduce/ReproduceAdaptive.
  Error PlanMismatch(const InstrumentationPlan& plan) const;
  bool PlanMatches(const InstrumentationPlan& plan) const {
    return plan.branches.size() == module_->branches.size();
  }

  std::unique_ptr<SemaProgram> program_;
  std::unique_ptr<IrModule> module_;
  // Sources this pipeline was compiled from; shipped to TCP replay
  // shards (ReplayTransport::kTcp) so remote hosts can rebuild the
  // module deterministically.
  std::string app_source_;
  std::vector<std::string> lib_sources_;
  ExprArena arena_;
};

}  // namespace retrace

#endif  // RETRACE_CORE_PIPELINE_H_
