#include "src/core/pipeline.h"

#include <chrono>
#include <cstdio>

#include "src/analysis/log_irrelevance.h"
#include "src/analysis/points_to.h"
#include "src/concolic/corpus_mutate.h"
#include "src/ir/lowering.h"
#include "src/lang/parser.h"

namespace retrace {

Result<std::unique_ptr<Pipeline>> Pipeline::FromSources(
    std::string_view app_source, const std::vector<std::string>& library_sources) {
  std::vector<std::unique_ptr<Unit>> units;
  int unit_index = 0;
  for (const std::string& lib : library_sources) {
    Result<std::unique_ptr<Unit>> unit = Parse(lib, unit_index++, /*is_library=*/true);
    if (!unit.ok()) {
      return unit.error();
    }
    units.push_back(unit.take());
  }
  Result<std::unique_ptr<Unit>> app = Parse(app_source, unit_index++, /*is_library=*/false);
  if (!app.ok()) {
    return app.error();
  }
  units.push_back(app.take());

  Result<std::unique_ptr<SemaProgram>> program = Analyze(std::move(units));
  if (!program.ok()) {
    return program.error();
  }
  Result<std::unique_ptr<IrModule>> module = Lower(*program.value());
  if (!module.ok()) {
    return module.error();
  }

  auto pipeline = std::unique_ptr<Pipeline>(new Pipeline());
  pipeline->program_ = program.take();
  pipeline->module_ = module.take();
  // Retained so Reproduce can ship the program to TCP replay shards on
  // other hosts (lowering is deterministic — a rebuilt module has the
  // same branch ids as this one).
  pipeline->app_source_ = std::string(app_source);
  pipeline->lib_sources_ = library_sources;
  return pipeline;
}

AnalysisResult Pipeline::RunDynamicAnalysis(const InputSpec& spec, const AnalysisConfig& config) {
  ConcolicEngine engine(*module_, &arena_);
  return engine.Analyze(spec, config);
}

StaticAnalysisResult Pipeline::RunStaticAnalysis(const StaticAnalysisOptions& options) {
  StaticAnalyzer analyzer(*module_, options);
  return analyzer.Run();
}

InstrumentationPlan Pipeline::MakePlan(const PlanInputs& inputs, const PlanOptions& options) {
  return BuildPlan(*module_, inputs, options);
}

Error Pipeline::PlanMismatch(const InstrumentationPlan& plan) const {
  char message[160];
  std::snprintf(message, sizeof(message),
                "instrumentation plan covers %zu branches but this module has %zu; "
                "the plan was built for a different program",
                plan.branches.size(), module_->branches.size());
  return Error{message, {}};
}

AnalysisResult Pipeline::ProfileBranchBehavior(const InputSpec& spec, NondetPolicy* policy) {
  ConcolicEngine engine(*module_, &arena_);
  return engine.ProfileRun(spec, policy);
}

namespace {

// Counts symbolic branch executions/locations, split by plan membership
// (Tables 4, 7 and 8). Requires a shadow run.
class SymbolicSplitObserver : public BranchObserver {
 public:
  SymbolicSplitObserver(const InstrumentationPlan& plan, size_t num_branches)
      : plan_(plan), symbolic_seen_(num_branches, 0) {}

  Action OnBranch(i32 branch_id, bool /*taken*/, ExprRef cond_shadow) override {
    if (cond_shadow == kNoExpr) {
      return Action::kContinue;
    }
    symbolic_seen_[branch_id] += 1;
    return Action::kContinue;
  }

  void FillStats(UserSiteStats* stats) const {
    for (size_t id = 0; id < symbolic_seen_.size(); ++id) {
      if (symbolic_seen_[id] == 0) {
        continue;
      }
      if (plan_.Instrumented(static_cast<i32>(id))) {
        ++stats->symbolic_locations_logged;
        stats->symbolic_execs_logged += symbolic_seen_[id];
      } else {
        ++stats->symbolic_locations_unlogged;
        stats->symbolic_execs_unlogged += symbolic_seen_[id];
      }
    }
  }

 private:
  const InstrumentationPlan& plan_;
  std::vector<u64> symbolic_seen_;
};

}  // namespace

Result<Pipeline::UserRunOutput> Pipeline::RecordUserRun(const InputSpec& spec,
                                                        const InstrumentationPlan& plan,
                                                        const UserRunOptions& options) {
  if (!PlanMatches(plan)) {
    return PlanMismatch(plan);
  }
  UserRunOutput out;
  CellRunner runner(*module_, spec);

  // The real user-site run: concrete, instrumented, scripted environment.
  BranchTraceRecorder recorder(plan);
  CellRunConfig run_config;
  run_config.policy = options.policy;
  run_config.observers = {&recorder};
  run_config.symbolic_syscalls = false;
  run_config.max_steps = options.max_steps;
  run_config.plan = &plan;
  CellRunOutput run = runner.Run(run_config);
  out.result = run.result;
  out.stdout_text = run.stdout_text;

  BugReport report;
  report.method = plan.method;
  report.branch_log = recorder.TakeLog();
  report.has_syscall_log = options.log_syscalls;
  if (options.log_syscalls) {
    report.syscall_log = SyscallLogFromTrace(run.dyn_trace);
  }
  report.crash = run.result.crash;
  report.shape = StripInput(spec);
  report.stats.branch_execs = run.result.stats.branch_execs;
  report.stats.log_bytes = report.branch_log.ByteSize();
  report.stats.syscall_log_bytes =
      options.log_syscalls ? SyscallLogBytes(report.syscall_log) : 0;
  report.stats.flushes = recorder.flushes();

  // Experimenter-side profiling run: same input and environment script, but
  // with shadow tracking, to attribute symbolic executions to logged /
  // unlogged locations. A production deployment would skip this.
  {
    SymbolicSplitObserver split(plan, module_->branches.size());
    InstrumentedExecCounter counter(plan);
    CellRunConfig profile_config;
    profile_config.policy = options.policy;
    profile_config.arena = &arena_;
    profile_config.observers = {&split, &counter};
    profile_config.max_steps = options.max_steps;
    profile_config.plan = &plan;
    runner.Run(profile_config);
    split.FillStats(&report.stats);
    report.stats.instrumented_execs = counter.count();
  }

  out.report = std::move(report);
  return out;
}

Pipeline::OverheadSample Pipeline::MeasureOverhead(const InputSpec& spec,
                                                   const InstrumentationPlan& plan,
                                                   NondetPolicy* policy, int reps,
                                                   bool log_syscalls) {
  OverheadSample sample;
  CellRunner runner(*module_, spec);

  auto timed_run = [&](bool instrumented) -> double {
    double best = 1e100;
    for (int r = 0; r < reps; ++r) {
      BranchTraceRecorder recorder(plan);
      CellRunConfig config;
      config.policy = policy;
      config.symbolic_syscalls = false;
      if (instrumented) {
        config.observers = {&recorder};
        config.plan = &plan;
      }
      const auto t0 = std::chrono::steady_clock::now();
      CellRunOutput run = runner.Run(config);
      const double seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
      best = std::min(best, seconds);
      if (instrumented && r == 0) {
        sample.branch_execs = run.result.stats.branch_execs;
        sample.log_bytes = recorder.bytes_logged();
        if (log_syscalls) {
          sample.syscall_log_bytes = SyscallLogBytes(SyscallLogFromTrace(run.dyn_trace));
        }
      }
    }
    return best;
  };

  sample.plain_seconds = timed_run(/*instrumented=*/false);
  sample.instrumented_seconds = timed_run(/*instrumented=*/true);

  InstrumentedExecCounter counter(plan);
  CellRunConfig config;
  config.policy = policy;
  config.symbolic_syscalls = false;
  config.observers = {&counter};
  config.plan = &plan;
  runner.Run(config);
  sample.instrumented_execs = counter.count();
  return sample;
}

Result<ReplayResult> Pipeline::Reproduce(const BugReport& report,
                                         const InstrumentationPlan& plan,
                                         const ReplayConfig& config) {
  if (!PlanMatches(plan)) {
    return PlanMismatch(plan);
  }
  // The shared arena only backs the sequential path; parallel workers
  // build thread-confined arenas of their own.
  ReplayEngine engine(*module_, plan, report, &arena_);
  if (config.transport == ReplayTransport::kTcp && config.program.app.empty()) {
    // TCP shards rebuild the module from source; fill in what this
    // pipeline was compiled from unless the caller overrode it.
    ReplayConfig with_program = config;
    with_program.program.app = app_source_;
    with_program.program.libs = lib_sources_;
    return engine.Reproduce(with_program);
  }
  return engine.Reproduce(config);
}

Result<std::unique_ptr<ReplayService>> Pipeline::MakeService(const InstrumentationPlan& plan,
                                                             ServiceConfig config) {
  if (!PlanMatches(plan)) {
    return PlanMismatch(plan);
  }
  // The fleet ships the whole job to whoever joins; shards rebuild the
  // module from these sources (same contract as the TCP transport).
  config.replay.program.app = app_source_;
  config.replay.program.libs = lib_sources_;
  return std::make_unique<ReplayService>(*module_, plan, std::move(config));
}

Result<Pipeline::AdaptiveResult> Pipeline::ReproduceAdaptive(const BugReport& report,
                                                             const InstrumentationPlan& plan,
                                                             const AdaptiveConfig& config) {
  if (!PlanMatches(plan)) {
    return PlanMismatch(plan);
  }
  AdaptiveResult out;
  out.final_plan = plan;

  // Every round searches from neighborhoods of the harvested corpus;
  // mutation is deterministic, so one expansion up front suffices.
  ReplayConfig replay = config.replay;
  if (!config.corpus.empty()) {
    replay.corpus_seeds = MutateCorpus(config.corpus, config.mutation_seed,
                                       config.corpus_mutants_per_seed, config.corpus_max_total);
  }

  // The irrelevance proof is plan-independent (it consults the plan only
  // at query time), so compute it once, lazily — round 0 may reproduce
  // without ever needing it.
  std::unique_ptr<LogIrrelevance> irrelevance;
  auto irrelevance_for = [&]() -> const LogIrrelevance* {
    if (!config.refine.use_irrelevance_filter) {
      return nullptr;
    }
    if (irrelevance == nullptr) {
      irrelevance = std::make_unique<LogIrrelevance>(
          LogIrrelevance::Compute(*module_, PointsTo::Compute(*module_)));
    }
    return irrelevance.get();
  };

  BugReport current = report;
  for (u32 round = 0; round < config.max_rounds; ++round) {
    AdaptiveRound trace;
    trace.round = round;
    trace.plan_branches = static_cast<u32>(out.final_plan.branches.Count());
    trace.log_bytes = current.stats.log_bytes;

    Result<ReplayResult> search = Reproduce(current, out.final_plan, replay);
    if (!search.ok()) {
      return search.error();
    }
    ReplayResult result = search.take();
    trace.runs = result.stats.runs;
    trace.on_log_rate =
        result.stats.runs == 0
            ? 0.0
            : static_cast<double>(result.stats.aborts_forced_direction) / result.stats.runs;
    trace.reproduced = result.reproduced;
    trace.wall_seconds = result.wall_seconds;

    const bool last_round = round + 1 == config.max_rounds;
    if (result.reproduced || last_round) {
      out.reproduced = result.reproduced;
      out.final_result = std::move(result);
      out.rounds.push_back(trace);
      return out;
    }

    // Mine this round's failure telemetry into added log bits.
    RefineOutcome refined =
        RefinePlan(out.final_plan, result.stats.failure_profile, irrelevance_for(), config.refine);
    trace.candidates = refined.candidates;
    trace.skipped_irrelevant = refined.skipped_irrelevant;

    // Overhead budget: measure the refined plan at the user site and,
    // while the modeled native CPU cost exceeds the ceiling, halve the
    // additions (RefinePlan's ranking is deterministic, so re-running it
    // with a smaller cap keeps exactly the highest-yield prefix).
    const size_t proposed = refined.added.size();
    if (config.overhead_reps > 0 && config.refine.max_overhead_percent > 0.0 && proposed > 0) {
      size_t keep = proposed;
      for (;;) {
        const OverheadSample sample =
            MeasureOverhead(config.user_spec, refined.plan, config.user_run.policy,
                            config.overhead_reps, config.user_run.log_syscalls);
        trace.predicted_overhead_percent =
            100.0 + 100.0 * config.refine.log_cost_ratio *
                        (sample.branch_execs == 0
                             ? 0.0
                             : static_cast<double>(sample.instrumented_execs) /
                                   static_cast<double>(sample.branch_execs));
        if (trace.predicted_overhead_percent <= config.refine.max_overhead_percent ||
            keep == 0) {
          break;
        }
        keep /= 2;
        RefineConfig trimmed = config.refine;
        trimmed.max_added_branches = static_cast<u32>(keep);
        refined = RefinePlan(out.final_plan, result.stats.failure_profile, irrelevance_for(),
                             trimmed);
      }
      trace.skipped_budget = static_cast<u32>(proposed - refined.added.size());
    }
    trace.added_branches = static_cast<u32>(refined.added.size());

    if (refined.added.empty()) {
      // Nothing survived the filters: more rounds would redo this exact
      // search. Report the round honestly and stop.
      out.converged = true;
      out.final_result = std::move(result);
      out.rounds.push_back(trace);
      return out;
    }

    // Re-record at the user site under the refined plan. The report's
    // shape is privacy-stripped, which is why the adaptive loop needs
    // the original spec.
    Result<UserRunOutput> rerun =
        RecordUserRun(config.user_spec, refined.plan, config.user_run);
    if (!rerun.ok()) {
      return rerun.error();
    }
    UserRunOutput user = rerun.take();
    if (!user.result.Crashed()) {
      return Error{
          "adaptive re-record: user_spec no longer crashes — the refined plan cannot be "
          "exercised at the user site",
          {}};
    }
    out.final_plan = refined.plan;
    current = std::move(user.report);
    out.rounds.push_back(trace);
  }
  return out;  // Unreachable: the loop returns on its last round.
}

bool Pipeline::VerifyWitness(const BugReport& report, const std::vector<i64>& witness_cells) {
  CellRunner runner(*module_, report.shape);
  CellRunConfig config;
  config.model = witness_cells;
  config.symbolic_syscalls = false;
  const CellRunOutput run = runner.Run(config);
  return run.result.Crashed() && run.result.crash.SameSite(report.crash);
}

}  // namespace retrace
