#include "src/core/pipeline.h"

#include <chrono>

#include "src/ir/lowering.h"
#include "src/lang/parser.h"

namespace retrace {

Result<std::unique_ptr<Pipeline>> Pipeline::FromSources(
    std::string_view app_source, const std::vector<std::string>& library_sources) {
  std::vector<std::unique_ptr<Unit>> units;
  int unit_index = 0;
  for (const std::string& lib : library_sources) {
    Result<std::unique_ptr<Unit>> unit = Parse(lib, unit_index++, /*is_library=*/true);
    if (!unit.ok()) {
      return unit.error();
    }
    units.push_back(unit.take());
  }
  Result<std::unique_ptr<Unit>> app = Parse(app_source, unit_index++, /*is_library=*/false);
  if (!app.ok()) {
    return app.error();
  }
  units.push_back(app.take());

  Result<std::unique_ptr<SemaProgram>> program = Analyze(std::move(units));
  if (!program.ok()) {
    return program.error();
  }
  Result<std::unique_ptr<IrModule>> module = Lower(*program.value());
  if (!module.ok()) {
    return module.error();
  }

  auto pipeline = std::unique_ptr<Pipeline>(new Pipeline());
  pipeline->program_ = program.take();
  pipeline->module_ = module.take();
  // Retained so Reproduce can ship the program to TCP replay shards on
  // other hosts (lowering is deterministic — a rebuilt module has the
  // same branch ids as this one).
  pipeline->app_source_ = std::string(app_source);
  pipeline->lib_sources_ = library_sources;
  return pipeline;
}

AnalysisResult Pipeline::RunDynamicAnalysis(const InputSpec& spec, const AnalysisConfig& config) {
  ConcolicEngine engine(*module_, &arena_);
  return engine.Analyze(spec, config);
}

StaticAnalysisResult Pipeline::RunStaticAnalysis(const StaticAnalysisOptions& options) {
  StaticAnalyzer analyzer(*module_, options);
  return analyzer.Run();
}

InstrumentationPlan Pipeline::MakePlan(InstrumentMethod method,
                                       const AnalysisResult* dynamic_result,
                                       const StaticAnalysisResult* static_result,
                                       const PlanOptions& options) {
  return BuildPlan(*module_, method, dynamic_result ? &dynamic_result->labels : nullptr,
                   static_result, options);
}

AnalysisResult Pipeline::ProfileBranchBehavior(const InputSpec& spec, NondetPolicy* policy) {
  ConcolicEngine engine(*module_, &arena_);
  return engine.ProfileRun(spec, policy);
}

namespace {

// Counts symbolic branch executions/locations, split by plan membership
// (Tables 4, 7 and 8). Requires a shadow run.
class SymbolicSplitObserver : public BranchObserver {
 public:
  SymbolicSplitObserver(const InstrumentationPlan& plan, size_t num_branches)
      : plan_(plan), symbolic_seen_(num_branches, 0) {}

  Action OnBranch(i32 branch_id, bool /*taken*/, ExprRef cond_shadow) override {
    if (cond_shadow == kNoExpr) {
      return Action::kContinue;
    }
    symbolic_seen_[branch_id] += 1;
    return Action::kContinue;
  }

  void FillStats(UserSiteStats* stats) const {
    for (size_t id = 0; id < symbolic_seen_.size(); ++id) {
      if (symbolic_seen_[id] == 0) {
        continue;
      }
      if (plan_.Instrumented(static_cast<i32>(id))) {
        ++stats->symbolic_locations_logged;
        stats->symbolic_execs_logged += symbolic_seen_[id];
      } else {
        ++stats->symbolic_locations_unlogged;
        stats->symbolic_execs_unlogged += symbolic_seen_[id];
      }
    }
  }

 private:
  const InstrumentationPlan& plan_;
  std::vector<u64> symbolic_seen_;
};

}  // namespace

Pipeline::UserRunOutput Pipeline::RecordUserRun(const InputSpec& spec,
                                                const InstrumentationPlan& plan,
                                                const UserRunOptions& options) {
  UserRunOutput out;
  CellRunner runner(*module_, spec);

  // The real user-site run: concrete, instrumented, scripted environment.
  BranchTraceRecorder recorder(plan);
  CellRunConfig run_config;
  run_config.policy = options.policy;
  run_config.observers = {&recorder};
  run_config.symbolic_syscalls = false;
  run_config.max_steps = options.max_steps;
  CellRunOutput run = runner.Run(run_config);
  out.result = run.result;
  out.stdout_text = run.stdout_text;

  BugReport report;
  report.method = plan.method;
  report.branch_log = recorder.TakeLog();
  report.has_syscall_log = options.log_syscalls;
  if (options.log_syscalls) {
    report.syscall_log = SyscallLogFromTrace(run.dyn_trace);
  }
  report.crash = run.result.crash;
  report.shape = StripInput(spec);
  report.stats.branch_execs = run.result.stats.branch_execs;
  report.stats.log_bytes = report.branch_log.ByteSize();
  report.stats.syscall_log_bytes =
      options.log_syscalls ? SyscallLogBytes(report.syscall_log) : 0;
  report.stats.flushes = recorder.flushes();

  // Experimenter-side profiling run: same input and environment script, but
  // with shadow tracking, to attribute symbolic executions to logged /
  // unlogged locations. A production deployment would skip this.
  {
    SymbolicSplitObserver split(plan, module_->branches.size());
    InstrumentedExecCounter counter(plan);
    CellRunConfig profile_config;
    profile_config.policy = options.policy;
    profile_config.arena = &arena_;
    profile_config.observers = {&split, &counter};
    profile_config.max_steps = options.max_steps;
    runner.Run(profile_config);
    split.FillStats(&report.stats);
    report.stats.instrumented_execs = counter.count();
  }

  out.report = std::move(report);
  return out;
}

Pipeline::OverheadSample Pipeline::MeasureOverhead(const InputSpec& spec,
                                                   const InstrumentationPlan& plan,
                                                   NondetPolicy* policy, int reps,
                                                   bool log_syscalls) {
  OverheadSample sample;
  CellRunner runner(*module_, spec);

  auto timed_run = [&](bool instrumented) -> double {
    double best = 1e100;
    for (int r = 0; r < reps; ++r) {
      BranchTraceRecorder recorder(plan);
      CellRunConfig config;
      config.policy = policy;
      config.symbolic_syscalls = false;
      if (instrumented) {
        config.observers = {&recorder};
      }
      const auto t0 = std::chrono::steady_clock::now();
      CellRunOutput run = runner.Run(config);
      const double seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
      best = std::min(best, seconds);
      if (instrumented && r == 0) {
        sample.branch_execs = run.result.stats.branch_execs;
        sample.log_bytes = recorder.bytes_logged();
        if (log_syscalls) {
          sample.syscall_log_bytes = SyscallLogBytes(SyscallLogFromTrace(run.dyn_trace));
        }
      }
    }
    return best;
  };

  sample.plain_seconds = timed_run(/*instrumented=*/false);
  sample.instrumented_seconds = timed_run(/*instrumented=*/true);

  InstrumentedExecCounter counter(plan);
  CellRunConfig config;
  config.policy = policy;
  config.symbolic_syscalls = false;
  config.observers = {&counter};
  runner.Run(config);
  sample.instrumented_execs = counter.count();
  return sample;
}

ReplayResult Pipeline::Reproduce(const BugReport& report, const InstrumentationPlan& plan,
                                 const ReplayConfig& config) {
  // The shared arena only backs the sequential path; parallel workers
  // build thread-confined arenas of their own.
  ReplayEngine engine(*module_, plan, report, &arena_);
  if (config.transport == ReplayTransport::kTcp && config.program.app.empty()) {
    // TCP shards rebuild the module from source; fill in what this
    // pipeline was compiled from unless the caller overrode it.
    ReplayConfig with_program = config;
    with_program.program.app = app_source_;
    with_program.program.libs = lib_sources_;
    return engine.Reproduce(with_program);
  }
  return engine.Reproduce(config);
}

bool Pipeline::VerifyWitness(const BugReport& report, const std::vector<i64>& witness_cells) {
  CellRunner runner(*module_, report.shape);
  CellRunConfig config;
  config.model = witness_cells;
  config.symbolic_syscalls = false;
  const CellRunOutput run = runner.Run(config);
  return run.result.Crashed() && run.result.crash.SameSite(report.crash);
}

}  // namespace retrace
