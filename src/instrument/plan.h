// Instrumentation plans: which branch locations get logged (paper §2.3).
//
// Plans are built from a PlanInputs value, which carries the analysis
// results a method needs *by reference* — the factory for each method
// demands exactly the inputs that method consumes, so "dynamic plan
// without a dynamic analysis" is a compile error rather than a runtime
// Check. Refined plans (src/instrument/refine.h) are first-class: the
// detail_level / provenance fields record how many refinement rounds
// produced a plan and from what.
#ifndef RETRACE_INSTRUMENT_PLAN_H_
#define RETRACE_INSTRUMENT_PLAN_H_

#include <string>
#include <vector>

#include "src/analysis/static_analyzer.h"
#include "src/concolic/engine.h"
#include "src/ir/ir.h"
#include "src/support/dense_bitset.h"

namespace retrace {

enum class InstrumentMethod {
  kDynamic,        // Branches labeled symbolic by dynamic analysis.
  kStatic,         // Branches labeled symbolic by static analysis.
  kDynamicStatic,  // Combination with the dynamic-overrides-static rule.
  kAllBranches,    // Every branch location.
};

const char* InstrumentMethodName(InstrumentMethod method);

struct InstrumentationPlan {
  InstrumentMethod method = InstrumentMethod::kAllBranches;
  DenseBitset branches;  // Instrumented branch ids.
  // Refinement provenance: 0 = straight out of the analyses; each
  // adaptive refinement round (src/instrument/refine.h) bumps the level
  // by one and appends to `provenance`. Both travel with the plan over
  // the wire (kJob codec, wire v4) so a remote shard reports the same
  // plan identity the coordinator chose.
  u32 detail_level = 0;
  std::string provenance;

  size_t NumInstrumented() const { return branches.Count(); }
  bool Instrumented(i32 branch_id) const {
    return branch_id >= 0 && static_cast<size_t>(branch_id) < branches.size() &&
           branches.Test(branch_id);
  }
  // Instrumented locations restricted to application / library code.
  size_t NumInstrumentedApp(const IrModule& module) const;
};

struct PlanOptions {
  // Ablation: when false, the dynamic analysis' `concrete` label does NOT
  // override the static `symbolic` label in the combined method (the paper
  // argues the override is what makes dynamic+static cheap; this knob
  // quantifies that claim).
  bool dynamic_overrides_static = true;
};

/// \brief The inputs an instrumentation plan is built from.
///
/// Construct through the per-method factories — each takes the analysis
/// results its method consumes by reference, so a missing input is
/// inexpressible. ForMethod is the runtime-checked escape hatch for
/// method-parameterized sweeps (benches iterating over every method);
/// it Check-fails loudly when a required result is absent.
///
/// **Ownership:** borrows the analysis results; they must outlive every
/// BuildPlan/MakePlan call using this value.
class PlanInputs {
 public:
  static PlanInputs AllBranches() {
    return PlanInputs(InstrumentMethod::kAllBranches, nullptr, nullptr);
  }
  static PlanInputs Dynamic(const AnalysisResult& dynamic_result) {
    return PlanInputs(InstrumentMethod::kDynamic, &dynamic_result.labels, nullptr);
  }
  static PlanInputs Static(const StaticAnalysisResult& static_result) {
    return PlanInputs(InstrumentMethod::kStatic, nullptr, &static_result);
  }
  static PlanInputs DynamicStatic(const AnalysisResult& dynamic_result,
                                  const StaticAnalysisResult& static_result) {
    return PlanInputs(InstrumentMethod::kDynamicStatic, &dynamic_result.labels, &static_result);
  }
  // Escape hatch for sweeps parameterized over InstrumentMethod: accepts
  // possibly-null results but Check-fails immediately when `method`
  // needs one that is null — the misuse dies at construction, not at
  // some later BuildPlan.
  static PlanInputs ForMethod(InstrumentMethod method, const AnalysisResult* dynamic_result,
                              const StaticAnalysisResult* static_result);

  InstrumentMethod method() const { return method_; }
  const std::vector<BranchLabel>* dynamic_labels() const { return dynamic_labels_; }
  const StaticAnalysisResult* static_result() const { return static_result_; }

 private:
  PlanInputs(InstrumentMethod method, const std::vector<BranchLabel>* dynamic_labels,
             const StaticAnalysisResult* static_result)
      : method_(method), dynamic_labels_(dynamic_labels), static_result_(static_result) {}

  InstrumentMethod method_;
  const std::vector<BranchLabel>* dynamic_labels_;
  const StaticAnalysisResult* static_result_;
};

// Builds a plan from the inputs' method and analysis results.
InstrumentationPlan BuildPlan(const IrModule& module, const PlanInputs& inputs,
                              const PlanOptions& options = PlanOptions{});

}  // namespace retrace

#endif  // RETRACE_INSTRUMENT_PLAN_H_
