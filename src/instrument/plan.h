// Instrumentation plans: which branch locations get logged (paper §2.3).
#ifndef RETRACE_INSTRUMENT_PLAN_H_
#define RETRACE_INSTRUMENT_PLAN_H_

#include <string>

#include "src/analysis/static_analyzer.h"
#include "src/concolic/engine.h"
#include "src/ir/ir.h"
#include "src/support/dense_bitset.h"

namespace retrace {

enum class InstrumentMethod {
  kDynamic,        // Branches labeled symbolic by dynamic analysis.
  kStatic,         // Branches labeled symbolic by static analysis.
  kDynamicStatic,  // Combination with the dynamic-overrides-static rule.
  kAllBranches,    // Every branch location.
};

const char* InstrumentMethodName(InstrumentMethod method);

struct InstrumentationPlan {
  InstrumentMethod method = InstrumentMethod::kAllBranches;
  DenseBitset branches;  // Instrumented branch ids.

  size_t NumInstrumented() const { return branches.Count(); }
  bool Instrumented(i32 branch_id) const {
    return branch_id >= 0 && static_cast<size_t>(branch_id) < branches.size() &&
           branches.Test(branch_id);
  }
  // Instrumented locations restricted to application / library code.
  size_t NumInstrumentedApp(const IrModule& module) const;
};

struct PlanOptions {
  // Ablation: when false, the dynamic analysis' `concrete` label does NOT
  // override the static `symbolic` label in the combined method (the paper
  // argues the override is what makes dynamic+static cheap; this knob
  // quantifies that claim).
  bool dynamic_overrides_static = true;
};

// Builds a plan. `dynamic_labels` may be null except for kDynamic and
// kDynamicStatic; `static_result` may be null except for kStatic and
// kDynamicStatic.
InstrumentationPlan BuildPlan(const IrModule& module, InstrumentMethod method,
                              const std::vector<BranchLabel>* dynamic_labels,
                              const StaticAnalysisResult* static_result,
                              const PlanOptions& options = PlanOptions{});

}  // namespace retrace

#endif  // RETRACE_INSTRUMENT_PLAN_H_
