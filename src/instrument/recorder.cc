#include "src/instrument/recorder.h"

#include <cstring>

namespace retrace {

void BranchTraceRecorder::Flush(size_t bytes) {
  const size_t old_size = sink_.size();
  sink_.resize(old_size + bytes);
  std::memcpy(sink_.data() + old_size, buffer_.data(), bytes);
  bit_count_ = 0;
  buffer_.fill(0);
  ++flushes_;
}

BitVec BranchTraceRecorder::TakeLog() {
  if (bit_count_ > 0) {
    Flush((bit_count_ + 7) / 8);  // Final partial page.
  }
  return BitVec::Deserialize(sink_, total_bits_);
}

}  // namespace retrace
