// Plan refinement: mines a replay search's off-log failure telemetry
// (ReplayFailureProfile) into added log bits exactly where the search
// was blind. The adaptive loop (Pipeline::ReproduceAdaptive) calls this
// once per round: search -> mine -> refine -> re-record -> re-search.
#ifndef RETRACE_INSTRUMENT_REFINE_H_
#define RETRACE_INSTRUMENT_REFINE_H_

#include <vector>

#include "src/analysis/log_irrelevance.h"
#include "src/instrument/plan.h"
#include "src/replay/replay_engine.h"

namespace retrace {

struct RefineConfig {
  // Branches promoted into the plan per refinement round. Small on
  // purpose: each round re-records and re-searches, so the loop probes
  // whether a handful of well-chosen bits unblocks the search before
  // paying for more.
  u32 max_added_branches = 8;
  // Attributed-death floor for a candidate. A branch the search merely
  // *executed* blindly is not evidence; a branch runs *died* flipping is.
  u64 min_deaths = 1;
  // Skip candidates the log-irrelevance proof discharges (flipping them
  // cannot change any logged outcome, so logging them buys nothing).
  bool use_irrelevance_filter = true;
  // Per-round overhead ceiling, as a modeled native CPU percentage
  // (100 = uninstrumented). Enforced by ReproduceAdaptive against
  // Pipeline::MeasureOverhead — RefinePlan itself never runs the
  // program. 0 disables the ceiling.
  double max_overhead_percent = 0.0;
  // Modeled cost of logging one branch execution relative to executing
  // it (the paper's ~17 instructions per logged branch; see
  // bench/bench_util.h kLogCostRatio).
  double log_cost_ratio = 3.0;
};

/// One refinement round's outcome. `plan` is the refined plan
/// (detail_level bumped, provenance extended) — identical to the input
/// plan when `added` is empty, which callers treat as convergence.
struct RefineOutcome {
  InstrumentationPlan plan;
  std::vector<i32> added;      // Branch ids promoted, highest-yield first.
  u32 candidates = 0;          // Unlogged branches clearing min_deaths.
  u32 skipped_irrelevant = 0;  // Candidates the irrelevance proof dropped.
};

/// Promotes the unlogged branches with the most attributed off-log
/// deaths (ties: more blind executions first, then lower id) into the
/// plan, after the irrelevance filter, up to max_added_branches.
/// `irrelevance` may be null (filter off, whatever the config says).
RefineOutcome RefinePlan(const InstrumentationPlan& plan, const ReplayFailureProfile& profile,
                         const LogIrrelevance* irrelevance, const RefineConfig& config);

}  // namespace retrace

#endif  // RETRACE_INSTRUMENT_REFINE_H_
