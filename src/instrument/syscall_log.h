// Selective system-call result logging (paper §2.3, "Logging system calls").
//
// Only the *results* of nondeterministic calls are recorded — read() byte
// counts, select() readiness, accept() arrivals, signal polls. The input
// data itself is never logged (privacy). The log is derived from the
// virtual OS's dynamic-cell trace after a user-site run.
#ifndef RETRACE_INSTRUMENT_SYSCALL_LOG_H_
#define RETRACE_INSTRUMENT_SYSCALL_LOG_H_

#include <string>
#include <vector>

#include "src/vos/vos.h"

namespace retrace {

// Extracts the syscall-result log from a finished run's dynamic trace.
SyscallLog SyscallLogFromTrace(const std::vector<CellStore::DynRecord>& trace);

// Wire size of the log in bytes (kind byte + varint-ish value, modeled as
// kind + 4 bytes, matching the paper's "a few values per call").
u64 SyscallLogBytes(const SyscallLog& log);

std::string SyscallLogToString(const SyscallLog& log);

}  // namespace retrace

#endif  // RETRACE_INSTRUMENT_SYSCALL_LOG_H_
