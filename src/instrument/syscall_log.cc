#include "src/instrument/syscall_log.h"

#include <sstream>

namespace retrace {

SyscallLog SyscallLogFromTrace(const std::vector<CellStore::DynRecord>& trace) {
  SyscallLog log;
  log.reserve(trace.size());
  for (const CellStore::DynRecord& record : trace) {
    log.push_back(SyscallRecord{record.kind, record.value});
  }
  return log;
}

u64 SyscallLogBytes(const SyscallLog& log) { return static_cast<u64>(log.size()) * 5; }

std::string SyscallLogToString(const SyscallLog& log) {
  std::ostringstream os;
  for (const SyscallRecord& r : log) {
    os << BuiltinName(r.kind) << "=" << r.value << " ";
  }
  return os.str();
}

}  // namespace retrace
