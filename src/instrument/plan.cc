#include "src/instrument/plan.h"

namespace retrace {

const char* InstrumentMethodName(InstrumentMethod method) {
  switch (method) {
    case InstrumentMethod::kDynamic: return "dynamic";
    case InstrumentMethod::kStatic: return "static";
    case InstrumentMethod::kDynamicStatic: return "dynamic+static";
    case InstrumentMethod::kAllBranches: return "all branches";
  }
  return "?";
}

size_t InstrumentationPlan::NumInstrumentedApp(const IrModule& module) const {
  size_t n = 0;
  for (const BranchInfo& branch : module.branches) {
    if (!branch.is_library && branches.Test(branch.id)) {
      ++n;
    }
  }
  return n;
}

PlanInputs PlanInputs::ForMethod(InstrumentMethod method, const AnalysisResult* dynamic_result,
                                 const StaticAnalysisResult* static_result) {
  const bool needs_dynamic =
      method == InstrumentMethod::kDynamic || method == InstrumentMethod::kDynamicStatic;
  const bool needs_static =
      method == InstrumentMethod::kStatic || method == InstrumentMethod::kDynamicStatic;
  Check(!needs_dynamic || dynamic_result != nullptr,
        "PlanInputs::ForMethod: method requires a dynamic analysis result");
  Check(!needs_static || static_result != nullptr,
        "PlanInputs::ForMethod: method requires a static analysis result");
  return PlanInputs(method, needs_dynamic ? &dynamic_result->labels : nullptr,
                    needs_static ? static_result : nullptr);
}

InstrumentationPlan BuildPlan(const IrModule& module, const PlanInputs& inputs,
                              const PlanOptions& options) {
  const size_t n = module.branches.size();
  const InstrumentMethod method = inputs.method();
  const std::vector<BranchLabel>* dynamic_labels = inputs.dynamic_labels();
  const StaticAnalysisResult* static_result = inputs.static_result();
  InstrumentationPlan plan;
  plan.method = method;
  plan.branches = DenseBitset(n);
  plan.provenance = InstrumentMethodName(method);

  switch (method) {
    case InstrumentMethod::kAllBranches:
      for (size_t i = 0; i < n; ++i) {
        plan.branches.Set(i);
      }
      break;
    case InstrumentMethod::kDynamic:
      for (size_t i = 0; i < n; ++i) {
        if ((*dynamic_labels)[i] == BranchLabel::kSymbolic) {
          plan.branches.Set(i);
        }
      }
      break;
    case InstrumentMethod::kStatic:
      plan.branches = static_result->symbolic_branches;
      plan.method = method;
      break;
    case InstrumentMethod::kDynamicStatic: {
      for (size_t i = 0; i < n; ++i) {
        const BranchLabel dyn = (*dynamic_labels)[i];
        if (dyn == BranchLabel::kSymbolic) {
          // Guaranteed symbolic.
          plan.branches.Set(i);
        } else if (dyn == BranchLabel::kConcrete) {
          // Visited and always concrete so far: trust the dynamic verdict
          // over a (possibly conservative) static `symbolic` — unless the
          // override is disabled for ablation.
          if (!options.dynamic_overrides_static && static_result->symbolic_branches.Test(i)) {
            plan.branches.Set(i);
          }
        } else {
          // Unvisited: static analysis is the only information available.
          if (static_result->symbolic_branches.Test(i)) {
            plan.branches.Set(i);
          }
        }
      }
      break;
    }
  }
  return plan;
}

}  // namespace retrace
