#include "src/instrument/plan.h"

namespace retrace {

const char* InstrumentMethodName(InstrumentMethod method) {
  switch (method) {
    case InstrumentMethod::kDynamic: return "dynamic";
    case InstrumentMethod::kStatic: return "static";
    case InstrumentMethod::kDynamicStatic: return "dynamic+static";
    case InstrumentMethod::kAllBranches: return "all branches";
  }
  return "?";
}

size_t InstrumentationPlan::NumInstrumentedApp(const IrModule& module) const {
  size_t n = 0;
  for (const BranchInfo& branch : module.branches) {
    if (!branch.is_library && branches.Test(branch.id)) {
      ++n;
    }
  }
  return n;
}

InstrumentationPlan BuildPlan(const IrModule& module, InstrumentMethod method,
                              const std::vector<BranchLabel>* dynamic_labels,
                              const StaticAnalysisResult* static_result,
                              const PlanOptions& options) {
  const size_t n = module.branches.size();
  InstrumentationPlan plan;
  plan.method = method;
  plan.branches = DenseBitset(n);

  switch (method) {
    case InstrumentMethod::kAllBranches:
      for (size_t i = 0; i < n; ++i) {
        plan.branches.Set(i);
      }
      break;
    case InstrumentMethod::kDynamic:
      Check(dynamic_labels != nullptr, "dynamic plan requires dynamic labels");
      for (size_t i = 0; i < n; ++i) {
        if ((*dynamic_labels)[i] == BranchLabel::kSymbolic) {
          plan.branches.Set(i);
        }
      }
      break;
    case InstrumentMethod::kStatic:
      Check(static_result != nullptr, "static plan requires static results");
      plan.branches = static_result->symbolic_branches;
      plan.method = method;
      break;
    case InstrumentMethod::kDynamicStatic: {
      Check(dynamic_labels != nullptr && static_result != nullptr,
            "combined plan requires both analyses");
      for (size_t i = 0; i < n; ++i) {
        const BranchLabel dyn = (*dynamic_labels)[i];
        if (dyn == BranchLabel::kSymbolic) {
          // Guaranteed symbolic.
          plan.branches.Set(i);
        } else if (dyn == BranchLabel::kConcrete) {
          // Visited and always concrete so far: trust the dynamic verdict
          // over a (possibly conservative) static `symbolic` — unless the
          // override is disabled for ablation.
          if (!options.dynamic_overrides_static && static_result->symbolic_branches.Test(i)) {
            plan.branches.Set(i);
          }
        } else {
          // Unvisited: static analysis is the only information available.
          if (static_result->symbolic_branches.Test(i)) {
            plan.branches.Set(i);
          }
        }
      }
      break;
    }
  }
  return plan;
}

}  // namespace retrace
