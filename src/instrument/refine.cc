#include "src/instrument/refine.h"

#include <algorithm>
#include <cstdio>

namespace retrace {

RefineOutcome RefinePlan(const InstrumentationPlan& plan, const ReplayFailureProfile& profile,
                         const LogIrrelevance* irrelevance, const RefineConfig& config) {
  RefineOutcome out;
  out.plan = plan;

  // Candidates: unlogged branches with enough attributed deaths.
  std::vector<const BranchFailureCounts*> candidates;
  for (const BranchFailureCounts& counts : profile.branches) {
    if (plan.Instrumented(static_cast<i32>(counts.branch_id))) {
      continue;
    }
    if (counts.Deaths() < config.min_deaths) {
      continue;
    }
    ++out.candidates;
    if (config.use_irrelevance_filter && irrelevance != nullptr &&
        irrelevance->Irrelevant(static_cast<i32>(counts.branch_id), plan.branches)) {
      ++out.skipped_irrelevant;
      continue;
    }
    candidates.push_back(&counts);
  }

  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const BranchFailureCounts* a, const BranchFailureCounts* b) {
                     if (a->Deaths() != b->Deaths()) {
                       return a->Deaths() > b->Deaths();
                     }
                     if (a->blind_execs != b->blind_execs) {
                       return a->blind_execs > b->blind_execs;
                     }
                     return a->branch_id < b->branch_id;
                   });

  for (const BranchFailureCounts* counts : candidates) {
    if (out.added.size() >= config.max_added_branches) {
      break;
    }
    if (counts->branch_id < out.plan.branches.size()) {
      out.plan.branches.Set(counts->branch_id);
      out.added.push_back(static_cast<i32>(counts->branch_id));
    }
  }

  if (!out.added.empty()) {
    out.plan.detail_level = plan.detail_level + 1;
    char note[64];
    std::snprintf(note, sizeof(note), " +refine#%u(%zu)", out.plan.detail_level,
                  out.added.size());
    out.plan.provenance += note;
  }
  return out;
}

}  // namespace retrace
