// Branch trace recorder: the user-site instrumentation (paper §2.3/§4).
//
// One bit per instrumented branch execution, packed into a 4 KB buffer that
// is flushed to the log sink when full — the paper's exact scheme (no
// compression, no per-branch program counter, 4 KB buffer to amortize disk
// writes). The recorder doubles as the overhead model: the work done per
// instrumented branch here is what the CPU-time benchmarks measure.
#ifndef RETRACE_INSTRUMENT_RECORDER_H_
#define RETRACE_INSTRUMENT_RECORDER_H_

#include <array>
#include <vector>

#include "src/exec/interp.h"
#include "src/instrument/plan.h"
#include "src/support/bitvec.h"

namespace retrace {

class BranchTraceRecorder : public BranchObserver {
 public:
  explicit BranchTraceRecorder(const InstrumentationPlan& plan) : plan_(plan) {}

  Action OnBranch(i32 branch_id, bool taken, ExprRef /*cond_shadow*/) override {
    if (plan_.Instrumented(branch_id)) {
      RecordBit(taken);
    }
    return Action::kContinue;
  }

  // Plan-specialized path (bytecode VM): site membership arrives baked
  // into the branch opcode instead of a per-branch bitset lookup.
  Action OnBranchCompiled(i32 /*branch_id*/, bool taken, ExprRef /*cond_shadow*/,
                          bool site_observed) override {
    if (site_observed) {
      RecordBit(taken);
    }
    return Action::kContinue;
  }

  // Inlined hot path: set one bit, flush on full buffer.
  void RecordBit(bool taken) {
    if (taken) {
      buffer_[bit_count_ / 8] = static_cast<u8>(buffer_[bit_count_ / 8] | (1u << (bit_count_ % 8)));
    }
    ++bit_count_;
    ++total_bits_;
    if (bit_count_ == kBufferBits) {
      Flush(kBufferBytes);
    }
  }

  // Finalizes the log: flushes the partial buffer and returns the bits.
  BitVec TakeLog();

  u64 flushes() const { return flushes_; }
  u64 bits_recorded() const { return total_bits_; }
  // Log size on the wire (whole bytes).
  u64 bytes_logged() const { return (total_bits_ + 7) / 8; }

 private:
  static constexpr size_t kBufferBytes = 4096;
  static constexpr size_t kBufferBits = kBufferBytes * 8;

  void Flush(size_t bytes);

  const InstrumentationPlan& plan_;
  std::array<u8, kBufferBytes> buffer_{};
  size_t bit_count_ = 0;
  u64 total_bits_ = 0;
  u64 flushes_ = 0;
  std::vector<u8> sink_;  // The "disk": flushed log pages.
};

// Observer counting instrumented-branch executions without recording; used
// to attribute overhead (executions are proportional to CPU cost).
class InstrumentedExecCounter : public BranchObserver {
 public:
  explicit InstrumentedExecCounter(const InstrumentationPlan& plan) : plan_(plan) {}

  Action OnBranch(i32 branch_id, bool /*taken*/, ExprRef /*cond_shadow*/) override {
    if (plan_.Instrumented(branch_id)) {
      ++count_;
    }
    return Action::kContinue;
  }

  Action OnBranchCompiled(i32 /*branch_id*/, bool /*taken*/, ExprRef /*cond_shadow*/,
                          bool site_observed) override {
    if (site_observed) {
      ++count_;
    }
    return Action::kContinue;
  }

  u64 count() const { return count_; }

 private:
  const InstrumentationPlan& plan_;
  u64 count_ = 0;
};

}  // namespace retrace

#endif  // RETRACE_INSTRUMENT_RECORDER_H_
