#include "src/dist/shard.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/core/pipeline.h"
#include "src/solver/incremental.h"

namespace retrace {
namespace {

// Re-balance tuning. The watermark is per-worker: once fewer than ~2
// pendings per worker remain, a drained deque is imminent and the shard
// asks the fleet for work. A request carves at most kRebalanceBatch
// entries from the donor; after kMaxEmptyResponses consecutive empty (or
// timed-out) answers the shard stops holding its frontier open and lets
// normal termination proceed — re-arming if work ever reappears.
constexpr u32 kRebalanceBatch = 16;
constexpr int kMaxEmptyResponses = 2;

i64 NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Ships every verdict journaled since the last drain. Returns the number
// of verdicts published (0 when there was nothing to send).
u64 PublishVerdicts(SliceCache* cache, WireChannel* chan) {
  WireVerdicts delta;
  cache->DrainJournal(&delta.sat, &delta.unsat);
  if (delta.sat.empty() && delta.unsat.empty()) {
    return 0;
  }
  WireWriter w;
  EncodeVerdicts(delta, &w);
  if (!chan->Send(WireMsg::kVerdicts, w.buf())) {
    return 0;
  }
  return delta.sat.size() + delta.unsat.size();
}

// Merges a gossiped verdict batch; returns how many verdicts it carried.
u64 MergeVerdicts(const WireFrame& frame, SliceCache* cache) {
  WireReader r(frame.payload.data(), frame.payload.size());
  WireVerdicts verdicts;
  if (!DecodeVerdicts(&r, &verdicts)) {
    return 0;  // Digest-checked upstream; a decode failure is a peer bug.
  }
  const u64 n = verdicts.sat.size() + verdicts.unsat.size();
  for (SliceCache::SatEntry& entry : verdicts.sat) {
    cache->MergeSat(entry.key, std::move(entry.model));
  }
  for (const SliceCache::UnsatEntry& entry : verdicts.unsat) {
    cache->MergeUnsat(entry.key, entry.check);
  }
  return n;
}

// Answers a relayed kWorkRequest: carves the deepest frontier entries
// (or an honest "nothing to spare") back to the coordinator, which
// routes them to the starved requester.
void AnswerWorkRequest(const WireFrame& frame, FrontierPort* port, WireChannel* chan) {
  WireWorkRequest request;
  WireReader r(frame.payload.data(), frame.payload.size());
  WirePendingExport batch;
  if (DecodeWorkRequest(&r, &request)) {
    // Echo the requester's identity and sequence so the answer can be
    // matched against (exactly) the request it serves.
    batch.requester_shard_id = request.shard_id;
    batch.seq = request.seq;
    port->Export(std::min(request.want, kRebalanceBatch), &batch.pendings);
  }
  // Respond even when empty (or the request was malformed): the
  // requester's give-up counter depends on hearing an answer.
  WireWriter w;
  EncodePendingExport(batch, &w);
  chan->Send(WireMsg::kPendingExport, w.buf());
}

}  // namespace

ShardRunStatus RunShardOn(WireChannel& chan, const IrModule& module,
                          const InstrumentationPlan& plan, const BugReport& report,
                          const ReplayConfig& config, u32 expected_shard_id,
                          std::vector<WireFrame> preread, SliceCache* external_cache) {
  // ----- Handshake: hello, seed frontier, start. -----
  // Frames that legitimately follow kStart in the same read batch (a
  // verdict another shard proved before we finished starting, an early
  // stop, or re-balance traffic from an already-searching peer) are
  // carried over to the search phase, not treated as a protocol
  // violation.
  WireHello hello;
  bool have_hello = false;
  bool started = false;
  bool stopped_early = false;
  std::vector<PortablePending> seed_frontier;
  std::vector<WireFrame> carried_over;
  std::unordered_map<u64, std::vector<std::shared_ptr<const PortableTrace>>> trace_dedup;
  // Handshake silence deadline is fixed, not the configured heartbeat
  // timeout: the coordinator handshakes a TCP fleet serially, so a slow
  // peer ahead of us must not read as coordinator death. 60s matches
  // ServeShardJob's kJob window.
  i64 handshake_silence_deadline = NowMs() + 60'000;
  while (!started) {
    // Frames the caller pre-read (bundled behind kJob) come first; only
    // then does the channel get polled, preserving stream order.
    std::vector<WireFrame> frames = std::move(preread);
    preread.clear();
    if (frames.empty()) {
      if (NowMs() >= handshake_silence_deadline) {
        return ShardRunStatus::kCoordinatorLost;
      }
      const WireChannel::RecvStatus status = chan.Poll(1000, &frames);
      if (status == WireChannel::RecvStatus::kClosed) {
        return ShardRunStatus::kCoordinatorLost;
      }
      if (status != WireChannel::RecvStatus::kOk) {
        return ShardRunStatus::kProtocolError;  // Corrupt or version skew.
      }
    }
    if (!frames.empty()) {
      handshake_silence_deadline = NowMs() + 60'000;
    }
    for (WireFrame& frame : frames) {
      if (started) {
        carried_over.push_back(std::move(frame));
        continue;
      }
      switch (frame.type) {
        case WireMsg::kHello: {
          WireReader r(frame.payload.data(), frame.payload.size());
          if (!DecodeHello(&r, &hello) ||
              (expected_shard_id != kAnyShardId && hello.shard_id != expected_shard_id)) {
            return ShardRunStatus::kProtocolError;
          }
          have_hello = true;
          break;
        }
        case WireMsg::kPending: {
          WireReader r(frame.payload.data(), frame.payload.size());
          PortablePending pending;
          if (!DecodePending(&r, &pending)) {
            return ShardRunStatus::kProtocolError;
          }
          // Sibling pendings of one scouted run arrive as separate frames
          // but described the same trace before encoding; re-share a
          // structurally identical snapshot so the workers' per-trace
          // import memo works as well here as it does in-process. Equal
          // fingerprints alone are not trusted — the nodes are compared.
          const u64 fp = FingerprintConstraints(*pending.trace,
                                                pending.trace->constraints.size(),
                                                /*negate_last=*/false);
          bool shared = false;
          for (const auto& seen : trace_dedup[fp]) {
            if (seen->nodes == pending.trace->nodes &&
                seen->constraints == pending.trace->constraints) {
              pending.trace = seen;
              shared = true;
              break;
            }
          }
          if (!shared) {
            trace_dedup[fp].push_back(pending.trace);
          }
          seed_frontier.push_back(std::move(pending));
          break;
        }
        case WireMsg::kStart:
          started = true;
          break;
        case WireMsg::kStop:
          stopped_early = true;  // Race won elsewhere before we started.
          started = true;
          break;
        case WireMsg::kHeartbeat:
          break;  // Pure liveness; the deadline reset above consumed it.
        default:
          return ShardRunStatus::kProtocolError;
      }
    }
  }
  if (stopped_early) {
    return ShardRunStatus::kOk;
  }
  if (!have_hello || seed_frontier.size() != hello.pending_count) {
    return ShardRunStatus::kProtocolError;
  }

  // ----- Search, with the gossip pump on this thread. -----
  // The cache is externally owned for standing shards (cross-job
  // warmth), private for one-shot runs; either way gossip journaling is
  // on, and a job with solver_cache off runs cache-less regardless.
  std::unique_ptr<SliceCache> owned_cache;
  SliceCache* cache = nullptr;
  if (config.solver_cache) {
    if (external_cache != nullptr) {
      cache = external_cache;
    } else {
      owned_cache = std::make_unique<SliceCache>(config.slice_cache_capacity);
      owned_cache->EnableJournal();
      cache = owned_cache.get();
    }
  }
  std::atomic<bool> cancel{false};
  ExprArena arena;
  ReplayEngine engine(module, plan, report, &arena);
  FrontierPort port;
  ShardContext ctx;
  ctx.seed_frontier = std::move(seed_frontier);
  const u64 pendings_seeded = hello.pending_count;
  ctx.cache = cache;
  ctx.cancel = &cancel;
  ctx.port = &port;
  // Distinct rng streams per shard: worker w of shard s draws from stream
  // s * 1024 + w + 1, so no two workers in the fleet share an initial
  // input — and none repeats the coordinator's scout (stream 0), whose
  // subtree already shipped as the seed frontier.
  ctx.rng_stream = static_cast<u64>(hello.shard_id) * 1024 + 1;
  // Corpus-seed partition key: shard s runs seeds with index
  // % num_shards == s, so the fleet covers the corpus without repeats.
  ctx.shard_id = hello.shard_id;
  ctx.num_shards = std::max(1u, hello.num_shards);

  // Re-balancing only makes sense with peers to trade with. Arm the
  // frontier hold *before* the search starts: a shard seeded with
  // nothing would otherwise drain, declare termination and exit in the
  // gap before the pump's first watermark check.
  const bool rebalance = hello.num_shards > 1;
  const u32 workers = std::max(
      1u, config.num_workers == 0 ? DefaultReplayWorkers() : config.num_workers);
  const size_t low_watermark = 2 * static_cast<size_t>(workers);
  if (rebalance) {
    port.HoldOpen();
  }

  ReplayResult result;
  std::atomic<bool> done{false};
  std::thread search([&] {
    result = engine.ReproduceShard(config, &ctx);
    done.store(true, std::memory_order_release);
  });

  const int pump_ms = std::clamp(config.gossip_interval_ms, 1, 1000);
  const i64 response_timeout_ms = std::max<i64>(250, 10 * pump_ms);
  // Empty answers in the fleet's first moments mean "not ready", not
  // "nothing to spare": peers may still be handshaking or pre-attach
  // (their Export sees no frontier yet). Until this grace passes, empty
  // answers re-request without burning a give-up strike — otherwise a
  // zero-seeded shard could strike out against donors that were merely
  // slow to boot and idle away the whole search.
  const i64 strikes_armed_at_ms = NowMs() + 500;
  u64 verdicts_published = 0;
  u64 verdicts_imported = 0;
  u64 rebalance_rounds = 0;
  u64 rebalance_seq = 0;
  bool request_outstanding = false;
  i64 request_sent_ms = 0;
  int empty_responses = 0;
  bool channel_ok = true;
  // Liveness bookkeeping. Any received frame proves the coordinator
  // lives; our own kHeartbeat rides the same pump so the coordinator's
  // deadline sees us even when no verdict has been proved for a while.
  bool coordinator_lost = false;
  i64 last_heard_ms = NowMs();
  u64 heartbeat_seq = 0;
  i64 next_heartbeat_ms =
      config.heartbeat_interval_ms > 0 ? NowMs() + config.heartbeat_interval_ms : 0;
  // Carves that could not enter the frontier (search already over):
  // returned to the coordinator before kResult so the work stays in the
  // fleet instead of dying with this shard.
  std::vector<PortablePending> orphaned_imports;

  auto handle_frame = [&](const WireFrame& frame) {
    switch (frame.type) {
      case WireMsg::kStop:
        cancel.store(true, std::memory_order_release);
        break;
      case WireMsg::kHeartbeat:
        break;  // Pure liveness; arrival already reset the deadline.
      case WireMsg::kVerdicts:
        if (cache != nullptr) {
          verdicts_imported += MergeVerdicts(frame, cache);
        }
        break;
      case WireMsg::kWorkRequest:
        // A starved peer, via the coordinator: we are the donor.
        AnswerWorkRequest(frame, &port, &chan);
        break;
      case WireMsg::kPendingExport: {
        WireReader r(frame.payload.data(), frame.payload.size());
        WirePendingExport batch;
        if (!DecodePendingExport(&r, &batch)) {
          break;  // Digest-checked upstream; a decode failure is a peer bug.
        }
        // Only the echo of the request we are actually waiting on drives
        // the give-up state machine: a stale answer to a timed-out
        // request (or a returned carve relayed our way) must not clear
        // the outstanding flag or count as an empty strike.
        const bool matches_outstanding = request_outstanding &&
                                         batch.requester_shard_id == hello.shard_id &&
                                         batch.seq == rebalance_seq;
        if (matches_outstanding) {
          request_outstanding = false;
          if (!batch.pendings.empty()) {
            empty_responses = 0;
          } else if (NowMs() >= strikes_armed_at_ms) {
            ++empty_responses;
          }
        }
        // Work is imported no matter whose answer it was — dropping
        // re-balanced pendings is never right. (The handle is copied in:
        // a failed Import must still own the pending to return it.)
        for (PortablePending& pending : batch.pendings) {
          if (!port.Import(PortablePending(pending))) {
            orphaned_imports.push_back(std::move(pending));
          }
        }
        break;
      }
      default:
        break;  // Unknown relay traffic is a peer bug, not ours to die on.
    }
  };

  // Frames that arrived bundled with the handshake are served first.
  for (const WireFrame& frame : carried_over) {
    handle_frame(frame);
  }
  carried_over.clear();
  while (!done.load(std::memory_order_acquire)) {
    if (!channel_ok) {
      // Coordinator is gone: searching on is pointless (nobody can hear
      // the answer) — wind down and exit.
      cancel.store(true, std::memory_order_release);
      std::this_thread::sleep_for(std::chrono::milliseconds(pump_ms));
      continue;
    }
    std::vector<WireFrame> frames;
    const WireChannel::RecvStatus status = chan.Poll(pump_ms, &frames);
    if (status != WireChannel::RecvStatus::kOk) {
      channel_ok = false;
      coordinator_lost = status == WireChannel::RecvStatus::kClosed;
      continue;
    }
    if (!frames.empty()) {
      last_heard_ms = NowMs();
    } else if (config.heartbeat_timeout_ms > 0 &&
               NowMs() - last_heard_ms > config.heartbeat_timeout_ms) {
      // The coordinator went silent past the deadline — hung, partitioned
      // or dead without the socket noticing. Same wind-down as a closed
      // channel, so a `--listen` daemon is never orphaned searching for
      // a fleet that no longer exists.
      channel_ok = false;
      coordinator_lost = true;
      continue;
    }
    for (const WireFrame& frame : frames) {
      handle_frame(frame);
    }
    if (cache != nullptr) {
      verdicts_published += PublishVerdicts(cache, &chan);
    }
    if (config.heartbeat_interval_ms > 0 && NowMs() >= next_heartbeat_ms) {
      WireWriter w;
      EncodeHeartbeat(WireHeartbeat{heartbeat_seq++}, &w);
      if (!chan.Send(WireMsg::kHeartbeat, w.buf())) {
        channel_ok = false;
        coordinator_lost = true;
        continue;
      }
      next_heartbeat_ms = NowMs() + config.heartbeat_interval_ms;
    }
    // ----- Re-balance state machine (requester side). -----
    if (rebalance && !cancel.load(std::memory_order_acquire)) {
      const size_t frontier_size = port.size();
      if (frontier_size >= low_watermark) {
        empty_responses = 0;  // Work came back (ours or imported): re-arm.
      }
      if (request_outstanding && NowMs() - request_sent_ms > response_timeout_ms) {
        request_outstanding = false;  // Donor died or relay lost: count as empty.
        if (NowMs() >= strikes_armed_at_ms) {
          ++empty_responses;
        }
      }
      if (!request_outstanding) {
        if (empty_responses >= kMaxEmptyResponses) {
          // The fleet has nothing for us right now. Stop holding the
          // frontier open so a genuinely finished search can terminate;
          // the counter re-arms above if work reappears.
          port.ReleaseHold();
        } else if (frontier_size < low_watermark) {
          port.HoldOpen();
          ++rebalance_seq;
          WireWriter w;
          EncodeWorkRequest(
              WireWorkRequest{hello.shard_id, kRebalanceBatch, frontier_size, rebalance_seq},
              &w);
          if (chan.Send(WireMsg::kWorkRequest, w.buf())) {
            request_outstanding = true;
            request_sent_ms = NowMs();
            ++rebalance_rounds;
          } else {
            channel_ok = false;
          }
        }
      }
    }
  }
  search.join();

  if (!channel_ok) {
    return coordinator_lost ? ShardRunStatus::kCoordinatorLost : ShardRunStatus::kProtocolError;
  }
  // Drain frames that raced against the search's end: late work
  // requests get an (empty — the frontier is gone) answer so peers'
  // give-up counters stay live, and re-balanced batches that can no
  // longer enter the frontier join the orphan list.
  {
    std::vector<WireFrame> tail;
    chan.Poll(0, &tail);
    for (const WireFrame& frame : tail) {
      if (frame.type == WireMsg::kWorkRequest || frame.type == WireMsg::kPendingExport) {
        handle_frame(frame);
      }
    }
  }
  // Return carves this shard could not use to the coordinator, which
  // re-routes them to a live peer — real pendings a donor removed from
  // its frontier must not die with us. The echo names us (seq 0), so no
  // receiver mistakes the batch for its own outstanding answer.
  if (!orphaned_imports.empty()) {
    WirePendingExport returned;
    returned.requester_shard_id = hello.shard_id;
    returned.seq = 0;
    returned.pendings = std::move(orphaned_imports);
    WireWriter w;
    EncodePendingExport(returned, &w);
    chan.Send(WireMsg::kPendingExport, w.buf());
  }
  // Final flush so a verdict proved in the last pump interval still
  // reaches slower shards, then the result.
  if (cache != nullptr) {
    verdicts_published += PublishVerdicts(cache, &chan);
  }
  result.stats.rebalance_rounds = rebalance_rounds;
  WireShardResult shard_result;
  shard_result.result = std::move(result);
  shard_result.verdicts_published = verdicts_published;
  shard_result.verdicts_imported = verdicts_imported;
  shard_result.pendings_seeded = pendings_seeded;
  WireWriter w;
  EncodeShardResult(shard_result, &w);
  if (!chan.Send(WireMsg::kResult, w.buf())) {
    return ShardRunStatus::kCoordinatorLost;
  }
  return ShardRunStatus::kOk;
}

bool RunShard(const IrModule& module, const InstrumentationPlan& plan, const BugReport& report,
              const ReplayConfig& config, u32 shard_id, int fd) {
  WireChannel chan(fd);
  return RunShardOn(chan, module, plan, report, config, shard_id) == ShardRunStatus::kOk;
}

ShardRunStatus ServeShardJob(int fd, const std::string& ident, u32 worker_override,
                             const std::string& token) {
  WireChannel chan(fd);
  WireWriter join_writer;
  EncodeJoin(WireJoin{ident, worker_override, token}, &join_writer);
  if (!chan.Send(WireMsg::kJoin, join_writer.buf())) {
    return ShardRunStatus::kCoordinatorLost;
  }
  // The job frame carries full program sources; give a slow coordinator
  // (or a big program) a generous-but-bounded window.
  const i64 deadline = NowMs() + 60'000;
  std::vector<WireFrame> frames;
  while (frames.empty()) {
    const i64 remaining = deadline - NowMs();
    if (remaining <= 0) {
      return ShardRunStatus::kCoordinatorLost;
    }
    const WireChannel::RecvStatus status =
        chan.Poll(static_cast<int>(std::min<i64>(remaining, 200)), &frames);
    if (status == WireChannel::RecvStatus::kClosed) {
      return ShardRunStatus::kCoordinatorLost;
    }
    if (status != WireChannel::RecvStatus::kOk) {
      return ShardRunStatus::kProtocolError;
    }
  }
  if (frames[0].type != WireMsg::kJob) {
    return ShardRunStatus::kProtocolError;
  }
  WireJob job;
  {
    WireReader r(frames[0].payload.data(), frames[0].payload.size());
    if (!DecodeJob(&r, &job)) {
      return ShardRunStatus::kProtocolError;
    }
  }
  if (job.config.program.app.empty()) {
    return ShardRunStatus::kProtocolError;
  }
  if (worker_override > 0) {
    job.config.num_workers = worker_override;
  }
  auto built = Pipeline::FromSources(job.config.program.app, job.config.program.libs);
  if (!built.ok()) {
    return ShardRunStatus::kProtocolError;  // Source skew between builds.
  }
  std::unique_ptr<Pipeline> pipeline = built.take();
  // Frames bundled behind kJob in the same read batch (the coordinator
  // pipelines kPending/kHello/kStart immediately) are handed through so
  // nothing already parsed is lost.
  return RunShardOn(chan, pipeline->module(), job.plan, job.report, job.config, kAnyShardId,
                    std::vector<WireFrame>(frames.begin() + 1, frames.end()));
}

ShardRunStatus ServeShardJobs(int fd, const std::string& ident, u32 worker_override,
                              const std::string& token) {
  WireChannel chan(fd);
  WireWriter join_writer;
  EncodeJoin(WireJoin{ident, worker_override, token}, &join_writer);
  if (!chan.Send(WireMsg::kJoin, join_writer.buf())) {
    return ShardRunStatus::kCoordinatorLost;
  }
  // Persists across jobs: the whole point of a standing shard. Sized by
  // the first cache-enabled job (later capacity changes are ignored —
  // resizing a warm cache would throw away exactly the warmth a
  // duplicate-cluster report came back for).
  std::unique_ptr<SliceCache> cache;
  u64 jobs_served = 0;
  std::vector<WireFrame> frames;
  for (;;) {
    if (frames.empty()) {
      // Between jobs a standing shard waits indefinitely; the fleet owns
      // the lifecycle and ends it with kJobEnd or by closing the channel.
      const WireChannel::RecvStatus status = chan.Poll(1000, &frames);
      if (status == WireChannel::RecvStatus::kClosed) {
        // A vanished coordinator after at least one served job is an
        // abrupt-but-survivable teardown; before any job it is a failure.
        return jobs_served > 0 ? ShardRunStatus::kOk : ShardRunStatus::kCoordinatorLost;
      }
      if (status != WireChannel::RecvStatus::kOk) {
        return ShardRunStatus::kProtocolError;
      }
      continue;
    }
    WireFrame frame = std::move(frames.front());
    frames.erase(frames.begin());
    switch (frame.type) {
      case WireMsg::kJobEnd:
        return ShardRunStatus::kOk;
      case WireMsg::kHeartbeat:
      case WireMsg::kVerdicts:
      case WireMsg::kStop:
      case WireMsg::kPendingExport:
        // Tail relay traffic from a job that ended for us but not for
        // the fleet (slower peers still gossiping). Nothing to do with
        // it between jobs.
        continue;
      case WireMsg::kWorkRequest: {
        // Honest "nothing to spare" so a starved peer's give-up counter
        // keeps moving even when the donor the relay picked is idle.
        WireReader r(frame.payload.data(), frame.payload.size());
        WireWorkRequest request;
        WirePendingExport batch;
        if (DecodeWorkRequest(&r, &request)) {
          batch.requester_shard_id = request.shard_id;
          batch.seq = request.seq;
        }
        WireWriter w;
        EncodePendingExport(batch, &w);
        chan.Send(WireMsg::kPendingExport, w.buf());
        continue;
      }
      case WireMsg::kJobBegin:
      case WireMsg::kJob:
        break;  // A job — handled below.
      default:
        return ShardRunStatus::kProtocolError;
    }
    const bool one_shot = frame.type == WireMsg::kJob;
    WireJob job;
    {
      WireReader r(frame.payload.data(), frame.payload.size());
      if (one_shot) {
        if (!DecodeJob(&r, &job)) {
          return ShardRunStatus::kProtocolError;
        }
      } else {
        WireJobBegin begin;
        if (!DecodeJobBegin(&r, &begin)) {
          return ShardRunStatus::kProtocolError;
        }
        job = std::move(begin.job);
      }
    }
    if (job.config.program.app.empty()) {
      return ShardRunStatus::kProtocolError;
    }
    if (worker_override > 0) {
      job.config.num_workers = worker_override;
    }
    auto built = Pipeline::FromSources(job.config.program.app, job.config.program.libs);
    if (!built.ok()) {
      return ShardRunStatus::kProtocolError;  // Source skew between builds.
    }
    std::unique_ptr<Pipeline> pipeline = built.take();
    SliceCache* job_cache = nullptr;
    if (job.config.solver_cache) {
      if (cache == nullptr) {
        cache = std::make_unique<SliceCache>(job.config.slice_cache_capacity);
        cache->EnableJournal();
      }
      job_cache = cache.get();
    }
    // Frames pipelined behind the job frame (kPending/kHello/kStart)
    // are handed through so nothing already parsed is lost.
    const ShardRunStatus status =
        RunShardOn(chan, pipeline->module(), job.plan, job.report, job.config, kAnyShardId,
                   std::move(frames), job_cache);
    frames.clear();
    if (status != ShardRunStatus::kOk) {
      return status;
    }
    ++jobs_served;
    if (one_shot) {
      return ShardRunStatus::kOk;
    }
  }
}

}  // namespace retrace
