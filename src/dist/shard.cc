#include "src/dist/shard.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/dist/wire.h"
#include "src/solver/incremental.h"

namespace retrace {
namespace {

// Gossip cadence: how long the pump waits on the socket per iteration.
// Verdict deltas and stop messages are observed with at most this
// latency, which is noise next to the multi-millisecond runs they steer.
constexpr int kPumpPollMs = 20;

// Ships every verdict journaled since the last drain. Returns the number
// of verdicts published (0 when there was nothing to send).
u64 PublishVerdicts(SliceCache* cache, WireChannel* chan) {
  WireVerdicts delta;
  cache->DrainJournal(&delta.sat, &delta.unsat);
  if (delta.sat.empty() && delta.unsat.empty()) {
    return 0;
  }
  WireWriter w;
  EncodeVerdicts(delta, &w);
  if (!chan->Send(WireMsg::kVerdicts, w.buf())) {
    return 0;
  }
  return delta.sat.size() + delta.unsat.size();
}

// Merges a gossiped verdict batch; returns how many verdicts it carried.
u64 MergeVerdicts(const WireFrame& frame, SliceCache* cache) {
  WireReader r(frame.payload.data(), frame.payload.size());
  WireVerdicts verdicts;
  if (!DecodeVerdicts(&r, &verdicts)) {
    return 0;  // Digest-checked upstream; a decode failure is a peer bug.
  }
  const u64 n = verdicts.sat.size() + verdicts.unsat.size();
  for (SliceCache::SatEntry& entry : verdicts.sat) {
    cache->MergeSat(entry.key, std::move(entry.model));
  }
  for (const SliceCache::UnsatEntry& entry : verdicts.unsat) {
    cache->MergeUnsat(entry.key, entry.check);
  }
  return n;
}

}  // namespace

bool RunShard(const IrModule& module, const InstrumentationPlan& plan, const BugReport& report,
              const ReplayConfig& config, u32 shard_id, int fd) {
  WireChannel chan(fd);

  // ----- Handshake: hello, seed frontier, start. -----
  // Frames that legitimately follow kStart in the same read batch (a
  // verdict another shard proved before we finished starting, or an
  // early stop) are carried over to the search phase, not treated as a
  // protocol violation.
  WireHello hello;
  bool have_hello = false;
  bool started = false;
  bool stopped_early = false;
  std::vector<PortablePending> seed_frontier;
  std::vector<WireFrame> carried_over;
  std::unordered_map<u64, std::vector<std::shared_ptr<const PortableTrace>>> trace_dedup;
  while (!started) {
    std::vector<WireFrame> frames;
    const WireChannel::RecvStatus status = chan.Poll(1000, &frames);
    if (status != WireChannel::RecvStatus::kOk) {
      return false;  // Coordinator died or speaks another version.
    }
    for (WireFrame& frame : frames) {
      if (started) {
        carried_over.push_back(std::move(frame));
        continue;
      }
      switch (frame.type) {
        case WireMsg::kHello: {
          WireReader r(frame.payload.data(), frame.payload.size());
          if (!DecodeHello(&r, &hello) || hello.shard_id != shard_id) {
            return false;
          }
          have_hello = true;
          break;
        }
        case WireMsg::kPending: {
          WireReader r(frame.payload.data(), frame.payload.size());
          PortablePending pending;
          if (!DecodePending(&r, &pending)) {
            return false;
          }
          // Sibling pendings of one scouted run arrive as separate frames
          // but described the same trace before encoding; re-share a
          // structurally identical snapshot so the workers' per-trace
          // import memo works as well here as it does in-process. Equal
          // fingerprints alone are not trusted — the nodes are compared.
          const u64 fp = FingerprintConstraints(*pending.trace,
                                                pending.trace->constraints.size(),
                                                /*negate_last=*/false);
          bool shared = false;
          for (const auto& seen : trace_dedup[fp]) {
            if (seen->nodes == pending.trace->nodes &&
                seen->constraints == pending.trace->constraints) {
              pending.trace = seen;
              shared = true;
              break;
            }
          }
          if (!shared) {
            trace_dedup[fp].push_back(pending.trace);
          }
          seed_frontier.push_back(std::move(pending));
          break;
        }
        case WireMsg::kStart:
          started = true;
          break;
        case WireMsg::kStop:
          stopped_early = true;  // Race won elsewhere before we started.
          started = true;
          break;
        default:
          return false;
      }
    }
  }
  if (stopped_early) {
    return true;
  }
  if (!have_hello || seed_frontier.size() != hello.pending_count) {
    return false;
  }

  // ----- Search, with the gossip pump on this thread. -----
  std::unique_ptr<SliceCache> cache;
  if (config.solver_cache) {
    cache = std::make_unique<SliceCache>(config.slice_cache_capacity);
    cache->EnableJournal();
  }
  std::atomic<bool> cancel{false};
  ExprArena arena;
  ReplayEngine engine(module, plan, report, &arena);
  ShardContext ctx;
  ctx.seed_frontier = std::move(seed_frontier);
  const u64 pendings_seeded = hello.pending_count;
  ctx.cache = cache.get();
  ctx.cancel = &cancel;
  // Distinct rng streams per shard: worker w of shard s draws from stream
  // s * 1024 + w + 1, so no two workers in the fleet share an initial
  // input — and none repeats the coordinator's scout (stream 0), whose
  // subtree already shipped as the seed frontier.
  ctx.rng_stream = static_cast<u64>(shard_id) * 1024 + 1;

  ReplayResult result;
  std::atomic<bool> done{false};
  std::thread search([&] {
    result = engine.ReproduceShard(config, &ctx);
    done.store(true, std::memory_order_release);
  });

  u64 verdicts_published = 0;
  u64 verdicts_imported = 0;
  bool channel_ok = true;
  // Frames that arrived bundled with the handshake are served first.
  for (const WireFrame& frame : carried_over) {
    if (frame.type == WireMsg::kStop) {
      cancel.store(true, std::memory_order_release);
    } else if (frame.type == WireMsg::kVerdicts && cache != nullptr) {
      verdicts_imported += MergeVerdicts(frame, cache.get());
    }
  }
  carried_over.clear();
  while (!done.load(std::memory_order_acquire)) {
    if (!channel_ok) {
      // Coordinator is gone: searching on is pointless (nobody can hear
      // the answer) — wind down and exit.
      cancel.store(true, std::memory_order_release);
      std::this_thread::sleep_for(std::chrono::milliseconds(kPumpPollMs));
      continue;
    }
    std::vector<WireFrame> frames;
    const WireChannel::RecvStatus status = chan.Poll(kPumpPollMs, &frames);
    if (status != WireChannel::RecvStatus::kOk) {
      channel_ok = false;
      continue;
    }
    for (const WireFrame& frame : frames) {
      if (frame.type == WireMsg::kStop) {
        cancel.store(true, std::memory_order_release);
      } else if (frame.type == WireMsg::kVerdicts && cache != nullptr) {
        verdicts_imported += MergeVerdicts(frame, cache.get());
      }
    }
    if (cache != nullptr) {
      verdicts_published += PublishVerdicts(cache.get(), &chan);
    }
  }
  search.join();

  if (!channel_ok) {
    return false;
  }
  // Final flush so a verdict proved in the last pump interval still
  // reaches slower shards, then the result.
  if (cache != nullptr) {
    verdicts_published += PublishVerdicts(cache.get(), &chan);
  }
  WireShardResult shard_result;
  shard_result.result = std::move(result);
  shard_result.verdicts_published = verdicts_published;
  shard_result.verdicts_imported = verdicts_imported;
  shard_result.pendings_seeded = pendings_seeded;
  WireWriter w;
  EncodeShardResult(shard_result, &w);
  return chan.Send(WireMsg::kResult, w.buf());
}

}  // namespace retrace
