// Deterministic fault injection for the distributed replay scheduler.
//
// Every recovery path in src/dist/ (heartbeat death, mid-search frontier
// re-deal, in-process fallback) exists because shards fail — and none of
// it is testable unless a failure can be staged on demand, repeatably.
// This layer decorates the coordinator side of a transport: a
// FaultInjectingChannel wraps a shard's WireChannel and, driven by a
// parsed ReplayConfig::fault_spec / RETRACE_FAULT_SPEC schedule, drops,
// delays, duplicates or corrupts frames, or closes / mutes the channel
// outright. Spec grammar (comma-separated clauses):
//
//   <target>:<action><trigger>
//   target  := all | shard<N>          (coordinator slot id)
//   action  := drop | delay | dup | corrupt | close | hang
//   trigger := @frame<N>               (the Nth frame received, N >= 1)
//            | %<P>                    (each frame with prob. P%, 1-100)
//
// e.g. "shard1:close@frame20,shard2:hang@frame5,all:corrupt%1".
//
// Semantics — all faults key on *incoming* frames (shard -> coordinator),
// counted in arrival order after reassembly, so a schedule is
// deterministic given the frame stream (probabilistic clauses draw from
// a splitmix64 stream seeded by ReplayConfig::seed and the slot id):
//
//   drop     the triggering frame is discarded.
//   delay    the triggering frame is held until the next Poll().
//   dup      the triggering frame is delivered twice.
//   corrupt  one payload byte of the triggering frame is flipped
//            (empty payloads are dropped instead). Real on-the-wire
//            corruption dies at the frame digest and kills the stream —
//            that is `close` territory; this corrupts *post-digest*, so
//            it exercises every payload decoder's hostile-input path
//            while the stream stays trusted.
//   close    from the triggering frame on, the channel reports kClosed
//            and the real fd closes (the shard process sees EOF) — a
//            crashed shard, as the coordinator experiences one.
//   hang     from the triggering frame on, the channel goes mute both
//            ways: incoming frames are read and discarded, outgoing
//            sends pretend success. A hung or partitioned shard — the
//            failure only a heartbeat deadline can detect.
//
// When several clauses trigger on the same frame, the first one in spec
// order applies. The decorator lives coordinator-side only: shards never
// see it, and fault_spec never ships in a kJob.
#ifndef RETRACE_DIST_FAULT_H_
#define RETRACE_DIST_FAULT_H_

#include <memory>
#include <string>
#include <vector>

#include "src/dist/transport.h"
#include "src/dist/wire.h"
#include "src/support/rng.h"

namespace retrace {

/// Target sentinel: the clause applies to every shard slot.
inline constexpr i32 kFaultAllShards = -1;

struct FaultAction {
  enum class Kind : u8 { kDrop, kDelay, kDup, kCorrupt, kClose, kHang };
  Kind kind = Kind::kDrop;
  // Exactly one trigger is set by the parser.
  u64 at_frame = 0;  // > 0: fires on the Nth incoming frame.
  u32 percent = 0;   // > 0: fires per frame with this probability (%).
};

/// A parsed fault schedule: ordered clauses, each targeting one shard
/// slot or every slot.
struct FaultSpec {
  struct Clause {
    i32 shard = kFaultAllShards;
    FaultAction action;
  };
  std::vector<Clause> clauses;

  bool empty() const { return clauses.empty(); }
  /// The actions that apply to shard slot `shard`, in spec order.
  std::vector<FaultAction> ForShard(u32 shard) const;
};

/// Strict parser for the grammar above. Empty text parses to an empty
/// spec. On failure returns false and (optionally) a human-readable
/// reason in `error`; `out` is left unspecified.
bool ParseFaultSpec(const std::string& text, FaultSpec* out, std::string* error = nullptr);

/// \brief Coordinator-side decorator that applies a fault schedule to
/// one shard's channel. Owns the wrapped channel; same thread-safety
/// contract as WireChannel (none).
class FaultInjectingChannel : public WireChannel {
 public:
  FaultInjectingChannel(std::unique_ptr<WireChannel> inner, std::vector<FaultAction> actions,
                        u64 seed);

  bool Send(WireMsg type, const std::vector<u8>& payload) override;
  bool Queue(WireMsg type, const std::vector<u8>& payload, bool droppable) override;
  RecvStatus Poll(int timeout_ms, std::vector<WireFrame>* out) override;

  u64 tx_bytes() const override;
  u64 rx_bytes() const override;
  u64 dropped_frames() const override;
  int fd() const override;

 private:
  // First action triggering on incoming frame number `frame_index`, or
  // null. Probabilistic triggers draw from rng_ (one draw per
  // percent-clause per frame, so schedules replay bit-identically).
  const FaultAction* Match(u64 frame_index);
  void DropInner();

  std::unique_ptr<WireChannel> inner_;
  std::vector<FaultAction> actions_;
  Rng rng_;
  u64 frames_seen_ = 0;
  bool closed_ = false;
  bool muted_ = false;
  std::vector<WireFrame> delayed_;
  // Counter snapshots so the honest wire report survives DropInner().
  u64 tx_snapshot_ = 0;
  u64 rx_snapshot_ = 0;
  u64 dropped_snapshot_ = 0;
};

/// \brief Transport decorator: starts the inner transport, then wraps
/// every channel whose slot the spec targets. Kill/Reap forward — the
/// real child processes are the inner transport's to manage.
class FaultInjectingTransport : public Transport {
 public:
  FaultInjectingTransport(std::unique_ptr<Transport> inner, FaultSpec spec, u64 seed);

  std::vector<std::unique_ptr<WireChannel>> Start(u32 num_shards) override;
  void Kill() override;
  void Reap() override;
  const char* name() const override { return "fault"; }

 private:
  std::unique_ptr<Transport> inner_;
  FaultSpec spec_;
  u64 seed_;
};

}  // namespace retrace

#endif  // RETRACE_DIST_FAULT_H_
