// Coordinator of the distributed (multi-process) replay scheduler.
//
// ReplayConfig::num_shards > 1 routes ReplayEngine::Reproduce here. The
// coordinator:
//   1. Scouts: runs a bounded in-process search (HarvestFrontier) to
//      grow an initial pending-set frontier — or to reproduce the bug
//      outright, in which case no process is ever forked.
//   2. Shards: forks num_shards child processes connected by socketpairs,
//      ships each its partition of the frontier over the wire format
//      (deep pendings interleaved round-robin so every shard gets a mix),
//      and divides the run/step budget evenly.
//   3. Relays: gossips freshly proved slice-cache verdicts hub-and-spoke
//      between shards — the prover's journal drains to the coordinator,
//      which forwards the frames verbatim to every other shard — so the
//      fleet-wide cache hit rate survives the process split.
//   4. Finishes: the first kResult with a reproduced crash wins; everyone
//      else receives kStop, reports its final stats, and exits. Stats
//      aggregate shard-aware: per-worker entries concatenate across
//      shards, per_shard carries the process/wire breakdown, and the
//      scout's contribution is labelled harvest_runs.
#ifndef RETRACE_DIST_COORDINATOR_H_
#define RETRACE_DIST_COORDINATOR_H_

#include <vector>

#include "src/dist/wire.h"
#include "src/replay/replay_engine.h"

namespace retrace {

/// \brief Where the shard processes for one distributed search come
/// from — the seam that lets the per-job scheduler core run against
/// either a freshly forked process tree (the historical one-shot path)
/// or a standing fleet that outlives any single search (ShardFleet in
/// src/dist/fleet.h, used by the replay service).
///
/// Per-job protocol, driven by RunDistributedJob:
///   1. AttachJob() hands back one channel per slot (null = that slot is
///      unavailable; the scheduler re-deals its frontier partition).
///   2. The scheduler runs the search over those channels.
///   3. FinishJob() reports which slots broke mid-job so the fleet can
///      retire them; one-shot fleets tear the whole process tree down
///      here. KillAll() may fire first on a wall-budget overrun.
///
/// The returned channels stay owned by the fleet — the scheduler must
/// not hold them past FinishJob().
class JobFleet {
 public:
  virtual ~JobFleet() = default;

  /// Number of shard slots AttachJob will return. Stable for the
  /// fleet's lifetime (dead slots return null rather than shrinking the
  /// vector, so shard ids stay dense and stable).
  virtual u32 num_shards() const = 0;

  /// Makes every live slot ready to run `plan`/`report` under
  /// `shard_cfg` and returns its channel, null per unavailable slot.
  virtual std::vector<WireChannel*> AttachJob(const ReplayConfig& shard_cfg,
                                              const InstrumentationPlan& plan,
                                              const BugReport& report) = 0;

  /// Hard-stops every shard (wall-budget overrun past the kill grace).
  virtual void KillAll() = 0;

  /// Ends the job. `lost[s]` marks slots that died, wedged or broke
  /// mid-search — a standing fleet retires those and keeps the rest.
  virtual void FinishJob(const std::vector<bool>& lost) = 0;
};

/// \brief Multi-process reproduction entry point.
///
/// Requires config.num_shards > 1. Forks on the calling thread — call
/// from a single-threaded context (forking a multi-threaded process
/// would clone held locks into the children). Never throws; a shard that
/// dies mid-search simply contributes nothing. **Thread safety:** not
/// reentrant; one distributed search per process at a time.
ReplayResult ReproduceDistributed(const IrModule& module, const InstrumentationPlan& plan,
                                  const BugReport& report, const ReplayConfig& config);

/// \brief Per-job scheduler core: scout, partition, seed, relay,
/// aggregate — against whatever fleet is passed in.
///
/// ReproduceDistributed is exactly this over a one-shot fork/TCP fleet;
/// the replay service calls it repeatedly against a standing ShardFleet
/// so consecutive reports reuse live shard processes (and their warm
/// slice caches). `config` must already be usable as-is: transport
/// fallbacks resolved and fault specs parsed by the caller. Runs the
/// scout (and any fallback search) on the calling thread.
ReplayResult RunDistributedJob(const IrModule& module, const InstrumentationPlan& plan,
                               const BugReport& report, const ReplayConfig& config,
                               JobFleet* fleet);

}  // namespace retrace

#endif  // RETRACE_DIST_COORDINATOR_H_
