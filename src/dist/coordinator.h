// Coordinator of the distributed (multi-process) replay scheduler.
//
// ReplayConfig::num_shards > 1 routes ReplayEngine::Reproduce here. The
// coordinator:
//   1. Scouts: runs a bounded in-process search (HarvestFrontier) to
//      grow an initial pending-set frontier — or to reproduce the bug
//      outright, in which case no process is ever forked.
//   2. Shards: forks num_shards child processes connected by socketpairs,
//      ships each its partition of the frontier over the wire format
//      (deep pendings interleaved round-robin so every shard gets a mix),
//      and divides the run/step budget evenly.
//   3. Relays: gossips freshly proved slice-cache verdicts hub-and-spoke
//      between shards — the prover's journal drains to the coordinator,
//      which forwards the frames verbatim to every other shard — so the
//      fleet-wide cache hit rate survives the process split.
//   4. Finishes: the first kResult with a reproduced crash wins; everyone
//      else receives kStop, reports its final stats, and exits. Stats
//      aggregate shard-aware: per-worker entries concatenate across
//      shards, per_shard carries the process/wire breakdown, and the
//      scout's contribution is labelled harvest_runs.
#ifndef RETRACE_DIST_COORDINATOR_H_
#define RETRACE_DIST_COORDINATOR_H_

#include "src/replay/replay_engine.h"

namespace retrace {

/// \brief Multi-process reproduction entry point.
///
/// Requires config.num_shards > 1. Forks on the calling thread — call
/// from a single-threaded context (forking a multi-threaded process
/// would clone held locks into the children). Never throws; a shard that
/// dies mid-search simply contributes nothing. **Thread safety:** not
/// reentrant; one distributed search per process at a time.
ReplayResult ReproduceDistributed(const IrModule& module, const InstrumentationPlan& plan,
                                  const BugReport& report, const ReplayConfig& config);

}  // namespace retrace

#endif  // RETRACE_DIST_COORDINATOR_H_
