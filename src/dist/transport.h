// Transport seam of the distributed replay scheduler.
//
// The coordinator (src/dist/coordinator.cc) speaks the wire protocol of
// src/dist/wire.h over one WireChannel per shard and does not care how
// those channels came to exist. A Transport owns exactly that concern:
//
//   - LocalForkTransport: fork() + AF_UNIX socketpairs on this host —
//     the historical (and default) deployment, where shards inherit the
//     compiled module by copy-on-write and no job frame is ever sent.
//   - TcpTransport: a TCP listener on the coordinator; shards join by
//     connecting (tools/retrace_shardd, possibly from another host) and
//     handshake with kJoin, after which the coordinator ships the full
//     search job (program sources + plan + report + config) as a kJob
//     frame. With ReplayConfig::shard_endpoints set the coordinator
//     dials out to waiting `retrace_shardd --listen` daemons instead;
//     with neither, it self-spawns local children that connect back over
//     loopback — the full TCP path without any remote host, which is
//     what the tests and the CI smoke leg exercise.
//
// Everything after Start() — seeding frontiers, verdict gossip, work
// re-balancing, first-crash-wins — is transport-agnostic.
#ifndef RETRACE_DIST_TRANSPORT_H_
#define RETRACE_DIST_TRANSPORT_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/dist/wire.h"

namespace retrace {

/// Resolves "host:port" (IPv4; empty host = 127.0.0.1) and binds a
/// listening socket. Port 0 binds an ephemeral port. Returns the fd, or
/// -1 on failure; `bound_endpoint` (optional) receives the actual
/// "host:port" after binding.
int TcpListen(const std::string& endpoint, std::string* bound_endpoint);

/// Connects to "host:port" (IPv4 or resolvable name). Returns the
/// connected fd with TCP_NODELAY set, or -1 on failure.
int TcpConnect(const std::string& endpoint);

/// \brief How shard processes come to exist and get wired to the
/// coordinator.
///
/// **Thread safety:** none — the coordinator drives a Transport from the
/// single thread that called ReproduceDistributed. **Lifecycle:** call
/// Start() once; Kill() at most once after Start(); Reap() exactly once
/// before destruction when Start() was called.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Establishes one coordinator->shard channel per slot. A null entry
  /// means that shard failed to spawn/connect — the coordinator re-deals
  /// its frontier partition over the survivors, so a partial fleet still
  /// covers the whole search space.
  virtual std::vector<std::unique_ptr<WireChannel>> Start(u32 num_shards) = 0;

  /// Hard-stops stragglers past the wall-budget grace: SIGKILL for local
  /// children; remote shards cannot be signalled and instead observe
  /// their socket closing when the coordinator drops the channel.
  virtual void Kill() = 0;

  /// Reaps (waitpid) every local child Start() created. No-op for
  /// purely remote fleets.
  virtual void Reap() = 0;

  virtual const char* name() const = 0;
};

/// \brief fork() + socketpair transport (single host, default).
class LocalForkTransport : public Transport {
 public:
  /// `shard_main` runs inside each forked child with (slot, child_fd)
  /// and must not return control to the inherited process state — its
  /// return value becomes the child's _exit status.
  using ShardMain = std::function<bool(u32 slot, int fd)>;

  explicit LocalForkTransport(ShardMain shard_main) : shard_main_(std::move(shard_main)) {}

  std::vector<std::unique_ptr<WireChannel>> Start(u32 num_shards) override;
  void Kill() override;
  void Reap() override;
  const char* name() const override { return "fork"; }

 private:
  ShardMain shard_main_;
  std::vector<int> pids_;  // -1 for slots that failed to spawn.
};

/// Listener-side policy knobs for TcpTransport (v7).
struct TcpTransportOptions {
  /// Shared-secret auth (RETRACE_SHARD_TOKEN). When non-empty, a kJoin
  /// whose token differs is refused before any job bytes ship; empty
  /// means auth off (trusted local setups, the historical behavior).
  std::string token;
  /// Standing-fleet mode: the handshake validates kJoin (and the token)
  /// but ships no kJob — the fleet attaches jobs later with kJobBegin,
  /// so the channels outlive any single search.
  bool persistent = false;
};

/// \brief TCP transport: listener on the coordinator, kJoin/kJob
/// handshake per shard connection.
class TcpTransport : public Transport {
 public:
  /// Runs in a self-spawned child (loopback mode): connect to
  /// `endpoint` and serve one job. Return value = child exit status.
  using SelfSpawnMain = std::function<bool(const std::string& endpoint)>;

  /// `job` is the encoded WireJob payload shipped to every shard after
  /// its kJoin (unused in persistent mode). `endpoints` are dialed out
  /// to. With no endpoints and an *ephemeral* listen port (":0" —
  /// unknowable to remote hosts), the transport forks `self_spawn`
  /// children that connect back over loopback; a fixed listen port
  /// instead waits for real inbound joiners (`retrace_shardd
  /// <host:port>`).
  TcpTransport(std::string listen_endpoint, std::vector<std::string> endpoints,
               std::vector<u8> job, SelfSpawnMain self_spawn,
               TcpTransportOptions options = {});
  ~TcpTransport() override;

  std::vector<std::unique_ptr<WireChannel>> Start(u32 num_shards) override;
  void Kill() override;
  void Reap() override;
  const char* name() const override { return "tcp"; }

  /// Actual "host:port" after binding (ephemeral port resolved); empty
  /// until Start().
  const std::string& bound_endpoint() const { return bound_; }

 private:
  // Completes the shard-side of one connection: waits for kJoin, checks
  // the auth token, ships the job (unless persistent). Returns the
  // ready channel or null on handshake/auth failure.
  std::unique_ptr<WireChannel> Handshake(int fd, i64 deadline_ms);

  std::string listen_;
  std::vector<std::string> endpoints_;
  std::vector<u8> job_;
  SelfSpawnMain self_spawn_;
  TcpTransportOptions options_;
  std::string bound_;
  int listen_fd_ = -1;
  std::vector<int> pids_;  // Self-spawned children only.
};

}  // namespace retrace

#endif  // RETRACE_DIST_TRANSPORT_H_
