// Versioned binary wire format for the distributed replay scheduler.
//
// Everything that crosses a shard process boundary travels in frames:
//
//   | magic u32 | version u16 | type u16 | payload_len u32 | digest u64 |
//   | payload bytes ...                                                |
//
// All integers are little-endian fixed width. `digest` is a structural
// hash of the payload (the solver's HashMix chain), so a corrupted frame
// is rejected before any payload decoding; a frame whose version differs
// from kWireVersion is refused outright (no cross-version decoding —
// shards are forked from the coordinator's binary, so a mismatch means a
// build skew bug, not a negotiation opportunity). Truncated input is
// never an error at the framing layer: FrameParser reports kNeedMore and
// waits for the rest of the stream.
//
// Payload codecs (pendings, verdict batches, shard results) are
// bounds-checked: a decoder that runs past the payload, sees an absurd
// count, or finds a non-topological trace reference fails the decode
// instead of allocating or reading garbage.
#ifndef RETRACE_DIST_WIRE_H_
#define RETRACE_DIST_WIRE_H_

#include <string>
#include <vector>

#include "src/replay/replay_engine.h"
#include "src/solver/incremental.h"

namespace retrace {

inline constexpr u32 kWireMagic = 0x43525452u;  // "RTRC" little-endian.
// v2: kJoin/kJob handshake (TCP transport), kWorkRequest/kPendingExport
// (frontier re-balancing), re-balance counters in the stats codec.
// v3: search-quality layer — pending dir_score (Pick::kDirection key),
// prune/corpus config fields (corpus seeds ride the kJob config codec),
// pendings_pruned/corpus_runs/promotions + per-discipline run accounting
// in the stats codecs.
// v4: adaptive planning — plan detail_level/provenance in the plan codec,
// and the off-log failure profile (sparse per-branch death counters,
// strictly increasing branch ids) in the stats codec.
// v5: failure handling — kHeartbeat liveness frames, heartbeat knobs in
// the kJob config codec, and the graceful-degradation counters
// (shards_lost/pendings_recovered/heartbeats_missed/fallback_inprocess)
// in the stats codec.
// v6: execution engine — the resolved ExecEngineKind rides the kJob
// config codec so every shard runs the coordinator's engine choice
// (tree vs bytecode), keeping fleet-wide run accounting comparable.
// v7: replay-as-a-service — kJoin carries the shared-secret auth token
// (checked before any job bytes ship), kJobBegin/kJobEnd attach and
// detach jobs on a standing shard fleet that outlives a single search,
// and the service ingest frames (kReportSubmit/kReportVerdict/
// kHealthQuery/kHealthStats) let clients stream bug reports at a
// resident daemon and read its health.
inline constexpr u16 kWireVersion = 7;

/// Message types carried in the frame header.
enum class WireMsg : u16 {
  kHello = 1,    // Coordinator -> shard: shard id + fleet shape.
  kPending = 2,  // Coordinator -> shard: one seed-frontier entry.
  kStart = 3,    // Coordinator -> shard: frontier complete, begin search.
  kVerdicts = 4,  // Both ways: batch of slice-cache SAT/UNSAT verdicts.
  kStop = 5,      // Coordinator -> shard: first-crash-wins cancellation.
  kResult = 6,    // Shard -> coordinator: final result + stats.
  // ----- TCP transport handshake (never seen on fork socketpairs) -----
  kJoin = 7,  // Shard -> coordinator: first frame after connect.
  kJob = 8,   // Coordinator -> shard: program sources + plan + report + config.
  // ----- Frontier re-balancing -----
  kWorkRequest = 9,     // Starved shard -> coordinator -> donor shard.
  kPendingExport = 10,  // Donor shard -> coordinator -> starved shard.
  // ----- Failure handling (v5) -----
  kHeartbeat = 11,  // Both ways: liveness beat on the gossip cadence.
  // ----- Standing shard fleet (v7) -----
  kJobBegin = 12,  // Coordinator -> shard: attach one job to a live shard.
  kJobEnd = 13,    // Coordinator -> shard: fleet shutdown, no more jobs.
  // ----- Service ingest (v7; client <-> retrace_serviced) -----
  kReportSubmit = 14,   // Client -> daemon: tenant tag + bug report.
  kReportVerdict = 15,  // Daemon -> client: cluster fp + verdict + result.
  kHealthQuery = 16,    // Client -> daemon: empty payload, stats request.
  kHealthStats = 17,    // Daemon -> client: queue/cluster/cache/fleet stats.
};

/// \brief Append-only little-endian payload writer.
/// Not thread-safe; one writer per frame under construction.
class WireWriter {
 public:
  void U8(u8 v) { buf_.push_back(v); }
  void U16(u16 v);
  void U32(u32 v);
  void U64(u64 v);
  void I64(i64 v) { U64(static_cast<u64>(v)); }
  void I32(i32 v) { U32(static_cast<u32>(v)); }
  void F64(double v);
  void Str(const std::string& s);

  const std::vector<u8>& buf() const { return buf_; }
  std::vector<u8> Take() { return std::move(buf_); }

 private:
  std::vector<u8> buf_;
};

/// \brief Bounds-checked little-endian payload reader.
///
/// Every getter returns false (and poisons the reader) on overrun; a
/// poisoned reader fails all subsequent reads, so codecs can check ok()
/// once at the end. Borrows the buffer; must not outlive it.
class WireReader {
 public:
  WireReader(const u8* data, size_t size) : p_(data), n_(size) {}

  bool U8(u8* v);
  bool U16(u16* v);
  bool U32(u32* v);
  bool U64(u64* v);
  bool I64(i64* v);
  bool I32(i32* v);
  bool F64(double* v);
  bool Str(std::string* s);
  /// Guard for count-prefixed vectors: fails unless at least
  /// `count * min_bytes_each` bytes remain — rejects absurd counts on
  /// corrupt frames before any allocation.
  bool FitsCount(u64 count, size_t min_bytes_each);
  /// Advances past `n` bytes without reading them (allocation-free
  /// skip-scans, e.g. counting a verdict batch on the relay hot path).
  bool Skip(size_t n);

  bool ok() const { return ok_; }
  size_t remaining() const { return n_ - off_; }

 private:
  bool Raw(void* out, size_t n);

  const u8* p_;
  size_t n_;
  size_t off_ = 0;
  bool ok_ = true;
};

/// Structural digest of a payload (HashMix chain over the bytes).
u64 WireDigest(const u8* data, size_t n);

struct WireFrame {
  WireMsg type = WireMsg::kStop;
  std::vector<u8> payload;
};

/// Appends one complete frame (header + payload) to `out`.
void AppendFrame(WireMsg type, const std::vector<u8>& payload, std::vector<u8>* out);

enum class FrameStatus {
  kFrame,            // A complete, verified frame was produced.
  kNeedMore,         // Truncated so far; feed more bytes.
  kCorrupt,          // Bad magic, impossible length, or digest mismatch.
  kVersionMismatch,  // Peer speaks a different kWireVersion.
};

/// \brief Incremental frame reassembler over a byte stream.
///
/// Feed arbitrary chunks with Append(); Next() yields frames as they
/// complete. kCorrupt and kVersionMismatch are sticky: a stream that
/// failed once cannot be trusted to resynchronize. Not thread-safe.
class FrameParser {
 public:
  void Append(const u8* data, size_t n);
  FrameStatus Next(WireFrame* out);

 private:
  std::vector<u8> buf_;
  size_t off_ = 0;
  FrameStatus fatal_ = FrameStatus::kNeedMore;  // Sticky failure state.
};

// ----- Message payload codecs -----

struct WireHello {
  u32 shard_id = 0;
  u32 num_shards = 0;
  u32 pending_count = 0;  // kPending frames to expect before kStart.
};

void EncodeHello(const WireHello& hello, WireWriter* w);
bool DecodeHello(WireReader* r, WireHello* out);

/// PortablePending <-> bytes. Decode validates trace topology: node
/// children must strictly precede their parents and constraint roots must
/// index real nodes, so a hostile or corrupt frame cannot produce a trace
/// the importing arena would walk out of bounds.
void EncodePending(const PortablePending& pending, WireWriter* w);
bool DecodePending(WireReader* r, PortablePending* out);

struct WireVerdicts {
  std::vector<SliceCache::SatEntry> sat;
  std::vector<SliceCache::UnsatEntry> unsat;
};

void EncodeVerdicts(const WireVerdicts& verdicts, WireWriter* w);
bool DecodeVerdicts(WireReader* r, WireVerdicts* out);

/// Final shard report: the shard's ReplayResult (aggregate + per-worker
/// stats; per_shard is filled by the coordinator, not the shard) plus its
/// gossip counters.
struct WireShardResult {
  ReplayResult result;
  u64 verdicts_published = 0;
  u64 verdicts_imported = 0;
  u64 pendings_seeded = 0;  // Echo of the coordinator's kPending count.
};

void EncodeShardResult(const WireShardResult& result, WireWriter* w);
bool DecodeShardResult(WireReader* r, WireShardResult* out);

/// v4: the sparse off-log failure profile, nested in every stats
/// payload. Entries must arrive strictly increasing by branch_id with
/// every id below the job branch cap — the engine emits them that way,
/// and the invariant keeps ReplayFailureProfile::Merge a linear
/// sorted-union no hostile peer can skew.
void EncodeFailureProfile(const ReplayFailureProfile& profile, WireWriter* w);
bool DecodeFailureProfile(WireReader* r, ReplayFailureProfile* out);

/// First frame a TCP shard sends after connecting (either direction of
/// dialing): identifies the joiner. The framing layer has already
/// enforced the wire version by the time this decodes. Both fields are
/// advisory/diagnostic: the daemon applies its own --workers override
/// locally after kJob decodes — the coordinator validates but does not
/// act on this echo.
struct WireJoin {
  std::string ident;       // Free-form "host/pid" tag for diagnostics.
  u32 num_workers = 0;     // Worker threads the daemon will use (0 = job's).
  // v7: shared-secret auth (RETRACE_SHARD_TOKEN). The listener compares
  // this against its own token before any job bytes ship; when the
  // coordinator's token is empty, auth is off (trusted local setups).
  std::string token;
};

void EncodeJoin(const WireJoin& join, WireWriter* w);
bool DecodeJoin(WireReader* r, WireJoin* out);

/// Everything a remote host needs to run one shard search: the program
/// sources (lowering is deterministic, so a rebuilt module has the same
/// branch ids as the coordinator's), the instrumentation plan, the bug
/// report, and the search-relevant ReplayConfig subset. Decode validates
/// aggressively — counts against the payload, enum ranges, stream/file
/// indices, log-length consistency — because a listening retrace_shardd
/// accepts this frame from the network.
struct WireJob {
  ReplayConfig config;  // Transport fields reset to in-process defaults.
  InstrumentationPlan plan;
  BugReport report;
};

void EncodeJob(const WireJob& job, WireWriter* w);
bool DecodeJob(WireReader* r, WireJob* out);

/// BugReport <-> bytes, shared by the kJob codec and the v7 service
/// ingest path (kReportSubmit carries a bare report). Decode applies the
/// same hostile-input validation as the job codec.
void EncodeReport(const BugReport& report, WireWriter* w);
bool DecodeReport(WireReader* r, BugReport* out);

/// Structural crash fingerprint: the wire digest of the canonical report
/// encoding. Two users hitting the same crash produce the same bytes
/// (method, branch log, syscall log, crash site, input shape) and land
/// in the same cluster; any structural difference lands elsewhere.
u64 ReportFingerprint(const BugReport& report);

// ----- Standing shard fleet (v7) -----

/// Attaches one job to an already-joined shard. The standing fleet sends
/// this instead of the one-shot kJob handshake frame; the payload nests
/// the full job codec, so a shard rebuilds the pipeline per job exactly
/// as a one-shot TCP shard would.
struct WireJobBegin {
  u64 job_id = 0;  // Coordinator-local, strictly increasing (diagnostics).
  WireJob job;
};

void EncodeJobBegin(const WireJobBegin& begin, WireWriter* w);
bool DecodeJobBegin(WireReader* r, WireJobBegin* out);

/// Orderly fleet shutdown: no more jobs will follow; the shard exits
/// cleanly instead of treating the closed channel as a lost coordinator.
struct WireJobEnd {
  u64 jobs_served = 0;  // Coordinator's dispatch count (diagnostics).
};

void EncodeJobEnd(const WireJobEnd& end, WireWriter* w);
bool DecodeJobEnd(WireReader* r, WireJobEnd* out);

// ----- Service ingest (v7) -----

/// One bug report submitted to the resident daemon by a tenant.
struct WireReportSubmit {
  std::string tenant;  // Free-form tenant tag; drives admission budgets.
  BugReport report;
};

void EncodeReportSubmit(const WireReportSubmit& submit, WireWriter* w);
bool DecodeReportSubmit(WireReader* r, WireReportSubmit* out);

/// How a submitted report got its verdict (WireReportVerdict::origin).
enum class VerdictOrigin : u8 {
  kFresh = 0,     // This report admitted a new search.
  kAttached = 1,  // Duplicate: attached to an in-flight search.
  kCached = 2,    // Duplicate of an already-solved cluster.
  kRejected = 3,  // Admission refused (queue full / tenant over budget).
};

/// The daemon's answer to one kReportSubmit. For kRejected the nested
/// result is empty; otherwise it is the search's final ReplayResult.
struct WireReportVerdict {
  u64 cluster = 0;  // ReportFingerprint of the submitted report.
  u8 origin = 0;    // VerdictOrigin.
  WireShardResult result;
};

void EncodeReportVerdict(const WireReportVerdict& verdict, WireWriter* w);
bool DecodeReportVerdict(WireReader* r, WireReportVerdict* out);

/// One row of the daemon's cluster table (kHealthStats payload).
struct WireClusterRow {
  u64 fp = 0;
  u8 state = 0;      // 0 = queued, 1 = in-flight, 2 = solved.
  u8 reproduced = 0;  // Meaningful once solved.
  u64 reports = 0;    // Reports that landed in this cluster so far.
};

/// Ceiling on cluster rows a health reply may carry; the daemon sends
/// the most recent rows when its table is larger.
inline constexpr u32 kMaxHealthClusterRows = 4096;

/// Daemon health snapshot: queue depth, cluster table, cache occupancy,
/// fleet liveness — everything the ops side needs to see that the
/// service is ingesting, deduplicating, and keeping its fleet alive.
struct WireHealthStats {
  u64 reports_ingested = 0;
  u64 clusters = 0;
  u64 searches_run = 0;
  u64 duplicates_attached = 0;
  u64 cached_verdicts = 0;
  u64 rejected = 0;
  u64 queue_depth = 0;
  u64 in_flight = 0;
  u64 cache_sat_entries = 0;
  u64 cache_unsat_entries = 0;
  u64 cache_evictions = 0;
  u8 snapshot_loaded = 0;
  u32 fleet_shards = 0;
  u32 fleet_live = 0;
  u64 fleet_jobs = 0;
  std::vector<WireClusterRow> rows;
};

void EncodeHealthStats(const WireHealthStats& stats, WireWriter* w);
bool DecodeHealthStats(WireReader* r, WireHealthStats* out);

/// Re-balance request from a shard whose frontier drained below its
/// watermark. The coordinator relays it to a donor shard verbatim (the
/// requester field routes the eventual export back).
struct WireWorkRequest {
  u32 shard_id = 0;        // Requester (diagnostics; routing is per-channel).
  u32 want = 1;            // Max pendings the requester asks for.
  u64 frontier_size = 0;   // Requester's resident frontier at send time.
  u64 seq = 0;             // Requester-local sequence, echoed by the donor.
};

/// Ceiling on WireWorkRequest::want — a hostile or corrupt request must
/// not make a donor carve up its whole frontier in one frame.
inline constexpr u32 kMaxWorkRequestWant = 4096;

/// Ceilings the kJob config codec enforces on corpus seeds (a listening
/// retrace_shardd decodes them off the network). The coordinator clamps
/// the outgoing config to these before encoding, so an oversized corpus
/// degrades to "ship the first seeds that fit" instead of every shard
/// rejecting the job at decode. The *total* bound matters independently
/// of the per-seed ones: 1024 seeds x 2^20 cells would encode past the
/// frame layer's whole-payload cap and the job would be dropped as
/// corrupt, so the clamp keeps the corpus a small fraction of it
/// (2^22 cells = 32 MiB encoded).
inline constexpr u32 kMaxJobCorpusSeeds = 1024;
inline constexpr u32 kMaxJobCorpusCells = 1u << 20;
inline constexpr u64 kMaxJobCorpusTotalCells = 1ull << 22;

void EncodeWorkRequest(const WireWorkRequest& request, WireWriter* w);
bool DecodeWorkRequest(WireReader* r, WireWorkRequest* out);

/// Batch of frontier entries carved from a donor. Reuses the pending
/// codec entry by entry; an empty batch is a valid "nothing to spare"
/// answer (the requester needs it to re-arm or give up).
///
/// `requester_shard_id`/`seq` echo the WireWorkRequest being answered,
/// so a receiver can tell "the answer to MY outstanding request" from a
/// stale answer to a timed-out one or an unsolicited batch (a carve
/// returned to the fleet because its requester finished): work is
/// always imported, but only a matching echo advances the requester's
/// give-up state machine.
struct WirePendingExport {
  u32 requester_shard_id = 0;
  u64 seq = 0;
  std::vector<PortablePending> pendings;
};

void EncodePendingExport(const WirePendingExport& batch, WireWriter* w);
bool DecodePendingExport(WireReader* r, WirePendingExport* out);

/// v5 liveness beat, sent both ways on the gossip cadence
/// (ReplayConfig::heartbeat_interval_ms). Any frame proves liveness —
/// the beat only exists so an idle channel still carries proof at a
/// bounded interval. `seq` is sender-local and strictly increasing
/// (diagnostics; receivers only care that the frame arrived).
struct WireHeartbeat {
  u64 seq = 0;
};

void EncodeHeartbeat(const WireHeartbeat& beat, WireWriter* w);
bool DecodeHeartbeat(WireReader* r, WireHeartbeat* out);

// ----- Transport -----

/// \brief One end of a coordinator<->shard socketpair.
///
/// Owns the fd (closed on destruction). Receives are poll-driven and
/// reassembled by a FrameParser; counts raw bytes both ways for the
/// honest wire-overhead report in ReplayStats. Not thread-safe: one
/// thread per channel end.
///
/// Two send disciplines, chosen so the two ends can never deadlock on
/// full socket buffers: the shard end uses blocking Send() (full write,
/// EINTR-safe, SIGPIPE suppressed), while the coordinator end uses
/// Queue() — frames append to an in-memory backlog flushed
/// opportunistically (non-blocking) on every Queue()/Poll(), so the
/// relay loop always returns to reading. With one side guaranteed to
/// keep draining, the other side's blocking writes always complete.
/// The virtual methods exist for exactly one subclass — the
/// deterministic fault-injecting decorator of src/dist/fault.h, which
/// the coordinator wraps around transport channels under
/// ReplayConfig::fault_spec. Production paths always hold the base.
class WireChannel {
 public:
  explicit WireChannel(int fd) : fd_(fd) {}
  WireChannel(const WireChannel&) = delete;
  WireChannel& operator=(const WireChannel&) = delete;
  WireChannel(WireChannel&& other) noexcept;
  virtual ~WireChannel();

  /// Frames and sends one message, blocking until fully written (any
  /// queued backlog flushes first, preserving frame order). False on a
  /// broken peer.
  virtual bool Send(WireMsg type, const std::vector<u8>& payload);

  /// Frames one message onto the non-blocking send backlog and flushes
  /// whatever the socket accepts right now. When `droppable` and the
  /// backlog is over its cap, the frame is discarded instead (gossip is
  /// best-effort: a dropped verdict batch only costs a re-prove);
  /// non-droppable frames are queued regardless. False when the frame
  /// was dropped or the peer is broken.
  virtual bool Queue(WireMsg type, const std::vector<u8>& payload, bool droppable);

  enum class RecvStatus { kOk, kClosed, kCorrupt, kVersionMismatch };
  /// Flushes queued sends, then waits up to `timeout_ms` for readable
  /// data and appends every frame that completed to `out`. kOk with an
  /// empty append simply means "nothing yet".
  virtual RecvStatus Poll(int timeout_ms, std::vector<WireFrame>* out);

  virtual u64 tx_bytes() const { return tx_; }
  virtual u64 rx_bytes() const { return rx_; }
  virtual u64 dropped_frames() const { return dropped_; }
  virtual int fd() const { return fd_; }

 private:
  // Writes as much of `out_` as the socket accepts; `blocking` waits for
  // all of it. Marks the channel broken on a hard error.
  bool Flush(bool blocking);

  int fd_ = -1;
  bool broken_ = false;
  FrameParser parser_;
  std::vector<u8> out_;
  size_t out_off_ = 0;
  u64 tx_ = 0;
  u64 rx_ = 0;
  u64 dropped_ = 0;
};

}  // namespace retrace

#endif  // RETRACE_DIST_WIRE_H_
