// Shard-process side of the distributed replay scheduler.
//
// A shard is forked by the coordinator (src/dist/coordinator.h) and
// inherits the compiled module, the instrumentation plan and the bug
// report by copy-on-write memory — only frontier entries, slice verdicts
// and the final result cross the process boundary, over the wire format
// of src/dist/wire.h.
#ifndef RETRACE_DIST_SHARD_H_
#define RETRACE_DIST_SHARD_H_

#include "src/replay/replay_engine.h"

namespace retrace {

/// \brief Runs one shard to completion over the coordinator socket `fd`.
///
/// Protocol, in order: receive kHello (refusing version mismatches at the
/// framing layer), receive `pending_count` kPending frames, receive
/// kStart, then search. While searching, a gossip pump on the main thread
/// ships freshly proved slice verdicts to the coordinator and merges
/// verdict batches gossiped back from other shards; a kStop frame cancels
/// the search (first-crash-wins). Ends by sending kResult.
///
/// Takes ownership of `fd`. Never throws and never writes to stdio — the
/// caller is a forked child that must _exit() immediately after. Returns
/// false when the protocol broke down (coordinator vanished, corrupt or
/// version-skewed frames).
bool RunShard(const IrModule& module, const InstrumentationPlan& plan, const BugReport& report,
              const ReplayConfig& config, u32 shard_id, int fd);

}  // namespace retrace

#endif  // RETRACE_DIST_SHARD_H_
