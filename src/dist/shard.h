// Shard-process side of the distributed replay scheduler.
//
// A shard joins the fleet over either transport (src/dist/transport.h):
//   - forked by the coordinator over a socketpair, inheriting the
//     compiled module, the instrumentation plan and the bug report by
//     copy-on-write memory (RunShard), or
//   - connected over TCP — possibly from another host — in which case it
//     first handshakes kJoin/kJob and rebuilds the module from the
//     program sources the job ships (ServeShardJob; lowering is
//     deterministic, so branch ids match the coordinator's).
// Either way, only frontier entries, slice verdicts, re-balanced
// pendings and the final result cross the process boundary, over the
// wire format of src/dist/wire.h.
#ifndef RETRACE_DIST_SHARD_H_
#define RETRACE_DIST_SHARD_H_

#include <string>

#include "src/dist/wire.h"
#include "src/replay/replay_engine.h"

namespace retrace {

/// Sentinel for RunShardOn: accept whatever shard id the coordinator's
/// kHello assigns (a TCP joiner does not know its slot in advance; a
/// forked child does and passes its slot to catch cross-wiring bugs).
inline constexpr u32 kAnyShardId = 0xffffffffu;

/// How a shard run ended, from the shard's point of view. The
/// distinction matters to daemons (tools/retrace_shardd): a lost
/// coordinator is an operational event worth its own exit code — the
/// daemon can go back to listening — while a protocol error means one
/// of the two builds is wrong and retrying is pointless.
enum class ShardRunStatus {
  kOk,               // Job ran to completion and the result was delivered.
  kProtocolError,    // Corrupt/version-skewed frames or a broken handshake.
  kCoordinatorLost,  // Channel closed or went silent past the heartbeat
                     // deadline mid-job.
};

/// \brief Runs one shard to completion over an established channel.
///
/// Protocol, in order: receive kHello (refusing version mismatches at the
/// framing layer), receive `pending_count` kPending frames, receive
/// kStart, then search. While searching, a gossip pump on the main thread
/// (cadence ReplayConfig::gossip_interval_ms) ships freshly proved slice
/// verdicts to the coordinator, merges verdict batches gossiped back from
/// other shards, and — when the fleet has more than one shard — runs the
/// re-balance protocol: kWorkRequest when the local frontier drains below
/// its watermark, kPendingExport answers carved from the frontier when a
/// starved peer asks. A kStop frame cancels the search (first-crash-wins).
/// Ends by sending kResult.
///
/// `preread` holds frames the caller already pulled off the channel
/// (ServeShardJob may read kPending/kHello bytes bundled behind kJob);
/// they are served before any new poll, preserving stream order.
///
/// `external_cache` lets a standing shard (ServeShardJobs) keep one
/// slice cache alive across jobs: when non-null (and the job enables
/// solver_cache) the run uses it instead of creating a private one, so
/// a later report whose slices a prior report already proved starts
/// warm. The caller owns the cache and must have journaling enabled.
///
/// Liveness: while searching, the shard rides a kHeartbeat on the gossip
/// pump every ReplayConfig::heartbeat_interval_ms, and treats *any*
/// received frame as proof the coordinator lives. Silence longer than
/// ReplayConfig::heartbeat_timeout_ms (or a closed channel) means the
/// coordinator is gone: the search cancels and kCoordinatorLost is
/// returned, so a `--listen` daemon never orphans on a dead fleet.
///
/// Never throws.
ShardRunStatus RunShardOn(WireChannel& chan, const IrModule& module,
                          const InstrumentationPlan& plan, const BugReport& report,
                          const ReplayConfig& config, u32 expected_shard_id,
                          std::vector<WireFrame> preread = {},
                          SliceCache* external_cache = nullptr);

/// \brief Fork-transport entry point: wraps `fd` and runs RunShardOn.
///
/// Takes ownership of `fd`. Never writes to stdio — the caller is a
/// forked child that must _exit() immediately after, which is also why
/// this collapses the run status to a bool exit code.
bool RunShard(const IrModule& module, const InstrumentationPlan& plan, const BugReport& report,
              const ReplayConfig& config, u32 shard_id, int fd);

/// \brief TCP-transport entry point: serves one job on a connected
/// coordinator socket.
///
/// Sends kJoin (tagged `ident`, carrying `token` for the listener's
/// shared-secret check), receives kJob, rebuilds the pipeline from the
/// shipped program sources, then runs RunShardOn. When
/// `worker_override` > 0 it replaces the job's num_workers (a remote
/// host knows its own core count better than the coordinator does).
/// Takes ownership of `fd`; never writes to stdio (callers log). Used by
/// tools/retrace_shardd and the TCP transport's loopback self-spawn.
ShardRunStatus ServeShardJob(int fd, const std::string& ident, u32 worker_override = 0,
                             const std::string& token = "");

/// \brief Standing-fleet entry point: serves jobs on a connected
/// coordinator socket until the fleet says goodbye.
///
/// Sends kJoin once, then loops: wait (indefinitely — the fleet owns the
/// lifecycle) for kJobBegin, rebuild the pipeline for that job, run
/// RunShardOn, repeat. kJobEnd — or a channel closed after at least one
/// served job — is an orderly shutdown (kOk). One slice cache persists
/// across jobs (sized by the first cache-enabled job), which is where
/// cross-report cache warmth on a shard fleet comes from. Also accepts a
/// legacy one-shot kJob as "serve exactly one job, then exit", so
/// retrace_shardd speaks both protocols with one loop. Relay traffic
/// that arrives between jobs (heartbeats, another job's tail gossip) is
/// discarded; work requests get an honest empty answer.
ShardRunStatus ServeShardJobs(int fd, const std::string& ident, u32 worker_override = 0,
                              const std::string& token = "");

}  // namespace retrace

#endif  // RETRACE_DIST_SHARD_H_
