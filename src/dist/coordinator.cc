#include "src/dist/coordinator.h"

#include <poll.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "src/dist/shard.h"
#include "src/dist/transport.h"
#include "src/dist/wire.h"

namespace retrace {
namespace {

// Runaway backstop for shard processes: one process per frontier
// partition stops paying off long before this.
constexpr u32 kMaxShards = 64;

// Grace period past the configured wall budget before the coordinator
// hard-kills shards that stopped responding.
constexpr i64 kKillGraceMs = 30'000;

struct ShardProc {
  std::unique_ptr<WireChannel> chan;
  bool done = false;
  bool have_result = false;
  WireShardResult res;
};

// Counts the verdicts in a batch without decoding it (no allocations on
// the relay hot path — the payload is forwarded verbatim anyway).
u64 CountVerdicts(const WireFrame& frame) {
  WireReader r(frame.payload.data(), frame.payload.size());
  u32 sat_count = 0;
  if (!r.U32(&sat_count) || !r.FitsCount(sat_count, 8 + 4)) {
    return 0;
  }
  for (u32 i = 0; i < sat_count; ++i) {
    u64 key = 0;
    u32 model_count = 0;
    if (!r.U64(&key) || !r.U32(&model_count) || !r.Skip(static_cast<size_t>(model_count) * 12)) {
      return 0;
    }
  }
  u32 unsat_count = 0;
  if (!r.U32(&unsat_count) || !r.FitsCount(unsat_count, 16)) {
    return 0;
  }
  return static_cast<u64>(sat_count) + unsat_count;
}

// Builds the transport selected by the config. The fork transport runs
// RunShard in each child (module/plan/report inherited copy-on-write);
// the TCP transport ships the whole job — program sources included — to
// whoever connects, and self-spawns loopback joiners when no remote
// daemon is configured.
std::unique_ptr<Transport> MakeTransport(const IrModule& module, const InstrumentationPlan& plan,
                                         const BugReport& report, const ReplayConfig& shard_cfg,
                                         const ReplayConfig& config) {
  if (config.transport == ReplayTransport::kTcp) {
    WireJob job;
    job.config = shard_cfg;
    job.plan = plan;
    job.report = report;
    WireWriter w;
    EncodeJob(job, &w);
    return std::make_unique<TcpTransport>(
        config.tcp_listen, config.shard_endpoints, w.Take(),
        [](const std::string& endpoint) {
          const int fd = TcpConnect(endpoint);
          return fd >= 0 && ServeShardJob(fd, "loopback-selfspawn");
        });
  }
  return std::make_unique<LocalForkTransport>([&module, &plan, &report, shard_cfg](
                                                  u32 slot, int fd) {
    return RunShard(module, plan, report, shard_cfg, slot, fd);
  });
}

}  // namespace

ReplayResult ReproduceDistributed(const IrModule& module, const InstrumentationPlan& plan,
                                  const BugReport& report, const ReplayConfig& user_config) {
  // TCP shards rebuild the module from shipped sources; without them
  // every joiner would pass the handshake and then reject the job one
  // by one, silently collapsing the search to the scout. Fall back to
  // the fork transport (same semantics, this host only) and say so —
  // Pipeline::Reproduce fills the sources automatically, this path is
  // direct ReplayEngine users.
  ReplayConfig config = user_config;
  if (config.transport == ReplayTransport::kTcp && config.program.app.empty()) {
    std::fprintf(stderr,
                 "[dist] tcp transport requires ReplayConfig::program sources "
                 "(Pipeline::Reproduce fills them); using fork transport instead\n");
    config.transport = ReplayTransport::kFork;
  }
  const auto t0 = std::chrono::steady_clock::now();
  auto elapsed_seconds = [&t0] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  };
  const u32 num_shards = std::clamp(config.num_shards, 2u, kMaxShards);

  // ----- 1. Scout: grow (or finish) the frontier in-process. -----
  ExprArena arena;
  ReplayEngine scout(module, plan, report, &arena);
  ReplayConfig scout_cfg = config;
  scout_cfg.num_shards = 1;
  const u64 scout_cap = std::max<u64>(4, 2 * num_shards);
  ReplayEngine::HarvestOutput harvest =
      scout.HarvestFrontier(scout_cfg, std::min(scout_cap, config.max_runs),
                            /*target_frontier=*/4 * num_shards);
  ReplayResult result = std::move(harvest.result);
  result.stats.harvest_runs = result.stats.runs;
  if (result.reproduced || result.stats.runs >= config.max_runs ||
      harvest.frontier.empty()) {
    // Solved it, exhausted the run cap, or there is nothing to shard
    // (frontier drained — the search space is smaller than the scout).
    result.budget_exhausted = !result.reproduced;
    result.wall_seconds = elapsed_seconds();
    return result;
  }
  // Shards re-aggregate their own per-worker view; the scout's counters
  // stay in the aggregate, labelled by harvest_runs.
  result.stats.per_worker.clear();

  // ----- 2. Partition: deepest-first, dealt round-robin. -----
  std::vector<PortablePending> frontier = std::move(harvest.frontier);
  std::stable_sort(frontier.begin(), frontier.end(),
                   [](const PortablePending& a, const PortablePending& b) {
                     return a.priority > b.priority;
                   });
  std::vector<std::vector<PortablePending>> parts(num_shards);
  for (size_t i = 0; i < frontier.size(); ++i) {
    parts[i % num_shards].push_back(std::move(frontier[i]));
  }

  // Per-shard budget: the remaining run cap and step budget divided
  // evenly; the wall clock is global, minus what the scout spent.
  ReplayConfig shard_cfg = config;
  shard_cfg.num_shards = 1;
  // Clamp the corpus to what the kJob codec accepts, or every shard
  // would reject the job at decode. Applied to the fork path too so the
  // two transports search identically.
  if (shard_cfg.corpus_seeds.size() > kMaxJobCorpusSeeds) {
    std::fprintf(stderr, "[dist] corpus_seeds clamped from %zu to %u (wire job ceiling)\n",
                 shard_cfg.corpus_seeds.size(), kMaxJobCorpusSeeds);
    shard_cfg.corpus_seeds.resize(kMaxJobCorpusSeeds);
  }
  u64 corpus_cells = 0;
  for (size_t i = 0; i < shard_cfg.corpus_seeds.size();) {
    const size_t cells = shard_cfg.corpus_seeds[i].size();
    if (cells > kMaxJobCorpusCells || corpus_cells + cells > kMaxJobCorpusTotalCells) {
      std::fprintf(stderr,
                   "[dist] corpus seed %zu dropped: %zu cells over the wire ceiling "
                   "(per-seed or total)\n",
                   i, cells);
      shard_cfg.corpus_seeds.erase(shard_cfg.corpus_seeds.begin() +
                                   static_cast<std::ptrdiff_t>(i));
    } else {
      corpus_cells += cells;
      ++i;
    }
  }
  shard_cfg.max_runs = std::max<u64>(1, (config.max_runs - result.stats.runs) / num_shards);
  shard_cfg.total_steps = std::max<u64>(1, config.total_steps / num_shards);
  if (config.wall_ms > 0) {
    shard_cfg.wall_ms =
        std::max<i64>(1, config.wall_ms - static_cast<i64>(elapsed_seconds() * 1000.0));
  }

  // ----- 3. Spawn/connect the shard fleet (transport-agnostic). -----
  std::unique_ptr<Transport> transport = MakeTransport(module, plan, report, shard_cfg, config);
  std::vector<std::unique_ptr<WireChannel>> channels = transport->Start(num_shards);
  std::vector<ShardProc> procs(num_shards);
  for (u32 s = 0; s < num_shards; ++s) {
    if (channels[s] != nullptr) {
      procs[s].chan = std::move(channels[s]);
    } else {
      procs[s].done = true;
    }
  }

  // A shard that failed to spawn must not silently orphan its frontier
  // partition (the reproducing input may live only in that subtree):
  // re-deal dead shards' entries round-robin over the live ones.
  std::vector<u32> live;
  for (u32 s = 0; s < num_shards; ++s) {
    if (!procs[s].done && procs[s].chan != nullptr) {
      live.push_back(s);
    }
  }
  if (live.empty()) {
    // The whole fleet failed to spawn: the scout's result is all we have.
    transport->Reap();
    result.budget_exhausted = !result.reproduced;
    result.wall_seconds = elapsed_seconds();
    return result;
  }
  if (live.size() < num_shards) {
    size_t deal = 0;
    for (u32 s = 0; s < num_shards; ++s) {
      if (procs[s].chan != nullptr && !procs[s].done) {
        continue;
      }
      for (PortablePending& pending : parts[s]) {
        parts[live[deal++ % live.size()]].push_back(std::move(pending));
      }
      parts[s].clear();
    }
  }

  // Handshake, pendings first: shards buffer kPending frames in any
  // order and only reconcile the count against kHello at kStart, so the
  // coordinator can still re-deal a partition whose shard breaks during
  // the sends — the same no-orphaned-subtree invariant as above, for
  // failures detected after fork. All coordinator traffic is queued
  // non-blocking (flushed on every Poll), so the relay loop below can
  // never stall in a write while a shard stalls writing to us.
  // Sweeps converge: a sweep only repeats after a send failure, and each
  // failure permanently removes one shard from the rotation.
  std::vector<u64> pendings_queued(num_shards, 0);
  for (bool redealt = true; redealt;) {
    redealt = false;
    for (const u32 s : live) {
      if (procs[s].done) {
        continue;
      }
      WireChannel& chan = *procs[s].chan;
      while (pendings_queued[s] < parts[s].size()) {
        WireWriter w;
        EncodePending(parts[s][pendings_queued[s]], &w);
        if (!chan.Queue(WireMsg::kPending, w.buf(), /*droppable=*/false)) {
          procs[s].done = true;
          // Undelivered remainder re-deals round-robin to the shards
          // still standing; the next sweep ships it.
          std::vector<u32> targets;
          for (const u32 other : live) {
            if (other != s && !procs[other].done) {
              targets.push_back(other);
            }
          }
          for (size_t j = pendings_queued[s], deal = 0; j < parts[s].size() && !targets.empty();
               ++j, ++deal) {
            parts[targets[deal % targets.size()]].push_back(std::move(parts[s][j]));
            redealt = true;
          }
          parts[s].clear();
          break;
        }
        ++pendings_queued[s];
      }
    }
  }
  for (const u32 s : live) {
    if (procs[s].done) {
      continue;
    }
    WireChannel& chan = *procs[s].chan;
    WireWriter hello;
    EncodeHello(WireHello{s, num_shards, static_cast<u32>(pendings_queued[s])}, &hello);
    if (!chan.Queue(WireMsg::kHello, hello.buf(), /*droppable=*/false) ||
        !chan.Queue(WireMsg::kStart, {}, /*droppable=*/false)) {
      procs[s].done = true;
    }
  }

  // ----- 4. Relay loop: gossip verdicts, route re-balance traffic,
  // watch for the first crash. -----
  bool have_winner = false;
  u32 winner = 0;
  u64 verdicts_gossiped = 0;
  auto broadcast_stop = [&](u32 except) {
    for (u32 s = 0; s < num_shards; ++s) {
      if (s != except && !procs[s].done && procs[s].chan != nullptr) {
        procs[s].chan->Queue(WireMsg::kStop, {}, /*droppable=*/false);
      }
    }
  };

  // Re-balance routing: a starved shard's kWorkRequest is forwarded to a
  // donor (round-robin over the other live shards); the donor's
  // kPendingExport answer routes back to whoever asked it first
  // (per-donor FIFO — a donor answers requests in arrival order). The
  // FIFO records the request's sequence number so answers the
  // coordinator fabricates on a dead donor's behalf still carry the
  // echo the requester's state machine matches on.
  struct PendingRequest {
    u32 requester = 0;
    u64 seq = 0;
  };
  std::vector<std::deque<PendingRequest>> donor_queue(num_shards);
  u32 donor_rr = 0;
  auto send_empty_export = [&](const PendingRequest& request) {
    if (procs[request.requester].done || procs[request.requester].chan == nullptr) {
      return;
    }
    WirePendingExport empty;
    empty.requester_shard_id = request.requester;
    empty.seq = request.seq;
    WireWriter w;
    EncodePendingExport(empty, &w);
    // Liveness, not best-effort: the requester's give-up counter waits
    // on hearing an answer.
    procs[request.requester].chan->Queue(WireMsg::kPendingExport, w.buf(),
                                         /*droppable=*/false);
  };
  auto route_work_request = [&](u32 requester, const WireFrame& frame) {
    WireWorkRequest request;
    WireReader r(frame.payload.data(), frame.payload.size());
    if (!DecodeWorkRequest(&r, &request)) {
      return;  // Digest-checked upstream; a malformed request is a peer bug.
    }
    const PendingRequest pending{requester, request.seq};
    for (u32 step = 0; step < num_shards; ++step) {
      const u32 donor = (donor_rr + step) % num_shards;
      if (donor == requester || procs[donor].done || procs[donor].chan == nullptr) {
        continue;
      }
      donor_rr = donor + 1;
      donor_queue[donor].push_back(pending);
      procs[donor].chan->Queue(WireMsg::kWorkRequest, frame.payload, /*droppable=*/false);
      return;
    }
    send_empty_export(pending);  // Nobody left to donate.
  };
  // A shard that finishes (or dies) while peers wait on it as a donor
  // must not leave them hanging: answer on its behalf.
  auto flush_donor_queue = [&](u32 donor) {
    for (const PendingRequest& request : donor_queue[donor]) {
      send_empty_export(request);
    }
    donor_queue[donor].clear();
  };
  // Re-homes a batch of real pendings whose addressee is gone: any live
  // shard's pump imports unsolicited batches. Only when nobody at all
  // is left does the carve die (the fleet is ending anyway).
  auto reroute_export = [&](u32 from, const WireFrame& frame) {
    for (u32 step = 0; step < num_shards; ++step) {
      const u32 target = (donor_rr + step) % num_shards;
      if (target == from || procs[target].done || procs[target].chan == nullptr) {
        continue;
      }
      donor_rr = target + 1;
      procs[target].chan->Queue(WireMsg::kPendingExport, frame.payload, /*droppable=*/false);
      return;
    }
    // No peer left: hand it back to the sender if it still searches
    // (e.g. a donor whose requester died in a 2-shard fleet).
    if (!procs[from].done && procs[from].chan != nullptr) {
      procs[from].chan->Queue(WireMsg::kPendingExport, frame.payload, /*droppable=*/false);
    }
  };
  // Reads just enough of a kPendingExport payload to tell whether it
  // carries any pendings (re-routing empty answers would be noise).
  auto export_carries_work = [](const WireFrame& frame) {
    WireReader r(frame.payload.data(), frame.payload.size());
    u32 requester = 0;
    u64 seq = 0;
    u32 count = 0;
    return r.U32(&requester) && r.U64(&seq) && r.U32(&count) && count > 0;
  };

  const i64 kill_after_ms = config.wall_ms > 0 ? config.wall_ms + kKillGraceMs : -1;
  std::vector<struct pollfd> pfds;
  for (;;) {
    // One poll() over every open channel (not a per-channel timeout, so
    // relay latency stays flat in the shard count), then a non-blocking
    // drain+flush per channel.
    pfds.clear();
    for (u32 s = 0; s < num_shards; ++s) {
      if (!procs[s].done && procs[s].chan != nullptr) {
        struct pollfd pfd = {};
        pfd.fd = procs[s].chan->fd();
        pfd.events = POLLIN;
        pfds.push_back(pfd);
      }
    }
    if (!pfds.empty()) {
      ::poll(pfds.data(), pfds.size(), 10);
    }
    bool any_open = false;
    for (u32 s = 0; s < num_shards; ++s) {
      ShardProc& proc = procs[s];
      if (proc.done || proc.chan == nullptr) {
        continue;
      }
      any_open = true;
      std::vector<WireFrame> frames;
      const WireChannel::RecvStatus status = proc.chan->Poll(0, &frames);
      for (const WireFrame& frame : frames) {
        if (frame.type == WireMsg::kVerdicts) {
          verdicts_gossiped += CountVerdicts(frame);
          for (u32 peer = 0; peer < num_shards; ++peer) {
            if (peer != s && !procs[peer].done && procs[peer].chan != nullptr) {
              // Best-effort: a relay dropped under backpressure only
              // costs that peer a re-prove.
              procs[peer].chan->Queue(WireMsg::kVerdicts, frame.payload, /*droppable=*/true);
            }
          }
        } else if (frame.type == WireMsg::kWorkRequest) {
          route_work_request(s, frame);
        } else if (frame.type == WireMsg::kPendingExport) {
          if (!donor_queue[s].empty()) {
            // Donor answered: forward verbatim to the requester at the
            // head of this donor's FIFO. A requester that finished
            // while the answer was in flight — common when a frontier
            // drains moments before its crash lands — must not take
            // the carve down with it: re-home real pendings to any
            // live shard (pumps import unsolicited batches).
            const PendingRequest request = donor_queue[s].front();
            donor_queue[s].pop_front();
            if (!procs[request.requester].done &&
                procs[request.requester].chan != nullptr) {
              procs[request.requester].chan->Queue(WireMsg::kPendingExport, frame.payload,
                                                   /*droppable=*/false);
            } else if (export_carries_work(frame)) {
              reroute_export(s, frame);
            }
          } else if (export_carries_work(frame)) {
            // Unsolicited: a finishing shard returned a carve it could
            // no longer use. Keep the work in the fleet.
            reroute_export(s, frame);
          }
        } else if (frame.type == WireMsg::kResult) {
          WireReader r(frame.payload.data(), frame.payload.size());
          if (DecodeShardResult(&r, &proc.res)) {
            proc.have_result = true;
            if (proc.res.result.reproduced && !have_winner) {
              have_winner = true;
              winner = s;
              broadcast_stop(s);
            }
          }
          proc.done = true;
        }
      }
      if (!proc.done && status != WireChannel::RecvStatus::kOk) {
        proc.done = true;  // Shard died or its stream is untrustworthy.
      }
      if (proc.done) {
        flush_donor_queue(s);
      }
    }
    if (!any_open) {
      break;
    }
    if (kill_after_ms > 0 && elapsed_seconds() * 1000.0 > static_cast<double>(kill_after_ms)) {
      transport->Kill();
      for (ShardProc& proc : procs) {
        proc.done = true;
      }
      break;
    }
  }
  transport->Reap();

  // ----- 5. Shard-aware aggregation. -----
  for (u32 s = 0; s < num_shards; ++s) {
    const ShardProc& proc = procs[s];
    ReplayShardStats shard_stats;
    shard_stats.shard_id = s;
    if (proc.chan != nullptr) {
      shard_stats.wire_bytes_tx = proc.chan->tx_bytes();
      shard_stats.wire_bytes_rx = proc.chan->rx_bytes();
      result.stats.wire_bytes_tx += shard_stats.wire_bytes_tx;
      result.stats.wire_bytes_rx += shard_stats.wire_bytes_rx;
    }
    if (proc.have_result) {
      const ReplayStats& ss = proc.res.result.stats;
      shard_stats.reproduced = proc.res.result.reproduced;
      shard_stats.runs = ss.runs;
      shard_stats.solver_calls = ss.solver_calls;
      shard_stats.pendings_seeded = proc.res.pendings_seeded;
      shard_stats.verdicts_published = proc.res.verdicts_published;
      shard_stats.verdicts_imported = proc.res.verdicts_imported;
      shard_stats.pendings_exported = ss.pendings_exported;
      shard_stats.pendings_imported = ss.pendings_imported;
      shard_stats.rebalance_rounds = ss.rebalance_rounds;
      shard_stats.pendings_pruned = ss.pendings_pruned;
      shard_stats.wall_seconds = proc.res.result.wall_seconds;
      result.stats.runs += ss.runs;
      result.stats.solver_calls += ss.solver_calls;
      result.stats.aborts_forced_direction += ss.aborts_forced_direction;
      result.stats.aborts_concrete_mismatch += ss.aborts_concrete_mismatch;
      result.stats.aborts_log_exhausted += ss.aborts_log_exhausted;
      result.stats.crashes_wrong_site += ss.crashes_wrong_site;
      result.stats.steals += ss.steals;
      result.stats.dedup_skips += ss.dedup_skips;
      result.stats.cancelled_runs += ss.cancelled_runs;
      result.stats.slices_solved += ss.slices_solved;
      result.stats.slice_sat_hits += ss.slice_sat_hits;
      result.stats.slice_unsat_hits += ss.slice_unsat_hits;
      result.stats.slice_evictions += ss.slice_evictions;
      result.stats.pendings_exported += ss.pendings_exported;
      result.stats.pendings_imported += ss.pendings_imported;
      result.stats.rebalance_rounds += ss.rebalance_rounds;
      result.stats.pendings_pruned += ss.pendings_pruned;
      result.stats.corpus_runs += ss.corpus_runs;
      result.stats.promotions += ss.promotions;
      result.stats.failure_profile.Merge(ss.failure_profile);
      for (size_t d = 0; d < kNumDisciplines; ++d) {
        result.stats.discipline_runs[d] += ss.discipline_runs[d];
        result.stats.discipline_on_log[d] += ss.discipline_on_log[d];
      }
      result.stats.pending_peak = std::max(result.stats.pending_peak, ss.pending_peak);
      result.stats.per_worker.insert(result.stats.per_worker.end(), ss.per_worker.begin(),
                                     ss.per_worker.end());
    }
    result.stats.per_shard.push_back(shard_stats);
  }
  result.stats.verdicts_gossiped = verdicts_gossiped;
  if (have_winner) {
    const ReplayResult& won = procs[winner].res.result;
    result.reproduced = true;
    result.witness_argv = won.witness_argv;
    result.witness_cells = won.witness_cells;
    result.crash = won.crash;
  }
  result.budget_exhausted = !result.reproduced;
  result.wall_seconds = elapsed_seconds();
  return result;
}

}  // namespace retrace
