#include "src/dist/coordinator.h"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <utility>
#include <vector>

#include "src/dist/shard.h"
#include "src/dist/wire.h"

namespace retrace {
namespace {

// Runaway backstop for shard processes: one process per frontier
// partition stops paying off long before this.
constexpr u32 kMaxShards = 64;

// Grace period past the configured wall budget before the coordinator
// hard-kills shards that stopped responding.
constexpr i64 kKillGraceMs = 30'000;

struct ShardProc {
  pid_t pid = -1;
  std::unique_ptr<WireChannel> chan;
  bool done = false;
  bool have_result = false;
  WireShardResult res;
};

// Counts the verdicts in a batch without decoding it (no allocations on
// the relay hot path — the payload is forwarded verbatim anyway).
u64 CountVerdicts(const WireFrame& frame) {
  WireReader r(frame.payload.data(), frame.payload.size());
  u32 sat_count = 0;
  if (!r.U32(&sat_count) || !r.FitsCount(sat_count, 8 + 4)) {
    return 0;
  }
  for (u32 i = 0; i < sat_count; ++i) {
    u64 key = 0;
    u32 model_count = 0;
    if (!r.U64(&key) || !r.U32(&model_count) || !r.Skip(static_cast<size_t>(model_count) * 12)) {
      return 0;
    }
  }
  u32 unsat_count = 0;
  if (!r.U32(&unsat_count) || !r.FitsCount(unsat_count, 16)) {
    return 0;
  }
  return static_cast<u64>(sat_count) + unsat_count;
}

}  // namespace

ReplayResult ReproduceDistributed(const IrModule& module, const InstrumentationPlan& plan,
                                  const BugReport& report, const ReplayConfig& config) {
  const auto t0 = std::chrono::steady_clock::now();
  auto elapsed_seconds = [&t0] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  };
  const u32 num_shards = std::clamp(config.num_shards, 2u, kMaxShards);

  // ----- 1. Scout: grow (or finish) the frontier in-process. -----
  ExprArena arena;
  ReplayEngine scout(module, plan, report, &arena);
  ReplayConfig scout_cfg = config;
  scout_cfg.num_shards = 1;
  const u64 scout_cap = std::max<u64>(4, 2 * num_shards);
  ReplayEngine::HarvestOutput harvest =
      scout.HarvestFrontier(scout_cfg, std::min(scout_cap, config.max_runs),
                            /*target_frontier=*/4 * num_shards);
  ReplayResult result = std::move(harvest.result);
  result.stats.harvest_runs = result.stats.runs;
  if (result.reproduced || result.stats.runs >= config.max_runs ||
      harvest.frontier.empty()) {
    // Solved it, exhausted the run cap, or there is nothing to shard
    // (frontier drained — the search space is smaller than the scout).
    result.budget_exhausted = !result.reproduced;
    result.wall_seconds = elapsed_seconds();
    return result;
  }
  // Shards re-aggregate their own per-worker view; the scout's counters
  // stay in the aggregate, labelled by harvest_runs.
  result.stats.per_worker.clear();

  // ----- 2. Partition: deepest-first, dealt round-robin. -----
  std::vector<PortablePending> frontier = std::move(harvest.frontier);
  std::stable_sort(frontier.begin(), frontier.end(),
                   [](const PortablePending& a, const PortablePending& b) {
                     return a.priority > b.priority;
                   });
  std::vector<std::vector<PortablePending>> parts(num_shards);
  for (size_t i = 0; i < frontier.size(); ++i) {
    parts[i % num_shards].push_back(std::move(frontier[i]));
  }

  // Per-shard budget: the remaining run cap and step budget divided
  // evenly; the wall clock is global, minus what the scout spent.
  ReplayConfig shard_cfg = config;
  shard_cfg.num_shards = 1;
  shard_cfg.max_runs = std::max<u64>(1, (config.max_runs - result.stats.runs) / num_shards);
  shard_cfg.total_steps = std::max<u64>(1, config.total_steps / num_shards);
  if (config.wall_ms > 0) {
    shard_cfg.wall_ms =
        std::max<i64>(1, config.wall_ms - static_cast<i64>(elapsed_seconds() * 1000.0));
  }

  // ----- 3. Fork the shard fleet. -----
  std::fflush(stdout);
  std::fflush(stderr);
  std::vector<ShardProc> procs(num_shards);
  std::vector<int> parent_fds;
  for (u32 s = 0; s < num_shards; ++s) {
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
      procs[s].done = true;
      continue;
    }
    const pid_t pid = ::fork();
    if (pid == 0) {
      // Child: drop every coordinator-side fd, run the shard, and leave
      // without touching the inherited process state (atexit, stdio).
      ::close(fds[0]);
      for (const int parent_fd : parent_fds) {
        ::close(parent_fd);
      }
      const bool ok = RunShard(module, plan, report, shard_cfg, s, fds[1]);
      ::_exit(ok ? 0 : 1);
    }
    ::close(fds[1]);
    if (pid < 0) {
      ::close(fds[0]);
      procs[s].done = true;
      continue;
    }
    parent_fds.push_back(fds[0]);
    procs[s].pid = pid;
    procs[s].chan = std::make_unique<WireChannel>(fds[0]);
  }

  // A shard that failed to spawn must not silently orphan its frontier
  // partition (the reproducing input may live only in that subtree):
  // re-deal dead shards' entries round-robin over the live ones.
  std::vector<u32> live;
  for (u32 s = 0; s < num_shards; ++s) {
    if (!procs[s].done && procs[s].chan != nullptr) {
      live.push_back(s);
    }
  }
  if (live.empty()) {
    // The whole fleet failed to spawn: the scout's result is all we have.
    result.budget_exhausted = !result.reproduced;
    result.wall_seconds = elapsed_seconds();
    return result;
  }
  if (live.size() < num_shards) {
    size_t deal = 0;
    for (u32 s = 0; s < num_shards; ++s) {
      if (procs[s].chan != nullptr && !procs[s].done) {
        continue;
      }
      for (PortablePending& pending : parts[s]) {
        parts[live[deal++ % live.size()]].push_back(std::move(pending));
      }
      parts[s].clear();
    }
  }

  // Handshake, pendings first: shards buffer kPending frames in any
  // order and only reconcile the count against kHello at kStart, so the
  // coordinator can still re-deal a partition whose shard breaks during
  // the sends — the same no-orphaned-subtree invariant as above, for
  // failures detected after fork. All coordinator traffic is queued
  // non-blocking (flushed on every Poll), so the relay loop below can
  // never stall in a write while a shard stalls writing to us.
  // Sweeps converge: a sweep only repeats after a send failure, and each
  // failure permanently removes one shard from the rotation.
  std::vector<u64> pendings_queued(num_shards, 0);
  for (bool redealt = true; redealt;) {
    redealt = false;
    for (const u32 s : live) {
      if (procs[s].done) {
        continue;
      }
      WireChannel& chan = *procs[s].chan;
      while (pendings_queued[s] < parts[s].size()) {
        WireWriter w;
        EncodePending(parts[s][pendings_queued[s]], &w);
        if (!chan.Queue(WireMsg::kPending, w.buf(), /*droppable=*/false)) {
          procs[s].done = true;
          // Undelivered remainder re-deals round-robin to the shards
          // still standing; the next sweep ships it.
          std::vector<u32> targets;
          for (const u32 other : live) {
            if (other != s && !procs[other].done) {
              targets.push_back(other);
            }
          }
          for (size_t j = pendings_queued[s], deal = 0; j < parts[s].size() && !targets.empty();
               ++j, ++deal) {
            parts[targets[deal % targets.size()]].push_back(std::move(parts[s][j]));
            redealt = true;
          }
          parts[s].clear();
          break;
        }
        ++pendings_queued[s];
      }
    }
  }
  for (const u32 s : live) {
    if (procs[s].done) {
      continue;
    }
    WireChannel& chan = *procs[s].chan;
    WireWriter hello;
    EncodeHello(WireHello{s, num_shards, static_cast<u32>(pendings_queued[s])}, &hello);
    if (!chan.Queue(WireMsg::kHello, hello.buf(), /*droppable=*/false) ||
        !chan.Queue(WireMsg::kStart, {}, /*droppable=*/false)) {
      procs[s].done = true;
    }
  }

  // ----- 4. Relay loop: gossip verdicts, watch for the first crash. -----
  bool have_winner = false;
  u32 winner = 0;
  u64 verdicts_gossiped = 0;
  auto broadcast_stop = [&](u32 except) {
    for (u32 s = 0; s < num_shards; ++s) {
      if (s != except && !procs[s].done && procs[s].chan != nullptr) {
        procs[s].chan->Queue(WireMsg::kStop, {}, /*droppable=*/false);
      }
    }
  };
  const i64 kill_after_ms = config.wall_ms > 0 ? config.wall_ms + kKillGraceMs : -1;
  std::vector<struct pollfd> pfds;
  for (;;) {
    // One poll() over every open channel (not a per-channel timeout, so
    // relay latency stays flat in the shard count), then a non-blocking
    // drain+flush per channel.
    pfds.clear();
    for (u32 s = 0; s < num_shards; ++s) {
      if (!procs[s].done && procs[s].chan != nullptr) {
        struct pollfd pfd = {};
        pfd.fd = procs[s].chan->fd();
        pfd.events = POLLIN;
        pfds.push_back(pfd);
      }
    }
    if (!pfds.empty()) {
      ::poll(pfds.data(), pfds.size(), 10);
    }
    bool any_open = false;
    for (u32 s = 0; s < num_shards; ++s) {
      ShardProc& proc = procs[s];
      if (proc.done || proc.chan == nullptr) {
        continue;
      }
      any_open = true;
      std::vector<WireFrame> frames;
      const WireChannel::RecvStatus status = proc.chan->Poll(0, &frames);
      for (const WireFrame& frame : frames) {
        if (frame.type == WireMsg::kVerdicts) {
          verdicts_gossiped += CountVerdicts(frame);
          for (u32 peer = 0; peer < num_shards; ++peer) {
            if (peer != s && !procs[peer].done && procs[peer].chan != nullptr) {
              // Best-effort: a relay dropped under backpressure only
              // costs that peer a re-prove.
              procs[peer].chan->Queue(WireMsg::kVerdicts, frame.payload, /*droppable=*/true);
            }
          }
        } else if (frame.type == WireMsg::kResult) {
          WireReader r(frame.payload.data(), frame.payload.size());
          if (DecodeShardResult(&r, &proc.res)) {
            proc.have_result = true;
            if (proc.res.result.reproduced && !have_winner) {
              have_winner = true;
              winner = s;
              broadcast_stop(s);
            }
          }
          proc.done = true;
        }
      }
      if (!proc.done && status != WireChannel::RecvStatus::kOk) {
        proc.done = true;  // Shard died or its stream is untrustworthy.
      }
    }
    if (!any_open) {
      break;
    }
    if (kill_after_ms > 0 && elapsed_seconds() * 1000.0 > static_cast<double>(kill_after_ms)) {
      for (ShardProc& proc : procs) {
        if (!proc.done && proc.pid > 0) {
          ::kill(proc.pid, SIGKILL);
          proc.done = true;
        }
      }
      break;
    }
  }
  for (ShardProc& proc : procs) {
    if (proc.pid > 0) {
      int wstatus = 0;
      ::waitpid(proc.pid, &wstatus, 0);
    }
  }

  // ----- 5. Shard-aware aggregation. -----
  for (u32 s = 0; s < num_shards; ++s) {
    const ShardProc& proc = procs[s];
    ReplayShardStats shard_stats;
    shard_stats.shard_id = s;
    if (proc.chan != nullptr) {
      shard_stats.wire_bytes_tx = proc.chan->tx_bytes();
      shard_stats.wire_bytes_rx = proc.chan->rx_bytes();
      result.stats.wire_bytes_tx += shard_stats.wire_bytes_tx;
      result.stats.wire_bytes_rx += shard_stats.wire_bytes_rx;
    }
    if (proc.have_result) {
      const ReplayStats& ss = proc.res.result.stats;
      shard_stats.reproduced = proc.res.result.reproduced;
      shard_stats.runs = ss.runs;
      shard_stats.solver_calls = ss.solver_calls;
      shard_stats.pendings_seeded = proc.res.pendings_seeded;
      shard_stats.verdicts_published = proc.res.verdicts_published;
      shard_stats.verdicts_imported = proc.res.verdicts_imported;
      shard_stats.wall_seconds = proc.res.result.wall_seconds;
      result.stats.runs += ss.runs;
      result.stats.solver_calls += ss.solver_calls;
      result.stats.aborts_forced_direction += ss.aborts_forced_direction;
      result.stats.aborts_concrete_mismatch += ss.aborts_concrete_mismatch;
      result.stats.aborts_log_exhausted += ss.aborts_log_exhausted;
      result.stats.crashes_wrong_site += ss.crashes_wrong_site;
      result.stats.steals += ss.steals;
      result.stats.dedup_skips += ss.dedup_skips;
      result.stats.cancelled_runs += ss.cancelled_runs;
      result.stats.slices_solved += ss.slices_solved;
      result.stats.slice_sat_hits += ss.slice_sat_hits;
      result.stats.slice_unsat_hits += ss.slice_unsat_hits;
      result.stats.slice_evictions += ss.slice_evictions;
      result.stats.pending_peak = std::max(result.stats.pending_peak, ss.pending_peak);
      result.stats.per_worker.insert(result.stats.per_worker.end(), ss.per_worker.begin(),
                                     ss.per_worker.end());
    }
    result.stats.per_shard.push_back(shard_stats);
  }
  result.stats.verdicts_gossiped = verdicts_gossiped;
  if (have_winner) {
    const ReplayResult& won = procs[winner].res.result;
    result.reproduced = true;
    result.witness_argv = won.witness_argv;
    result.witness_cells = won.witness_cells;
    result.crash = won.crash;
  }
  result.budget_exhausted = !result.reproduced;
  result.wall_seconds = elapsed_seconds();
  return result;
}

}  // namespace retrace
