#include "src/dist/coordinator.h"

#include <poll.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "src/dist/fault.h"
#include "src/dist/shard.h"
#include "src/dist/transport.h"
#include "src/dist/wire.h"

namespace retrace {
namespace {

// Runaway backstop for shard processes: one process per frontier
// partition stops paying off long before this.
constexpr u32 kMaxShards = 64;

// Grace period past the configured wall budget before the coordinator
// hard-kills shards that stopped responding.
constexpr i64 kKillGraceMs = 30'000;

// Recovered pendings re-inject in batches of this many per
// kPendingExport frame — small enough to interleave with gossip, far
// under the decoder's kMaxWorkRequestWant ceiling.
constexpr u32 kRecoverBatch = 64;

i64 NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ShardProc {
  WireChannel* chan = nullptr;  // Fleet-owned; nulled before FinishJob.
  bool done = false;
  bool have_result = false;
  bool lost = false;           // Died, hung or broke before delivering kResult.
  u64 heartbeats_missed = 0;   // 1 when the heartbeat deadline declared it dead.
  u64 recovered_from = 0;      // Pendings re-injected after this shard's death.
  i64 last_heard_ms = 0;       // Any received frame counts as liveness.
  u64 wire_tx = 0;             // Channel byte counters, snapshotted at job
  u64 wire_rx = 0;             // end (the channel may not outlive the job).
  WireShardResult res;
};

// One entry of the per-shard pending-ownership ledger: a pending the
// coordinator believes shard `holder` is responsible for, keyed by the
// same constraint fingerprint the shards' dedup uses. The ledger is the
// recovery source of truth: seeded partitions and every re-balance
// carve move through it, a clean kResult clears it, and a death
// re-injects whatever is still unaccounted (at-least-once — duplicates
// die in the receivers' FingerprintSet subsumption).
struct LedgerEntry {
  u64 fp = 0;
  PortablePending pending;
};

u64 PendingFingerprint(const PortablePending& p) {
  return FingerprintConstraints(*p.trace, p.len, p.negate_last);
}

// Counts the verdicts in a batch without decoding it (no allocations on
// the relay hot path — the payload is forwarded verbatim anyway).
u64 CountVerdicts(const WireFrame& frame) {
  WireReader r(frame.payload.data(), frame.payload.size());
  u32 sat_count = 0;
  if (!r.U32(&sat_count) || !r.FitsCount(sat_count, 8 + 4)) {
    return 0;
  }
  for (u32 i = 0; i < sat_count; ++i) {
    u64 key = 0;
    u32 model_count = 0;
    if (!r.U64(&key) || !r.U32(&model_count) || !r.Skip(static_cast<size_t>(model_count) * 12)) {
      return 0;
    }
  }
  u32 unsat_count = 0;
  if (!r.U32(&unsat_count) || !r.FitsCount(unsat_count, 16)) {
    return 0;
  }
  return static_cast<u64>(sat_count) + unsat_count;
}

// Builds the transport selected by the config. The fork transport runs
// RunShard in each child (module/plan/report inherited copy-on-write);
// the TCP transport ships the whole job — program sources included — to
// whoever connects, and self-spawns loopback joiners when no remote
// daemon is configured.
std::unique_ptr<Transport> MakeTransport(const IrModule& module, const InstrumentationPlan& plan,
                                         const BugReport& report, const ReplayConfig& shard_cfg,
                                         const ReplayConfig& config) {
  if (config.transport == ReplayTransport::kTcp) {
    WireJob job;
    job.config = shard_cfg;
    job.plan = plan;
    job.report = report;
    WireWriter w;
    EncodeJob(job, &w);
    TcpTransportOptions options;
    options.token = config.shard_token;
    return std::make_unique<TcpTransport>(
        config.tcp_listen, config.shard_endpoints, w.Take(),
        [token = config.shard_token](const std::string& endpoint) {
          const int fd = TcpConnect(endpoint);
          return fd >= 0 &&
                 ServeShardJob(fd, "loopback-selfspawn", 0, token) == ShardRunStatus::kOk;
        },
        std::move(options));
  }
  return std::make_unique<LocalForkTransport>([&module, &plan, &report, shard_cfg](
                                                  u32 slot, int fd) {
    return RunShard(module, plan, report, shard_cfg, slot, fd);
  });
}

// The historical process tree behind the JobFleet seam: the transport is
// created when the job attaches and torn down when it finishes, so
// ReproduceDistributed keeps its exact pre-service behavior (fork or
// TCP handshake per search, fault injection wrap included).
class OneShotJobFleet final : public JobFleet {
 public:
  OneShotJobFleet(const IrModule& module, const ReplayConfig& config, FaultSpec fault_spec,
                  u32 num_shards)
      : module_(module),
        config_(config),
        fault_spec_(std::move(fault_spec)),
        num_shards_(num_shards) {}

  u32 num_shards() const override { return num_shards_; }

  std::vector<WireChannel*> AttachJob(const ReplayConfig& shard_cfg,
                                      const InstrumentationPlan& plan,
                                      const BugReport& report) override {
    transport_ = MakeTransport(module_, plan, report, shard_cfg, config_);
    if (!fault_spec_.empty()) {
      std::fprintf(stderr, "[dist] fault injection armed: %s\n", config_.fault_spec.c_str());
      transport_ = std::make_unique<FaultInjectingTransport>(std::move(transport_),
                                                             std::move(fault_spec_), config_.seed);
    }
    channels_ = transport_->Start(num_shards_);
    std::vector<WireChannel*> out(num_shards_, nullptr);
    for (u32 s = 0; s < num_shards_ && s < channels_.size(); ++s) {
      out[s] = channels_[s].get();
    }
    return out;
  }

  void KillAll() override {
    if (transport_ != nullptr) {
      transport_->Kill();
    }
  }

  void FinishJob(const std::vector<bool>& lost) override {
    if (transport_ == nullptr) {
      return;
    }
    // A lost shard may be a live-but-wedged child that will never exit
    // on its own; SIGKILL up front so Reap's bounded grace is a
    // backstop, not a stall.
    bool any_lost = false;
    for (const bool flag : lost) {
      any_lost = any_lost || flag;
    }
    if (any_lost) {
      transport_->Kill();
    }
    transport_->Reap();
    channels_.clear();
    transport_.reset();
  }

 private:
  const IrModule& module_;
  const ReplayConfig& config_;
  FaultSpec fault_spec_;  // Moved into the wrap on the first attach.
  u32 num_shards_;
  std::unique_ptr<Transport> transport_;
  std::vector<std::unique_ptr<WireChannel>> channels_;
};

}  // namespace

ReplayResult ReproduceDistributed(const IrModule& module, const InstrumentationPlan& plan,
                                  const BugReport& report, const ReplayConfig& user_config) {
  // TCP shards rebuild the module from shipped sources; without them
  // every joiner would pass the handshake and then reject the job one
  // by one, silently collapsing the search to the scout. Fall back to
  // the fork transport (same semantics, this host only) and say so —
  // Pipeline::Reproduce fills the sources automatically, this path is
  // direct ReplayEngine users.
  ReplayConfig config = user_config;
  if (config.transport == ReplayTransport::kTcp && config.program.app.empty()) {
    std::fprintf(stderr,
                 "[dist] tcp transport requires ReplayConfig::program sources "
                 "(Pipeline::Reproduce fills them); using fork transport instead\n");
    config.transport = ReplayTransport::kFork;
  }

  // Parse the fault schedule before any work is spent: like every other
  // knob, garbage must fail loudly up front, not after the scout ran.
  FaultSpec fault_spec;
  if (!config.fault_spec.empty()) {
    std::string fault_err;
    if (!ParseFaultSpec(config.fault_spec, &fault_spec, &fault_err)) {
      std::fprintf(stderr, "retrace: bad RETRACE_FAULT_SPEC \"%s\": %s\n",
                   config.fault_spec.c_str(), fault_err.c_str());
      std::exit(2);
    }
  }

  const u32 num_shards = std::clamp(config.num_shards, 2u, kMaxShards);
  OneShotJobFleet fleet(module, config, std::move(fault_spec), num_shards);
  return RunDistributedJob(module, plan, report, config, &fleet);
}

ReplayResult RunDistributedJob(const IrModule& module, const InstrumentationPlan& plan,
                               const BugReport& report, const ReplayConfig& config,
                               JobFleet* fleet) {
  const auto t0 = std::chrono::steady_clock::now();
  auto elapsed_seconds = [&t0] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  };
  const u32 num_shards = std::max<u32>(1, fleet->num_shards());

  // ----- 1. Scout: grow (or finish) the frontier in-process. -----
  ExprArena arena;
  ReplayEngine scout(module, plan, report, &arena);
  ReplayConfig scout_cfg = config;
  scout_cfg.num_shards = 1;
  const u64 scout_cap = std::max<u64>(4, 2 * num_shards);
  ReplayEngine::HarvestOutput harvest =
      scout.HarvestFrontier(scout_cfg, std::min(scout_cap, config.max_runs),
                            /*target_frontier=*/4 * num_shards);
  ReplayResult result = std::move(harvest.result);
  result.stats.harvest_runs = result.stats.runs;
  if (result.reproduced || result.stats.runs >= config.max_runs ||
      harvest.frontier.empty()) {
    // Solved it, exhausted the run cap, or there is nothing to shard
    // (frontier drained — the search space is smaller than the scout).
    result.budget_exhausted = !result.reproduced;
    result.wall_seconds = elapsed_seconds();
    return result;
  }
  // Shards re-aggregate their own per-worker view; the scout's counters
  // stay in the aggregate, labelled by harvest_runs.
  result.stats.per_worker.clear();

  // ----- 2. Partition: deepest-first, dealt round-robin. -----
  std::vector<PortablePending> frontier = std::move(harvest.frontier);
  std::stable_sort(frontier.begin(), frontier.end(),
                   [](const PortablePending& a, const PortablePending& b) {
                     return a.priority > b.priority;
                   });
  std::vector<std::vector<PortablePending>> parts(num_shards);
  for (size_t i = 0; i < frontier.size(); ++i) {
    parts[i % num_shards].push_back(std::move(frontier[i]));
  }

  // Per-shard budget: the remaining run cap and step budget divided
  // evenly; the wall clock is global, minus what the scout spent.
  ReplayConfig shard_cfg = config;
  shard_cfg.num_shards = 1;
  // Clamp the corpus to what the kJob codec accepts, or every shard
  // would reject the job at decode. Applied to the fork path too so the
  // two transports search identically.
  if (shard_cfg.corpus_seeds.size() > kMaxJobCorpusSeeds) {
    std::fprintf(stderr, "[dist] corpus_seeds clamped from %zu to %u (wire job ceiling)\n",
                 shard_cfg.corpus_seeds.size(), kMaxJobCorpusSeeds);
    shard_cfg.corpus_seeds.resize(kMaxJobCorpusSeeds);
  }
  u64 corpus_cells = 0;
  for (size_t i = 0; i < shard_cfg.corpus_seeds.size();) {
    const size_t cells = shard_cfg.corpus_seeds[i].size();
    if (cells > kMaxJobCorpusCells || corpus_cells + cells > kMaxJobCorpusTotalCells) {
      std::fprintf(stderr,
                   "[dist] corpus seed %zu dropped: %zu cells over the wire ceiling "
                   "(per-seed or total)\n",
                   i, cells);
      shard_cfg.corpus_seeds.erase(shard_cfg.corpus_seeds.begin() +
                                   static_cast<std::ptrdiff_t>(i));
    } else {
      corpus_cells += cells;
      ++i;
    }
  }
  shard_cfg.max_runs = std::max<u64>(1, (config.max_runs - result.stats.runs) / num_shards);
  shard_cfg.total_steps = std::max<u64>(1, config.total_steps / num_shards);
  if (config.wall_ms > 0) {
    shard_cfg.wall_ms =
        std::max<i64>(1, config.wall_ms - static_cast<i64>(elapsed_seconds() * 1000.0));
  }

  // ----- 3. Attach the job to the shard fleet (fleet-agnostic). -----
  std::vector<WireChannel*> channels = fleet->AttachJob(shard_cfg, plan, report);
  channels.resize(num_shards, nullptr);
  std::vector<ShardProc> procs(num_shards);
  for (u32 s = 0; s < num_shards; ++s) {
    if (channels[s] != nullptr) {
      procs[s].chan = channels[s];
    } else {
      procs[s].done = true;
    }
  }

  // A shard that failed to spawn must not silently orphan its frontier
  // partition (the reproducing input may live only in that subtree):
  // re-deal dead shards' entries round-robin over the live ones.
  std::vector<u32> live;
  for (u32 s = 0; s < num_shards; ++s) {
    if (!procs[s].done && procs[s].chan != nullptr) {
      live.push_back(s);
    }
  }
  if (live.empty()) {
    // The whole fleet failed to spawn: the scout's result is all we have.
    fleet->FinishJob(std::vector<bool>(num_shards, false));
    result.budget_exhausted = !result.reproduced;
    result.wall_seconds = elapsed_seconds();
    return result;
  }
  if (live.size() < num_shards) {
    size_t deal = 0;
    for (u32 s = 0; s < num_shards; ++s) {
      if (procs[s].chan != nullptr && !procs[s].done) {
        continue;
      }
      for (PortablePending& pending : parts[s]) {
        parts[live[deal++ % live.size()]].push_back(std::move(pending));
      }
      parts[s].clear();
    }
  }

  // Handshake, pendings first: shards buffer kPending frames in any
  // order and only reconcile the count against kHello at kStart, so the
  // coordinator can still re-deal a partition whose shard breaks during
  // the sends — the same no-orphaned-subtree invariant as above, for
  // failures detected after fork. All coordinator traffic is queued
  // non-blocking (flushed on every Poll), so the relay loop below can
  // never stall in a write while a shard stalls writing to us.
  // Sweeps converge: a sweep only repeats after a send failure, and each
  // failure permanently removes one shard from the rotation.
  std::vector<u64> pendings_queued(num_shards, 0);
  for (bool redealt = true; redealt;) {
    redealt = false;
    for (const u32 s : live) {
      if (procs[s].done) {
        continue;
      }
      WireChannel& chan = *procs[s].chan;
      while (pendings_queued[s] < parts[s].size()) {
        WireWriter w;
        EncodePending(parts[s][pendings_queued[s]], &w);
        if (!chan.Queue(WireMsg::kPending, w.buf(), /*droppable=*/false)) {
          procs[s].done = true;
          procs[s].lost = true;
          // The whole partition re-deals round-robin to the shards still
          // standing, prefix included: frames queued into a channel that
          // broke mid-sweep were never delivered (the shard dies without
          // kHello/kStart, so nothing here can run twice).
          std::vector<u32> targets;
          for (const u32 other : live) {
            if (other != s && !procs[other].done) {
              targets.push_back(other);
            }
          }
          for (size_t j = 0, deal = 0; j < parts[s].size() && !targets.empty(); ++j, ++deal) {
            parts[targets[deal % targets.size()]].push_back(std::move(parts[s][j]));
            redealt = true;
          }
          parts[s].clear();
          pendings_queued[s] = 0;
          break;
        }
        ++pendings_queued[s];
      }
    }
  }
  for (const u32 s : live) {
    if (procs[s].done) {
      continue;
    }
    WireChannel& chan = *procs[s].chan;
    WireWriter hello;
    EncodeHello(WireHello{s, num_shards, static_cast<u32>(pendings_queued[s])}, &hello);
    if (!chan.Queue(WireMsg::kHello, hello.buf(), /*droppable=*/false) ||
        !chan.Queue(WireMsg::kStart, {}, /*droppable=*/false)) {
      procs[s].done = true;
      procs[s].lost = true;  // Its ledger recovers below, pre-relay.
    }
  }

  // ----- Ownership ledger: what each shard must answer for. -----
  // Seeded from the final partition (parts[s] still holds exactly what
  // was queued to s after every re-deal above); re-balance carves move
  // entries between shards as the relay routes them, a clean kResult
  // clears a shard's column, and a death re-injects the remainder.
  std::vector<std::vector<LedgerEntry>> ledger(num_shards);
  for (u32 s = 0; s < num_shards; ++s) {
    ledger[s].reserve(parts[s].size());
    for (PortablePending& pending : parts[s]) {
      ledger[s].push_back(LedgerEntry{PendingFingerprint(pending), std::move(pending)});
    }
    parts[s].clear();
  }

  // ----- 4. Relay loop: gossip verdicts, route re-balance traffic,
  // watch for the first crash. -----
  bool have_winner = false;
  u32 winner = 0;
  u64 verdicts_gossiped = 0;
  // Ledger entries whose every possible home is dead: the in-process
  // fallback search (step 6) runs these if nobody reproduced the crash.
  std::vector<PortablePending> orphan_pool;
  auto broadcast_stop = [&](u32 except) {
    for (u32 s = 0; s < num_shards; ++s) {
      if (s != except && !procs[s].done && procs[s].chan != nullptr) {
        procs[s].chan->Queue(WireMsg::kStop, {}, /*droppable=*/false);
      }
    }
  };

  // Re-balance routing: a starved shard's kWorkRequest is forwarded to a
  // donor (round-robin over the other live shards); the donor's
  // kPendingExport answer routes back to whoever asked it first
  // (per-donor FIFO — a donor answers requests in arrival order). The
  // FIFO records the request's sequence number so answers the
  // coordinator fabricates on a dead donor's behalf still carry the
  // echo the requester's state machine matches on.
  struct PendingRequest {
    u32 requester = 0;
    u64 seq = 0;
  };
  std::vector<std::deque<PendingRequest>> donor_queue(num_shards);
  u32 donor_rr = 0;
  auto send_empty_export = [&](const PendingRequest& request) {
    if (procs[request.requester].done || procs[request.requester].chan == nullptr) {
      return;
    }
    WirePendingExport empty;
    empty.requester_shard_id = request.requester;
    empty.seq = request.seq;
    WireWriter w;
    EncodePendingExport(empty, &w);
    // Liveness, not best-effort: the requester's give-up counter waits
    // on hearing an answer.
    procs[request.requester].chan->Queue(WireMsg::kPendingExport, w.buf(),
                                         /*droppable=*/false);
  };
  // Moves ownership of every pending a routed kPendingExport carries
  // from `from`'s ledger column to `to`'s, so recovery always re-injects
  // from the column of the shard that actually held the work. A pending
  // the `from` column does not know (work the shard discovered itself
  // and is now exporting) starts being tracked at the receiver — the
  // first moment the coordinator can know it exists.
  auto transfer_ledger = [&](u32 from, u32 to, const WireFrame& frame) {
    WireReader r(frame.payload.data(), frame.payload.size());
    WirePendingExport batch;
    if (!DecodePendingExport(&r, &batch)) {
      return;  // Digest-checked upstream; tracked best-effort.
    }
    for (PortablePending& pending : batch.pendings) {
      const u64 fp = PendingFingerprint(pending);
      bool moved = false;
      for (size_t i = 0; i < ledger[from].size(); ++i) {
        if (ledger[from][i].fp == fp) {
          ledger[to].push_back(std::move(ledger[from][i]));
          ledger[from].erase(ledger[from].begin() + static_cast<std::ptrdiff_t>(i));
          moved = true;
          break;
        }
      }
      if (!moved) {
        ledger[to].push_back(LedgerEntry{fp, std::move(pending)});
      }
    }
  };
  auto route_work_request = [&](u32 requester, const WireFrame& frame) {
    WireWorkRequest request;
    WireReader r(frame.payload.data(), frame.payload.size());
    if (!DecodeWorkRequest(&r, &request)) {
      return;  // Digest-checked upstream; a malformed request is a peer bug.
    }
    const PendingRequest pending{requester, request.seq};
    for (u32 step = 0; step < num_shards; ++step) {
      const u32 donor = (donor_rr + step) % num_shards;
      if (donor == requester || procs[donor].done || procs[donor].chan == nullptr) {
        continue;
      }
      donor_rr = donor + 1;
      donor_queue[donor].push_back(pending);
      procs[donor].chan->Queue(WireMsg::kWorkRequest, frame.payload, /*droppable=*/false);
      return;
    }
    send_empty_export(pending);  // Nobody left to donate.
  };
  // A shard that finishes (or dies) while peers wait on it as a donor
  // must not leave them hanging: answer on its behalf.
  auto flush_donor_queue = [&](u32 donor) {
    for (const PendingRequest& request : donor_queue[donor]) {
      send_empty_export(request);
    }
    donor_queue[donor].clear();
  };
  // Re-homes a batch of real pendings whose addressee is gone: any live
  // shard's pump imports unsolicited batches. Only when nobody at all
  // is left does the carve die (the fleet is ending anyway).
  auto reroute_export = [&](u32 from, const WireFrame& frame) {
    for (u32 step = 0; step < num_shards; ++step) {
      const u32 target = (donor_rr + step) % num_shards;
      if (target == from || procs[target].done || procs[target].chan == nullptr) {
        continue;
      }
      donor_rr = target + 1;
      procs[target].chan->Queue(WireMsg::kPendingExport, frame.payload, /*droppable=*/false);
      transfer_ledger(from, target, frame);
      return;
    }
    // No peer left: hand it back to the sender if it still searches
    // (e.g. a donor whose requester died in a 2-shard fleet).
    if (!procs[from].done && procs[from].chan != nullptr) {
      procs[from].chan->Queue(WireMsg::kPendingExport, frame.payload, /*droppable=*/false);
    }
  };
  // Reads just enough of a kPendingExport payload to tell whether it
  // carries any pendings (re-routing empty answers would be noise).
  auto export_carries_work = [](const WireFrame& frame) {
    WireReader r(frame.payload.data(), frame.payload.size());
    u32 requester = 0;
    u64 seq = 0;
    u32 count = 0;
    return r.U32(&requester) && r.U64(&seq) && r.U32(&count) && count > 0;
  };
  // Re-injects a dead shard's unaccounted ledger column into the live
  // fleet as unsolicited kPendingExport batches (seq 0 — matches no
  // requester's outstanding answer; the pumps import unsolicited work
  // unconditionally). At-least-once by design: a pending the shard
  // already solved re-proves cheaply and dies in FingerprintSet
  // subsumption, while the one pending that held the reproducing input
  // is guaranteed a new home. With nobody live the column moves to the
  // orphan pool for the in-process fallback.
  auto recover_ledger = [&](u32 dead) {
    if (ledger[dead].empty()) {
      return;
    }
    std::vector<u32> targets;
    for (u32 t = 0; t < num_shards; ++t) {
      if (t != dead && !procs[t].done && procs[t].chan != nullptr) {
        targets.push_back(t);
      }
    }
    const u64 column = ledger[dead].size();
    if (targets.empty()) {
      for (LedgerEntry& entry : ledger[dead]) {
        orphan_pool.push_back(std::move(entry.pending));
      }
      ledger[dead].clear();
      procs[dead].recovered_from += column;
      return;
    }
    size_t rr = 0;
    size_t i = 0;
    while (i < ledger[dead].size()) {
      const u32 target = targets[rr++ % targets.size()];
      WirePendingExport batch;
      batch.requester_shard_id = target;
      batch.seq = 0;
      const size_t end = std::min(i + kRecoverBatch, ledger[dead].size());
      for (size_t j = i; j < end; ++j) {
        batch.pendings.push_back(ledger[dead][j].pending);
      }
      WireWriter w;
      EncodePendingExport(batch, &w);
      procs[target].chan->Queue(WireMsg::kPendingExport, w.buf(), /*droppable=*/false);
      for (size_t j = i; j < end; ++j) {
        ledger[target].push_back(std::move(ledger[dead][j]));
      }
      i = end;
    }
    ledger[dead].clear();
    procs[dead].recovered_from += column;
    std::fprintf(stderr, "[dist] shard %u lost: re-injected %llu pending(s) into %zu survivor(s)\n",
                 dead, static_cast<unsigned long long>(column), targets.size());
  };
  // Single exit for every way a shard dies mid-search (closed channel,
  // corrupt stream, missed heartbeat deadline): stop talking to it,
  // recover what it owned, and answer requests waiting on it as a donor.
  auto declare_lost = [&](u32 s, bool heartbeat_death) {
    ShardProc& proc = procs[s];
    if (proc.done) {
      return;
    }
    proc.done = true;
    proc.lost = true;
    if (heartbeat_death) {
      proc.heartbeats_missed = 1;
      std::fprintf(stderr, "[dist] shard %u missed its heartbeat deadline (%d ms): declared dead\n",
                   s, config.heartbeat_timeout_ms);
    }
    if (!have_winner) {
      recover_ledger(s);
    } else {
      ledger[s].clear();  // Race already won; nothing left worth re-running.
    }
    flush_donor_queue(s);
  };

  // Shards that broke while the handshake was still queueing never reach
  // the relay loop's loss path: recover their columns before the search.
  for (u32 s = 0; s < num_shards; ++s) {
    if (procs[s].lost) {
      recover_ledger(s);
    }
  }

  const i64 kill_after_ms = config.wall_ms > 0 ? config.wall_ms + kKillGraceMs : -1;
  // Liveness: the coordinator rides its own kHeartbeat down every
  // channel on this cadence, and any frame a shard sends resets that
  // shard's silence clock. The clocks start now — transport Start() can
  // legitimately spend seconds handshaking a TCP fleet.
  u64 heartbeat_seq = 0;
  i64 next_heartbeat_ms =
      config.heartbeat_interval_ms > 0 ? NowMs() + config.heartbeat_interval_ms : 0;
  const i64 relay_start_ms = NowMs();
  for (ShardProc& proc : procs) {
    proc.last_heard_ms = relay_start_ms;
  }
  std::vector<struct pollfd> pfds;
  for (;;) {
    // One poll() over every open channel (not a per-channel timeout, so
    // relay latency stays flat in the shard count), then a non-blocking
    // drain+flush per channel.
    pfds.clear();
    for (u32 s = 0; s < num_shards; ++s) {
      if (!procs[s].done && procs[s].chan != nullptr) {
        struct pollfd pfd = {};
        pfd.fd = procs[s].chan->fd();
        pfd.events = POLLIN;
        pfds.push_back(pfd);
      }
    }
    if (!pfds.empty()) {
      ::poll(pfds.data(), pfds.size(), 10);
    }
    // Heartbeats ride the relay cadence, droppable: a channel backlogged
    // enough to shed one is moving real frames, which proves the same
    // thing a heartbeat would.
    if (config.heartbeat_interval_ms > 0 && NowMs() >= next_heartbeat_ms) {
      WireWriter hb;
      EncodeHeartbeat(WireHeartbeat{heartbeat_seq++}, &hb);
      for (u32 s = 0; s < num_shards; ++s) {
        if (!procs[s].done && procs[s].chan != nullptr) {
          procs[s].chan->Queue(WireMsg::kHeartbeat, hb.buf(), /*droppable=*/true);
        }
      }
      next_heartbeat_ms = NowMs() + config.heartbeat_interval_ms;
    }
    bool any_open = false;
    for (u32 s = 0; s < num_shards; ++s) {
      ShardProc& proc = procs[s];
      if (proc.done || proc.chan == nullptr) {
        continue;
      }
      any_open = true;
      std::vector<WireFrame> frames;
      const WireChannel::RecvStatus status = proc.chan->Poll(0, &frames);
      if (!frames.empty()) {
        proc.last_heard_ms = NowMs();
      }
      for (const WireFrame& frame : frames) {
        if (frame.type == WireMsg::kVerdicts) {
          verdicts_gossiped += CountVerdicts(frame);
          for (u32 peer = 0; peer < num_shards; ++peer) {
            if (peer != s && !procs[peer].done && procs[peer].chan != nullptr) {
              // Best-effort: a relay dropped under backpressure only
              // costs that peer a re-prove.
              procs[peer].chan->Queue(WireMsg::kVerdicts, frame.payload, /*droppable=*/true);
            }
          }
        } else if (frame.type == WireMsg::kWorkRequest) {
          route_work_request(s, frame);
        } else if (frame.type == WireMsg::kPendingExport) {
          if (!donor_queue[s].empty()) {
            // Donor answered: forward verbatim to the requester at the
            // head of this donor's FIFO. A requester that finished
            // while the answer was in flight — common when a frontier
            // drains moments before its crash lands — must not take
            // the carve down with it: re-home real pendings to any
            // live shard (pumps import unsolicited batches).
            const PendingRequest request = donor_queue[s].front();
            donor_queue[s].pop_front();
            if (!procs[request.requester].done &&
                procs[request.requester].chan != nullptr) {
              procs[request.requester].chan->Queue(WireMsg::kPendingExport, frame.payload,
                                                   /*droppable=*/false);
              transfer_ledger(s, request.requester, frame);
            } else if (export_carries_work(frame)) {
              reroute_export(s, frame);
            }
          } else if (export_carries_work(frame)) {
            // Unsolicited: a finishing shard returned a carve it could
            // no longer use. Keep the work in the fleet.
            reroute_export(s, frame);
          }
        } else if (frame.type == WireMsg::kResult) {
          WireReader r(frame.payload.data(), frame.payload.size());
          if (DecodeShardResult(&r, &proc.res)) {
            proc.have_result = true;
            if (proc.res.result.reproduced && !have_winner) {
              have_winner = true;
              winner = s;
              broadcast_stop(s);
            }
          }
          proc.done = true;
          // A delivered result accounts for everything the shard owned.
          ledger[s].clear();
        }
      }
      if (!proc.done && status != WireChannel::RecvStatus::kOk) {
        declare_lost(s, /*heartbeat_death=*/false);  // Died or untrustworthy.
      }
      if (proc.done) {
        flush_donor_queue(s);
      }
    }
    // Silence past the deadline is death the socket cannot report: a
    // shard wedged mid-run (or muted by fault injection) holds its fd
    // open forever.
    if (config.heartbeat_timeout_ms > 0) {
      const i64 now = NowMs();
      for (u32 s = 0; s < num_shards; ++s) {
        if (!procs[s].done && procs[s].chan != nullptr &&
            now - procs[s].last_heard_ms > config.heartbeat_timeout_ms) {
          declare_lost(s, /*heartbeat_death=*/true);
        }
      }
    }
    if (!any_open) {
      break;
    }
    if (kill_after_ms > 0 && elapsed_seconds() * 1000.0 > static_cast<double>(kill_after_ms)) {
      fleet->KillAll();
      for (ShardProc& proc : procs) {
        if (!proc.done && proc.chan != nullptr) {
          proc.lost = true;  // Wall-overrun stragglers, killed unheard.
        }
        proc.done = true;
      }
      break;
    }
  }
  // Return the channels to the fleet: snapshot the byte counters first
  // (a one-shot fleet destroys the channels; a standing fleet keeps the
  // survivors for the next job) and tell it which slots broke so it can
  // kill/retire them.
  std::vector<bool> lost_slots(num_shards, false);
  for (u32 s = 0; s < num_shards; ++s) {
    lost_slots[s] = procs[s].lost;
    if (procs[s].chan != nullptr) {
      procs[s].wire_tx = procs[s].chan->tx_bytes();
      procs[s].wire_rx = procs[s].chan->rx_bytes();
      procs[s].chan = nullptr;
    }
  }
  fleet->FinishJob(lost_slots);

  // ----- 5. Shard-aware aggregation. -----
  for (u32 s = 0; s < num_shards; ++s) {
    const ShardProc& proc = procs[s];
    ReplayShardStats shard_stats;
    shard_stats.shard_id = s;
    shard_stats.lost = proc.lost;
    shard_stats.heartbeats_missed = proc.heartbeats_missed;
    shard_stats.pendings_recovered = proc.recovered_from;
    if (proc.lost) {
      result.stats.shards_lost += 1;
      if (!proc.have_result) {
        // The shard never reported; the coordinator's send-side count is
        // the honest value for what it was seeded with.
        shard_stats.pendings_seeded = pendings_queued[s];
      }
    }
    result.stats.pendings_recovered += proc.recovered_from;
    result.stats.heartbeats_missed += proc.heartbeats_missed;
    shard_stats.wire_bytes_tx = proc.wire_tx;
    shard_stats.wire_bytes_rx = proc.wire_rx;
    result.stats.wire_bytes_tx += shard_stats.wire_bytes_tx;
    result.stats.wire_bytes_rx += shard_stats.wire_bytes_rx;
    if (proc.have_result) {
      const ReplayStats& ss = proc.res.result.stats;
      shard_stats.reproduced = proc.res.result.reproduced;
      shard_stats.runs = ss.runs;
      shard_stats.solver_calls = ss.solver_calls;
      shard_stats.pendings_seeded = proc.res.pendings_seeded;
      shard_stats.verdicts_published = proc.res.verdicts_published;
      shard_stats.verdicts_imported = proc.res.verdicts_imported;
      shard_stats.pendings_exported = ss.pendings_exported;
      shard_stats.pendings_imported = ss.pendings_imported;
      shard_stats.rebalance_rounds = ss.rebalance_rounds;
      shard_stats.pendings_pruned = ss.pendings_pruned;
      shard_stats.wall_seconds = proc.res.result.wall_seconds;
      result.stats.runs += ss.runs;
      result.stats.solver_calls += ss.solver_calls;
      result.stats.aborts_forced_direction += ss.aborts_forced_direction;
      result.stats.aborts_concrete_mismatch += ss.aborts_concrete_mismatch;
      result.stats.aborts_log_exhausted += ss.aborts_log_exhausted;
      result.stats.crashes_wrong_site += ss.crashes_wrong_site;
      result.stats.steals += ss.steals;
      result.stats.dedup_skips += ss.dedup_skips;
      result.stats.cancelled_runs += ss.cancelled_runs;
      result.stats.slices_solved += ss.slices_solved;
      result.stats.slice_sat_hits += ss.slice_sat_hits;
      result.stats.slice_unsat_hits += ss.slice_unsat_hits;
      result.stats.slice_evictions += ss.slice_evictions;
      result.stats.pendings_exported += ss.pendings_exported;
      result.stats.pendings_imported += ss.pendings_imported;
      result.stats.rebalance_rounds += ss.rebalance_rounds;
      result.stats.pendings_pruned += ss.pendings_pruned;
      result.stats.corpus_runs += ss.corpus_runs;
      result.stats.promotions += ss.promotions;
      result.stats.failure_profile.Merge(ss.failure_profile);
      for (size_t d = 0; d < kNumDisciplines; ++d) {
        result.stats.discipline_runs[d] += ss.discipline_runs[d];
        result.stats.discipline_on_log[d] += ss.discipline_on_log[d];
      }
      result.stats.pending_peak = std::max(result.stats.pending_peak, ss.pending_peak);
      result.stats.per_worker.insert(result.stats.per_worker.end(), ss.per_worker.begin(),
                                     ss.per_worker.end());
    }
    result.stats.per_shard.push_back(shard_stats);
  }
  result.stats.verdicts_gossiped = verdicts_gossiped;
  if (have_winner) {
    const ReplayResult& won = procs[winner].res.result;
    result.reproduced = true;
    result.witness_argv = won.witness_argv;
    result.witness_cells = won.witness_cells;
    result.crash = won.crash;
  }

  // ----- 6. In-process fallback: the whole fleet died with work
  // outstanding. -----
  // The orphan pool holds every pending that could not be re-homed —
  // possibly including the one subtree that reproduces the crash.
  // Spending the remaining wall budget searching it in-process beats
  // reporting exhaustion because the infrastructure failed.
  if (!have_winner && !result.reproduced && !orphan_pool.empty()) {
    std::fprintf(stderr,
                 "[dist] whole fleet lost: falling back to in-process search over %zu "
                 "orphaned pending(s)\n",
                 orphan_pool.size());
    ReplayConfig fb_cfg = config;
    fb_cfg.num_shards = 1;
    fb_cfg.max_runs =
        config.max_runs > result.stats.runs ? config.max_runs - result.stats.runs : 1;
    if (config.wall_ms > 0) {
      fb_cfg.wall_ms =
          std::max<i64>(1, config.wall_ms - static_cast<i64>(elapsed_seconds() * 1000.0));
    }
    ShardContext fb_ctx;
    fb_ctx.seed_frontier = std::move(orphan_pool);
    // One stream past every fleet member's range: the fallback must not
    // redraw any dead shard's exact inputs.
    fb_ctx.rng_stream = static_cast<u64>(num_shards) * 1024 + 1;
    fb_ctx.shard_id = 0;
    fb_ctx.num_shards = 1;
    ReplayResult fb = scout.ReproduceShard(fb_cfg, &fb_ctx);
    result.stats.fallback_inprocess = true;
    result.stats.runs += fb.stats.runs;
    result.stats.solver_calls += fb.stats.solver_calls;
    result.stats.aborts_forced_direction += fb.stats.aborts_forced_direction;
    result.stats.aborts_concrete_mismatch += fb.stats.aborts_concrete_mismatch;
    result.stats.aborts_log_exhausted += fb.stats.aborts_log_exhausted;
    result.stats.crashes_wrong_site += fb.stats.crashes_wrong_site;
    result.stats.dedup_skips += fb.stats.dedup_skips;
    result.stats.cancelled_runs += fb.stats.cancelled_runs;
    result.stats.slices_solved += fb.stats.slices_solved;
    result.stats.slice_sat_hits += fb.stats.slice_sat_hits;
    result.stats.slice_unsat_hits += fb.stats.slice_unsat_hits;
    result.stats.corpus_runs += fb.stats.corpus_runs;
    result.stats.promotions += fb.stats.promotions;
    result.stats.failure_profile.Merge(fb.stats.failure_profile);
    if (fb.reproduced) {
      result.reproduced = true;
      result.witness_argv = fb.witness_argv;
      result.witness_cells = fb.witness_cells;
      result.crash = fb.crash;
    }
  }

  result.budget_exhausted = !result.reproduced;
  result.wall_seconds = elapsed_seconds();
  return result;
}

}  // namespace retrace
