// Standing shard fleet for the replay service.
//
// The one-shot scheduler (ReproduceDistributed) builds a process tree
// per search and tears it down with the result. A service ingesting a
// stream of bug reports cannot afford that: every report would pay the
// fork/dial/handshake tax again and — worse — every shard would start
// with a cold slice cache, re-proving path constraints the previous
// report already settled. ShardFleet keeps the shard processes (and
// their caches) alive across searches:
//
//   Start()      — TCP transport in persistent mode: shards join with
//                  kJoin (token-checked) and then wait; no job ships in
//                  the handshake. Each shard runs ServeShardJobs.
//   AttachJob()  — sends kJobBegin{job_id, job} down every live channel;
//                  the shard rebuilds the pipeline from the shipped
//                  sources and serves the search like any one-shot job,
//                  kResult last. Implements the coordinator's JobFleet
//                  seam, so RunDistributedJob drives the search itself.
//   FinishJob()  — retires slots that died mid-job (closing the channel
//                  is the retire signal); survivors idle until the next
//                  AttachJob, slice caches warm.
//   Shutdown()   — kJobEnd to every live shard, then reap.
//
// **Thread safety:** none — drive a fleet from one thread (the service's
// worker thread). **Stats caveat:** channel byte counters are cumulative
// per shard process, not per job.
#ifndef RETRACE_DIST_FLEET_H_
#define RETRACE_DIST_FLEET_H_

#include <memory>
#include <string>
#include <vector>

#include "src/dist/coordinator.h"
#include "src/dist/transport.h"

namespace retrace {

/// \brief A shard fleet that outlives any single search.
class ShardFleet final : public JobFleet {
 public:
  /// `config` supplies the fleet shape and transport knobs: num_shards
  /// (clamped to [1, 64]), tcp_listen, shard_endpoints, shard_token.
  /// With no endpoints and an ephemeral listen port the fleet
  /// self-spawns loopback shard processes, exactly like the one-shot
  /// TCP transport.
  explicit ShardFleet(const ReplayConfig& config);
  ~ShardFleet() override;

  /// Launches/connects the shards (kJoin handshake, no job). Returns
  /// false when not a single shard could be established.
  bool Start();

  u32 num_shards() const override { return num_shards_; }
  std::vector<WireChannel*> AttachJob(const ReplayConfig& shard_cfg,
                                      const InstrumentationPlan& plan,
                                      const BugReport& report) override;
  void KillAll() override;
  void FinishJob(const std::vector<bool>& lost) override;

  /// Graceful end: kJobEnd to every live shard, close the channels,
  /// reap local children. Idempotent; the destructor calls it.
  void Shutdown();

  /// Slots still holding a live channel (monotonically non-increasing —
  /// lost shards retire, the fleet never respawns).
  u32 live_shards() const;

  /// Jobs handed to AttachJob so far (also the next kJobBegin job_id).
  u64 jobs_dispatched() const { return jobs_dispatched_; }

 private:
  ReplayConfig config_;
  u32 num_shards_ = 0;
  u64 jobs_dispatched_ = 0;
  bool started_ = false;
  std::unique_ptr<TcpTransport> transport_;
  std::vector<std::unique_ptr<WireChannel>> channels_;  // null = retired.
};

}  // namespace retrace

#endif  // RETRACE_DIST_FLEET_H_
