#include "src/dist/transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

namespace retrace {
namespace {

i64 NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Join deadline: self-spawned children connect over loopback within
// milliseconds; remote daemons get long enough to notice the listener
// but not long enough to stall a search whose wall budget is ticking.
constexpr i64 kSelfSpawnDeadlineMs = 20'000;
constexpr i64 kRemoteJoinDeadlineMs = 60'000;
// Per-connection cap inside the fleet deadline: one connected-but-mute
// peer (hung daemon, port scanner) must cost its own slot, not eat the
// whole join window of every shard behind it.
constexpr i64 kPerHandshakeMs = 10'000;
// Dial timeout: an unreachable endpoint (SYN blackhole) must cost this,
// not the kernel's multi-minute default, or dead entries in
// shard_endpoints burn the search's wall budget before any shard runs.
constexpr int kConnectTimeoutMs = 10'000;

// Splits "host:port"; empty host (":9000") means loopback.
bool SplitEndpoint(const std::string& endpoint, std::string* host, std::string* port) {
  const size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon + 1 >= endpoint.size()) {
    return false;
  }
  *host = endpoint.substr(0, colon);
  *port = endpoint.substr(colon + 1);
  if (host->empty()) {
    *host = "127.0.0.1";
  }
  return true;
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

// An ephemeral listen port (":0") cannot be targeted by remote daemons
// — nobody outside this process can learn it in time — so it signals
// loopback self-spawn mode. A fixed port means the operator will point
// real `retrace_shardd <host:port>` joiners at it.
bool PortIsEphemeral(const std::string& endpoint) {
  std::string host;
  std::string port;
  return SplitEndpoint(endpoint, &host, &port) && port == "0";
}

// Reaps `pids` with a bounded grace window, then escalates to SIGKILL.
// A plain blocking waitpid() here would hang the coordinator forever on
// a child that is wedged (hung shard, fault-injection mute) — the exact
// children a teardown path most needs to collect.
constexpr i64 kReapGraceMs = 2'000;

void ReapWithDeadline(std::vector<int>* pids) {
  const i64 deadline = NowMs() + kReapGraceMs;
  bool all_done = false;
  while (!all_done && NowMs() < deadline) {
    all_done = true;
    for (int& pid : *pids) {
      if (pid <= 0) continue;
      int wstatus = 0;
      const pid_t got = ::waitpid(pid, &wstatus, WNOHANG);
      if (got == pid || (got < 0 && errno == ECHILD)) {
        pid = -1;
      } else {
        all_done = false;
      }
    }
    if (!all_done) ::usleep(10'000);
  }
  for (int& pid : *pids) {
    if (pid <= 0) continue;
    ::kill(pid, SIGKILL);
    int wstatus = 0;
    ::waitpid(pid, &wstatus, 0);  // SIGKILL is not ignorable: bounded.
    pid = -1;
  }
}

// Non-blocking connect bounded by kConnectTimeoutMs; restores blocking
// mode on success (WireChannel::Send relies on it).
bool ConnectWithTimeout(int fd, const struct sockaddr* addr, socklen_t len) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return false;
  }
  if (::connect(fd, addr, len) != 0) {
    if (errno != EINPROGRESS) {
      return false;
    }
    struct pollfd pfd = {};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    if (::poll(&pfd, 1, kConnectTimeoutMs) <= 0) {
      return false;
    }
    int err = 0;
    socklen_t err_len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) != 0 || err != 0) {
      return false;
    }
  }
  return ::fcntl(fd, F_SETFL, flags) == 0;
}

}  // namespace

int TcpListen(const std::string& endpoint, std::string* bound_endpoint) {
  std::string host;
  std::string port;
  if (!SplitEndpoint(endpoint, &host, &port)) {
    return -1;
  }
  struct addrinfo hints = {};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  struct addrinfo* res = nullptr;
  if (::getaddrinfo(host.c_str(), port.c_str(), &hints, &res) != 0 || res == nullptr) {
    return -1;
  }
  int fd = ::socket(res->ai_family, res->ai_socktype, res->ai_protocol);
  if (fd >= 0) {
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, res->ai_addr, res->ai_addrlen) != 0 || ::listen(fd, 64) != 0) {
      ::close(fd);
      fd = -1;
    }
  }
  ::freeaddrinfo(res);
  if (fd >= 0 && bound_endpoint != nullptr) {
    struct sockaddr_in addr = {};
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) == 0) {
      char ip[INET_ADDRSTRLEN] = {};
      ::inet_ntop(AF_INET, &addr.sin_addr, ip, sizeof(ip));
      *bound_endpoint = std::string(ip) + ":" + std::to_string(ntohs(addr.sin_port));
    } else {
      *bound_endpoint = endpoint;
    }
  }
  return fd;
}

int TcpConnect(const std::string& endpoint) {
  std::string host;
  std::string port;
  if (!SplitEndpoint(endpoint, &host, &port)) {
    return -1;
  }
  struct addrinfo hints = {};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  if (::getaddrinfo(host.c_str(), port.c_str(), &hints, &res) != 0 || res == nullptr) {
    return -1;
  }
  int fd = -1;
  for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      continue;
    }
    if (ConnectWithTimeout(fd, ai->ai_addr, ai->ai_addrlen)) {
      break;
    }
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd >= 0) {
    SetNoDelay(fd);
  }
  return fd;
}

// ----- LocalForkTransport -----

std::vector<std::unique_ptr<WireChannel>> LocalForkTransport::Start(u32 num_shards) {
  std::vector<std::unique_ptr<WireChannel>> channels(num_shards);
  pids_.assign(num_shards, -1);
  // Children must not inherit buffered output they would double-flush.
  std::fflush(stdout);
  std::fflush(stderr);
  std::vector<int> parent_fds;
  for (u32 s = 0; s < num_shards; ++s) {
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
      continue;
    }
    const pid_t pid = ::fork();
    if (pid == 0) {
      // Child: drop every coordinator-side fd, run the shard, and leave
      // without touching the inherited process state (atexit, stdio).
      ::close(fds[0]);
      for (const int parent_fd : parent_fds) {
        ::close(parent_fd);
      }
      const bool ok = shard_main_(s, fds[1]);
      ::_exit(ok ? 0 : 1);
    }
    ::close(fds[1]);
    if (pid < 0) {
      ::close(fds[0]);
      continue;
    }
    parent_fds.push_back(fds[0]);
    pids_[s] = pid;
    channels[s] = std::make_unique<WireChannel>(fds[0]);
  }
  return channels;
}

void LocalForkTransport::Kill() {
  for (const int pid : pids_) {
    if (pid > 0) {
      ::kill(pid, SIGKILL);
    }
  }
}

void LocalForkTransport::Reap() { ReapWithDeadline(&pids_); }

// ----- TcpTransport -----

TcpTransport::TcpTransport(std::string listen_endpoint, std::vector<std::string> endpoints,
                           std::vector<u8> job, SelfSpawnMain self_spawn,
                           TcpTransportOptions options)
    : listen_(std::move(listen_endpoint)),
      endpoints_(std::move(endpoints)),
      job_(std::move(job)),
      self_spawn_(std::move(self_spawn)),
      options_(std::move(options)) {}

TcpTransport::~TcpTransport() {
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
  }
}

std::unique_ptr<WireChannel> TcpTransport::Handshake(int fd, i64 deadline_ms) {
  auto chan = std::make_unique<WireChannel>(fd);
  // The joiner speaks first: exactly one kJoin, then it waits for kJob.
  std::vector<WireFrame> frames;
  while (frames.empty()) {
    const i64 remaining = deadline_ms - NowMs();
    if (remaining <= 0) {
      return nullptr;
    }
    const WireChannel::RecvStatus status =
        chan->Poll(static_cast<int>(std::min<i64>(remaining, 200)), &frames);
    if (status != WireChannel::RecvStatus::kOk) {
      return nullptr;
    }
  }
  WireJoin join;
  WireReader r(frames[0].payload.data(), frames[0].payload.size());
  if (frames.size() != 1 || frames[0].type != WireMsg::kJoin || !DecodeJoin(&r, &join)) {
    return nullptr;
  }
  // Shared-secret check happens here, before any job bytes ship: a
  // joiner with the wrong token learns nothing about the program under
  // replay, it just sees its socket close.
  if (!options_.token.empty() && join.token != options_.token) {
    std::fprintf(stderr, "[dist] tcp: refused joiner '%s': bad auth token\n",
                 join.ident.c_str());
    return nullptr;
  }
  // A standing fleet ships no job at join time; jobs attach later via
  // kJobBegin on the live channel.
  if (!options_.persistent && !chan->Send(WireMsg::kJob, job_)) {
    return nullptr;
  }
  return chan;
}

std::vector<std::unique_ptr<WireChannel>> TcpTransport::Start(u32 num_shards) {
  std::vector<std::unique_ptr<WireChannel>> channels(num_shards);
  listen_fd_ = TcpListen(listen_, &bound_);
  const bool self_spawning =
      endpoints_.empty() && self_spawn_ != nullptr && PortIsEphemeral(listen_);
  if (listen_fd_ < 0 && endpoints_.empty()) {
    return channels;  // Nothing can ever connect: all slots dead.
  }
  const i64 deadline =
      NowMs() + (self_spawning ? kSelfSpawnDeadlineMs : kRemoteJoinDeadlineMs);

  u32 filled = 0;
  // Self-spawned loopback children: forked before any channel exists, so
  // the only coordinator fd they must drop is the listener.
  if (self_spawning && listen_fd_ >= 0) {
    std::fflush(stdout);
    std::fflush(stderr);
    for (u32 s = 0; s < num_shards; ++s) {
      const pid_t pid = ::fork();
      if (pid == 0) {
        ::close(listen_fd_);
        const bool ok = self_spawn_(bound_);
        ::_exit(ok ? 0 : 1);
      }
      if (pid > 0) {
        pids_.push_back(pid);
      }
    }
  }
  // Dial out to waiting daemons (retrace_shardd --listen). The daemon
  // still speaks first (kJoin) once accepted — the handshake does not
  // care who dialed.
  for (const std::string& endpoint : endpoints_) {
    if (filled >= num_shards || NowMs() >= deadline) {
      break;  // Dead endpoints must not eat the join window serially.
    }
    const int fd = TcpConnect(endpoint);
    if (fd < 0) {
      std::fprintf(stderr, "[dist] tcp: failed to dial shard endpoint %s\n", endpoint.c_str());
      continue;
    }
    std::unique_ptr<WireChannel> chan =
        Handshake(fd, std::min(deadline, NowMs() + kPerHandshakeMs));
    if (chan != nullptr) {
      channels[filled++] = std::move(chan);
    }
  }
  // Inbound joiners fill the remaining slots until the deadline. An
  // ephemeral port only admits joiners this process spawned itself —
  // no remote daemon can learn it — so without self-spawn there is
  // nobody to wait for and the empty slots fail fast instead of
  // burning the join window.
  while (filled < num_shards && listen_fd_ >= 0 &&
         (self_spawning || !PortIsEphemeral(listen_))) {
    const i64 remaining = deadline - NowMs();
    if (remaining <= 0) {
      break;
    }
    struct pollfd pfd = {};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, static_cast<int>(std::min<i64>(remaining, 200)));
    if (ready < 0 && errno != EINTR) {
      break;
    }
    if (ready <= 0 || (pfd.revents & POLLIN) == 0) {
      continue;
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      continue;
    }
    SetNoDelay(fd);
    std::unique_ptr<WireChannel> chan =
        Handshake(fd, std::min(deadline, NowMs() + kPerHandshakeMs));
    if (chan != nullptr) {
      channels[filled++] = std::move(chan);
    }
  }
  if (filled < num_shards) {
    std::fprintf(stderr, "[dist] tcp: only %u of %u shard(s) joined at %s\n", filled,
                 num_shards, bound_.c_str());
  }
  // The fleet is complete (or as complete as it gets): stop accepting.
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  return channels;
}

void TcpTransport::Kill() {
  for (const int pid : pids_) {
    if (pid > 0) {
      ::kill(pid, SIGKILL);
    }
  }
  // Remote shards cannot be signalled; they observe the closed socket
  // when the coordinator drops their channel and wind down on their own.
}

void TcpTransport::Reap() { ReapWithDeadline(&pids_); }

}  // namespace retrace
