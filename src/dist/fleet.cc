#include "src/dist/fleet.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "src/dist/shard.h"
#include "src/dist/wire.h"

namespace retrace {
namespace {

// Mirrors the coordinator's per-search backstop: a standing fleet has
// no business being wider than the widest search it can serve.
constexpr u32 kMaxFleetShards = 64;

}  // namespace

ShardFleet::ShardFleet(const ReplayConfig& config)
    : config_(config), num_shards_(std::clamp(config.num_shards, 1u, kMaxFleetShards)) {}

ShardFleet::~ShardFleet() { Shutdown(); }

bool ShardFleet::Start() {
  if (started_) {
    return live_shards() > 0;
  }
  TcpTransportOptions options;
  options.token = config_.shard_token;
  options.persistent = true;
  transport_ = std::make_unique<TcpTransport>(
      config_.tcp_listen, config_.shard_endpoints, std::vector<u8>{},
      [token = config_.shard_token](const std::string& endpoint) {
        const int fd = TcpConnect(endpoint);
        return fd >= 0 &&
               ServeShardJobs(fd, "fleet-selfspawn", 0, token) == ShardRunStatus::kOk;
      },
      std::move(options));
  channels_ = transport_->Start(num_shards_);
  channels_.resize(num_shards_);
  started_ = true;
  const u32 live = live_shards();
  if (live < num_shards_) {
    std::fprintf(stderr, "[fleet] %u of %u shard slot(s) failed to join\n", num_shards_ - live,
                 num_shards_);
  }
  return live > 0;
}

std::vector<WireChannel*> ShardFleet::AttachJob(const ReplayConfig& shard_cfg,
                                                const InstrumentationPlan& plan,
                                                const BugReport& report) {
  std::vector<WireChannel*> out(num_shards_, nullptr);
  if (!started_) {
    return out;
  }
  WireJobBegin begin;
  begin.job_id = ++jobs_dispatched_;
  begin.job.config = shard_cfg;
  begin.job.plan = plan;
  begin.job.report = report;
  WireWriter w;
  EncodeJobBegin(begin, &w);
  for (u32 s = 0; s < num_shards_; ++s) {
    if (channels_[s] == nullptr) {
      continue;
    }
    // Blocking send: it also flushes any relay tail still queued from
    // the previous job, so the shard sees stale frames strictly before
    // the new kJobBegin (its between-jobs loop discards them).
    if (!channels_[s]->Send(WireMsg::kJobBegin, w.buf())) {
      // Broke while idle: retire the slot now rather than letting the
      // scheduler seed a frontier partition into a dead channel.
      channels_[s].reset();
      std::fprintf(stderr, "[fleet] shard %u retired: channel broke between jobs\n", s);
      continue;
    }
    out[s] = channels_[s].get();
  }
  return out;
}

void ShardFleet::KillAll() {
  if (transport_ != nullptr) {
    transport_->Kill();
  }
}

void ShardFleet::FinishJob(const std::vector<bool>& lost) {
  for (u32 s = 0; s < num_shards_ && s < lost.size(); ++s) {
    if (lost[s] && channels_[s] != nullptr) {
      // Closing the channel is the retire signal: a local child gets
      // reaped at Shutdown, a remote shardd sees EOF and exits its
      // serve loop.
      channels_[s].reset();
      std::fprintf(stderr, "[fleet] shard %u retired: lost mid-job\n", s);
    }
  }
}

void ShardFleet::Shutdown() {
  if (!started_) {
    transport_.reset();
    return;
  }
  WireWriter w;
  EncodeJobEnd(WireJobEnd{jobs_dispatched_}, &w);
  for (auto& chan : channels_) {
    if (chan != nullptr) {
      chan->Send(WireMsg::kJobEnd, w.buf());
    }
  }
  channels_.clear();  // Closes every fd — the backstop for shards that missed kJobEnd.
  if (transport_ != nullptr) {
    transport_->Reap();
    transport_.reset();
  }
  started_ = false;
}

u32 ShardFleet::live_shards() const {
  u32 live = 0;
  for (const auto& chan : channels_) {
    live += chan != nullptr ? 1 : 0;
  }
  return live;
}

}  // namespace retrace
