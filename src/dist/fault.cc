#include "src/dist/fault.h"

namespace retrace {

namespace {

// Parses a base-10 u64 from [p, end); advances p past the digits.
// Returns false when no digit is present or the value overflows.
bool ParseU64(const char*& p, const char* end, u64* out) {
  if (p == end || *p < '0' || *p > '9') return false;
  u64 v = 0;
  while (p != end && *p >= '0' && *p <= '9') {
    u64 digit = static_cast<u64>(*p - '0');
    if (v > (~0ull - digit) / 10) return false;
    v = v * 10 + digit;
    ++p;
  }
  *out = v;
  return true;
}

bool ConsumeWord(const char*& p, const char* end, const char* word) {
  const char* q = p;
  while (*word != '\0') {
    if (q == end || *q != *word) return false;
    ++q;
    ++word;
  }
  p = q;
  return true;
}

bool Fail(std::string* error, const std::string& why) {
  if (error != nullptr) *error = why;
  return false;
}

}  // namespace

std::vector<FaultAction> FaultSpec::ForShard(u32 shard) const {
  std::vector<FaultAction> out;
  for (const Clause& c : clauses) {
    if (c.shard == kFaultAllShards || c.shard == static_cast<i32>(shard)) {
      out.push_back(c.action);
    }
  }
  return out;
}

bool ParseFaultSpec(const std::string& text, FaultSpec* out, std::string* error) {
  out->clauses.clear();
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t comma = text.find(',', pos);
    size_t stop = comma == std::string::npos ? text.size() : comma;
    // Tolerate surrounding whitespace so shell-quoted lists read well.
    size_t begin = pos;
    while (begin < stop && (text[begin] == ' ' || text[begin] == '\t')) ++begin;
    size_t finish = stop;
    while (finish > begin && (text[finish - 1] == ' ' || text[finish - 1] == '\t')) --finish;
    pos = stop + 1;
    if (begin == finish) {
      if (text.empty()) break;  // "" is the explicit no-faults spec.
      return Fail(error, "empty fault clause");
    }

    const char* p = text.data() + begin;
    const char* end = text.data() + finish;
    FaultSpec::Clause clause;

    if (ConsumeWord(p, end, "all")) {
      clause.shard = kFaultAllShards;
    } else if (ConsumeWord(p, end, "shard")) {
      u64 id = 0;
      if (!ParseU64(p, end, &id) || id > 0x7fffffff) {
        return Fail(error, "bad shard id in fault clause");
      }
      clause.shard = static_cast<i32>(id);
    } else {
      return Fail(error, "fault target must be 'all' or 'shard<N>'");
    }
    if (p == end || *p != ':') return Fail(error, "expected ':' after fault target");
    ++p;

    if (ConsumeWord(p, end, "drop")) {
      clause.action.kind = FaultAction::Kind::kDrop;
    } else if (ConsumeWord(p, end, "delay")) {
      clause.action.kind = FaultAction::Kind::kDelay;
    } else if (ConsumeWord(p, end, "dup")) {
      clause.action.kind = FaultAction::Kind::kDup;
    } else if (ConsumeWord(p, end, "corrupt")) {
      clause.action.kind = FaultAction::Kind::kCorrupt;
    } else if (ConsumeWord(p, end, "close")) {
      clause.action.kind = FaultAction::Kind::kClose;
    } else if (ConsumeWord(p, end, "hang")) {
      clause.action.kind = FaultAction::Kind::kHang;
    } else {
      return Fail(error, "unknown fault action (want drop|delay|dup|corrupt|close|hang)");
    }

    if (p != end && *p == '@') {
      ++p;
      if (!ConsumeWord(p, end, "frame")) return Fail(error, "expected 'frame<N>' after '@'");
      u64 n = 0;
      if (!ParseU64(p, end, &n) || n == 0) return Fail(error, "frame number must be >= 1");
      clause.action.at_frame = n;
    } else if (p != end && *p == '%') {
      ++p;
      u64 pct = 0;
      if (!ParseU64(p, end, &pct) || pct == 0 || pct > 100) {
        return Fail(error, "percent must be in 1..100");
      }
      clause.action.percent = static_cast<u32>(pct);
    } else {
      return Fail(error, "fault action needs a trigger: '@frame<N>' or '%<P>'");
    }
    if (p != end) return Fail(error, "trailing garbage in fault clause");

    out->clauses.push_back(clause);
    if (comma == std::string::npos) break;
  }
  if (!text.empty() && out->clauses.empty()) return Fail(error, "empty fault spec clause list");
  return true;
}

// ---------------------------------------------------------------------------
// FaultInjectingChannel
// ---------------------------------------------------------------------------

FaultInjectingChannel::FaultInjectingChannel(std::unique_ptr<WireChannel> inner,
                                             std::vector<FaultAction> actions, u64 seed)
    // Base fd -1: the decorator never does I/O itself, so the base dtor
    // must not own (and close) anything.
    : WireChannel(-1), inner_(std::move(inner)), actions_(std::move(actions)), rng_(seed) {}

void FaultInjectingChannel::DropInner() {
  if (inner_ == nullptr) return;
  tx_snapshot_ = inner_->tx_bytes();
  rx_snapshot_ = inner_->rx_bytes();
  dropped_snapshot_ = inner_->dropped_frames();
  inner_.reset();  // Closes the real fd — the shard sees EOF.
}

bool FaultInjectingChannel::Send(WireMsg type, const std::vector<u8>& payload) {
  if (closed_) return false;
  if (muted_) return true;  // Swallowed: a hung peer never acks anyway.
  return inner_->Send(type, payload);
}

bool FaultInjectingChannel::Queue(WireMsg type, const std::vector<u8>& payload, bool droppable) {
  if (closed_) return false;
  if (muted_) return true;
  return inner_->Queue(type, payload, droppable);
}

const FaultAction* FaultInjectingChannel::Match(u64 frame_index) {
  const FaultAction* hit = nullptr;
  for (const FaultAction& a : actions_) {
    // Percent clauses burn one draw per frame whether or not an earlier
    // clause already matched, so one clause's trigger never shifts
    // another's schedule.
    bool fires = false;
    if (a.at_frame > 0) {
      fires = frame_index == a.at_frame;
    } else if (a.percent > 0) {
      fires = rng_.NextBelow(100) < a.percent;
    }
    if (fires && hit == nullptr) hit = &a;
  }
  return hit;
}

WireChannel::RecvStatus FaultInjectingChannel::Poll(int timeout_ms, std::vector<WireFrame>* out) {
  if (closed_) return RecvStatus::kClosed;

  std::vector<WireFrame> fresh;
  RecvStatus status = RecvStatus::kOk;
  if (inner_ != nullptr) {
    status = inner_->Poll(timeout_ms, &fresh);
  }

  // Delayed frames re-enter ahead of this batch: they were received
  // first, and order within the channel is part of the protocol.
  std::vector<WireFrame> incoming = std::move(delayed_);
  delayed_.clear();
  for (WireFrame& f : fresh) incoming.push_back(std::move(f));

  for (WireFrame& frame : incoming) {
    ++frames_seen_;
    const FaultAction* hit = Match(frames_seen_);
    if (muted_) continue;  // Hung: read and discard everything.
    if (hit == nullptr) {
      out->push_back(std::move(frame));
      continue;
    }
    switch (hit->kind) {
      case FaultAction::Kind::kClose:
        closed_ = true;
        DropInner();
        // Frames before the trigger were already appended — the
        // coordinator sees a clean prefix, then loss.
        return RecvStatus::kClosed;
      case FaultAction::Kind::kHang:
        muted_ = true;  // This frame and everything after vanishes.
        break;
      case FaultAction::Kind::kDrop:
        break;
      case FaultAction::Kind::kDup:
        out->push_back(frame);
        out->push_back(std::move(frame));
        break;
      case FaultAction::Kind::kDelay:
        delayed_.push_back(std::move(frame));
        break;
      case FaultAction::Kind::kCorrupt:
        if (frame.payload.empty()) break;  // Nothing to flip: drop it.
        frame.payload[frame.payload.size() / 2] ^= 0x20;
        out->push_back(std::move(frame));
        break;
    }
  }

  if (muted_) {
    // A hung process holds its socket open; even if the real peer dies
    // underneath, the coordinator must not get a free EOF signal — the
    // heartbeat deadline is the only detector a hang leaves working.
    if (status != RecvStatus::kOk) DropInner();
    return RecvStatus::kOk;
  }
  return status;
}

u64 FaultInjectingChannel::tx_bytes() const {
  return inner_ != nullptr ? inner_->tx_bytes() : tx_snapshot_;
}
u64 FaultInjectingChannel::rx_bytes() const {
  return inner_ != nullptr ? inner_->rx_bytes() : rx_snapshot_;
}
u64 FaultInjectingChannel::dropped_frames() const {
  return inner_ != nullptr ? inner_->dropped_frames() : dropped_snapshot_;
}
int FaultInjectingChannel::fd() const { return inner_ != nullptr ? inner_->fd() : -1; }

// ---------------------------------------------------------------------------
// FaultInjectingTransport
// ---------------------------------------------------------------------------

FaultInjectingTransport::FaultInjectingTransport(std::unique_ptr<Transport> inner, FaultSpec spec,
                                                 u64 seed)
    : inner_(std::move(inner)), spec_(std::move(spec)), seed_(seed) {}

std::vector<std::unique_ptr<WireChannel>> FaultInjectingTransport::Start(u32 num_shards) {
  std::vector<std::unique_ptr<WireChannel>> chans = inner_->Start(num_shards);
  for (u32 s = 0; s < chans.size(); ++s) {
    if (chans[s] == nullptr) continue;
    std::vector<FaultAction> actions = spec_.ForShard(s);
    if (actions.empty()) continue;
    // Per-slot rng stream: the same spec + seed fires identically run
    // over run, independent of fleet size.
    u64 slot_seed = seed_ ^ (0x9e3779b97f4a7c15ull * (static_cast<u64>(s) + 1));
    chans[s] = std::make_unique<FaultInjectingChannel>(std::move(chans[s]), std::move(actions),
                                                       slot_seed);
  }
  return chans;
}

void FaultInjectingTransport::Kill() { inner_->Kill(); }
void FaultInjectingTransport::Reap() { inner_->Reap(); }

}  // namespace retrace
