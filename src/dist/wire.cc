#include "src/dist/wire.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

namespace retrace {
namespace {

// Frame header: magic u32 | version u16 | type u16 | payload_len u32 |
// digest u64.
constexpr size_t kHeaderSize = 4 + 2 + 2 + 4 + 8;
// Hard ceiling on one payload. The largest real frames (verdict batches,
// shard results) are a few MB; anything near this is a corrupt length.
constexpr u32 kMaxPayload = 256u * 1024u * 1024u;

void PutLE(u64 v, size_t bytes, std::vector<u8>* out) {
  for (size_t i = 0; i < bytes; ++i) {
    out->push_back(static_cast<u8>(v >> (8 * i)));
  }
}

u64 GetLE(const u8* p, size_t bytes) {
  u64 v = 0;
  for (size_t i = 0; i < bytes; ++i) {
    v |= static_cast<u64>(p[i]) << (8 * i);
  }
  return v;
}

}  // namespace

void WireWriter::U16(u16 v) { PutLE(v, 2, &buf_); }
void WireWriter::U32(u32 v) { PutLE(v, 4, &buf_); }
void WireWriter::U64(u64 v) { PutLE(v, 8, &buf_); }

void WireWriter::F64(double v) {
  u64 bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void WireWriter::Str(const std::string& s) {
  U32(static_cast<u32>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

bool WireReader::Raw(void* out, size_t n) {
  if (!ok_ || n_ - off_ < n) {
    ok_ = false;
    return false;
  }
  std::memcpy(out, p_ + off_, n);
  off_ += n;
  return true;
}

bool WireReader::U8(u8* v) { return Raw(v, 1); }

bool WireReader::U16(u16* v) {
  u8 raw[2];
  if (!Raw(raw, 2)) {
    return false;
  }
  *v = static_cast<u16>(GetLE(raw, 2));
  return true;
}

bool WireReader::U32(u32* v) {
  u8 raw[4];
  if (!Raw(raw, 4)) {
    return false;
  }
  *v = static_cast<u32>(GetLE(raw, 4));
  return true;
}

bool WireReader::U64(u64* v) {
  u8 raw[8];
  if (!Raw(raw, 8)) {
    return false;
  }
  *v = GetLE(raw, 8);
  return true;
}

bool WireReader::I64(i64* v) {
  u64 raw = 0;
  if (!U64(&raw)) {
    return false;
  }
  *v = static_cast<i64>(raw);
  return true;
}

bool WireReader::I32(i32* v) {
  u32 raw = 0;
  if (!U32(&raw)) {
    return false;
  }
  *v = static_cast<i32>(raw);
  return true;
}

bool WireReader::F64(double* v) {
  u64 bits = 0;
  if (!U64(&bits)) {
    return false;
  }
  std::memcpy(v, &bits, sizeof(*v));
  return true;
}

bool WireReader::Str(std::string* s) {
  u32 len = 0;
  if (!U32(&len) || !FitsCount(len, 1)) {
    return false;
  }
  s->assign(reinterpret_cast<const char*>(p_ + off_), len);
  off_ += len;
  return true;
}

bool WireReader::FitsCount(u64 count, size_t min_bytes_each) {
  if (!ok_ || count > remaining() / (min_bytes_each == 0 ? 1 : min_bytes_each)) {
    ok_ = false;
    return false;
  }
  return true;
}

bool WireReader::Skip(size_t n) {
  if (!ok_ || n_ - off_ < n) {
    ok_ = false;
    return false;
  }
  off_ += n;
  return true;
}

u64 WireDigest(const u8* data, size_t n) {
  u64 h = 0x2545f4914f6cdd1dull;
  // Mix 8 bytes at a time, then the tail byte by byte.
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    h = HashMix(h, GetLE(data + i, 8));
  }
  for (; i < n; ++i) {
    h = HashMix(h, data[i]);
  }
  return HashMix(h, n);
}

void AppendFrame(WireMsg type, const std::vector<u8>& payload, std::vector<u8>* out) {
  PutLE(kWireMagic, 4, out);
  PutLE(kWireVersion, 2, out);
  PutLE(static_cast<u16>(type), 2, out);
  PutLE(static_cast<u32>(payload.size()), 4, out);
  PutLE(WireDigest(payload.data(), payload.size()), 8, out);
  out->insert(out->end(), payload.begin(), payload.end());
}

void FrameParser::Append(const u8* data, size_t n) {
  buf_.insert(buf_.end(), data, data + n);
}

FrameStatus FrameParser::Next(WireFrame* out) {
  if (fatal_ != FrameStatus::kNeedMore) {
    return fatal_;
  }
  if (buf_.size() - off_ < kHeaderSize) {
    return FrameStatus::kNeedMore;
  }
  const u8* h = buf_.data() + off_;
  if (static_cast<u32>(GetLE(h, 4)) != kWireMagic) {
    return fatal_ = FrameStatus::kCorrupt;
  }
  if (static_cast<u16>(GetLE(h + 4, 2)) != kWireVersion) {
    return fatal_ = FrameStatus::kVersionMismatch;
  }
  const u16 type = static_cast<u16>(GetLE(h + 6, 2));
  const u32 len = static_cast<u32>(GetLE(h + 8, 4));
  const u64 digest = GetLE(h + 12, 8);
  if (len > kMaxPayload) {
    return fatal_ = FrameStatus::kCorrupt;
  }
  if (buf_.size() - off_ < kHeaderSize + len) {
    return FrameStatus::kNeedMore;
  }
  const u8* payload = h + kHeaderSize;
  if (WireDigest(payload, len) != digest) {
    return fatal_ = FrameStatus::kCorrupt;
  }
  out->type = static_cast<WireMsg>(type);
  out->payload.assign(payload, payload + len);
  off_ += kHeaderSize + len;
  // Compact once the consumed prefix dominates, so a long-lived stream
  // does not grow without bound.
  if (off_ > 1u << 20 && off_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(off_));
    off_ = 0;
  }
  return FrameStatus::kFrame;
}

// ----- Message payload codecs -----

void EncodeHello(const WireHello& hello, WireWriter* w) {
  w->U32(hello.shard_id);
  w->U32(hello.num_shards);
  w->U32(hello.pending_count);
}

bool DecodeHello(WireReader* r, WireHello* out) {
  return r->U32(&out->shard_id) && r->U32(&out->num_shards) && r->U32(&out->pending_count);
}

void EncodePending(const PortablePending& pending, WireWriter* w) {
  const PortableTrace& trace = *pending.trace;
  w->U32(static_cast<u32>(trace.nodes.size()));
  for (const ExprNode& node : trace.nodes) {
    w->U8(static_cast<u8>(node.op));
    w->I32(node.a);
    w->I32(node.b);
    w->I64(node.imm);
  }
  w->U32(static_cast<u32>(trace.constraints.size()));
  for (const Constraint& c : trace.constraints) {
    w->I32(c.expr);
    w->U8(c.want_true ? 1 : 0);
  }
  w->U64(pending.len);
  w->U8(pending.negate_last ? 1 : 0);
  w->U32(static_cast<u32>(pending.seed->size()));
  for (const i64 v : *pending.seed) {
    w->I64(v);
  }
  w->U32(static_cast<u32>(pending.domains->size()));
  for (const Interval& dom : *pending.domains) {
    w->I64(dom.lo);
    w->I64(dom.hi);
  }
  w->U64(pending.priority);
  w->U64(pending.dir_score);
}

bool DecodePending(WireReader* r, PortablePending* out) {
  auto trace = std::make_shared<PortableTrace>();
  u32 node_count = 0;
  if (!r->U32(&node_count) || !r->FitsCount(node_count, 1 + 4 + 4 + 8)) {
    return false;
  }
  trace->nodes.reserve(node_count);
  for (u32 i = 0; i < node_count; ++i) {
    ExprNode node;
    u8 op = 0;
    if (!r->U8(&op) || !r->I32(&node.a) || !r->I32(&node.b) || !r->I64(&node.imm)) {
      return false;
    }
    if (op > static_cast<u8>(ExprOp::kTruncChar)) {
      return false;
    }
    node.op = static_cast<ExprOp>(op);
    // Topological invariant: children strictly precede parents, so the
    // importing arena can re-intern in one forward pass.
    const auto child_ok = [i](ExprRef ref) {
      return ref == kNoExpr || (ref >= 0 && static_cast<u32>(ref) < i);
    };
    if (!child_ok(node.a) || !child_ok(node.b)) {
      return false;
    }
    trace->nodes.push_back(node);
  }
  u32 constraint_count = 0;
  if (!r->U32(&constraint_count) || !r->FitsCount(constraint_count, 4 + 1)) {
    return false;
  }
  trace->constraints.reserve(constraint_count);
  for (u32 i = 0; i < constraint_count; ++i) {
    Constraint c;
    u8 want = 0;
    if (!r->I32(&c.expr) || !r->U8(&want)) {
      return false;
    }
    if (c.expr < 0 || static_cast<u32>(c.expr) >= node_count) {
      return false;
    }
    c.want_true = want != 0;
    trace->constraints.push_back(c);
  }
  u64 len = 0;
  u8 negate = 0;
  if (!r->U64(&len) || len > constraint_count || !r->U8(&negate)) {
    return false;
  }
  u32 seed_count = 0;
  if (!r->U32(&seed_count) || !r->FitsCount(seed_count, 8)) {
    return false;
  }
  auto seed = std::make_shared<std::vector<i64>>();
  seed->reserve(seed_count);
  for (u32 i = 0; i < seed_count; ++i) {
    i64 v = 0;
    if (!r->I64(&v)) {
      return false;
    }
    seed->push_back(v);
  }
  u32 domain_count = 0;
  if (!r->U32(&domain_count) || !r->FitsCount(domain_count, 16)) {
    return false;
  }
  auto domains = std::make_shared<std::vector<Interval>>();
  domains->reserve(domain_count);
  for (u32 i = 0; i < domain_count; ++i) {
    Interval dom;
    if (!r->I64(&dom.lo) || !r->I64(&dom.hi)) {
      return false;
    }
    domains->push_back(dom);
  }
  u64 priority = 0;
  u64 dir_score = 0;
  if (!r->U64(&priority) || !r->U64(&dir_score) || !r->ok()) {
    return false;
  }
  // Variable ids must name real input cells: seed/domains snapshots cover
  // every cell of the producing run, so an id past both is hostile or
  // corrupt — and would otherwise make the consuming solver size its
  // model vector to max_var + 1 (a multi-GB allocation for a forged id).
  const u64 var_limit = std::max<u64>(seed_count, domain_count);
  for (const ExprNode& node : trace->nodes) {
    if (node.op == ExprOp::kVar &&
        (node.imm < 0 || static_cast<u64>(node.imm) >= var_limit)) {
      return false;
    }
  }
  out->trace = std::move(trace);
  out->len = static_cast<size_t>(len);
  out->negate_last = negate != 0;
  out->seed = std::move(seed);
  out->domains = std::move(domains);
  out->priority = priority;
  out->dir_score = dir_score;
  return true;
}

void EncodeVerdicts(const WireVerdicts& verdicts, WireWriter* w) {
  w->U32(static_cast<u32>(verdicts.sat.size()));
  for (const SliceCache::SatEntry& entry : verdicts.sat) {
    w->U64(entry.key);
    w->U32(static_cast<u32>(entry.model.size()));
    for (const auto& [var, value] : entry.model) {
      w->I32(var);
      w->I64(value);
    }
  }
  w->U32(static_cast<u32>(verdicts.unsat.size()));
  for (const SliceCache::UnsatEntry& entry : verdicts.unsat) {
    w->U64(entry.key);
    w->U64(entry.check);
  }
}

bool DecodeVerdicts(WireReader* r, WireVerdicts* out) {
  u32 sat_count = 0;
  if (!r->U32(&sat_count) || !r->FitsCount(sat_count, 8 + 4)) {
    return false;
  }
  out->sat.reserve(sat_count);
  for (u32 i = 0; i < sat_count; ++i) {
    SliceCache::SatEntry entry;
    u32 model_count = 0;
    if (!r->U64(&entry.key) || !r->U32(&model_count) || !r->FitsCount(model_count, 4 + 8)) {
      return false;
    }
    entry.model.reserve(model_count);
    for (u32 j = 0; j < model_count; ++j) {
      i32 var = 0;
      i64 value = 0;
      if (!r->I32(&var) || !r->I64(&value)) {
        return false;
      }
      entry.model.emplace_back(var, value);
    }
    out->sat.push_back(std::move(entry));
  }
  u32 unsat_count = 0;
  if (!r->U32(&unsat_count) || !r->FitsCount(unsat_count, 16)) {
    return false;
  }
  out->unsat.reserve(unsat_count);
  for (u32 i = 0; i < unsat_count; ++i) {
    SliceCache::UnsatEntry entry;
    if (!r->U64(&entry.key) || !r->U64(&entry.check)) {
      return false;
    }
    out->unsat.push_back(entry);
  }
  return r->ok();
}

namespace {

// Ceilings for payloads accepted from the network by a listening
// retrace_shardd. Generous for any real program in this repo; a frame
// near them is hostile or corrupt.
constexpr u32 kMaxJobStrings = 4096;      // argv entries, streams, files.
constexpr i64 kMaxJobStreamLen = 1 << 24; // Logical stream length (cells!).
constexpr u32 kMaxJobBranches = 1 << 24;  // Plan bitset size.
constexpr u64 kMaxJobLogBits = 1ull << 32;
// v4 plan provenance ceilings: detail_level counts refinement rounds
// (every round adds at least one branch, so it can never exceed the
// branch ceiling) and provenance is a short human-readable lineage.
constexpr u32 kMaxPlanDetailLevel = kMaxJobBranches;
constexpr size_t kMaxPlanProvenanceLen = 4096;

void EncodeCrashSite(const CrashSite& crash, WireWriter* w) {
  w->U8(static_cast<u8>(crash.kind));
  w->I32(crash.func);
  w->I32(crash.loc.unit);
  w->I32(crash.loc.line);
  w->I32(crash.loc.col);
  w->I64(crash.code);
}

bool DecodeCrashSite(WireReader* r, CrashSite* out) {
  u8 kind = 0;
  if (!r->U8(&kind) || kind > static_cast<u8>(CrashSite::Kind::kStackOverflow)) {
    return false;
  }
  out->kind = static_cast<CrashSite::Kind>(kind);
  return r->I32(&out->func) && r->I32(&out->loc.unit) && r->I32(&out->loc.line) &&
         r->I32(&out->loc.col) && r->I64(&out->code);
}

void EncodeWorkerStats(const ReplayWorkerStats& w, WireWriter* out) {
  out->U64(w.runs);
  out->U64(w.solver_calls);
  out->U64(w.aborts_forced_direction);
  out->U64(w.aborts_concrete_mismatch);
  out->U64(w.aborts_log_exhausted);
  out->U64(w.crashes_wrong_site);
  out->U64(w.steals);
  out->U64(w.dedup_skips);
  out->U64(w.cancelled_runs);
  out->U64(w.slices_solved);
  out->U64(w.slice_sat_hits);
  out->U64(w.slice_unsat_hits);
  out->U64(w.pendings_pruned);
  out->U64(w.corpus_runs);
  out->U64(w.promotions);
}

bool DecodeWorkerStats(WireReader* r, ReplayWorkerStats* w) {
  return r->U64(&w->runs) && r->U64(&w->solver_calls) && r->U64(&w->aborts_forced_direction) &&
         r->U64(&w->aborts_concrete_mismatch) && r->U64(&w->aborts_log_exhausted) &&
         r->U64(&w->crashes_wrong_site) && r->U64(&w->steals) && r->U64(&w->dedup_skips) &&
         r->U64(&w->cancelled_runs) && r->U64(&w->slices_solved) &&
         r->U64(&w->slice_sat_hits) && r->U64(&w->slice_unsat_hits) &&
         r->U64(&w->pendings_pruned) && r->U64(&w->corpus_runs) && r->U64(&w->promotions);
}

void EncodeStats(const ReplayStats& s, WireWriter* out) {
  out->U64(s.runs);
  out->U64(s.solver_calls);
  out->U64(s.aborts_forced_direction);
  out->U64(s.aborts_concrete_mismatch);
  out->U64(s.aborts_log_exhausted);
  out->U64(s.crashes_wrong_site);
  out->U64(s.pending_peak);
  out->U64(s.steals);
  out->U64(s.dedup_skips);
  out->U64(s.cancelled_runs);
  out->U64(s.slices_solved);
  out->U64(s.slice_sat_hits);
  out->U64(s.slice_unsat_hits);
  out->U64(s.slice_evictions);
  out->U64(s.pendings_exported);
  out->U64(s.pendings_imported);
  out->U64(s.rebalance_rounds);
  out->U64(s.pendings_pruned);
  out->U64(s.corpus_runs);
  out->U64(s.promotions);
  // v5: graceful-degradation counters. Zero in shard-originated payloads
  // (only the coordinator observes deaths), carried for codec fidelity.
  out->U64(s.shards_lost);
  out->U64(s.pendings_recovered);
  out->U64(s.heartbeats_missed);
  out->U8(s.fallback_inprocess ? 1 : 0);
  for (const u64 v : s.discipline_runs) {
    out->U64(v);
  }
  for (const u64 v : s.discipline_on_log) {
    out->U64(v);
  }
  out->U32(static_cast<u32>(s.per_worker.size()));
  for (const ReplayWorkerStats& w : s.per_worker) {
    EncodeWorkerStats(w, out);
  }
  EncodeFailureProfile(s.failure_profile, out);  // v4.
}

bool DecodeStats(WireReader* r, ReplayStats* s) {
  if (!(r->U64(&s->runs) && r->U64(&s->solver_calls) && r->U64(&s->aborts_forced_direction) &&
        r->U64(&s->aborts_concrete_mismatch) && r->U64(&s->aborts_log_exhausted) &&
        r->U64(&s->crashes_wrong_site) && r->U64(&s->pending_peak) && r->U64(&s->steals) &&
        r->U64(&s->dedup_skips) && r->U64(&s->cancelled_runs) && r->U64(&s->slices_solved) &&
        r->U64(&s->slice_sat_hits) && r->U64(&s->slice_unsat_hits) &&
        r->U64(&s->slice_evictions) && r->U64(&s->pendings_exported) &&
        r->U64(&s->pendings_imported) && r->U64(&s->rebalance_rounds) &&
        r->U64(&s->pendings_pruned) && r->U64(&s->corpus_runs) && r->U64(&s->promotions))) {
    return false;
  }
  u8 fallback = 0;
  if (!r->U64(&s->shards_lost) || !r->U64(&s->pendings_recovered) ||
      !r->U64(&s->heartbeats_missed) || !r->U8(&fallback)) {
    return false;
  }
  s->fallback_inprocess = fallback != 0;
  for (u64& v : s->discipline_runs) {
    if (!r->U64(&v)) {
      return false;
    }
  }
  for (u64& v : s->discipline_on_log) {
    if (!r->U64(&v)) {
      return false;
    }
  }
  u32 worker_count = 0;
  if (!r->U32(&worker_count) || !r->FitsCount(worker_count, 15 * 8)) {
    return false;
  }
  s->per_worker.resize(worker_count);
  for (u32 i = 0; i < worker_count; ++i) {
    if (!DecodeWorkerStats(r, &s->per_worker[i])) {
      return false;
    }
  }
  return DecodeFailureProfile(r, &s->failure_profile);
}

}  // namespace

// v4: nested in every stats payload; declared in wire.h so the codec
// tests can exercise hostile shapes (non-monotone ids, forged counts)
// without hand-building a whole shard result.
void EncodeFailureProfile(const ReplayFailureProfile& profile, WireWriter* w) {
  w->U32(static_cast<u32>(profile.branches.size()));
  for (const BranchFailureCounts& c : profile.branches) {
    w->U32(c.branch_id);
    w->U64(c.deaths_concrete);
    w->U64(c.deaths_exhausted);
    w->U64(c.deaths_wrong_crash);
    w->U64(c.blind_execs);
  }
  w->U64(profile.deaths_unattributed);
}

bool DecodeFailureProfile(WireReader* r, ReplayFailureProfile* out) {
  u32 count = 0;
  if (!r->U32(&count) || !r->FitsCount(count, 4 + 4 * 8) || count > kMaxJobBranches) {
    return false;
  }
  out->branches.resize(count);
  u64 prev_id = 0;
  for (u32 i = 0; i < count; ++i) {
    BranchFailureCounts& c = out->branches[i];
    if (!r->U32(&c.branch_id) || !r->U64(&c.deaths_concrete) || !r->U64(&c.deaths_exhausted) ||
        !r->U64(&c.deaths_wrong_crash) || !r->U64(&c.blind_execs)) {
      return false;
    }
    if (c.branch_id >= kMaxJobBranches || (i > 0 && c.branch_id <= prev_id)) {
      return false;
    }
    prev_id = c.branch_id;
  }
  return r->U64(&out->deaths_unattributed);
}

void EncodeShardResult(const WireShardResult& shard, WireWriter* w) {
  const ReplayResult& result = shard.result;
  w->U8(result.reproduced ? 1 : 0);
  w->U8(result.budget_exhausted ? 1 : 0);
  w->F64(result.wall_seconds);
  w->U32(static_cast<u32>(result.witness_argv.size()));
  for (const std::string& arg : result.witness_argv) {
    w->Str(arg);
  }
  w->U32(static_cast<u32>(result.witness_cells.size()));
  for (const i64 cell : result.witness_cells) {
    w->I64(cell);
  }
  EncodeCrashSite(result.crash, w);
  EncodeStats(result.stats, w);
  w->U64(shard.verdicts_published);
  w->U64(shard.verdicts_imported);
  w->U64(shard.pendings_seeded);
}

bool DecodeShardResult(WireReader* r, WireShardResult* out) {
  ReplayResult& result = out->result;
  u8 reproduced = 0;
  u8 exhausted = 0;
  if (!r->U8(&reproduced) || !r->U8(&exhausted) || !r->F64(&result.wall_seconds)) {
    return false;
  }
  result.reproduced = reproduced != 0;
  result.budget_exhausted = exhausted != 0;
  u32 argv_count = 0;
  if (!r->U32(&argv_count) || !r->FitsCount(argv_count, 4)) {
    return false;
  }
  result.witness_argv.resize(argv_count);
  for (u32 i = 0; i < argv_count; ++i) {
    if (!r->Str(&result.witness_argv[i])) {
      return false;
    }
  }
  u32 cell_count = 0;
  if (!r->U32(&cell_count) || !r->FitsCount(cell_count, 8)) {
    return false;
  }
  result.witness_cells.resize(cell_count);
  for (u32 i = 0; i < cell_count; ++i) {
    if (!r->I64(&result.witness_cells[i])) {
      return false;
    }
  }
  if (!DecodeCrashSite(r, &result.crash)) {
    return false;
  }
  if (!DecodeStats(r, &result.stats)) {
    return false;
  }
  return r->U64(&out->verdicts_published) && r->U64(&out->verdicts_imported) &&
         r->U64(&out->pendings_seeded) && r->ok();
}

void EncodeJoin(const WireJoin& join, WireWriter* w) {
  w->Str(join.ident);
  w->U32(join.num_workers);
  w->Str(join.token);
}

bool DecodeJoin(WireReader* r, WireJoin* out) {
  if (!r->Str(&out->ident) || out->ident.size() > 256) {
    return false;  // An identity tag this long is hostile, not helpful.
  }
  if (!r->U32(&out->num_workers) || out->num_workers > 4096) {
    return false;
  }
  if (!r->Str(&out->token) || out->token.size() > 256) {
    return false;
  }
  return r->ok();
}

void EncodeWorkRequest(const WireWorkRequest& request, WireWriter* w) {
  w->U32(request.shard_id);
  w->U32(request.want);
  w->U64(request.frontier_size);
  w->U64(request.seq);
}

bool DecodeWorkRequest(WireReader* r, WireWorkRequest* out) {
  if (!r->U32(&out->shard_id) || !r->U32(&out->want) || !r->U64(&out->frontier_size) ||
      !r->U64(&out->seq)) {
    return false;
  }
  // A zero or absurd ask is a peer bug (or a forged frame): refuse rather
  // than letting a donor carve its whole frontier into one frame.
  return out->want >= 1 && out->want <= kMaxWorkRequestWant && r->ok();
}

void EncodePendingExport(const WirePendingExport& batch, WireWriter* w) {
  w->U32(batch.requester_shard_id);
  w->U64(batch.seq);
  w->U32(static_cast<u32>(batch.pendings.size()));
  for (const PortablePending& pending : batch.pendings) {
    EncodePending(pending, w);
  }
}

bool DecodePendingExport(WireReader* r, WirePendingExport* out) {
  u32 count = 0;
  // Smallest possible pending encoding: empty trace/constraints/seed/
  // domains = 4+4+8+1+4+4+8 bytes.
  if (!r->U32(&out->requester_shard_id) || !r->U64(&out->seq) || !r->U32(&count) ||
      count > kMaxWorkRequestWant || !r->FitsCount(count, 33)) {
    return false;
  }
  out->pendings.reserve(count);
  for (u32 i = 0; i < count; ++i) {
    PortablePending pending;
    if (!DecodePending(r, &pending)) {
      return false;
    }
    out->pendings.push_back(std::move(pending));
  }
  return r->ok();
}

void EncodeHeartbeat(const WireHeartbeat& beat, WireWriter* w) { w->U64(beat.seq); }

bool DecodeHeartbeat(WireReader* r, WireHeartbeat* out) {
  return r->U64(&out->seq) && r->ok();
}

// ----- Job codec (TCP transport handshake) -----

namespace {


void EncodeConfig(const ReplayConfig& c, WireWriter* w) {
  w->U64(c.max_runs);
  w->I64(c.wall_ms);
  w->U64(c.total_steps);
  w->U64(c.max_steps_per_run);
  w->U64(c.solver.max_steps);
  w->U64(c.solver.max_enumeration);
  w->U64(c.seed);
  w->U8(c.use_syscall_log ? 1 : 0);
  w->U8(static_cast<u8>(c.pick));
  w->U32(c.num_workers);
  w->U8(c.solver_cache ? 1 : 0);
  w->U64(c.slice_cache_capacity);
  w->U32(c.solve_batch);
  w->I32(c.gossip_interval_ms);
  // v5: heartbeat knobs travel with the job so a remote shard's
  // self-termination deadline matches the coordinator's expectations.
  w->I32(c.heartbeat_interval_ms);
  w->I32(c.heartbeat_timeout_ms);
  w->U8(c.prune_subsumed ? 1 : 0);
  w->U32(static_cast<u32>(c.corpus_seeds.size()));
  for (const std::vector<i64>& seed : c.corpus_seeds) {
    w->U32(static_cast<u32>(seed.size()));
    for (const i64 v : seed) {
      w->I64(v);
    }
  }
  // v6: ship the RESOLVED engine (the coordinator's env applies to the
  // whole fleet; a shard must not re-consult its own environment).
  w->U8(static_cast<u8>(ResolveExecEngineKind(c.engine)));
}

bool DecodeConfig(WireReader* r, ReplayConfig* c) {
  u8 use_log = 0;
  u8 pick = 0;
  u8 cache = 0;
  u8 prune = 0;
  if (!(r->U64(&c->max_runs) && r->I64(&c->wall_ms) && r->U64(&c->total_steps) &&
        r->U64(&c->max_steps_per_run) && r->U64(&c->solver.max_steps) &&
        r->U64(&c->solver.max_enumeration) && r->U64(&c->seed) && r->U8(&use_log) &&
        r->U8(&pick) && r->U32(&c->num_workers) && r->U8(&cache) &&
        r->U64(&c->slice_cache_capacity) && r->U32(&c->solve_batch) &&
        r->I32(&c->gossip_interval_ms) && r->I32(&c->heartbeat_interval_ms) &&
        r->I32(&c->heartbeat_timeout_ms) && r->U8(&prune))) {
    return false;
  }
  if (pick > static_cast<u8>(ReplayConfig::Pick::kDirection) || c->num_workers > 4096 ||
      c->solve_batch > 65536) {
    return false;
  }
  // A listening retrace_shardd decodes this off the network: hostile
  // heartbeat knobs must not disable its self-termination deadline into
  // a negative wait or a decades-long one.
  if (c->heartbeat_interval_ms < 0 || c->heartbeat_interval_ms > 60'000 ||
      c->heartbeat_timeout_ms < 0 || c->heartbeat_timeout_ms > 600'000) {
    return false;
  }
  // Corpus seeds ride the config: bounded counts (a listening
  // retrace_shardd decodes this straight off the network) and sized
  // against the payload before any allocation.
  u32 corpus_count = 0;
  if (!r->U32(&corpus_count) || corpus_count > kMaxJobCorpusSeeds ||
      !r->FitsCount(corpus_count, 4)) {
    return false;
  }
  c->corpus_seeds.clear();
  c->corpus_seeds.reserve(corpus_count);
  for (u32 i = 0; i < corpus_count; ++i) {
    u32 cell_count = 0;
    if (!r->U32(&cell_count) || cell_count > kMaxJobCorpusCells ||
        !r->FitsCount(cell_count, 8)) {
      return false;
    }
    std::vector<i64> seed(cell_count);
    for (u32 j = 0; j < cell_count; ++j) {
      if (!r->I64(&seed[j])) {
        return false;
      }
    }
    c->corpus_seeds.push_back(std::move(seed));
  }
  u8 engine = 0;
  if (!r->U8(&engine) || engine > static_cast<u8>(ExecEngineKind::kBytecode)) {
    return false;
  }
  c->engine = static_cast<ExecEngineKind>(engine);
  c->use_syscall_log = use_log != 0;
  c->pick = static_cast<ReplayConfig::Pick>(pick);
  c->solver_cache = cache != 0;
  c->prune_subsumed = prune != 0;
  // A shipped job always runs one in-process shard search on the remote
  // side; transport fields never nest.
  c->num_shards = 1;
  c->transport = ReplayTransport::kFork;
  c->shard_endpoints.clear();
  c->program = ReplayProgramSources{};
  // Fault injection is a coordinator-side test harness; a shard must
  // never inject faults into its own (only) channel.
  c->fault_spec.clear();
  // The auth token authenticates the channel; it never rides the job.
  c->shard_token.clear();
  return true;
}

void EncodePlan(const InstrumentationPlan& plan, WireWriter* w) {
  w->U8(static_cast<u8>(plan.method));
  // v4: refinement provenance travels with the plan, so a remote shard
  // reports the same plan identity the coordinator chose.
  w->U32(plan.detail_level);
  w->Str(plan.provenance);
  const u32 size = static_cast<u32>(plan.branches.size());
  w->U32(size);
  for (u32 byte = 0; byte * 8 < size; ++byte) {
    u8 packed = 0;
    for (u32 bit = 0; bit < 8 && byte * 8 + bit < size; ++bit) {
      packed |= static_cast<u8>(plan.branches.Test(byte * 8 + bit) ? 1u << bit : 0u);
    }
    w->U8(packed);
  }
}

bool DecodePlan(WireReader* r, InstrumentationPlan* out) {
  u8 method = 0;
  u32 size = 0;
  if (!r->U8(&method) || method > static_cast<u8>(InstrumentMethod::kAllBranches) ||
      !r->U32(&out->detail_level) || out->detail_level > kMaxPlanDetailLevel ||
      !r->Str(&out->provenance) || out->provenance.size() > kMaxPlanProvenanceLen ||
      !r->U32(&size) || size > kMaxJobBranches || !r->FitsCount((size + 7) / 8, 1)) {
    return false;
  }
  out->method = static_cast<InstrumentMethod>(method);
  out->branches = DenseBitset(size);
  for (u32 byte = 0; byte * 8 < size; ++byte) {
    u8 packed = 0;
    if (!r->U8(&packed)) {
      return false;
    }
    for (u32 bit = 0; bit < 8 && byte * 8 + bit < size; ++bit) {
      if ((packed >> bit) & 1u) {
        out->branches.Set(byte * 8 + bit);
      }
    }
  }
  return true;
}

void EncodeInputShape(const InputSpec& spec, WireWriter* w) {
  w->U32(static_cast<u32>(spec.argv.size()));
  for (const std::string& arg : spec.argv) {
    w->Str(arg);
  }
  w->U32(static_cast<u32>(spec.argv_public.size()));
  for (const bool is_public : spec.argv_public) {
    w->U8(is_public ? 1 : 0);
  }
  const WorldShape& world = spec.world;
  w->U32(static_cast<u32>(world.streams.size()));
  for (const StreamShape& stream : world.streams) {
    w->Str(stream.name);
    w->U32(static_cast<u32>(stream.bytes.size()));
    for (const u8 byte : stream.bytes) {
      w->U8(byte);
    }
    w->I64(stream.length);
    w->I64(stream.chunk);
  }
  w->U32(static_cast<u32>(world.files.size()));
  for (const auto& [path, stream] : world.files) {
    w->Str(path);
    w->I32(stream);
  }
  w->I32(world.stdin_stream);
  w->U32(static_cast<u32>(world.connection_streams.size()));
  for (const i32 stream : world.connection_streams) {
    w->I32(stream);
  }
  w->I32(world.max_concurrent_conns);
  w->I32(world.listen_fd);
}

bool DecodeInputShape(WireReader* r, InputSpec* out) {
  u32 argc = 0;
  if (!r->U32(&argc) || argc > kMaxJobStrings || !r->FitsCount(argc, 4)) {
    return false;
  }
  out->argv.resize(argc);
  for (u32 i = 0; i < argc; ++i) {
    if (!r->Str(&out->argv[i])) {
      return false;
    }
  }
  u32 public_count = 0;
  if (!r->U32(&public_count) || public_count > kMaxJobStrings ||
      !r->FitsCount(public_count, 1)) {
    return false;
  }
  out->argv_public.resize(public_count);
  for (u32 i = 0; i < public_count; ++i) {
    u8 is_public = 0;
    if (!r->U8(&is_public)) {
      return false;
    }
    out->argv_public[i] = is_public != 0;
  }
  WorldShape& world = out->world;
  u32 stream_count = 0;
  if (!r->U32(&stream_count) || stream_count > kMaxJobStrings ||
      !r->FitsCount(stream_count, 4 + 4 + 8 + 8)) {
    return false;
  }
  world.streams.resize(stream_count);
  i64 total_stream_cells = 0;
  for (StreamShape& stream : world.streams) {
    u32 byte_count = 0;
    if (!r->Str(&stream.name) || !r->U32(&byte_count) || !r->FitsCount(byte_count, 1)) {
      return false;
    }
    stream.bytes.resize(byte_count);
    for (u32 i = 0; i < byte_count; ++i) {
      if (!r->U8(&stream.bytes[i])) {
        return false;
      }
    }
    // Logical lengths size the input-cell layout in the consuming shard:
    // a forged multi-GB length — per stream or summed across 4096 tiny
    // stream records — would be a memory bomb.
    if (!r->I64(&stream.length) || stream.length < 0 || stream.length > kMaxJobStreamLen ||
        !r->I64(&stream.chunk) || stream.chunk < -1) {
      return false;
    }
    total_stream_cells += stream.length;
    if (total_stream_cells > kMaxJobStreamLen) {
      return false;
    }
  }
  const auto stream_index_ok = [stream_count](i32 index) {
    return index >= -1 && (index < 0 || static_cast<u32>(index) < stream_count);
  };
  u32 file_count = 0;
  if (!r->U32(&file_count) || file_count > kMaxJobStrings || !r->FitsCount(file_count, 4 + 4)) {
    return false;
  }
  world.files.resize(file_count);
  for (auto& [path, stream] : world.files) {
    if (!r->Str(&path) || !r->I32(&stream) || !stream_index_ok(stream)) {
      return false;
    }
  }
  if (!r->I32(&world.stdin_stream) || !stream_index_ok(world.stdin_stream)) {
    return false;
  }
  u32 conn_count = 0;
  if (!r->U32(&conn_count) || conn_count > kMaxJobStrings || !r->FitsCount(conn_count, 4)) {
    return false;
  }
  world.connection_streams.resize(conn_count);
  for (i32& stream : world.connection_streams) {
    if (!r->I32(&stream) || !stream_index_ok(stream)) {
      return false;
    }
  }
  if (!r->I32(&world.max_concurrent_conns) || world.max_concurrent_conns < 0 ||
      world.max_concurrent_conns > 4096) {
    return false;
  }
  return r->I32(&world.listen_fd) && world.listen_fd >= -1;
}

}  // namespace

void EncodeReport(const BugReport& report, WireWriter* w) {
  w->U8(static_cast<u8>(report.method));
  w->U64(report.branch_log.size());
  const std::vector<u8> log_bytes = report.branch_log.Serialize();
  w->U32(static_cast<u32>(log_bytes.size()));
  for (const u8 byte : log_bytes) {
    w->U8(byte);
  }
  w->U8(report.has_syscall_log ? 1 : 0);
  w->U32(static_cast<u32>(report.syscall_log.size()));
  for (const SyscallRecord& record : report.syscall_log) {
    w->U8(static_cast<u8>(record.kind));
    w->I64(record.value);
  }
  EncodeCrashSite(report.crash, w);
  EncodeInputShape(report.shape, w);
}

bool DecodeReport(WireReader* r, BugReport* out) {
  u8 method = 0;
  if (!r->U8(&method) || method > static_cast<u8>(InstrumentMethod::kAllBranches)) {
    return false;
  }
  out->method = static_cast<InstrumentMethod>(method);
  u64 bit_count = 0;
  u32 byte_count = 0;
  if (!r->U64(&bit_count) || bit_count > kMaxJobLogBits || !r->U32(&byte_count) ||
      byte_count != (bit_count + 7) / 8 || !r->FitsCount(byte_count, 1)) {
    return false;
  }
  std::vector<u8> log_bytes(byte_count);
  for (u32 i = 0; i < byte_count; ++i) {
    if (!r->U8(&log_bytes[i])) {
      return false;
    }
  }
  out->branch_log = BitVec::Deserialize(log_bytes, static_cast<size_t>(bit_count));
  u8 has_log = 0;
  u32 record_count = 0;
  if (!r->U8(&has_log) || !r->U32(&record_count) || !r->FitsCount(record_count, 1 + 8)) {
    return false;
  }
  out->has_syscall_log = has_log != 0;
  out->syscall_log.resize(record_count);
  for (SyscallRecord& record : out->syscall_log) {
    u8 kind = 0;
    if (!r->U8(&kind) || kind >= static_cast<u8>(kNumBuiltins) || !r->I64(&record.value)) {
      return false;
    }
    record.kind = static_cast<Builtin>(kind);
  }
  return DecodeCrashSite(r, &out->crash) && DecodeInputShape(r, &out->shape);
}

u64 ReportFingerprint(const BugReport& report) {
  WireWriter w;
  EncodeReport(report, &w);
  return WireDigest(w.buf().data(), w.buf().size());
}

void EncodeJob(const WireJob& job, WireWriter* w) {
  EncodeConfig(job.config, w);
  w->Str(job.config.program.app);
  w->U32(static_cast<u32>(job.config.program.libs.size()));
  for (const std::string& lib : job.config.program.libs) {
    w->Str(lib);
  }
  EncodePlan(job.plan, w);
  EncodeReport(job.report, w);
}

bool DecodeJob(WireReader* r, WireJob* out) {
  // DecodeConfig resets program/transport fields; the sources decoded
  // next are re-attached so the consumer sees one coherent config.
  if (!DecodeConfig(r, &out->config)) {
    return false;
  }
  if (!r->Str(&out->config.program.app)) {
    return false;
  }
  u32 lib_count = 0;
  if (!r->U32(&lib_count) || lib_count > kMaxJobStrings || !r->FitsCount(lib_count, 4)) {
    return false;
  }
  out->config.program.libs.resize(lib_count);
  for (u32 i = 0; i < lib_count; ++i) {
    if (!r->Str(&out->config.program.libs[i])) {
      return false;
    }
  }
  if (!DecodePlan(r, &out->plan)) {
    return false;
  }
  return DecodeReport(r, &out->report) && r->ok();
}

// ----- Standing-fleet job exchange (v7) -----

void EncodeJobBegin(const WireJobBegin& begin, WireWriter* w) {
  w->U64(begin.job_id);
  EncodeJob(begin.job, w);
}

bool DecodeJobBegin(WireReader* r, WireJobBegin* out) {
  return r->U64(&out->job_id) && DecodeJob(r, &out->job);
}

void EncodeJobEnd(const WireJobEnd& end, WireWriter* w) { w->U64(end.jobs_served); }

bool DecodeJobEnd(WireReader* r, WireJobEnd* out) {
  return r->U64(&out->jobs_served) && r->ok();
}

// ----- Service ingest codecs (v7) -----

void EncodeReportSubmit(const WireReportSubmit& submit, WireWriter* w) {
  w->Str(submit.tenant);
  EncodeReport(submit.report, w);
}

bool DecodeReportSubmit(WireReader* r, WireReportSubmit* out) {
  if (!r->Str(&out->tenant) || out->tenant.size() > 256) {
    return false;  // Tenant tags are short labels; anything longer is hostile.
  }
  return DecodeReport(r, &out->report) && r->ok();
}

void EncodeReportVerdict(const WireReportVerdict& verdict, WireWriter* w) {
  w->U64(verdict.cluster);
  w->U8(verdict.origin);
  EncodeShardResult(verdict.result, w);
}

bool DecodeReportVerdict(WireReader* r, WireReportVerdict* out) {
  if (!r->U64(&out->cluster) || !r->U8(&out->origin) ||
      out->origin > static_cast<u8>(VerdictOrigin::kRejected)) {
    return false;
  }
  return DecodeShardResult(r, &out->result) && r->ok();
}

void EncodeHealthStats(const WireHealthStats& stats, WireWriter* w) {
  w->U64(stats.reports_ingested);
  w->U64(stats.clusters);
  w->U64(stats.searches_run);
  w->U64(stats.duplicates_attached);
  w->U64(stats.cached_verdicts);
  w->U64(stats.rejected);
  w->U64(stats.queue_depth);
  w->U64(stats.in_flight);
  w->U64(stats.cache_sat_entries);
  w->U64(stats.cache_unsat_entries);
  w->U64(stats.cache_evictions);
  w->U8(stats.snapshot_loaded);
  w->U32(stats.fleet_shards);
  w->U32(stats.fleet_live);
  w->U64(stats.fleet_jobs);
  w->U32(static_cast<u32>(stats.rows.size()));
  for (const WireClusterRow& row : stats.rows) {
    w->U64(row.fp);
    w->U8(row.state);
    w->U8(row.reproduced);
    w->U64(row.reports);
  }
}

bool DecodeHealthStats(WireReader* r, WireHealthStats* out) {
  if (!(r->U64(&out->reports_ingested) && r->U64(&out->clusters) &&
        r->U64(&out->searches_run) && r->U64(&out->duplicates_attached) &&
        r->U64(&out->cached_verdicts) && r->U64(&out->rejected) &&
        r->U64(&out->queue_depth) && r->U64(&out->in_flight) &&
        r->U64(&out->cache_sat_entries) && r->U64(&out->cache_unsat_entries) &&
        r->U64(&out->cache_evictions) && r->U8(&out->snapshot_loaded) &&
        r->U32(&out->fleet_shards) && r->U32(&out->fleet_live) &&
        r->U64(&out->fleet_jobs))) {
    return false;
  }
  u32 row_count = 0;
  if (!r->U32(&row_count) || row_count > kMaxHealthClusterRows ||
      !r->FitsCount(row_count, 8 + 1 + 1 + 8)) {
    return false;
  }
  out->rows.resize(row_count);
  for (WireClusterRow& row : out->rows) {
    if (!r->U64(&row.fp) || !r->U8(&row.state) || row.state > 2 ||
        !r->U8(&row.reproduced) || !r->U64(&row.reports)) {
      return false;
    }
  }
  return r->ok();
}

// ----- Transport -----

namespace {

// Backlog ceiling past which droppable (gossip) frames are discarded
// instead of queued. Critical frames (handshake, stop) queue regardless.
constexpr size_t kMaxQueuedBytes = 8u * 1024u * 1024u;

}  // namespace

WireChannel::WireChannel(WireChannel&& other) noexcept
    : fd_(other.fd_),
      broken_(other.broken_),
      parser_(std::move(other.parser_)),
      out_(std::move(other.out_)),
      out_off_(other.out_off_),
      tx_(other.tx_),
      rx_(other.rx_),
      dropped_(other.dropped_) {
  other.fd_ = -1;
}

WireChannel::~WireChannel() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

bool WireChannel::Flush(bool blocking) {
  if (fd_ < 0 || broken_) {
    return false;
  }
  while (out_off_ < out_.size()) {
    const ssize_t n = ::send(fd_, out_.data() + out_off_, out_.size() - out_off_,
                             MSG_NOSIGNAL | (blocking ? 0 : MSG_DONTWAIT));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (!blocking && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        break;  // Socket full right now; the rest flushes later.
      }
      broken_ = true;
      return false;
    }
    out_off_ += static_cast<size_t>(n);
    tx_ += static_cast<u64>(n);
  }
  if (out_off_ == out_.size()) {
    out_.clear();
    out_off_ = 0;
  } else if (out_off_ > kMaxQueuedBytes / 2 && out_off_ * 2 > out_.size()) {
    out_.erase(out_.begin(), out_.begin() + static_cast<std::ptrdiff_t>(out_off_));
    out_off_ = 0;
  }
  return true;
}

bool WireChannel::Send(WireMsg type, const std::vector<u8>& payload) {
  if (fd_ < 0 || broken_) {
    return false;
  }
  AppendFrame(type, payload, &out_);
  return Flush(/*blocking=*/true);
}

bool WireChannel::Queue(WireMsg type, const std::vector<u8>& payload, bool droppable) {
  if (fd_ < 0 || broken_) {
    return false;
  }
  if (droppable && out_.size() - out_off_ > kMaxQueuedBytes) {
    ++dropped_;
    Flush(/*blocking=*/false);
    return false;
  }
  AppendFrame(type, payload, &out_);
  Flush(/*blocking=*/false);
  return !broken_;
}

WireChannel::RecvStatus WireChannel::Poll(int timeout_ms, std::vector<WireFrame>* out) {
  if (fd_ < 0) {
    return RecvStatus::kClosed;
  }
  Flush(/*blocking=*/false);
  struct pollfd pfd = {};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  bool saw_eof = false;
  // EINTR wakeups (a reaped child's SIGCHLD, a profiler tick) must
  // neither restart the full timeout nor — the old bug — collapse the
  // remaining wait to zero: recompute what is left against a deadline.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  int wait_ms = timeout_ms;
  for (;;) {
    const int ready = ::poll(&pfd, 1, wait_ms);
    if (ready < 0) {
      if (errno == EINTR) {
        if (wait_ms > 0) {
          const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - std::chrono::steady_clock::now());
          wait_ms = static_cast<int>(std::max<i64>(0, left.count()));
        }
        continue;
      }
      return RecvStatus::kClosed;
    }
    wait_ms = 0;  // Only the first poll blocks; drain without waiting.
    if (ready == 0 || (pfd.revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
      break;
    }
    u8 buf[64 * 1024];
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return RecvStatus::kClosed;
    }
    if (n == 0) {
      saw_eof = true;
      break;
    }
    rx_ += static_cast<u64>(n);
    parser_.Append(buf, static_cast<size_t>(n));
  }
  for (;;) {
    WireFrame frame;
    const FrameStatus status = parser_.Next(&frame);
    if (status == FrameStatus::kFrame) {
      out->push_back(std::move(frame));
      continue;
    }
    if (status == FrameStatus::kNeedMore) {
      break;
    }
    return status == FrameStatus::kVersionMismatch ? RecvStatus::kVersionMismatch
                                                   : RecvStatus::kCorrupt;
  }
  return saw_eof ? RecvStatus::kClosed : RecvStatus::kOk;
}

}  // namespace retrace
