#include "src/vos/vos.h"

#include <algorithm>

namespace retrace {

WorldShape WorldShape::StripContents() const {
  WorldShape out = *this;
  for (StreamShape& s : out.streams) {
    s.length = s.bytes.empty() ? s.length : static_cast<i64>(s.bytes.size());
    s.bytes.clear();
  }
  return out;
}

// ----- CellLayout -----------------------------------------------------------

CellLayout CellLayout::Build(const InputSpec& spec) {
  CellLayout layout;
  layout.arg_offsets_.assign(spec.argv.size(), -1);
  for (size_t i = 1; i < spec.argv.size(); ++i) {
    if (spec.ArgIsPublic(i)) {
      continue;  // Public arguments carry no symbolic cells.
    }
    layout.arg_offsets_[i] = static_cast<i32>(layout.defaults_.size());
    for (char c : spec.argv[i]) {
      layout.defaults_.push_back(static_cast<u8>(c));
      layout.domains_.push_back(Interval{0, 255});
      layout.info_.push_back(CellInfo{CellKind::kArgvByte, static_cast<i32>(i),
                                      static_cast<i32>(layout.defaults_.size()) - 1 -
                                          layout.arg_offsets_[i],
                                      Builtin::kRead});
    }
    // The terminating NUL is also part of the symbolic argv buffer (the
    // paper marks whole 100-byte argument buffers symbolic); pinning its
    // domain to {0} keeps the shape fixed while making terminator checks
    // symbolic like every other byte of the argument.
    layout.defaults_.push_back(0);
    layout.domains_.push_back(Interval{0, 0});
    layout.info_.push_back(CellInfo{CellKind::kArgvByte, static_cast<i32>(i),
                                    static_cast<i32>(spec.argv[i].size()), Builtin::kRead});
  }
  for (size_t s = 0; s < spec.world.streams.size(); ++s) {
    const StreamShape& stream = spec.world.streams[s];
    layout.stream_offsets_.push_back(static_cast<i32>(layout.defaults_.size()));
    const i64 len = stream.bytes.empty() ? stream.length : static_cast<i64>(stream.bytes.size());
    for (i64 k = 0; k < len; ++k) {
      const i64 byte = k < static_cast<i64>(stream.bytes.size()) ? stream.bytes[k] : 'a';
      layout.defaults_.push_back(byte);
      layout.domains_.push_back(Interval{0, 255});
      layout.info_.push_back(
          CellInfo{CellKind::kStreamByte, static_cast<i32>(s), static_cast<i32>(k),
                   Builtin::kRead});
    }
  }
  layout.num_static_ = static_cast<i32>(layout.defaults_.size());
  return layout;
}

i32 CellLayout::ArgByteCell(size_t arg, size_t byte) const {
  if (arg >= arg_offsets_.size() || arg_offsets_[arg] < 0) {
    return -1;
  }
  return arg_offsets_[arg] + static_cast<i32>(byte);
}

i32 CellLayout::StreamByteCell(size_t stream, i64 byte) const {
  Check(stream < stream_offsets_.size(), "StreamByteCell: bad stream");
  return stream_offsets_[stream] + static_cast<i32>(byte);
}

std::vector<std::string> CellLayout::MaterializeArgv(const InputSpec& spec,
                                                     const std::vector<i64>& values) const {
  std::vector<std::string> argv;
  for (size_t i = 0; i < spec.argv.size(); ++i) {
    if (i == 0 || arg_offsets_[i] < 0) {
      argv.push_back(spec.argv[i]);
      continue;
    }
    std::string s;
    for (size_t j = 0; j < spec.argv[i].size(); ++j) {
      const i32 cell = ArgByteCell(i, j);
      const i64 v = cell >= 0 && cell < static_cast<i32>(values.size()) ? values[cell]
                                                                        : defaults_[cell];
      s.push_back(static_cast<char>(static_cast<u8>(v)));
    }
    argv.push_back(std::move(s));
  }
  return argv;
}

std::vector<std::vector<i32>> CellLayout::ArgvCells(const InputSpec& spec) const {
  std::vector<std::vector<i32>> out(spec.argv.size());
  for (size_t i = 1; i < spec.argv.size(); ++i) {
    // One cell per content byte plus one for the NUL terminator.
    for (size_t j = 0; j <= spec.argv[i].size(); ++j) {
      out[i].push_back(ArgByteCell(i, j));
    }
  }
  return out;
}

// ----- CellStore -------------------------------------------------------------

CellStore::CellStore(const CellLayout& layout, std::vector<i64> model)
    : model_(std::move(model)) {
  values_ = layout.defaults();
  domains_ = layout.domains();
  info_ = layout.info();
  num_static_ = layout.num_static();
  for (size_t i = 0; i < values_.size() && i < model_.size(); ++i) {
    values_[i] = std::clamp(model_[i], domains_[i].lo, domains_[i].hi);
  }
}

i32 CellStore::AllocDynamic(Builtin sys, Interval domain, i64 natural, i64* value_out) {
  const i32 id = static_cast<i32>(values_.size());
  const int occurrence = occurrence_[static_cast<int>(sys)]++;
  i64 value;
  if (id < static_cast<i32>(model_.size())) {
    value = std::clamp(model_[id], domain.lo, domain.hi);
  } else if (policy_ != nullptr) {
    value = std::clamp(policy_->DefaultFor(sys, occurrence, natural), domain.lo, domain.hi);
  } else {
    value = std::clamp(natural, domain.lo, domain.hi);
  }
  values_.push_back(value);
  domains_.push_back(domain);
  info_.push_back(CellInfo{CellKind::kSyscallResult, occurrence, -1, sys});
  dynamic_trace_.push_back(DynRecord{sys, value, id});
  *value_out = value;
  return id;
}

// ----- VirtualOs -------------------------------------------------------------

VirtualOs::VirtualOs(const WorldShape& shape, CellStore* cells, const CellLayout* layout)
    : shape_(shape), cells_(cells), layout_(layout) {
  fds_.resize(4);
  fds_[0] = FdEntry{FdEntry::Type::kStdin, shape_.stdin_stream, 0};
  fds_[1] = FdEntry{FdEntry::Type::kStdout, -1, 0};
  fds_[2] = FdEntry{FdEntry::Type::kStdout, -1, 0};
  if (shape_.listen_fd >= 0) {
    if (shape_.listen_fd >= static_cast<i32>(fds_.size())) {
      fds_.resize(shape_.listen_fd + 1);
    }
    fds_[shape_.listen_fd] = FdEntry{FdEntry::Type::kListen, -1, 0};
  }
}

i32 VirtualOs::AllocFd(FdEntry entry) {
  for (size_t i = 4; i < fds_.size(); ++i) {
    if (fds_[i].type == FdEntry::Type::kClosed &&
        static_cast<i32>(i) != shape_.listen_fd) {
      fds_[i] = entry;
      return static_cast<i32>(i);
    }
  }
  fds_.push_back(entry);
  return static_cast<i32>(fds_.size()) - 1;
}

i64 VirtualOs::RemainingBytes(const FdEntry& entry) const {
  if (entry.stream < 0) {
    return 0;
  }
  const StreamShape& s = shape_.streams[entry.stream];
  const i64 len = s.bytes.empty() ? s.length : static_cast<i64>(s.bytes.size());
  return std::max<i64>(0, len - entry.cursor);
}

bool VirtualOs::FdReadable(i64 fd) const {
  if (fd < 0 || fd >= static_cast<i64>(fds_.size())) {
    return false;
  }
  const FdEntry& e = fds_[fd];
  switch (e.type) {
    case FdEntry::Type::kStdin:
    case FdEntry::Type::kFile:
    case FdEntry::Type::kConn:
      return RemainingBytes(e) > 0;
    case FdEntry::Type::kListen:
      return next_conn_ < shape_.connection_streams.size() &&
             open_conns_ < shape_.max_concurrent_conns;
    default:
      return false;
  }
}

i64 VirtualOs::Outcome(Builtin b, Interval domain, i64 natural, i32* cell_out) {
  *cell_out = -1;
  if (replay_log_ != nullptr && !log_diverged_) {
    if (log_cursor_ < replay_log_->size() && (*replay_log_)[log_cursor_].kind == b) {
      const i64 v = std::clamp((*replay_log_)[log_cursor_].value, domain.lo, domain.hi);
      ++log_cursor_;
      // Keep the cell store's dynamic numbering aligned even when pinned:
      // allocate the cell but pin its value and drop the shadow.
      i64 ignored;
      cells_->AllocDynamic(b, Interval{v, v}, v, &ignored);
      return v;
    }
    log_diverged_ = true;
  }
  i64 value;
  const i32 cell = cells_->AllocDynamic(b, domain, natural, &value);
  if (symbolic_results_) {
    *cell_out = cell;
  }
  return value;
}

SyscallOutcome VirtualOs::OnSyscall(Builtin b, const std::vector<i64>& int_args,
                                    const std::string& str_arg,
                                    const std::vector<u8>& write_data) {
  switch (b) {
    case Builtin::kRead:
      return DoRead(int_args);
    case Builtin::kWrite:
      return DoWrite(int_args, write_data);
    case Builtin::kOpen:
      return DoOpen(str_arg, int_args[0]);
    case Builtin::kClose:
      return DoClose(int_args[0]);
    case Builtin::kSelectFd:
      return DoSelect(int_args);
    case Builtin::kAcceptConn:
      return DoAccept(int_args[0]);
    case Builtin::kPollSignal:
      return DoPollSignal();
    case Builtin::kPrintInt: {
      stdout_ += std::to_string(int_args[0]);
      return SyscallOutcome{};
    }
    case Builtin::kPrintStr: {
      stdout_ += str_arg;
      return SyscallOutcome{};
    }
    default:
      return SyscallOutcome{};
  }
}

SyscallOutcome VirtualOs::DoRead(const std::vector<i64>& int_args) {
  const i64 fd = int_args[0];
  const i64 n = std::max<i64>(0, int_args[1]);
  SyscallOutcome out;
  if (fd < 0 || fd >= static_cast<i64>(fds_.size())) {
    out.ret = -1;
    return out;
  }
  FdEntry& e = fds_[fd];
  if (e.type != FdEntry::Type::kStdin && e.type != FdEntry::Type::kFile &&
      e.type != FdEntry::Type::kConn) {
    out.ret = -1;
    return out;
  }
  const StreamShape& stream = shape_.streams[e.stream];
  const i64 remaining = RemainingBytes(e);
  i64 cap = std::min(n, remaining);
  if (stream.chunk > 0) {
    cap = std::min(cap, stream.chunk);
  }
  i32 cell;
  const i64 ret = Outcome(Builtin::kRead, Interval{-1, cap}, cap, &cell);
  out.ret = ret;
  out.ret_cell = cell;
  if (ret > 0) {
    for (i64 i = 0; i < ret; ++i) {
      const i32 byte_cell = layout_->StreamByteCell(e.stream, e.cursor + i);
      out.data.push_back(static_cast<u8>(cells_->ValueOf(byte_cell)));
      out.data_cells.push_back(byte_cell);
    }
    e.cursor += ret;
  }
  return out;
}

SyscallOutcome VirtualOs::DoWrite(const std::vector<i64>& int_args,
                                  const std::vector<u8>& data) {
  const i64 fd = int_args[0];
  SyscallOutcome out;
  if (fd == 1) {
    stdout_.append(data.begin(), data.end());
  } else {
    // stderr and sockets are captured per fd.
    fd_output_[static_cast<i32>(fd)].append(data.begin(), data.end());
  }
  out.ret = static_cast<i64>(data.size());
  return out;
}

SyscallOutcome VirtualOs::DoOpen(const std::string& path, [[maybe_unused]] i64 flags) {
  SyscallOutcome out;
  for (const auto& [name, stream] : shape_.files) {
    if (name == path) {
      out.ret = AllocFd(FdEntry{FdEntry::Type::kFile, stream, 0});
      return out;
    }
  }
  out.ret = -1;
  return out;
}

SyscallOutcome VirtualOs::DoClose(i64 fd) {
  SyscallOutcome out;
  if (fd < 0 || fd >= static_cast<i64>(fds_.size()) ||
      fds_[fd].type == FdEntry::Type::kClosed) {
    out.ret = -1;
    return out;
  }
  if (fds_[fd].type == FdEntry::Type::kConn) {
    --open_conns_;
  }
  fds_[fd] = FdEntry{};
  out.ret = 0;
  return out;
}

SyscallOutcome VirtualOs::DoSelect(const std::vector<i64>& int_args) {
  const i64 nfds = int_args[0];
  i64 natural = -1;
  for (i64 i = 0; i < nfds; ++i) {
    if (FdReadable(int_args[1 + i])) {
      natural = i;
      break;
    }
  }
  SyscallOutcome out;
  i32 cell;
  out.ret = Outcome(Builtin::kSelectFd, Interval{-1, nfds - 1}, natural, &cell);
  out.ret_cell = cell;
  return out;
}

SyscallOutcome VirtualOs::DoAccept(i64 listen_fd) {
  SyscallOutcome out;
  if (listen_fd != shape_.listen_fd) {
    out.ret = -1;
    return out;
  }
  const bool pending = next_conn_ < shape_.connection_streams.size() &&
                       open_conns_ < shape_.max_concurrent_conns;
  i32 cell;
  const i64 decision = Outcome(Builtin::kAcceptConn, Interval{-1, 0}, pending ? 0 : -1, &cell);
  out.ret_cell = cell;
  if (decision >= 0 && pending) {
    const i32 stream = shape_.connection_streams[next_conn_++];
    ++open_conns_;
    out.ret = AllocFd(FdEntry{FdEntry::Type::kConn, stream, 0});
  } else {
    out.ret = -1;
  }
  return out;
}

SyscallOutcome VirtualOs::DoPollSignal() {
  SyscallOutcome out;
  i32 cell;
  out.ret = Outcome(Builtin::kPollSignal, Interval{0, 1}, 0, &cell);
  out.ret_cell = cell;
  return out;
}

std::string VirtualOs::WrittenTo(i32 fd) const {
  auto it = fd_output_.find(fd);
  return it == fd_output_.end() ? std::string() : it->second;
}

}  // namespace retrace
