// Virtual OS: the simulated environment MiniC programs run against.
//
// Everything nondeterministic about the environment is an *input cell*:
//   - static cells: argv bytes and stream bytes (file contents, stdin,
//     network request bytes), laid out up front by CellLayout;
//   - dynamic cells: system-call results (read() return counts, select()
//     readiness order, accept() arrivals, pending-signal polls), allocated
//     lazily in execution order.
//
// The same machinery serves every phase of the paper's pipeline:
//   - user-site runs use concrete cell defaults plus a NondetPolicy script
//     (e.g. "deliver a signal after the 3rd poll");
//   - pre-deployment dynamic analysis marks all cells symbolic and lets the
//     concolic engine explore alternative values;
//   - developer-site replay searches over cell values, optionally pinning
//     system-call cells from a shipped log (paper §3.3).
#ifndef RETRACE_VOS_VOS_H_
#define RETRACE_VOS_VOS_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/exec/interp.h"
#include "src/solver/interval.h"
#include "src/support/common.h"

namespace retrace {

// ----- World shape ---------------------------------------------------------

struct StreamShape {
  std::string name;
  std::vector<u8> bytes;  // Concrete contents; empty in privacy-stripped shapes.
  i64 length = 0;         // Logical length (bytes.size() when bytes present).
  i64 chunk = -1;         // Max bytes a single read() may deliver; -1 = unlimited.
};

// The structure of the environment: how many input streams exist and how
// they are wired up. The *shape* (lengths, counts) ships to the developer
// in a bug report; the byte contents never do.
struct WorldShape {
  std::vector<StreamShape> streams;
  std::vector<std::pair<std::string, i32>> files;  // path -> stream index.
  i32 stdin_stream = -1;
  std::vector<i32> connection_streams;  // Streams arriving as connections, in order.
  int max_concurrent_conns = 1;
  i32 listen_fd = 3;

  // Returns the shape with all stream contents removed (what a bug report
  // may legally contain).
  WorldShape StripContents() const;
};

// A full program input: argv plus the world. argv[0] is the program name
// and is never symbolic. Arguments may be marked *public*: they are part
// of the shape a bug report legally contains (e.g. file paths that also
// appear in the world's FS map) and are neither symbolic nor stripped.
struct InputSpec {
  std::vector<std::string> argv;
  std::vector<bool> argv_public;  // Parallel to argv; missing entries = private.
  WorldShape world;

  bool ArgIsPublic(size_t i) const {
    return i == 0 || (i < argv_public.size() && argv_public[i]);
  }
};

// ----- Cells ---------------------------------------------------------------

enum class CellKind { kArgvByte, kStreamByte, kSyscallResult };

struct CellInfo {
  CellKind kind = CellKind::kSyscallResult;
  i32 tag1 = -1;  // Arg index / stream index.
  i32 tag2 = -1;  // Byte offset.
  Builtin sys = Builtin::kRead;  // For kSyscallResult.
};

// Static cell layout derived from an InputSpec. Stable across runs with the
// same shape, which is what lets solver models be re-injected.
class CellLayout {
 public:
  static CellLayout Build(const InputSpec& spec);

  i32 num_static() const { return num_static_; }
  i32 ArgByteCell(size_t arg, size_t byte) const;
  i32 StreamByteCell(size_t stream, i64 byte) const;
  const std::vector<i64>& defaults() const { return defaults_; }
  const std::vector<Interval>& domains() const { return domains_; }
  const std::vector<CellInfo>& info() const { return info_; }

  // Rebuilds concrete argv strings from cell values.
  std::vector<std::string> MaterializeArgv(const InputSpec& spec,
                                           const std::vector<i64>& values) const;
  // Cell ids backing each argv string (for Interp::Run).
  std::vector<std::vector<i32>> ArgvCells(const InputSpec& spec) const;

 private:
  i32 num_static_ = 0;
  std::vector<i32> arg_offsets_;     // Per argv index; -1 for argv[0].
  std::vector<i32> stream_offsets_;  // Per stream index.
  std::vector<i64> defaults_;
  std::vector<Interval> domains_;
  std::vector<CellInfo> info_;
};

// Scripts user-site nondeterminism: decides dynamic cell outcomes when no
// solver model covers them. `natural` is the outcome a well-behaved kernel
// would produce (full read, first-ready descriptor, no signal).
class NondetPolicy {
 public:
  virtual ~NondetPolicy() = default;
  virtual i64 DefaultFor([[maybe_unused]] Builtin kind, [[maybe_unused]] int occurrence,
                         i64 natural) {
    return natural;
  }
};

// Delivers poll_signal() == 1 on exactly the `occurrence`-th poll (0-based).
class SignalAfterPolicy : public NondetPolicy {
 public:
  explicit SignalAfterPolicy(int occurrence) : occurrence_(occurrence) {}
  i64 DefaultFor(Builtin kind, int occurrence, i64 natural) override {
    if (kind == Builtin::kPollSignal) {
      return occurrence == occurrence_ ? 1 : 0;
    }
    return natural;
  }

 private:
  int occurrence_;
};

// Per-run store of cell values. Static cells come from the layout; dynamic
// cells are appended in execution order. A solver model overrides values
// for every cell id it covers.
class CellStore {
 public:
  CellStore(const CellLayout& layout, std::vector<i64> model);

  void set_policy(NondetPolicy* policy) { policy_ = policy; }

  struct DynRecord {
    Builtin kind = Builtin::kRead;
    i64 value = 0;
    i32 cell = -1;
  };

  // Allocates (or resolves) the next dynamic cell for syscall kind `sys`.
  i32 AllocDynamic(Builtin sys, Interval domain, i64 natural, i64* value_out);

  i64 ValueOf(i32 cell) const { return values_[cell]; }
  const std::vector<i64>& values() const { return values_; }
  const std::vector<Interval>& domains() const { return domains_; }
  const std::vector<CellInfo>& info() const { return info_; }
  i32 num_static() const { return num_static_; }
  const std::vector<DynRecord>& dynamic_trace() const { return dynamic_trace_; }

 private:
  std::vector<i64> values_;
  std::vector<Interval> domains_;
  std::vector<CellInfo> info_;
  std::vector<i64> model_;
  i32 num_static_ = 0;
  NondetPolicy* policy_ = nullptr;
  std::unordered_map<int, int> occurrence_;  // Builtin -> count.
  std::vector<DynRecord> dynamic_trace_;
};

// ----- Syscall log -----------------------------------------------------------

// Result log for the selective system-call logging of paper §2.3/§3.3: the
// sequence of nondeterministic results, in call order. Input bytes are
// never part of it.
struct SyscallRecord {
  Builtin kind = Builtin::kRead;
  i64 value = 0;
};
using SyscallLog = std::vector<SyscallRecord>;

// ----- Virtual OS ------------------------------------------------------------

// Cell-driven SyscallHandler. Captures all program output per fd.
class VirtualOs : public SyscallHandler {
 public:
  VirtualOs(const WorldShape& shape, CellStore* cells, const CellLayout* layout);

  // Pins syscall results from a shipped log. On the first divergence
  // (different call order than the log), falls back to symbolic cells.
  void set_replay_log(const SyscallLog* log) { replay_log_ = log; }
  // When true (analysis/replay), syscall results carry shadow cells; when
  // false (plain user-site run), results are concrete.
  void set_symbolic_results(bool on) { symbolic_results_ = on; }

  SyscallOutcome OnSyscall(Builtin b, const std::vector<i64>& int_args,
                           const std::string& str_arg, const std::vector<u8>& write_data) override;

  const std::string& stdout_text() const { return stdout_; }
  std::string WrittenTo(i32 fd) const;
  bool log_diverged() const { return log_diverged_; }

 private:
  struct FdEntry {
    enum class Type { kClosed, kStdin, kStdout, kListen, kFile, kConn };
    Type type = Type::kClosed;
    i32 stream = -1;
    i64 cursor = 0;
  };

  i32 AllocFd(FdEntry entry);
  bool FdReadable(i64 fd) const;
  i64 RemainingBytes(const FdEntry& entry) const;
  // Resolves one nondeterministic outcome: replay log first, then cell.
  i64 Outcome(Builtin b, Interval domain, i64 natural, i32* cell_out);

  SyscallOutcome DoRead(const std::vector<i64>& int_args);
  SyscallOutcome DoWrite(const std::vector<i64>& int_args, const std::vector<u8>& data);
  SyscallOutcome DoOpen(const std::string& path, i64 flags);
  SyscallOutcome DoClose(i64 fd);
  SyscallOutcome DoSelect(const std::vector<i64>& int_args);
  SyscallOutcome DoAccept(i64 listen_fd);
  SyscallOutcome DoPollSignal();

  const WorldShape& shape_;
  CellStore* cells_;
  const CellLayout* layout_;
  const SyscallLog* replay_log_ = nullptr;
  bool symbolic_results_ = true;
  bool log_diverged_ = false;
  size_t log_cursor_ = 0;

  std::vector<FdEntry> fds_;
  size_t next_conn_ = 0;
  int open_conns_ = 0;
  std::string stdout_;
  std::unordered_map<i32, std::string> fd_output_;
};

}  // namespace retrace

#endif  // RETRACE_VOS_VOS_H_
