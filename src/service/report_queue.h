// Admission queue of the replay service: strict FIFO over admitted
// clusters, with two budgets enforced at the door —
//
//   - a global capacity on queued searches (a daemon drowning in novel
//     crashes sheds load instead of growing an unbounded backlog), and
//   - a per-tenant cap on queued + in-flight searches, so one chatty
//     tenant cannot starve the rest of the fleet.
//
// The queue holds cluster fingerprints, not reports: duplicates never
// reach admission (they attach to the existing cluster upstream), so
// every entry here is exactly one future search. Not thread-safe — the
// service's mutex guards it.
#ifndef RETRACE_SERVICE_REPORT_QUEUE_H_
#define RETRACE_SERVICE_REPORT_QUEUE_H_

#include <deque>
#include <string>
#include <unordered_map>
#include <utility>

#include "src/support/common.h"

namespace retrace {

class ReportQueue {
 public:
  ReportQueue(u64 capacity, u64 per_tenant_cap)
      : capacity_(capacity), per_tenant_cap_(per_tenant_cap) {}

  /// Admits one cluster for `tenant`, or refuses: the global queue is
  /// full, or the tenant already has per_tenant_cap searches queued or
  /// running. A tenant's budget is released when its search finishes
  /// (Release), not when it pops.
  bool Admit(const std::string& tenant, u64 fingerprint) {
    if (fifo_.size() >= capacity_) {
      return false;
    }
    auto [it, inserted] = load_.try_emplace(tenant, 0);
    if (it->second >= per_tenant_cap_) {
      return false;
    }
    it->second += 1;
    fifo_.push_back(Item{fingerprint, tenant});
    return true;
  }

  bool Empty() const { return fifo_.empty(); }
  u64 depth() const { return fifo_.size(); }

  /// Pops the oldest admitted cluster. The tenant stays charged until
  /// Release — popping only moves the search from queued to running.
  bool Pop(u64* fingerprint, std::string* tenant) {
    if (fifo_.empty()) {
      return false;
    }
    *fingerprint = fifo_.front().fingerprint;
    *tenant = std::move(fifo_.front().tenant);
    fifo_.pop_front();
    return true;
  }

  /// The search admitted for `tenant` finished (however it ended).
  void Release(const std::string& tenant) {
    auto it = load_.find(tenant);
    if (it == load_.end()) {
      return;
    }
    if (--it->second == 0) {
      load_.erase(it);
    }
  }

 private:
  struct Item {
    u64 fingerprint = 0;
    std::string tenant;
  };

  std::deque<Item> fifo_;
  std::unordered_map<std::string, u64> load_;  // Queued + running per tenant.
  u64 capacity_ = 0;
  u64 per_tenant_cap_ = 0;
};

}  // namespace retrace

#endif  // RETRACE_SERVICE_REPORT_QUEUE_H_
