// Replay-as-a-service: the resident, multi-tenant coordinator.
//
// The one-shot pipeline answers one bug report per process tree: scout,
// fork/dial a fleet, search, tear everything down. A deployment
// receiving a *stream* of reports from many users repeats all of that
// per report — and most reports are duplicates of a handful of crashes
// (the paper's deployment model: many users, few bugs). ReplayService
// inverts the lifecycle:
//
//   Submit ─→ fingerprint ─→ cluster table ─┬─ solved    → cached verdict
//                                           ├─ in flight → attach, wait
//                                           └─ novel     → admission FIFO
//                                                           (per-tenant caps)
//   worker: dequeue → search on the standing fleet (or in-process with
//           the service's cross-report slice cache) → complete cluster
//           → wake every attached submitter.
//
// One search per crash cluster, ever: N identical reports cost one
// search and N verdicts. The standing ShardFleet (num_shards > 1)
// outlives every search, so consecutive novel reports skip the
// fork/dial/handshake tax and hit shard-resident warm slice caches; the
// in-process mode (num_shards <= 1) keeps its warmth in the service's
// own SliceCache, which can snapshot to disk on shutdown and reload on
// start (warm-starting a restarted daemon).
//
// **Threading:** Submit blocks the calling thread until its cluster has
// a verdict and may be called from many threads; one worker thread runs
// searches strictly in admission order. Call Start() before any other
// thread exists when the fleet self-spawns (it forks).
#ifndef RETRACE_SERVICE_SERVICE_H_
#define RETRACE_SERVICE_SERVICE_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "src/dist/fleet.h"
#include "src/dist/wire.h"
#include "src/service/report_queue.h"
#include "src/service/search_registry.h"
#include "src/solver/incremental.h"

namespace retrace {

struct ServiceConfig {
  /// Per-search template: budgets, worker counts, transport knobs.
  /// num_shards > 1 runs every search on a standing ShardFleet (program
  /// sources required — Pipeline::MakeService fills them);
  /// num_shards <= 1 searches in-process against the service's own
  /// slice cache.
  ReplayConfig replay;
  /// Global cap on admitted-but-not-started searches; past it, novel
  /// reports are rejected (duplicates still attach).
  u64 queue_capacity = 64;
  /// Max queued + running searches per tenant.
  u64 per_tenant_cap = 16;
  /// Slice-cache snapshot: loaded on Start, saved on Shutdown. Empty
  /// disables both. Only the in-process mode's cache is snapshotted
  /// (fleet shards keep their caches in their own processes).
  std::string snapshot_path;
};

/// What Submit hands back. `result` is the cluster's search result
/// (empty for kRejected); `origin` says how it was obtained.
struct ServiceVerdict {
  u64 cluster = 0;  // The report's fingerprint.
  VerdictOrigin origin = VerdictOrigin::kRejected;
  bool reproduced = false;
  ReplayResult result;
};

class ReplayService {
 public:
  /// Borrows `module`; it must outlive the service. `plan` must match
  /// the module (Pipeline::MakeService enforces this).
  ReplayService(const IrModule& module, InstrumentationPlan plan, ServiceConfig config);
  ~ReplayService();

  ReplayService(const ReplayService&) = delete;
  ReplayService& operator=(const ReplayService&) = delete;

  /// Loads the snapshot (if configured), starts the fleet (if
  /// num_shards > 1; a fleet that fails to form degrades to in-process
  /// searches) and the worker thread. Idempotent.
  bool Start();

  /// Stops admission, finishes the in-flight search, wakes every
  /// waiting submitter (their verdicts come back kRejected if their
  /// cluster never ran), saves the snapshot, ends the fleet.
  /// Idempotent; the destructor calls it.
  void Shutdown();

  /// Blocks until this report's cluster has a verdict. Thread-safe.
  ServiceVerdict Submit(const std::string& tenant, const BugReport& report);

  /// Consistent snapshot of the daemon's counters, queue depth, cluster
  /// table (most recent first, capped) and cache/fleet occupancy.
  WireHealthStats HealthStats() const;

  /// The cross-report slice cache (in-process search mode). Exposed for
  /// tests and cache-occupancy reporting.
  SliceCache& cache() { return cache_; }
  bool snapshot_loaded() const { return snapshot_loaded_; }

 private:
  void WorkerLoop();
  ReplayResult RunSearch(const BugReport& report);

  const IrModule& module_;
  InstrumentationPlan plan_;
  ServiceConfig config_;
  SliceCache cache_;
  std::unique_ptr<ShardFleet> fleet_;  // Null in in-process mode.

  mutable std::mutex mu_;
  std::condition_variable cv_work_;  // Wakes the worker (new admission / stop).
  std::condition_variable cv_done_;  // Wakes submitters (cluster solved / stop).
  SearchRegistry registry_;
  ReportQueue queue_;
  std::thread worker_;
  bool started_ = false;
  bool stop_ = false;
  bool snapshot_loaded_ = false;

  // Counters (mu_). Fleet figures are mirrored here after each job so the
  // health endpoint never touches the fleet while the worker drives it.
  u64 reports_ingested_ = 0;
  u64 searches_run_ = 0;
  u64 duplicates_attached_ = 0;
  u64 cached_verdicts_ = 0;
  u64 rejected_ = 0;
  u64 in_flight_ = 0;
  u32 fleet_shards_ = 0;
  u32 fleet_live_ = 0;
  u64 fleet_jobs_ = 0;
};

}  // namespace retrace

#endif  // RETRACE_SERVICE_SERVICE_H_
