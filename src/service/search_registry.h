// Cluster table of the replay service: every report the daemon has ever
// ingested lands in exactly one cluster, keyed by its structural crash
// fingerprint (ReportFingerprint — the wire digest of the canonical
// report encoding). The cluster carries the search lifecycle:
//
//   kQueued  — admitted, waiting its FIFO turn,
//   kRunning — the worker is searching it right now,
//   kSolved  — verdict cached; every later duplicate is answered from
//              here without spending a single run.
//
// Duplicates at any stage attach to the cluster (reports counter), so N
// users hitting the same crash cost one search and N verdicts. Not
// thread-safe — the service's mutex guards it.
#ifndef RETRACE_SERVICE_SEARCH_REGISTRY_H_
#define RETRACE_SERVICE_SEARCH_REGISTRY_H_

#include <algorithm>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/core/report.h"
#include "src/replay/replay_engine.h"

namespace retrace {

enum class ClusterState : u8 {
  kQueued = 0,
  kRunning = 1,
  kSolved = 2,
};

struct ClusterEntry {
  u64 fingerprint = 0;
  ClusterState state = ClusterState::kQueued;
  bool reproduced = false;  // Meaningful once kSolved.
  u64 reports = 0;          // Reports that landed here (the first included).
  u64 order = 0;            // Ingest order, for most-recent-first listings.
  std::string tenant;       // The admitting tenant (owns the budget slot).
  BugReport report;         // Representative report the search runs on.
  ReplayResult result;      // The cached verdict, once kSolved.
};

class SearchRegistry {
 public:
  /// Null when no cluster with this fingerprint exists yet. The pointer
  /// is invalidated by the next Insert.
  ClusterEntry* Find(u64 fingerprint) {
    auto it = clusters_.find(fingerprint);
    return it == clusters_.end() ? nullptr : &it->second;
  }

  ClusterEntry* Insert(u64 fingerprint, std::string tenant, BugReport report) {
    ClusterEntry entry;
    entry.fingerprint = fingerprint;
    entry.reports = 1;
    entry.order = next_order_++;
    entry.tenant = std::move(tenant);
    entry.report = std::move(report);
    return &clusters_.emplace(fingerprint, std::move(entry)).first->second;
  }

  u64 size() const { return clusters_.size(); }

  /// The cluster table, most recent first, capped at `max_rows` (the
  /// health endpoint's row ceiling).
  std::vector<const ClusterEntry*> MostRecent(u64 max_rows) const {
    std::vector<const ClusterEntry*> rows;
    rows.reserve(clusters_.size());
    for (const auto& [fp, entry] : clusters_) {
      rows.push_back(&entry);
    }
    std::sort(rows.begin(), rows.end(), [](const ClusterEntry* a, const ClusterEntry* b) {
      return a->order > b->order;
    });
    if (rows.size() > max_rows) {
      rows.resize(max_rows);
    }
    return rows;
  }

 private:
  std::unordered_map<u64, ClusterEntry> clusters_;
  u64 next_order_ = 0;
};

}  // namespace retrace

#endif  // RETRACE_SERVICE_SEARCH_REGISTRY_H_
