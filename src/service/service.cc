#include "src/service/service.h"

#include <cstdio>
#include <utility>

#include "src/dist/coordinator.h"

namespace retrace {

ReplayService::ReplayService(const IrModule& module, InstrumentationPlan plan,
                             ServiceConfig config)
    : module_(module),
      plan_(std::move(plan)),
      config_(std::move(config)),
      cache_(config_.replay.slice_cache_capacity),
      queue_(config_.queue_capacity, config_.per_tenant_cap) {}

ReplayService::~ReplayService() { Shutdown(); }

bool ReplayService::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) {
    return true;
  }
  if (!config_.snapshot_path.empty()) {
    SliceCache::SnapshotInfo info;
    if (cache_.LoadSnapshot(config_.snapshot_path, &info)) {
      snapshot_loaded_ = true;
      std::fprintf(stderr,
                   "[service] warm cache: %llu sat / %llu unsat entries from %s\n",
                   static_cast<unsigned long long>(info.sat_entries),
                   static_cast<unsigned long long>(info.unsat_entries),
                   config_.snapshot_path.c_str());
    }
  }
  if (config_.replay.num_shards > 1) {
    fleet_ = std::make_unique<ShardFleet>(config_.replay);
    if (fleet_->Start()) {
      fleet_shards_ = fleet_->num_shards();
      fleet_live_ = fleet_->live_shards();
    } else {
      // A service with no fleet still serves: the in-process mode is
      // slower but answers every report.
      std::fprintf(stderr, "[service] shard fleet failed to form; searching in-process\n");
      fleet_.reset();
    }
  }
  stop_ = false;
  started_ = true;
  worker_ = std::thread(&ReplayService::WorkerLoop, this);
  return true;
}

void ReplayService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) {
      return;
    }
    stop_ = true;
    cv_work_.notify_all();
    cv_done_.notify_all();
  }
  worker_.join();
  if (!config_.snapshot_path.empty()) {
    SliceCache::SnapshotInfo info;
    if (cache_.SaveSnapshot(config_.snapshot_path, &info)) {
      std::fprintf(stderr,
                   "[service] snapshot saved: %llu sat / %llu unsat entries to %s\n",
                   static_cast<unsigned long long>(info.sat_entries),
                   static_cast<unsigned long long>(info.unsat_entries),
                   config_.snapshot_path.c_str());
    }
  }
  if (fleet_ != nullptr) {
    fleet_->Shutdown();
    fleet_.reset();
  }
  std::lock_guard<std::mutex> lock(mu_);
  started_ = false;
}

ServiceVerdict ReplayService::Submit(const std::string& tenant, const BugReport& report) {
  const u64 fingerprint = ReportFingerprint(report);
  ServiceVerdict verdict;
  verdict.cluster = fingerprint;

  std::unique_lock<std::mutex> lock(mu_);
  if (!started_ || stop_) {
    rejected_ += 1;
    return verdict;  // kRejected.
  }
  reports_ingested_ += 1;

  ClusterEntry* entry = registry_.Find(fingerprint);
  const bool fresh = entry == nullptr;
  if (!fresh) {
    entry->reports += 1;
    if (entry->state == ClusterState::kSolved) {
      // The crash is already understood: answer from the cluster table
      // without spending a single run.
      cached_verdicts_ += 1;
      verdict.origin = VerdictOrigin::kCached;
      verdict.reproduced = entry->reproduced;
      verdict.result = entry->result;
      return verdict;
    }
    duplicates_attached_ += 1;
  } else {
    if (!queue_.Admit(tenant, fingerprint)) {
      rejected_ += 1;
      return verdict;  // kRejected: queue full or tenant over budget.
    }
    registry_.Insert(fingerprint, tenant, report);
    cv_work_.notify_one();
  }

  // Attached or freshly admitted: wait for the cluster's search.
  cv_done_.wait(lock, [&] {
    const ClusterEntry* e = registry_.Find(fingerprint);
    return stop_ || (e != nullptr && e->state == ClusterState::kSolved);
  });
  entry = registry_.Find(fingerprint);
  if (entry == nullptr || entry->state != ClusterState::kSolved) {
    return verdict;  // Shut down before the cluster ran: kRejected.
  }
  verdict.origin = fresh ? VerdictOrigin::kFresh : VerdictOrigin::kAttached;
  verdict.reproduced = entry->reproduced;
  verdict.result = entry->result;
  return verdict;
}

WireHealthStats ReplayService::HealthStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  WireHealthStats stats;
  stats.reports_ingested = reports_ingested_;
  stats.clusters = registry_.size();
  stats.searches_run = searches_run_;
  stats.duplicates_attached = duplicates_attached_;
  stats.cached_verdicts = cached_verdicts_;
  stats.rejected = rejected_;
  stats.queue_depth = queue_.depth();
  stats.in_flight = in_flight_;
  stats.cache_sat_entries = cache_.sat_entries();
  stats.cache_unsat_entries = cache_.unsat_entries();
  stats.cache_evictions = cache_.evictions();
  stats.snapshot_loaded = snapshot_loaded_ ? 1 : 0;
  stats.fleet_shards = fleet_shards_;
  stats.fleet_live = fleet_live_;
  stats.fleet_jobs = fleet_jobs_;
  for (const ClusterEntry* entry : registry_.MostRecent(kMaxHealthClusterRows)) {
    WireClusterRow row;
    row.fp = entry->fingerprint;
    row.state = static_cast<u8>(entry->state);
    row.reproduced = entry->reproduced ? 1 : 0;
    row.reports = entry->reports;
    stats.rows.push_back(row);
  }
  return stats;
}

void ReplayService::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_work_.wait(lock, [&] { return stop_ || !queue_.Empty(); });
    if (stop_) {
      return;  // Queued clusters stay unsolved; Shutdown wakes their waiters.
    }
    u64 fingerprint = 0;
    std::string tenant;
    queue_.Pop(&fingerprint, &tenant);
    ClusterEntry* entry = registry_.Find(fingerprint);
    entry->state = ClusterState::kRunning;
    in_flight_ = 1;
    // Copy out what the search needs: the registry may rehash under new
    // admissions while the lock is dropped.
    const BugReport report = entry->report;
    lock.unlock();

    ReplayResult result = RunSearch(report);

    lock.lock();
    searches_run_ += 1;
    in_flight_ = 0;
    if (fleet_ != nullptr) {
      // Mirror fleet figures under the lock: the health endpoint must
      // never touch the fleet while this thread drives it.
      fleet_live_ = fleet_->live_shards();
      fleet_jobs_ = fleet_->jobs_dispatched();
    }
    entry = registry_.Find(fingerprint);
    entry->state = ClusterState::kSolved;
    entry->reproduced = result.reproduced;
    entry->result = std::move(result);
    queue_.Release(tenant);
    cv_done_.notify_all();
  }
}

ReplayResult ReplayService::RunSearch(const BugReport& report) {
  if (fleet_ != nullptr) {
    return RunDistributedJob(module_, plan_, report, config_.replay, fleet_.get());
  }
  // In-process: one shard-shaped search sharing the service's
  // cross-report cache, so the next cluster starts where this one's
  // proofs ended.
  ExprArena arena;
  ReplayEngine engine(module_, plan_, report, &arena);
  ReplayConfig cfg = config_.replay;
  cfg.num_shards = 1;
  ShardContext ctx;
  ctx.cache = &cache_;
  return engine.ReproduceShard(cfg, &ctx);
}

}  // namespace retrace
