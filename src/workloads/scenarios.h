// Input scenarios for the paper's experiments.
//
// A scenario is a concrete InputSpec (argv bytes plus world streams) and,
// when the environment must be scripted, a NondetPolicy (e.g. "deliver the
// crash signal after the scripted requests"). Benches and tests share these
// so every number in EXPERIMENTS.md is reproducible.
#ifndef RETRACE_WORKLOADS_SCENARIOS_H_
#define RETRACE_WORKLOADS_SCENARIOS_H_

#include <memory>
#include <string>

#include "src/vos/vos.h"

namespace retrace {

struct Scenario {
  std::string name;
  InputSpec spec;
  std::shared_ptr<NondetPolicy> policy;  // May be null.
};

// ----- Microbenchmarks -----
InputSpec Listing1Spec(char option);
InputSpec LoopMicroSpec(i64 iterations);

// ----- Coreutils (§5.2) -----
// The crashing invocation for each tool ("mkdir", "mknod", "mkfifo",
// "paste"), e.g. paste -d\ abcdefghijklmnopqrstuvwxyz.
Scenario CoreutilsBugScenario(const std::string& tool);
// A benign multi-argument invocation used for overhead measurement (the
// paper runs with up to 10 arguments of up to 100 bytes).
Scenario CoreutilsBenignScenario(const std::string& tool);

// ----- uServer (§5.3) -----
// The five crash experiments: different HTTP methods, lengths and headers;
// the environment delivers a signal after the scripted requests, and the
// server crashes at a fixed location.
Scenario UserverScenario(int experiment);  // 1..5
// Load spec for overhead/branch-behavior runs: `num_requests` connections
// rotating through representative request templates, no signal.
InputSpec UserverLoadSpec(int num_requests);
// Rich single-request spec used to drive pre-deployment dynamic analysis
// (high-coverage configurations).
InputSpec UserverExploreSpec();
// Low-coverage analysis driver: a 5-byte, incomplete request. Exploration
// never constructs a full HTTP request from it within small budgets, so
// the request parser stays unlabeled — modeling the paper's dynamic
// analysis at 20% coverage after its one-hour cutoff.
InputSpec UserverExploreSpecLC();
// The developer's "test suite" for high-coverage analysis: cell models
// over UserverExploreSpec's layout encoding a POST and a HEAD request
// (paper §6: manual test cases boost symbolic-execution coverage).
std::vector<std::vector<i64>> UserverExploreSeedModels();

// ----- diff (§5.4) -----
// Two file-pair experiments; contents arrive through the virtual FS. Both
// trigger the hunk-bookkeeping overflow, experiment 2 on larger files.
Scenario DiffScenario(int experiment);  // 1..2
// Benign pair (no crash) for overhead measurement.
Scenario DiffBenignScenario();
// Small file pair for pre-deployment dynamic analysis.
InputSpec DiffExploreSpec();

}  // namespace retrace

#endif  // RETRACE_WORKLOADS_SCENARIOS_H_
