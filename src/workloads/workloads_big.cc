#include "src/workloads/workloads.h"

namespace retrace {

WorkloadSources DiffWorkload() {
  return WorkloadSources{
      "diff",
      R"mc(
// diff FILE_A FILE_B
// Line-based diff via longest-common-subsequence, printing "< " / "> "
// hunks. Input-intensive: every branch of the line comparison and the DP
// depends on file contents, which is what makes diff hard for dynamic
// analysis (paper §5.4: 20% coverage after an hour).
//
// Bug: the hunk bookkeeping array holds 4 entries; executions producing
// more change-hunks overflow it.
char g_buf_a[2048];
char g_buf_b[2048];
int g_off_a[64];
int g_off_b[64];
int g_len_a[64];
int g_len_b[64];
int g_dp[4356];
int g_ops[160];
int g_hunks[4];
char g_line[160];

int read_file(char *path, char *buf, int cap) {
  int fd = open(path, 0);
  if (fd < 0) {
    print_str("diff: cannot open ");
    print_str(path);
    print_str("\n");
    exit(2);
  }
  int total = 0;
  int r = read(fd, &buf[0], cap - 1);
  while (r > 0) {
    total = total + r;
    if (total >= cap - 1) {
      break;
    }
    r = read(fd, &buf[total], cap - 1 - total);
  }
  buf[total] = 0;
  close(fd);
  return total;
}

int split_lines(char *buf, int len, int *offs, int *lens, int maxlines) {
  int n = 0;
  int start = 0;
  int i = 0;
  while (i < len) {
    if (buf[i] == '\n') {
      if (n >= maxlines) {
        return n;
      }
      offs[n] = start;
      lens[n] = i - start;
      n = n + 1;
      start = i + 1;
    }
    i = i + 1;
  }
  if (start < len) {
    if (n >= maxlines) {
      return n;
    }
    offs[n] = start;
    lens[n] = len - start;
    n = n + 1;
  }
  return n;
}

int lines_equal(int ai, int bi) {
  if (g_len_a[ai] != g_len_b[bi]) {
    return 0;
  }
  int i = 0;
  while (i < g_len_a[ai]) {
    if (g_buf_a[g_off_a[ai] + i] != g_buf_b[g_off_b[bi] + i]) {
      return 0;
    }
    i = i + 1;
  }
  return 1;
}

int print_line(char *tag, char *buf, int off, int len) {
  int n = mini_strcpy(g_line, tag);
  int i = 0;
  while (i < len && n < 158) {
    g_line[n] = buf[off + i];
    n = n + 1;
    i = i + 1;
  }
  g_line[n] = '\n';
  g_line[n + 1] = 0;
  print_str(g_line);
  return n;
}

int main(int argc, char **argv) {
  if (argc < 3) {
    print_str("usage: diff FILE_A FILE_B\n");
    exit(2);
  }
  int la = read_file(argv[1], g_buf_a, 2048);
  int lb = read_file(argv[2], g_buf_b, 2048);
  int n = split_lines(g_buf_a, la, g_off_a, g_len_a, 64);
  int m = split_lines(g_buf_b, lb, g_off_b, g_len_b, 64);

  // LCS dynamic program over lines; stride 66 accommodates 64+1 columns.
  int i;
  int j;
  for (i = 0; i <= n; i = i + 1) {
    for (j = 0; j <= m; j = j + 1) {
      g_dp[i * 66 + j] = 0;
    }
  }
  for (i = 1; i <= n; i = i + 1) {
    for (j = 1; j <= m; j = j + 1) {
      if (lines_equal(i - 1, j - 1)) {
        g_dp[i * 66 + j] = g_dp[(i - 1) * 66 + (j - 1)] + 1;
      } else {
        int up = g_dp[(i - 1) * 66 + j];
        int left = g_dp[i * 66 + (j - 1)];
        g_dp[i * 66 + j] = mini_max(up, left);
      }
    }
  }

  // Backtrack into an edit script (0 = keep, 1 = delete from A, 2 = add
  // from B), recorded backwards.
  int t = 0;
  i = n;
  j = m;
  while (i > 0 || j > 0) {
    if (i > 0 && j > 0 && lines_equal(i - 1, j - 1)) {
      g_ops[t] = 0;
      i = i - 1;
      j = j - 1;
    } else if (j > 0 && (i == 0 || g_dp[i * 66 + (j - 1)] >= g_dp[(i - 1) * 66 + j])) {
      g_ops[t] = 2;
      j = j - 1;
    } else {
      g_ops[t] = 1;
      i = i - 1;
    }
    t = t + 1;
  }

  // Replay the script forwards, printing hunks. g_hunks records the A-line
  // where each hunk starts -- with no bound check (the bug).
  int ai = 0;
  int bi = 0;
  int nhunks = 0;
  int in_hunk = 0;
  int k = t - 1;
  while (k >= 0) {
    int op = g_ops[k];
    if (op == 0) {
      in_hunk = 0;
      ai = ai + 1;
      bi = bi + 1;
    } else {
      if (!in_hunk) {
        g_hunks[nhunks] = ai + 1;
        nhunks = nhunks + 1;
        in_hunk = 1;
      }
      if (op == 1) {
        print_line("< ", g_buf_a, g_off_a[ai], g_len_a[ai]);
        ai = ai + 1;
      } else {
        print_line("> ", g_buf_b, g_off_b[bi], g_len_b[bi]);
        bi = bi + 1;
      }
    }
    k = k - 1;
  }
  print_str("hunks: ");
  print_int(nhunks);
  print_str("\n");
  if (nhunks == 0) {
    exit(0);
  }
  return 1;
}
)mc",
      {LibminiSource()}};
}

WorkloadSources UserverWorkload() {
  return WorkloadSources{
      "userver",
      R"mc(
// userver: an event-driven (select-loop) HTTP server modeled on the
// uServer the paper evaluates. One listen descriptor, up to 8 concurrent
// connections, a full request parser (method, path, query, version,
// Host/Cookie/Content-Length headers, POST bodies) and response writer.
//
// The experiment crash is delivered externally: the environment raises a
// pending signal (poll_signal() returns 1) after the scripted requests,
// and the handler calls crash() at a fixed location -- the SIGSEGV
// stand-in of paper §5.3.
int g_conn_fds[8];
int g_conn_len[8];
char g_conn_buf[4096];
int g_handled = 0;
int g_idle = 0;
char g_resp[768];
char g_body[512];
char g_path[128];
char g_query[128];
char g_cookie[64];
char g_host[64];
char g_num[24];

int find_slot() {
  for (int i = 0; i < 8; i = i + 1) {
    if (g_conn_fds[i] < 0) {
      return i;
    }
  }
  return -1;
}

// Copies the value of "NAME: value\r\n" into out; returns value length or -1.
int header_value(char *buf, int len, char *name, char *out, int cap) {
  int pos = mini_find_str(buf, len, name);
  if (pos < 0) {
    out[0] = 0;
    return -1;
  }
  int i = pos + mini_strlen(name);
  while (i < len && buf[i] == ' ') {
    i = i + 1;
  }
  int n = 0;
  while (i < len && buf[i] != '\r' && buf[i] != '\n' && n < cap - 1) {
    out[n] = buf[i];
    n = n + 1;
    i = i + 1;
  }
  out[n] = 0;
  return n;
}

// 0 = incomplete, otherwise total request length including body.
int request_complete(char *buf, int len) {
  int hdr_end = mini_find_str(buf, len, "\r\n\r\n");
  if (hdr_end < 0) {
    return 0;
  }
  int total = hdr_end + 4;
  if (mini_strncmp(buf, "POST ", 5) == 0) {
    char clbuf[16];
    if (header_value(buf, total, "Content-Length:", clbuf, 16) > 0) {
      int cl = mini_atoi(clbuf);
      if (cl < 0 || cl > 2048) {
        return total;
      }
      if (len < total + cl) {
        return 0;
      }
      total = total + cl;
    }
  }
  return total;
}

int count_query_params(char *q) {
  if (q[0] == 0) {
    return 0;
  }
  int n = 1;
  int i = 0;
  while (q[i] != 0) {
    if (q[i] == '&') {
      n = n + 1;
    }
    i = i + 1;
  }
  return n;
}

char g_logbuf[96];
int g_seq = 0;

// Access log: one line per response, written to stderr. Everything in the
// line is input-independent (sequence number, status code), so this is the
// concrete per-request work a production server does alongside parsing.
int access_log(int status) {
  g_seq = g_seq + 1;
  int n = mini_strcpy(g_logbuf, "userver[");
  char num[24];
  mini_itoa(g_seq, num);
  n = mini_strcat(g_logbuf, num);
  n = mini_strcat(g_logbuf, "] status=");
  mini_itoa(status, num);
  n = mini_strcat(g_logbuf, num);
  n = mini_strcat(g_logbuf, " proto=HTTP/1.0 served-by=worker-0");
  g_logbuf[n] = '\n';
  g_logbuf[n + 1] = 0;
  write(2, g_logbuf, n + 1);
  return n;
}

int send_response(int fd, int status, char *reason, char *body) {
  access_log(status);
  int n = mini_strcpy(g_resp, "HTTP/1.0 ");
  n = n + mini_itoa(status, g_num);
  mini_strcat(g_resp, g_num);
  mini_strcat(g_resp, " ");
  mini_strcat(g_resp, reason);
  mini_strcat(g_resp, "\r\nContent-Length: ");
  mini_itoa(mini_strlen(body), g_num);
  mini_strcat(g_resp, g_num);
  mini_strcat(g_resp, "\r\nServer: userver-mini\r\n\r\n");
  int total = mini_strcat(g_resp, body);
  write(fd, g_resp, total);
  return total;
}

int route_request(int fd, int is_head) {
  if (mini_streq(g_path, "/")) {
    mini_strcpy(g_body, "<html>index");
    if (g_cookie[0] != 0) {
      mini_strcat(g_body, " cookie=");
      mini_strcat(g_body, g_cookie);
    }
    mini_strcat(g_body, "</html>");
    if (is_head) {
      g_body[0] = 0;
    }
    return send_response(fd, 200, "OK", g_body);
  }
  if (mini_streq(g_path, "/about")) {
    mini_strcpy(g_body, "userver-mini: a select-loop web server");
    return send_response(fd, 200, "OK", g_body);
  }
  if (mini_starts_with(g_path, "/static/")) {
    int q = count_query_params(g_query);
    mini_strcpy(g_body, "static:");
    mini_strcat(g_body, &g_path[8]);
    if (q > 0) {
      mini_strcat(g_body, " params=");
      mini_itoa(q, g_num);
      mini_strcat(g_body, g_num);
    }
    return send_response(fd, 200, "OK", g_body);
  }
  if (mini_streq(g_path, "/secret")) {
    mini_strcpy(g_body, "forbidden");
    return send_response(fd, 403, "Forbidden", g_body);
  }
  mini_strcpy(g_body, "not found");
  return send_response(fd, 404, "Not Found", g_body);
}

int parse_and_respond(int fd, char *buf, int len) {
  int is_head = 0;
  int is_post = 0;
  int off = 0;
  if (mini_strncmp(buf, "GET ", 4) == 0) {
    off = 4;
  } else if (mini_strncmp(buf, "POST ", 5) == 0) {
    off = 5;
    is_post = 1;
  } else if (mini_strncmp(buf, "HEAD ", 5) == 0) {
    off = 5;
    is_head = 1;
  } else {
    mini_strcpy(g_body, "bad method");
    return send_response(fd, 501, "Not Implemented", g_body);
  }
  // Path (up to '?' or space).
  int p = 0;
  g_query[0] = 0;
  while (off < len && buf[off] != ' ' && buf[off] != '?' && buf[off] != '\r') {
    if (p >= 126) {
      mini_strcpy(g_body, "uri too long");
      return send_response(fd, 414, "URI Too Long", g_body);
    }
    g_path[p] = buf[off];
    p = p + 1;
    off = off + 1;
  }
  g_path[p] = 0;
  if (p == 0 || g_path[0] != '/') {
    mini_strcpy(g_body, "bad path");
    return send_response(fd, 400, "Bad Request", g_body);
  }
  // Query string.
  if (off < len && buf[off] == '?') {
    off = off + 1;
    int q = 0;
    while (off < len && buf[off] != ' ' && buf[off] != '\r' && q < 126) {
      g_query[q] = buf[off];
      q = q + 1;
      off = off + 1;
    }
    g_query[q] = 0;
  }
  // Version.
  while (off < len && buf[off] == ' ') {
    off = off + 1;
  }
  if (mini_strncmp(&buf[off], "HTTP/1.", 7) != 0) {
    mini_strcpy(g_body, "bad version");
    return send_response(fd, 505, "Version Not Supported", g_body);
  }
  // Headers.
  header_value(buf, len, "Host:", g_host, 64);
  header_value(buf, len, "Cookie:", g_cookie, 64);
  if (g_host[0] == 0) {
    mini_strcpy(g_body, "missing host");
    return send_response(fd, 400, "Bad Request", g_body);
  }
  if (is_post) {
    char clbuf[16];
    int have_cl = header_value(buf, len, "Content-Length:", clbuf, 16);
    if (have_cl <= 0) {
      mini_strcpy(g_body, "length required");
      return send_response(fd, 411, "Length Required", g_body);
    }
    int cl = mini_atoi(clbuf);
    mini_strcpy(g_body, "posted bytes=");
    mini_itoa(cl, g_num);
    mini_strcat(g_body, g_num);
    return send_response(fd, 200, "OK", g_body);
  }
  return route_request(fd, is_head);
}

int handle_conn(int slot) {
  int fd = g_conn_fds[slot];
  int off = slot * 512;
  int cap = 512 - g_conn_len[slot] - 1;
  if (cap <= 0) {
    close(fd);
    g_conn_fds[slot] = -1;
    return 0;
  }
  int r = read(fd, &g_conn_buf[off + g_conn_len[slot]], cap);
  if (r <= 0) {
    close(fd);
    g_conn_fds[slot] = -1;
    return 0;
  }
  g_conn_len[slot] = g_conn_len[slot] + r;
  g_conn_buf[off + g_conn_len[slot]] = 0;
  int total = request_complete(&g_conn_buf[off], g_conn_len[slot]);
  if (total == 0) {
    return 0;
  }
  parse_and_respond(fd, &g_conn_buf[off], g_conn_len[slot]);
  g_handled = g_handled + 1;
  close(fd);
  g_conn_fds[slot] = -1;
  return 1;
}

int main(int argc, char **argv) {
  int i;
  for (i = 0; i < 8; i = i + 1) {
    g_conn_fds[i] = -1;
    g_conn_len[i] = 0;
  }
  int fds[9];
  while (1) {
    if (poll_signal()) {
      crash(7);
    }
    int n = 0;
    fds[n] = 3;
    n = n + 1;
    for (i = 0; i < 8; i = i + 1) {
      if (g_conn_fds[i] >= 0) {
        fds[n] = g_conn_fds[i];
        n = n + 1;
      }
    }
    int ready = select_fd(fds, n);
    if (ready < 0) {
      g_idle = g_idle + 1;
      if (g_idle > 12) {
        exit(0);
      }
      continue;
    }
    g_idle = 0;
    if (fds[ready] == 3) {
      int conn = accept_conn(3);
      if (conn >= 0) {
        int slot = find_slot();
        if (slot < 0) {
          close(conn);
        } else {
          g_conn_fds[slot] = conn;
          g_conn_len[slot] = 0;
        }
      }
      continue;
    }
    int slot = -1;
    for (i = 0; i < 8; i = i + 1) {
      if (g_conn_fds[i] == fds[ready]) {
        slot = i;
      }
    }
    if (slot >= 0) {
      handle_conn(slot);
    }
  }
  return 0;
}
)mc",
      {LibminiSource()}};
}

}  // namespace retrace
