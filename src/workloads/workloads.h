// The paper's benchmark programs, rewritten in MiniC.
//
// Each workload is an application source plus the `libmini` library unit —
// the uClibc stand-in providing string/format routines. Library functions
// execute far more branch instances than application code (the paper
// measures 81% of uServer branch executions inside uClibc), which is what
// makes the static-analysis library-opaque mode expensive.
//
// The four coreutils carry bugs modeled on the real KLEE-reported crashes
// the paper reproduces: unchecked buffer copies in option parsing (mkdir,
// mkfifo), a missing argc check (mknod), and paste's trailing-backslash
// delimiter walk off the end of the argument.
#ifndef RETRACE_WORKLOADS_WORKLOADS_H_
#define RETRACE_WORKLOADS_WORKLOADS_H_

#include <string>
#include <vector>

namespace retrace {

struct WorkloadSources {
  std::string name;
  std::string app;
  std::vector<std::string> libs;
};

// The shared library unit (string/ctype/format/IO helpers).
const std::string& LibminiSource();

WorkloadSources Listing1Workload();   // The paper's fibonacci example.
WorkloadSources LoopMicroWorkload();  // §5.1 counting-loop microbenchmark.
WorkloadSources MkdirWorkload();
WorkloadSources MknodWorkload();
WorkloadSources MkfifoWorkload();
WorkloadSources PasteWorkload();
WorkloadSources DiffWorkload();
WorkloadSources UserverWorkload();

// Lookup by name ("mkdir", "diff", "userver", ...). Fatal on unknown name.
WorkloadSources GetWorkload(const std::string& name);

}  // namespace retrace

#endif  // RETRACE_WORKLOADS_WORKLOADS_H_
