#include "src/workloads/scenarios.h"

#include <string_view>

namespace retrace {
namespace {

std::vector<u8> Bytes(std::string_view s) { return std::vector<u8>(s.begin(), s.end()); }

StreamShape MakeStream(std::string name, std::string_view contents, i64 chunk = -1) {
  StreamShape stream;
  stream.name = std::move(name);
  stream.bytes = Bytes(contents);
  stream.length = static_cast<i64>(stream.bytes.size());
  stream.chunk = chunk;
  return stream;
}

}  // namespace

InputSpec Listing1Spec(char option) {
  InputSpec spec;
  spec.argv = {"listing1", std::string(1, option)};
  spec.world.listen_fd = -1;
  return spec;
}

InputSpec LoopMicroSpec(i64 iterations) {
  InputSpec spec;
  spec.argv = {"loop_micro", std::to_string(iterations)};
  spec.world.listen_fd = -1;
  return spec;
}

Scenario CoreutilsBugScenario(const std::string& tool) {
  Scenario s;
  s.name = tool + "-bug";
  s.spec.world.listen_fd = -1;
  if (tool == "mkdir") {
    // Mode string longer than the 8-byte parse buffer.
    s.spec.argv = {"mkdir", "-m", "7777777777", "newdir"};
  } else if (tool == "mknod") {
    // Block device without the minor number: argv[idx+2] indexes past argc.
    s.spec.argv = {"mknod", "dev0", "b", "7"};
  } else if (tool == "mkfifo") {
    // Invalid 8-char mode overflows the error-message buffer.
    s.spec.argv = {"mkfifo", "-m", "99999999", "fifo1"};
  } else if (tool == "paste") {
    // The real paste bug: delimiter list ending in a backslash.
    s.spec.argv = {"paste", "-d", "\\", "abcdefghijklmnopqrstuvwxyz"};
  } else {
    FatalError("unknown coreutils tool: " + tool);
  }
  return s;
}

Scenario CoreutilsBenignScenario(const std::string& tool) {
  Scenario s;
  s.name = tool + "-benign";
  s.spec.world.listen_fd = -1;
  const std::string long_name(48, 'd');
  if (tool == "mkdir") {
    s.spec.argv = {"mkdir", "-p",        "-v",       "-m",        "0755",
                   "alpha", "beta",      long_name,  "gamma",     "delta"};
  } else if (tool == "mknod") {
    s.spec.argv = {"mknod", "-m", "0644", "device0", "b", "42", "17"};
  } else if (tool == "mkfifo") {
    s.spec.argv = {"mkfifo", "-m", "0644", "pipe0", "pipe1", long_name, "pipe2"};
  } else if (tool == "paste") {
    s.spec.argv = {"paste", "-d", ",;:", "one", "two", "three", long_name, "five"};
  } else {
    FatalError("unknown coreutils tool: " + tool);
  }
  return s;
}

namespace {

// Builds a POST request whose Content-Length matches the body exactly.
std::string MakePost(std::string_view path, std::string_view extra_headers,
                     std::string_view body) {
  std::string request = "POST ";
  request += path;
  request += " HTTP/1.0\r\n";
  request += extra_headers;
  request += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
  request += body;
  return request;
}

// Request lengths mirror the paper's 5-to-400-byte range; the longer the
// request, the more symbolic branch *executions* the parser performs, and
// the harder replay becomes when some of those locations are unlogged.
std::string UserverRequest(int index) {
  switch (index) {
    case 0:
      // Experiment 1: minimal GET (shortest path through the parser).
      return "GET / HTTP/1.0\r\nHost: a\r\n\r\n";
    case 1:
      // Experiment 2: long static path plus many query parameters (~180 B).
      return "GET /static/images/products/2011/april/salzburg-eurosys-logo-640x480.png"
             "?w=640&h=480&fmt=png&cache=no&lang=en&region=at&session=99f31&track=001"
             " HTTP/1.0\r\nHost: www.example.org\r\n\r\n";
    case 2:
      // Experiment 3: POST with Content-Length and a ~190-byte body.
      return MakePost(
          "/submit", "Host: forms.example.org\r\n",
          "name=crameri&coauthors=bianchini-zwaenepoel&topic=striking-a-new-balance"
          "&venue=eurosys-2011&keywords=debugging%2Cbug-reporting%2Csymbolic-execution"
          "&abstract=partial-branch-logging-for-replay&x=1");
    case 3:
      // Experiment 4 (first connection): HEAD with a long Cookie header.
      return "HEAD / HTTP/1.0\r\nHost: cdn.example.org\r\n"
             "Cookie: session=abc123def456ghi789jkl012mno345pqr678stu901vwx\r\n\r\n";
    default:
      // Experiment 5 (first connection): ~400-byte POST, several headers.
      return MakePost(
          "/submit",
          "Host: upload.example.org\r\n"
          "Cookie: id=f00dface; theme=dark; lang=en-US; tz=Europe%2FZurich\r\n"
          "User-Agent: httperf/0.9 retrace-bench (compatible; replay-harness)\r\n"
          "Accept: text/html,application/xhtml+xml,application/xml;q=0.9,*/*;q=0.8\r\n",
          "field1=aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa&field2=bbbbbbbbbbbbbbbbbbbbbbbbbbbb"
          "&field3=cccccccccccccccccccccccccc&f4=ddddddddddddddddd&f5=eeeeeeeeeeee&z=9");
  }
}

}  // namespace

Scenario UserverScenario(int experiment) {
  Check(experiment >= 1 && experiment <= 5, "userver experiment out of range");
  Scenario s;
  s.name = "userver-exp" + std::to_string(experiment);
  s.spec.argv = {"userver", "8080"};
  WorldShape& world = s.spec.world;
  world.listen_fd = 3;
  world.max_concurrent_conns = 1;

  auto add_conn = [&](std::string_view request, i64 chunk = -1) {
    world.connection_streams.push_back(static_cast<i32>(world.streams.size()));
    world.streams.push_back(MakeStream("conn", request, chunk));
  };

  switch (experiment) {
    case 1:
      add_conn(UserverRequest(0));
      break;
    case 2:
      add_conn(UserverRequest(1));
      break;
    case 3:
      add_conn(UserverRequest(2));
      break;
    case 4:
      add_conn(UserverRequest(3));
      add_conn("GET /about HTTP/1.0\r\nHost: cdn.example.org\r\n\r\n");
      break;
    case 5:
      // Chunked delivery forces multiple read() calls per request.
      add_conn(UserverRequest(4), /*chunk=*/100);
      add_conn("GET /static/css/site.css?v=3 HTTP/1.0\r\nHost: upload.example.org\r\n\r\n");
      add_conn("GET /secret HTTP/1.0\r\nHost: upload.example.org\r\n\r\n");
      break;
    default:
      break;
  }
  const int conns = static_cast<int>(world.connection_streams.size());
  // The signal lands after the scripted requests are fully processed: each
  // connection costs one accept iteration plus one-per-chunk read
  // iterations; 4*conns + 4 polls is past the end for every experiment.
  s.policy = std::make_shared<SignalAfterPolicy>(4 * conns + 4);
  return s;
}

InputSpec UserverLoadSpec(int num_requests) {
  InputSpec spec;
  spec.argv = {"userver", "8080"};
  spec.world.listen_fd = 3;
  spec.world.max_concurrent_conns = 4;
  for (int i = 0; i < num_requests; ++i) {
    const std::string request = UserverRequest(i % 3);  // GET, long GET, POST.
    spec.world.connection_streams.push_back(static_cast<i32>(spec.world.streams.size()));
    spec.world.streams.push_back(MakeStream("conn", request));
  }
  return spec;
}

InputSpec UserverExploreSpec() {
  InputSpec spec;
  spec.argv = {"userver", "8080"};
  spec.world.listen_fd = 3;
  spec.world.max_concurrent_conns = 1;
  spec.world.connection_streams.push_back(0);
  // The pre-deployment test request: long enough that exploration can
  // mutate it into every method, route, query and header variant the
  // parser distinguishes (deep coverage needs many sequenced byte flips,
  // which is exactly the paper's LC-vs-HC budget knob).
  spec.world.streams.push_back(
      MakeStream("conn", "GET /static/ab?x=1&y=2 HTTP/1.0\r\nHost: h\r\nCookie: c=1\r\n\r\n"));
  return spec;
}

InputSpec UserverExploreSpecLC() {
  InputSpec spec;
  spec.argv = {"userver", "8080"};
  spec.world.listen_fd = 3;
  spec.world.max_concurrent_conns = 1;
  spec.world.connection_streams.push_back(0);
  // Five bytes, no terminating \r\n\r\n: the request never completes, so
  // parse_and_respond and everything below it stay unvisited.
  spec.world.streams.push_back(MakeStream("conn", "GET /"));
  return spec;
}

std::vector<std::vector<i64>> UserverExploreSeedModels() {
  const InputSpec spec = UserverExploreSpec();
  const CellLayout layout = CellLayout::Build(spec);
  const i64 stream_len = static_cast<i64>(spec.world.streams[0].bytes.size());
  auto model_for = [&](std::string_view request) {
    std::vector<i64> model = layout.defaults();
    for (i64 k = 0; k < stream_len; ++k) {
      // Trailing filler past the template is ignored by the parser (the
      // request is complete at \r\n\r\n + body).
      const char byte = k < static_cast<i64>(request.size()) ? request[k] : 'x';
      model[layout.StreamByteCell(0, k)] = static_cast<u8>(byte);
    }
    return model;
  };
  return {
      model_for("POST /ab HTTP/1.0\r\nHost: h\r\nContent-Length: 4\r\n\r\nq=1z"),
      model_for("HEAD /about HTTP/1.0\r\nHost: h\r\nCookie: c=123\r\n\r\n"),
  };
}

namespace {

Scenario MakeDiffScenario(std::string name, std::string_view a, std::string_view b) {
  Scenario s;
  s.name = std::move(name);
  s.spec.argv = {"diff", "a.txt", "b.txt"};
  // The file *names* already appear in the world's FS map the report ships;
  // only the file *contents* are private input.
  s.spec.argv_public = {true, true, true};
  WorldShape& world = s.spec.world;
  world.listen_fd = -1;
  world.files.emplace_back("a.txt", 0);
  world.files.emplace_back("b.txt", 1);
  world.streams.push_back(MakeStream("a.txt", a));
  world.streams.push_back(MakeStream("b.txt", b));
  return s;
}

}  // namespace

Scenario DiffScenario(int experiment) {
  Check(experiment >= 1 && experiment <= 2, "diff experiment out of range");
  if (experiment == 1) {
    // 10 lines each, 5 separated single-line changes -> 5 hunks, which
    // overflows the 4-entry hunk table.
    return MakeDiffScenario(
        "diff-exp1",
        "alpha\nbravo\ncharlie\ndelta\necho\nfoxtrot\ngolf\nhotel\nindia\njuliet\n",
        "alpha1\nbravo\ncharlie2\ndelta\necho3\nfoxtrot\ngolf4\nhotel\nindia5\njuliet\n");
  }
  // Larger files, longer lines, more DP work, 6 hunks.
  return MakeDiffScenario(
      "diff-exp2",
      "the quick brown fox jumps over the lazy dog\n"
      "pack my box with five dozen liquor jugs\n"
      "how vexingly quick daft zebras jump\n"
      "sphinx of black quartz judge my vow\n"
      "two driven jocks help fax my big quiz\n"
      "five quacking zephyrs jolt my wax bed\n"
      "the five boxing wizards jump quickly\n"
      "jackdaws love my big sphinx of quartz\n"
      "mr jock tv quiz phd bags few lynx\n"
      "waltz bad nymph for quick jigs vex\n"
      "glib jocks quiz nymph to vex dwarf\n"
      "quick zephyrs blow vexing daft jim\n",
      "the quick brown fox jumps over the lazy cat\n"
      "pack my box with five dozen liquor jugs\n"
      "how vexingly quick daft zebras leap\n"
      "sphinx of black quartz judge my vow\n"
      "two driven jocks help tax my big quiz\n"
      "five quacking zephyrs jolt my wax bed\n"
      "the five boxing wizards jump quietly\n"
      "jackdaws love my big sphinx of quartz\n"
      "mr jock tv quiz phd bags few cats\n"
      "waltz bad nymph for quick jigs vex\n"
      "glib jocks quiz nymph to vex dwarf\n"
      "quick zephyrs blow vexing daft kim\n");
}

Scenario DiffBenignScenario() {
  // Three small changes: under the hunk-table limit, exits normally.
  return MakeDiffScenario(
      "diff-benign",
      "one\ntwo\nthree\nfour\nfive\nsix\nseven\neight\n",
      "one\ntwo2\nthree\nfour\nfive5\nsix\nseven\neight8\n");
}

InputSpec DiffExploreSpec() {
  // Degenerate (empty) files: the analysis labels the read/EOF handling but
  // never reaches the line-scanning and comparison loops. This models the
  // paper's diff experience — heavy constraint sets keep the engine at 20%
  // coverage after an hour, logging only 3 of 35 symbolic locations.
  Scenario s = MakeDiffScenario("diff-explore", "", "");
  return s.spec;
}

}  // namespace retrace
