#include "src/workloads/workloads.h"

#include "src/support/common.h"

namespace retrace {

const std::string& LibminiSource() {
  static const std::string* kSource = new std::string(R"mc(
// libmini: the uClibc stand-in. String, ctype, conversion and line-IO
// helpers used by every workload.

int mini_strlen(char *s) {
  int n = 0;
  while (s[n] != 0) {
    n = n + 1;
  }
  return n;
}

int mini_strcmp(char *a, char *b) {
  int i = 0;
  while (a[i] != 0 && a[i] == b[i]) {
    i = i + 1;
  }
  return a[i] - b[i];
}

int mini_streq(char *a, char *b) {
  return mini_strcmp(a, b) == 0;
}

int mini_strncmp(char *a, char *b, int n) {
  int i = 0;
  while (i < n) {
    if (a[i] != b[i]) {
      return a[i] - b[i];
    }
    if (a[i] == 0) {
      return 0;
    }
    i = i + 1;
  }
  return 0;
}

int mini_strcpy(char *dst, char *src) {
  int i = 0;
  while (src[i] != 0) {
    dst[i] = src[i];
    i = i + 1;
  }
  dst[i] = 0;
  return i;
}

int mini_strncpy(char *dst, char *src, int n) {
  int i = 0;
  while (i < n - 1 && src[i] != 0) {
    dst[i] = src[i];
    i = i + 1;
  }
  dst[i] = 0;
  return i;
}

int mini_strcat(char *dst, char *src) {
  int n = mini_strlen(dst);
  int i = 0;
  while (src[i] != 0) {
    dst[n + i] = src[i];
    i = i + 1;
  }
  dst[n + i] = 0;
  return n + i;
}

int mini_memcpy(char *dst, char *src, int n) {
  for (int i = 0; i < n; i = i + 1) {
    dst[i] = src[i];
  }
  return n;
}

int mini_memset(char *dst, int c, int n) {
  for (int i = 0; i < n; i = i + 1) {
    dst[i] = c;
  }
  return n;
}

int mini_isdigit(int c) {
  return c >= '0' && c <= '9';
}

int mini_isalpha(int c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}

int mini_isspace(int c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}

int mini_tolower(int c) {
  if (c >= 'A' && c <= 'Z') {
    return c + 32;
  }
  return c;
}

int mini_atoi(char *s) {
  int i = 0;
  int sign = 1;
  int v = 0;
  while (mini_isspace(s[i])) {
    i = i + 1;
  }
  if (s[i] == '-') {
    sign = -1;
    i = i + 1;
  }
  while (mini_isdigit(s[i])) {
    v = v * 10 + (s[i] - '0');
    i = i + 1;
  }
  return v * sign;
}

int mini_itoa(int v, char *out) {
  char tmp[24];
  int i = 0;
  int t = 0;
  if (v < 0) {
    out[i] = '-';
    i = i + 1;
    v = -v;
  }
  if (v == 0) {
    tmp[t] = '0';
    t = t + 1;
  }
  while (v > 0) {
    tmp[t] = '0' + v % 10;
    t = t + 1;
    v = v / 10;
  }
  while (t > 0) {
    t = t - 1;
    out[i] = tmp[t];
    i = i + 1;
  }
  out[i] = 0;
  return i;
}

int mini_find_char(char *s, int c) {
  int i = 0;
  while (s[i] != 0) {
    if (s[i] == c) {
      return i;
    }
    i = i + 1;
  }
  return -1;
}

// Finds `needle` inside the first `len` bytes of `hay`; returns offset or -1.
int mini_find_str(char *hay, int len, char *needle) {
  int nlen = mini_strlen(needle);
  if (nlen == 0) {
    return 0;
  }
  int i = 0;
  while (i + nlen <= len) {
    int j = 0;
    while (j < nlen && hay[i + j] == needle[j]) {
      j = j + 1;
    }
    if (j == nlen) {
      return i;
    }
    i = i + 1;
  }
  return -1;
}

int mini_starts_with(char *s, char *prefix) {
  int i = 0;
  while (prefix[i] != 0) {
    if (s[i] != prefix[i]) {
      return 0;
    }
    i = i + 1;
  }
  return 1;
}

// Reads one byte at a time until newline/EOF. Returns bytes read.
int mini_readline(int fd, char *buf, int cap) {
  int n = 0;
  while (n < cap - 1) {
    int r = read(fd, &buf[n], 1);
    if (r <= 0) {
      break;
    }
    if (buf[n] == '\n') {
      n = n + 1;
      break;
    }
    n = n + 1;
  }
  buf[n] = 0;
  return n;
}

int mini_min(int a, int b) {
  if (a < b) {
    return a;
  }
  return b;
}

int mini_max(int a, int b) {
  if (a > b) {
    return a;
  }
  return b;
}

// All-octal-digit check used by the coreutils mode parsers.
int mini_all_octal(char *s) {
  int i = 0;
  if (s[0] == 0) {
    return 0;
  }
  while (s[i] != 0) {
    if (s[i] < '0' || s[i] > '7') {
      return 0;
    }
    i = i + 1;
  }
  return 1;
}

// Program startup bookkeeping: version banner, locale table, config hash.
// Models the concrete (input-independent) work real programs do before
// touching their arguments — the gray mass of the paper's Figure 1.
char g_mini_banner[64];
int g_mini_locale[32];

int mini_startup(char *progname) {
  int n = mini_strcpy(g_mini_banner, progname);
  n = n + mini_strcat(g_mini_banner, " (retrace coreutils) 8.");
  char rev[8];
  mini_itoa(32, rev);
  mini_strcat(g_mini_banner, rev);
  for (int i = 0; i < 32; i = i + 1) {
    g_mini_locale[i] = (i * 37 + 11) % 64;
  }
  int hash = 5381;
  int k = 0;
  while (g_mini_banner[k] != 0) {
    hash = (hash * 33 + g_mini_banner[k]) % 16777213;
    k = k + 1;
  }
  for (int i = 0; i < 32; i = i + 1) {
    if (g_mini_locale[i] % 2 == 0) {
      hash = hash + g_mini_locale[i];
    } else {
      hash = hash - 1;
    }
  }
  return hash;
}
)mc");
  return *kSource;
}

WorkloadSources Listing1Workload() {
  return WorkloadSources{
      "listing1",
      R"mc(
// The paper's Listing 1: computes a fibonacci number selected by the
// program option. Only the two option tests are symbolic branches; the
// thousands of branches inside fibonacci() are concrete.
int fibonacci(int n) {
  if (n < 2) {
    return n;
  }
  return fibonacci(n - 1) + fibonacci(n - 2);
}

int main(int argc, char **argv) {
  char option = 0;
  if (argc > 1) {
    option = argv[1][0];
  }
  int result = 0;
  if (option == 'a') {
    result = fibonacci(18);
  } else if (option == 'b') {
    result = fibonacci(21);
  }
  print_int(result);
  return 0;
}
)mc",
      {LibminiSource()}};
}

WorkloadSources LoopMicroWorkload() {
  return WorkloadSources{
      "loop_micro",
      R"mc(
// §5.1 microbenchmark: a counting loop whose bound comes from argv. The
// loop-condition branch executes once per iteration.
int main(int argc, char **argv) {
  int n = 1000000;
  if (argc > 1) {
    n = mini_atoi(argv[1]);
  }
  int i = 0;
  int sum = 0;
  while (i < n) {
    sum = sum + i;
    i = i + 1;
  }
  print_int(sum);
  return 0;
}
)mc",
      {LibminiSource()}};
}

WorkloadSources MkdirWorkload() {
  return WorkloadSources{
      "mkdir",
      R"mc(
// mkdir [-p] [-v] [-m MODE] DIR...
// Bug (modeled on the KLEE-era mkdir crash): parse_mode copies the mode
// string into a fixed 8-byte buffer without a bound check.
int g_pflag = 0;
int g_verbose = 0;

int parse_mode(char *s) {
  char buf[8];
  int i = 0;
  while (s[i] != 0) {
    buf[i] = s[i];
    i = i + 1;
  }
  buf[i] = 0;
  if (!mini_all_octal(buf)) {
    return -1;
  }
  int mode = 0;
  int j = 0;
  while (buf[j] != 0) {
    mode = mode * 8 + (buf[j] - '0');
    j = j + 1;
  }
  return mode;
}

int do_mkdir(char *path, int mode) {
  if (mini_strlen(path) == 0) {
    return -1;
  }
  if (g_verbose) {
    print_str("mkdir: created directory '");
    print_str(path);
    print_str("'\n");
  }
  return 0;
}

int main(int argc, char **argv) {
  mini_startup(argv[0]);
  int mode = 493;
  int made = 0;
  int i = 1;
  while (i < argc) {
    char *arg = argv[i];
    if (arg[0] == '-' && arg[1] != 0) {
      if (arg[1] == 'p' && arg[2] == 0) {
        g_pflag = 1;
      } else if (arg[1] == 'v' && arg[2] == 0) {
        g_verbose = 1;
      } else if (arg[1] == 'm' && arg[2] == 0) {
        i = i + 1;
        if (i >= argc) {
          print_str("mkdir: option requires an argument -- 'm'\n");
          exit(1);
        }
        mode = parse_mode(argv[i]);
        if (mode < 0) {
          print_str("mkdir: invalid mode\n");
          exit(1);
        }
      } else {
        print_str("mkdir: invalid option\n");
        exit(1);
      }
    } else {
      if (do_mkdir(arg, mode) == 0) {
        made = made + 1;
      }
    }
    i = i + 1;
  }
  if (made == 0) {
    print_str("mkdir: missing operand\n");
    exit(1);
  }
  return 0;
}
)mc",
      {LibminiSource()}};
}

WorkloadSources MknodWorkload() {
  return WorkloadSources{
      "mknod",
      R"mc(
// mknod NAME TYPE [MAJOR MINOR]
// Bug: for block/char devices the major/minor arguments are read without
// re-checking argc, indexing past the end of argv.
int check_special(char **argv, int argc, int idx) {
  char t = argv[idx][0];
  if (argv[idx][1] != 0) {
    return -1;
  }
  if (t == 'b' || t == 'c' || t == 'u') {
    int major = mini_atoi(argv[idx + 1]);
    int minor = mini_atoi(argv[idx + 2]);
    if (major < 0 || minor < 0) {
      return -1;
    }
    if (major > 4095 || minor > 1048575) {
      return -1;
    }
    return major * 1048576 + minor;
  }
  if (t == 'p') {
    return 0;
  }
  return -1;
}

int main(int argc, char **argv) {
  mini_startup(argv[0]);
  int i = 1;
  int mode = 438;
  while (i < argc && argv[i][0] == '-' && argv[i][1] != 0) {
    if (argv[i][1] == 'm' && argv[i][2] == 0) {
      i = i + 1;
      if (i >= argc) {
        print_str("mknod: option requires an argument -- 'm'\n");
        exit(1);
      }
      if (!mini_all_octal(argv[i])) {
        print_str("mknod: invalid mode\n");
        exit(1);
      }
      mode = mini_atoi(argv[i]);
    } else {
      print_str("mknod: invalid option\n");
      exit(1);
    }
    i = i + 1;
  }
  if (argc - i < 2) {
    print_str("mknod: missing operand\n");
    exit(1);
  }
  char *name = argv[i];
  if (mini_strlen(name) == 0) {
    print_str("mknod: empty name\n");
    exit(1);
  }
  int dev = check_special(argv, argc, i + 1);
  if (dev < 0) {
    print_str("mknod: invalid device specification\n");
    exit(1);
  }
  print_str("mknod: created ");
  print_str(name);
  print_str("\n");
  return 0;
}
)mc",
      {LibminiSource()}};
}

WorkloadSources MkfifoWorkload() {
  return WorkloadSources{
      "mkfifo",
      R"mc(
// mkfifo [-m MODE] NAME...
// Bug: the invalid-mode error path copies the offending string into a
// 16-byte message buffer with the wrong bound.
int report_bad_mode(char *s) {
  char msg[16];
  mini_strcpy(msg, "bad mode: ");
  int base = 10;
  int i = 0;
  while (s[i] != 0 && i < 16) {
    msg[base + i] = s[i];
    i = i + 1;
  }
  msg[base + i] = 0;
  print_str("mkfifo: ");
  print_str(msg);
  print_str("\n");
  return -1;
}

int parse_mode(char *s) {
  if (!mini_all_octal(s)) {
    return report_bad_mode(s);
  }
  if (mini_strlen(s) > 4) {
    return report_bad_mode(s);
  }
  int mode = 0;
  int i = 0;
  while (s[i] != 0) {
    mode = mode * 8 + (s[i] - '0');
    i = i + 1;
  }
  return mode;
}

int main(int argc, char **argv) {
  mini_startup(argv[0]);
  int mode = 438;
  int made = 0;
  int i = 1;
  while (i < argc) {
    char *arg = argv[i];
    if (arg[0] == '-' && arg[1] == 'm' && arg[2] == 0) {
      i = i + 1;
      if (i >= argc) {
        print_str("mkfifo: option requires an argument -- 'm'\n");
        exit(1);
      }
      mode = parse_mode(argv[i]);
      if (mode < 0) {
        exit(1);
      }
    } else if (arg[0] == '-' && arg[1] != 0) {
      print_str("mkfifo: invalid option\n");
      exit(1);
    } else {
      if (mini_strlen(arg) > 0) {
        print_str("mkfifo: created fifo '");
        print_str(arg);
        print_str("'\n");
        made = made + 1;
      }
    }
    i = i + 1;
  }
  if (made == 0) {
    print_str("mkfifo: missing operand\n");
    exit(1);
  }
  return 0;
}
)mc",
      {LibminiSource()}};
}

WorkloadSources PasteWorkload() {
  return WorkloadSources{
      "paste",
      R"mc(
// paste [-d LIST] OPERAND...
// Bug (the real paste -d'\' crash): the delimiter-expansion loop skips two
// characters after a backslash, walking past the terminating NUL when the
// backslash is the final character.
char g_delims[32];
int g_ndelims = 0;

int expand_delims(char *spec) {
  int i = 0;
  int j = 0;
  while (spec[i] != 0) {
    char c = spec[i];
    if (c == '\\') {
      char e = spec[i + 1];
      if (e == 'n') {
        g_delims[j] = '\n';
      } else if (e == 't') {
        g_delims[j] = '\t';
      } else if (e == '0') {
        g_delims[j] = 0;
      } else {
        g_delims[j] = e;
      }
      i = i + 2;
    } else {
      g_delims[j] = c;
      i = i + 1;
    }
    j = j + 1;
    if (j >= 32) {
      return -1;
    }
  }
  return j;
}

char g_out[512];

int main(int argc, char **argv) {
  mini_startup(argv[0]);
  g_delims[0] = '\t';
  g_ndelims = 1;
  int i = 1;
  if (i < argc && argv[i][0] == '-' && argv[i][1] == 'd' && argv[i][2] == 0) {
    i = i + 1;
    if (i >= argc) {
      print_str("paste: option requires an argument -- 'd'\n");
      exit(1);
    }
    g_ndelims = expand_delims(argv[i]);
    if (g_ndelims <= 0) {
      print_str("paste: bad delimiter list\n");
      exit(1);
    }
    i = i + 1;
  }
  if (i >= argc) {
    print_str("paste: missing operand\n");
    exit(1);
  }
  int o = 0;
  int d = 0;
  while (i < argc) {
    char *op = argv[i];
    int k = 0;
    while (op[k] != 0 && o < 510) {
      g_out[o] = op[k];
      o = o + 1;
      k = k + 1;
    }
    if (i + 1 < argc && o < 510) {
      g_out[o] = g_delims[d];
      o = o + 1;
      d = d + 1;
      if (d >= g_ndelims) {
        d = 0;
      }
    }
    i = i + 1;
  }
  g_out[o] = '\n';
  g_out[o + 1] = 0;
  print_str(g_out);
  return 0;
}
)mc",
      {LibminiSource()}};
}

WorkloadSources GetWorkload(const std::string& name) {
  if (name == "listing1") {
    return Listing1Workload();
  }
  if (name == "loop_micro") {
    return LoopMicroWorkload();
  }
  if (name == "mkdir") {
    return MkdirWorkload();
  }
  if (name == "mknod") {
    return MknodWorkload();
  }
  if (name == "mkfifo") {
    return MkfifoWorkload();
  }
  if (name == "paste") {
    return PasteWorkload();
  }
  if (name == "diff") {
    return DiffWorkload();
  }
  if (name == "userver") {
    return UserverWorkload();
  }
  FatalError("unknown workload: " + name);
}

}  // namespace retrace
