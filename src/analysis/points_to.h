// Flow-insensitive, field-insensitive Andersen-style points-to analysis.
//
// Abstract objects: static objects (global arrays, address-taken globals,
// string literals), frame objects merged across activations (one per
// function x object), plus two pseudo-objects for argv (the pointer array
// and the merged argument strings). Field-insensitivity — one points-to set
// for all cells of an object — is the deliberate imprecision source the
// paper attributes to static analysis ("tends to over-estimate the set of
// aliases").
#ifndef RETRACE_ANALYSIS_POINTS_TO_H_
#define RETRACE_ANALYSIS_POINTS_TO_H_

#include <vector>

#include "src/ir/ir.h"
#include "src/support/dense_bitset.h"

namespace retrace {

class PointsTo {
 public:
  static PointsTo Compute(const IrModule& module);

  size_t num_objects() const { return num_objects_; }

  i32 StaticObj(i32 index) const { return index; }
  i32 FrameObj(i32 func, i32 index) const { return frame_obj_base_[func] + index; }
  i32 argv_array_obj() const { return argv_array_; }
  i32 argv_strings_obj() const { return argv_strings_; }

  i32 SlotVar(i32 func, i32 slot) const { return slot_var_base_[func] + slot; }
  i32 GlobalVar(i32 global) const { return global_var_base_ + global; }

  const DenseBitset& PtsOfVar(i32 var) const { return pts_[var]; }
  const DenseBitset& CellsOf(i32 obj) const { return cells_[obj]; }

  // Objects the value of `op` (evaluated in `func`) may point to.
  DenseBitset PointeesOfOperand(i32 func, const Operand& op) const;

 private:
  void Init(const IrModule& module);
  bool Pass(const IrModule& module);

  size_t num_objects_ = 0;
  i32 argv_array_ = -1;
  i32 argv_strings_ = -1;
  std::vector<i32> frame_obj_base_;
  std::vector<i32> slot_var_base_;
  i32 global_var_base_ = 0;
  size_t num_vars_ = 0;

  std::vector<DenseBitset> pts_;    // Per pointer variable.
  std::vector<DenseBitset> cells_;  // Per abstract object.
};

}  // namespace retrace

#endif  // RETRACE_ANALYSIS_POINTS_TO_H_
