// Log-irrelevance learning: proves that flipping an unlogged branch
// cannot change any logged outcome, so the adaptive refinement layer
// (src/instrument/refine.h) can skip it instead of spending log budget
// on a branch whose blindness is harmless.
//
// A branch is *provably log-irrelevant* when its controlled region — the
// blocks between its two successors and its immediate post-dominator —
// is observably pure: both arms converge with no effect the rest of the
// execution (and therefore the branch log, the crash site, or the
// syscall log) could distinguish. The proof is conservative; "not
// irrelevant" only means the proof failed, never that the branch
// matters.
#ifndef RETRACE_ANALYSIS_LOG_IRRELEVANCE_H_
#define RETRACE_ANALYSIS_LOG_IRRELEVANCE_H_

#include <vector>

#include "src/analysis/points_to.h"
#include "src/ir/ir.h"
#include "src/support/dense_bitset.h"

namespace retrace {

/// Per-branch result of the controlled-region purity proof.
struct BranchIrrelevance {
  // The region passed every side-effect rule (see LogIrrelevance).
  // Whether the branch is irrelevant under a *plan* additionally
  // depends on region_branches staying uninstrumented.
  bool pure = false;
  // Branch locations whose kBr lies inside the controlled region. A
  // pure region containing an instrumented branch is still relevant:
  // the two arms would consume different log bits.
  std::vector<i32> region_branches;
};

/// \brief Module-wide log-irrelevance analysis.
///
/// The purity rules for a controlled region (everything is conservative
/// — any instruction the rules cannot discharge fails the proof):
///   - no kRet (an arm could leave the function early);
///   - region subgraph is acyclic (an arm could diverge in steps or not
///     terminate);
///   - no kLoad (an out-of-bounds load can crash, and the loaded value
///     feeds downstream state);
///   - no kDiv/kRem (divide-by-zero traps);
///   - no writes to global scalars;
///   - frame-slot writes only to slots never read outside the region
///     (flow-insensitive over the enclosing function);
///   - kStore only through a direct object address (kObjAddr /
///     kFrameObjAddr) with a constant in-bounds index — provably cannot
///     crash — and only to objects no kLoad anywhere in the module may
///     read (the points-to relaxation: writes into write-only buffers
///     are unobservable);
///   - kCall only to transitively pure callees: no loads, stores,
///     global writes, builtins, branches, div/rem, or calls to impure
///     functions, and an acyclic CFG.
///
/// **Ownership:** self-contained; copies nothing from the module beyond
/// derived facts. Compute once per module and reuse across plans.
class LogIrrelevance {
 public:
  static LogIrrelevance Compute(const IrModule& module, const PointsTo& points_to);

  /// True when flipping `branch_id` provably cannot change any logged
  /// outcome under a plan instrumenting exactly `instrumented`.
  bool Irrelevant(i32 branch_id, const DenseBitset& instrumented) const;

  const BranchIrrelevance& Info(i32 branch_id) const { return branches_[branch_id]; }
  size_t num_branches() const { return branches_.size(); }
  /// Branches whose controlled region passed the purity rules
  /// (plan-independent part of the proof).
  size_t num_pure() const;

 private:
  std::vector<BranchIrrelevance> branches_;
};

}  // namespace retrace

#endif  // RETRACE_ANALYSIS_LOG_IRRELEVANCE_H_
