#include "src/analysis/log_irrelevance.h"

#include <deque>

namespace retrace {
namespace {

// Successor blocks of `block`; kRet (and a defensively-empty block) maps
// to the virtual exit, which callers represent as `num_blocks`.
void SuccsOf(const IrFunction& func, size_t block, size_t num_blocks,
             std::vector<size_t>* out) {
  out->clear();
  if (func.blocks[block].instrs.empty()) {
    out->push_back(num_blocks);
    return;
  }
  const Instr& term = func.blocks[block].instrs.back();
  switch (term.op) {
    case Opcode::kBr:
      out->push_back(static_cast<size_t>(term.bb_true));
      out->push_back(static_cast<size_t>(term.bb_false));
      return;
    case Opcode::kJmp:
      out->push_back(static_cast<size_t>(term.bb_true));
      return;
    default:
      out->push_back(num_blocks);  // kRet or a fallthrough-less block.
      return;
  }
}

// Kahn's algorithm over the block graph restricted to `members` (empty
// `members` = the whole function). True when the subgraph is acyclic.
bool Acyclic(const IrFunction& func, const std::vector<char>& members) {
  const size_t n = func.blocks.size();
  std::vector<size_t> indegree(n, 0);
  std::vector<size_t> succs;
  auto in_graph = [&](size_t b) { return members.empty() || members[b] != 0; };
  for (size_t b = 0; b < n; ++b) {
    if (!in_graph(b)) {
      continue;
    }
    SuccsOf(func, b, n, &succs);
    for (size_t s : succs) {
      if (s < n && in_graph(s)) {
        ++indegree[s];
      }
    }
  }
  std::deque<size_t> ready;
  size_t total = 0;
  for (size_t b = 0; b < n; ++b) {
    if (in_graph(b)) {
      ++total;
      if (indegree[b] == 0) {
        ready.push_back(b);
      }
    }
  }
  size_t removed = 0;
  while (!ready.empty()) {
    const size_t b = ready.front();
    ready.pop_front();
    ++removed;
    SuccsOf(func, b, n, &succs);
    for (size_t s : succs) {
      if (s < n && in_graph(s) && --indegree[s] == 0) {
        ready.push_back(s);
      }
    }
  }
  return removed == total;
}

// Post-dominator sets over blocks + the virtual exit (index n), by
// straightforward fixpoint: pdom(b) = {b} ∪ ⋂ pdom(succ). Functions here
// are small enough that the dense quadratic form is fine.
std::vector<std::vector<bool>> PostDominators(const IrFunction& func) {
  const size_t n = func.blocks.size();
  std::vector<std::vector<bool>> pdom(n + 1, std::vector<bool>(n + 1, true));
  pdom[n].assign(n + 1, false);
  pdom[n][n] = true;
  std::vector<size_t> succs;
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t b = n; b-- > 0;) {
      SuccsOf(func, b, n, &succs);
      std::vector<bool> meet(n + 1, true);
      for (size_t s : succs) {
        for (size_t i = 0; i <= n; ++i) {
          meet[i] = meet[i] && pdom[s][i];
        }
      }
      meet[b] = true;
      if (meet != pdom[b]) {
        pdom[b] = std::move(meet);
        changed = true;
      }
    }
  }
  return pdom;
}

// Slots an operand reads (only kSlot operands are frame-slot reads).
void AddSlotRead(const Operand& op, DenseBitset* read) {
  if (op.kind == Operand::Kind::kSlot) {
    read->Set(static_cast<size_t>(op.index));
  }
}

// Every frame slot an instruction reads. `dst` is a write, not a read.
void SlotReadsOf(const Instr& instr, DenseBitset* read) {
  AddSlotRead(instr.a, read);
  AddSlotRead(instr.b, read);
  AddSlotRead(instr.c, read);
  for (const Operand& arg : instr.args) {
    AddSlotRead(arg, read);
  }
}

// Transitive function purity for the kCall rule: a pure callee has no
// loads, stores, global-scalar writes, builtins, branches, div/rem, an
// acyclic CFG, and calls only pure functions.
std::vector<char> PureFunctions(const IrModule& module) {
  const size_t nfuncs = module.funcs.size();
  std::vector<char> pure(nfuncs, 0);
  for (size_t f = 0; f < nfuncs; ++f) {
    const IrFunction& func = module.funcs[f];
    bool ok = Acyclic(func, {});
    for (const BasicBlock& block : func.blocks) {
      for (const Instr& instr : block.instrs) {
        if (!ok) {
          break;
        }
        switch (instr.op) {
          case Opcode::kLoad:
          case Opcode::kStore:
          case Opcode::kBr:
            ok = false;
            break;
          case Opcode::kBin:
            ok = ok && instr.bin_op != BinaryOp::kDiv && instr.bin_op != BinaryOp::kRem;
            break;
          case Opcode::kCall:
            ok = ok && !instr.callee_is_builtin;
            break;
          default:
            break;
        }
        if (instr.dst.kind == Operand::Kind::kGlobalSlot) {
          ok = false;
        }
      }
    }
    pure[f] = ok ? 1 : 0;
  }
  // Strike functions calling impure (or unknown) callees, to fixpoint.
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t f = 0; f < nfuncs; ++f) {
      if (pure[f] == 0) {
        continue;
      }
      for (const BasicBlock& block : module.funcs[f].blocks) {
        for (const Instr& instr : block.instrs) {
          if (instr.op == Opcode::kCall && instr.callee >= 0 &&
              pure[static_cast<size_t>(instr.callee)] == 0) {
            pure[f] = 0;
            changed = true;
          }
        }
      }
    }
  }
  return pure;
}

// Abstract objects some load — or some builtin, which may read anything
// it is handed a pointer to — can observe, closed transitively over
// pointer cells (a reader can traverse from any reachable object).
DenseBitset LoadedObjects(const IrModule& module, const PointsTo& points_to) {
  DenseBitset loaded(points_to.num_objects());
  for (const IrFunction& func : module.funcs) {
    for (const BasicBlock& block : func.blocks) {
      for (const Instr& instr : block.instrs) {
        if (instr.op == Opcode::kLoad) {
          loaded.UnionWith(points_to.PointeesOfOperand(func.index, instr.a));
        } else if (instr.op == Opcode::kCall && instr.callee_is_builtin) {
          for (const Operand& arg : instr.args) {
            loaded.UnionWith(points_to.PointeesOfOperand(func.index, arg));
          }
        }
      }
    }
  }
  // Transitive closure over the may-point-to cells of loaded objects.
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t obj = 0; obj < points_to.num_objects(); ++obj) {
      if (loaded.Test(obj)) {
        changed = loaded.UnionWith(points_to.CellsOf(static_cast<i32>(obj))) || changed;
      }
    }
  }
  return loaded;
}

}  // namespace

LogIrrelevance LogIrrelevance::Compute(const IrModule& module, const PointsTo& points_to) {
  LogIrrelevance result;
  result.branches_.resize(module.branches.size());
  const std::vector<char> pure_funcs = PureFunctions(module);
  const DenseBitset loaded = LoadedObjects(module, points_to);

  std::vector<size_t> succs;
  for (const IrFunction& func : module.funcs) {
    const size_t n = func.blocks.size();
    if (n == 0) {
      continue;
    }
    std::vector<std::vector<bool>> pdom;  // Lazily computed per function.
    // Per-block frame-slot read sets (flow-insensitive).
    std::vector<DenseBitset> block_reads(n, DenseBitset(static_cast<size_t>(func.num_slots)));
    for (size_t b = 0; b < n; ++b) {
      for (const Instr& instr : func.blocks[b].instrs) {
        SlotReadsOf(instr, &block_reads[b]);
      }
    }

    for (size_t b = 0; b < n; ++b) {
      if (func.blocks[b].instrs.empty()) {
        continue;
      }
      const Instr& term = func.blocks[b].instrs.back();
      if (term.op != Opcode::kBr || term.branch_id < 0) {
        continue;
      }
      BranchIrrelevance& info = result.branches_[static_cast<size_t>(term.branch_id)];
      if (pdom.empty()) {
        pdom = PostDominators(func);
      }
      // Controlled region: blocks reachable from either successor before
      // the first strict post-dominator of the branch block (the paths'
      // convergence point; the virtual exit never enters the region
      // because kRet blocks have no in-region successors).
      std::vector<char> region(n, 0);
      std::deque<size_t> frontier;
      auto stop = [&](size_t block) { return block != b && pdom[b][block]; };
      for (const size_t s :
           {static_cast<size_t>(term.bb_true), static_cast<size_t>(term.bb_false)}) {
        if (!stop(s) && region[s] == 0) {
          region[s] = 1;
          frontier.push_back(s);
        }
      }
      while (!frontier.empty()) {
        const size_t cur = frontier.front();
        frontier.pop_front();
        SuccsOf(func, cur, n, &succs);
        for (const size_t s : succs) {
          if (s < n && !stop(s) && region[s] == 0) {
            region[s] = 1;
            frontier.push_back(s);
          }
        }
      }

      // Rule checks. `pure` survives only if every instruction in the
      // region is discharged; region branch ids are collected either way
      // (an impure region's list is still informative).
      bool pure = Acyclic(func, region);
      DenseBitset written(static_cast<size_t>(func.num_slots));
      for (size_t rb = 0; rb < n; ++rb) {
        if (region[rb] == 0) {
          continue;
        }
        for (const Instr& instr : func.blocks[rb].instrs) {
          switch (instr.op) {
            case Opcode::kBr:
              if (instr.branch_id >= 0) {
                info.region_branches.push_back(instr.branch_id);
              }
              break;
            case Opcode::kJmp:
            case Opcode::kAssign:
            case Opcode::kUn:
            case Opcode::kPtrAdd:
              break;
            case Opcode::kBin:
              if (instr.bin_op == BinaryOp::kDiv || instr.bin_op == BinaryOp::kRem) {
                pure = false;
              }
              break;
            case Opcode::kRet:
            case Opcode::kLoad:
              pure = false;
              break;
            case Opcode::kCall:
              if (instr.callee_is_builtin || instr.callee < 0 ||
                  pure_funcs[static_cast<size_t>(instr.callee)] == 0) {
                pure = false;
              }
              break;
            case Opcode::kStore: {
              // Provably in-bounds direct store to a write-only object.
              i32 obj = -1;
              i64 size = 0;
              if (instr.a.kind == Operand::Kind::kObjAddr) {
                obj = points_to.StaticObj(instr.a.index);
                size = module.static_objects[static_cast<size_t>(instr.a.index)].size;
              } else if (instr.a.kind == Operand::Kind::kFrameObjAddr) {
                obj = points_to.FrameObj(func.index, instr.a.index);
                size = func.frame_objects[static_cast<size_t>(instr.a.index)].size;
              }
              if (obj < 0 || !instr.b.IsConst() || instr.b.imm < 0 || instr.b.imm >= size ||
                  loaded.Test(static_cast<size_t>(obj))) {
                pure = false;
              }
              break;
            }
          }
          if (instr.dst.kind == Operand::Kind::kGlobalSlot) {
            pure = false;
          } else if (instr.dst.kind == Operand::Kind::kSlot) {
            written.Set(static_cast<size_t>(instr.dst.index));
          }
        }
      }
      // Region-written slots must be unread outside the region
      // (flow-insensitive: any outside read kills the proof).
      if (pure && written.Count() > 0) {
        DenseBitset outside_reads(static_cast<size_t>(func.num_slots));
        for (size_t ob = 0; ob < n; ++ob) {
          if (region[ob] == 0) {
            outside_reads.UnionWith(block_reads[ob]);
          }
        }
        for (size_t slot = 0; pure && slot < written.size(); ++slot) {
          if (written.Test(slot) && outside_reads.Test(slot)) {
            pure = false;
          }
        }
      }
      info.pure = pure;
    }
  }
  return result;
}

bool LogIrrelevance::Irrelevant(i32 branch_id, const DenseBitset& instrumented) const {
  if (branch_id < 0 || static_cast<size_t>(branch_id) >= branches_.size()) {
    return false;
  }
  const BranchIrrelevance& info = branches_[static_cast<size_t>(branch_id)];
  if (!info.pure) {
    return false;
  }
  for (const i32 region_branch : info.region_branches) {
    if (static_cast<size_t>(region_branch) < instrumented.size() &&
        instrumented.Test(static_cast<size_t>(region_branch))) {
      return false;
    }
  }
  return true;
}

size_t LogIrrelevance::num_pure() const {
  size_t n = 0;
  for (const BranchIrrelevance& info : branches_) {
    n += info.pure ? 1 : 0;
  }
  return n;
}

}  // namespace retrace
