// Interprocedural static taint analysis (paper §2.2, Algorithms 1 and 2).
//
// Identifies branches whose condition may depend on program input. The
// analysis is context-sensitive on the pattern of symbolic parameters — a
// function is (re)analyzed per distinct (function, symbolic-parameter mask)
// pair, with memoized summaries, exactly the worklist structure of the
// paper's Algorithm 1. Points-to information resolves loads and stores;
// its field-insensitivity makes the result a sound over-approximation: all
// truly symbolic branches are labeled symbolic, but some concrete branches
// may be labeled symbolic too.
//
// Library-opaque mode reproduces the paper's uServer setup: when the merged
// program is too large to analyze (their points-to analysis did not
// terminate on uServer+uClibc), static analysis runs on application code
// only and every library branch is conservatively treated as symbolic.
#ifndef RETRACE_ANALYSIS_STATIC_ANALYZER_H_
#define RETRACE_ANALYSIS_STATIC_ANALYZER_H_

#include <unordered_map>
#include <vector>

#include "src/analysis/points_to.h"
#include "src/ir/ir.h"
#include "src/support/dense_bitset.h"

namespace retrace {

struct StaticAnalysisOptions {
  // When false, library functions are not analyzed: their branches are all
  // labeled symbolic and calls into them use conservative summaries.
  bool analyze_library = true;
};

struct StaticAnalysisResult {
  DenseBitset symbolic_branches;  // Over branch ids.
  size_t analyzed_contexts = 0;   // (function, mask) pairs analyzed.
  size_t analyzed_functions = 0;

  size_t NumSymbolic() const { return symbolic_branches.Count(); }
};

class StaticAnalyzer {
 public:
  StaticAnalyzer(const IrModule& module, StaticAnalysisOptions options)
      : module_(module), options_(options) {}

  StaticAnalysisResult Run();

 private:
  struct Context {
    i32 func = -1;
    u64 mask = 0;  // Bit i: parameter i carries symbolic data.
    bool operator==(const Context&) const = default;
  };
  struct ContextHash {
    size_t operator()(const Context& c) const {
      return static_cast<size_t>(c.func) * 1000003u + static_cast<size_t>(c.mask);
    }
  };

  // Analyzes one (function, mask) context to its local fixed point.
  // Returns true if any global state changed (object/global taints,
  // summaries, branch labels).
  bool AnalyzeContext(const Context& ctx);

  bool OperandTainted(i32 func, const Operand& op,
                      const std::vector<bool>& slot_taint) const;
  bool AnyPointeeTainted(const DenseBitset& objs) const;
  bool TaintPointees(const DenseBitset& objs);

  // True when `func` (transitively) calls an input-returning builtin.
  bool ReadsInput(i32 func) const { return reads_input_[func]; }
  void ComputeReadsInput();

  const IrModule& module_;
  StaticAnalysisOptions options_;
  PointsTo pts_;

  std::vector<bool> reads_input_;
  std::vector<bool> object_taint_;   // Per abstract object.
  std::vector<bool> global_taint_;   // Per global scalar.
  std::unordered_map<Context, bool, ContextHash> summaries_;  // ret tainted.
  std::vector<Context> contexts_;    // Discovery order.
  DenseBitset symbolic_branches_;
};

}  // namespace retrace

#endif  // RETRACE_ANALYSIS_STATIC_ANALYZER_H_
