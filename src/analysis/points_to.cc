#include "src/analysis/points_to.h"

namespace retrace {

void PointsTo::Init(const IrModule& module) {
  // Object numbering: statics, then frame objects per function, then argv.
  i32 next_obj = static_cast<i32>(module.static_objects.size());
  frame_obj_base_.resize(module.funcs.size());
  for (const IrFunction& fn : module.funcs) {
    frame_obj_base_[fn.index] = next_obj;
    next_obj += static_cast<i32>(fn.frame_objects.size());
  }
  argv_array_ = next_obj++;
  argv_strings_ = next_obj++;
  num_objects_ = static_cast<size_t>(next_obj);

  // Variable numbering: slots per function, then global scalars.
  i32 next_var = 0;
  slot_var_base_.resize(module.funcs.size());
  for (const IrFunction& fn : module.funcs) {
    slot_var_base_[fn.index] = next_var;
    next_var += fn.num_slots;
  }
  global_var_base_ = next_var;
  next_var += static_cast<i32>(module.global_scalars.size());
  num_vars_ = static_cast<size_t>(next_var);

  pts_.assign(num_vars_, DenseBitset(num_objects_));
  cells_.assign(num_objects_, DenseBitset(num_objects_));

  // argv seeding: main's argv parameter points at the argv array, whose
  // cells point at the merged argument strings.
  if (module.main_index >= 0) {
    const IrFunction& main_fn = module.funcs[module.main_index];
    if (main_fn.num_params == 2) {
      pts_[SlotVar(main_fn.index, 1)].Set(argv_array_);
    }
  }
  cells_[argv_array_].Set(argv_strings_);
}

DenseBitset PointsTo::PointeesOfOperand(i32 func, const Operand& op) const {
  DenseBitset out(num_objects_);
  switch (op.kind) {
    case Operand::Kind::kSlot:
      out.UnionWith(pts_[SlotVar(func, op.index)]);
      break;
    case Operand::Kind::kGlobalSlot:
      out.UnionWith(pts_[GlobalVar(op.index)]);
      break;
    case Operand::Kind::kObjAddr:
      out.Set(StaticObj(op.index));
      break;
    case Operand::Kind::kFrameObjAddr:
      out.Set(FrameObj(func, op.index));
      break;
    default:
      break;
  }
  return out;
}

namespace {

// Applies dst |= src returning the change flag, tolerating self-union.
bool Merge(DenseBitset& dst, const DenseBitset& src) { return dst.UnionWith(src); }

}  // namespace

bool PointsTo::Pass(const IrModule& module) {
  bool changed = false;
  for (const IrFunction& fn : module.funcs) {
    const i32 f = fn.index;
    auto var_of = [&](const Operand& op) -> i32 {
      if (op.kind == Operand::Kind::kSlot) {
        return SlotVar(f, op.index);
      }
      if (op.kind == Operand::Kind::kGlobalSlot) {
        return GlobalVar(op.index);
      }
      return -1;
    };
    auto pointees = [&](const Operand& op) { return PointeesOfOperand(f, op); };

    for (const BasicBlock& block : fn.blocks) {
      for (const Instr& instr : block.instrs) {
        switch (instr.op) {
          case Opcode::kAssign:
          case Opcode::kPtrAdd: {
            const i32 dst = var_of(instr.dst);
            if (dst >= 0) {
              changed |= Merge(pts_[dst], pointees(instr.a));
            }
            break;
          }
          case Opcode::kLoad: {
            const i32 dst = var_of(instr.dst);
            if (dst < 0) {
              break;
            }
            const DenseBitset base = pointees(instr.a);
            for (size_t o = 0; o < num_objects_; ++o) {
              if (base.Test(o)) {
                changed |= Merge(pts_[dst], cells_[o]);
              }
            }
            break;
          }
          case Opcode::kStore: {
            const DenseBitset base = pointees(instr.a);
            const DenseBitset value = pointees(instr.c);
            for (size_t o = 0; o < num_objects_; ++o) {
              if (base.Test(o)) {
                changed |= Merge(cells_[o], value);
              }
            }
            break;
          }
          case Opcode::kCall: {
            if (instr.callee_is_builtin) {
              break;  // No builtin returns or stores pointers.
            }
            const IrFunction& callee = module.funcs[instr.callee];
            for (size_t i = 0; i < instr.args.size() && i < static_cast<size_t>(callee.num_params);
                 ++i) {
              changed |= Merge(pts_[SlotVar(callee.index, static_cast<i32>(i))],
                               pointees(instr.args[i]));
            }
            const i32 dst = var_of(instr.dst);
            if (dst >= 0) {
              // Return-value flow: union the pointees of every kRet operand.
              for (const BasicBlock& cb : callee.blocks) {
                for (const Instr& ci : cb.instrs) {
                  if (ci.op == Opcode::kRet && !ci.a.IsNone()) {
                    changed |= Merge(pts_[dst], PointeesOfOperand(callee.index, ci.a));
                  }
                }
              }
            }
            break;
          }
          default:
            break;
        }
      }
    }
  }
  return changed;
}

PointsTo PointsTo::Compute(const IrModule& module) {
  PointsTo result;
  result.Init(module);
  while (result.Pass(module)) {
  }
  return result;
}

}  // namespace retrace
