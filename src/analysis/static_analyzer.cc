#include "src/analysis/static_analyzer.h"

#include <algorithm>

namespace retrace {

void StaticAnalyzer::ComputeReadsInput() {
  reads_input_.assign(module_.funcs.size(), false);
  // Direct calls to input builtins.
  for (const IrFunction& fn : module_.funcs) {
    for (const BasicBlock& block : fn.blocks) {
      for (const Instr& instr : block.instrs) {
        if (instr.op == Opcode::kCall && instr.callee_is_builtin &&
            BuiltinReturnsInput(static_cast<Builtin>(instr.callee))) {
          reads_input_[fn.index] = true;
        }
      }
    }
  }
  // Transitive closure over the call graph.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const IrFunction& fn : module_.funcs) {
      if (reads_input_[fn.index]) {
        continue;
      }
      for (const BasicBlock& block : fn.blocks) {
        for (const Instr& instr : block.instrs) {
          if (instr.op == Opcode::kCall && !instr.callee_is_builtin &&
              reads_input_[instr.callee]) {
            reads_input_[fn.index] = true;
            changed = true;
          }
        }
      }
    }
  }
}

bool StaticAnalyzer::OperandTainted([[maybe_unused]] i32 func, const Operand& op,
                                    const std::vector<bool>& slot_taint) const {
  switch (op.kind) {
    case Operand::Kind::kSlot:
      return slot_taint[op.index];
    case Operand::Kind::kGlobalSlot:
      return global_taint_[op.index];
    default:
      return false;  // Constants and object addresses are never tainted.
  }
}

bool StaticAnalyzer::AnyPointeeTainted(const DenseBitset& objs) const {
  for (size_t o = 0; o < objs.size(); ++o) {
    if (objs.Test(o) && object_taint_[o]) {
      return true;
    }
  }
  return false;
}

bool StaticAnalyzer::TaintPointees(const DenseBitset& objs) {
  bool changed = false;
  for (size_t o = 0; o < objs.size(); ++o) {
    if (objs.Test(o) && !object_taint_[o]) {
      object_taint_[o] = true;
      changed = true;
    }
  }
  return changed;
}

bool StaticAnalyzer::AnalyzeContext(const Context& ctx) {
  const IrFunction& fn = module_.funcs[ctx.func];
  bool global_changed = false;

  std::vector<bool> slot_taint(fn.num_slots, false);
  for (int i = 0; i < fn.num_params && i < 64; ++i) {
    if ((ctx.mask >> i) & 1) {
      slot_taint[i] = true;
    }
  }
  bool ret_tainted = summaries_[ctx];

  auto taint_dst = [&](const Operand& dst, bool tainted, bool* local_changed) {
    if (!tainted) {
      return;
    }
    if (dst.kind == Operand::Kind::kSlot) {
      if (!slot_taint[dst.index]) {
        slot_taint[dst.index] = true;
        *local_changed = true;
      }
    } else if (dst.kind == Operand::Kind::kGlobalSlot) {
      if (!global_taint_[dst.index]) {
        global_taint_[dst.index] = true;
        *local_changed = true;
        global_changed = true;
      }
    }
  };

  // Flow-insensitive local fixed point: instructions are re-visited until
  // the taint state stops changing (the dataflow loop of Algorithm 1).
  bool local_changed = true;
  while (local_changed) {
    local_changed = false;
    for (const BasicBlock& block : fn.blocks) {
      for (const Instr& instr : block.instrs) {
        switch (instr.op) {
          case Opcode::kAssign:
          case Opcode::kUn:
            taint_dst(instr.dst, OperandTainted(ctx.func, instr.a, slot_taint), &local_changed);
            break;
          case Opcode::kBin:
            taint_dst(instr.dst,
                      OperandTainted(ctx.func, instr.a, slot_taint) ||
                          OperandTainted(ctx.func, instr.b, slot_taint),
                      &local_changed);
            break;
          case Opcode::kPtrAdd:
            // A pointer indexed by symbolic data selects a symbolic
            // location: conservatively taint the derived pointer.
            taint_dst(instr.dst,
                      OperandTainted(ctx.func, instr.a, slot_taint) ||
                          OperandTainted(ctx.func, instr.b, slot_taint),
                      &local_changed);
            break;
          case Opcode::kLoad: {
            const bool addr_tainted = OperandTainted(ctx.func, instr.a, slot_taint) ||
                                      OperandTainted(ctx.func, instr.b, slot_taint);
            const bool mem_tainted =
                AnyPointeeTainted(pts_.PointeesOfOperand(ctx.func, instr.a));
            taint_dst(instr.dst, addr_tainted || mem_tainted, &local_changed);
            break;
          }
          case Opcode::kStore: {
            const bool value_tainted = OperandTainted(ctx.func, instr.c, slot_taint) ||
                                       OperandTainted(ctx.func, instr.b, slot_taint);
            if (value_tainted) {
              if (TaintPointees(pts_.PointeesOfOperand(ctx.func, instr.a))) {
                local_changed = true;
                global_changed = true;
              }
            }
            break;
          }
          case Opcode::kCall: {
            if (instr.callee_is_builtin) {
              const Builtin b = static_cast<Builtin>(instr.callee);
              if (b == Builtin::kRead && instr.args.size() == 3) {
                if (TaintPointees(pts_.PointeesOfOperand(ctx.func, instr.args[1]))) {
                  local_changed = true;
                  global_changed = true;
                }
              }
              taint_dst(instr.dst, BuiltinReturnsInput(b), &local_changed);
              break;
            }
            const IrFunction& callee = module_.funcs[instr.callee];
            bool any_arg_tainted = false;
            u64 mask = 0;
            for (size_t i = 0; i < instr.args.size(); ++i) {
              const bool t = OperandTainted(ctx.func, instr.args[i], slot_taint);
              if (t && i < 64) {
                mask |= (1ull << i);
              }
              any_arg_tainted |= t;
              // Pointer argument to tainted data counts as a symbolic
              // parameter for context selection.
              if (i < 64 && AnyPointeeTainted(pts_.PointeesOfOperand(ctx.func, instr.args[i]))) {
                mask |= (1ull << i);
                any_arg_tainted = true;
              }
            }
            if (!options_.analyze_library && callee.is_library) {
              // Opaque library call: conservative summary. The call may
              // return input and may spill input through pointer args.
              const bool result_tainted = ReadsInput(callee.index) || any_arg_tainted;
              if (result_tainted) {
                for (const Operand& arg : instr.args) {
                  if (TaintPointees(pts_.PointeesOfOperand(ctx.func, arg))) {
                    local_changed = true;
                    global_changed = true;
                  }
                }
              }
              taint_dst(instr.dst, result_tainted, &local_changed);
              break;
            }
            const Context callee_ctx{callee.index, mask};
            auto it = summaries_.find(callee_ctx);
            if (it == summaries_.end()) {
              // Queue the unseen context (Algorithm 1's queueFunction); the
              // optimistic `false` is corrected by the outer fixed point.
              summaries_[callee_ctx] = false;
              contexts_.push_back(callee_ctx);
              global_changed = true;
            } else {
              taint_dst(instr.dst, it->second, &local_changed);
            }
            break;
          }
          case Opcode::kBr: {
            if (OperandTainted(ctx.func, instr.a, slot_taint)) {
              if (!symbolic_branches_.Test(instr.branch_id)) {
                symbolic_branches_.Set(instr.branch_id);
                global_changed = true;
              }
            }
            break;
          }
          case Opcode::kRet: {
            if (!instr.a.IsNone() && OperandTainted(ctx.func, instr.a, slot_taint)) {
              if (!ret_tainted) {
                ret_tainted = true;
                local_changed = true;
              }
            }
            break;
          }
          case Opcode::kJmp:
            break;
        }
      }
    }
  }

  if (summaries_[ctx] != ret_tainted) {
    summaries_[ctx] = ret_tainted;
    global_changed = true;
  }
  return global_changed;
}

StaticAnalysisResult StaticAnalyzer::Run() {
  pts_ = PointsTo::Compute(module_);
  ComputeReadsInput();
  object_taint_.assign(pts_.num_objects(), false);
  object_taint_[pts_.argv_strings_obj()] = true;
  global_taint_.assign(module_.global_scalars.size(), false);
  symbolic_branches_ = DenseBitset(module_.branches.size());
  summaries_.clear();
  contexts_.clear();

  Check(module_.main_index >= 0, "static analysis requires a main function");
  const Context entry{module_.main_index, 0};
  summaries_[entry] = false;
  contexts_.push_back(entry);

  // Outer fixed point over all discovered contexts: object taints, global
  // taints and summaries grow monotonically, so this terminates.
  bool changed = true;
  size_t rounds = 0;
  while (changed) {
    changed = false;
    ++rounds;
    Check(rounds < 10'000, "static analysis failed to converge");
    // Iterate by index: AnalyzeContext may append new contexts.
    for (size_t i = 0; i < contexts_.size(); ++i) {
      const Context ctx = contexts_[i];
      if (!options_.analyze_library && module_.funcs[ctx.func].is_library) {
        continue;
      }
      changed |= AnalyzeContext(ctx);
    }
  }

  // Library-opaque mode: every library branch is treated as symbolic.
  if (!options_.analyze_library) {
    for (const BranchInfo& branch : module_.branches) {
      if (branch.is_library) {
        symbolic_branches_.Set(branch.id);
      }
    }
  }

  StaticAnalysisResult result;
  result.symbolic_branches = symbolic_branches_;
  result.analyzed_contexts = contexts_.size();
  std::vector<bool> seen(module_.funcs.size(), false);
  for (const Context& ctx : contexts_) {
    seen[ctx.func] = true;
  }
  result.analyzed_functions = static_cast<size_t>(std::count(seen.begin(), seen.end(), true));
  return result;
}

}  // namespace retrace
