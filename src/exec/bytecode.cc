#include "src/exec/bytecode.h"

#include <unordered_map>

#include "src/exec/mem_rt.h"

namespace retrace {
namespace {

class Compiler {
 public:
  explicit Compiler(const IrModule& module) : module_(module) {
    bc_.num_globals = static_cast<i32>(module.global_scalars.size());
    bc_.num_statics = static_cast<i32>(module.static_objects.size());
    bc_.main_func = module.main_index;
  }

  BcModule Compile() {
    bc_.funcs.resize(module_.funcs.size());
    for (size_t f = 0; f < module_.funcs.size(); ++f) {
      CompileFunction(static_cast<i32>(f));
    }
    return std::move(bc_);
  }

 private:
  BcReg ConstReg(i64 imm) {
    auto [it, inserted] = const_index_.try_emplace(imm, static_cast<i32>(bc_.const_pool.size()));
    if (inserted) {
      bc_.const_pool.push_back(imm);
    }
    return ~(bc_.num_globals + bc_.num_statics + it->second);
  }

  BcReg RegOf(const Operand& op, const IrFunction& fn) {
    switch (op.kind) {
      case Operand::Kind::kNone:
        return kBcNone;
      case Operand::Kind::kConstInt:
        return ConstReg(op.imm);
      case Operand::Kind::kSlot:
        return op.index;
      case Operand::Kind::kGlobalSlot:
        return ~op.index;
      case Operand::Kind::kObjAddr:
        return ~(bc_.num_globals + op.index);
      case Operand::Kind::kFrameObjAddr:
        return fn.num_slots + op.index;
    }
    FatalError("RegOf: bad operand kind");
  }

  void CompileFunction(i32 f) {
    const IrFunction& fn = module_.funcs[f];
    BcFunction& out = bc_.funcs[f];
    out.func_index = fn.index;
    out.num_slots = fn.num_slots;
    out.num_regs = fn.num_slots + static_cast<i32>(fn.frame_objects.size());
    out.ir = &fn;
    out.entry_pc = static_cast<i32>(bc_.code.size());

    // First pass: emit every block in order, recording block start pcs and
    // the pcs whose targets still hold block ids.
    std::vector<i32> block_pc(fn.blocks.size(), 0);
    std::vector<i32> patch_pcs;
    for (size_t bb = 0; bb < fn.blocks.size(); ++bb) {
      block_pc[bb] = static_cast<i32>(bc_.code.size());
      bool terminated = false;
      for (const Instr& instr : fn.blocks[bb].instrs) {
        patchable_ = false;
        Emit(instr, fn);
        if (patchable_) {
          patch_pcs.push_back(static_cast<i32>(bc_.code.size()) - 1);
        }
        terminated = instr.op == Opcode::kBr || instr.op == Opcode::kJmp ||
                     instr.op == Opcode::kRet;
      }
      if (!terminated) {
        // The tree walker reports "fell off the end of a basic block" when
        // it fetches past the last instruction; kHalt is that fetch.
        BcInstr halt;
        halt.op = BcOp::kHalt;
        bc_.code.push_back(halt);
      }
    }

    // Second pass: rewrite block ids into absolute pcs.
    for (i32 pc : patch_pcs) {
      BcInstr& instr = bc_.code[pc];
      instr.b = block_pc[instr.b];
      if (instr.op == BcOp::kBrFast) {
        instr.c = block_pc[instr.c];
      }
    }
  }

  void Emit(const Instr& instr, const IrFunction& fn) {
    BcInstr out;
    out.loc = instr.loc;
    switch (instr.op) {
      case Opcode::kAssign:
        out.op = BcOp::kAssign;
        out.flags = instr.store_char ? kBcFlagChar : 0;
        out.dst = RegOf(instr.dst, fn);
        out.a = RegOf(instr.a, fn);
        break;
      case Opcode::kBin:
        out.op = BcOp::kBin;
        out.sub = static_cast<u8>(ToExprOp(instr.bin_op));
        out.dst = RegOf(instr.dst, fn);
        out.a = RegOf(instr.a, fn);
        out.b = RegOf(instr.b, fn);
        break;
      case Opcode::kUn:
        out.op = BcOp::kUn;
        out.sub = static_cast<u8>(ToExprOp(instr.un_op));
        out.dst = RegOf(instr.dst, fn);
        out.a = RegOf(instr.a, fn);
        break;
      case Opcode::kLoad:
        out.op = BcOp::kLoad;
        out.dst = RegOf(instr.dst, fn);
        out.a = RegOf(instr.a, fn);
        out.b = RegOf(instr.b, fn);
        break;
      case Opcode::kStore:
        out.op = BcOp::kStore;
        out.a = RegOf(instr.a, fn);
        out.b = RegOf(instr.b, fn);
        out.c = RegOf(instr.c, fn);
        break;
      case Opcode::kPtrAdd:
        out.op = BcOp::kPtrAdd;
        out.dst = RegOf(instr.dst, fn);
        out.a = RegOf(instr.a, fn);
        out.b = RegOf(instr.b, fn);
        break;
      case Opcode::kCall: {
        out.op = instr.callee_is_builtin ? BcOp::kCallBuiltin : BcOp::kCall;
        out.dst = RegOf(instr.dst, fn);
        out.aux = instr.callee;
        out.args_begin = static_cast<i32>(bc_.call_args.size());
        out.args_count = static_cast<i32>(instr.args.size());
        const IrFunction* callee =
            instr.callee_is_builtin ? nullptr : &module_.funcs[instr.callee];
        for (size_t i = 0; i < instr.args.size(); ++i) {
          BcCallArg arg;
          arg.reg = RegOf(instr.args[i], fn);
          arg.trunc_char = callee != nullptr && i < callee->param_types.size() &&
                           callee->param_types[i].kind == TypeKind::kChar;
          bc_.call_args.push_back(arg);
        }
        break;
      }
      case Opcode::kBr:
        // Sites compile to kBrFast until SpecializePlan patches the ones
        // the instrumentation plan observes to kBrObserved.
        out.op = BcOp::kBrFast;
        out.a = RegOf(instr.a, fn);
        out.b = instr.bb_true;   // Patched to a pc.
        out.c = instr.bb_false;  // Patched to a pc.
        out.aux = instr.branch_id;
        bc_.branch_pcs.push_back(static_cast<i32>(bc_.code.size()));
        patchable_ = true;
        break;
      case Opcode::kJmp:
        out.op = BcOp::kJmp;
        out.b = instr.bb_true;  // Patched to a pc.
        patchable_ = true;
        break;
      case Opcode::kRet:
        out.op = BcOp::kRet;
        out.a = RegOf(instr.a, fn);
        break;
    }
    bc_.code.push_back(out);
  }

  const IrModule& module_;
  BcModule bc_;
  std::unordered_map<i64, i32> const_index_;
  bool patchable_ = false;
};

}  // namespace

BcModule CompileModule(const IrModule& module) { return Compiler(module).Compile(); }

}  // namespace retrace
