// Concrete IR interpreter with optional shadow-symbolic tracking.
//
// The interpreter executes the program deterministically given (a) argv
// byte values, and (b) a SyscallHandler deciding every nondeterministic
// system-call outcome. With an ExprArena attached it additionally
// propagates shadow expressions over input cells alongside the concrete
// values; branch observers then see, for every executed branch, whether its
// condition was symbolic — the raw signal behind the paper's dynamic
// analysis, the branch recorder, and the replay engine.
#ifndef RETRACE_EXEC_INTERP_H_
#define RETRACE_EXEC_INTERP_H_

#include <string>
#include <vector>

#include "src/exec/value.h"
#include "src/ir/ir.h"
#include "src/support/budget.h"

namespace retrace {

// One nondeterministic system call outcome, decided by the handler.
struct SyscallOutcome {
  i64 ret = 0;
  i32 ret_cell = -1;                // Input cell backing `ret` (-1: concrete).
  std::vector<u8> data;             // Bytes delivered into the buffer (read).
  std::vector<i32> data_cells;      // Input cells backing `data` (may be empty).
};

class SyscallHandler {
 public:
  virtual ~SyscallHandler() = default;
  // `int_args` carries the scalar arguments in builtin-specific order;
  // `str_arg` the extracted C string (open/print_str); `write_data` the
  // buffer contents (write).
  virtual SyscallOutcome OnSyscall(Builtin b, const std::vector<i64>& int_args,
                                   const std::string& str_arg,
                                   const std::vector<u8>& write_data) = 0;
};

class BranchObserver {
 public:
  enum class Action { kContinue, kAbort };
  virtual ~BranchObserver() = default;
  // `cond_shadow` is kNoExpr for concrete conditions.
  virtual Action OnBranch(i32 branch_id, bool taken, ExprRef cond_shadow) = 0;
};

struct InterpOptions {
  u64 max_steps = 500'000'000;
  int max_call_depth = 512;
  // External budget shared with an enclosing analysis; checked coarsely
  // (every 1024 instructions).
  Budget* external_budget = nullptr;
};

class Interp {
 public:
  Interp(const IrModule& module, InterpOptions options);

  void set_syscall_handler(SyscallHandler* handler) { syscalls_ = handler; }
  void AddObserver(BranchObserver* observer) { observers_.push_back(observer); }
  void ClearObservers() { observers_.clear(); }
  // Enables shadow tracking. The arena must outlive the interpreter runs.
  void set_shadow_arena(ExprArena* arena) { arena_ = arena; }

  // Runs main. `argv` are the concrete argument strings (argv[0] included);
  // `argv_cells[i]` optionally names the input cell ids backing argv[i]'s
  // bytes (shadow mode).
  RunResult Run(const std::vector<std::string>& argv,
                const std::vector<std::vector<i32>>& argv_cells);

  // Convenience for programs whose main takes no arguments.
  RunResult Run() { return Run({"prog"}, {}); }

 private:
  struct Frame {
    const IrFunction* fn = nullptr;
    std::vector<Value> slots;
    std::vector<ExprRef> shadows;
    std::vector<i32> objects;  // Frame object ids, parallel to fn->frame_objects.
    i32 bb = 0;
    size_t ip = 0;
    Operand ret_dst;  // Caller destination for the return value.
    bool ret_dst_char = false;
  };

  bool shadow_on() const { return arena_ != nullptr; }

  i32 AllocObject(i64 size, bool is_char);
  void FreeObject(i32 id);

  Value EvalOperand(const Operand& op, const Frame& frame) const;
  ExprRef EvalShadow(const Operand& op, const Frame& frame) const;
  void WriteSlot(const Operand& dst, Frame& frame, Value v, ExprRef shadow);

  // Trap helpers return false and set pending_crash_.
  bool CheckMemAccess(const Value& addr, i64 index, const Instr& instr, const Frame& frame,
                      i32* obj, i64* off);
  void Trap(CrashSite::Kind kind, const Instr& instr, const Frame& frame, i64 code = 0);

  bool ExecCall(const Instr& instr, Frame& frame);
  bool ExecBuiltin(const Instr& instr, Frame& frame);
  bool ExtractCString(const Value& ptr, const Instr& instr, const Frame& frame, std::string* out);

  const IrModule& module_;
  InterpOptions options_;
  SyscallHandler* syscalls_ = nullptr;
  std::vector<BranchObserver*> observers_;
  ExprArena* arena_ = nullptr;

  // Per-run state.
  std::vector<MemObject> objects_;
  std::vector<i32> free_objects_;
  std::vector<Value> global_slots_;
  std::vector<ExprRef> global_shadows_;
  std::vector<Frame> frames_;
  RunStats stats_;
  CrashSite pending_crash_;
  bool has_crash_ = false;
  bool abort_requested_ = false;
  bool exit_requested_ = false;
  i64 exit_code_ = 0;
};

}  // namespace retrace

#endif  // RETRACE_EXEC_INTERP_H_
