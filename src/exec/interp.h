// Concrete IR interpreter with optional shadow-symbolic tracking.
//
// The tree-walking reference implementation of the ExecEngine contract
// (src/exec/engine.h). The interpreter executes the program
// deterministically given (a) argv byte values, and (b) a SyscallHandler
// deciding every nondeterministic system-call outcome. With an ExprArena
// attached it additionally propagates shadow expressions over input cells
// alongside the concrete values; branch observers then see, for every
// executed branch, whether its condition was symbolic — the raw signal
// behind the paper's dynamic analysis, the branch recorder, and the
// replay engine. The bytecode VM (src/exec/vm.h) is the performance
// implementation; this walker stays the readable semantics reference the
// differential suite checks the VM against.
#ifndef RETRACE_EXEC_INTERP_H_
#define RETRACE_EXEC_INTERP_H_

#include <string>
#include <vector>

#include "src/exec/engine.h"
#include "src/exec/value.h"
#include "src/ir/ir.h"
#include "src/support/budget.h"

namespace retrace {

class Interp : public ExecEngine {
 public:
  Interp(const IrModule& module, InterpOptions options);

  void set_syscall_handler(SyscallHandler* handler) override { syscalls_ = handler; }
  void AddObserver(BranchObserver* observer) override { observers_.push_back(observer); }
  void ClearObservers() override { observers_.clear(); }
  // Enables shadow tracking. The arena must outlive the interpreter runs.
  void set_shadow_arena(ExprArena* arena) override { arena_ = arena; }
  void set_options(const InterpOptions& options) override { options_ = options; }
  // The tree walker has nothing to specialize: its observers consult the
  // plan themselves (OnBranch path), which is exactly the per-branch cost
  // the VM's compiled kBrFast/kBrObserved split removes.
  void SpecializePlan(const InstrumentationPlan* /*plan*/) override {}

  // Runs main. `argv` are the concrete argument strings (argv[0] included);
  // `argv_cells[i]` optionally names the input cell ids backing argv[i]'s
  // bytes (shadow mode).
  RunResult Run(const std::vector<std::string>& argv,
                const std::vector<std::vector<i32>>& argv_cells) override;

  using ExecEngine::Run;

 private:
  struct Frame {
    const IrFunction* fn = nullptr;
    std::vector<Value> slots;
    std::vector<ExprRef> shadows;
    std::vector<i32> objects;  // Frame object ids, parallel to fn->frame_objects.
    i32 bb = 0;
    size_t ip = 0;
    Operand ret_dst;  // Caller destination for the return value.
    bool ret_dst_char = false;
  };

  bool shadow_on() const { return arena_ != nullptr; }

  i32 AllocObject(i64 size, bool is_char);
  void FreeObject(i32 id);
  // Pooled between-runs reset: marks every object dead and rebuilds the
  // free list so allocation order (and thus every object id) matches a
  // freshly constructed interpreter, while cell storage keeps its
  // capacity. Generation counters keep monotonically increasing across
  // runs — unobservable, since no output carries absolute generations and
  // every generation comparison is between values captured in one run.
  void ResetObjectPool();

  Value EvalOperand(const Operand& op, const Frame& frame) const;
  ExprRef EvalShadow(const Operand& op, const Frame& frame) const;
  void WriteSlot(const Operand& dst, Frame& frame, Value v, ExprRef shadow);

  // Trap helpers return false and set pending_crash_.
  bool CheckMemAccess(const Value& addr, i64 index, const Instr& instr, const Frame& frame,
                      i32* obj, i64* off);
  void Trap(CrashSite::Kind kind, const Instr& instr, const Frame& frame, i64 code = 0);

  bool ExecCall(const Instr& instr, Frame& frame);
  bool ExecBuiltin(const Instr& instr, Frame& frame);

  const IrModule& module_;
  InterpOptions options_;
  SyscallHandler* syscalls_ = nullptr;
  std::vector<BranchObserver*> observers_;
  ExprArena* arena_ = nullptr;

  // Per-run state (pooled across runs; see ResetObjectPool).
  std::vector<MemObject> objects_;
  std::vector<i32> free_objects_;
  std::vector<Value> global_slots_;
  std::vector<ExprRef> global_shadows_;
  std::vector<Frame> frames_;
  RunStats stats_;
  CrashSite pending_crash_;
  bool has_crash_ = false;
  bool abort_requested_ = false;
  bool exit_requested_ = false;
  i64 exit_code_ = 0;
};

}  // namespace retrace

#endif  // RETRACE_EXEC_INTERP_H_
