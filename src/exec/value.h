// Runtime value model for the IR interpreter.
//
// A value is a 64-bit integer or a pointer into a memory object
// (object id, generation, element offset). Generations catch use of
// dangling pointers after frame objects die. The null pointer is the
// integer 0, as in C source.
#ifndef RETRACE_EXEC_VALUE_H_
#define RETRACE_EXEC_VALUE_H_

#include <string>
#include <vector>

#include "src/solver/expr.h"
#include "src/support/common.h"

namespace retrace {

struct Value {
  enum class Kind : u8 { kInt, kPtr };
  Kind kind = Kind::kInt;
  i32 obj = -1;
  u32 gen = 0;
  i64 num = 0;  // Integer value, or pointer element offset.

  static Value Int(i64 v) { return Value{Kind::kInt, -1, 0, v}; }
  static Value Ptr(i32 obj, u32 gen, i64 off) { return Value{Kind::kPtr, obj, gen, off}; }

  bool IsInt() const { return kind == Kind::kInt; }
  bool IsPtr() const { return kind == Kind::kPtr; }
  bool Truthy() const { return IsPtr() || num != 0; }

  bool operator==(const Value&) const = default;
  std::string ToString() const;
};

// One memory object: a run of cells plus (when shadow tracking is on) a
// parallel run of shadow expressions.
struct MemObject {
  std::vector<Value> cells;
  std::vector<ExprRef> shadows;  // Sized with cells only in shadow mode.
  u32 gen = 1;
  bool alive = false;
  bool is_char = false;
};

// Where and why a run crashed. Crash sites compare by location, which is
// how the pipeline decides that a reproduced execution hit "the same bug".
struct CrashSite {
  enum class Kind {
    kNone,
    kExplicit,      // crash(code) builtin — the injected SIGSEGV stand-in.
    kOutOfBounds,   // Load/store outside an object.
    kNullDeref,     // Deref of integer (null) value.
    kDivByZero,
    kDangling,      // Access to a dead frame object.
    kPtrDomain,     // Invalid pointer arithmetic/comparison.
    kBadBuiltinArg, // Builtin invoked with an unusable argument.
    kStackOverflow,
  };
  Kind kind = Kind::kNone;
  i32 func = -1;
  SourceLoc loc;
  i64 code = 0;

  bool SameSite(const CrashSite& other) const {
    return kind == other.kind && func == other.func && loc == other.loc;
  }
  std::string ToString() const;
};

struct RunStats {
  u64 instrs = 0;
  u64 branch_execs = 0;
  u64 calls = 0;
  u64 syscalls = 0;
};

struct RunResult {
  enum class Status {
    kExit,     // Program returned from main or called exit().
    kCrash,    // Trap or crash() builtin; see `crash`.
    kAborted,  // A branch observer requested abort (replay mismatch).
    kBudget,   // Step/time budget exhausted.
    kError,    // Internal interpreter error (bug in retrace or the IR).
  };
  Status status = Status::kExit;
  i64 exit_code = 0;
  CrashSite crash;
  RunStats stats;
  std::string message;

  bool Crashed() const { return status == Status::kCrash; }
};

}  // namespace retrace

#endif  // RETRACE_EXEC_VALUE_H_
