#include "src/exec/interp.h"

#include <algorithm>

#include "src/exec/mem_rt.h"

namespace retrace {

Interp::Interp(const IrModule& module, InterpOptions options)
    : module_(module), options_(options) {}

i32 Interp::AllocObject(i64 size, bool is_char) {
  i32 id;
  if (!free_objects_.empty()) {
    id = free_objects_.back();
    free_objects_.pop_back();
  } else {
    id = static_cast<i32>(objects_.size());
    objects_.emplace_back();
  }
  MemObject& obj = objects_[id];
  obj.cells.assign(static_cast<size_t>(size), Value::Int(0));
  if (shadow_on()) {
    obj.shadows.assign(static_cast<size_t>(size), kNoExpr);
  } else {
    obj.shadows.clear();
  }
  obj.alive = true;
  obj.is_char = is_char;
  return id;
}

void Interp::FreeObject(i32 id) {
  MemObject& obj = objects_[id];
  obj.alive = false;
  ++obj.gen;
  obj.cells.clear();
  obj.shadows.clear();
  free_objects_.push_back(id);
}

void Interp::ResetObjectPool() {
  free_objects_.clear();
  for (i32 id = static_cast<i32>(objects_.size()) - 1; id >= 0; --id) {
    MemObject& obj = objects_[id];
    if (obj.alive) {
      obj.alive = false;
      ++obj.gen;
    }
    obj.cells.clear();
    obj.shadows.clear();
    // Descending push: pop_back then hands out ids 0, 1, 2, ... — the
    // same allocation order a freshly constructed interpreter produces.
    free_objects_.push_back(id);
  }
}

Value Interp::EvalOperand(const Operand& op, const Frame& frame) const {
  switch (op.kind) {
    case Operand::Kind::kConstInt:
      return Value::Int(op.imm);
    case Operand::Kind::kSlot:
      return frame.slots[op.index];
    case Operand::Kind::kGlobalSlot:
      return global_slots_[op.index];
    case Operand::Kind::kObjAddr:
      return Value::Ptr(op.index, objects_[op.index].gen, 0);
    case Operand::Kind::kFrameObjAddr: {
      const i32 obj = frame.objects[op.index];
      return Value::Ptr(obj, objects_[obj].gen, 0);
    }
    case Operand::Kind::kNone:
      break;
  }
  FatalError("EvalOperand on kNone");
}

ExprRef Interp::EvalShadow(const Operand& op, const Frame& frame) const {
  switch (op.kind) {
    case Operand::Kind::kSlot:
      return frame.shadows[op.index];
    case Operand::Kind::kGlobalSlot:
      return global_shadows_[op.index];
    default:
      return kNoExpr;
  }
}

void Interp::WriteSlot(const Operand& dst, Frame& frame, Value v, ExprRef shadow) {
  if (dst.kind == Operand::Kind::kSlot) {
    frame.slots[dst.index] = v;
    if (shadow_on()) {
      frame.shadows[dst.index] = shadow;
    }
    return;
  }
  Check(dst.kind == Operand::Kind::kGlobalSlot, "WriteSlot: bad destination");
  global_slots_[dst.index] = v;
  if (shadow_on()) {
    global_shadows_[dst.index] = shadow;
  }
}

void Interp::Trap(CrashSite::Kind kind, const Instr& instr, const Frame& frame, i64 code) {
  pending_crash_ = CrashSite{kind, frame.fn->index, instr.loc, code};
  has_crash_ = true;
}

bool Interp::CheckMemAccess(const Value& addr, i64 index, const Instr& instr, const Frame& frame,
                            i32* obj, i64* off) {
  CrashSite::Kind kind = CrashSite::Kind::kNone;
  if (!CheckMemAccessRt(objects_, addr, index, &kind, obj, off)) {
    Trap(kind, instr, frame);
    return false;
  }
  return true;
}

RunResult Interp::Run(const std::vector<std::string>& argv,
                      const std::vector<std::vector<i32>>& argv_cells) {
  // Reset per-run state (object storage is pooled, not reallocated).
  ResetObjectPool();
  frames_.clear();
  stats_ = RunStats{};
  has_crash_ = false;
  abort_requested_ = false;
  exit_requested_ = false;
  exit_code_ = 0;

  // Static objects.
  for (const StaticObjectInfo& info : module_.static_objects) {
    const i32 id = AllocObject(info.size, info.is_char);
    MemObject& obj = objects_[id];
    for (size_t i = 0; i < info.init.size() && i < obj.cells.size(); ++i) {
      obj.cells[i] = Value::Int(info.init[i]);
    }
  }
  // Global scalars.
  global_slots_.clear();
  global_shadows_.clear();
  for (const GlobalScalarInfo& g : module_.global_scalars) {
    global_slots_.push_back(Value::Int(g.init));
    global_shadows_.push_back(kNoExpr);
  }

  // argv objects.
  const IrFunction& main_fn = module_.funcs[module_.main_index];
  std::vector<Value> argv_ptrs;
  for (size_t i = 0; i < argv.size(); ++i) {
    const std::string& arg = argv[i];
    const i32 id = AllocObject(static_cast<i64>(arg.size()) + 1, /*is_char=*/true);
    MemObject& obj = objects_[id];
    for (size_t j = 0; j < arg.size(); ++j) {
      obj.cells[j] = Value::Int(static_cast<u8>(arg[j]));
    }
    if (shadow_on() && i < argv_cells.size()) {
      // Shadows cover the content bytes and, when provided, the NUL cell.
      for (size_t j = 0; j < argv_cells[i].size() && j <= arg.size(); ++j) {
        if (argv_cells[i][j] >= 0) {
          obj.shadows[j] = arena_->MkVar(argv_cells[i][j]);
        }
      }
    }
    argv_ptrs.push_back(Value::Ptr(id, obj.gen, 0));
  }
  const i32 argv_array = AllocObject(static_cast<i64>(argv_ptrs.size()), /*is_char=*/false);
  for (size_t i = 0; i < argv_ptrs.size(); ++i) {
    objects_[argv_array].cells[i] = argv_ptrs[i];
  }

  // Entry frame.
  Frame main_frame;
  main_frame.fn = &main_fn;
  main_frame.slots.assign(main_fn.num_slots, Value::Int(0));
  if (shadow_on()) {
    main_frame.shadows.assign(main_fn.num_slots, kNoExpr);
  }
  for (const FrameObjectInfo& info : main_fn.frame_objects) {
    main_frame.objects.push_back(AllocObject(info.size, info.is_char));
  }
  if (main_fn.num_params == 2) {
    main_frame.slots[0] = Value::Int(static_cast<i64>(argv.size()));
    main_frame.slots[1] = Value::Ptr(argv_array, objects_[argv_array].gen, 0);
  }
  frames_.push_back(std::move(main_frame));

  // ----- Main loop -----
  RunResult result;
  while (!frames_.empty()) {
    Frame& frame = frames_.back();
    const std::vector<Instr>& instrs = frame.fn->blocks[frame.bb].instrs;
    if (frame.ip >= instrs.size()) {
      result.status = RunResult::Status::kError;
      result.message = "fell off the end of a basic block";
      result.stats = stats_;
      return result;
    }
    const Instr& instr = instrs[frame.ip];

    ++stats_.instrs;
    if (stats_.instrs > options_.max_steps) {
      result.status = RunResult::Status::kBudget;
      result.stats = stats_;
      return result;
    }
    if (options_.external_budget != nullptr && (stats_.instrs & 1023) == 0 &&
        !options_.external_budget->Consume(1024)) {
      result.status = RunResult::Status::kBudget;
      result.stats = stats_;
      return result;
    }

    switch (instr.op) {
      case Opcode::kAssign: {
        Value v = EvalOperand(instr.a, frame);
        ExprRef shadow = shadow_on() ? EvalShadow(instr.a, frame) : kNoExpr;
        if (instr.store_char) {
          if (v.IsInt()) {
            v = Value::Int(static_cast<i64>(static_cast<u8>(v.num)));
            if (shadow != kNoExpr) {
              shadow = arena_->MkUn(ExprOp::kTruncChar, shadow);
            }
          }
        }
        WriteSlot(instr.dst, frame, v, shadow);
        ++frame.ip;
        break;
      }
      case Opcode::kBin: {
        const Value a = EvalOperand(instr.a, frame);
        const Value b = EvalOperand(instr.b, frame);
        Value out;
        ExprRef shadow = kNoExpr;
        if (a.IsInt() && b.IsInt()) {
          if ((instr.bin_op == BinaryOp::kDiv || instr.bin_op == BinaryOp::kRem) && b.num == 0) {
            Trap(CrashSite::Kind::kDivByZero, instr, frame);
            break;
          }
          out = Value::Int(ExprArena::EvalBin(ToExprOp(instr.bin_op), a.num, b.num));
          if (shadow_on()) {
            const ExprRef sa = EvalShadow(instr.a, frame);
            const ExprRef sb = EvalShadow(instr.b, frame);
            if (sa != kNoExpr || sb != kNoExpr) {
              shadow = arena_->MkBin(ToExprOp(instr.bin_op),
                                     sa != kNoExpr ? sa : arena_->MkConst(a.num),
                                     sb != kNoExpr ? sb : arena_->MkConst(b.num));
            }
          }
        } else if (a.IsPtr() && b.IsPtr()) {
          switch (instr.bin_op) {
            case BinaryOp::kEq:
              out = Value::Int(a == b ? 1 : 0);
              break;
            case BinaryOp::kNe:
              out = Value::Int(a == b ? 0 : 1);
              break;
            case BinaryOp::kSub:
            case BinaryOp::kLt:
            case BinaryOp::kLe:
            case BinaryOp::kGt:
            case BinaryOp::kGe: {
              if (a.obj != b.obj || a.gen != b.gen) {
                Trap(CrashSite::Kind::kPtrDomain, instr, frame);
                break;
              }
              if (instr.bin_op == BinaryOp::kSub) {
                out = Value::Int(a.num - b.num);
              } else {
                out = Value::Int(
                    ExprArena::EvalBin(ToExprOp(instr.bin_op), a.num, b.num));
              }
              break;
            }
            default:
              Trap(CrashSite::Kind::kPtrDomain, instr, frame);
              break;
          }
          if (has_crash_) {
            break;
          }
        } else {
          // Mixed pointer/integer: only null comparisons are meaningful.
          const Value& ptr = a.IsPtr() ? a : b;
          const Value& other = a.IsPtr() ? b : a;
          (void)ptr;
          if (instr.bin_op == BinaryOp::kEq) {
            out = Value::Int(0);  // A live pointer never equals an integer.
          } else if (instr.bin_op == BinaryOp::kNe) {
            out = Value::Int(1);
          } else if (other.num == 0 &&
                     (instr.bin_op == BinaryOp::kLt || instr.bin_op == BinaryOp::kLe ||
                      instr.bin_op == BinaryOp::kGt || instr.bin_op == BinaryOp::kGe)) {
            // Relational against null: treat pointer as nonzero address.
            const bool ptr_is_a = a.IsPtr();
            const i64 av = ptr_is_a ? 1 : 0;
            const i64 bv = ptr_is_a ? 0 : 1;
            out = Value::Int(ExprArena::EvalBin(ToExprOp(instr.bin_op), av, bv));
          } else {
            Trap(CrashSite::Kind::kPtrDomain, instr, frame);
            break;
          }
        }
        WriteSlot(instr.dst, frame, out, shadow);
        ++frame.ip;
        break;
      }
      case Opcode::kUn: {
        const Value a = EvalOperand(instr.a, frame);
        Value out;
        ExprRef shadow = kNoExpr;
        if (instr.un_op == IrUnOp::kLogicalNot) {
          out = Value::Int(a.Truthy() ? 0 : 1);
          if (shadow_on() && a.IsInt()) {
            const ExprRef sa = EvalShadow(instr.a, frame);
            if (sa != kNoExpr) {
              shadow = arena_->MkUn(ExprOp::kLogicalNot, sa);
            }
          }
        } else if (a.IsInt()) {
          out = Value::Int(ExprArena::EvalUn(ToExprOp(instr.un_op), a.num));
          if (shadow_on()) {
            const ExprRef sa = EvalShadow(instr.a, frame);
            if (sa != kNoExpr) {
              shadow = arena_->MkUn(ToExprOp(instr.un_op), sa);
            }
          }
        } else {
          Trap(CrashSite::Kind::kPtrDomain, instr, frame);
          break;
        }
        WriteSlot(instr.dst, frame, out, shadow);
        ++frame.ip;
        break;
      }
      case Opcode::kLoad: {
        const Value addr = EvalOperand(instr.a, frame);
        const Value index = EvalOperand(instr.b, frame);
        if (!index.IsInt()) {
          Trap(CrashSite::Kind::kPtrDomain, instr, frame);
          break;
        }
        i32 obj;
        i64 off;
        if (!CheckMemAccess(addr, index.num, instr, frame, &obj, &off)) {
          break;
        }
        const MemObject& m = objects_[obj];
        WriteSlot(instr.dst, frame, m.cells[off],
                  shadow_on() && !m.shadows.empty() ? m.shadows[off] : kNoExpr);
        ++frame.ip;
        break;
      }
      case Opcode::kStore: {
        const Value addr = EvalOperand(instr.a, frame);
        const Value index = EvalOperand(instr.b, frame);
        if (!index.IsInt()) {
          Trap(CrashSite::Kind::kPtrDomain, instr, frame);
          break;
        }
        i32 obj;
        i64 off;
        if (!CheckMemAccess(addr, index.num, instr, frame, &obj, &off)) {
          break;
        }
        Value v = EvalOperand(instr.c, frame);
        ExprRef shadow = shadow_on() ? EvalShadow(instr.c, frame) : kNoExpr;
        MemObject& m = objects_[obj];
        if (m.is_char && v.IsInt()) {
          v = Value::Int(static_cast<i64>(static_cast<u8>(v.num)));
          if (shadow != kNoExpr) {
            shadow = arena_->MkUn(ExprOp::kTruncChar, shadow);
          }
        }
        m.cells[off] = v;
        if (shadow_on() && !m.shadows.empty()) {
          m.shadows[off] = shadow;
        }
        ++frame.ip;
        break;
      }
      case Opcode::kPtrAdd: {
        const Value addr = EvalOperand(instr.a, frame);
        const Value delta = EvalOperand(instr.b, frame);
        if (!addr.IsPtr() || !delta.IsInt()) {
          Trap(addr.IsPtr() ? CrashSite::Kind::kPtrDomain : CrashSite::Kind::kNullDeref, instr,
               frame);
          break;
        }
        WriteSlot(instr.dst, frame, Value::Ptr(addr.obj, addr.gen, addr.num + delta.num),
                  kNoExpr);
        ++frame.ip;
        break;
      }
      case Opcode::kCall: {
        if (!ExecCall(instr, frame)) {
          break;  // Crash or exit raised below.
        }
        break;  // ExecCall advanced ip / pushed frame.
      }
      case Opcode::kBr: {
        const Value cond = EvalOperand(instr.a, frame);
        const bool taken = cond.Truthy();
        ++stats_.branch_execs;
        const ExprRef shadow =
            shadow_on() && cond.IsInt() ? EvalShadow(instr.a, frame) : kNoExpr;
        for (BranchObserver* obs : observers_) {
          if (obs->OnBranch(instr.branch_id, taken, shadow) == BranchObserver::Action::kAbort) {
            abort_requested_ = true;
          }
        }
        if (abort_requested_) {
          break;
        }
        frame.bb = taken ? instr.bb_true : instr.bb_false;
        frame.ip = 0;
        break;
      }
      case Opcode::kJmp: {
        frame.bb = instr.bb_true;
        frame.ip = 0;
        break;
      }
      case Opcode::kRet: {
        Value ret = Value::Int(0);
        ExprRef ret_shadow = kNoExpr;
        if (!instr.a.IsNone()) {
          ret = EvalOperand(instr.a, frame);
          ret_shadow = shadow_on() ? EvalShadow(instr.a, frame) : kNoExpr;
        }
        for (i32 obj : frame.objects) {
          FreeObject(obj);
        }
        const Operand ret_dst = frame.ret_dst;
        const bool ret_dst_char = frame.ret_dst_char;
        frames_.pop_back();
        if (frames_.empty()) {
          result.status = RunResult::Status::kExit;
          result.exit_code = ret.IsInt() ? ret.num : 0;
          result.stats = stats_;
          return result;
        }
        Frame& caller = frames_.back();
        if (!ret_dst.IsNone()) {
          if (ret_dst_char && ret.IsInt()) {
            ret = Value::Int(static_cast<i64>(static_cast<u8>(ret.num)));
            if (ret_shadow != kNoExpr) {
              ret_shadow = arena_->MkUn(ExprOp::kTruncChar, ret_shadow);
            }
          }
          WriteSlot(ret_dst, caller, ret, ret_shadow);
        }
        ++caller.ip;
        break;
      }
    }

    if (has_crash_) {
      result.status = RunResult::Status::kCrash;
      result.crash = pending_crash_;
      result.stats = stats_;
      return result;
    }
    if (abort_requested_) {
      result.status = RunResult::Status::kAborted;
      result.stats = stats_;
      return result;
    }
    if (exit_requested_) {
      result.status = RunResult::Status::kExit;
      result.exit_code = exit_code_;
      result.stats = stats_;
      return result;
    }
  }
  result.status = RunResult::Status::kError;
  result.message = "empty frame stack";
  result.stats = stats_;
  return result;
}

bool Interp::ExecCall(const Instr& instr, Frame& frame) {
  ++stats_.calls;
  if (instr.callee_is_builtin) {
    return ExecBuiltin(instr, frame);
  }
  if (static_cast<int>(frames_.size()) >= options_.max_call_depth) {
    Trap(CrashSite::Kind::kStackOverflow, instr, frame);
    return false;
  }
  const IrFunction& callee = module_.funcs[instr.callee];
  Frame next;
  next.fn = &callee;
  next.slots.assign(callee.num_slots, Value::Int(0));
  if (shadow_on()) {
    next.shadows.assign(callee.num_slots, kNoExpr);
  }
  for (size_t i = 0; i < instr.args.size(); ++i) {
    Value v = EvalOperand(instr.args[i], frame);
    ExprRef shadow = shadow_on() ? EvalShadow(instr.args[i], frame) : kNoExpr;
    if (i < callee.param_types.size() && callee.param_types[i].kind == TypeKind::kChar &&
        v.IsInt()) {
      v = Value::Int(static_cast<i64>(static_cast<u8>(v.num)));
      if (shadow != kNoExpr) {
        shadow = arena_->MkUn(ExprOp::kTruncChar, shadow);
      }
    }
    next.slots[i] = v;
    if (shadow_on()) {
      next.shadows[i] = shadow;
    }
  }
  for (const FrameObjectInfo& info : callee.frame_objects) {
    next.objects.push_back(AllocObject(info.size, info.is_char));
  }
  next.ret_dst = instr.dst;
  next.ret_dst_char = false;
  frames_.push_back(std::move(next));
  return true;
}

bool Interp::ExecBuiltin(const Instr& instr, Frame& frame) {
  ++stats_.syscalls;
  const Builtin b = static_cast<Builtin>(instr.callee);
  std::vector<Value> args;
  args.reserve(instr.args.size());
  for (const Operand& op : instr.args) {
    args.push_back(EvalOperand(op, frame));
  }

  const BuiltinRtResult out =
      ExecBuiltinRt(b, args, /*want_ret=*/!instr.dst.IsNone(), objects_, arena_, syscalls_);
  switch (out.status) {
    case BuiltinRtResult::Status::kTrap:
      Trap(out.trap_kind, instr, frame, out.trap_code);
      return false;
    case BuiltinRtResult::Status::kStall:
      return false;
    case BuiltinRtResult::Status::kExit:
      exit_requested_ = true;
      exit_code_ = out.exit_code;
      return true;
    case BuiltinRtResult::Status::kOk:
      break;
  }
  if (out.has_ret) {
    WriteSlot(instr.dst, frame, out.ret, out.ret_shadow);
  }
  ++frame.ip;
  return true;
}

}  // namespace retrace
