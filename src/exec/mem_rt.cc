#include "src/exec/mem_rt.h"

#include "src/exec/engine.h"
#include "src/solver/expr.h"

namespace retrace {
namespace {

BuiltinRtResult TrapResult(CrashSite::Kind kind, i64 code = 0) {
  BuiltinRtResult out;
  out.status = BuiltinRtResult::Status::kTrap;
  out.trap_kind = kind;
  out.trap_code = code;
  return out;
}

}  // namespace

BuiltinRtResult ExecBuiltinRt(Builtin b, const std::vector<Value>& args, bool want_ret,
                              std::vector<MemObject>& objects, ExprArena* arena,
                              SyscallHandler* syscalls) {
  BuiltinRtResult out;
  CrashSite::Kind kind = CrashSite::Kind::kNone;

  switch (b) {
    case Builtin::kCrash: {
      const i64 code = !args.empty() && args[0].IsInt() ? args[0].num : 0;
      return TrapResult(CrashSite::Kind::kExplicit, code);
    }
    case Builtin::kExit: {
      out.status = BuiltinRtResult::Status::kExit;
      out.exit_code = !args.empty() && args[0].IsInt() ? args[0].num : 0;
      return out;
    }
    default:
      break;
  }

  if (syscalls == nullptr) {
    return TrapResult(CrashSite::Kind::kBadBuiltinArg);
  }

  std::vector<i64> int_args;
  std::string str_arg;
  std::vector<u8> write_data;

  switch (b) {
    case Builtin::kRead: {
      if (args.size() != 3 || !args[0].IsInt() || !args[1].IsPtr() || !args[2].IsInt()) {
        return TrapResult(CrashSite::Kind::kBadBuiltinArg);
      }
      int_args = {args[0].num, args[2].num};
      break;
    }
    case Builtin::kWrite: {
      if (args.size() != 3 || !args[0].IsInt() || !args[1].IsPtr() || !args[2].IsInt()) {
        return TrapResult(CrashSite::Kind::kBadBuiltinArg);
      }
      const Value& buf = args[1];
      const i64 n = args[2].num;
      i32 obj;
      i64 off;
      if (n < 0) {
        out.status = BuiltinRtResult::Status::kStall;
        return out;
      }
      if (!CheckMemAccessRt(objects, buf, 0, &kind, &obj, &off) ||
          (n > 0 && !CheckMemAccessRt(objects, buf, n - 1, &kind, &obj, &off))) {
        return TrapResult(kind);
      }
      const MemObject& m = objects[buf.obj];
      for (i64 i = 0; i < n; ++i) {
        const Value& cell = m.cells[buf.num + i];
        write_data.push_back(cell.IsInt() ? static_cast<u8>(cell.num) : 0);
      }
      int_args = {args[0].num, n};
      break;
    }
    case Builtin::kOpen: {
      if (args.size() != 2 || !args[1].IsInt()) {
        return TrapResult(CrashSite::Kind::kBadBuiltinArg);
      }
      if (!ExtractCStringRt(objects, args[0], &kind, &str_arg)) {
        return TrapResult(kind);
      }
      int_args = {args[1].num};
      break;
    }
    case Builtin::kClose: {
      if (args.size() != 1 || !args[0].IsInt()) {
        return TrapResult(CrashSite::Kind::kBadBuiltinArg);
      }
      int_args = {args[0].num};
      break;
    }
    case Builtin::kSelectFd: {
      if (args.size() != 2 || !args[0].IsPtr() || !args[1].IsInt()) {
        return TrapResult(CrashSite::Kind::kBadBuiltinArg);
      }
      const i64 nfds = args[1].num;
      i32 obj;
      i64 off;
      if (nfds < 0) {
        return TrapResult(CrashSite::Kind::kBadBuiltinArg);
      }
      if (nfds > 0 && !CheckMemAccessRt(objects, args[0], nfds - 1, &kind, &obj, &off)) {
        return TrapResult(kind);
      }
      int_args.push_back(nfds);
      const MemObject& m = objects[args[0].obj];
      for (i64 i = 0; i < nfds; ++i) {
        const Value& cell = m.cells[args[0].num + i];
        int_args.push_back(cell.IsInt() ? cell.num : -1);
      }
      break;
    }
    case Builtin::kAcceptConn: {
      if (args.size() != 1 || !args[0].IsInt()) {
        return TrapResult(CrashSite::Kind::kBadBuiltinArg);
      }
      int_args = {args[0].num};
      break;
    }
    case Builtin::kPollSignal:
      break;
    case Builtin::kPrintInt: {
      if (args.size() != 1 || !args[0].IsInt()) {
        return TrapResult(CrashSite::Kind::kBadBuiltinArg);
      }
      int_args = {args[0].num};
      break;
    }
    case Builtin::kPrintStr: {
      if (args.size() != 1) {
        return TrapResult(CrashSite::Kind::kBadBuiltinArg);
      }
      if (!ExtractCStringRt(objects, args[0], &kind, &str_arg)) {
        return TrapResult(kind);
      }
      break;
    }
    default:
      return TrapResult(CrashSite::Kind::kBadBuiltinArg);
  }

  const SyscallOutcome outcome = syscalls->OnSyscall(b, int_args, str_arg, write_data);

  // Deliver read() data into the buffer.
  if (b == Builtin::kRead && !outcome.data.empty()) {
    const Value& buf = args[1];
    i32 obj;
    i64 off;
    if (!CheckMemAccessRt(objects, buf, static_cast<i64>(outcome.data.size()) - 1, &kind, &obj,
                          &off)) {
      // Input larger than buffer: an OOB crash, as native code would corrupt.
      return TrapResult(kind);
    }
    MemObject& m = objects[buf.obj];
    for (size_t i = 0; i < outcome.data.size(); ++i) {
      m.cells[buf.num + i] = Value::Int(outcome.data[i]);
      if (arena != nullptr && !m.shadows.empty()) {
        m.shadows[buf.num + i] = i < outcome.data_cells.size() && outcome.data_cells[i] >= 0
                                     ? arena->MkVar(outcome.data_cells[i])
                                     : kNoExpr;
      }
    }
  }

  if (want_ret) {
    out.has_ret = true;
    out.ret = Value::Int(outcome.ret);
    out.ret_shadow = arena != nullptr && outcome.ret_cell >= 0 ? arena->MkVar(outcome.ret_cell)
                                                               : kNoExpr;
  }
  return out;
}

}  // namespace retrace
