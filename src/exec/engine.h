// Execution-engine seam: one contract, two interpreters.
//
// Every phase of the pipeline drives the program through this interface.
// Two implementations exist:
//   - Interp (src/exec/interp.h): the tree-walking reference interpreter.
//   - BytecodeVm (src/exec/vm.h): a register bytecode VM with
//     direct-threaded dispatch, compiled once per module.
// The two are behaviorally bit-identical by contract: same RunResult,
// same observer sequence (branch ids, directions, shadow refs), same
// crash sites, same RunStats — so every run count and sentinel in
// EXPERIMENTS.md holds under either engine. tests/exec_vm_test.cc
// enforces the contract differentially.
#ifndef RETRACE_EXEC_ENGINE_H_
#define RETRACE_EXEC_ENGINE_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/exec/value.h"
#include "src/lang/builtins.h"

namespace retrace {

class Budget;
struct InstrumentationPlan;

// One nondeterministic system call outcome, decided by the handler.
struct SyscallOutcome {
  i64 ret = 0;
  i32 ret_cell = -1;                // Input cell backing `ret` (-1: concrete).
  std::vector<u8> data;             // Bytes delivered into the buffer (read).
  std::vector<i32> data_cells;      // Input cells backing `data` (may be empty).
};

class SyscallHandler {
 public:
  virtual ~SyscallHandler() = default;
  // `int_args` carries the scalar arguments in builtin-specific order;
  // `str_arg` the extracted C string (open/print_str); `write_data` the
  // buffer contents (write).
  virtual SyscallOutcome OnSyscall(Builtin b, const std::vector<i64>& int_args,
                                   const std::string& str_arg,
                                   const std::vector<u8>& write_data) = 0;
};

class BranchObserver {
 public:
  enum class Action { kContinue, kAbort };
  virtual ~BranchObserver() = default;
  // `cond_shadow` is kNoExpr for concrete conditions.
  virtual Action OnBranch(i32 branch_id, bool taken, ExprRef cond_shadow) = 0;
  // Plan-specialized entry point used by the bytecode VM: `site_observed`
  // is the compiled-in answer to plan.Instrumented(branch_id) for the
  // plan registered via ExecEngine::SpecializePlan, so observers that
  // would look the plan up per branch can take the baked answer instead.
  // The default forwards to OnBranch, which keeps every observer correct
  // under either engine; overriders must behave identically to their
  // OnBranch given a truthful hint.
  virtual Action OnBranchCompiled(i32 branch_id, bool taken, ExprRef cond_shadow,
                                  bool site_observed) {
    (void)site_observed;
    return OnBranch(branch_id, taken, cond_shadow);
  }
};

struct InterpOptions {
  u64 max_steps = 500'000'000;
  int max_call_depth = 512;
  // External budget shared with an enclosing analysis; checked coarsely
  // (every 1024 instructions).
  Budget* external_budget = nullptr;
};

/// Which execution engine runs the program. kDefault defers the choice
/// to the RETRACE_EXEC_ENGINE environment knob (tree when unset), so a
/// whole test or bench process can be flipped onto the VM without
/// touching call sites; configs that must agree across processes (the
/// distributed kJob codec) resolve to a concrete engine first.
enum class ExecEngineKind : u8 {
  kDefault = 0,
  kTree = 1,
  kBytecode = 2,
};

inline const char* ExecEngineKindName(ExecEngineKind kind) {
  switch (kind) {
    case ExecEngineKind::kDefault: return "default";
    case ExecEngineKind::kTree: return "tree";
    case ExecEngineKind::kBytecode: return "bytecode";
  }
  return "?";
}

/// Parses an engine name ("tree" | "bytecode"). False on anything else.
inline bool ParseExecEngineKind(const char* text, ExecEngineKind* out) {
  if (text == nullptr) {
    return false;
  }
  if (std::strcmp(text, "tree") == 0) {
    *out = ExecEngineKind::kTree;
    return true;
  }
  if (std::strcmp(text, "bytecode") == 0) {
    *out = ExecEngineKind::kBytecode;
    return true;
  }
  return false;
}

/// Reads RETRACE_EXEC_ENGINE: unset -> kTree; garbage exits loudly with
/// code 2 (the strict contract of src/support/env.h — an engine sweep
/// that silently fell back to the tree walker would publish numbers
/// nobody should trust).
inline ExecEngineKind ExecEngineKindFromEnv() {
  const char* text = std::getenv("RETRACE_EXEC_ENGINE");
  if (text == nullptr) {
    return ExecEngineKind::kTree;
  }
  ExecEngineKind kind = ExecEngineKind::kTree;
  if (!ParseExecEngineKind(text, &kind)) {
    std::fprintf(stderr, "RETRACE_EXEC_ENGINE: invalid value '%s' (expected tree|bytecode)\n",
                 text);
    std::exit(2);
  }
  return kind;
}

/// Resolves kDefault against the environment; concrete kinds pass through.
inline ExecEngineKind ResolveExecEngineKind(ExecEngineKind kind) {
  return kind == ExecEngineKind::kDefault ? ExecEngineKindFromEnv() : kind;
}

/// \brief The execution contract shared by Interp and BytecodeVm.
///
/// An engine is constructed once per (module, thread) and re-used across
/// runs: per-run state (memory objects, global slots, frames) is pooled
/// and reset, not reallocated, so a search performing millions of runs
/// amortizes setup. **Thread safety:** none — one engine per thread,
/// exactly like the historical Interp.
class ExecEngine {
 public:
  virtual ~ExecEngine() = default;

  virtual void set_syscall_handler(SyscallHandler* handler) = 0;
  virtual void AddObserver(BranchObserver* observer) = 0;
  virtual void ClearObservers() = 0;
  /// Enables (non-null) or disables (null) shadow-symbolic tracking for
  /// subsequent runs. The arena must outlive the runs.
  virtual void set_shadow_arena(ExprArena* arena) = 0;
  /// Per-run limits; cheap, call before every Run.
  virtual void set_options(const InterpOptions& options) = 0;
  /// Declares which branch sites the current instrumentation plan
  /// observes, letting the engine bake the answer into its dispatch
  /// (BytecodeVm recompiles branch opcodes; Interp ignores the hint —
  /// its observers look the plan up themselves). Null means "no site is
  /// observed". The plan must stay alive and unmutated while registered;
  /// observers consulted during Run must agree with it (they receive the
  /// baked answer through BranchObserver::OnBranchCompiled).
  virtual void SpecializePlan(const InstrumentationPlan* plan) = 0;

  /// Runs main. `argv` are the concrete argument strings (argv[0]
  /// included); `argv_cells[i]` optionally names the input cell ids
  /// backing argv[i]'s bytes (shadow mode).
  virtual RunResult Run(const std::vector<std::string>& argv,
                        const std::vector<std::vector<i32>>& argv_cells) = 0;

  /// Convenience for programs whose main takes no arguments.
  RunResult Run() { return Run({"prog"}, {}); }
};

}  // namespace retrace

#endif  // RETRACE_EXEC_ENGINE_H_
