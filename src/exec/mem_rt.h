// Memory-access and builtin semantics shared by both execution engines.
//
// The tree walker (interp.cc) and the bytecode VM (vm.cc) must trap on
// exactly the same accesses and run builtins with exactly the same
// argument validation, data delivery and shadow attachment — the
// bit-identical contract of src/exec/engine.h. Keeping the logic in one
// place makes divergence a compile error instead of a parity bug: an
// engine supplies its memory-object table and arena, this header supplies
// the semantics.
#ifndef RETRACE_EXEC_MEM_RT_H_
#define RETRACE_EXEC_MEM_RT_H_

#include <string>
#include <vector>

#include "src/exec/value.h"
#include "src/ir/ir.h"
#include "src/lang/builtins.h"
#include "src/solver/expr.h"

namespace retrace {

class SyscallHandler;

// IR operator -> shadow-expression operator, shared by both engines'
// shadow construction.
inline ExprOp ToExprOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return ExprOp::kAdd;
    case BinaryOp::kSub: return ExprOp::kSub;
    case BinaryOp::kMul: return ExprOp::kMul;
    case BinaryOp::kDiv: return ExprOp::kDiv;
    case BinaryOp::kRem: return ExprOp::kRem;
    case BinaryOp::kBitAnd: return ExprOp::kAnd;
    case BinaryOp::kBitOr: return ExprOp::kOr;
    case BinaryOp::kBitXor: return ExprOp::kXor;
    case BinaryOp::kShl: return ExprOp::kShl;
    case BinaryOp::kShr: return ExprOp::kShr;
    case BinaryOp::kEq: return ExprOp::kEq;
    case BinaryOp::kNe: return ExprOp::kNe;
    case BinaryOp::kLt: return ExprOp::kLt;
    case BinaryOp::kLe: return ExprOp::kLe;
    case BinaryOp::kGt: return ExprOp::kGt;
    case BinaryOp::kGe: return ExprOp::kGe;
  }
  FatalError("unreachable binary op");
}

inline ExprOp ToExprOp(IrUnOp op) {
  switch (op) {
    case IrUnOp::kNeg: return ExprOp::kNeg;
    case IrUnOp::kBitNot: return ExprOp::kBitNot;
    case IrUnOp::kLogicalNot: return ExprOp::kLogicalNot;
    case IrUnOp::kTruncChar: return ExprOp::kTruncChar;
  }
  FatalError("unreachable unary op");
}

// Validates a [load/store/buffer] access of `addr` at element `index`.
// On success fills obj/off; on failure fills `kind` with the crash kind
// the engine must trap with (the caller owns location attribution).
inline bool CheckMemAccessRt(const std::vector<MemObject>& objects, const Value& addr, i64 index,
                             CrashSite::Kind* kind, i32* obj, i64* off) {
  if (!addr.IsPtr()) {
    *kind = CrashSite::Kind::kNullDeref;
    return false;
  }
  if (addr.obj < 0 || addr.obj >= static_cast<i32>(objects.size())) {
    *kind = CrashSite::Kind::kPtrDomain;
    return false;
  }
  const MemObject& m = objects[addr.obj];
  if (!m.alive || m.gen != addr.gen) {
    *kind = CrashSite::Kind::kDangling;
    return false;
  }
  const i64 o = addr.num + index;
  if (o < 0 || o >= static_cast<i64>(m.cells.size())) {
    *kind = CrashSite::Kind::kOutOfBounds;
    return false;
  }
  *obj = addr.obj;
  *off = o;
  return true;
}

// Extracts the NUL-terminated string at `ptr` (open/print_str paths).
// Failure fills `kind` exactly as the historical Interp::ExtractCString.
inline bool ExtractCStringRt(const std::vector<MemObject>& objects, const Value& ptr,
                             CrashSite::Kind* kind, std::string* out) {
  if (!ptr.IsPtr()) {
    *kind = CrashSite::Kind::kNullDeref;
    return false;
  }
  const MemObject& m = objects[ptr.obj];
  if (!m.alive || m.gen != ptr.gen) {
    *kind = CrashSite::Kind::kDangling;
    return false;
  }
  out->clear();
  for (i64 i = ptr.num;; ++i) {
    if (i < 0 || i >= static_cast<i64>(m.cells.size())) {
      *kind = CrashSite::Kind::kOutOfBounds;
      return false;
    }
    const Value& cell = m.cells[i];
    if (!cell.IsInt()) {
      *kind = CrashSite::Kind::kBadBuiltinArg;
      return false;
    }
    if (cell.num == 0) {
      return true;
    }
    out->push_back(static_cast<char>(static_cast<u8>(cell.num)));
  }
}

// Outcome of one builtin execution, engine-agnostic. The caller turns
// kTrap into a Trap at its current instruction, kExit into run exit, and
// writes `ret`/`ret_shadow` to its destination on kOk (when has_ret).
// kStall is "failed without a crash": the engine must leave ip where it
// is and keep looping (historically, write() with a negative length spins
// on the call instruction until the step budget trips — preserved, since
// run counts are part of the bit-identical contract).
struct BuiltinRtResult {
  enum class Status { kOk, kTrap, kExit, kStall };
  Status status = Status::kOk;
  CrashSite::Kind trap_kind = CrashSite::Kind::kNone;
  i64 trap_code = 0;  // kExplicit crash code.
  i64 exit_code = 0;
  bool has_ret = false;
  Value ret = Value::Int(0);
  ExprRef ret_shadow = kNoExpr;
};

// Executes builtin `b` with already-evaluated argument values against the
// engine's object table. `arena` non-null means shadow mode: syscall
// results and delivered read() bytes get MkVar shadows, in the same
// arena-construction order as the historical interpreter. `want_ret`
// mirrors "the call has a destination": the ret-cell shadow is only
// interned when someone will store it (arena construction order is part
// of the bit-identical contract).
BuiltinRtResult ExecBuiltinRt(Builtin b, const std::vector<Value>& args, bool want_ret,
                              std::vector<MemObject>& objects, ExprArena* arena,
                              SyscallHandler* syscalls);

}  // namespace retrace

#endif  // RETRACE_EXEC_MEM_RT_H_
