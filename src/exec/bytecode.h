// One-time IR -> register bytecode compiler for the VM (src/exec/vm.h).
//
// Lowering resolves every Operand at compile time instead of switching on
// Operand::Kind at every use the way the tree walker does:
//   - kSlot           -> a frame register (BcReg >= 0),
//   - kGlobalSlot     -> a bank slot (BcReg < 0, index ~reg),
//   - kObjAddr        -> a bank slot holding the static's address value,
//                        patched once per run with the current generation,
//   - kConstInt       -> a pooled bank constant (deduplicated),
//   - kFrameObjAddr   -> a frame register holding the frame object's
//                        address, materialized once at frame entry.
// Basic blocks are fused into one flat code array per module with branch
// targets patched to absolute pcs. Every IR instruction keeps exactly one
// bytecode instruction (jumps included) so RunStats::instrs and the step
// budget are bit-identical with the tree walker.
#ifndef RETRACE_EXEC_BYTECODE_H_
#define RETRACE_EXEC_BYTECODE_H_

#include <vector>

#include "src/ir/ir.h"
#include "src/support/common.h"

namespace retrace {

// A register reference: >= 0 names a register in the current frame
// window, < 0 names bank slot ~reg (globals | static addresses | pooled
// constants), kBcNone means "no operand".
using BcReg = i32;
inline constexpr BcReg kBcNone = INT32_MIN;

enum class BcOp : u8 {
  kAssign,       // dst = a (flags kBcFlagChar: trunc to u8 + kTruncChar shadow)
  kBin,          // dst = a <sub:ExprOp> b
  kUn,           // dst = <sub:ExprOp> a
  kLoad,         // dst = mem[a][b]
  kStore,        // mem[a][b] = c (char-trunc decided by the object at run time)
  kPtrAdd,       // dst = a + b (pointer arithmetic, shadow always dropped)
  kCall,         // dst = funcs[aux](call_args[args_begin .. +args_count))
  kCallBuiltin,  // dst = builtin(aux)(...)
  kBrFast,       // branch a ? pc b : pc c, branch_id aux; site unobserved by plan
  kBrObserved,   // same, site observed by the specialized plan
  kJmp,          // pc = b
  kRet,          // return a (kBcNone: return 0)
  kHalt,         // fell off the end of a basic block (lowering bug backstop)
};

inline constexpr u8 kBcFlagChar = 1;  // kAssign: destination is a char slot.

struct BcInstr {
  BcOp op = BcOp::kHalt;
  u8 sub = 0;    // ExprOp ordinal (kBin/kUn): resolved at compile time.
  u8 flags = 0;
  BcReg dst = kBcNone;
  BcReg a = kBcNone;
  i32 b = 0;     // Register, or branch/jump target pc.
  i32 c = 0;     // Register, or false-branch target pc.
  i32 aux = 0;   // branch_id (kBr*), callee (kCall*).
  i32 args_begin = 0;
  i32 args_count = 0;
  SourceLoc loc;
};

struct BcCallArg {
  BcReg reg = kBcNone;
  bool trunc_char = false;  // Callee parameter is char-typed.
};

struct BcFunction {
  i32 func_index = 0;  // IrFunction::index, for crash-site attribution.
  i32 entry_pc = 0;
  i32 num_slots = 0;
  i32 num_regs = 0;    // num_slots + frame object registers.
  const IrFunction* ir = nullptr;  // Frame object shapes (sizes, is_char).
};

struct BcModule {
  std::vector<BcInstr> code;
  std::vector<BcFunction> funcs;
  std::vector<BcCallArg> call_args;
  // Bank layout: [0, num_globals) mutable global scalars,
  // [num_globals, num_globals + num_statics) static object addresses,
  // [num_globals + num_statics, ...) pooled constants. The VM owns the
  // runtime bank; this carries the pooled constant values.
  std::vector<i64> const_pool;
  i32 num_globals = 0;
  i32 num_statics = 0;
  // pcs of every kBrFast/kBrObserved instruction, for plan specialization.
  std::vector<i32> branch_pcs;
  i32 main_func = 0;

  i32 bank_size() const {
    return num_globals + num_statics + static_cast<i32>(const_pool.size());
  }
};

// Compiles the whole module. The result is owned by one VM instance:
// SpecializePlan patches branch opcodes in place.
BcModule CompileModule(const IrModule& module);

}  // namespace retrace

#endif  // RETRACE_EXEC_BYTECODE_H_
