// Bytecode VM: the performance implementation of the ExecEngine contract.
//
// Compiles the IR module once (src/exec/bytecode.h), then runs it with
// direct-threaded dispatch (computed goto under GCC/Clang, a tight switch
// elsewhere), a contiguous reusable register/shadow stack instead of
// per-frame vectors, and pooled MemObject storage reset between runs.
// Shadow tracking is a template parameter of the run loop, so the
// shadow-off configuration carries no ExprRef work at all. Branch sites
// are plan-specialized: SpecializePlan patches each site to kBrFast or
// kBrObserved so observers receive the plan's answer as a compiled-in
// hint (BranchObserver::OnBranchCompiled) instead of a per-branch bitset
// lookup. Behavior is bit-identical to Interp by contract; the
// differential suite (tests/exec_vm_test.cc) enforces it.
#ifndef RETRACE_EXEC_VM_H_
#define RETRACE_EXEC_VM_H_

#include <memory>
#include <string>
#include <vector>

#include "src/exec/bytecode.h"
#include "src/exec/engine.h"
#include "src/ir/ir.h"

namespace retrace {

class BytecodeVm : public ExecEngine {
 public:
  BytecodeVm(const IrModule& module, InterpOptions options);

  void set_syscall_handler(SyscallHandler* handler) override { syscalls_ = handler; }
  void AddObserver(BranchObserver* observer) override { observers_.push_back(observer); }
  void ClearObservers() override { observers_.clear(); }
  void set_shadow_arena(ExprArena* arena) override { arena_ = arena; }
  void set_options(const InterpOptions& options) override { options_ = options; }
  // Patches every branch site to kBrObserved (plan observes it) or
  // kBrFast. O(branch sites) per call, so calling it before every run
  // with the current plan is cheap. Null plan: no site is observed.
  void SpecializePlan(const InstrumentationPlan* plan) override;

  RunResult Run(const std::vector<std::string>& argv,
                const std::vector<std::vector<i32>>& argv_cells) override;

  using ExecEngine::Run;

 private:
  struct VmFrame {
    const BcFunction* fn = nullptr;
    i32 base = 0;          // Register window start in regs_.
    i32 ret_pc = -1;       // Caller resume pc (-1 for main).
    BcReg ret_dst = kBcNone;  // Caller register for the return value.
  };

  bool shadow_on() const { return arena_ != nullptr; }

  i32 AllocObject(i64 size, bool is_char);
  void FreeObject(i32 id);
  void ResetObjectPool();
  void EnsureWindow(i32 need);

  template <bool kShadow>
  RunResult RunLoop(i32 pc);

  const IrModule& module_;
  BcModule bc_;
  InterpOptions options_;
  SyscallHandler* syscalls_ = nullptr;
  std::vector<BranchObserver*> observers_;
  ExprArena* arena_ = nullptr;

  // Operand bank: globals | static addresses | constants (bytecode.h).
  // Constants are filled at construction; globals and static addresses
  // are re-patched at the start of every run.
  std::vector<Value> bank_;
  std::vector<ExprRef> bank_shadows_;

  // Pooled per-run state (reset, not reallocated, between runs).
  std::vector<MemObject> objects_;
  std::vector<i32> free_objects_;
  std::vector<Value> regs_;
  std::vector<ExprRef> reg_shadows_;
  std::vector<VmFrame> frames_;
  std::vector<Value> arg_scratch_;
  i32 top_ = 0;
  RunStats stats_;
};

// Constructs the engine `kind` resolves to (kDefault: RETRACE_EXEC_ENGINE).
std::unique_ptr<ExecEngine> MakeExecEngine(ExecEngineKind kind, const IrModule& module,
                                           InterpOptions options);

}  // namespace retrace

#endif  // RETRACE_EXEC_VM_H_
