#include "src/exec/vm.h"

#include <algorithm>

#include "src/exec/interp.h"
#include "src/exec/mem_rt.h"
#include "src/instrument/plan.h"
#include "src/support/budget.h"

// Direct threading: GCC and Clang support computed goto; elsewhere the
// loop degrades to a switch with identical handler bodies (VM_CASE /
// VM_NEXT expand differently).
#if defined(__GNUC__) || defined(__clang__)
#define RETRACE_VM_COMPUTED_GOTO 1
#define RETRACE_VM_UNLIKELY(x) __builtin_expect(!!(x), 0)
#else
#define RETRACE_VM_COMPUTED_GOTO 0
#define RETRACE_VM_UNLIKELY(x) (x)
#endif

namespace retrace {

BytecodeVm::BytecodeVm(const IrModule& module, InterpOptions options)
    : module_(module), bc_(CompileModule(module)), options_(options) {
  bank_.assign(bc_.bank_size(), Value::Int(0));
  bank_shadows_.assign(bc_.bank_size(), kNoExpr);
  const i32 const_base = bc_.num_globals + bc_.num_statics;
  for (size_t i = 0; i < bc_.const_pool.size(); ++i) {
    bank_[const_base + static_cast<i32>(i)] = Value::Int(bc_.const_pool[i]);
  }
}

void BytecodeVm::SpecializePlan(const InstrumentationPlan* plan) {
  for (i32 pc : bc_.branch_pcs) {
    BcInstr& instr = bc_.code[pc];
    instr.op = plan != nullptr && plan->Instrumented(instr.aux) ? BcOp::kBrObserved
                                                                : BcOp::kBrFast;
  }
}

i32 BytecodeVm::AllocObject(i64 size, bool is_char) {
  i32 id;
  if (!free_objects_.empty()) {
    id = free_objects_.back();
    free_objects_.pop_back();
  } else {
    id = static_cast<i32>(objects_.size());
    objects_.emplace_back();
  }
  MemObject& obj = objects_[id];
  obj.cells.assign(static_cast<size_t>(size), Value::Int(0));
  if (shadow_on()) {
    obj.shadows.assign(static_cast<size_t>(size), kNoExpr);
  } else {
    obj.shadows.clear();
  }
  obj.alive = true;
  obj.is_char = is_char;
  return id;
}

void BytecodeVm::FreeObject(i32 id) {
  MemObject& obj = objects_[id];
  obj.alive = false;
  ++obj.gen;
  obj.cells.clear();
  obj.shadows.clear();
  free_objects_.push_back(id);
}

void BytecodeVm::ResetObjectPool() {
  free_objects_.clear();
  for (i32 id = static_cast<i32>(objects_.size()) - 1; id >= 0; --id) {
    MemObject& obj = objects_[id];
    if (obj.alive) {
      obj.alive = false;
      ++obj.gen;
    }
    obj.cells.clear();
    obj.shadows.clear();
    // Descending push: pop_back hands out ids 0, 1, 2, ... — the same
    // allocation order a fresh engine produces (id parity with Interp).
    free_objects_.push_back(id);
  }
}

void BytecodeVm::EnsureWindow(i32 need) {
  if (static_cast<i32>(regs_.size()) < need) {
    const size_t n = std::max<size_t>(static_cast<size_t>(need), regs_.size() * 2 + 64);
    regs_.resize(n, Value::Int(0));
    reg_shadows_.resize(n, kNoExpr);
  }
}

RunResult BytecodeVm::Run(const std::vector<std::string>& argv,
                          const std::vector<std::vector<i32>>& argv_cells) {
  // Per-run reset; storage is pooled, mirrors Interp::Run exactly.
  ResetObjectPool();
  frames_.clear();
  top_ = 0;
  stats_ = RunStats{};

  // Static objects (ids 0 .. num_statics-1, same as a fresh Interp).
  for (const StaticObjectInfo& info : module_.static_objects) {
    const i32 id = AllocObject(info.size, info.is_char);
    MemObject& obj = objects_[id];
    for (size_t i = 0; i < info.init.size() && i < obj.cells.size(); ++i) {
      obj.cells[i] = Value::Int(info.init[i]);
    }
  }
  // Global scalars, and static addresses with this run's generations.
  for (size_t i = 0; i < module_.global_scalars.size(); ++i) {
    bank_[i] = Value::Int(module_.global_scalars[i].init);
    bank_shadows_[i] = kNoExpr;
  }
  for (i32 j = 0; j < bc_.num_statics; ++j) {
    bank_[bc_.num_globals + j] = Value::Ptr(j, objects_[j].gen, 0);
  }

  // argv objects.
  std::vector<Value> argv_ptrs;
  for (size_t i = 0; i < argv.size(); ++i) {
    const std::string& arg = argv[i];
    const i32 id = AllocObject(static_cast<i64>(arg.size()) + 1, /*is_char=*/true);
    MemObject& obj = objects_[id];
    for (size_t j = 0; j < arg.size(); ++j) {
      obj.cells[j] = Value::Int(static_cast<u8>(arg[j]));
    }
    if (shadow_on() && i < argv_cells.size()) {
      // Shadows cover the content bytes and, when provided, the NUL cell.
      for (size_t j = 0; j < argv_cells[i].size() && j <= arg.size(); ++j) {
        if (argv_cells[i][j] >= 0) {
          obj.shadows[j] = arena_->MkVar(argv_cells[i][j]);
        }
      }
    }
    argv_ptrs.push_back(Value::Ptr(id, obj.gen, 0));
  }
  const i32 argv_array = AllocObject(static_cast<i64>(argv_ptrs.size()), /*is_char=*/false);
  for (size_t i = 0; i < argv_ptrs.size(); ++i) {
    objects_[argv_array].cells[i] = argv_ptrs[i];
  }

  // Entry frame.
  const BcFunction& main_fn = bc_.funcs[bc_.main_func];
  EnsureWindow(main_fn.num_regs);
  for (i32 i = 0; i < main_fn.num_slots; ++i) {
    regs_[i] = Value::Int(0);
    reg_shadows_[i] = kNoExpr;
  }
  for (size_t i = 0; i < main_fn.ir->frame_objects.size(); ++i) {
    const FrameObjectInfo& info = main_fn.ir->frame_objects[i];
    const i32 id = AllocObject(info.size, info.is_char);
    regs_[main_fn.num_slots + static_cast<i32>(i)] = Value::Ptr(id, objects_[id].gen, 0);
    reg_shadows_[main_fn.num_slots + static_cast<i32>(i)] = kNoExpr;
  }
  if (main_fn.ir->num_params == 2) {
    regs_[0] = Value::Int(static_cast<i64>(argv.size()));
    regs_[1] = Value::Ptr(argv_array, objects_[argv_array].gen, 0);
  }
  VmFrame main_frame;
  main_frame.fn = &main_fn;
  frames_.push_back(main_frame);
  top_ = main_fn.num_regs;

  return shadow_on() ? RunLoop<true>(main_fn.entry_pc) : RunLoop<false>(main_fn.entry_pc);
}

template <bool kShadow>
RunResult BytecodeVm::RunLoop(i32 pc) {
  const BcInstr* code = bc_.code.data();
  Value* bank = bank_.data();
  const ExprRef* bank_sh = bank_shadows_.data();
  VmFrame* frame = &frames_.back();
  Value* R = regs_.data() + frame->base;
  ExprRef* SH = reg_shadows_.data() + frame->base;
  const BcInstr* insn = nullptr;
  RunResult result;
  // The instruction counter lives in a register for the whole loop (the
  // member store per instruction is measurable); every exit flushes it.
  u64 instrs = stats_.instrs;
  const u64 max_steps = options_.max_steps;
  Budget* const xbudget = options_.external_budget;
  // Fold the two budget checks into one compare per instruction:
  // `next_pause` is the instruction count at which something must happen
  // (max_steps overrun, or an external-budget check every 1024). The slow
  // path re-runs the exact checks in the tree walker's order.
  u64 next_pause = 0;
  const auto arm_pause = [&] {
    next_pause = max_steps + 1;
    if (xbudget != nullptr) {
      const u64 next_budget = (instrs & ~static_cast<u64>(1023)) + 1024;
      if (next_budget < next_pause) {
        next_pause = next_budget;
      }
    }
  };
  arm_pause();

  // Refresh cached pointers after anything that moves regs_/frames_.
  auto reload = [&] {
    frame = &frames_.back();
    R = regs_.data() + frame->base;
    SH = reg_shadows_.data() + frame->base;
  };

// Operand access: register window or bank.
#define RVAL(r) ((r) >= 0 ? R[(r)] : bank[~(r)])
#define RSH(r) ((r) >= 0 ? SH[(r)] : bank_sh[~(r)])
#define WREG(d, v, s)               \
  do {                              \
    const BcReg wd_ = (d);          \
    if (wd_ >= 0) {                 \
      R[wd_] = (v);                 \
      if (kShadow) {                \
        SH[wd_] = (s);              \
      }                             \
    } else {                        \
      bank[~wd_] = (v);             \
      if (kShadow) {                \
        bank_shadows_[~wd_] = (s);  \
      }                             \
    }                               \
  } while (0)
#define VM_TRAP(kind_, code_)                                                          \
  do {                                                                                 \
    result.status = RunResult::Status::kCrash;                                         \
    result.crash = CrashSite{(kind_), frame->fn->func_index, insn->loc, (code_)};      \
    stats_.instrs = instrs;                                                            \
    result.stats = stats_;                                                             \
    return result;                                                                     \
  } while (0)

// The fetch prelude replicates Interp's main-loop order exactly:
// count the instruction, check max_steps, check the external budget every
// 1024 instructions, then execute.
#if RETRACE_VM_COMPUTED_GOTO
  // Must match BcOp declaration order.
  static const void* kLabels[] = {
      &&L_kAssign, &&L_kBin, &&L_kUn,     &&L_kLoad,       &&L_kStore, &&L_kPtrAdd, &&L_kCall,
      &&L_kCallBuiltin, &&L_kBrFast, &&L_kBrObserved, &&L_kJmp,   &&L_kRet,    &&L_kHalt};
#define VM_DISPATCH()                                                                   \
  do {                                                                                  \
    insn = &code[pc];                                                                   \
    ++instrs;                                                                           \
    if (RETRACE_VM_UNLIKELY(instrs >= next_pause)) {                                    \
      if (instrs > max_steps) goto budget_exhausted;                                    \
      if (xbudget != nullptr && (instrs & 1023) == 0 && !xbudget->Consume(1024))        \
        goto budget_exhausted;                                                          \
      arm_pause();                                                                      \
    }                                                                                   \
    goto* kLabels[static_cast<int>(insn->op)];                                          \
  } while (0)
#define VM_CASE(name) L_##name:
#define VM_NEXT VM_DISPATCH()
  VM_DISPATCH();
#else
#define VM_CASE(name) case BcOp::name:
#define VM_NEXT break
  for (;;) {
    insn = &code[pc];
    ++instrs;
    if (instrs >= next_pause) {
      if (instrs > max_steps) {
        goto budget_exhausted;
      }
      if (xbudget != nullptr && (instrs & 1023) == 0 && !xbudget->Consume(1024)) {
        goto budget_exhausted;
      }
      arm_pause();
    }
    switch (insn->op) {
#endif

  VM_CASE(kAssign) {
    Value v = RVAL(insn->a);
    ExprRef s = kShadow ? RSH(insn->a) : kNoExpr;
    if (insn->flags & kBcFlagChar) {
      if (v.IsInt()) {
        v = Value::Int(static_cast<i64>(static_cast<u8>(v.num)));
        if (kShadow && s != kNoExpr) {
          s = arena_->MkUn(ExprOp::kTruncChar, s);
        }
      }
    }
    WREG(insn->dst, v, s);
    ++pc;
    VM_NEXT;
  }

  VM_CASE(kBin) {
    const Value& a = RVAL(insn->a);
    const Value& b = RVAL(insn->b);
    const ExprOp bop = static_cast<ExprOp>(insn->sub);  // Resolved at compile time.
    Value out;
    ExprRef shadow = kNoExpr;
    if (a.IsInt() && b.IsInt()) {
      // Inline fast path for the dispatch-dominating ops; EvalBin stays
      // the semantic reference for the rest (shifts mask, div truncates).
      i64 r;
      switch (bop) {
        case ExprOp::kAdd: r = a.num + b.num; break;
        case ExprOp::kSub: r = a.num - b.num; break;
        case ExprOp::kLt: r = a.num < b.num ? 1 : 0; break;
        case ExprOp::kLe: r = a.num <= b.num ? 1 : 0; break;
        case ExprOp::kGt: r = a.num > b.num ? 1 : 0; break;
        case ExprOp::kGe: r = a.num >= b.num ? 1 : 0; break;
        case ExprOp::kEq: r = a.num == b.num ? 1 : 0; break;
        case ExprOp::kNe: r = a.num != b.num ? 1 : 0; break;
        default:
          if ((bop == ExprOp::kDiv || bop == ExprOp::kRem) && b.num == 0) {
            VM_TRAP(CrashSite::Kind::kDivByZero, 0);
          }
          r = ExprArena::EvalBin(bop, a.num, b.num);
          break;
      }
      out = Value::Int(r);
      if (kShadow) {
        const ExprRef sa = RSH(insn->a);
        const ExprRef sb = RSH(insn->b);
        if (sa != kNoExpr || sb != kNoExpr) {
          shadow = arena_->MkBin(bop, sa != kNoExpr ? sa : arena_->MkConst(a.num),
                                 sb != kNoExpr ? sb : arena_->MkConst(b.num));
        }
      }
    } else if (a.IsPtr() && b.IsPtr()) {
      switch (bop) {
        case ExprOp::kEq:
          out = Value::Int(a == b ? 1 : 0);
          break;
        case ExprOp::kNe:
          out = Value::Int(a == b ? 0 : 1);
          break;
        case ExprOp::kSub:
        case ExprOp::kLt:
        case ExprOp::kLe:
        case ExprOp::kGt:
        case ExprOp::kGe: {
          if (a.obj != b.obj || a.gen != b.gen) {
            VM_TRAP(CrashSite::Kind::kPtrDomain, 0);
          }
          if (bop == ExprOp::kSub) {
            out = Value::Int(a.num - b.num);
          } else {
            out = Value::Int(ExprArena::EvalBin(bop, a.num, b.num));
          }
          break;
        }
        default:
          VM_TRAP(CrashSite::Kind::kPtrDomain, 0);
      }
    } else {
      // Mixed pointer/integer: only null comparisons are meaningful.
      const Value& other = a.IsPtr() ? b : a;
      if (bop == ExprOp::kEq) {
        out = Value::Int(0);  // A live pointer never equals an integer.
      } else if (bop == ExprOp::kNe) {
        out = Value::Int(1);
      } else if (other.num == 0 && (bop == ExprOp::kLt || bop == ExprOp::kLe ||
                                    bop == ExprOp::kGt || bop == ExprOp::kGe)) {
        // Relational against null: treat pointer as nonzero address.
        const bool ptr_is_a = a.IsPtr();
        const i64 av = ptr_is_a ? 1 : 0;
        const i64 bv = ptr_is_a ? 0 : 1;
        out = Value::Int(ExprArena::EvalBin(bop, av, bv));
      } else {
        VM_TRAP(CrashSite::Kind::kPtrDomain, 0);
      }
    }
    WREG(insn->dst, out, shadow);
    ++pc;
    VM_NEXT;
  }

  VM_CASE(kUn) {
    const Value& a = RVAL(insn->a);
    const ExprOp uop = static_cast<ExprOp>(insn->sub);  // Resolved at compile time.
    Value out;
    ExprRef shadow = kNoExpr;
    if (uop == ExprOp::kLogicalNot) {
      out = Value::Int(a.Truthy() ? 0 : 1);
      if (kShadow && a.IsInt()) {
        const ExprRef sa = RSH(insn->a);
        if (sa != kNoExpr) {
          shadow = arena_->MkUn(ExprOp::kLogicalNot, sa);
        }
      }
    } else if (a.IsInt()) {
      out = Value::Int(ExprArena::EvalUn(uop, a.num));
      if (kShadow) {
        const ExprRef sa = RSH(insn->a);
        if (sa != kNoExpr) {
          shadow = arena_->MkUn(uop, sa);
        }
      }
    } else {
      VM_TRAP(CrashSite::Kind::kPtrDomain, 0);
    }
    WREG(insn->dst, out, shadow);
    ++pc;
    VM_NEXT;
  }

  VM_CASE(kLoad) {
    const Value addr = RVAL(insn->a);
    const Value index = RVAL(insn->b);
    if (!index.IsInt()) {
      VM_TRAP(CrashSite::Kind::kPtrDomain, 0);
    }
    CrashSite::Kind kind = CrashSite::Kind::kNone;
    i32 obj;
    i64 off;
    if (!CheckMemAccessRt(objects_, addr, index.num, &kind, &obj, &off)) {
      VM_TRAP(kind, 0);
    }
    const MemObject& m = objects_[obj];
    WREG(insn->dst, m.cells[off], kShadow && !m.shadows.empty() ? m.shadows[off] : kNoExpr);
    ++pc;
    VM_NEXT;
  }

  VM_CASE(kStore) {
    const Value addr = RVAL(insn->a);
    const Value index = RVAL(insn->b);
    if (!index.IsInt()) {
      VM_TRAP(CrashSite::Kind::kPtrDomain, 0);
    }
    CrashSite::Kind kind = CrashSite::Kind::kNone;
    i32 obj;
    i64 off;
    if (!CheckMemAccessRt(objects_, addr, index.num, &kind, &obj, &off)) {
      VM_TRAP(kind, 0);
    }
    Value v = RVAL(insn->c);
    ExprRef shadow = kShadow ? RSH(insn->c) : kNoExpr;
    MemObject& m = objects_[obj];
    if (m.is_char && v.IsInt()) {
      v = Value::Int(static_cast<i64>(static_cast<u8>(v.num)));
      if (kShadow && shadow != kNoExpr) {
        shadow = arena_->MkUn(ExprOp::kTruncChar, shadow);
      }
    }
    m.cells[off] = v;
    if (kShadow && !m.shadows.empty()) {
      m.shadows[off] = shadow;
    }
    ++pc;
    VM_NEXT;
  }

  VM_CASE(kPtrAdd) {
    const Value addr = RVAL(insn->a);
    const Value delta = RVAL(insn->b);
    if (!addr.IsPtr() || !delta.IsInt()) {
      VM_TRAP(addr.IsPtr() ? CrashSite::Kind::kPtrDomain : CrashSite::Kind::kNullDeref, 0);
    }
    WREG(insn->dst, Value::Ptr(addr.obj, addr.gen, addr.num + delta.num), kNoExpr);
    ++pc;
    VM_NEXT;
  }

  VM_CASE(kCall) {
    ++stats_.calls;
    if (static_cast<int>(frames_.size()) >= options_.max_call_depth) {
      VM_TRAP(CrashSite::Kind::kStackOverflow, 0);
    }
    const BcFunction& callee = bc_.funcs[insn->aux];
    const i32 callee_base = top_;
    EnsureWindow(top_ + callee.num_regs);
    reload();  // regs_ may have moved.
    Value* CR = regs_.data() + callee_base;
    ExprRef* CSH = reg_shadows_.data() + callee_base;
    for (i32 i = 0; i < callee.num_slots; ++i) {
      CR[i] = Value::Int(0);
      if (kShadow) {
        CSH[i] = kNoExpr;
      }
    }
    const BcCallArg* cargs = bc_.call_args.data() + insn->args_begin;
    for (i32 i = 0; i < insn->args_count; ++i) {
      Value v = RVAL(cargs[i].reg);
      ExprRef s = kShadow ? RSH(cargs[i].reg) : kNoExpr;
      if (cargs[i].trunc_char && v.IsInt()) {
        v = Value::Int(static_cast<i64>(static_cast<u8>(v.num)));
        if (kShadow && s != kNoExpr) {
          s = arena_->MkUn(ExprOp::kTruncChar, s);
        }
      }
      CR[i] = v;
      if (kShadow) {
        CSH[i] = s;
      }
    }
    for (size_t i = 0; i < callee.ir->frame_objects.size(); ++i) {
      const FrameObjectInfo& info = callee.ir->frame_objects[i];
      const i32 id = AllocObject(info.size, info.is_char);
      CR[callee.num_slots + static_cast<i32>(i)] = Value::Ptr(id, objects_[id].gen, 0);
      if (kShadow) {
        CSH[callee.num_slots + static_cast<i32>(i)] = kNoExpr;
      }
    }
    VmFrame next;
    next.fn = &callee;
    next.base = callee_base;
    next.ret_pc = pc + 1;
    next.ret_dst = insn->dst;
    frames_.push_back(next);
    top_ = callee_base + callee.num_regs;
    reload();
    pc = callee.entry_pc;
    VM_NEXT;
  }

  VM_CASE(kCallBuiltin) {
    ++stats_.calls;
    ++stats_.syscalls;
    const Builtin b = static_cast<Builtin>(insn->aux);
    arg_scratch_.clear();
    const BcCallArg* cargs = bc_.call_args.data() + insn->args_begin;
    for (i32 i = 0; i < insn->args_count; ++i) {
      arg_scratch_.push_back(RVAL(cargs[i].reg));
    }
    const BuiltinRtResult rt =
        ExecBuiltinRt(b, arg_scratch_, /*want_ret=*/insn->dst != kBcNone, objects_,
                      kShadow ? arena_ : nullptr, syscalls_);
    if (rt.status == BuiltinRtResult::Status::kTrap) {
      VM_TRAP(rt.trap_kind, rt.trap_code);
    }
    if (rt.status == BuiltinRtResult::Status::kExit) {
      result.status = RunResult::Status::kExit;
      result.exit_code = rt.exit_code;
      stats_.instrs = instrs;
      result.stats = stats_;
      return result;
    }
    if (rt.status == BuiltinRtResult::Status::kOk) {
      if (rt.has_ret) {
        WREG(insn->dst, rt.ret, rt.ret_shadow);
      }
      ++pc;
    }
    // kStall: pc unchanged — the call re-executes while the step budget
    // ticks, exactly like the tree walker.
    VM_NEXT;
  }

  VM_CASE(kBrFast) {
    const Value cond = RVAL(insn->a);
    const bool taken = cond.Truthy();
    ++stats_.branch_execs;
    const ExprRef shadow = kShadow && cond.IsInt() ? RSH(insn->a) : kNoExpr;
    bool abort_requested = false;
    for (BranchObserver* obs : observers_) {
      if (obs->OnBranchCompiled(insn->aux, taken, shadow, /*site_observed=*/false) ==
          BranchObserver::Action::kAbort) {
        abort_requested = true;
      }
    }
    if (abort_requested) {
      result.status = RunResult::Status::kAborted;
      stats_.instrs = instrs;
      result.stats = stats_;
      return result;
    }
    pc = taken ? insn->b : insn->c;
    VM_NEXT;
  }

  VM_CASE(kBrObserved) {
    const Value cond = RVAL(insn->a);
    const bool taken = cond.Truthy();
    ++stats_.branch_execs;
    const ExprRef shadow = kShadow && cond.IsInt() ? RSH(insn->a) : kNoExpr;
    bool abort_requested = false;
    for (BranchObserver* obs : observers_) {
      if (obs->OnBranchCompiled(insn->aux, taken, shadow, /*site_observed=*/true) ==
          BranchObserver::Action::kAbort) {
        abort_requested = true;
      }
    }
    if (abort_requested) {
      result.status = RunResult::Status::kAborted;
      stats_.instrs = instrs;
      result.stats = stats_;
      return result;
    }
    pc = taken ? insn->b : insn->c;
    VM_NEXT;
  }

  VM_CASE(kJmp) {
    pc = insn->b;
    VM_NEXT;
  }

  VM_CASE(kRet) {
    Value ret = Value::Int(0);
    ExprRef ret_shadow = kNoExpr;
    if (insn->a != kBcNone) {
      ret = RVAL(insn->a);
      if (kShadow) {
        ret_shadow = RSH(insn->a);
      }
    }
    const BcFunction* fn = frame->fn;
    const i32 base = frame->base;
    for (i32 i = fn->num_slots; i < fn->num_regs; ++i) {
      FreeObject(regs_[base + i].obj);
    }
    const i32 ret_pc = frame->ret_pc;
    const BcReg ret_dst = frame->ret_dst;
    frames_.pop_back();
    top_ = base;
    if (frames_.empty()) {
      result.status = RunResult::Status::kExit;
      result.exit_code = ret.IsInt() ? ret.num : 0;
      stats_.instrs = instrs;
      result.stats = stats_;
      return result;
    }
    reload();
    if (ret_dst != kBcNone) {
      // Call destinations are never char-typed (ret_dst_char is a dead
      // feature in the tree walker), so no truncation here.
      WREG(ret_dst, ret, ret_shadow);
    }
    pc = ret_pc;
    VM_NEXT;
  }

  VM_CASE(kHalt) {
    // The tree walker detects this at fetch time, before counting the
    // instruction; undo the prelude's count to match its RunStats.
    --instrs;
    result.status = RunResult::Status::kError;
    result.message = "fell off the end of a basic block";
    stats_.instrs = instrs;
    result.stats = stats_;
    return result;
  }

#if !RETRACE_VM_COMPUTED_GOTO
    }
  }
#endif

budget_exhausted:
  result.status = RunResult::Status::kBudget;
  stats_.instrs = instrs;
  result.stats = stats_;
  return result;

#undef RVAL
#undef RSH
#undef WREG
#undef VM_TRAP
#undef VM_CASE
#undef VM_NEXT
#if RETRACE_VM_COMPUTED_GOTO
#undef VM_DISPATCH
#endif
}

std::unique_ptr<ExecEngine> MakeExecEngine(ExecEngineKind kind, const IrModule& module,
                                           InterpOptions options) {
  if (ResolveExecEngineKind(kind) == ExecEngineKind::kBytecode) {
    return std::make_unique<BytecodeVm>(module, options);
  }
  return std::make_unique<Interp>(module, options);
}

}  // namespace retrace
