#include "src/exec/value.h"

#include <sstream>

namespace retrace {

std::string Value::ToString() const {
  std::ostringstream os;
  if (IsInt()) {
    os << num;
  } else {
    os << "&obj" << obj << "[" << num << "]";
  }
  return os.str();
}

std::string CrashSite::ToString() const {
  const char* name = "?";
  switch (kind) {
    case Kind::kNone: name = "none"; break;
    case Kind::kExplicit: name = "crash()"; break;
    case Kind::kOutOfBounds: name = "out-of-bounds"; break;
    case Kind::kNullDeref: name = "null-deref"; break;
    case Kind::kDivByZero: name = "div-by-zero"; break;
    case Kind::kDangling: name = "dangling"; break;
    case Kind::kPtrDomain: name = "pointer-domain"; break;
    case Kind::kBadBuiltinArg: name = "bad-builtin-arg"; break;
    case Kind::kStackOverflow: name = "stack-overflow"; break;
  }
  std::ostringstream os;
  os << name << " in func#" << func << " at " << retrace::ToString(loc);
  if (kind == Kind::kExplicit) {
    os << " code=" << code;
  }
  return os.str();
}

}  // namespace retrace
