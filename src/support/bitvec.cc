#include "src/support/bitvec.h"

namespace retrace {

void BitVec::PushBit(bool bit) {
  const size_t byte_index = size_ / 8;
  if (byte_index >= bytes_.size()) {
    bytes_.push_back(0);
  }
  if (bit) {
    bytes_[byte_index] = static_cast<u8>(bytes_[byte_index] | (1u << (size_ % 8)));
  }
  ++size_;
}

bool BitVec::GetBit(size_t index) const {
  Check(index < size_, "BitVec::GetBit out of range");
  return (bytes_[index / 8] >> (index % 8)) & 1u;
}

void BitVec::Clear() {
  bytes_.clear();
  size_ = 0;
}

std::vector<u8> BitVec::Serialize() const { return bytes_; }

BitVec BitVec::Deserialize(const std::vector<u8>& data, size_t bit_count) {
  Check(data.size() >= (bit_count + 7) / 8, "BitVec::Deserialize: truncated data");
  BitVec out;
  out.bytes_ = data;
  out.bytes_.resize((bit_count + 7) / 8);
  out.size_ = bit_count;
  return out;
}

}  // namespace retrace
