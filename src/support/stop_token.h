// Cooperative cancellation for multi-worker searches.
//
// A StopSource is shared by reference between the scheduler and its
// workers; the first worker to succeed requests a stop and everyone else
// observes it at their next check point (worker loop iterations and, via
// a branch observer, inside long interpreter runs). Deliberately minimal —
// no callbacks, no ownership — because workers are joined before the
// source dies.
#ifndef RETRACE_SUPPORT_STOP_TOKEN_H_
#define RETRACE_SUPPORT_STOP_TOKEN_H_

#include <atomic>

namespace retrace {

class StopSource {
 public:
  StopSource() = default;
  StopSource(const StopSource&) = delete;
  StopSource& operator=(const StopSource&) = delete;

  void RequestStop() { stop_.store(true, std::memory_order_release); }
  bool StopRequested() const { return stop_.load(std::memory_order_acquire); }

 private:
  std::atomic<bool> stop_{false};
};

}  // namespace retrace

#endif  // RETRACE_SUPPORT_STOP_TOKEN_H_
