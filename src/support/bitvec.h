// Append-only bit vector used for branch trace logs.
#ifndef RETRACE_SUPPORT_BITVEC_H_
#define RETRACE_SUPPORT_BITVEC_H_

#include <cstddef>
#include <vector>

#include "src/support/common.h"

namespace retrace {

// Bit-packed vector of branch outcomes: one bit per instrumented branch
// execution, in execution order. This is the wire format of the user-site
// branch log: the paper logs exactly one bit per branch, with no per-branch
// program counter.
class BitVec {
 public:
  BitVec() = default;

  void PushBit(bool bit);
  bool GetBit(size_t index) const;
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  void Clear();

  // Size of the log on the wire, in whole bytes.
  size_t ByteSize() const { return (size_ + 7) / 8; }

  const std::vector<u8>& bytes() const { return bytes_; }

  // Serialization round-trip (log shipped from user site to developer site).
  std::vector<u8> Serialize() const;
  static BitVec Deserialize(const std::vector<u8>& data, size_t bit_count);

  bool operator==(const BitVec& other) const {
    return size_ == other.size_ && bytes_ == other.bytes_;
  }

 private:
  std::vector<u8> bytes_;
  size_t size_ = 0;
};

}  // namespace retrace

#endif  // RETRACE_SUPPORT_BITVEC_H_
