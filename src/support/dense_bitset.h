// Fixed-size dense bitset used for instrumentation plans and analyses.
#ifndef RETRACE_SUPPORT_DENSE_BITSET_H_
#define RETRACE_SUPPORT_DENSE_BITSET_H_

#include <vector>

#include "src/support/common.h"

namespace retrace {

class DenseBitset {
 public:
  DenseBitset() = default;
  explicit DenseBitset(size_t size) : size_(size), words_((size + 63) / 64, 0) {}

  size_t size() const { return size_; }

  void Set(size_t i, bool value = true) {
    Check(i < size_, "DenseBitset::Set out of range");
    if (value) {
      words_[i / 64] |= (1ull << (i % 64));
    } else {
      words_[i / 64] &= ~(1ull << (i % 64));
    }
  }

  bool Test(size_t i) const {
    Check(i < size_, "DenseBitset::Test out of range");
    return (words_[i / 64] >> (i % 64)) & 1ull;
  }

  size_t Count() const {
    size_t n = 0;
    for (u64 w : words_) {
      n += static_cast<size_t>(__builtin_popcountll(w));
    }
    return n;
  }

  // this |= other. Returns true if any bit changed.
  bool UnionWith(const DenseBitset& other) {
    Check(size_ == other.size_, "DenseBitset::UnionWith size mismatch");
    bool changed = false;
    for (size_t i = 0; i < words_.size(); ++i) {
      const u64 merged = words_[i] | other.words_[i];
      if (merged != words_[i]) {
        words_[i] = merged;
        changed = true;
      }
    }
    return changed;
  }

  bool operator==(const DenseBitset&) const = default;

 private:
  size_t size_ = 0;
  std::vector<u64> words_;
};

}  // namespace retrace

#endif  // RETRACE_SUPPORT_DENSE_BITSET_H_
