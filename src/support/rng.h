// Deterministic pseudo-random number generator (splitmix64).
//
// Used for the concolic engine's initial random inputs and for property
// tests. Deterministic seeding keeps every experiment reproducible.
#ifndef RETRACE_SUPPORT_RNG_H_
#define RETRACE_SUPPORT_RNG_H_

#include "src/support/common.h"

namespace retrace {

class Rng {
 public:
  explicit Rng(u64 seed) : state_(seed) {}

  u64 Next();

  // Uniform in [0, bound). bound must be > 0.
  u64 NextBelow(u64 bound);

  // Uniform in [lo, hi] inclusive.
  i64 NextInRange(i64 lo, i64 hi);

  // A printable ASCII byte (space through '~').
  u8 NextPrintable();

 private:
  u64 state_;
};

}  // namespace retrace

#endif  // RETRACE_SUPPORT_RNG_H_
