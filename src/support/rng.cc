#include "src/support/rng.h"

namespace retrace {

u64 Rng::Next() {
  state_ += 0x9e3779b97f4a7c15ull;
  u64 z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

u64 Rng::NextBelow(u64 bound) {
  Check(bound > 0, "Rng::NextBelow: bound must be positive");
  return Next() % bound;
}

i64 Rng::NextInRange(i64 lo, i64 hi) {
  Check(lo <= hi, "Rng::NextInRange: empty range");
  const u64 span = static_cast<u64>(hi - lo) + 1;
  return lo + static_cast<i64>(NextBelow(span));
}

u8 Rng::NextPrintable() { return static_cast<u8>(' ' + NextBelow('~' - ' ' + 1)); }

}  // namespace retrace
