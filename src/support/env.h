// Strict environment-knob parsing.
//
// std::atoi silently turns garbage into 0 — `RETRACE_SOLVER_CACHE=true`
// used to parse as 0 and *disable* the cache the user asked for, and
// negative or trailing-garbage worker counts were accepted silently.
// These helpers parse the whole value or refuse it: the pure Parse*
// functions report failure to the caller (testable), and the EnvKnob*
// wrappers fail loudly — print the offending value and exit — because a
// bench run that quietly ignores its configuration produces numbers
// nobody should trust.
#ifndef RETRACE_SUPPORT_ENV_H_
#define RETRACE_SUPPORT_ENV_H_

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/support/common.h"

namespace retrace {

// Parses the whole of `text` as a decimal i64 (optional leading minus).
// False on null/empty input, trailing garbage, or overflow.
inline bool ParseKnobI64(const char* text, i64* out) {
  if (text == nullptr || *text == '\0') {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text, &end, 10);
  if (errno == ERANGE || end == text || *end != '\0') {
    return false;
  }
  *out = static_cast<i64>(value);
  return true;
}

// Parses a boolean knob: 1/0, true/false, on/off, yes/no (case-
// insensitive). False on anything else — including numbers other than
// 0/1, which are more likely typos than intent.
inline bool ParseKnobBool(const char* text, bool* out) {
  if (text == nullptr || *text == '\0') {
    return false;
  }
  std::string lower(text);
  for (char& c : lower) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "1" || lower == "true" || lower == "on" || lower == "yes") {
    *out = true;
    return true;
  }
  if (lower == "0" || lower == "false" || lower == "off" || lower == "no") {
    *out = false;
    return true;
  }
  return false;
}

// Reads an integer knob from the environment: unset returns `def`;
// garbage or a value outside [lo, hi] aborts with a message naming the
// knob and the accepted range.
inline i64 EnvKnobI64(const char* name, i64 def, i64 lo, i64 hi) {
  const char* text = std::getenv(name);
  if (text == nullptr) {
    return def;
  }
  i64 value = 0;
  if (!ParseKnobI64(text, &value) || value < lo || value > hi) {
    std::fprintf(stderr, "%s: invalid value '%s' (expected an integer in [%lld, %lld])\n",
                 name, text, static_cast<long long>(lo), static_cast<long long>(hi));
    std::exit(2);
  }
  return value;
}

// Reads a boolean knob from the environment: unset returns `def`;
// anything but 1/0/true/false/on/off/yes/no aborts with a message.
inline bool EnvKnobBool(const char* name, bool def) {
  const char* text = std::getenv(name);
  if (text == nullptr) {
    return def;
  }
  bool value = false;
  if (!ParseKnobBool(text, &value)) {
    std::fprintf(stderr, "%s: invalid value '%s' (expected 1/0, true/false, on/off or yes/no)\n",
                 name, text);
    std::exit(2);
  }
  return value;
}

}  // namespace retrace

#endif  // RETRACE_SUPPORT_ENV_H_
