// Error type and Result<T> used across the frontend and analyses.
#ifndef RETRACE_SUPPORT_DIAG_H_
#define RETRACE_SUPPORT_DIAG_H_

#include <string>
#include <utility>
#include <variant>

#include "src/support/common.h"

namespace retrace {

// A diagnosable error: message plus the source position it refers to.
struct Error {
  std::string message;
  SourceLoc loc;

  std::string ToString() const;
};

// Minimal expected-style result. Holds either a value or an Error.
template <typename T>
class Result {
 public:
  Result(T value) : storage_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Error error) : storage_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(storage_); }
  const T& value() const& {
    Check(ok(), "Result::value on error");
    return std::get<T>(storage_);
  }
  T& value() & {
    Check(ok(), "Result::value on error");
    return std::get<T>(storage_);
  }
  T&& take() {
    Check(ok(), "Result::take on error");
    return std::move(std::get<T>(storage_));
  }
  const Error& error() const {
    Check(!ok(), "Result::error on value");
    return std::get<Error>(storage_);
  }

 private:
  std::variant<T, Error> storage_;
};

}  // namespace retrace

#endif  // RETRACE_SUPPORT_DIAG_H_
