#include "src/support/budget.h"

namespace retrace {

Budget Budget::Steps(u64 max_steps) {
  Budget b;
  b.max_steps_ = max_steps;
  return b;
}

Budget Budget::Millis(i64 wall_ms) {
  Budget b;
  b.has_deadline_ = true;
  b.deadline_ = std::chrono::steady_clock::now() + std::chrono::milliseconds(wall_ms);
  return b;
}

Budget Budget::StepsAndMillis(u64 max_steps, i64 wall_ms) {
  Budget b = Millis(wall_ms);
  b.max_steps_ = max_steps;
  return b;
}

bool Budget::Consume(u64 n) {
  steps_used_ += n;
  return !Exhausted();
}

bool Budget::Exhausted() const {
  if (steps_used_ >= max_steps_) {
    return true;
  }
  if (has_deadline_) {
    // Checking the clock on every step would dominate interpreter cost, so
    // callers are expected to batch Consume() calls; the check itself is
    // cheap relative to a batch.
    return std::chrono::steady_clock::now() >= deadline_;
  }
  return false;
}

}  // namespace retrace
