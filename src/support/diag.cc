#include "src/support/diag.h"

#include <sstream>

namespace retrace {

void FatalError(std::string_view message) {
  std::fprintf(stderr, "retrace fatal: %.*s\n", static_cast<int>(message.size()), message.data());
  std::abort();
}

std::string ToString(const SourceLoc& loc) {
  std::ostringstream os;
  os << "unit" << loc.unit << ":" << loc.line << ":" << loc.col;
  return os.str();
}

std::string Error::ToString() const {
  return retrace::ToString(loc) + ": " + message;
}

}  // namespace retrace
