// Execution budgets: wall-clock and step limits for analyses and replay.
//
// The paper cuts off dynamic analysis after a fixed time (1h for LC, 2h for
// HC coverage on the uServer) and allots 1h for bug reproduction. Budgets
// here support both wall time and deterministic step counts so tests can be
// exact while benches use time.
#ifndef RETRACE_SUPPORT_BUDGET_H_
#define RETRACE_SUPPORT_BUDGET_H_

#include <chrono>
#include <limits>

#include "src/support/common.h"

namespace retrace {

class Budget {
 public:
  // Unlimited budget.
  Budget() = default;

  static Budget Steps(u64 max_steps);
  static Budget Millis(i64 wall_ms);
  static Budget StepsAndMillis(u64 max_steps, i64 wall_ms);

  // Consumes `n` steps and reports whether the budget still has room.
  bool Consume(u64 n = 1);

  bool Exhausted() const;
  u64 steps_used() const { return steps_used_; }
  u64 max_steps() const { return max_steps_; }

 private:
  u64 max_steps_ = std::numeric_limits<u64>::max();
  u64 steps_used_ = 0;
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
};

}  // namespace retrace

#endif  // RETRACE_SUPPORT_BUDGET_H_
