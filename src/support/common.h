// Basic shared definitions for the retrace library.
#ifndef RETRACE_SUPPORT_COMMON_H_
#define RETRACE_SUPPORT_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

namespace retrace {

using i64 = int64_t;
using u64 = uint64_t;
using i32 = int32_t;
using u32 = uint32_t;
using u16 = uint16_t;
using u8 = uint8_t;

// Terminates the process with a message. Used for internal invariant
// violations that indicate a bug in retrace itself (never for errors in the
// analyzed program; those travel through Result/RunResult).
[[noreturn]] void FatalError(std::string_view message);

// Checks an internal invariant; fatal on violation.
inline void Check(bool condition, std::string_view message) {
  if (!condition) {
    FatalError(message);
  }
}

// A position in a MiniC source unit. line/col are 1-based; unit identifies
// which source unit (application or library) the position belongs to.
struct SourceLoc {
  int unit = 0;
  int line = 0;
  int col = 0;

  bool operator==(const SourceLoc&) const = default;
};

std::string ToString(const SourceLoc& loc);

}  // namespace retrace

#endif  // RETRACE_SUPPORT_COMMON_H_
