// MPMC work-stealing frontier for the parallel replay scheduler.
//
// Each worker owns a deque (its DFS stack). Owners push to the back and
// pop according to their heuristic: back (newest first — depth-first),
// front (oldest first — breadth/FIFO), or the entry with the highest
// priority key (two independent keys per entry: `priority`, the log-bits
// discipline — pendings whose prefix consumed the most branch-log bits —
// and `direction`, the direction-aware discipline — pendings whose
// constraint set forces the most logged directions). A worker whose deque is empty steals the
// *front* of another worker's deque: the oldest, shallowest entry, i.e.
// the root of the largest untouched subtree — the classic work-stealing
// discipline that keeps thieves out of the owner's hot end.
//
// Pop() blocks when the whole frontier is empty, because a busy worker may
// still publish more work. Termination is detected when every worker is
// blocked in Pop() at once (nobody is running, so nobody can produce), or
// when Close() is called (first-crash-wins cancellation). A single mutex
// guards all deques: frontier operations are microseconds apart while the
// work items between them (solver call + interpreter run) are milliseconds,
// so contention is irrelevant and the simple design is provably safe. The
// same reasoning covers the highest-priority pop's linear scan.
#ifndef RETRACE_SUPPORT_WORKQUEUE_H_
#define RETRACE_SUPPORT_WORKQUEUE_H_

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <numeric>
#include <utility>
#include <vector>

#include "src/support/common.h"

namespace retrace {

enum class PopOrder {
  kNewestFirst,       // Depth-first: continue the deepest path.
  kOldestFirst,       // FIFO: widen the search.
  kHighestPriority,   // Largest Push() priority first; ties break newest.
  kHighestDirection,  // Largest Push() direction key first; ties break newest.
};

/// \brief MPMC work-stealing frontier (see the file comment for the
/// scheduling discipline).
///
/// **Thread safety:** every method is safe from any thread; one mutex
/// guards all deques (see the file comment for why that is the right
/// trade). **Ownership:** the queue owns pushed items until popped;
/// the creator must keep the queue alive until every worker returned
/// from its final Pop()/Retire().
///
/// **Lifecycle contract:** construct with the worker count, then each
/// worker must call Retire() exactly once on exit — termination
/// detection counts active workers, and a missing Retire() leaves the
/// remaining workers blocked in Pop() forever.
template <typename T>
class WorkStealingQueue {
 public:
  explicit WorkStealingQueue(size_t num_workers)
      : queues_(num_workers), active_(num_workers) {}

  /// Publishes one item onto `worker`'s deque. `priority` only matters to
  /// kHighestPriority consumers and `direction` to kHighestDirection ones
  /// (a portfolio fleet runs both disciplines over one frontier, so each
  /// entry carries both keys); the other orders ignore them. Safe to call
  /// before the workers start (the distributed scheduler seeds shard
  /// frontiers this way).
  void Push(size_t worker, T item, u64 priority = 0, u64 direction = 0) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      queues_[worker].push_back(Entry{std::move(item), priority, direction});
      ++total_;
      peak_ = total_ > peak_ ? total_ : peak_;
    }
    cv_.notify_one();
  }

  /// Takes one item for `worker`: its own deque first (per `order`), then a
  /// steal from the front of the fullest other deque. Blocks while the
  /// frontier is empty but some worker is still busy. Returns false when the
  /// search is over: every worker is blocked here at once (frontier drained)
  /// or Close() was called. `stolen` reports whether the item came from
  /// another worker's deque.
  bool Pop(size_t worker, PopOrder order, T* out, bool* stolen) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!WaitForItem(lock)) {
      return false;
    }
    if (!queues_[worker].empty()) {
      *out = TakeOwnLocked(worker, order);
      *stolen = false;
    } else {
      *out = StealLocked(worker);
      *stolen = true;
    }
    return true;
  }

  /// Takes up to `max_items` for `worker` in one frontier visit: the first
  /// item with full Pop() semantics (blocking, stealing), the rest
  /// opportunistically from the worker's *own* deque only — extras are
  /// never stolen, so a batching worker cannot starve other thieves.
  /// Returns false when the search is over; otherwise `out` holds 1 to
  /// `max_items` items in pop order and `stolen` counts stolen ones (0/1).
  bool PopBatch(size_t worker, PopOrder order, size_t max_items, std::vector<T>* out,
                u64* stolen) {
    out->clear();
    *stolen = 0;
    std::unique_lock<std::mutex> lock(mu_);
    if (!WaitForItem(lock)) {
      return false;
    }
    if (!queues_[worker].empty()) {
      out->push_back(TakeOwnLocked(worker, order));
    } else {
      out->push_back(StealLocked(worker));
      ++*stolen;
    }
    if (order == PopOrder::kHighestPriority || order == PopOrder::kHighestDirection) {
      // Batched priority take: one selection pass + swap-removals instead
      // of re-running TakeOwnLocked's O(n) scan once per extra.
      if (out->size() < max_items) {
        TakeOwnTopLocked(worker, order, max_items - out->size(), out);
      }
    } else {
      while (out->size() < max_items && !queues_[worker].empty()) {
        out->push_back(TakeOwnLocked(worker, order));
      }
    }
    return true;
  }

  /// Registers an external producer (e.g. the distributed re-balance
  /// pump, which may inject work into an otherwise drained frontier).
  /// While registered, termination detection treats it like one more
  /// active worker, so an empty frontier with every worker blocked does
  /// NOT end the search — the producer might still Push(). Balance every
  /// AddProducer() with exactly one Retire(), or the workers block
  /// forever.
  void AddProducer() {
    std::lock_guard<std::mutex> lock(mu_);
    ++active_;
  }

  /// Items currently resident across all deques.
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<size_t>(total_);
  }

  /// Push that refuses once the queue is closed (checked under the same
  /// lock, so there is no close/push race). A closed frontier will never
  /// be popped again — external producers must learn their item was NOT
  /// accepted so they can re-home it instead of losing it.
  bool PushIfOpen(size_t worker, T item, u64 priority = 0, u64 direction = 0) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) {
        return false;
      }
      queues_[worker].push_back(Entry{std::move(item), priority, direction});
      ++total_;
      peak_ = total_ > peak_ ? total_ : peak_;
    }
    cv_.notify_one();
    return true;
  }

  /// Carves up to `max_items` of the *deepest* entries (deque backs,
  /// fullest deque first) for export to a starved peer, never draining
  /// the frontier below `min_keep`. Items leave in the exported order;
  /// any priority metadata must live inside T (PortablePending carries
  /// its own `priority`). Returns the number exported — always 0 once the
  /// queue is closed: a closed frontier will never be popped again
  /// (first-crash-wins or termination), so carving pendings off it for a
  /// peer would only ship work the fleet has already decided not to do.
  /// Safe from any thread; exporting nothing is not an error.
  size_t ExportDeepest(size_t max_items, size_t min_keep, std::vector<T>* out) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) {
      return 0;
    }
    size_t exported = 0;
    while (exported < max_items && total_ > min_keep) {
      size_t victim = queues_.size();
      size_t victim_size = 0;
      for (size_t i = 0; i < queues_.size(); ++i) {
        if (queues_[i].size() > victim_size) {
          victim = i;
          victim_size = queues_[i].size();
        }
      }
      if (victim == queues_.size()) {
        break;
      }
      out->push_back(std::move(queues_[victim].back().item));
      queues_[victim].pop_back();
      --total_;
      ++exported;
    }
    return exported;
  }

  /// Ends the search: every blocked and future Pop() returns false.
  /// Callable from any thread — first-crash-wins cancellation and the
  /// distributed cancel pump both use it.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  /// Permanently removes one worker from termination accounting (its private
  /// budget died). Call exactly once per exiting worker; without this the
  /// remaining workers could block in Pop() forever waiting for a producer
  /// that already left.
  void Retire() {
    bool close = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      Check(active_ > 0, "WorkStealingQueue: Retire underflow");
      --active_;
      close = total_ == 0 && waiting_ >= active_;
      closed_ = closed_ || close;
    }
    if (close) {
      cv_.notify_all();
    }
  }

  /// High-water mark of items resident across all deques.
  u64 peak() const {
    std::lock_guard<std::mutex> lock(mu_);
    return peak_;
  }

 private:
  struct Entry {
    T item;
    u64 priority = 0;
    u64 direction = 0;
  };

  // Priority key an entry contributes under `order` (only the two
  // priority orders call this).
  static u64 KeyOf(const Entry& entry, PopOrder order) {
    return order == PopOrder::kHighestDirection ? entry.direction : entry.priority;
  }

  // Blocks until the frontier has an item. Returns false when the search
  // is over (closed, or every active worker waits here at once).
  bool WaitForItem(std::unique_lock<std::mutex>& lock) {
    for (;;) {
      if (closed_) {
        return false;
      }
      if (total_ > 0) {
        return true;
      }
      ++waiting_;
      if (waiting_ >= active_) {
        // Every still-active worker is here and the frontier is empty:
        // nothing can ever be produced again. Wake the other waiters so
        // they observe closed_.
        closed_ = true;
        cv_.notify_all();
        return false;
      }
      cv_.wait(lock, [this] { return total_ > 0 || closed_; });
      --waiting_;
    }
  }

  // Removes one entry from `worker`'s own (non-empty) deque per `order`.
  T TakeOwnLocked(size_t worker, PopOrder order) {
    std::deque<Entry>& own = queues_[worker];
    size_t idx = 0;
    switch (order) {
      case PopOrder::kNewestFirst:
        idx = own.size() - 1;
        break;
      case PopOrder::kOldestFirst:
        idx = 0;
        break;
      case PopOrder::kHighestPriority:
      case PopOrder::kHighestDirection:
        // >= keeps the scan's last maximum: the newest among ties, so
        // equal-priority entries still behave depth-first. The pop then
        // swap-removes instead of erasing from the middle: the scan is
        // unavoidably O(n), but shifting half the deque while holding
        // mu_ is not (ties thereafter prefer the newest *remaining*
        // entry, which internal compaction approximates).
        for (size_t i = 1; i < own.size(); ++i) {
          if (KeyOf(own[i], order) >= KeyOf(own[idx], order)) {
            idx = i;
          }
        }
        if (idx + 1 != own.size()) {
          std::swap(own[idx], own.back());
        }
        idx = own.size() - 1;
        break;
    }
    T item = std::move(own[idx].item);
    if (idx + 1 == own.size()) {
      own.pop_back();
    } else {
      own.erase(own.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    --total_;
    return item;
  }

  // Takes up to `want` of the highest-key entries from `worker`'s own
  // deque in one selection pass (nth_element over indices), appending the
  // items in descending-key order — the batched form of the priority
  // take. Vacated slots are swap-removed highest-index-first (the back is
  // never a still-pending selected slot), so a batch costs one scan and
  // O(1) removals instead of one full scan per item. Ties break newest
  // (largest index) first, matching the single take's tie rule.
  void TakeOwnTopLocked(size_t worker, PopOrder order, size_t want, std::vector<T>* out) {
    std::deque<Entry>& own = queues_[worker];
    const size_t take = std::min(want, own.size());
    if (take == 0) {
      return;
    }
    std::vector<size_t> idx(own.size());
    std::iota(idx.begin(), idx.end(), size_t{0});
    const auto better = [&](size_t a, size_t b) {
      const u64 ka = KeyOf(own[a], order);
      const u64 kb = KeyOf(own[b], order);
      return ka != kb ? ka > kb : a > b;
    };
    if (take < idx.size()) {
      std::nth_element(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(take) - 1,
                       idx.end(), better);
      idx.resize(take);
    }
    std::sort(idx.begin(), idx.end(), better);
    for (const size_t i : idx) {
      out->push_back(std::move(own[i].item));
    }
    std::sort(idx.begin(), idx.end(), [](size_t a, size_t b) { return a > b; });
    for (const size_t i : idx) {
      if (i + 1 != own.size()) {
        own[i] = std::move(own.back());
      }
      own.pop_back();
    }
    total_ -= take;
  }

  // Steals the front of the fullest other deque; requires total_ > 0 and
  // an empty own deque.
  T StealLocked(size_t worker) {
    size_t victim = queues_.size();
    size_t victim_size = 0;
    for (size_t i = 0; i < queues_.size(); ++i) {
      if (i != worker && queues_[i].size() > victim_size) {
        victim = i;
        victim_size = queues_[i].size();
      }
    }
    Check(victim < queues_.size(), "WorkStealingQueue: total_ > 0 but no victim");
    T item = std::move(queues_[victim].front().item);
    queues_[victim].pop_front();
    --total_;
    return item;
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::deque<Entry>> queues_;
  u64 total_ = 0;
  u64 peak_ = 0;
  size_t waiting_ = 0;
  size_t active_ = 0;
  bool closed_ = false;
};

}  // namespace retrace

#endif  // RETRACE_SUPPORT_WORKQUEUE_H_
