// MPMC work-stealing frontier for the parallel replay scheduler.
//
// Each worker owns a deque (its DFS stack). Owners push to the back and
// pop according to their heuristic: back (newest first — depth-first) or
// front (oldest first — breadth/FIFO). A worker whose deque is empty
// steals the *front* of another worker's deque: the oldest, shallowest
// entry, i.e. the root of the largest untouched subtree — the classic
// work-stealing discipline that keeps thieves out of the owner's hot end.
//
// Pop() blocks when the whole frontier is empty, because a busy worker may
// still publish more work. Termination is detected when every worker is
// blocked in Pop() at once (nobody is running, so nobody can produce), or
// when Close() is called (first-crash-wins cancellation). A single mutex
// guards all deques: frontier operations are microseconds apart while the
// work items between them (solver call + interpreter run) are milliseconds,
// so contention is irrelevant and the simple design is provably safe.
#ifndef RETRACE_SUPPORT_WORKQUEUE_H_
#define RETRACE_SUPPORT_WORKQUEUE_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <vector>

#include "src/support/common.h"

namespace retrace {

enum class PopOrder {
  kNewestFirst,  // Depth-first: continue the deepest path.
  kOldestFirst,  // FIFO: widen the search.
};

template <typename T>
class WorkStealingQueue {
 public:
  explicit WorkStealingQueue(size_t num_workers)
      : queues_(num_workers), active_(num_workers) {}

  // Publishes one item onto `worker`'s deque.
  void Push(size_t worker, T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      queues_[worker].push_back(std::move(item));
      ++total_;
      peak_ = total_ > peak_ ? total_ : peak_;
    }
    cv_.notify_one();
  }

  // Takes one item for `worker`: its own deque first (per `order`), then a
  // steal from the front of the fullest other deque. Blocks while the
  // frontier is empty but some worker is still busy. Returns false when the
  // search is over: every worker is blocked here at once (frontier drained)
  // or Close() was called. `stolen` reports whether the item came from
  // another worker's deque.
  bool Pop(size_t worker, PopOrder order, T* out, bool* stolen) {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      if (closed_) {
        return false;
      }
      if (total_ > 0) {
        std::deque<T>& own = queues_[worker];
        if (!own.empty()) {
          if (order == PopOrder::kNewestFirst) {
            *out = std::move(own.back());
            own.pop_back();
          } else {
            *out = std::move(own.front());
            own.pop_front();
          }
          --total_;
          *stolen = false;
          return true;
        }
        size_t victim = queues_.size();
        size_t victim_size = 0;
        for (size_t i = 0; i < queues_.size(); ++i) {
          if (i != worker && queues_[i].size() > victim_size) {
            victim = i;
            victim_size = queues_[i].size();
          }
        }
        Check(victim < queues_.size(), "WorkStealingQueue: total_ > 0 but no victim");
        *out = std::move(queues_[victim].front());
        queues_[victim].pop_front();
        --total_;
        *stolen = true;
        return true;
      }
      ++waiting_;
      if (waiting_ >= active_) {
        // Every still-active worker is here and the frontier is empty:
        // nothing can ever be produced again. Wake the other waiters so
        // they observe closed_.
        closed_ = true;
        cv_.notify_all();
        return false;
      }
      cv_.wait(lock, [this] { return total_ > 0 || closed_; });
      --waiting_;
    }
  }

  // Ends the search: every blocked and future Pop() returns false.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  // Permanently removes one worker from termination accounting (its private
  // budget died). Call exactly once per exiting worker; without this the
  // remaining workers could block in Pop() forever waiting for a producer
  // that already left.
  void Retire() {
    bool close = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      Check(active_ > 0, "WorkStealingQueue: Retire underflow");
      --active_;
      close = total_ == 0 && waiting_ >= active_;
      closed_ = closed_ || close;
    }
    if (close) {
      cv_.notify_all();
    }
  }

  // High-water mark of items resident across all deques.
  u64 peak() const {
    std::lock_guard<std::mutex> lock(mu_);
    return peak_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::deque<T>> queues_;
  u64 total_ = 0;
  u64 peak_ = 0;
  size_t waiting_ = 0;
  size_t active_ = 0;
  bool closed_ = false;
};

}  // namespace retrace

#endif  // RETRACE_SUPPORT_WORKQUEUE_H_
