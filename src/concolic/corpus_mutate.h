// Corpus mutation: deterministic fuzzing of the dynamic analysis'
// harvested input models (AnalysisResult::corpus), so the replay fleet
// radiates from *neighborhoods* of exploration-discovered prefixes
// instead of only the exact inputs exploration happened to produce.
#ifndef RETRACE_CONCOLIC_CORPUS_MUTATE_H_
#define RETRACE_CONCOLIC_CORPUS_MUTATE_H_

#include <vector>

#include "src/support/common.h"

namespace retrace {

/// Returns the corpus followed by deterministic mutants of it, capped at
/// `max_total` models. Mutation operators (chosen pseudo-randomly from
/// `seed`, reproducible across runs):
///   - point: one cell replaced by a random printable byte;
///   - nudge: one cell incremented or decremented by one;
///   - splice: prefix of one seed + suffix of another (equal-length
///     seeds only — models are fixed cell layouts).
/// `mutants_per_seed` mutants are derived from each corpus entry, in
/// corpus order, until `max_total` is reached. An empty corpus returns
/// empty; duplicates are not filtered (the replay engine's fleet-wide
/// dedup handles collisions).
std::vector<std::vector<i64>> MutateCorpus(const std::vector<std::vector<i64>>& corpus,
                                           u64 seed, u32 mutants_per_seed, size_t max_total);

}  // namespace retrace

#endif  // RETRACE_CONCOLIC_CORPUS_MUTATE_H_
