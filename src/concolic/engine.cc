#include "src/concolic/engine.h"

#include <algorithm>
#include <cstdlib>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "src/support/dense_bitset.h"

namespace retrace {
namespace {

// Observer recording the symbolic path constraints and branch labels/stats.
// Direction coverage (which (branch, taken) pairs have ever executed)
// steers the generational search away from already-explored flips.
class PathCollector : public BranchObserver {
 public:
  PathCollector(std::vector<BranchLabel>* labels, std::vector<BranchStats>* stats,
                DenseBitset* cov_taken = nullptr, DenseBitset* cov_not_taken = nullptr)
      : labels_(labels), stats_(stats), cov_taken_(cov_taken), cov_not_taken_(cov_not_taken) {}

  Action OnBranch(i32 branch_id, bool taken, ExprRef cond_shadow) override {
    const bool symbolic = cond_shadow != kNoExpr;
    if (stats_ != nullptr) {
      BranchStats& s = (*stats_)[branch_id];
      ++s.execs;
      if (symbolic) {
        ++s.symbolic_execs;
      }
    }
    if (labels_ != nullptr) {
      BranchLabel& label = (*labels_)[branch_id];
      if (symbolic) {
        label = BranchLabel::kSymbolic;
      } else if (label == BranchLabel::kUnvisited) {
        label = BranchLabel::kConcrete;
      }
    }
    if (cov_taken_ != nullptr) {
      (taken ? *cov_taken_ : *cov_not_taken_).Set(branch_id);
    }
    if (symbolic) {
      trace.push_back(Constraint{cond_shadow, taken});
      trace_branches.push_back(branch_id);
      trace_taken.push_back(taken);
    }
    return Action::kContinue;
  }

  std::vector<Constraint> trace;
  std::vector<i32> trace_branches;
  std::vector<bool> trace_taken;

 private:
  std::vector<BranchLabel>* labels_;
  std::vector<BranchStats>* stats_;
  DenseBitset* cov_taken_;
  DenseBitset* cov_not_taken_;
};

}  // namespace

size_t AnalysisResult::CountLabel(BranchLabel label) const {
  size_t n = 0;
  for (BranchLabel l : labels) {
    if (l == label) {
      ++n;
    }
  }
  return n;
}

double AnalysisResult::Coverage() const {
  if (labels.empty()) {
    return 0.0;
  }
  const size_t visited = labels.size() - CountLabel(BranchLabel::kUnvisited);
  return static_cast<double>(visited) / static_cast<double>(labels.size());
}

AnalysisResult ConcolicEngine::ProfileRun(const InputSpec& spec, NondetPolicy* policy) {
  AnalysisResult result;
  result.labels.assign(module_.branches.size(), BranchLabel::kUnvisited);
  result.stats.assign(module_.branches.size(), BranchStats{});

  CellRunner runner(module_, spec);
  PathCollector collector(&result.labels, &result.stats);
  CellRunConfig config;
  config.policy = policy;
  config.arena = arena_;
  config.observers = {&collector};
  runner.Run(config);
  result.runs = 1;
  return result;
}

AnalysisResult ConcolicEngine::Analyze(const InputSpec& spec, const AnalysisConfig& config) {
  AnalysisResult result;
  result.labels.assign(module_.branches.size(), BranchLabel::kUnvisited);
  result.stats.assign(module_.branches.size(), BranchStats{});

  CellRunner runner(module_, spec);
  Budget budget = config.wall_ms > 0 ? Budget::StepsAndMillis(config.total_steps, config.wall_ms)
                                     : Budget::Steps(config.total_steps);
  Solver solver(*arena_, config.solver);
  Rng rng(config.seed);

  // Initial model: the spec's concrete bytes, or random printable bytes.
  std::vector<i64> initial(runner.layout().defaults());
  if (!config.start_from_defaults) {
    for (i64& v : initial) {
      v = rng.NextPrintable();
    }
  }

  // Generational search state. Each pending entry describes "re-run with
  // the prefix of some previous trace, with constraint `flip` negated".
  struct Pending {
    std::shared_ptr<std::vector<Constraint>> trace;
    size_t flip = 0;
    i32 flip_branch = -1;       // Branch the flip targets.
    bool flip_direction = false;  // Direction the flip would force.
    bool syscall_only = false;  // Constraint touches only syscall-result cells.
    std::shared_ptr<std::vector<i64>> seed;          // Model of the generating run.
    std::shared_ptr<std::vector<Interval>> domains;  // Domains of the generating run.
  };
  std::vector<Pending> stack;
  std::vector<Pending> deferred;  // Covered-direction flips, tried last.
  // Direction coverage: which (branch, direction) pairs some run already
  // executed. Pendings whose flip would only re-create a covered direction
  // are deferred — the run budget goes to the coverage frontier first, but
  // deep exploration (byte-ladders through shared library compares like
  // strncmp) still happens once the frontier is exhausted.
  DenseBitset cov_taken(module_.branches.size());
  DenseBitset cov_not_taken(module_.branches.size());

  // Model-corpus collection: every distinct input that actually runs is
  // a dynamic-analysis discovery worth handing to replay (the corpus-
  // seeded search). Deduplicated by content hash, capped by corpus_max.
  std::unordered_set<u64> corpus_seen;
  auto harvest_corpus = [&](const std::vector<i64>& model) {
    if (config.corpus_max == 0 || result.corpus.size() >= config.corpus_max) {
      return;
    }
    u64 h = 0x9e3779b97f4a7c15ull;
    for (const i64 v : model) {
      h = HashMix(h, static_cast<u64>(v));
    }
    if (corpus_seen.insert(h).second) {
      result.corpus.push_back(model);
    }
  };

  auto do_run = [&](const std::vector<i64>& model,
                    size_t start_depth) -> void {
    harvest_corpus(model);
    PathCollector collector(&result.labels, &result.stats, &cov_taken, &cov_not_taken);
    CellRunConfig run_config;
    run_config.model = model;
    run_config.arena = arena_;
    run_config.observers = {&collector};
    run_config.max_steps = config.max_steps_per_run;
    run_config.external_budget = &budget;
    run_config.engine = config.engine;
    CellRunOutput out = runner.Run(run_config);
    ++result.runs;

    auto trace = std::make_shared<std::vector<Constraint>>(std::move(collector.trace));
    auto seed = std::make_shared<std::vector<i64>>(std::move(out.cells));
    auto domains = std::make_shared<std::vector<Interval>>(std::move(out.domains));
    const i32 num_static = runner.layout().num_static();
    // Depth-first: push deeper flips last so they pop first.
    for (size_t i = start_depth; i < trace->size(); ++i) {
      std::vector<i32> vars;
      arena_->CollectVars((*trace)[i].expr, &vars);
      bool syscall_only = !vars.empty();
      for (i32 v : vars) {
        if (v < num_static) {
          syscall_only = false;
          break;
        }
      }
      stack.push_back(Pending{trace, i, collector.trace_branches[i], !collector.trace_taken[i],
                              syscall_only, seed, domains});
    }
  };

  do_run(initial, 0);
  for (const std::vector<i64>& seed_model : config.extra_seed_models) {
    if (result.runs >= config.max_runs || budget.Exhausted()) {
      break;
    }
    do_run(seed_model, 0);
  }

  // Loop-exit and readiness constraints over syscall-result cells (poll,
  // select, accept, read-return) recur once per server-loop iteration;
  // flipping every occurrence explores nothing new. Cap solver attempts per
  // (branch, direction) for those, so the budget climbs input-byte ladders
  // (method names, routes, headers) instead.
  constexpr int kMaxSyscallFlips = 2;
  std::unordered_map<u64, int> syscall_flips;

  while ((!stack.empty() || !deferred.empty()) && result.runs < config.max_runs &&
         !budget.Exhausted()) {
    Pending pending;
    if (!stack.empty()) {
      pending = std::move(stack.back());
      stack.pop_back();
      // Frontier check: defer flips whose target direction already ran.
      const DenseBitset& cov = pending.flip_direction ? cov_taken : cov_not_taken;
      if (pending.flip_branch >= 0 && cov.Test(pending.flip_branch)) {
        deferred.push_back(std::move(pending));
        continue;
      }
    } else {
      pending = std::move(deferred.back());
      deferred.pop_back();
    }
    if (pending.syscall_only && pending.flip_branch >= 0) {
      const u64 key = (static_cast<u64>(pending.flip_branch) << 1) |
                      (pending.flip_direction ? 1u : 0u);
      if (syscall_flips[key] >= kMaxSyscallFlips) {
        continue;
      }
      ++syscall_flips[key];
    }

    // The constraint set — the prefix through `flip` with the flip
    // negated — is exactly a negate-last view of the trace: solve over it
    // directly instead of materializing a copy per pending.
    const ConstraintSpan constraints(pending.trace->data(), pending.flip + 1,
                                     /*negate_last=*/true);

    ++result.solver_calls;
    const SolveResult solved = solver.Solve(constraints, *pending.domains, *pending.seed);
    if (std::getenv("RETRACE_DEBUG_CONCOLIC") != nullptr) {
      std::fprintf(stderr,
                   "[concolic] run=%llu flip=%zu branch=%d line=%d dir=%d sys=%d status=%d\n",
                   static_cast<unsigned long long>(result.runs), pending.flip,
                   pending.flip_branch, module_.branches[pending.flip_branch].loc.line,
                   pending.flip_direction ? 1 : 0, pending.syscall_only ? 1 : 0,
                   static_cast<int>(solved.status));
    }
    if (solved.status != SolveStatus::kSat) {
      continue;
    }
    do_run(solved.model, pending.flip + 1);
  }

  result.budget_exhausted = budget.Exhausted() || result.runs >= config.max_runs;
  return result;
}

}  // namespace retrace
