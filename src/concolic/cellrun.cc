#include "src/concolic/cellrun.h"

namespace retrace {

CellRunOutput CellRunner::Run(const CellRunConfig& config) const {
  CellStore cells(layout_, config.model);
  cells.set_policy(config.policy);
  VirtualOs vos(spec_.world, &cells, &layout_);
  vos.set_replay_log(config.replay_log);
  vos.set_symbolic_results(config.arena != nullptr && config.symbolic_syscalls);

  InterpOptions options;
  options.max_steps = config.max_steps;
  options.external_budget = config.external_budget;
  Interp interp(module_, options);
  interp.set_syscall_handler(&vos);
  if (config.arena != nullptr) {
    interp.set_shadow_arena(config.arena);
  }
  for (BranchObserver* obs : config.observers) {
    interp.AddObserver(obs);
  }

  const std::vector<std::string> argv = layout_.MaterializeArgv(spec_, cells.values());
  const std::vector<std::vector<i32>> argv_cells =
      config.arena != nullptr ? layout_.ArgvCells(spec_) : std::vector<std::vector<i32>>{};

  CellRunOutput out;
  out.result = interp.Run(argv, argv_cells);
  out.cells = cells.values();
  out.domains = cells.domains();
  out.cell_info = cells.info();
  out.dyn_trace = cells.dynamic_trace();
  out.stdout_text = vos.stdout_text();
  out.log_diverged = vos.log_diverged();
  return out;
}

}  // namespace retrace
