#include "src/concolic/cellrun.h"

#include "src/exec/vm.h"

namespace retrace {

ExecEngine* CellRunner::EngineFor(ExecEngineKind kind) {
  std::unique_ptr<ExecEngine>& slot = kind == ExecEngineKind::kBytecode ? bytecode_ : tree_;
  if (slot == nullptr) {
    slot = MakeExecEngine(kind, module_, InterpOptions{});
  }
  return slot.get();
}

CellRunOutput CellRunner::Run(const CellRunConfig& config) {
  CellStore cells(layout_, config.model);
  cells.set_policy(config.policy);
  VirtualOs vos(spec_.world, &cells, &layout_);
  vos.set_replay_log(config.replay_log);
  vos.set_symbolic_results(config.arena != nullptr && config.symbolic_syscalls);

  InterpOptions options;
  options.max_steps = config.max_steps;
  options.external_budget = config.external_budget;
  ExecEngine* engine = EngineFor(ResolveExecEngineKind(config.engine));
  engine->set_options(options);
  engine->set_syscall_handler(&vos);
  engine->set_shadow_arena(config.arena);
  engine->ClearObservers();
  for (BranchObserver* obs : config.observers) {
    engine->AddObserver(obs);
  }
  engine->SpecializePlan(config.plan);

  const std::vector<std::string> argv = layout_.MaterializeArgv(spec_, cells.values());
  const std::vector<std::vector<i32>> argv_cells =
      config.arena != nullptr ? layout_.ArgvCells(spec_) : std::vector<std::vector<i32>>{};

  CellRunOutput out;
  out.result = engine->Run(argv, argv_cells);
  out.cells = cells.values();
  out.domains = cells.domains();
  out.cell_info = cells.info();
  out.dyn_trace = cells.dynamic_trace();
  out.stdout_text = vos.stdout_text();
  out.log_diverged = vos.log_diverged();
  return out;
}

}  // namespace retrace
