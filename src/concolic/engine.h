// Concolic execution engine: the paper's dynamic analysis (§2.1).
//
// The engine repeatedly runs the program with concrete inputs while
// collecting path constraints at symbolic branches, then negates a
// constraint, solves, and re-runs with the new input (generational search,
// depth-first). Every executed branch gets labeled:
//   - symbolic: executed at least once with an input-dependent condition
//     (sticky — a later concrete execution does not downgrade it);
//   - concrete: executed, so far only with input-independent conditions;
//   - unvisited: never executed before the budget ran out.
// The budget knob is the paper's LC/HC coverage lever.
#ifndef RETRACE_CONCOLIC_ENGINE_H_
#define RETRACE_CONCOLIC_ENGINE_H_

#include <memory>
#include <vector>

#include "src/concolic/cellrun.h"
#include "src/solver/solver.h"
#include "src/support/budget.h"
#include "src/support/rng.h"

namespace retrace {

enum class BranchLabel : u8 { kUnvisited, kConcrete, kSymbolic };

struct BranchStats {
  u64 execs = 0;
  u64 symbolic_execs = 0;
};

struct AnalysisConfig {
  u64 max_runs = 128;              // Exploration budget in runs (deterministic knob).
  i64 wall_ms = -1;                // Optional wall-clock budget (paper's 1h/2h).
  u64 max_steps_per_run = 50'000'000;
  u64 total_steps = 2'000'000'000; // Shared step budget across all runs.
  SolverOptions solver;
  u64 seed = 1;                    // RNG seed for the initial random input.
  bool start_from_defaults = true; // Seed first run with the spec's bytes
                                   // (the "leverage the test suite" mode);
                                   // false = random initial input.
  // Additional seed inputs (cell models over the spec's layout), e.g. a
  // manual test suite. The paper proposes exactly this to boost coverage:
  // deep byte-ladders (protocol keywords, header names) defeat pure
  // constraint negation, but exploration radiates outward from each seed.
  std::vector<std::vector<i64>> extra_seed_models;
  // Upper bound on the model corpus recorded into AnalysisResult::corpus
  // (deduplicated inputs the exploration actually ran, in discovery
  // order). 0 disables collection entirely.
  u64 corpus_max = 64;
  // Execution engine for exploration runs (src/exec/engine.h); kDefault
  // resolves the RETRACE_EXEC_ENGINE knob. Purely a wall-clock choice —
  // both engines are behaviorally bit-identical.
  ExecEngineKind engine = ExecEngineKind::kDefault;
};

struct AnalysisResult {
  std::vector<BranchLabel> labels;  // Per branch id.
  std::vector<BranchStats> stats;   // Per branch id, across all runs.
  u64 runs = 0;
  u64 solver_calls = 0;
  bool budget_exhausted = false;
  // The dynamic-analysis corpus: deduplicated concrete input models the
  // exploration ran (initial input, extra seeds, and every solver-derived
  // input), capped at AnalysisConfig::corpus_max. Replay's corpus-seeded
  // search (ReplayConfig::corpus_seeds) starts shard workers from these
  // instead of random bytes alone.
  std::vector<std::vector<i64>> corpus;

  size_t CountLabel(BranchLabel label) const;
  // Visited branch locations / total branch locations.
  double Coverage() const;
  // Locations with at least one symbolic execution, restricted to app or
  // library code via the module's branch table (callers filter).
};

class ConcolicEngine {
 public:
  ConcolicEngine(const IrModule& module, ExprArena* arena)
      : module_(module), arena_(arena) {}

  // Time/run-budgeted path exploration from `spec`.
  AnalysisResult Analyze(const InputSpec& spec, const AnalysisConfig& config);

  // Single profiled run with the spec's concrete input (Figures 1 and 3):
  // no exploration, just per-branch execution/symbolic counts.
  AnalysisResult ProfileRun(const InputSpec& spec, NondetPolicy* policy);

 private:
  const IrModule& module_;
  ExprArena* arena_;
};

}  // namespace retrace

#endif  // RETRACE_CONCOLIC_ENGINE_H_
