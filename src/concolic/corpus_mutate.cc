#include "src/concolic/corpus_mutate.h"

#include <algorithm>

#include "src/support/rng.h"

namespace retrace {

std::vector<std::vector<i64>> MutateCorpus(const std::vector<std::vector<i64>>& corpus,
                                           u64 seed, u32 mutants_per_seed, size_t max_total) {
  std::vector<std::vector<i64>> out;
  if (corpus.empty() || max_total == 0) {
    return out;
  }
  out.reserve(std::min<size_t>(max_total, corpus.size() * (1 + mutants_per_seed)));
  for (const std::vector<i64>& model : corpus) {
    if (out.size() >= max_total) {
      return out;
    }
    out.push_back(model);
  }
  Rng rng(seed);
  for (size_t i = 0; i < corpus.size(); ++i) {
    for (u32 m = 0; m < mutants_per_seed; ++m) {
      if (out.size() >= max_total) {
        return out;
      }
      const std::vector<i64>& base = corpus[i];
      if (base.empty()) {
        continue;
      }
      std::vector<i64> mutant = base;
      switch (rng.NextBelow(3)) {
        case 0: {  // Point: one cell re-rolled to a printable byte.
          mutant[rng.NextBelow(mutant.size())] = rng.NextPrintable();
          break;
        }
        case 1: {  // Nudge: one cell +/- 1 (byte-ladder neighbors).
          const size_t cell = rng.NextBelow(mutant.size());
          mutant[cell] += (rng.Next() & 1) != 0 ? 1 : -1;
          break;
        }
        default: {  // Splice: suffix from an equal-length sibling.
          const std::vector<i64>& donor = corpus[rng.NextBelow(corpus.size())];
          if (donor.size() == mutant.size() && mutant.size() > 1) {
            const size_t cut = 1 + rng.NextBelow(mutant.size() - 1);
            for (size_t c = cut; c < mutant.size(); ++c) {
              mutant[c] = donor[c];
            }
          } else {
            mutant[rng.NextBelow(mutant.size())] = rng.NextPrintable();
          }
          break;
        }
      }
      out.push_back(std::move(mutant));
    }
  }
  return out;
}

}  // namespace retrace
