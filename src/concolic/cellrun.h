// Shared glue for running a program against the cell-driven virtual OS.
//
// Every phase of the pipeline — dynamic analysis, user-site recording,
// developer-site replay — is "interpret the program with some assignment of
// input cells". CellRunner packages the setup: layout construction, cell
// store, virtual OS, argv materialization, engine wiring. The runner owns
// one engine instance per kind and re-uses it across runs (pooled frames
// and object storage), so a search performing millions of runs pays engine
// setup once.
#ifndef RETRACE_CONCOLIC_CELLRUN_H_
#define RETRACE_CONCOLIC_CELLRUN_H_

#include <memory>
#include <string>
#include <vector>

#include "src/exec/engine.h"
#include "src/ir/ir.h"
#include "src/vos/vos.h"

namespace retrace {

struct CellRunConfig {
  std::vector<i64> model;               // Cell overrides (prefix by id).
  NondetPolicy* policy = nullptr;       // User-site nondeterminism script.
  ExprArena* arena = nullptr;           // Non-null: shadow-symbolic mode.
  std::vector<BranchObserver*> observers;
  const SyscallLog* replay_log = nullptr;
  bool symbolic_syscalls = true;        // Attach cells to syscall results.
  u64 max_steps = 200'000'000;
  Budget* external_budget = nullptr;
  // Which engine executes the run; kDefault resolves RETRACE_EXEC_ENGINE.
  ExecEngineKind engine = ExecEngineKind::kDefault;
  // Instrumentation plan baked into the engine's branch dispatch
  // (ExecEngine::SpecializePlan). Must be set whenever an observer in
  // `observers` overrides OnBranchCompiled and trusts the site hint.
  const InstrumentationPlan* plan = nullptr;
};

struct CellRunOutput {
  RunResult result;
  std::vector<i64> cells;               // Final values: static + dynamic.
  std::vector<Interval> domains;
  std::vector<CellInfo> cell_info;
  std::vector<CellStore::DynRecord> dyn_trace;
  std::string stdout_text;
  bool log_diverged = false;
};

class CellRunner {
 public:
  CellRunner(const IrModule& module, InputSpec spec)
      : module_(module), spec_(std::move(spec)), layout_(CellLayout::Build(spec_)) {}

  const CellLayout& layout() const { return layout_; }
  const InputSpec& spec() const { return spec_; }

  CellRunOutput Run(const CellRunConfig& config);

 private:
  ExecEngine* EngineFor(ExecEngineKind kind);

  const IrModule& module_;
  InputSpec spec_;
  CellLayout layout_;
  // Lazily constructed, one per engine kind, re-used across runs.
  std::unique_ptr<ExecEngine> tree_;
  std::unique_ptr<ExecEngine> bytecode_;
};

}  // namespace retrace

#endif  // RETRACE_CONCOLIC_CELLRUN_H_
