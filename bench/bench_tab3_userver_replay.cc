// Tables 3 and 4: uServer bug reproduction.
//
// Five input scenarios (different methods, lengths, headers), each ending
// in an externally delivered crash signal. Table 3 reports the time to
// reproduce under each configuration at low/high dynamic coverage; Table 4
// the number of symbolic branch locations (and executions) logged vs not
// logged — the paper's key correlation: once more than a dozen symbolic
// locations go unlogged, replay blows past the one-hour budget (inf).
//
// Paper highlights: all-branches/static always fastest (27s-175s);
// dynamic+static close behind; dynamic (lc) fails on 3 of 5 scenarios.
#include "bench/bench_util.h"

namespace retrace {
namespace {

struct ConfigRow {
  std::string name;
  InstrumentationPlan plan;
};

int Main() {
  PrintHeader("uServer bug reproduction time and symbolic-branch accounting",
              "Tables 3 and 4");
  auto pipeline = BuildWorkloadOrDie("userver");
  const AnalysisResult lc = pipeline->RunDynamicAnalysis(UserverExploreSpecLC(),
                                                         LowCoverageConfig());
  const AnalysisResult hc = pipeline->RunDynamicAnalysis(UserverExploreSpec(),
                                                         HighCoverageConfig());
  StaticAnalysisOptions opaque;
  opaque.analyze_library = false;
  const StaticAnalysisResult stat = pipeline->RunStaticAnalysis(opaque);

  std::vector<ConfigRow> configs;
  configs.push_back({"dynamic (lc)", pipeline->MakePlan(PlanInputs::Dynamic(lc))});
  configs.push_back({"dynamic (hc)", pipeline->MakePlan(PlanInputs::Dynamic(hc))});
  configs.push_back(
      {"dyn+static (lc)", pipeline->MakePlan(PlanInputs::DynamicStatic(lc, stat))});
  configs.push_back(
      {"dyn+static (hc)", pipeline->MakePlan(PlanInputs::DynamicStatic(hc, stat))});
  configs.push_back({"static", pipeline->MakePlan(PlanInputs::Static(stat))});
  configs.push_back(
      {"all branches", pipeline->MakePlan(PlanInputs::AllBranches())});

  std::printf("replay workers: %u (RETRACE_REPLAY_WORKERS; >1 engages the parallel\n"
              "scheduler — see bench_parallel_replay for the speedup sweep)\n\n",
              ReplayWorkers());
  std::printf("Paper Table 3 (LC/HC seconds; inf = exceeded 1h):\n");
  std::printf("  dynamic:        27/27  2877/79  inf/170  inf/287  inf/168\n");
  std::printf("  dynamic+static: 27/27  79/79    532/170  175/175  248/168\n");
  std::printf("  static:         27     79       170      175      168\n");
  std::printf("  all branches:   27     79       170      175      168\n\n");

  for (int experiment = 1; experiment <= 5; ++experiment) {
    const Scenario scenario = UserverScenario(experiment);
    std::printf("--- Experiment %d (%s) ---\n", experiment, scenario.name.c_str());
    std::printf("%-18s %-14s %-8s %-22s %-22s\n", "version", "replay", "runs",
                "sym logged loc/exec", "sym UNLOGGED loc/exec");
    for (const ConfigRow& config : configs) {
      Pipeline::UserRunOptions options;
      options.policy = scenario.policy.get();
      const auto user = pipeline->RecordUserRun(scenario.spec, config.plan, options).take();
      if (!user.result.Crashed()) {
        std::printf("%-18s user run did not crash!\n", config.name.c_str());
        continue;
      }
      const ReplayResult replay =
          pipeline->Reproduce(user.report, config.plan, DefaultReplayConfig()).take();
      char logged[64];
      char unlogged[64];
      std::snprintf(logged, sizeof(logged), "%llu / %llu",
                    static_cast<unsigned long long>(user.report.stats.symbolic_locations_logged),
                    static_cast<unsigned long long>(user.report.stats.symbolic_execs_logged));
      std::snprintf(unlogged, sizeof(unlogged), "%llu / %llu",
                    static_cast<unsigned long long>(
                        user.report.stats.symbolic_locations_unlogged),
                    static_cast<unsigned long long>(user.report.stats.symbolic_execs_unlogged));
      std::printf("%-18s %-14s %-8llu %-22s %-22s\n", config.name.c_str(),
                  ReplayCell(replay).c_str(),
                  static_cast<unsigned long long>(replay.stats.runs), logged, unlogged);
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace
}  // namespace retrace

int main() { return retrace::Main(); }
