// Execution-core microbenchmark: tree-walking interpreter vs bytecode VM.
//
// The inner loop of every phase — dynamic analysis, replay search,
// overhead measurement — is "run the program once". This bench measures
// that loop in isolation on the §5.1 counting-loop microbenchmark
// (dispatch-bound: one branch + three arithmetic ops per iteration) and
// end-to-end on a uServer request-serving run, across the axes that
// change the per-instruction work:
//
//   shadow off/on       symbolic shadow lanes (kShadow template split)
//   plan none/all       kBrFast vs kBrObserved site density with a
//                       recorder attached (the paper's instrumentation)
//
// Both engines are contractually bit-identical (tests/exec_vm_test.cc),
// so every ratio here is pure dispatch/representation win. Emits
// BENCH_interp.json next to the human table.
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/concolic/cellrun.h"
#include "src/instrument/recorder.h"

namespace retrace {
namespace {

struct Cell {
  double seconds = 0;
  u64 runs = 0;
  u64 instrs = 0;
  double SecsPerRun() const { return runs == 0 ? 0 : seconds / static_cast<double>(runs); }
  double MinstrsPerSec() const {
    return seconds <= 0 ? 0 : static_cast<double>(instrs) / seconds / 1e6;
  }
};

struct Row {
  std::string name;
  Cell tree;
  Cell vm;
  double Speedup() const {
    return vm.seconds <= 0 ? 0 : tree.SecsPerRun() / vm.SecsPerRun();
  }
};

// Runs `spec` through the cell runner `runs` times on `kind`, optionally
// with shadow tracking and a recorder specialized on `plan`.
Cell Measure(const IrModule& module, const InputSpec& spec, NondetPolicy* policy,
             ExecEngineKind kind, u64 runs, bool shadow, const InstrumentationPlan* plan) {
  CellRunner runner(module, spec);
  Cell cell;
  const auto t0 = std::chrono::steady_clock::now();
  for (u64 i = 0; i < runs; ++i) {
    ExprArena arena;
    BranchTraceRecorder recorder(plan != nullptr ? *plan : InstrumentationPlan{});
    CellRunConfig config;
    config.policy = policy;
    config.engine = kind;
    config.symbolic_syscalls = shadow;
    if (shadow) {
      config.arena = &arena;
    }
    if (plan != nullptr) {
      config.observers = {&recorder};
      config.plan = plan;
    }
    const CellRunOutput out = runner.Run(config);
    cell.instrs += out.result.stats.instrs;
  }
  cell.runs = runs;
  cell.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return cell;
}

InstrumentationPlan AllBranchesPlan(const IrModule& module) {
  InstrumentationPlan plan;
  plan.branches = DenseBitset(module.branches.size());
  for (size_t b = 0; b < module.branches.size(); ++b) {
    plan.branches.Set(b);
  }
  return plan;
}

InstrumentationPlan NoBranchesPlan(const IrModule& module) {
  InstrumentationPlan plan;
  plan.branches = DenseBitset(module.branches.size());
  return plan;
}

}  // namespace
}  // namespace retrace

int main() {
  using namespace retrace;
  const int scale = BenchScale();

  std::printf("==============================================================\n");
  std::printf("Execution core: tree-walking interpreter vs bytecode VM\n");
  std::printf("==============================================================\n");
  std::printf("both engines bit-identical by contract (tests/exec_vm_test.cc);\n");
  std::printf("RETRACE_EXEC_ENGINE=tree|bytecode flips every pipeline phase\n\n");

  std::vector<Row> rows;

  // ----- Dispatch-bound micro: the §5.1 counting loop -----
  {
    auto pipeline = BuildWorkloadOrDie("loop_micro");
    const IrModule& module = pipeline->module();
    const InputSpec spec = LoopMicroSpec(100'000);
    const u64 runs = 20 * static_cast<u64>(scale);
    const InstrumentationPlan all = AllBranchesPlan(module);
    const InstrumentationPlan none = NoBranchesPlan(module);
    const struct {
      const char* name;
      bool shadow;
      const InstrumentationPlan* plan;
    } kConfigs[] = {
        {"loop/concrete", false, nullptr},
        {"loop/concrete+rec-none", false, &none},
        {"loop/concrete+rec-all", false, &all},
        {"loop/shadow", true, nullptr},
        {"loop/shadow+rec-all", true, &all},
    };
    for (const auto& c : kConfigs) {
      Row row;
      row.name = c.name;
      row.tree = Measure(module, spec, nullptr, ExecEngineKind::kTree, runs, c.shadow, c.plan);
      row.vm =
          Measure(module, spec, nullptr, ExecEngineKind::kBytecode, runs, c.shadow, c.plan);
      rows.push_back(row);
    }
  }

  // ----- End-to-end: uServer serving scripted requests -----
  // The replay-search inner loop: full shadow-symbolic run of a server
  // scenario, syscalls through the virtual OS, recorder attached.
  {
    auto pipeline = BuildWorkloadOrDie("userver");
    const IrModule& module = pipeline->module();
    const Scenario scenario = UserverScenario(1);
    const u64 runs = 30 * static_cast<u64>(scale);
    const InstrumentationPlan all = AllBranchesPlan(module);
    const struct {
      const char* name;
      bool shadow;
      const InstrumentationPlan* plan;
    } kConfigs[] = {
        {"userver/concrete", false, nullptr},
        {"userver/shadow+rec-all", true, &all},
    };
    for (const auto& c : kConfigs) {
      Row row;
      row.name = c.name;
      row.tree = Measure(module, scenario.spec, scenario.policy.get(), ExecEngineKind::kTree,
                         runs, c.shadow, c.plan);
      row.vm = Measure(module, scenario.spec, scenario.policy.get(),
                       ExecEngineKind::kBytecode, runs, c.shadow, c.plan);
      rows.push_back(row);
    }
  }

  std::printf("%-26s %14s %14s %10s %10s %9s\n", "configuration", "tree Mi/s", "vm Mi/s",
              "tree ms", "vm ms", "speedup");
  for (const Row& row : rows) {
    std::printf("%-26s %14.1f %14.1f %10.3f %10.3f %8.2fx\n", row.name.c_str(),
                row.tree.MinstrsPerSec(), row.vm.MinstrsPerSec(),
                row.tree.SecsPerRun() * 1e3, row.vm.SecsPerRun() * 1e3, row.Speedup());
  }

  FILE* json = std::fopen("BENCH_interp.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_interp.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"interp\",\n  \"scale\": %d,\n  \"rows\": [\n", scale);
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(json,
                 "    {\"name\": \"%s\", \"runs\": %" PRIu64
                 ", \"tree_minstrs_per_sec\": %.1f, \"vm_minstrs_per_sec\": %.1f, "
                 "\"tree_ms_per_run\": %.3f, \"vm_ms_per_run\": %.3f, \"speedup\": %.2f}%s\n",
                 row.name.c_str(), row.tree.runs, row.tree.MinstrsPerSec(),
                 row.vm.MinstrsPerSec(), row.tree.SecsPerRun() * 1e3,
                 row.vm.SecsPerRun() * 1e3, row.Speedup(), i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("\nwrote BENCH_interp.json\n");
  return 0;
}
