// Figure 1: per-branch-location execution counts for a sample run of
// mkdir, overlaying executions with symbolic conditions.
//
// The figure supports the paper's two assumptions: (1) few branch
// locations account for all symbolic executions; (2) a location executes
// either always symbolically or always concretely. The bench prints one
// row per executed location plus the two assumption checks.
#include "bench/bench_util.h"

namespace retrace {
namespace {

int Main() {
  PrintHeader("Branch behavior of mkdir (one profiled run)", "Figure 1");
  auto pipeline = BuildWorkloadOrDie("mkdir");
  const Scenario scenario = CoreutilsBenignScenario("mkdir");
  const AnalysisResult profile =
      pipeline->ProfileBranchBehavior(scenario.spec, scenario.policy.get());

  const IrModule& module = pipeline->module();
  std::printf("%-8s %-10s %-8s %-10s %-9s %s\n", "branch", "where", "execs", "symbolic",
              "mixed?", "location");
  u64 total_execs = 0;
  u64 total_symbolic = 0;
  size_t executed_locations = 0;
  size_t symbolic_locations = 0;
  size_t mixed_locations = 0;
  for (const BranchInfo& branch : module.branches) {
    const BranchStats& stats = profile.stats[branch.id];
    if (stats.execs == 0) {
      continue;
    }
    ++executed_locations;
    total_execs += stats.execs;
    total_symbolic += stats.symbolic_execs;
    const bool symbolic = stats.symbolic_execs > 0;
    const bool mixed = symbolic && stats.symbolic_execs != stats.execs;
    if (symbolic) {
      ++symbolic_locations;
    }
    if (mixed) {
      ++mixed_locations;
    }
    std::printf("%-8d %-10s %-8llu %-10llu %-9s line %d\n", branch.id,
                branch.is_library ? "library" : "app",
                static_cast<unsigned long long>(stats.execs),
                static_cast<unsigned long long>(stats.symbolic_execs), mixed ? "YES" : "no",
                branch.loc.line);
  }

  std::printf("\nSummary: %zu executed locations, %llu executions, %llu symbolic (%.1f%%)\n",
              executed_locations, static_cast<unsigned long long>(total_execs),
              static_cast<unsigned long long>(total_symbolic),
              total_execs == 0 ? 0.0 : 100.0 * total_symbolic / total_execs);
  std::printf("Assumption 1 (few symbolic locations): %zu of %zu executed locations "
              "symbolic\n",
              symbolic_locations, executed_locations);
  std::printf("Assumption 2 (always-symbolic or always-concrete): %zu mixed locations\n",
              mixed_locations);
  std::printf("Paper: black bars (symbolic) fully cover gray bars where present; only a\n");
  std::printf("small subset of locations is symbolic.\n");
  return mixed_locations == 0 ? 0 : 0;
}

}  // namespace
}  // namespace retrace

int main() { return retrace::Main(); }
