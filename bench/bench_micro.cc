// §5.1 microbenchmarks (google-benchmark).
//
// 1. The native cost of the branch-logging fast path: a counting loop with
//    the recorder's RecordBit inlined vs. the bare loop. The paper reports
//    ~17 instructions / ~3 ns per instrumented branch and 107% overhead on
//    a pure counting loop (still cheaper than ODR's ~200%).
// 2. The Listing-1 fibonacci program interpreted under the four
//    instrumentation methods: only all-branches pays a visible cost, since
//    the other methods instrument just the two symbolic option tests.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/instrument/recorder.h"

namespace retrace {
namespace {

constexpr i64 kLoopIters = 10'000'000;

void BM_NativeLoopBare(benchmark::State& state) {
  for (auto _ : state) {
    i64 sum = 0;
    for (i64 i = 0; i < kLoopIters; ++i) {
      sum += i;
      benchmark::DoNotOptimize(sum);
    }
  }
  state.SetItemsProcessed(state.iterations() * kLoopIters);
}
BENCHMARK(BM_NativeLoopBare);

void BM_NativeLoopWithRecorder(benchmark::State& state) {
  InstrumentationPlan plan;
  plan.branches = DenseBitset(1);
  plan.branches.Set(0);
  for (auto _ : state) {
    BranchTraceRecorder recorder(plan);
    i64 sum = 0;
    for (i64 i = 0; i < kLoopIters; ++i) {
      sum += i;
      benchmark::DoNotOptimize(sum);
      recorder.RecordBit(i + 1 < kLoopIters);  // The loop-condition bit.
    }
    benchmark::DoNotOptimize(recorder.bits_recorded());
  }
  state.SetItemsProcessed(state.iterations() * kLoopIters);
  state.counters["bytes/iter"] =
      benchmark::Counter(1.0 / 8.0, benchmark::Counter::kDefaults);
}
BENCHMARK(BM_NativeLoopWithRecorder);

// Interpreted Listing 1 under each instrumentation method.
struct Listing1Fixture {
  Listing1Fixture() {
    pipeline = BuildWorkloadOrDie("listing1");
    AnalysisConfig config;
    config.max_runs = 16;
    dyn = pipeline->RunDynamicAnalysis(Listing1Spec('a'), config);
    stat = pipeline->RunStaticAnalysis({});
  }
  std::unique_ptr<Pipeline> pipeline;
  AnalysisResult dyn;
  StaticAnalysisResult stat;
};

Listing1Fixture& Fixture() {
  static auto* fixture = new Listing1Fixture();
  return *fixture;
}

void RunListing1(benchmark::State& state, InstrumentMethod method, bool instrumented) {
  Listing1Fixture& fixture = Fixture();
  const InstrumentationPlan plan =
      fixture.pipeline->MakePlan(PlanInputs::ForMethod(method, &fixture.dyn, &fixture.stat));
  for (auto _ : state) {
    const auto sample =
        fixture.pipeline->MeasureOverhead(Listing1Spec('b'), plan, nullptr, 1);
    benchmark::DoNotOptimize(sample);
    state.counters["instrumented_execs"] =
        static_cast<double>(sample.instrumented_execs);
    state.counters["overhead_%"] = sample.OverheadPercent();
  }
  (void)instrumented;
}

void BM_Listing1Dynamic(benchmark::State& state) {
  RunListing1(state, InstrumentMethod::kDynamic, true);
}
void BM_Listing1DynamicStatic(benchmark::State& state) {
  RunListing1(state, InstrumentMethod::kDynamicStatic, true);
}
void BM_Listing1Static(benchmark::State& state) {
  RunListing1(state, InstrumentMethod::kStatic, true);
}
void BM_Listing1AllBranches(benchmark::State& state) {
  RunListing1(state, InstrumentMethod::kAllBranches, true);
}
BENCHMARK(BM_Listing1Dynamic);
BENCHMARK(BM_Listing1DynamicStatic);
BENCHMARK(BM_Listing1Static);
BENCHMARK(BM_Listing1AllBranches);

}  // namespace
}  // namespace retrace

int main(int argc, char** argv) {
  std::printf("bench_micro: paper §5.1 — recorder cost per branch and Listing-1 overhead.\n");
  std::printf("Paper reference points: ~3 ns / 17 insns per logged branch; 107%%\n");
  std::printf("overhead on a bare counting loop; only all-branches shows overhead\n");
  std::printf("on Listing 1 (the other methods log just 2 branches).\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Summary line: ns per recorded branch, derived from the two loop benches.
  return 0;
}
