// Tables 5 and 8: replaying uServer scenarios WITHOUT system-call result
// logging.
//
// The replay engine then models each syscall result as a symbolic value
// (read return in [-1,n], select index, signal poll), and must search for
// the values the kernel actually produced. Paper findings: every
// configuration slows down markedly (exp1: 27s -> 112s); dynamic (lc)
// fails exp4 outright; and static becomes slightly *slower* than
// all-branches — with fewer concrete branches logged, the engine takes
// longer to notice a wrong turn caused by a mis-guessed syscall result.
// The user-site saving from dropping the logs is only ~0.2% CPU.
#include "bench/bench_util.h"

namespace retrace {
namespace {

int Main() {
  PrintHeader("uServer replay without syscall-result logging", "Tables 5 and 8");
  std::printf("Paper Table 5 (exp1 / exp4, LC-HC):\n");
  std::printf("  dynamic:        112/112   inf/712\n");
  std::printf("  dynamic+static: 112/112   991/694\n");
  std::printf("  static:         112       991\n");
  std::printf("  all branches:   87        362 (static slightly slower than all!)\n\n");

  auto pipeline = BuildWorkloadOrDie("userver");
  const AnalysisResult lc = pipeline->RunDynamicAnalysis(UserverExploreSpecLC(),
                                                         LowCoverageConfig());
  const AnalysisResult hc = pipeline->RunDynamicAnalysis(UserverExploreSpec(),
                                                         HighCoverageConfig());
  StaticAnalysisOptions opaque;
  opaque.analyze_library = false;
  const StaticAnalysisResult stat = pipeline->RunStaticAnalysis(opaque);

  struct ConfigRow {
    std::string name;
    InstrumentationPlan plan;
  };
  std::vector<ConfigRow> configs;
  configs.push_back({"dynamic (lc)", pipeline->MakePlan(PlanInputs::Dynamic(lc))});
  configs.push_back({"dynamic (hc)", pipeline->MakePlan(PlanInputs::Dynamic(hc))});
  configs.push_back(
      {"dyn+static (lc)", pipeline->MakePlan(PlanInputs::DynamicStatic(lc, stat))});
  configs.push_back(
      {"dyn+static (hc)", pipeline->MakePlan(PlanInputs::DynamicStatic(hc, stat))});
  configs.push_back({"static", pipeline->MakePlan(PlanInputs::Static(stat))});
  configs.push_back(
      {"all branches", pipeline->MakePlan(PlanInputs::AllBranches())});

  for (int experiment : {1, 4}) {
    const Scenario scenario = UserverScenario(experiment);
    std::printf("--- Experiment %d, syscall logging OFF at replay ---\n", experiment);
    std::printf("%-18s %-14s %-14s %-8s %-22s\n", "version", "with_log", "without_log",
                "runs", "sym UNLOGGED loc/exec (Table 8)");
    for (const ConfigRow& config : configs) {
      Pipeline::UserRunOptions options;
      options.policy = scenario.policy.get();
      options.log_syscalls = true;
      const auto user = pipeline->RecordUserRun(scenario.spec, config.plan, options).take();
      if (!user.result.Crashed()) {
        std::printf("%-18s user run did not crash!\n", config.name.c_str());
        continue;
      }
      ReplayConfig with_log = DefaultReplayConfig();
      with_log.use_syscall_log = true;
      const ReplayResult fast = pipeline->Reproduce(user.report, config.plan, with_log).take();

      ReplayConfig no_log = DefaultReplayConfig();
      no_log.use_syscall_log = false;
      const ReplayResult slow = pipeline->Reproduce(user.report, config.plan, no_log).take();

      char unlogged[64];
      std::snprintf(unlogged, sizeof(unlogged), "%llu / %llu",
                    static_cast<unsigned long long>(
                        user.report.stats.symbolic_locations_unlogged),
                    static_cast<unsigned long long>(user.report.stats.symbolic_execs_unlogged));
      std::printf("%-18s %-14s %-14s %-8llu %-22s\n", config.name.c_str(),
                  ReplayCell(fast).c_str(), ReplayCell(slow).c_str(),
                  static_cast<unsigned long long>(slow.stats.runs), unlogged);
    }
    std::printf("\n");
  }

  // User-site cost of keeping syscall logging on (paper: ~0.2%).
  const InputSpec load = UserverLoadSpec(100 * BenchScale());
  const auto plan = pipeline->MakePlan(PlanInputs::DynamicStatic(hc, stat));
  const auto with_syscalls = pipeline->MeasureOverhead(load, plan, nullptr, 3, true);
  std::printf("Syscall log size for %d requests: %llu bytes (branch log: %llu bytes)\n",
              100 * BenchScale(),
              static_cast<unsigned long long>(with_syscalls.syscall_log_bytes),
              static_cast<unsigned long long>(with_syscalls.log_bytes));
  return 0;
}

}  // namespace
}  // namespace retrace

int main() { return retrace::Main(); }
