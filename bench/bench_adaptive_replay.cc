// Adaptive instrumentation planning: the closed loop the paper stops
// short of (§7 "repeat the process with more instrumentation") on the
// experiment that defeats every static low-coverage plan.
//
// Workload: uServer experiment 5 under the *dynamic (lc)* plan — Table 3
// reports inf and the on-log rate pins the cause: the request parser is
// unlogged, so ~1% of replay runs stay on the user's path and the rest
// die off-log. This bench runs Pipeline::ReproduceAdaptive: search under
// the current plan, mine the failure telemetry for the branches where
// off-log runs die, add the deadliest (skipping log-irrelevant ones and
// anything past the overhead budget), re-record the user run under the
// refined plan, and search again. Each round prints the paper-facing
// trade: how much instrumentation was added vs how much closer replay
// got (on-log rate, runs, reproduction).
//
// The closing frontier table is the balance the title of the paper asks
// for: each static plan's modeled native CPU cost next to its exp-5
// replay time, with the machine-chosen adaptive plan as the new point.
#include <cinttypes>

#include "bench/bench_util.h"
#include "src/concolic/corpus_mutate.h"

namespace retrace {
namespace {

// Refinement rounds (each round = one replay search + one re-record).
u32 AdaptiveRounds() {
  return static_cast<u32>(EnvKnobI64("RETRACE_ADAPTIVE_ROUNDS", 4, 1, 64));
}

// Branches a single round may add to the plan.
u32 AdaptiveMaxAdd() {
  return static_cast<u32>(EnvKnobI64("RETRACE_ADAPTIVE_MAX_ADD", 8, 1, 4096));
}

// Modeled-native-CPU ceiling in percent (100 = uninstrumented). 0 turns
// the budget check off: refinement is bounded only by MAX_ADD.
double AdaptiveBudgetPercent() {
  return static_cast<double>(EnvKnobI64("RETRACE_ADAPTIVE_BUDGET", 0, 0, 10'000));
}

int Main() {
  PrintHeader("Adaptive plan refinement on the stuck experiment (uServer e5)",
              "§7's instrumentation-debugging balance, closed-loop");

  const u32 rounds = AdaptiveRounds();
  const u32 max_add = AdaptiveMaxAdd();
  const double budget = AdaptiveBudgetPercent();
  const u32 corpus_mutants = ReplayCorpusMutants();

  auto pipeline = BuildWorkloadOrDie("userver");
  const AnalysisResult lc =
      pipeline->RunDynamicAnalysis(UserverExploreSpecLC(), LowCoverageConfig());
  StaticAnalysisOptions opaque;
  opaque.analyze_library = false;
  const StaticAnalysisResult stat = pipeline->RunStaticAnalysis(opaque);
  const InstrumentationPlan lc_plan = pipeline->MakePlan(PlanInputs::Dynamic(lc));

  const Scenario scenario = UserverScenario(5);
  std::printf("scenario: %s\n", scenario.name.c_str());
  std::printf("rounds: %u (RETRACE_ADAPTIVE_ROUNDS), max added/round: %u "
              "(RETRACE_ADAPTIVE_MAX_ADD)\n",
              rounds, max_add);
  if (budget > 0.0) {
    std::printf("overhead budget: %.0f%% modeled native CPU (RETRACE_ADAPTIVE_BUDGET)\n",
                budget);
  } else {
    std::printf("overhead budget: off (RETRACE_ADAPTIVE_BUDGET=percent enables)\n");
  }
  std::printf("corpus mutation: %u mutants/seed (RETRACE_REPLAY_CORPUS_MUTATE)\n",
              corpus_mutants);
  std::printf("replay budget per round: %s\n\n", "DefaultReplayConfig (RETRACE_BENCH_CAP_MS)");

  Pipeline::AdaptiveConfig config;
  config.user_spec = scenario.spec;
  config.user_run.policy = scenario.policy.get();
  config.replay = DefaultReplayConfig();
  config.max_rounds = rounds;
  config.refine.max_added_branches = max_add;
  config.refine.max_overhead_percent = budget;
  config.overhead_reps = budget > 0.0 ? 1 : 0;
  if (ReplayCorpusEnabled()) {
    config.corpus = lc.corpus;
    config.corpus_mutants_per_seed = corpus_mutants;
  }

  const auto adaptive = pipeline->ReproduceAdaptive(
      pipeline->RecordUserRun(scenario.spec, lc_plan, config.user_run).take().report,
      lc_plan, config);
  if (!adaptive.ok()) {
    std::printf("adaptive loop failed: %s\n", adaptive.error().ToString().c_str());
    return 1;
  }
  const Pipeline::AdaptiveResult& result = adaptive.value();

  std::printf("%-6s %-10s %-10s %-10s %-10s %-10s %-10s %-10s %-10s %-10s %s\n", "round",
              "plan_bits", "added", "cands", "skip_irr", "skip_bud", "pred_cpu%", "runs",
              "on_log%", "log_KB", "result");
  for (const Pipeline::AdaptiveRound& round : result.rounds) {
    std::printf("%-6u %-10u %-10u %-10u %-10u %-10u %-10.1f %-10" PRIu64
                " %-10.2f %-10.1f %s\n",
                round.round, round.plan_branches, round.added_branches, round.candidates,
                round.skipped_irrelevant, round.skipped_budget,
                round.predicted_overhead_percent, round.runs, 100.0 * round.on_log_rate,
                static_cast<double>(round.log_bytes) / 1024.0,
                round.reproduced ? "REPRODUCED"
                                 : (round.added_branches > 0 ? "refined" : "converged"));
  }
  std::printf("\nadaptive outcome: %s after %zu round(s); final plan %zu branches "
              "(detail level %u)\n",
              result.reproduced ? "reproduced" : (result.converged ? "converged without "
                                                                    "reproducing"
                                                                  : "budget exhausted"),
              result.rounds.size(), result.final_plan.NumInstrumented(),
              result.final_plan.detail_level);
  std::printf("provenance: %s\n", result.final_plan.provenance.c_str());

  // ----- The overhead-vs-debug-time frontier, adaptive point included -----
  std::printf("\n--- frontier: modeled native CPU vs exp-5 replay time ---\n");
  struct Point {
    const char* name;
    InstrumentationPlan plan;
  };
  std::vector<Point> points;
  points.push_back({"dynamic (lc)", lc_plan});
  points.push_back({"dyn+static (lc)",
                    pipeline->MakePlan(PlanInputs::DynamicStatic(lc, stat))});
  points.push_back({"static", pipeline->MakePlan(PlanInputs::Static(stat))});
  points.push_back({"all branches", pipeline->MakePlan(PlanInputs::AllBranches())});
  points.push_back({"adaptive (final)", result.final_plan});

  const int requests = 50 * BenchScale();
  const InputSpec load = UserverLoadSpec(requests);
  std::printf("%-18s %-10s %-12s %-12s %-10s %s\n", "plan", "bits", "native_cpu%",
              "bytes/req", "runs", "replay");
  for (const Point& point : points) {
    const auto sample = pipeline->MeasureOverhead(load, point.plan, nullptr, 1);
    const auto user =
        pipeline->RecordUserRun(scenario.spec, point.plan, config.user_run).take();
    if (!user.result.Crashed()) {
      std::printf("%-18s user run did not crash!\n", point.name);
      continue;
    }
    const ReplayResult replay =
        pipeline->Reproduce(user.report, point.plan, DefaultReplayConfig()).take();
    std::printf("%-18s %-10zu %-12.1f %-12.1f %-10" PRIu64 " %s\n", point.name,
                point.plan.NumInstrumented(), ModeledNativeCpuPercent(sample),
                static_cast<double>(sample.log_bytes) / requests, replay.stats.runs,
                ReplayCell(replay).c_str());
  }
  std::printf("\nThe adaptive row is the machine-chosen balance: it pays overhead only\n"
              "at branches replay demonstrably died on, instead of everywhere the\n"
              "static analyses point.\n");
  return 0;
}

}  // namespace
}  // namespace retrace

int main() { return retrace::Main(); }
