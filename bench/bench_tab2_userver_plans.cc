// Table 2: number of instrumented branch locations in the uServer under
// each configuration, at low (LC) and high (HC) dynamic-analysis coverage.
//
// Paper (HC): dynamic 246, dynamic+static 1490, static 2104, all 5104 —
// with LC, dynamic shrinks (78) and dynamic+static grows (1654), because
// unvisited branches fall back to the static verdict. Also prints the
// override ablation (DESIGN.md §6).
#include "bench/bench_util.h"

namespace retrace {
namespace {

int Main() {
  PrintHeader("uServer: instrumented branch locations per configuration", "Table 2");
  auto pipeline = BuildWorkloadOrDie("userver");
  const IrModule& module = pipeline->module();
  std::printf("Branch locations: %zu app + %zu library = %zu total\n",
              module.NumAppBranchLocations(),
              module.NumBranchLocations() - module.NumAppBranchLocations(),
              module.NumBranchLocations());
  std::printf("(paper: 5104 app + 8516 uClibc)\n\n");

  const AnalysisResult lc = pipeline->RunDynamicAnalysis(UserverExploreSpecLC(),
                                                         LowCoverageConfig());
  const AnalysisResult hc = pipeline->RunDynamicAnalysis(UserverExploreSpec(),
                                                         HighCoverageConfig());
  StaticAnalysisOptions opaque;
  opaque.analyze_library = false;  // The paper's uServer setup.
  const StaticAnalysisResult stat = pipeline->RunStaticAnalysis(opaque);

  std::printf("Dynamic coverage: LC %.1f%% (%llu runs), HC %.1f%% (%llu runs)\n",
              100.0 * lc.Coverage(), static_cast<unsigned long long>(lc.runs),
              100.0 * hc.Coverage(), static_cast<unsigned long long>(hc.runs));
  std::printf("(paper: LC 20%% after 1h, HC 33%% after 2h)\n\n");

  std::printf("%-22s %-10s %-10s   %s\n", "version", "LC", "HC", "paper (LC/HC)");
  auto plan_size = [&](InstrumentMethod method, const AnalysisResult& dyn,
                       const PlanOptions& options = PlanOptions{}) {
    return pipeline->MakePlan(PlanInputs::ForMethod(method, &dyn, &stat), options).NumInstrumented();
  };
  std::printf("%-22s %-10zu %-10zu   78 / 246\n", "dynamic",
              plan_size(InstrumentMethod::kDynamic, lc),
              plan_size(InstrumentMethod::kDynamic, hc));
  std::printf("%-22s %-10zu %-10zu   1654 / 1490\n", "dynamic+static",
              plan_size(InstrumentMethod::kDynamicStatic, lc),
              plan_size(InstrumentMethod::kDynamicStatic, hc));
  std::printf("%-22s %-10zu %-10s   2104\n", "static",
              pipeline->MakePlan(PlanInputs::Static(stat)).NumInstrumented(),
              "(same)");
  std::printf("%-22s %-10zu %-10s   5104 (+8516 lib)\n", "all branches",
              pipeline->MakePlan(PlanInputs::AllBranches())
                  .NumInstrumented(),
              "(same)");

  PlanOptions no_override;
  no_override.dynamic_overrides_static = false;
  std::printf("\nAblation (combined WITHOUT the dynamic-overrides-static rule):\n");
  std::printf("%-22s %-10zu %-10zu   (rule removed -> plan grows)\n", "dynamic+static",
              plan_size(InstrumentMethod::kDynamicStatic, lc, no_override),
              plan_size(InstrumentMethod::kDynamicStatic, hc, no_override));
  return 0;
}

}  // namespace
}  // namespace retrace

int main() { return retrace::Main(); }
