// Figure 4: uServer CPU time (a) and storage per request (b) for the six
// configurations: dynamic (lc/hc), dynamic+static (lc/hc), static, all
// branches.
//
// Paper shape: all-branches is the most expensive; static is only
// marginally better (it instruments every uClibc branch); dynamic ~117%
// and dynamic+static ~120% of the uninstrumented time; ~50 bytes of branch
// log per request for the dynamic configurations (about the size of one
// access-log line); increasing coverage grows the dynamic plan but shrinks
// the combined plan.
#include "bench/bench_util.h"

namespace retrace {
namespace {

int Main() {
  const int requests = 200 * BenchScale();
  PrintHeader("uServer instrumentation overhead (CPU, storage per request)", "Figure 4");
  std::printf("Requests: %d; times normalized to the uninstrumented server.\n\n", requests);

  auto pipeline = BuildWorkloadOrDie("userver");
  const AnalysisResult lc = pipeline->RunDynamicAnalysis(UserverExploreSpecLC(),
                                                         LowCoverageConfig());
  const AnalysisResult hc = pipeline->RunDynamicAnalysis(UserverExploreSpec(),
                                                         HighCoverageConfig());
  StaticAnalysisOptions opaque;
  opaque.analyze_library = false;
  const StaticAnalysisResult stat = pipeline->RunStaticAnalysis(opaque);

  struct Config {
    const char* name;
    InstrumentationPlan plan;
    const char* paper;
  };
  std::vector<Config> configs;
  configs.push_back({"dynamic (lc)",
                     pipeline->MakePlan(PlanInputs::Dynamic(lc)), "~117%"});
  configs.push_back({"dynamic (hc)",
                     pipeline->MakePlan(PlanInputs::Dynamic(hc)), "~117%"});
  configs.push_back({"dynamic+static (lc)",
                     pipeline->MakePlan(PlanInputs::DynamicStatic(lc, stat)), "~120%"});
  configs.push_back({"dynamic+static (hc)",
                     pipeline->MakePlan(PlanInputs::DynamicStatic(hc, stat)), "~120%"});
  configs.push_back({"static",
                     pipeline->MakePlan(PlanInputs::Static(stat)),
                     "near all-branches"});
  configs.push_back({"all branches",
                     pipeline->MakePlan(PlanInputs::AllBranches()),
                     "highest"});

  const InputSpec spec = UserverLoadSpec(requests);
  const int reps = 3 * BenchScale();
  std::printf("%-22s %-12s %-12s %-10s %-14s %-12s %s\n", "version", "native_cpu_%",
              "interp_cpu_%", "plan_size", "instr_execs", "bytes/req", "paper_cpu");
  for (const Config& config : configs) {
    const auto sample = pipeline->MeasureOverhead(spec, config.plan, nullptr, reps);
    std::printf("%-22s %-12.1f %-12.1f %-10zu %-14llu %-12.1f %s\n", config.name,
                ModeledNativeCpuPercent(sample), 100.0 + sample.OverheadPercent(),
                config.plan.NumInstrumented(),
                static_cast<unsigned long long>(sample.instrumented_execs),
                static_cast<double>(sample.log_bytes) / requests, config.paper);
  }
  std::printf("\nnative_cpu_%% models branch logging at its native cost ratio (see\n");
  std::printf("bench_util.h); interp_cpu_%% is the measured interpreter time, where the\n");
  std::printf("recorder amortizes to noise.\n");
  std::printf("\nPaper fig 4(b): ~50 bytes/request for dynamic and dynamic+static — about\n");
  std::printf("one Web-server access-log line; static and all-branches are several-fold\n");
  std::printf("larger. Syscall-result logging adds ~0.2%% (see bench_tab5).\n");
  return 0;
}

}  // namespace
}  // namespace retrace

int main() { return retrace::Main(); }
