// Table 1: time to reproduce the real coreutils crashes. The paper: 1-1.5
// seconds, identical across all four instrumented configurations (the
// programs are small enough that both analyses are accurate). ESD took
// 10-15s on the same bugs because it has no branch log to follow.
#include "bench/bench_util.h"

namespace retrace {
namespace {

int Main() {
  PrintHeader("Coreutils bug reproduction time", "Table 1");
  std::printf("Paper: mkdir 1s, mknod 1s, mkfifo 1s, paste 1.5s — same for all four\n");
  std::printf("instrumented configurations; ESD (no log) needed 10-15s.\n\n");
  std::printf("%-8s | %-12s %-12s %-16s %-12s\n", "program", "dynamic", "static",
              "dynamic+static", "all branches");

  for (const char* tool : {"mkdir", "mknod", "mkfifo", "paste"}) {
    auto pipeline = BuildWorkloadOrDie(tool);
    const Scenario benign = CoreutilsBenignScenario(tool);
    AnalysisConfig dyn_config;
    dyn_config.max_runs = 32;
    const AnalysisResult dyn = pipeline->RunDynamicAnalysis(benign.spec, dyn_config);
    const StaticAnalysisResult stat = pipeline->RunStaticAnalysis({});
    const Scenario bug = CoreutilsBugScenario(tool);

    std::string cells[4];
    int i = 0;
    for (const InstrumentMethod method :
         {InstrumentMethod::kDynamic, InstrumentMethod::kStatic,
          InstrumentMethod::kDynamicStatic, InstrumentMethod::kAllBranches}) {
      const InstrumentationPlan plan = pipeline->MakePlan(PlanInputs::ForMethod(method, &dyn, &stat));
      const auto user = pipeline->RecordUserRun(bug.spec, plan, {}).take();
      if (!user.result.Crashed()) {
        cells[i++] = "no-crash!";
        continue;
      }
      const ReplayResult replay = pipeline->Reproduce(user.report, plan, DefaultReplayConfig()).take();
      cells[i++] = ReplayCell(replay) + " (" + std::to_string(replay.stats.runs) + " runs)";
    }
    std::printf("%-8s | %-12s %-12s %-16s %-12s\n", tool, cells[0].c_str(), cells[1].c_str(),
                cells[2].c_str(), cells[3].c_str());
  }
  return 0;
}

}  // namespace
}  // namespace retrace

int main() { return retrace::Main(); }
