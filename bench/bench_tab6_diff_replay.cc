// Tables 6 and 7: diff bug reproduction.
//
// Two executions on small-but-different file pairs. Paper: the dynamic
// configuration never finishes within the hour — its few logged locations
// leave ~2M symbolic executions unlogged and the search explodes; the
// other three configurations replay in 1s / 12s because every symbolic
// branch is logged.
#include "bench/bench_util.h"

namespace retrace {
namespace {

int Main() {
  PrintHeader("diff bug reproduction time and symbolic-branch accounting", "Tables 6 and 7");
  std::printf("Paper Table 6: dynamic inf/inf; dyn+static 1s/12s; static 1s/12s; all 1s/12s\n");
  std::printf("Paper Table 7: dynamic logs 3 locations (2.1M execs) leaving 32 (2.4M execs)\n");
  std::printf("unlogged; the other methods leave 0 unlogged.\n\n");

  auto pipeline = BuildWorkloadOrDie("diff");
  AnalysisConfig dyn_config = LowCoverageConfig();
  dyn_config.max_runs = 10 * static_cast<u64>(BenchScale());
  const AnalysisResult dyn = pipeline->RunDynamicAnalysis(DiffExploreSpec(), dyn_config);
  const StaticAnalysisResult stat = pipeline->RunStaticAnalysis({});

  struct ConfigRow {
    std::string name;
    InstrumentationPlan plan;
  };
  std::vector<ConfigRow> configs;
  configs.push_back({"dynamic", pipeline->MakePlan(PlanInputs::Dynamic(dyn))});
  configs.push_back(
      {"dyn+static", pipeline->MakePlan(PlanInputs::DynamicStatic(dyn, stat))});
  configs.push_back({"static", pipeline->MakePlan(PlanInputs::Static(stat))});
  configs.push_back(
      {"all branches", pipeline->MakePlan(PlanInputs::AllBranches())});

  for (int experiment = 1; experiment <= 2; ++experiment) {
    const Scenario scenario = DiffScenario(experiment);
    std::printf("--- Experiment %d (%s) ---\n", experiment, scenario.name.c_str());
    std::printf("%-14s %-14s %-8s %-22s %-22s\n", "version", "replay", "runs",
                "sym logged loc/exec", "sym UNLOGGED loc/exec");
    for (const ConfigRow& config : configs) {
      const auto user = pipeline->RecordUserRun(scenario.spec, config.plan, {}).take();
      if (!user.result.Crashed()) {
        std::printf("%-14s user run did not crash!\n", config.name.c_str());
        continue;
      }
      const ReplayResult replay =
          pipeline->Reproduce(user.report, config.plan, DefaultReplayConfig()).take();
      char logged[64];
      char unlogged[64];
      std::snprintf(logged, sizeof(logged), "%llu / %llu",
                    static_cast<unsigned long long>(user.report.stats.symbolic_locations_logged),
                    static_cast<unsigned long long>(user.report.stats.symbolic_execs_logged));
      std::snprintf(unlogged, sizeof(unlogged), "%llu / %llu",
                    static_cast<unsigned long long>(
                        user.report.stats.symbolic_locations_unlogged),
                    static_cast<unsigned long long>(user.report.stats.symbolic_execs_unlogged));
      std::printf("%-14s %-14s %-8llu %-22s %-22s\n", config.name.c_str(),
                  ReplayCell(replay).c_str(),
                  static_cast<unsigned long long>(replay.stats.runs), logged, unlogged);
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace
}  // namespace retrace

int main() { return retrace::Main(); }
