// Ablations of the design choices DESIGN.md §6 calls out:
//   A. The dynamic-overrides-static rule in the combined method — plan
//      size and replay consequences with the rule disabled.
//   B. The replay pending-set pick heuristic: depth-first (the paper's
//      choice) vs FIFO.
//   C. Selective syscall logging (cross-reference: bench_tab5 measures the
//      full matrix; here the single-scenario summary).
#include "bench/bench_util.h"

namespace retrace {
namespace {

int Main() {
  PrintHeader("Design-choice ablations", "DESIGN.md §6 / paper §2.3, §3.2");
  auto pipeline = BuildWorkloadOrDie("userver");
  const AnalysisResult lc = pipeline->RunDynamicAnalysis(UserverExploreSpecLC(),
                                                         LowCoverageConfig());
  const AnalysisResult hc = pipeline->RunDynamicAnalysis(UserverExploreSpec(),
                                                         HighCoverageConfig());
  StaticAnalysisOptions opaque;
  opaque.analyze_library = false;
  const StaticAnalysisResult stat = pipeline->RunStaticAnalysis(opaque);

  // --- A. Combined method with and without the override rule. ---
  std::printf("A. dynamic-overrides-static rule (combined plan sizes):\n");
  PlanOptions with_rule;
  PlanOptions no_rule;
  no_rule.dynamic_overrides_static = false;
  for (const auto* label : {"lc", "hc"}) {
    const AnalysisResult& dyn = std::string(label) == "lc" ? lc : hc;
    const auto plan_on =
        pipeline->MakePlan(PlanInputs::DynamicStatic(dyn, stat), with_rule);
    const auto plan_off =
        pipeline->MakePlan(PlanInputs::DynamicStatic(dyn, stat), no_rule);
    const auto static_plan = pipeline->MakePlan(PlanInputs::Static(stat));
    std::printf("  %s: with rule %zu, without %zu (static alone: %zu)\n", label,
                plan_on.NumInstrumented(), plan_off.NumInstrumented(),
                static_plan.NumInstrumented());
  }
  std::printf("  Without the override the combined plan degenerates toward the static\n");
  std::printf("  plan — the rule is what buys the overhead reduction (paper: 10-92%%).\n\n");

  // Overhead consequence of the rule, on the load workload.
  {
    const InputSpec load = UserverLoadSpec(100 * BenchScale());
    const auto plan_on =
        pipeline->MakePlan(PlanInputs::DynamicStatic(hc, stat), with_rule);
    const auto plan_off =
        pipeline->MakePlan(PlanInputs::DynamicStatic(hc, stat), no_rule);
    const auto on = pipeline->MeasureOverhead(load, plan_on, nullptr, 2);
    const auto off = pipeline->MeasureOverhead(load, plan_off, nullptr, 2);
    std::printf("  logged executions: with rule %llu, without %llu (%.0f%% more)\n\n",
                static_cast<unsigned long long>(on.instrumented_execs),
                static_cast<unsigned long long>(off.instrumented_execs),
                on.instrumented_execs == 0
                    ? 0.0
                    : 100.0 * (static_cast<double>(off.instrumented_execs) /
                                   static_cast<double>(on.instrumented_execs) -
                               1.0));
  }

  // --- B. Pending-set pick heuristic at replay. ---
  std::printf("B. pending-set pick heuristic (scenario 3, dynamic-lc plan — the\n");
  std::printf("   configuration with real searching to do):\n");
  const auto plan = pipeline->MakePlan(PlanInputs::Dynamic(lc));
  const Scenario scenario = UserverScenario(3);
  Pipeline::UserRunOptions options;
  options.policy = scenario.policy.get();
  const auto user = pipeline->RecordUserRun(scenario.spec, plan, options).take();
  if (user.result.Crashed()) {
    for (const auto pick : {ReplayConfig::Pick::kDfs, ReplayConfig::Pick::kFifo}) {
      ReplayConfig config = DefaultReplayConfig();
      config.pick = pick;
      const ReplayResult replay = pipeline->Reproduce(user.report, plan, config).take();
      std::printf("  %-5s: %s in %llu runs (%llu solver calls, pending peak %llu)\n",
                  pick == ReplayConfig::Pick::kDfs ? "DFS" : "FIFO",
                  ReplayCell(replay).c_str(),
                  static_cast<unsigned long long>(replay.stats.runs),
                  static_cast<unsigned long long>(replay.stats.solver_calls),
                  static_cast<unsigned long long>(replay.stats.pending_peak));
    }
  }
  std::printf("  The paper uses simple depth-first; FIFO explores breadth-first and\n");
  std::printf("  typically needs more runs before converging on the logged path.\n");
  return 0;
}

}  // namespace
}  // namespace retrace

int main() { return retrace::Main(); }
