// Parallel + distributed replay scheduler: wall-clock speedup over a
// shards x workers grid.
//
// Workload: the uServer crash experiments under the *dynamic (lc)* plan —
// the paper's hardest replay configuration (low-coverage dynamic analysis
// leaves the request parser unlogged, so the engine searches a wide
// pending-set frontier; Table 3 shows cells from 27s to inf). This is
// exactly the axis the multi-worker scheduler attacks: N workers explore
// the frontier concurrently with work-stealing, a shared tried-set, and
// first-crash-wins cancellation. RETRACE_REPLAY_SHARDS adds the process
// dimension: each shard count in the list gets its own table, where
// "SxW" means S forked shard processes running W worker threads each,
// seeded from a partition of the coordinator's scouted frontier and
// gossiping slice-cache verdicts over the wire (src/dist/).
//
// Speedup has two sources: hardware parallelism (one interpreter per
// core) and *search diversification* — every worker of every shard
// starts from a distinct random input, so the fleet covers the input
// space the way S*W independent sequential engines would, but sharing
// frontiers and verdicts. Diversification alone can be superlinear:
// scenarios whose sequential search exhausts the budget (inf) can fall
// in seconds. On a single-core host all of the measured speedup is
// diversification. Wire overhead is reported honestly per table: total
// bytes shipped both ways and the verdicts gossiped between shards.
#include <array>
#include <chrono>
#include <cinttypes>
#include <cstdlib>
#include <iterator>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/concolic/corpus_mutate.h"
#include "src/service/service.h"

namespace retrace {
namespace {

// Worker counts per table: the historical 1/2/4/8 sweep in-process; the
// ISSUE's {1,2,4} grid once shard processes multiply the fleet.
std::vector<u32> WorkerCounts(u32 shards) {
  if (shards <= 1) {
    return {1, 2, 4, 8};
  }
  return {1, 2, 4};
}

// Default sweep: experiments 1-4 (e5 historically exceeds the cap at every
// count — target it explicitly with RETRACE_BENCH_EXPERIMENTS=5, usually
// together with RETRACE_REPLAY_PICK=logbits).
std::vector<int> Experiments() {
  const char* env = std::getenv("RETRACE_BENCH_EXPERIMENTS");
  if (env == nullptr) {
    return {1, 2, 3, 4};
  }
  std::vector<int> out;
  for (const char* c = env; *c != '\0'; ++c) {
    if (*c >= '1' && *c <= '5') {
      out.push_back(*c - '0');
    }
  }
  return out.empty() ? std::vector<int>{1, 2, 3, 4} : out;
}

// Replay-as-a-service mode (RETRACE_BENCH_SERVICE=1): stream the
// experiment reports through a resident ReplayService twice back to
// back. The first pass pays a full search per cluster (cold); the
// second pass is the deployment steady state — every report is a
// duplicate of a solved cluster and is answered from the table without
// a single run. Emits BENCH_service.json next to the human table.
int ServiceMain() {
  PrintHeader("Replay service: cold stream vs warm re-stream (uServer, dynamic (lc) plan)",
              "one search per crash cluster, ever");
  auto pipeline = BuildWorkloadOrDie("userver");
  const AnalysisResult lc =
      pipeline->RunDynamicAnalysis(UserverExploreSpecLC(), LowCoverageConfig());
  const InstrumentationPlan plan = pipeline->MakePlan(PlanInputs::Dynamic(lc));

  const i64 cap_ms = BenchCapMs(30'000 * static_cast<i64>(BenchScale()));
  ServiceConfig config;
  config.replay = DefaultReplayConfig();
  config.replay.wall_ms = cap_ms;
  config.replay.num_shards = ReplayShardsSweep().front();
  std::printf("budget %" PRId64 ".%03" PRId64 "s per search; shards %u "
              "(RETRACE_REPLAY_SHARDS; 1 = in-process with the service slice cache)\n",
              cap_ms / 1000, cap_ms % 1000, config.replay.num_shards);

  const std::vector<int> experiments = Experiments();
  struct Row {
    int experiment = 0;
    double cold_seconds = 0.0;
    u64 cold_runs = 0;
    bool cold_reproduced = false;
    double warm_seconds = 0.0;
    VerdictOrigin warm_origin = VerdictOrigin::kRejected;
  };
  std::vector<Row> rows;
  std::vector<BugReport> reports;
  for (const int experiment : experiments) {
    const Scenario scenario = UserverScenario(experiment);
    Pipeline::UserRunOptions options;
    options.policy = scenario.policy.get();
    const auto user = pipeline->RecordUserRun(scenario.spec, plan, options).take();
    if (!user.result.Crashed()) {
      std::printf("exp %d: user run did not crash!\n", experiment);
      continue;
    }
    reports.push_back(user.report);
    rows.push_back(Row{experiment});
  }

  auto service = pipeline->MakeService(plan, config).take();
  if (!service->Start()) {
    std::printf("service failed to start\n");
    return 1;
  }

  const auto timed_submit = [&](const BugReport& report, double* seconds) {
    const auto t0 = std::chrono::steady_clock::now();
    const ServiceVerdict v = service->Submit("bench", report);
    *seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    return v;
  };

  std::printf("\n%-12s %14s %14s %14s\n", "experiment", "cold", "warm", "warm origin");
  double cold_total = 0.0;
  double warm_total = 0.0;
  for (size_t i = 0; i < rows.size(); ++i) {
    Row& row = rows[i];
    const ServiceVerdict cold = timed_submit(reports[i], &row.cold_seconds);
    row.cold_runs = cold.result.stats.runs;
    row.cold_reproduced = cold.reproduced;
    cold_total += row.cold_seconds;
  }
  for (size_t i = 0; i < rows.size(); ++i) {
    Row& row = rows[i];
    const ServiceVerdict warm = timed_submit(reports[i], &row.warm_seconds);
    row.warm_origin = warm.origin;
    warm_total += row.warm_seconds;
    char cold_cell[32];
    std::snprintf(cold_cell, sizeof(cold_cell), "%s%.2fs/%" PRIu64 "r",
                  row.cold_reproduced ? "" : "inf ", row.cold_seconds, row.cold_runs);
    std::printf("exp %-8d %14s %13.4fs %14s\n", row.experiment, cold_cell, row.warm_seconds,
                warm.origin == VerdictOrigin::kCached ? "cached" : "NOT CACHED");
  }
  std::printf("%-12s %13.2fs %13.4fs\n", "total", cold_total, warm_total);
  std::printf("re-stream speedup: %.0fx (the second user of every crash costs a table "
              "lookup)\n",
              warm_total > 0 ? cold_total / warm_total : 0.0);

  const WireHealthStats health = service->HealthStats();
  std::printf("service: %" PRIu64 " reports -> %" PRIu64 " clusters, %" PRIu64
              " searches run, %" PRIu64 " cached verdicts\n",
              health.reports_ingested, health.clusters, health.searches_run,
              health.cached_verdicts);
  std::printf("slice cache resident: %" PRIu64 " sat + %" PRIu64 " unsat entries\n",
              health.cache_sat_entries, health.cache_unsat_entries);
  service->Shutdown();

  FILE* json = std::fopen("BENCH_service.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_service.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"service\",\n  \"shards\": %u,\n",
               config.replay.num_shards);
  std::fprintf(json,
               "  \"reports\": %" PRIu64 ",\n  \"clusters\": %" PRIu64 ",\n"
               "  \"searches_run\": %" PRIu64 ",\n  \"cached_verdicts\": %" PRIu64 ",\n",
               health.reports_ingested, health.clusters, health.searches_run,
               health.cached_verdicts);
  std::fprintf(json, "  \"cold_total_s\": %.4f,\n  \"warm_total_s\": %.4f,\n", cold_total,
               warm_total);
  std::fprintf(json, "  \"results\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(json,
                 "    {\"experiment\": %d, \"cold_s\": %.4f, \"cold_runs\": %" PRIu64
                 ", \"cold_reproduced\": %s, \"warm_s\": %.4f, \"warm_cached\": %s}%s\n",
                 row.experiment, row.cold_seconds, row.cold_runs,
                 row.cold_reproduced ? "true" : "false", row.warm_seconds,
                 row.warm_origin == VerdictOrigin::kCached ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("\nwrote BENCH_service.json\n");
  return 0;
}

int Main() {
  PrintHeader("Parallel replay speedup (uServer, dynamic (lc) plan)",
              "Table 3's hardest column, scaled");
  auto pipeline = BuildWorkloadOrDie("userver");
  const AnalysisResult lc =
      pipeline->RunDynamicAnalysis(UserverExploreSpecLC(), LowCoverageConfig());
  StaticAnalysisOptions opaque;
  opaque.analyze_library = false;
  const StaticAnalysisResult stat = pipeline->RunStaticAnalysis(opaque);
  const InstrumentationPlan plan = pipeline->MakePlan(PlanInputs::Dynamic(lc));

  const i64 cap_ms = BenchCapMs(30'000 * static_cast<i64>(BenchScale()));
  // The exp-5 offensive knobs: corpus seeds come from the lc dynamic
  // analysis above — exactly the paper's "leverage the dynamic analysis"
  // move, now feeding replay instead of the plan alone.
  const bool corpus_enabled = ReplayCorpusEnabled();
  const u32 corpus_mutants = ReplayCorpusMutants();
  // Optionally fuzz the harvested models into their neighborhoods
  // (RETRACE_REPLAY_CORPUS_MUTATE=N mutants per seed).
  const std::vector<std::vector<i64>> corpus =
      corpus_mutants == 0 ? lc.corpus
                          : MutateCorpus(lc.corpus, /*seed=*/7, corpus_mutants,
                                         /*max_total=*/256);
  std::printf("budget %" PRId64 ".%03" PRId64 "s per cell; 'inf' = not reproduced within "
              "budget (RETRACE_BENCH_CAP_MS overrides)\n",
              cap_ms / 1000, cap_ms % 1000);
  std::printf("solver cache: %s (RETRACE_SOLVER_CACHE=0 disables the incremental layer)\n",
              SolverCacheEnabled() ? "on" : "off");
  std::printf("pick heuristic: %s (RETRACE_REPLAY_PICK=dfs|fifo|logbits|direction|portfolio)\n",
              ReplayPickName());
  std::printf("subsumption pruning: %s (RETRACE_REPLAY_PRUNE=1 enables)\n",
              ReplayPruneEnabled() ? "on" : "off");
  std::printf("corpus mutation: %u mutants/seed (RETRACE_REPLAY_CORPUS_MUTATE)\n",
              corpus_mutants);
  std::printf("corpus seeding: %s, %zu dynamic-analysis seeds (RETRACE_REPLAY_CORPUS=1 "
              "enables)\n",
              corpus_enabled ? "on" : "off", corpus.size());
  std::printf("shard sweep: RETRACE_REPLAY_SHARDS (comma list, default 1 = in-process)\n");
  std::printf("shard transport: %s (RETRACE_REPLAY_TRANSPORT=fork|tcp; tcp = loopback\n"
              "self-spawn, the same wire path a remote retrace_shardd takes)\n",
              ReplayTransportName());

  const std::vector<int> experiments = Experiments();
  for (const u32 shards : ReplayShardsSweep()) {
    const std::vector<u32> worker_counts = WorkerCounts(shards);
    std::printf("\n--- %u shard(s) x {", shards);
    for (size_t i = 0; i < worker_counts.size(); ++i) {
      std::printf("%s%u", i == 0 ? "" : ",", worker_counts[i]);
    }
    std::printf("} worker(s) ---\n%-12s", "experiment");
    for (const u32 workers : worker_counts) {
      char head[32];
      std::snprintf(head, sizeof(head), "%ux%u", shards, workers);
      std::printf(" %14s", head);
    }
    std::printf("\n");

    std::vector<double> total_seconds(worker_counts.size(), 0.0);
    u64 total_sat_hits = 0;
    u64 total_unsat_hits = 0;
    u64 total_slices_solved = 0;
    u64 total_wire_bytes = 0;
    u64 total_verdicts_gossiped = 0;
    u64 total_pruned = 0;
    u64 total_corpus_runs = 0;
    u64 total_promotions = 0;
    u64 total_runs = 0;
    u64 total_shards_lost = 0;
    u64 total_pendings_recovered = 0;
    u64 total_heartbeats_missed = 0;
    u64 total_fallbacks = 0;
    std::array<u64, kNumDisciplines> disc_runs{};
    std::array<u64, kNumDisciplines> disc_on_log{};
    // Per-shard aggregation over every cell of this table: process-level
    // runs, wire traffic (re-balance frames included — they ride the
    // same channels the byte counters watch) and re-balance activity.
    struct ShardAgg {
      u64 runs = 0;
      u64 seeded = 0;
      u64 wire_tx = 0;
      u64 wire_rx = 0;
      u64 verdicts_out = 0;
      u64 verdicts_in = 0;
      u64 pendings_exported = 0;
      u64 pendings_imported = 0;
      u64 rebalance_rounds = 0;
    };
    std::vector<ShardAgg> shard_agg(shards);
    for (const int experiment : experiments) {
      const Scenario scenario = UserverScenario(experiment);
      Pipeline::UserRunOptions options;
      options.policy = scenario.policy.get();
      const auto user = pipeline->RecordUserRun(scenario.spec, plan, options).take();
      if (!user.result.Crashed()) {
        std::printf("exp %d: user run did not crash!\n", experiment);
        continue;
      }
      std::printf("exp %-8d", experiment);
      for (size_t i = 0; i < worker_counts.size(); ++i) {
        ReplayConfig config = DefaultReplayConfig();
        config.wall_ms = cap_ms;
        config.num_workers = worker_counts[i];
        config.num_shards = shards;
        if (corpus_enabled) {
          config.corpus_seeds = corpus;
        }
        const ReplayResult replay = pipeline->Reproduce(user.report, plan, config).take();
        // Budget-capped cells charge the full cap, like the paper's inf rows.
        total_seconds[i] +=
            replay.reproduced ? replay.wall_seconds : static_cast<double>(cap_ms) / 1000.0;
        total_sat_hits += replay.stats.slice_sat_hits;
        total_unsat_hits += replay.stats.slice_unsat_hits;
        total_slices_solved += replay.stats.slices_solved;
        total_wire_bytes += replay.stats.wire_bytes_tx + replay.stats.wire_bytes_rx;
        total_verdicts_gossiped += replay.stats.verdicts_gossiped;
        total_pruned += replay.stats.pendings_pruned;
        total_corpus_runs += replay.stats.corpus_runs;
        total_promotions += replay.stats.promotions;
        total_runs += replay.stats.runs;
        total_shards_lost += replay.stats.shards_lost;
        total_pendings_recovered += replay.stats.pendings_recovered;
        total_heartbeats_missed += replay.stats.heartbeats_missed;
        total_fallbacks += replay.stats.fallback_inprocess ? 1 : 0;
        for (size_t d = 0; d < kNumDisciplines; ++d) {
          disc_runs[d] += replay.stats.discipline_runs[d];
          disc_on_log[d] += replay.stats.discipline_on_log[d];
        }
        for (const ReplayShardStats& sh : replay.stats.per_shard) {
          if (sh.shard_id >= shard_agg.size()) {
            continue;
          }
          ShardAgg& agg = shard_agg[sh.shard_id];
          agg.runs += sh.runs;
          agg.seeded += sh.pendings_seeded;
          agg.wire_tx += sh.wire_bytes_tx;
          agg.wire_rx += sh.wire_bytes_rx;
          agg.verdicts_out += sh.verdicts_published;
          agg.verdicts_in += sh.verdicts_imported;
          agg.pendings_exported += sh.pendings_exported;
          agg.pendings_imported += sh.pendings_imported;
          agg.rebalance_rounds += sh.rebalance_rounds;
        }
        char cell[64];
        if (replay.reproduced) {
          std::snprintf(cell, sizeof(cell), "%.2fs/%" PRIu64 "r", replay.wall_seconds,
                        replay.stats.runs);
        } else {
          std::snprintf(cell, sizeof(cell), "inf/%" PRIu64 "r", replay.stats.runs);
        }
        std::printf(" %14s", cell);
        std::fflush(stdout);
      }
      std::printf("\n");
    }

    std::printf("%-12s", "total");
    for (const double seconds : total_seconds) {
      char cell[64];
      std::snprintf(cell, sizeof(cell), "%.2fs", seconds);
      std::printf(" %14s", cell);
    }
    std::printf("\n%-12s", "speedup");
    for (const double seconds : total_seconds) {
      char cell[64];
      std::snprintf(cell, sizeof(cell), "%.2fx",
                    seconds > 0 ? total_seconds[0] / seconds : 0.0);
      std::printf(" %14s", cell);
    }
    const u64 lookups = total_sat_hits + total_unsat_hits + total_slices_solved;
    std::printf("\nslice cache (all cells): %" PRIu64 " sat hits, %" PRIu64
                " unsat hits, %" PRIu64 " solved, hit rate %.1f%%\n",
                total_sat_hits, total_unsat_hits, total_slices_solved,
                lookups > 0 ? 100.0 * static_cast<double>(total_sat_hits + total_unsat_hits) /
                                  static_cast<double>(lookups)
                            : 0.0);
    std::printf("search quality (all cells): %" PRIu64 " pendings pruned, %" PRIu64
                " corpus runs, %" PRIu64 " promotions (%" PRIu64 " runs total)\n",
                total_pruned, total_corpus_runs, total_promotions, total_runs);
    std::printf("per-discipline on-log rates:");
    for (size_t d = 0; d < kNumDisciplines; ++d) {
      if (disc_runs[d] == 0) {
        continue;
      }
      std::printf(" %s %" PRIu64 "/%" PRIu64 " (%.1f%%)", SearchDisciplineName(d),
                  disc_on_log[d], disc_runs[d],
                  100.0 * static_cast<double>(disc_on_log[d]) /
                      static_cast<double>(disc_runs[d]));
    }
    std::printf("\n");
    if (shards > 1) {
      std::printf("wire overhead (all cells): %.1f KB shipped, %" PRIu64
                  " verdicts gossiped between shards\n",
                  static_cast<double>(total_wire_bytes) / 1024.0, total_verdicts_gossiped);
      std::printf("per-shard summary (all cells; re-balance frames ride the counted wire):\n");
      for (u32 s = 0; s < shards; ++s) {
        const ShardAgg& agg = shard_agg[s];
        std::printf("  shard %u: %" PRIu64 " runs, %" PRIu64 " seeded, %.1f KB tx / %.1f KB rx"
                    ", %" PRIu64 " verdicts out / %" PRIu64 " in, %" PRIu64 " exported / %"
                    PRIu64 " imported pendings, %" PRIu64 " rebalance rounds\n",
                    s, agg.runs, agg.seeded, static_cast<double>(agg.wire_tx) / 1024.0,
                    static_cast<double>(agg.wire_rx) / 1024.0, agg.verdicts_out,
                    agg.verdicts_in, agg.pendings_exported, agg.pendings_imported,
                    agg.rebalance_rounds);
      }
      // 0s across the board on a healthy fleet; the CI fault-injection
      // smoke leg greps this line under RETRACE_FAULT_SPEC.
      std::printf("fault recovery (all cells): %" PRIu64 " shards lost, %" PRIu64
                  " pendings recovered, %" PRIu64 " heartbeats missed, %" PRIu64
                  " in-process fallbacks\n",
                  total_shards_lost, total_pendings_recovered, total_heartbeats_missed,
                  total_fallbacks);
    }
  }

  std::printf("\nhardware threads: %u (single-core hosts measure pure search\n"
              "diversification; multi-core hosts add interpreter parallelism)\n",
              std::thread::hardware_concurrency());
  return 0;
}

}  // namespace
}  // namespace retrace

int main() {
  if (retrace::EnvKnobBool("RETRACE_BENCH_SERVICE", false)) {
    return retrace::ServiceMain();
  }
  return retrace::Main();
}
