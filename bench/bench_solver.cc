// Incremental solving layer microbenchmark: partitioned vs. monolithic
// solves, slice caches cold vs. warm.
//
// Workload: synthetic constraint sets shaped like replay pendings — S
// independent slices (one per small group of input cells), each a short
// equality/ordering chain, solved from a deliberately violating seed so
// the local search has real repair work. Four configurations:
//
//   monolithic    the plain Solver over the whole set per call
//   partitioned   IncrementalSolver, no cache (union-find slices only)
//   cache-cold    IncrementalSolver, fresh SliceCache every call
//   cache-warm    IncrementalSolver, one SliceCache across calls
//
// Emits BENCH_solver.json (machine-readable) next to the human table so
// the perf trajectory is tracked from PR 2 on.
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/solver/incremental.h"

namespace retrace {
namespace {

constexpr int kSlices = 24;        // Independent components per set.
constexpr int kVarsPerSlice = 3;   // Cells per component.

struct Problem {
  ExprArena arena;
  std::vector<Constraint> constraints;
  std::vector<Interval> domains;
  std::vector<i64> seed;
};

// One slice over vars [base, base+2]: v0 == 'k', v0 + v1 > 150, v1 != v2.
// The seed violates every slice, so each needs genuine repair.
void AddSlice(Problem* p, i32 base) {
  ExprArena& a = p->arena;
  const ExprRef v0 = a.MkVar(base);
  const ExprRef v1 = a.MkVar(base + 1);
  const ExprRef v2 = a.MkVar(base + 2);
  p->constraints.push_back({a.MkBin(ExprOp::kEq, v0, a.MkConst('k')), true});
  p->constraints.push_back(
      {a.MkBin(ExprOp::kGt, a.MkBin(ExprOp::kAdd, v0, v1), a.MkConst(150)), true});
  p->constraints.push_back({a.MkBin(ExprOp::kNe, v1, v2), true});
}

std::unique_ptr<Problem> MakeProblem() {
  auto p = std::make_unique<Problem>();
  for (int s = 0; s < kSlices; ++s) {
    AddSlice(p.get(), static_cast<i32>(s * kVarsPerSlice));
  }
  const size_t num_vars = static_cast<size_t>(kSlices) * kVarsPerSlice;
  p->domains.assign(num_vars, Interval{0, 255});
  p->seed.assign(num_vars, 0);  // Violates every constraint chain.
  return p;
}

struct Row {
  std::string name;
  u64 iters = 0;
  double ns_per_solve = 0;
  u64 slices_solved = 0;
  u64 sat_hits = 0;
};

template <typename Fn>
Row Measure(const std::string& name, u64 iters, Fn&& solve_once) {
  const auto t0 = std::chrono::steady_clock::now();
  for (u64 i = 0; i < iters; ++i) {
    solve_once();
  }
  const double ns =
      std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() - t0).count();
  Row row;
  row.name = name;
  row.iters = iters;
  row.ns_per_solve = ns / static_cast<double>(iters);
  return row;
}

int Main() {
  PrintHeader("Incremental solver: partition + slice-cache microbenchmark",
              "the PR 2 solving layer; no direct paper analogue");
  const u64 iters = 200 * static_cast<u64>(BenchScale());
  auto p = MakeProblem();
  const SolverOptions options;
  std::printf("%d slices x %d vars, %zu constraints, %" PRIu64 " solves per config\n\n",
              kSlices, kVarsPerSlice, p->constraints.size(), iters);

  std::vector<Row> rows;

  {
    Solver solver(p->arena, options);
    rows.push_back(Measure("monolithic", iters, [&] {
      const SolveResult r = solver.Solve(p->constraints, p->domains, p->seed);
      Check(r.status == SolveStatus::kSat, "bench_solver: monolithic must solve");
    }));
  }
  {
    IncrementalSolver inc(p->arena, options, nullptr);
    rows.push_back(Measure("partitioned", iters, [&] {
      const SolveResult r = inc.Solve(
          ConstraintSpan(p->constraints.data(), p->constraints.size()), p->domains, p->seed);
      Check(r.status == SolveStatus::kSat, "bench_solver: partitioned must solve");
    }));
    rows.back().slices_solved = inc.stats().slices_solved;
  }
  {
    rows.push_back(Measure("cache-cold", iters, [&] {
      // A fresh cache per solve: pays partition + key hashing + stores,
      // never hits. The honest lower bound for first-contact pendings.
      SliceCache cache;
      IncrementalSolver fresh(p->arena, options, &cache);
      const SolveResult r = fresh.Solve(
          ConstraintSpan(p->constraints.data(), p->constraints.size()), p->domains, p->seed);
      Check(r.status == SolveStatus::kSat, "bench_solver: cache-cold must solve");
    }));
  }
  {
    SliceCache cache;
    IncrementalSolver inc(p->arena, options, &cache);
    rows.push_back(Measure("cache-warm", iters, [&] {
      const SolveResult r = inc.Solve(
          ConstraintSpan(p->constraints.data(), p->constraints.size()), p->domains, p->seed);
      Check(r.status == SolveStatus::kSat, "bench_solver: cache-warm must solve");
    }));
    rows.back().slices_solved = inc.stats().slices_solved;
    rows.back().sat_hits = inc.stats().slice_sat_hits;
  }

  std::printf("%-14s %14s %14s %12s %12s\n", "config", "ns/solve", "vs monolithic",
              "slicesolves", "sat hits");
  const double base = rows[0].ns_per_solve;
  for (const Row& row : rows) {
    std::printf("%-14s %14.0f %13.2fx %12" PRIu64 " %12" PRIu64 "\n", row.name.c_str(),
                row.ns_per_solve, base / row.ns_per_solve, row.slices_solved, row.sat_hits);
  }

  FILE* json = std::fopen("BENCH_solver.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_solver.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"solver\",\n  \"slices\": %d,\n  \"constraints\": %zu,\n"
               "  \"iters\": %" PRIu64 ",\n  \"results\": [\n",
               kSlices, p->constraints.size(), iters);
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(json,
                 "    {\"name\": \"%s\", \"ns_per_solve\": %.1f, \"speedup_vs_monolithic\": "
                 "%.3f, \"slices_solved\": %" PRIu64 ", \"sat_hits\": %" PRIu64 "}%s\n",
                 row.name.c_str(), row.ns_per_solve, base / row.ns_per_solve, row.slices_solved,
                 row.sat_hits, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("\nwrote BENCH_solver.json\n");
  return 0;
}

}  // namespace
}  // namespace retrace

int main() { return retrace::Main(); }
