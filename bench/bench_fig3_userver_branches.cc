// Figure 3: per-branch-location executions for a uServer run, split into
// library (uClibc stand-in) and application code, with symbolic overlays.
//
// Paper observations on 5,000 requests: ~18M branch executions, ~10%
// symbolic; 53 symbolic branch locations; 81% of executions inside the
// library but only 28% of the *symbolic* executions; black bars cover gray
// bars almost everywhere (library functions occasionally run with concrete
// arguments).
#include <algorithm>
#include <vector>

#include "bench/bench_util.h"

namespace retrace {
namespace {

int Main() {
  const int requests = 200 * BenchScale();
  PrintHeader("uServer branch behavior under load", "Figure 3");
  std::printf("Requests served: %d (paper: 5000; scale with RETRACE_BENCH_SCALE)\n\n",
              requests);

  auto pipeline = BuildWorkloadOrDie("userver");
  const InputSpec spec = UserverLoadSpec(requests);
  const AnalysisResult profile = pipeline->ProfileBranchBehavior(spec, nullptr);
  const IrModule& module = pipeline->module();

  u64 lib_execs = 0;
  u64 app_execs = 0;
  u64 lib_symbolic = 0;
  u64 app_symbolic = 0;
  size_t symbolic_locations = 0;
  size_t mixed_locations = 0;
  struct Row {
    i32 id;
    bool lib;
    u64 execs;
    u64 symbolic;
  };
  std::vector<Row> rows;
  for (const BranchInfo& branch : module.branches) {
    const BranchStats& stats = profile.stats[branch.id];
    if (stats.execs == 0) {
      continue;
    }
    rows.push_back(Row{branch.id, branch.is_library, stats.execs, stats.symbolic_execs});
    (branch.is_library ? lib_execs : app_execs) += stats.execs;
    (branch.is_library ? lib_symbolic : app_symbolic) += stats.symbolic_execs;
    if (stats.symbolic_execs > 0) {
      ++symbolic_locations;
      if (stats.symbolic_execs != stats.execs) {
        ++mixed_locations;
      }
    }
  }

  // Top rows by execution count, like the figure's tallest bars.
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.execs > b.execs;
  });
  std::printf("%-8s %-9s %-12s %-12s\n", "branch", "where", "execs", "symbolic");
  for (size_t i = 0; i < rows.size() && i < 25; ++i) {
    std::printf("%-8d %-9s %-12llu %-12llu\n", rows[i].id, rows[i].lib ? "library" : "app",
                static_cast<unsigned long long>(rows[i].execs),
                static_cast<unsigned long long>(rows[i].symbolic));
  }

  const u64 total = lib_execs + app_execs;
  const u64 symbolic = lib_symbolic + app_symbolic;
  std::printf("\nTotals: %llu branch executions, %llu symbolic (%.1f%%; paper ~10%%)\n",
              static_cast<unsigned long long>(total), static_cast<unsigned long long>(symbolic),
              total == 0 ? 0.0 : 100.0 * symbolic / total);
  std::printf("Library share of executions: %.1f%% (paper 81%%)\n",
              total == 0 ? 0.0 : 100.0 * lib_execs / total);
  std::printf("Library share of symbolic executions: %.1f%% (paper 28%%)\n",
              symbolic == 0 ? 0.0 : 100.0 * lib_symbolic / symbolic);
  std::printf("Symbolic branch locations: %zu (paper: 53)\n", symbolic_locations);
  std::printf("Mixed (sometimes-concrete) locations: %zu (paper: a few, in the library)\n",
              mixed_locations);
  return 0;
}

}  // namespace
}  // namespace retrace

int main() { return retrace::Main(); }
